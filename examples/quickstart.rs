//! Quickstart: calibrate a WiForce sensor, press it, read the force.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use wiforce::pipeline::Simulation;

fn main() {
    // The paper's default setup: Fig. 12 geometry (TX and RX 1 m apart,
    // sensor midway), 2.4 GHz carrier, USRP-like reader, prototype tag.
    let sim = Simulation::paper_default(2.4e9);

    // §4.2 calibration: VNA force sweeps at 20/30/40/50/60 mm, cubic fits.
    let model = sim.vna_calibration().expect("calibration");
    println!(
        "calibrated at {:?} mm, force range {:?} N",
        model
            .locations_m()
            .iter()
            .map(|m| m * 1e3)
            .collect::<Vec<_>>(),
        model.force_range_n()
    );

    // Press the sensor: 4.2 N at 37 mm, measured wirelessly.
    let mut rng = StdRng::seed_from_u64(11);
    let truth_force = 4.2;
    let truth_loc_mm = 37.0;
    let reading = sim
        .measure_press(&model, truth_force, truth_loc_mm * 1e-3, &mut rng)
        .expect("press readable");

    println!("\napplied:   {truth_force:.2} N at {truth_loc_mm:.1} mm");
    println!(
        "estimated: {:.2} N at {:.1} mm  (phases: {:.1}°, {:.1}°, residual {:.2}°)",
        reading.force_n,
        reading.location_m * 1e3,
        reading.dphi1_rad.to_degrees(),
        reading.dphi2_rad.to_degrees(),
        reading.residual_rad.to_degrees()
    );
    println!(
        "errors:    {:.2} N, {:.2} mm",
        (reading.force_n - truth_force).abs(),
        (reading.location_m - truth_loc_mm * 1e-3).abs() * 1e3
    );
}

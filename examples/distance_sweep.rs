//! Operating-range demo (paper §5.4): slide the sensor along a 4 m TX–RX
//! line and watch the estimate quality vs geometry.
//!
//! ```sh
//! cargo run --release --example distance_sweep
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use wiforce::pipeline::Simulation;
use wiforce_channel::Scene;

fn main() {
    let carrier = 0.9e9;
    let model = Simulation::paper_default(carrier)
        .vna_calibration()
        .expect("calibration");
    println!("TX at 0 m, RX at 4 m, 10 dBm TX at 900 MHz; pressing 4 N at 40 mm\n");
    println!(
        "{:>10}  {:>14}  {:>9}  {:>11}",
        "tag at (m)", "bs budget (dB)", "est (N)", "err (N)"
    );

    for k in 0..=8 {
        let d = 0.5 + k as f64 * (3.5 - 0.5) / 8.0;
        let mut sim = Simulation::paper_default(carrier);
        sim.scene = Scene::fig18(carrier, d);
        let budget = -20.0 * sim.scene.backscatter_gain(carrier).abs().log10();
        let mut rng = StdRng::seed_from_u64(100 + k);
        match sim.measure_press(&model, 4.0, 0.040, &mut rng) {
            Ok(r) => println!(
                "{d:>10.2}  {budget:>14.1}  {:>9.2}  {:>11.2}",
                r.force_n,
                (r.force_n - 4.0).abs()
            ),
            Err(e) => println!("{d:>10.2}  {budget:>14.1}  {e}"),
        }
    }
    println!("\nworst geometry is the midpoint (largest d1·d2 product),");
    println!("matching the paper's Fig. 18 phase-stability profile.");
}

//! Surgical scenario (paper §5.2): reading the sensor through a
//! muscle/fat/skin tissue phantom at 900 MHz.
//!
//! Demonstrates the full §5.2 story: the two-way budget through tissue,
//! why the bare 60 dB-dynamic-range SDR cannot decode the tag, and how
//! blocking the direct path with a metal plate recovers sensing with only
//! a small accuracy cost.
//!
//! ```sh
//! cargo run --release --example surgical_phantom
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use wiforce::pipeline::Simulation;
use wiforce_channel::Scene;

fn main() {
    let carrier = 0.9e9; // 2.4 GHz is strongly absorbed by tissue (§5.2)
    let model = Simulation::paper_default(carrier)
        .vna_calibration()
        .expect("calibration");

    println!("link budgets at 900 MHz:");
    let ota = Scene::fig12(carrier);
    let phantom = Scene::tissue_phantom(carrier, 0.0);
    println!(
        "  over the air: two-way backscatter loss {:.0} dB",
        -20.0 * ota.backscatter_gain(carrier).abs().log10()
    );
    println!(
        "  through phantom (muscle 25 / fat 10 / skin 2 mm): {:.0} dB",
        -20.0 * phantom.backscatter_gain(carrier).abs().log10()
    );

    // without the plate: direct path saturates the ADC, tag is invisible
    let mut sim = Simulation::paper_default(carrier);
    sim.scene = Scene::tissue_phantom(carrier, 0.0);
    let mut rng = StdRng::seed_from_u64(3);
    println!("\npress 4 N at 50 mm, no metal plate:");
    match sim.measure_press(&model, 4.0, 0.050, &mut rng) {
        Ok(r) => println!("  unexpectedly decoded: {:.2} N", r.force_n),
        Err(e) => println!("  {e}"),
    }

    // with the plate: direct knocked down ~50 dB, sensing recovers. We
    // press at 50 mm here: at the very end of the continuum (the paper's
    // 60 mm point) the far port's shorting point is saturated, so press-
    // to-press mechanical scatter maps almost entirely into force error —
    // the Fig. 16 reproduction presses at 60 mm per the paper and reports
    // that (larger) spread.
    sim.scene = Scene::tissue_phantom(carrier, 50.0);
    sim.reference_groups = 6;
    sim.measure_groups = 6;
    println!("\npresses at 50 mm, metal plate isolating TX/RX:");
    for (truth, loc_mm) in [(2.0, 50.0), (4.0, 50.0), (6.5, 50.0)] {
        match sim.measure_press(&model, truth, loc_mm * 1e-3, &mut rng) {
            Ok(r) => println!(
                "  applied {truth:.1} N → estimated {:.2} N at {:.1} mm",
                r.force_n,
                r.location_m * 1e3
            ),
            Err(e) => println!("  applied {truth:.1} N → {e}"),
        }
    }
    println!("\nin-body haptic feedback, no wires through the incision.");
}

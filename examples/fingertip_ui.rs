//! Fingertip UI demo (paper §5.3): a user presses the sensor with
//! increasing force levels; the streaming estimator turns presses into a
//! live "volume bar" — the force-controlled UI the paper motivates with
//! earbuds and smartwatches.
//!
//! ```sh
//! cargo run --release --example fingertip_ui
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use wiforce::estimator::{EstimatorConfig, ForceEstimator};
use wiforce::pipeline::{Simulation, TagClock};
use wiforce_mech::profile::{FingertipStaircase, PressProfile};
use wiforce_mech::Indenter;

fn bar(force_n: f64) -> String {
    let blocks = (force_n / 8.0 * 30.0).round().max(0.0) as usize;
    format!(
        "[{}{}]",
        "#".repeat(blocks.min(30)),
        " ".repeat(30 - blocks.min(30))
    )
}

fn main() {
    let sim = Simulation::paper_default(2.4e9).with_indenter(Indenter::fingertip());
    let model = sim.vna_calibration().expect("calibration");

    let profile = FingertipStaircase {
        levels_n: vec![1.5, 3.0, 5.0, 2.0, 5.5],
        hold_s: 1.0,
        ..FingertipStaircase::user_study()
    };

    let cfg = EstimatorConfig {
        group: sim.group,
        ..EstimatorConfig::wiforce(1000.0)
    };
    let mut est = ForceEstimator::new(cfg, model);
    let mut rng = StdRng::seed_from_u64(7);
    let mut clock = TagClock::new(&mut rng);

    // acquire the no-touch reference; one snapshot buffer serves the run
    let mut stream = wiforce_dsp::SnapshotMatrix::default();
    sim.run_snapshots_into(
        None,
        cfg.reference_groups,
        &mut clock,
        &mut rng,
        &mut stream,
    );
    for s in stream.rows() {
        let _ = est.push_snapshot(s).expect("reference");
    }
    println!("reference locked — press away!\n");
    println!(
        "{:>6}  {:>9}  {:>9}  volume",
        "t (s)", "truth (N)", "est (N)"
    );

    let group_s = cfg.group.group_duration_s();
    let n_groups = (profile.duration_s() / group_s) as usize;
    for g in 0..n_groups {
        let t = (g as f64 + 0.5) * group_s;
        let force = profile.force_at(t);
        let contact = sim.jittered_contact(force, profile.location_m(), &mut rng);
        stream.clear();
        sim.run_snapshots_into(contact.as_ref(), 1, &mut clock, &mut rng, &mut stream);
        for s in stream.rows() {
            if let Ok(Some(r)) = est.push_snapshot(s) {
                // print every 4th group to keep the output readable
                if g % 4 == 0 {
                    println!(
                        "{t:>6.2}  {force:>9.2}  {:>9.2}  {}",
                        r.force_n,
                        bar(r.force_n)
                    );
                }
            }
        }
    }
    println!("\ndone — the bar tracked the finger's force levels wirelessly.");
}

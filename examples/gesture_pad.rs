//! Gesture pad: the paper's HCI vision end to end.
//!
//! A synthetic user taps, swipes along the continuum, and holds at force
//! levels; the pipeline estimates per-group readings, the Kalman tracker
//! smooths them, and the gesture recognizer emits UI events.
//!
//! ```sh
//! cargo run --release --example gesture_pad
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use wiforce::estimator::{EstimatorConfig, ForceEstimator};
use wiforce::gestures::{Gesture, GestureConfig, GestureRecognizer};
use wiforce::pipeline::{Simulation, TagClock};
use wiforce::tracking::{Tracker, TrackerConfig};
use wiforce_mech::Indenter;

/// One scripted interaction: (duration in groups, force, start → end mm).
struct Segment {
    groups: usize,
    force_n: f64,
    from_mm: f64,
    to_mm: f64,
}

fn main() {
    let sim = Simulation::paper_default(2.4e9).with_indenter(Indenter::fingertip());
    let model = sim.vna_calibration().expect("calibration");
    let cfg = EstimatorConfig {
        group: sim.group,
        ..EstimatorConfig::wiforce(1000.0)
    };
    let mut est = ForceEstimator::new(cfg, model);
    let mut tracker = Tracker::new(TrackerConfig::wiforce());
    let mut gestures = GestureRecognizer::new(GestureConfig::wiforce());
    let mut rng = StdRng::seed_from_u64(0x6E5);
    let mut clock = TagClock::new(&mut rng);

    let mut stream = wiforce_dsp::SnapshotMatrix::default();
    sim.run_snapshots_into(
        None,
        cfg.reference_groups,
        &mut clock,
        &mut rng,
        &mut stream,
    );
    for s in stream.rows() {
        let _ = est.push_snapshot(s).expect("reference");
    }
    println!("reference locked; user starts interacting…\n");

    // script: tap at 30 mm, pause, swipe 20→60 mm, pause, hold 5 N at 45 mm
    let script = [
        Segment {
            groups: 4,
            force_n: 2.0,
            from_mm: 30.0,
            to_mm: 30.0,
        },
        Segment {
            groups: 6,
            force_n: 0.0,
            from_mm: 0.0,
            to_mm: 0.0,
        },
        Segment {
            groups: 10,
            force_n: 3.0,
            from_mm: 20.0,
            to_mm: 60.0,
        },
        Segment {
            groups: 6,
            force_n: 0.0,
            from_mm: 0.0,
            to_mm: 0.0,
        },
        Segment {
            groups: 20,
            force_n: 5.0,
            from_mm: 45.0,
            to_mm: 45.0,
        },
        Segment {
            groups: 4,
            force_n: 0.0,
            from_mm: 0.0,
            to_mm: 0.0,
        },
    ];

    let mut group_idx = 0usize;
    for seg in &script {
        for k in 0..seg.groups {
            let frac = if seg.groups > 1 {
                k as f64 / (seg.groups - 1) as f64
            } else {
                0.0
            };
            let loc_m = (seg.from_mm + frac * (seg.to_mm - seg.from_mm)) * 1e-3;
            let contact = if seg.force_n > 0.0 {
                sim.jittered_contact(seg.force_n, loc_m, &mut rng)
            } else {
                None
            };
            stream.clear();
            sim.run_snapshots_into(contact.as_ref(), 1, &mut clock, &mut rng, &mut stream);
            for snap in stream.rows() {
                if let Ok(Some(raw)) = est.push_snapshot(snap) {
                    group_idx += 1;
                    let smooth = tracker.update(&raw);
                    let mut smoothed_reading = raw;
                    if smooth.touched {
                        smoothed_reading.force_n = smooth.force_n;
                        smoothed_reading.location_m = smooth.location_m;
                    }
                    if let Some(ev) = gestures.push(&smoothed_reading) {
                        let t = group_idx as f64 * 0.036;
                        match ev {
                            Gesture::Tap {
                                location_m,
                                peak_force_n,
                            } => println!(
                                "[{t:5.2} s] TAP   at {:.0} mm ({peak_force_n:.1} N)",
                                location_m * 1e3
                            ),
                            Gesture::Swipe { from_m, to_m } => println!(
                                "[{t:5.2} s] SWIPE {:.0} mm → {:.0} mm ({})",
                                from_m * 1e3,
                                to_m * 1e3,
                                if to_m > from_m { "right" } else { "left" }
                            ),
                            Gesture::Hold {
                                location_m,
                                level,
                                force_n,
                            } => println!(
                                "[{t:5.2} s] HOLD  at {:.0} mm, level {level} ({force_n:.1} N)",
                                location_m * 1e3
                            ),
                        }
                    }
                }
            }
        }
    }
    println!("\ndone — tap, swipe and force-level hold recognized wirelessly.");
}

//! 2-D continuum sensing (paper §7, future work — implemented here):
//! three WiForce strips side by side, each on its own clock frequency,
//! jointly localize a press in both coordinates.
//!
//! ```sh
//! cargo run --release --example continuum_2d
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use wiforce::multisensor::ContinuumSurface;

fn main() {
    // 3 strips, 12 mm apart → a 80 mm × 24 mm sensing surface
    let surface = ContinuumSurface::new(2.4e9, 3, 0.012).expect("surface");
    println!(
        "built a {}-strip surface (80 mm × {} mm), one Doppler channel per strip\n",
        surface.n_strips(),
        (surface.n_strips() - 1) * 12
    );

    let mut rng = StdRng::seed_from_u64(2);
    println!(
        "{:>14}  {:>16}  {:>12}",
        "press (x, y)", "estimate (x, y)", "force est (N)"
    );
    for (force, x_mm, y_mm) in [
        (5.0, 30.0, 0.0),  // on strip 0
        (5.0, 45.0, 12.0), // on strip 1
        (6.0, 55.0, 18.0), // between strips 1 and 2
        (4.0, 25.0, 6.0),  // between strips 0 and 1
    ] {
        match surface.measure_press(force, x_mm * 1e-3, y_mm * 1e-3, &mut rng) {
            Ok(p) => println!(
                "({x_mm:>4.0},{y_mm:>4.0}) mm  ({:>5.1},{:>5.1}) mm  {:>12.2}",
                p.x_m * 1e3,
                p.y_m * 1e3,
                p.force_n
            ),
            Err(e) => println!("({x_mm:>4.0},{y_mm:>4.0}) mm  failed: {e}"),
        }
    }
    println!("\npresses between strips localize by force-weighted interpolation (§7).");
}

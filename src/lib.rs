//! Workspace umbrella crate for the WiForce reproduction.
//!
//! This crate exists to host the runnable examples under `examples/` and the
//! cross-crate integration tests under `tests/`. It re-exports the member
//! crates so examples can use a single dependency root.

pub use wiforce;
pub use wiforce_channel as channel;
pub use wiforce_dsp as dsp;
pub use wiforce_em as em;
pub use wiforce_mech as mech;
pub use wiforce_reader as reader;
pub use wiforce_sensor as sensor;

//! `wiforce-cli` — command-line driver for the WiForce reproduction.
//!
//! ```text
//! wiforce-cli press    [--carrier-ghz 2.4] [--force 4.0] [--location-mm 40] [--seed 11]
//! wiforce-cli sweep    [--carrier-ghz 2.4] [--trials 3]  [--seed 7]
//! wiforce-cli record   --out capture.wifs [--carrier-ghz 2.4] [--force 4.0]
//!                      [--location-mm 40] [--groups 4] [--seed 11]
//! wiforce-cli replay   --in capture.wifs [--carrier-ghz 2.4]
//! wiforce-cli spectrum --in capture.wifs [--snr-db 10] [--waterfall 1]
//! wiforce-cli calibrate --out model.wfm [--carrier-ghz 2.4]
//! wiforce-cli health   [--health-json health.json] [--carrier-ghz 2.4] [--seed 11]
//! wiforce-cli serve    [--streams 4] [--presses 4] [--readers 1] [--workers 4]
//!                      [--queue 4] [--faults none|harsh|saturating] [--seed 5]
//!                      [--overflow stall|drop-newest] [--throttle-ms N]
//!                      [--watch 1] [--trace t.json] [--metrics m.prom]
//! wiforce-cli trace    --out trace.json [serve flags]
//! wiforce-cli metrics  [--out metrics.prom] [serve flags]
//! ```
//!
//! `serve` drives the multi-stream batch engine (`wiforce::batch`): it
//! builds `--readers` simulated reader front ends, each carrying
//! `--streams` frequency-multiplexed tags with `--presses` scheduled
//! presses per stream, and runs them through `run_batch` on a
//! `--workers`-thread pool with `--queue`-deep per-stream snapshot
//! queues. It prints a per-stream result table plus aggregate throughput,
//! latency, and backpressure statistics. Health windows (rolling
//! latency percentiles + degradation flags per stream) are aggregated
//! during the run; `--watch 1` streams each completed window to stderr
//! as single-line JSON while the batch is still running.
//!
//! `trace` runs the same workload with the per-worker trace rings
//! enabled and writes a Chrome trace-event JSON (loadable in Perfetto /
//! `chrome://tracing`) with one lane per worker thread, span events for
//! every instrumented stage, flow arrows for produce→consume and fused
//! synth→extract handoffs, and queue-depth counter tracks. `metrics`
//! runs it with the metrics registry enabled and emits Prometheus text
//! exposition (per-stream and per-worker series) to `--out` or stdout.
//! The same exports ride along with `serve` via `--trace`/`--metrics`.
//!
//! `press` and `replay` accept `--model model.wfm` to reuse a saved
//! calibration instead of re-deriving it.
//!
//! `press`, `sweep`, `replay`, and `health` accept `--health-json <path>`:
//! the telemetry recorder is enabled for the run and the aggregated
//! [`wiforce_telemetry::PipelineHealth`] report (per-stage latency
//! percentiles, harmonic SNR gauges, estimator lock state, fault
//! counters) is written to the path as JSON. The `health` command
//! exercises the whole stack — calibrated press, streaming estimator
//! with tracking, and the sample-level stream receiver — so its report
//! covers every subsystem; with no `--health-json` it prints the JSON to
//! stdout.
//!
//! Argument parsing is deliberately dependency-free (`--key value` pairs).

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use std::process::ExitCode;
use wiforce::batch::{run_batch_observed, BatchConfig, BatchReport, OverflowPolicy, ReaderSpec};
use wiforce::estimator::{EstimatorConfig, ForceEstimator};
use wiforce::pipeline::{Simulation, TagClock};
use wiforce::record::Recording;
use wiforce::spectrum::{discover_tags, DopplerSpectrum};
use wiforce::tracking::{Tracker, TrackerConfig};
use wiforce_channel::faults::FaultConfig;
use wiforce_telemetry::{metrics, trace, AggregatorConfig, PipelineHealth, StreamWindow};

/// Minimal `--key value` argument map.
struct Args {
    pairs: Vec<(String, String)>,
}

impl Args {
    fn parse(argv: &[String]) -> Result<Self, String> {
        let mut pairs = Vec::new();
        let mut it = argv.iter();
        while let Some(key) = it.next() {
            let Some(name) = key.strip_prefix("--") else {
                return Err(format!("expected --flag, got '{key}'"));
            };
            let Some(value) = it.next() else {
                return Err(format!("--{name} needs a value"));
            };
            pairs.push((name.to_string(), value.clone()));
        }
        Ok(Args { pairs })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.pairs
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    fn f64_or(&self, name: &str, default: f64) -> Result<f64, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name}: '{v}' is not a number")),
        }
    }

    fn u64_or(&self, name: &str, default: u64) -> Result<u64, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name}: '{v}' is not an integer")),
        }
    }

    fn path(&self, name: &str) -> Result<PathBuf, String> {
        self.get(name)
            .map(PathBuf::from)
            .ok_or(format!("missing required --{name}"))
    }
}

fn usage() -> &'static str {
    "usage: wiforce-cli <press|sweep|record|replay|spectrum|calibrate|health|serve|trace|metrics> [--key value ...]\n\
     \n\
     press    simulate one calibrated press and print the estimate\n\
     sweep    run a small Monte-Carlo press sweep and print error medians\n\
     record   capture a snapshot stream (reference + press) to a .wifs file\n\
     replay   run the streaming estimator over a .wifs capture\n\
     spectrum Doppler spectrum + tag discovery of a .wifs capture\n\
     calibrate derive the sensor model and save it to a .wfm file\n\
     health   run the full stack with telemetry on and emit a health report\n\
     serve    run N frequency-multiplexed streams through the batch engine\n\
     trace    run the serve workload with trace rings on; write Chrome trace JSON\n\
     metrics  run the serve workload with the metrics registry on; emit Prometheus text\n\
     \n\
     common flags: --carrier-ghz F  --force N  --location-mm MM  --seed N  --model F.wfm\n\
     press/sweep/replay/health/serve: --health-json PATH  write a PipelineHealth report\n\
     serve/trace/metrics: --streams N  --presses N  --readers N  --workers N  --queue N\n\
     \x20       --faults none|harsh|saturating  --overflow stall|drop-newest\n\
     \x20       --throttle-ms N  --watch 1  --cross-stream 1\n\
     \x20       --synth-mode auto|spectral|wide|row  pin the synthesis arm\n\
     serve: --trace PATH  --metrics PATH    trace: --out PATH    metrics: --out PATH"
}

/// `--health-json` handling: when the flag is present, [`enable`]
/// switches the telemetry recorder on for the run and [`finish`] writes
/// the aggregated report; without the flag both are no-ops.
struct HealthSink {
    out: Option<PathBuf>,
}

impl HealthSink {
    fn enable(args: &Args) -> HealthSink {
        let out = args.get("health-json").map(PathBuf::from);
        if out.is_some() {
            wiforce_telemetry::reset();
            wiforce_telemetry::set_enabled(true);
        }
        HealthSink { out }
    }

    fn finish(self) -> Result<(), String> {
        let Some(path) = self.out else { return Ok(()) };
        wiforce_telemetry::set_enabled(false);
        let health = PipelineHealth::collect();
        std::fs::write(&path, health.to_json())
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
        println!("wrote health report to {}", path.display());
        Ok(())
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = argv.split_first() else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    let args = match Args::parse(rest) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", usage());
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "press" => cmd_press(&args),
        "sweep" => cmd_sweep(&args),
        "record" => cmd_record(&args),
        "replay" => cmd_replay(&args),
        "spectrum" => cmd_spectrum(&args),
        "calibrate" => cmd_calibrate(&args),
        "health" => cmd_health(&args),
        "serve" => cmd_serve(&args),
        "trace" => cmd_trace(&args),
        "metrics" => cmd_metrics(&args),
        other => Err(format!("unknown command '{other}'\n\n{}", usage())),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn sim_from(args: &Args) -> Result<Simulation, String> {
    let carrier = args.f64_or("carrier-ghz", 2.4)? * 1e9;
    if !(0.3e9..=6.0e9).contains(&carrier) {
        return Err("carrier must be between 0.3 and 6 GHz".into());
    }
    Ok(Simulation::paper_default(carrier))
}

/// Loads `--model file.wfm` if given, else calibrates from scratch.
fn model_from(args: &Args, sim: &Simulation) -> Result<wiforce::SensorModel, String> {
    match args.get("model") {
        Some(path) => wiforce::SensorModel::load(std::path::Path::new(path))
            .map_err(|e| format!("loading model: {e}")),
        None => sim.vna_calibration().map_err(|e| e.to_string()),
    }
}

fn cmd_calibrate(args: &Args) -> Result<(), String> {
    let sim = sim_from(args)?;
    let out = args.path("out")?;
    let model = sim.vna_calibration().map_err(|e| e.to_string())?;
    model.save(&out).map_err(|e| e.to_string())?;
    println!(
        "calibrated at {:?} mm, saved to {}",
        model
            .locations_m()
            .iter()
            .map(|m| (m * 1e3).round())
            .collect::<Vec<_>>(),
        out.display()
    );
    Ok(())
}

fn cmd_press(args: &Args) -> Result<(), String> {
    let sim = sim_from(args)?;
    let force = args.f64_or("force", 4.0)?;
    let loc = args.f64_or("location-mm", 40.0)? * 1e-3;
    let seed = args.u64_or("seed", 11)?;
    let model = model_from(args, &sim)?;
    let health = HealthSink::enable(args);
    let mut rng = StdRng::seed_from_u64(seed);
    let r = sim
        .measure_press(&model, force, loc, &mut rng)
        .map_err(|e| e.to_string())?;
    println!("applied:   {force:.2} N at {:.1} mm", loc * 1e3);
    println!(
        "estimated: {:.2} N at {:.1} mm  (φ1 {:.1}°, φ2 {:.1}°, residual {:.2}°)",
        r.force_n,
        r.location_m * 1e3,
        r.dphi1_rad.to_degrees(),
        r.dphi2_rad.to_degrees(),
        r.residual_rad.to_degrees()
    );
    health.finish()
}

fn cmd_sweep(args: &Args) -> Result<(), String> {
    let sim = sim_from(args)?;
    let trials = args.u64_or("trials", 3)? as usize;
    let seed = args.u64_or("seed", 7)?;
    let model = sim.vna_calibration().map_err(|e| e.to_string())?;
    let health = HealthSink::enable(args);
    let mut f_errs = Vec::new();
    let mut l_errs = Vec::new();
    let mut k = 0u64;
    for &loc in &[0.020, 0.040, 0.055, 0.060] {
        for &force in &[1.0, 2.5, 4.0, 5.5, 7.0] {
            for _ in 0..trials {
                let mut rng = StdRng::seed_from_u64(seed.wrapping_add(k.wrapping_mul(6151)));
                k += 1;
                if let Ok(r) = sim.measure_press(&model, force, loc, &mut rng) {
                    f_errs.push((r.force_n - force).abs());
                    l_errs.push((r.location_m - loc).abs() * 1e3);
                }
            }
        }
    }
    println!("{} presses decoded", f_errs.len());
    println!(
        "median force error:    {:.2} N",
        wiforce_dsp::stats::median(&f_errs)
    );
    println!(
        "median location error: {:.2} mm",
        wiforce_dsp::stats::median(&l_errs)
    );
    health.finish()
}

fn cmd_record(args: &Args) -> Result<(), String> {
    let sim = sim_from(args)?;
    let out = args.path("out")?;
    let force = args.f64_or("force", 4.0)?;
    let loc = args.f64_or("location-mm", 40.0)? * 1e-3;
    let groups = args.u64_or("groups", 4)? as usize;
    let seed = args.u64_or("seed", 11)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut clock = TagClock::new(&mut rng);
    // half the capture untouched (reference), half pressed
    let ref_groups = groups.div_ceil(2);
    let mut snaps = sim.run_snapshots(None, ref_groups, &mut clock, &mut rng);
    let contact = sim.jittered_contact(force, loc, &mut rng);
    sim.run_snapshots_into(
        contact.as_ref(),
        groups - ref_groups,
        &mut clock,
        &mut rng,
        &mut snaps,
    );
    let rec = Recording::new(sim.group.snapshot_period_s, snaps);
    rec.save(&out).map_err(|e| e.to_string())?;
    println!(
        "wrote {} snapshots × {} subcarriers ({:.1} ms) to {}",
        rec.len(),
        rec.n_subcarriers(),
        rec.duration_s() * 1e3,
        out.display()
    );
    println!(
        "(first {ref_groups} groups untouched, then {force} N at {:.0} mm)",
        loc * 1e3
    );
    Ok(())
}

fn cmd_replay(args: &Args) -> Result<(), String> {
    let sim = sim_from(args)?;
    let input = args.path("in")?;
    let rec = Recording::load(&input).map_err(|e| e.to_string())?;
    if (rec.snapshot_period_s - sim.group.snapshot_period_s).abs() > 1e-9 {
        return Err(format!(
            "capture period {:.2} µs doesn't match the reader's {:.2} µs",
            rec.snapshot_period_s * 1e6,
            sim.group.snapshot_period_s * 1e6
        ));
    }
    let model = model_from(args, &sim)?;
    let health = HealthSink::enable(args);
    let cfg = EstimatorConfig {
        group: sim.group,
        reference_groups: 1,
        ..EstimatorConfig::wiforce(1000.0)
    };
    let mut est = ForceEstimator::new(cfg, model);
    let mut n_readings = 0;
    for (i, snap) in rec.snapshots.rows().enumerate() {
        match est.push_snapshot(snap) {
            Ok(Some(r)) if r.touched => {
                n_readings += 1;
                println!(
                    "t={:7.1} ms  {:.2} N at {:.1} mm",
                    (i + 1) as f64 * rec.snapshot_period_s * 1e3,
                    r.force_n,
                    r.location_m * 1e3
                );
            }
            Ok(Some(_)) => {
                n_readings += 1;
                println!(
                    "t={:7.1} ms  untouched",
                    (i + 1) as f64 * rec.snapshot_period_s * 1e3
                );
            }
            Ok(None) => {}
            Err(e) => println!(
                "t={:7.1} ms  {e}",
                (i + 1) as f64 * rec.snapshot_period_s * 1e3
            ),
        }
    }
    println!("{n_readings} readings from {} snapshots", rec.len());
    health.finish()
}

fn cmd_spectrum(args: &Args) -> Result<(), String> {
    let input = args.path("in")?;
    let snr_db = args.f64_or("snr-db", 10.0)?;
    let rec = Recording::load(&input).map_err(|e| e.to_string())?;
    if rec.len() < 2 {
        return Err("capture too short for a spectrum".into());
    }
    let spec = DopplerSpectrum::compute(rec.snapshots.view(), rec.snapshot_period_s);
    println!(
        "Doppler spectrum: {} bins, {:.1} Hz resolution, floor {:.3e}",
        spec.power.len(),
        spec.resolution_hz(),
        spec.floor()
    );
    let peaks = spec.peaks(snr_db);
    println!("peaks ≥ {snr_db} dB above floor:");
    for (f, p) in peaks.iter().take(12) {
        println!("  {f:8.1} Hz  power {p:.3e}");
    }
    let tags = discover_tags(&spec, snr_db);
    if tags.is_empty() {
        println!("no WiForce tags discovered");
    } else {
        for t in tags {
            println!(
                "discovered tag: fs = {:.1} Hz (lines at {:.1} / {:.1} Hz)",
                t.fs_hz,
                t.fs_hz,
                4.0 * t.fs_hz
            );
        }
    }

    if args.u64_or("waterfall", 0)? != 0 {
        println!("\nwaterfall (per-frame dominant Doppler):");
        // collapse subcarriers (coherent mean) into one sequence
        let k = rec.n_subcarriers().max(1) as f64;
        let seq: Vec<wiforce_dsp::Complex> = rec
            .snapshots
            .rows()
            .map(|snap| snap.iter().copied().sum::<wiforce_dsp::Complex>() / k)
            .collect();
        let frame = (rec.len() / 4).clamp(64, 512);
        let sg =
            wiforce_dsp::stft::spectrogram(&seq, 1.0 / rec.snapshot_period_s, frame, frame / 2);
        let envelope = sg.frame_power();
        for (t, power) in envelope.iter().enumerate() {
            println!(
                "  t={:7.1} ms  peak {:7.1} Hz  power {:.3e}",
                sg.times_s[t] * 1e3,
                sg.peak_frequency_hz(t),
                power
            );
        }
    }
    Ok(())
}

/// Runs every subsystem once with telemetry enabled — a calibrated press
/// (mechanics, EM transduction, channel, sounder, fault injection,
/// harmonic extraction, model inversion), the streaming estimator with
/// Kalman tracking, and the sample-level stream receiver — then emits the
/// aggregated [`PipelineHealth`] report.
fn cmd_health(args: &Args) -> Result<(), String> {
    let sim = sim_from(args)?;
    let force = args.f64_or("force", 4.0)?;
    let loc = args.f64_or("location-mm", 40.0)? * 1e-3;
    let seed = args.u64_or("seed", 11)?;
    let model = model_from(args, &sim)?;

    // surface which SIMD backend the DSP kernels dispatched to (stderr,
    // so piped JSON output stays clean); WIFORCE_FORCE_SCALAR=1 shows the
    // scalar fallback here
    eprintln!(
        "dsp kernels: {} backend{}",
        wiforce_dsp::kernels::backend().name(),
        if wiforce_dsp::kernels::forced_scalar() {
            " (WIFORCE_FORCE_SCALAR)"
        } else {
            ""
        }
    );
    for (kernel, backend) in wiforce_dsp::kernels::active_kernels() {
        eprintln!("  {kernel:<24} {backend}");
    }

    wiforce_telemetry::reset();
    wiforce_telemetry::set_enabled(true);
    let mut rng = StdRng::seed_from_u64(seed);

    // 1. one calibrated press through the batch pipeline
    sim.measure_press(&model, force, loc, &mut rng)
        .map_err(|e| e.to_string())?;

    // 2. streaming estimator + tracker over a quiet-then-pressed stream
    let cfg = EstimatorConfig {
        group: sim.group,
        reference_groups: 1,
        ..EstimatorConfig::wiforce(1000.0)
    };
    let mut est = ForceEstimator::new(cfg, model);
    let mut tracker = Tracker::new(TrackerConfig::wiforce());
    let mut clock = TagClock::new(&mut rng);
    let quiet = sim.run_snapshots(None, 1, &mut clock, &mut rng);
    for s in quiet.rows() {
        let _ = est.push_snapshot(s).map_err(|e| e.to_string())?;
    }
    let contact = sim.jittered_contact(force, loc, &mut rng);
    let pressed = sim.run_snapshots(contact.as_ref(), 1, &mut clock, &mut rng);
    for s in pressed.rows() {
        if let Some(r) = est.push_snapshot(s).map_err(|e| e.to_string())? {
            tracker.update(&r);
        }
    }

    // 3. sample-level receiver: preamble sync + per-frame channel decode
    let sounder = wiforce_reader::ofdm::OfdmSounder::wiforce();
    let chans: Vec<Vec<wiforce_dsp::Complex>> = (0..4)
        .map(|f| {
            (0..sounder.n_subcarriers)
                .map(|k| wiforce_dsp::Complex::from_polar(0.5, 0.02 * k as f64 + 0.05 * f as f64))
                .collect()
        })
        .collect();
    let rx = wiforce_reader::stream::simulate_rx_stream(&sounder, &chans, 1e-4, 64, &mut rng);
    let receiver = wiforce_reader::stream::StreamReceiver::new(sounder);
    if receiver.process(&rx).is_none() {
        return Err("stream receiver failed to sync".into());
    }

    // cache gauges are end-of-run only (mid-run readings of the shared
    // memo counters are scheduling-dependent)
    sim.emit_cache_gauges();
    wiforce_telemetry::set_enabled(false);
    let report = PipelineHealth::collect();
    match args.get("health-json") {
        Some(path) => {
            std::fs::write(path, report.to_json()).map_err(|e| format!("writing {path}: {e}"))?;
            println!("wrote health report to {path}");
        }
        None => print!("{}", report.to_json()),
    }
    Ok(())
}

/// Runs the `serve`-shaped batch workload from the shared flag set.
/// Health windows are always aggregated; with `--watch 1` each completed
/// window is streamed to stderr as single-line JSON while the batch
/// runs. Returns the report plus the reader/worker counts for display.
fn run_serve_workload(args: &Args) -> Result<(BatchReport, usize, usize), String> {
    let mut sim = sim_from(args)?;
    // pin the synthesis arm regardless of WIFORCE_SYNTH_* env defaults;
    // "auto" keeps env/heuristic selection. spectral falls back to the
    // time-domain arm per-reader when the scene is ineligible.
    match args.get("synth-mode").unwrap_or("auto") {
        "auto" => {}
        "spectral" => sim.synth_spectral = Some(true),
        "wide" => {
            sim.synth_spectral = Some(false);
            sim.synth_wide = Some(true);
        }
        "row" => {
            sim.synth_spectral = Some(false);
            sim.synth_wide = Some(false);
        }
        other => {
            return Err(format!(
                "--synth-mode '{other}': expected auto|spectral|wide|row"
            ))
        }
    }
    let streams = args.u64_or("streams", 4)?.max(1) as usize;
    let presses = args.u64_or("presses", 4)?.max(1) as usize;
    let readers = args.u64_or("readers", 1)?.max(1) as usize;
    let workers = args.u64_or("workers", 4)?.max(1) as usize;
    let queue = args.u64_or("queue", 4)?.max(1) as usize;
    let seed = args.u64_or("seed", 5)?;
    let faults = match args.get("faults").unwrap_or("none") {
        "none" => FaultConfig::none(),
        "harsh" => FaultConfig::harsh(),
        "saturating" => FaultConfig::saturating(),
        other => {
            return Err(format!(
                "--faults '{other}': expected none|harsh|saturating"
            ))
        }
    };
    let overflow = match args.get("overflow").unwrap_or("stall") {
        "stall" => OverflowPolicy::Stall,
        "drop-newest" => OverflowPolicy::DropNewest,
        other => return Err(format!("--overflow '{other}': expected stall|drop-newest")),
    };
    let throttle_ms = args.f64_or("throttle-ms", 0.0)?;
    let watch = args.u64_or("watch", 0)? != 0;
    let model = std::sync::Arc::new(model_from(args, &sim)?);

    let specs: Vec<ReaderSpec> = (0..readers)
        .map(|r| {
            ReaderSpec::frequency_multiplexed(streams, presses, seed + r as u64, &sim.group)
                .map(|s| s.with_faults(faults))
        })
        .collect::<Result<_, _>>()
        .map_err(|e| e.to_string())?;
    let cross_stream = args.u64_or("cross-stream", 0)? != 0;
    let cfg = BatchConfig {
        workers,
        queue_capacity: queue,
        overflow,
        cross_stream,
        consume_throttle: (throttle_ms > 0.0)
            .then(|| std::time::Duration::from_secs_f64(throttle_ms * 1e-3)),
        ..BatchConfig::wiforce(workers)
    };
    let emit = |w: &StreamWindow| eprintln!("{}", w.to_json());
    let observer: Option<&(dyn Fn(&StreamWindow) + Sync)> = watch.then_some(&emit);
    let report = run_batch_observed(
        &sim,
        &model,
        &specs,
        &cfg,
        Some(AggregatorConfig::default()),
        observer,
    )
    .map_err(|e| e.to_string())?;
    Ok((report, readers, workers))
}

fn print_serve_report(report: &BatchReport, readers: usize, workers: usize) {
    println!(
        "{:<12} {:>6} {:>9} {:>9} {:>6} {:>7} {:>12}",
        "stream", "reader", "clock Hz", "readings", "fail", "drops", "p95 lat ms"
    );
    for s in &report.streams {
        println!(
            "{:<12} {:>6} {:>9.1} {:>9} {:>6} {:>7} {:>12.3}",
            s.name,
            s.reader,
            s.fs_hz,
            s.readings.len(),
            s.failures,
            s.groups_dropped,
            s.p95_latency_ns() as f64 / 1e6
        );
    }
    println!(
        "\n{} streams on {} reader(s), {} workers: {} groups in {:.2} s",
        report.streams.len(),
        readers,
        workers,
        report.groups_produced,
        report.elapsed.as_secs_f64()
    );
    println!(
        "throughput {:.1} presses/s, p95 group latency {:.3} ms",
        report.presses_per_sec(),
        report.p95_stream_latency_ns() as f64 / 1e6
    );
    println!(
        "backpressure events {}, queue drops {}, snapshots dropped {}, bursts injected {}",
        report.backpressure_events,
        report.groups_dropped,
        report.snapshots_dropped,
        report.bursts_injected
    );
    for h in &report.health {
        if h.flags.any() {
            println!(
                "degraded: {} ({} of {} windows; snr_below_floor={} queue_saturated={} worker_starved={})",
                h.stream,
                h.degraded_windows,
                h.windows,
                h.flags.snr_below_floor,
                h.flags.queue_saturated,
                h.flags.worker_starved
            );
        }
    }
}

/// Writes the collected trace ring contents as Chrome trace-event JSON.
fn export_trace(path: &str) -> Result<(), String> {
    trace::set_trace_enabled(false);
    let snap = trace::collect();
    std::fs::write(path, snap.chrome_trace()).map_err(|e| format!("writing {path}: {e}"))?;
    println!(
        "wrote {} trace events across {} lanes ({} dropped) to {path}",
        snap.total_events(),
        snap.lanes.len(),
        snap.dropped
    );
    Ok(())
}

/// Writes (or prints) the metrics registry as Prometheus text.
fn export_metrics(path: Option<&str>) -> Result<(), String> {
    metrics::set_metrics_enabled(false);
    let text = metrics::snapshot().prometheus();
    match path {
        Some(path) => {
            std::fs::write(path, &text).map_err(|e| format!("writing {path}: {e}"))?;
            println!("wrote metrics exposition to {path}");
        }
        None => print!("{text}"),
    }
    Ok(())
}

fn cmd_serve(args: &Args) -> Result<(), String> {
    let health = HealthSink::enable(args);
    let tracing = args.get("trace").is_some();
    if tracing {
        trace::reset();
        trace::set_trace_enabled(true);
    }
    if args.get("metrics").is_some() {
        metrics::reset();
        metrics::set_metrics_enabled(true);
    }
    let (report, readers, workers) = run_serve_workload(args)?;
    print_serve_report(&report, readers, workers);
    if let Some(path) = args.get("trace") {
        export_trace(path)?;
    }
    if let Some(path) = args.get("metrics") {
        export_metrics(Some(path))?;
    }
    health.finish()
}

fn cmd_trace(args: &Args) -> Result<(), String> {
    let out = args.path("out")?;
    trace::reset();
    trace::set_trace_enabled(true);
    let (report, readers, workers) = run_serve_workload(args)?;
    print_serve_report(&report, readers, workers);
    export_trace(&out.display().to_string())
}

fn cmd_metrics(args: &Args) -> Result<(), String> {
    metrics::reset();
    metrics::set_metrics_enabled(true);
    let (report, readers, workers) = run_serve_workload(args)?;
    // summary to stderr so a piped stdout stays pure Prometheus text
    eprintln!(
        "{} streams, {} reader(s), {} workers: {} groups in {:.2} s",
        report.streams.len(),
        readers,
        workers,
        report.groups_produced,
        report.elapsed.as_secs_f64()
    );
    export_metrics(args.get("out"))
}

//! Telemetry must be an observer, not a participant: enabling the
//! recorder may not change a single output bit of the estimation
//! pipeline, because the instrumentation never touches RNG or numeric
//! state. Runs the same seeded press with the recorder off and on and
//! compares every field bitwise.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use wiforce::estimator::ForceReading;
use wiforce::pipeline::Simulation;
use wiforce::WiForceError;

fn run_press(
    sim: &Simulation,
    model: &wiforce::SensorModel,
    force: f64,
    loc: f64,
    seed: u64,
) -> Result<ForceReading, WiForceError> {
    let mut rng = StdRng::seed_from_u64(seed);
    sim.measure_press(model, force, loc, &mut rng)
}

proptest! {
    // each case runs two full presses (~40 ms), so keep the count low
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    #[test]
    fn telemetry_does_not_perturb_estimates(
        force in 1.0f64..7.0,
        loc in 0.018f64..0.062,
        seed in 0u64..10_000,
    ) {
        let mut sim = Simulation::paper_default(2.4e9);
        sim.reference_groups = 1;
        sim.measure_groups = 1;
        let model = sim.vna_calibration().expect("calibration");

        wiforce_telemetry::set_enabled(false);
        wiforce_telemetry::reset();
        let off = run_press(&sim, &model, force, loc, seed);

        wiforce_telemetry::set_enabled(true);
        wiforce_telemetry::reset();
        let on = run_press(&sim, &model, force, loc, seed);
        wiforce_telemetry::set_enabled(false);
        let recorded = wiforce_telemetry::take();

        match (off, on) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a.force_n.to_bits(), b.force_n.to_bits());
                prop_assert_eq!(a.location_m.to_bits(), b.location_m.to_bits());
                prop_assert_eq!(a.dphi1_rad.to_bits(), b.dphi1_rad.to_bits());
                prop_assert_eq!(a.dphi2_rad.to_bits(), b.dphi2_rad.to_bits());
                prop_assert_eq!(a.residual_rad.to_bits(), b.residual_rad.to_bits());
                prop_assert_eq!(a.touched, b.touched);
            }
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(false, "off/on diverged: {a:?} vs {b:?}"),
        }

        // the instrumented run really recorded the pipeline
        prop_assert_eq!(recorded.counters.get("pipeline.presses"), Some(&1));
        prop_assert!(recorded
            .spans
            .keys()
            .any(|k| k.starts_with("pipeline.measure_press")));
    }
}

//! Cross-crate integration: the full press → mechanics → RF → channel →
//! reader → algorithm → estimate loop, under realistic and adverse
//! conditions.

use rand::rngs::StdRng;
use rand::SeedableRng;
use wiforce::pipeline::Simulation;
use wiforce::WiForceError;
use wiforce_channel::faults::FaultConfig;
use wiforce_dsp::stats::median;

/// Median absolute force/location error over a small press grid.
fn grid_errors(sim: &Simulation, seed: u64) -> (f64, f64) {
    let model = sim.vna_calibration().expect("calibration");
    let mut f_errs = Vec::new();
    let mut l_errs = Vec::new();
    let mut k = 0u64;
    for &loc in &[0.025, 0.040, 0.055] {
        for &force in &[2.0, 4.0, 6.0] {
            let mut rng = StdRng::seed_from_u64(seed + k * 7877);
            k += 1;
            let r = sim
                .measure_press(&model, force, loc, &mut rng)
                .expect("press readable");
            f_errs.push((r.force_n - force).abs());
            l_errs.push((r.location_m - loc).abs() * 1e3);
        }
    }
    (median(&f_errs), median(&l_errs))
}

#[test]
fn both_carriers_estimate_accurately() {
    let (f900, l900) = grid_errors(&Simulation::paper_default(0.9e9), 1);
    let (f24, l24) = grid_errors(&Simulation::paper_default(2.4e9), 2);
    // accuracy bands around the paper's headline numbers
    assert!(f900 < 1.4, "900 MHz median force error {f900} N");
    assert!(f24 < 0.9, "2.4 GHz median force error {f24} N");
    assert!(l900 < 2.5, "900 MHz median location error {l900} mm");
    assert!(l24 < 1.6, "2.4 GHz median location error {l24} mm");
}

#[test]
fn spectral_synthesis_estimates_match_paper_bounds() {
    // the spectral arm draws a different (but statistically identical)
    // noise realization than the time-domain paths, so its end-to-end
    // error CDF must land in the same accuracy band — median against the
    // headline bounds, and the worst grid press bounded too
    let mut sim = Simulation::paper_default(2.4e9);
    sim.synth_spectral = Some(true);
    let model = sim.vna_calibration().expect("calibration");
    let mut f_errs = Vec::new();
    let mut l_errs = Vec::new();
    let mut k = 0u64;
    for &loc in &[0.025, 0.040, 0.055] {
        for &force in &[2.0, 4.0, 6.0] {
            let mut rng = StdRng::seed_from_u64(2 + k * 7877);
            k += 1;
            let r = sim
                .measure_press(&model, force, loc, &mut rng)
                .expect("press readable");
            f_errs.push((r.force_n - force).abs());
            l_errs.push((r.location_m - loc).abs() * 1e3);
        }
    }
    let (f_med, l_med) = (median(&f_errs), median(&l_errs));
    assert!(f_med < 0.9, "spectral median force error {f_med} N");
    assert!(l_med < 1.6, "spectral median location error {l_med} mm");
    let f_max = f_errs.iter().cloned().fold(0.0f64, f64::max);
    let l_max = l_errs.iter().cloned().fold(0.0f64, f64::max);
    assert!(f_max < 2.5, "spectral worst force error {f_max} N");
    assert!(l_max < 6.0, "spectral worst location error {l_max} mm");
}

#[test]
fn survives_harsh_fault_injection() {
    // dropped snapshots, tag clock offset, interference bursts — the
    // pipeline must keep estimating, if less precisely
    let mut sim = Simulation::paper_default(2.4e9);
    sim.faults = FaultConfig::harsh();
    let (f_err, l_err) = grid_errors(&sim, 3);
    assert!(f_err < 2.5, "median force error under faults {f_err} N");
    assert!(l_err < 5.0, "median location error under faults {l_err} mm");
}

#[test]
fn fmcw_reader_is_interchangeable() {
    // the waveform-agnostic claim, end to end
    let sim = Simulation::paper_default(0.9e9).with_fmcw_sounder();
    let (f_err, l_err) = grid_errors(&sim, 4);
    assert!(f_err < 1.8, "FMCW median force error {f_err} N");
    assert!(l_err < 3.0, "FMCW median location error {l_err} mm");
}

#[test]
fn fd_mechanics_pipeline_estimates() {
    // full finite-difference contact solver driving the pipeline; the
    // calibration is rebuilt from the same solver so the loop closes
    let mut sim = Simulation::paper_default(2.4e9).with_fd_mechanics();
    sim.reference_groups = 1;
    sim.measure_groups = 1;
    let model = sim.vna_calibration().expect("calibration");
    let mut rng = StdRng::seed_from_u64(5);
    let r = sim
        .measure_press(&model, 4.0, 0.040, &mut rng)
        .expect("press");
    assert!((r.force_n - 4.0).abs() < 1.2, "force {}", r.force_n);
    assert!((r.location_m - 0.040).abs() < 5e-3, "loc {}", r.location_m);
}

#[test]
fn light_touch_reports_untouched() {
    let sim = Simulation::paper_default(0.9e9);
    let model = sim.vna_calibration().expect("calibration");
    let mut rng = StdRng::seed_from_u64(6);
    // 1 mN is far below the touch threshold: no contact, near-zero phases
    let r = sim.measure_press(&model, 0.001, 0.040, &mut rng);
    match r {
        Ok(reading) => assert!(!reading.touched, "phantom touch: {reading:?}"),
        Err(WiForceError::OutOfModelRange { phi1, phi2 }) => {
            // acceptable: tiny phases that the calibrated range excludes
            assert!(phi1.abs() < 0.1 && phi2.abs() < 0.1);
        }
        Err(e) => panic!("unexpected error: {e}"),
    }
}

#[test]
fn deeper_presses_move_phases_monotonically() {
    // end-to-end transduction sanity at 900 MHz: wireless differential
    // phase decreases (short approaching port) as force grows
    let sim = Simulation::paper_default(0.9e9);
    let mut prev = f64::INFINITY;
    for (i, force) in [1.0, 3.0, 5.0, 7.0].iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(7 + i as u64);
        let contact = sim.contact_for(*force, 0.040);
        let d = sim
            .measure_phases(contact.as_ref(), &mut rng)
            .expect("detectable");
        assert!(d.dphi1_rad < prev, "{} !< {prev} at {force} N", d.dphi1_rad);
        prev = d.dphi1_rad;
    }
}

#[test]
fn clock_tracking_rescues_drifting_tag() {
    // a constant tag-clock error (free-running Arduino, §4.4) ramps the
    // line phases between reference and measurement; fixed-bin reading
    // (the paper's) breaks, frequency tracking recovers
    let drift_ppm = 300.0;
    let press = |track: bool| -> f64 {
        let mut sim = Simulation::paper_default(0.9e9);
        sim.faults.tag_clock_ppm = drift_ppm;
        sim.track_tag_clock = track;
        sim.reference_groups = 6;
        sim.patch_position_jitter_m = 0.0;
        sim.patch_edge_jitter_m = 0.0;
        let (v1, _) = sim.vna_phases(4.0, 0.040);
        let contact = sim.contact_for(4.0, 0.040);
        let mut errs = Vec::new();
        for seed in 0..4 {
            let mut rng = StdRng::seed_from_u64(0xC10C + seed);
            if let Ok(d) = sim.measure_phases(contact.as_ref(), &mut rng) {
                errs.push(
                    wiforce_dsp::phase::wrap_to_pi(d.dphi1_rad - v1)
                        .to_degrees()
                        .abs(),
                );
            }
        }
        median(&errs)
    };
    let untracked = press(false);
    let tracked = press(true);
    assert!(
        untracked > 3.0,
        "300 ppm drift should corrupt fixed-bin phases, got {untracked}°"
    );
    assert!(tracked < 1.5, "tracking should recover, got {tracked}°");
    assert!(tracked < untracked / 2.0);
}

#[test]
fn tag_discovery_on_real_stream() {
    // the reader shouldn't need to be told fs: discover it from the
    // Doppler spectrum of a raw snapshot stream
    use wiforce::pipeline::TagClock;
    use wiforce::spectrum::{discover_tags, DopplerSpectrum};

    let sim = Simulation::paper_default(0.9e9);
    let mut rng = StdRng::seed_from_u64(0xD15C);
    let mut clock = TagClock::new(&mut rng);
    let contact = sim.contact_for(4.0, 0.040);
    let snaps = sim.run_snapshots(contact.as_ref(), 2, &mut clock, &mut rng);
    let spec = DopplerSpectrum::compute(snaps.view(), sim.group.snapshot_period_s);
    let tags = discover_tags(&spec, 10.0);
    assert_eq!(tags.len(), 1, "should find exactly the one tag: {tags:?}");
    assert!(
        (tags[0].fs_hz - 1000.0).abs() < 3.0 * spec.resolution_hz(),
        "fs estimate {}",
        tags[0].fs_hz
    );
}

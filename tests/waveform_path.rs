//! The deepest integration: raw RF samples in, force estimate out.
//!
//! Rather than the pipeline's channel-estimate shortcut, this test builds
//! the true per-snapshot channels from the scene + tag physics, synthesizes
//! the actual received *sample stream* (preamble frames through the
//! channel, with an unknown timing offset), runs the stream receiver
//! (acquisition → per-frame channel estimation), and feeds the recovered
//! estimates to the streaming force estimator.

use rand::rngs::StdRng;
use rand::SeedableRng;
use wiforce::estimator::{EstimatorConfig, ForceEstimator};
use wiforce::pipeline::Simulation;
use wiforce_dsp::Complex;
use wiforce_reader::stream::{simulate_rx_stream, StreamReceiver};
use wiforce_reader::OfdmSounder;
use wiforce_sensor::tag::ContactState;

/// True per-snapshot channels for `n` snapshots under a contact state.
fn true_channels(
    sim: &Simulation,
    contact: Option<&ContactState>,
    n: usize,
    t0: f64,
) -> Vec<Vec<Complex>> {
    let freqs = sim.subcarrier_freqs_hz();
    (0..n)
        .map(|i| {
            let t = t0 + i as f64 * sim.group.snapshot_period_s;
            freqs
                .iter()
                .map(|&f| {
                    sim.scene
                        .channel(f, sim.tag.antenna_reflection(f, t, contact))
                })
                .collect()
        })
        .collect()
}

#[test]
fn samples_to_force() {
    let sim = Simulation::paper_default(2.4e9);
    let model = sim.vna_calibration().expect("calibration");
    let sounder = OfdmSounder::wiforce();
    let n = sim.group.n_snapshots;

    // one untouched group (reference), one pressed group
    let contact = sim.contact_for(4.0, 0.040);
    let mut channels = true_channels(&sim, None, n, 0.0);
    channels.extend(true_channels(
        &sim,
        contact.as_ref(),
        n,
        n as f64 * sim.group.snapshot_period_s,
    ));

    // synthesize the RX sample stream with an unknown 213-sample offset
    let mut rng = StdRng::seed_from_u64(0x5A3);
    let rx = simulate_rx_stream(&sounder, &channels, 1e-5, 213, &mut rng);
    assert_eq!(rx.len(), 213 + 2 * n * sounder.frame_samples());

    // acquire + estimate per frame
    let result = StreamReceiver::new(sounder)
        .process(&rx)
        .expect("acquisition");
    assert_eq!(result.sync_offset, 213, "timing acquisition");
    assert_eq!(result.estimates.n_rows(), 2 * n);

    // estimate force from the recovered channel stream
    let cfg = EstimatorConfig {
        group: sim.group,
        reference_groups: 1,
        ..EstimatorConfig::wiforce(1000.0)
    };
    let mut est = ForceEstimator::new(cfg, model);
    let mut reading = None;
    for snap in result.estimates.rows() {
        if let Ok(Some(r)) = est.push_snapshot(snap) {
            reading = Some(r);
        }
    }
    let r = reading.expect("one pressed group of readings");
    assert!(r.touched);
    assert!((r.force_n - 4.0).abs() < 1.0, "force {}", r.force_n);
    assert!(
        (r.location_m - 0.040).abs() < 4e-3,
        "location {}",
        r.location_m
    );
}

//! Cross-crate observability contract: pipeline outputs are bit-identical
//! with the trace ring and metrics registry on or off, the Chrome trace
//! export is structurally valid, the Prometheus exposition carries the
//! per-stream series the batch engine is contracted to export, and
//! health windows stream out incrementally during a run.
//!
//! The trace/metrics gates are process globals, so every test that flips
//! them runs under one shared lock and restores the default (off) state
//! before releasing it.

use std::sync::{Arc, Mutex, OnceLock};
use wiforce::batch::{run_batch, run_batch_observed, BatchConfig, BatchReport, ReaderSpec};
use wiforce::pipeline::Simulation;
use wiforce::SensorModel;
use wiforce_telemetry::json::{parse, Value};
use wiforce_telemetry::{metrics, trace, AggregatorConfig, StreamWindow};

fn gate_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

/// Runs `f` with exclusive ownership of the observability gates, all off
/// on entry and restored to off on exit.
fn with_gates<T>(f: impl FnOnce() -> T) -> T {
    let _guard = gate_lock().lock().unwrap_or_else(|e| e.into_inner());
    trace::set_trace_enabled(false);
    metrics::set_metrics_enabled(false);
    trace::reset();
    metrics::reset();
    let out = f();
    trace::set_trace_enabled(false);
    metrics::set_metrics_enabled(false);
    trace::reset();
    metrics::reset();
    out
}

fn template() -> (Simulation, Arc<SensorModel>) {
    let sim = Simulation::paper_default(0.9e9);
    let model = Arc::new(sim.vna_calibration().expect("calibration"));
    (sim, model)
}

fn readers(sim: &Simulation, n: usize) -> Vec<ReaderSpec> {
    (0..n)
        .map(|i| {
            ReaderSpec::frequency_multiplexed(2, 2, 40 + i as u64, &sim.group).expect("allocation")
        })
        .collect()
}

fn run(sim: &Simulation, model: &Arc<SensorModel>, specs: &[ReaderSpec]) -> BatchReport {
    run_batch(sim, model, specs, &BatchConfig::wiforce(4)).expect("batch runs")
}

#[test]
fn outputs_bit_identical_with_observability_on_and_off() {
    let (sim, model) = template();
    let specs = readers(&sim, 2);

    let (off, on) = with_gates(|| {
        let off = run(&sim, &model, &specs);
        trace::set_trace_enabled(true);
        metrics::set_metrics_enabled(true);
        let on = run(&sim, &model, &specs);
        (off, on)
    });

    assert_eq!(off.streams.len(), on.streams.len());
    for (a, b) in off.streams.iter().zip(&on.streams) {
        assert!(
            a.deterministic_eq(b),
            "stream {} diverged when tracing/metrics were enabled",
            a.name
        );
    }
    assert_eq!(off.groups_produced, on.groups_produced);
    assert_eq!(off.snapshots_dropped, on.snapshots_dropped);
}

#[test]
fn chrome_trace_export_is_structurally_valid() {
    let (sim, model) = template();
    let specs = readers(&sim, 2);

    let (text, dropped) = with_gates(|| {
        trace::set_trace_enabled(true);
        run(&sim, &model, &specs);
        trace::set_trace_enabled(false);
        let snap = trace::collect();
        (snap.chrome_trace(), snap.dropped)
    });

    assert_eq!(dropped, 0, "trace ring overflowed during a small batch");
    let doc = parse(&text).expect("chrome trace parses as JSON");
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_array)
        .expect("traceEvents array");
    assert!(!events.is_empty());

    // every event has the Chrome trace-event shape; B/E balance per lane
    let mut depth: Vec<(u64, i64)> = Vec::new();
    let mut flows_started = 0usize;
    let mut flows_ended = 0usize;
    for ev in events {
        let ph = ev.get("ph").and_then(Value::as_str).expect("ph");
        assert!(
            ["M", "B", "E", "i", "s", "f", "C"].contains(&ph),
            "unknown phase {ph:?}"
        );
        let tid = ev.get("tid").and_then(Value::as_f64).expect("tid") as u64;
        if ph == "M" {
            continue;
        }
        assert!(
            ev.get("ts").and_then(Value::as_f64).is_some(),
            "timeline event without ts"
        );
        match ph {
            "B" | "E" => {
                let d = match depth.iter_mut().find(|(l, _)| *l == tid) {
                    Some((_, d)) => d,
                    None => {
                        depth.push((tid, 0));
                        &mut depth.last_mut().unwrap().1
                    }
                };
                *d += if ph == "B" { 1 } else { -1 };
                assert!(*d >= 0, "lane {tid} closed more spans than it opened");
            }
            "s" => flows_started += 1,
            "f" => flows_ended += 1,
            _ => {}
        }
    }
    for (lane, d) in &depth {
        assert_eq!(*d, 0, "lane {lane} left {d} span(s) open");
    }
    // the producer→consumer handoff arrows made it into the export, and
    // every consumed group's arrow binds to a produced one
    assert!(flows_started > 0, "no flow starts recorded");
    assert!(flows_ended > 0, "no flow ends recorded");
    assert!(flows_ended <= flows_started);

    let other = doc.get("otherData").expect("otherData");
    assert_eq!(
        other.get("dropped_events").and_then(Value::as_f64),
        Some(0.0)
    );
    assert!(other.get("ns_per_tick").and_then(Value::as_f64).unwrap() > 0.0);
    assert!(other.get("lanes").and_then(Value::as_f64).unwrap() >= 1.0);
}

#[test]
fn metrics_export_carries_per_stream_series() {
    let (sim, model) = template();
    let specs = readers(&sim, 2);

    let (snap, report) = with_gates(|| {
        metrics::set_metrics_enabled(true);
        let report = run(&sim, &model, &specs);
        metrics::set_metrics_enabled(false);
        (metrics::snapshot(), report)
    });

    // one groups_consumed counter per stream — reader-labelled, so two
    // readers' identically-named streams stay distinct series
    for s in &report.streams {
        let reader = s.reader.to_string();
        let labels = [("reader", reader.as_str()), ("stream", s.name.as_str())];
        let consumed = snap
            .counter("batch.groups_consumed", &labels)
            .unwrap_or_else(|| panic!("no batch.groups_consumed series for r{reader}/{}", s.name));
        assert_eq!(consumed, s.latencies_ns.len() as u64, "{}", s.name);
    }
    assert_eq!(snap.counter("batch.runs", &[]), Some(1));

    let text = snap.prometheus();
    assert!(text.contains("# TYPE wiforce_batch_groups_consumed counter"));
    assert!(text.contains("stream=\""), "no per-stream labels:\n{text}");
    assert!(
        text.contains("# TYPE wiforce_batch_group_latency_ns summary"),
        "latency histogram missing:\n{text}"
    );
    assert!(text.contains("quantile=\"0.99\""));
    // every sample line is `name[{labels}] value` with a float value
    for line in text
        .lines()
        .filter(|l| !l.starts_with('#') && !l.is_empty())
    {
        let (_, value) = line.rsplit_once(' ').expect("sample line");
        assert!(
            value.parse::<f64>().is_ok() || ["NaN", "+Inf", "-Inf"].contains(&value),
            "bad value in line {line:?}"
        );
    }
}

#[test]
fn health_windows_stream_during_the_run() {
    let (sim, model) = template();
    let specs = readers(&sim, 2);
    let seen: Mutex<Vec<StreamWindow>> = Mutex::new(Vec::new());
    let observer = |w: &StreamWindow| seen.lock().unwrap().push(w.clone());

    let report = with_gates(|| {
        run_batch_observed(
            &sim,
            &model,
            &specs,
            &BatchConfig::wiforce(4),
            Some(AggregatorConfig::default()),
            Some(&observer),
        )
        .expect("batch runs")
    });

    let windows = seen.into_inner().unwrap();
    assert!(!windows.is_empty(), "observer saw no windows");
    for w in &windows {
        assert!(w.samples > 0);
        assert!(w.p50_ns <= w.p95_ns && w.p95_ns <= w.p99_ns, "{w:?}");
        assert!(parse(&w.to_json()).is_ok(), "window JSON invalid");
    }

    // rollup covers every stream (keyed `r<reader>/<name>` so same-named
    // streams on different readers stay separate) and reconciles with
    // the raw results
    assert_eq!(report.health.len(), report.streams.len());
    for h in &report.health {
        let s = report
            .streams
            .iter()
            .find(|s| format!("r{}/{}", s.reader, s.name) == h.stream)
            .expect("health names a stream");
        assert_eq!(h.samples, s.latencies_ns.len() as u64, "{}", h.stream);
        assert!(h.p50_ns <= h.p99_ns);
        let windowed: u64 = windows
            .iter()
            .filter(|w| w.stream == h.stream)
            .map(|w| w.samples)
            .sum();
        assert_eq!(windowed, h.samples, "{} windows lost samples", h.stream);
    }
}

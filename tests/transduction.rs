//! Cross-crate transduction chain: mechanics ↔ RF consistency, and
//! cross-validation of the two contact models.

use wiforce_em::{SensorLine, Termination};
use wiforce_mech::contact::{ContactSolver, SensorMech};
use wiforce_mech::{AnalyticContactModel, ForceTransducer, Indenter};
use wiforce_sensor::tag::ContactState;
use wiforce_sensor::SensorTag;

fn fd() -> ContactSolver {
    ContactSolver::with_nodes(
        SensorMech::wiforce_prototype(),
        Indenter::actuator_tip(),
        201,
    )
}

fn analytic() -> AnalyticContactModel {
    AnalyticContactModel::new(SensorMech::wiforce_prototype(), Indenter::actuator_tip())
}

#[test]
fn analytic_tracks_fd_solver_qualitatively() {
    // the fast model must agree with the FD solver on ordering and rough
    // magnitude of the patch across the calibrated press grid
    let fd = fd();
    let an = analytic();
    for &x0 in &[0.025, 0.040, 0.055] {
        for &f in &[2.0, 5.0, 8.0] {
            let pf = fd.contact_patch(f, x0).expect("fd contact");
            let pa = an.contact_patch(f, x0).expect("analytic contact");
            assert!(
                (pf.center_m() - pa.center_m()).abs() < 8e-3,
                "centres diverge at ({f} N, {x0} m): fd {pf:?} vs analytic {pa:?}"
            );
            assert!(
                (pf.width_m() - pa.width_m()).abs() < 12e-3,
                "widths diverge at ({f} N, {x0} m): fd {pf:?} vs analytic {pa:?}"
            );
        }
    }
}

#[test]
fn both_models_agree_on_port_phase_ordering() {
    // the phases the RF layer derives from either model must rank press
    // locations identically — this is what makes localization transferable
    let line = SensorLine::wiforce_prototype();
    let f_hz = 0.9e9;
    let rank = |t: &dyn ForceTransducer| -> Vec<f64> {
        [0.025, 0.040, 0.055]
            .iter()
            .map(|&x0| {
                let p = t.contact_patch(4.0, x0).expect("contact");
                line.differential_phase(f_hz, p.port1_length_m(), Termination::Open)
            })
            .collect()
    };
    let rf = rank(&fd());
    let ra = rank(&analytic());
    for (a, b) in rf.windows(2).zip(ra.windows(2)) {
        assert_eq!(
            a[0] > a[1],
            b[0] > b[1],
            "phase ordering differs between models: fd {rf:?} vs analytic {ra:?}"
        );
    }
}

#[test]
fn patch_to_tag_reflection_chain() {
    // mechanics → ContactState → tag reflection: a harder press must
    // change the tag's modulated reflection observably at both ports
    let solver = fd();
    let tag = SensorTag::wiforce_prototype(1000.0);
    let len = solver.length_m();
    let gamma_port1 = |force: f64| -> wiforce_dsp::Complex {
        let patch = solver.contact_patch(force, 0.040).expect("contact");
        let c = ContactState::from_patch(&patch, len);
        // switch 1 on window
        tag.antenna_reflection(0.9e9, 0.1e-3, Some(&c))
    };
    let g2 = gamma_port1(2.0);
    let g8 = gamma_port1(8.0);
    let dphi = (g8 * g2.conj()).arg().abs();
    assert!(
        dphi > 0.05,
        "force change must rotate the tag reflection, got {dphi} rad"
    );
}

#[test]
fn thin_trace_sensor_cannot_localize() {
    // the Fig. 4 negative result end-to-end at the mechanics level: the
    // thin-trace patch barely responds to force anywhere, so the phase
    // pair carries no force information
    let thin = ContactSolver::with_nodes(SensorMech::thin_trace(), Indenter::actuator_tip(), 201);
    let line = SensorLine::wiforce_prototype();
    let phase_at = |force: f64| -> f64 {
        let p = thin.contact_patch(force, 0.040).expect("contact");
        line.differential_phase(0.9e9, p.port1_length_m(), Termination::Open)
    };
    let swing = (phase_at(8.0) - phase_at(1.0)).abs();
    assert!(
        swing < 0.02,
        "thin trace should be force-blind, got {swing} rad of swing"
    );
}

#[test]
fn touch_thresholds_are_consistent() {
    let fd = fd();
    let an = analytic();
    for &x0 in &[0.030, 0.040, 0.050] {
        let tf = fd.touch_threshold_n(x0);
        let ta = an.touch_threshold_n(x0);
        assert!(tf.is_finite() && ta.is_finite());
        assert!(
            (tf / ta).max(ta / tf) < 10.0,
            "thresholds differ wildly at {x0}: fd {tf} vs analytic {ta}"
        );
    }
}

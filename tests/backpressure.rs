//! Batch-engine backpressure accounting: stall counters under a
//! throttled consumer, the drop-newest loss accounting invariant
//! (`produced == consumed + dropped` per stream) at every worker count,
//! and zero-loss guarantees under the default stall policy.

use std::sync::Arc;
use std::time::Duration;
use wiforce::batch::{run_batch, BatchConfig, BatchReport, OverflowPolicy, ReaderSpec};
use wiforce::pipeline::Simulation;
use wiforce::SensorModel;

fn template() -> (Simulation, Arc<SensorModel>) {
    let sim = Simulation::paper_default(0.9e9);
    let model = Arc::new(sim.vna_calibration().expect("calibration"));
    (sim, model)
}

fn reader(sim: &Simulation, seed: u64) -> ReaderSpec {
    reader_pressing(sim, seed, 2)
}

fn reader_pressing(sim: &Simulation, seed: u64, presses: usize) -> ReaderSpec {
    ReaderSpec::frequency_multiplexed(2, presses, seed, &sim.group).expect("allocation")
}

fn throttled(workers: usize, overflow: OverflowPolicy) -> BatchConfig {
    BatchConfig {
        workers,
        queue_capacity: 1,
        overflow,
        consume_throttle: Some(Duration::from_millis(5)),
        ..BatchConfig::wiforce(workers)
    }
}

/// Groups each stream saw leave the queue (every consumed group logs one
/// latency sample, reference and press groups alike).
fn consumed(report: &BatchReport, stream: usize) -> u64 {
    report.streams[stream].latencies_ns.len() as u64
}

#[test]
fn stall_policy_counts_backpressure_and_loses_nothing() {
    let (sim, model) = template();
    let spec = reader_pressing(&sim, 7, 4);
    // the throttle must dominate group synthesis so the producer refills
    // the capacity-1 queues while both consumers are still busy on their
    // claimed streams — the spare workers then find nothing runnable and
    // the producer parks on the full queues (the transition counted)
    let cfg = BatchConfig {
        consume_throttle: Some(Duration::from_millis(40)),
        ..throttled(4, OverflowPolicy::Stall)
    };

    let report = run_batch(&sim, &model, std::slice::from_ref(&spec), &cfg).expect("batch runs");

    // capacity-1 queues plus a 5 ms consume throttle force the producer
    // to park; the stall transitions must be counted
    assert!(
        report.backpressure_events > 0,
        "no backpressure recorded under a throttled capacity-1 queue"
    );
    // ...but stalling never sheds load
    assert_eq!(report.groups_dropped, 0);
    for (i, s) in report.streams.iter().enumerate() {
        assert_eq!(s.groups_dropped, 0, "{} dropped under Stall", s.name);
        assert_eq!(
            consumed(&report, i),
            report.groups_produced,
            "{} lost groups without a drop counter",
            s.name
        );
    }
}

#[test]
fn drop_newest_accounting_invariant_holds_at_every_worker_count() {
    let (sim, model) = template();
    let spec = reader(&sim, 7);

    let mut dropped_somewhere = false;
    for workers in [1, 2, 4] {
        let cfg = throttled(workers, OverflowPolicy::DropNewest);
        let report =
            run_batch(&sim, &model, std::slice::from_ref(&spec), &cfg).expect("batch runs");

        let mut total_dropped = 0;
        for (i, s) in report.streams.iter().enumerate() {
            // every produced group either came out of the queue or was
            // counted dropped — no silent loss at any worker count
            assert_eq!(
                consumed(&report, i) + s.groups_dropped,
                report.groups_produced,
                "{} accounting broke at {workers} worker(s)",
                s.name
            );
            total_dropped += s.groups_dropped;
        }
        assert_eq!(report.groups_dropped, total_dropped);
        dropped_somewhere |= total_dropped > 0;
    }
    // with producers prioritised over a 5 ms/group consumer on a
    // capacity-1 queue, at least one configuration must actually shed
    assert!(
        dropped_somewhere,
        "drop-newest never dropped under sustained overload"
    );
}

#[test]
fn stall_results_are_worker_count_invariant_under_throttle() {
    let (sim, model) = template();
    let spec = reader(&sim, 7);

    let a = run_batch(
        &sim,
        &model,
        std::slice::from_ref(&spec),
        &throttled(1, OverflowPolicy::Stall),
    )
    .expect("batch runs");
    let b = run_batch(
        &sim,
        &model,
        std::slice::from_ref(&spec),
        &throttled(4, OverflowPolicy::Stall),
    )
    .expect("batch runs");

    for (sa, sb) in a.streams.iter().zip(&b.streams) {
        assert!(
            sa.deterministic_eq(sb),
            "stream {} diverged between 1 and 4 workers under backpressure",
            sa.name
        );
    }
}

#[test]
fn unthrottled_drop_newest_matches_stall_when_queues_keep_up() {
    let (sim, model) = template();
    let spec = reader(&sim, 7);
    // roomy queue, no throttle: the lossy policy has nothing to shed and
    // must degrade to the stall policy's exact results
    let base = BatchConfig::wiforce(2);
    let lossy = BatchConfig {
        overflow: OverflowPolicy::DropNewest,
        ..BatchConfig::wiforce(2)
    };

    let a = run_batch(&sim, &model, std::slice::from_ref(&spec), &base).expect("batch runs");
    let b = run_batch(&sim, &model, std::slice::from_ref(&spec), &lossy).expect("batch runs");

    assert_eq!(b.groups_dropped, 0, "dropped despite ample queue capacity");
    for (sa, sb) in a.streams.iter().zip(&b.streams) {
        assert!(sa.deterministic_eq(sb), "stream {} diverged", sa.name);
    }
}

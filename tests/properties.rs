//! Property-based tests over the cross-crate invariants.

use proptest::prelude::*;
use wiforce::calib::{CalibrationSample, LocationData, SensorModel};
use wiforce::harmonics::{extract_lines, ExtractionMethod, PhaseGroupConfig};
use wiforce_dsp::Complex;
use wiforce_dsp::{SnapshotMatrix, TAU};
use wiforce_mech::contact::SensorMech;
use wiforce_mech::{AnalyticContactModel, ForceTransducer, Indenter};

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Any above-threshold press produces a patch containing the press
    /// point, within the sensor, wider for more force.
    #[test]
    fn contact_patch_invariants(
        force in 0.5f64..8.0,
        extra in 0.5f64..3.0,
        x0 in 0.015f64..0.065,
    ) {
        let m = AnalyticContactModel::new(SensorMech::wiforce_prototype(), Indenter::actuator_tip());
        let p = m.contact_patch(force, x0).expect("above threshold");
        prop_assert!(p.left_m >= 0.0 && p.right_m <= 0.080);
        prop_assert!(p.left_m <= x0 && x0 <= p.right_m);
        let p2 = m.contact_patch(force + extra, x0).expect("still above threshold");
        prop_assert!(p2.width_m() >= p.width_m() - 1e-12);
    }

    /// The harmonic extractor recovers arbitrary tone amplitudes exactly
    /// (orthogonal group) regardless of static clutter.
    #[test]
    fn line_extraction_exact(
        static_mag in 0.0f64..2.0,
        static_phase in 0.0f64..TAU,
        a1_mag in 1e-5f64..1e-2,
        a1_phase in 0.0f64..TAU,
        a2_mag in 1e-5f64..1e-2,
        a2_phase in 0.0f64..TAU,
    ) {
        let cfg = PhaseGroupConfig::wiforce(1000.0);
        let s = Complex::from_polar(static_mag, static_phase);
        let a1 = Complex::from_polar(a1_mag, a1_phase);
        let a2 = Complex::from_polar(a2_mag, a2_phase);
        let rows: Vec<Vec<Complex>> = (0..cfg.n_snapshots)
            .map(|n| {
                let t = n as f64 * cfg.snapshot_period_s;
                vec![s + a1 * Complex::cis(TAU * cfg.line1_hz * t)
                    + a2 * Complex::cis(TAU * cfg.line2_hz * t)]
            })
            .collect();
        let group = SnapshotMatrix::from_rows(&rows);
        let lines = extract_lines(&cfg, group.view(), 0.0);
        prop_assert!((lines.p1[0] - a1).abs() < 1e-9);
        prop_assert!((lines.p2[0] - a2).abs() < 1e-9);
    }

    /// Least-squares extraction matches the orthogonal DFT on orthogonal
    /// groups (same answer, different algorithm).
    #[test]
    fn extraction_methods_agree_when_orthogonal(
        a1_phase in 0.0f64..TAU,
        a2_phase in 0.0f64..TAU,
    ) {
        let dft_cfg = PhaseGroupConfig::wiforce(1000.0);
        let ls_cfg = PhaseGroupConfig { method: ExtractionMethod::LeastSquares, ..dft_cfg };
        let a1 = Complex::from_polar(1e-3, a1_phase);
        let a2 = Complex::from_polar(2e-3, a2_phase);
        let rows: Vec<Vec<Complex>> = (0..dft_cfg.n_snapshots)
            .map(|n| {
                let t = n as f64 * dft_cfg.snapshot_period_s;
                vec![Complex::from_re(0.3)
                    + a1 * Complex::cis(TAU * dft_cfg.line1_hz * t)
                    + a2 * Complex::cis(TAU * dft_cfg.line2_hz * t)]
            })
            .collect();
        let group = SnapshotMatrix::from_rows(&rows);
        let d = extract_lines(&dft_cfg, group.view(), 0.0);
        let l = extract_lines(&ls_cfg, group.view(), 0.0);
        prop_assert!((d.p1[0] - l.p1[0]).abs() < 1e-9);
        prop_assert!((d.p2[0] - l.p2[0]).abs() < 1e-9);
    }

    /// Model fit → predict → invert round-trips on synthetic monotone
    /// phase surfaces.
    #[test]
    fn model_round_trip(force in 1.0f64..7.5, loc_mm in 22.0f64..58.0) {
        let synth = |f: f64, x: f64| -> (f64, f64) {
            let w1 = 1.0 - x / 0.080;
            let w2 = x / 0.080;
            (0.5 * w1 * f.sqrt() + 0.02 * f, 0.5 * w2 * f.sqrt() + 0.02 * f)
        };
        let data: Vec<LocationData> = [0.020, 0.030, 0.040, 0.050, 0.060]
            .iter()
            .map(|&x| LocationData {
                location_m: x,
                samples: (1..=16)
                    .map(|i| {
                        let f = i as f64 * 0.5;
                        let (p1, p2) = synth(f, x);
                        CalibrationSample { force_n: f, phi1_rad: p1, phi2_rad: p2 }
                    })
                    .collect(),
            })
            .collect();
        let model = SensorModel::fit(&data, 3).expect("fit");
        let loc = loc_mm * 1e-3;
        let (p1, p2) = synth(force, loc);
        let est = model.invert(p1, p2, 0.2).expect("invert");
        prop_assert!((est.force_n - force).abs() < 0.35, "force {} vs {force}", est.force_n);
        prop_assert!((est.location_m - loc).abs() < 3e-3, "loc {} vs {loc}", est.location_m);
    }
}

//! Batch-engine serving invariants across crates: fault isolation
//! between readers, graceful per-stream degradation under a
//! dropout/saturation regime, and schedule completion under load.

use std::sync::Arc;
use wiforce::batch::{run_batch, BatchConfig, BatchReport, PressSpec, ReaderSpec};
use wiforce::pipeline::Simulation;
use wiforce::SensorModel;
use wiforce_channel::faults::FaultConfig;

fn template() -> (Simulation, Arc<SensorModel>) {
    let sim = Simulation::paper_default(0.9e9);
    let model = Arc::new(sim.vna_calibration().expect("calibration"));
    (sim, model)
}

fn clean_reader(sim: &Simulation, seed: u64) -> ReaderSpec {
    ReaderSpec::frequency_multiplexed(2, 2, seed, &sim.group).expect("allocation")
}

fn faulted_reader(sim: &Simulation, seed: u64) -> ReaderSpec {
    clean_reader(sim, seed).with_faults(FaultConfig::saturating())
}

fn stream_results(report: &BatchReport, reader: usize) -> Vec<&wiforce::batch::StreamResult> {
    report
        .streams
        .iter()
        .filter(|s| s.reader == reader)
        .collect()
}

#[test]
fn faulted_reader_never_corrupts_sibling_readers() {
    let (sim, model) = template();
    let cfg = BatchConfig::wiforce(4);

    // run the clean reader alone, then again next to a heavily faulted
    // reader sharing the same worker pool and queues
    let clean = clean_reader(&sim, 11);
    let alone = run_batch(&sim, &model, std::slice::from_ref(&clean), &cfg).expect("solo run");
    let pair = [faulted_reader(&sim, 999), clean.clone()];
    let together = run_batch(&sim, &model, &pair, &cfg).expect("paired run");

    // the clean reader's streams must be bit-identical with or without
    // the saturating neighbour (independent per-reader RNGs)
    let clean_alone = stream_results(&alone, 0);
    let clean_together = stream_results(&together, 1);
    assert_eq!(clean_alone.len(), clean_together.len());
    for (a, b) in clean_alone.iter().zip(&clean_together) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.readings.len(), b.readings.len(), "stream {}", a.name);
        for (ra, rb) in a.readings.iter().zip(&b.readings) {
            assert_eq!(
                ra.reading.force_n.to_bits(),
                rb.reading.force_n.to_bits(),
                "stream {} group {} force diverged next to a faulted reader",
                a.name,
                ra.group
            );
            assert_eq!(
                ra.reading.location_m.to_bits(),
                rb.reading.location_m.to_bits(),
                "stream {} group {} location diverged",
                a.name,
                ra.group
            );
        }
    }
}

#[test]
fn saturated_streams_degrade_without_stalling() {
    let (sim, model) = template();
    let cfg = BatchConfig {
        workers: 2,
        queue_capacity: 1,
        reference_groups: 2,
        ..BatchConfig::wiforce(2)
    };
    let spec = faulted_reader(&sim, 42);
    let expected_groups = 2 + 2; // reference + presses
    let report = run_batch(&sim, &model, std::slice::from_ref(&spec), &cfg).expect("batch runs");

    assert_eq!(report.groups_produced, expected_groups as u64);
    for s in &report.streams {
        // the stream ran to completion: every produced group was consumed
        // (a reading may fail under saturation, but never goes missing)
        assert_eq!(
            s.latencies_ns.len(),
            expected_groups,
            "stream {} stalled",
            s.name
        );
        let groups_out = s.readings.len() as u64 + s.failures;
        assert_eq!(
            groups_out,
            (expected_groups - cfg.reference_groups) as u64,
            "stream {} lost a post-reference group",
            s.name
        );
    }
    // the injector really fired (the regime is not a no-op) — the plain
    // report fields work even with telemetry recording disabled
    assert!(
        report.snapshots_dropped > 0,
        "saturating profile never dropped a snapshot"
    );
    assert!(
        report.bursts_injected > 0,
        "saturating profile never injected a burst"
    );
}

#[test]
fn mixed_press_schedules_complete() {
    let (sim, model) = template();
    // streams with different schedule lengths on one reader: the shorter
    // one idles through its sibling's tail groups without erroring
    let grid = 1.0 / (sim.group.n_snapshots as f64 * sim.group.snapshot_period_s);
    let clocks =
        wiforce_sensor::multi::allocate_frequencies_on_grid(2, 800.0, 2000.0, grid).unwrap();
    let spec = ReaderSpec::new(5)
        .stream(
            "long",
            clocks[0],
            vec![
                PressSpec {
                    force_n: 3.0,
                    location_m: 0.030,
                },
                PressSpec {
                    force_n: 4.0,
                    location_m: 0.040,
                },
            ],
        )
        .stream(
            "short",
            clocks[1],
            vec![PressSpec {
                force_n: 2.0,
                location_m: 0.050,
            }],
        );
    let report = run_batch(
        &sim,
        &model,
        std::slice::from_ref(&spec),
        &BatchConfig::wiforce(2),
    )
    .expect("batch runs");
    let long = &report.streams[0];
    let short = &report.streams[1];
    assert_eq!(
        long.readings.iter().filter(|r| r.press.is_some()).count(),
        2
    );
    // the short stream's tail group is a quiet slot, not a press
    let short_presses: Vec<Option<usize>> = short.readings.iter().map(|r| r.press).collect();
    assert_eq!(short_presses, vec![Some(0), None]);
    assert!(
        !short.readings[1].reading.touched,
        "quiet tail slot touched"
    );
}

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;
use wiforce_dsp::fastmath::standard_normals_from_uniforms;
use wiforce_dsp::fft::with_plan;
use wiforce_dsp::rng::draw_box_muller_uniforms;
use wiforce_dsp::Complex;
use wiforce_reader::ofdm::OfdmSounder;
use wiforce_reader::sounder::ChannelSounder;

#[test]
#[ignore]
fn microprof() {
    let s = OfdmSounder::wiforce();
    let truth: Vec<Complex> = (0..64)
        .map(|k| Complex::from_polar(1.0, 0.05 * k as f64))
        .collect();
    let mut rng = StdRng::seed_from_u64(1);
    let mut out = vec![Complex::ZERO; 64];
    let iters = 20000;
    let t = Instant::now();
    for _ in 0..iters {
        s.estimate_into(&truth, 6e-6, &mut rng, &mut out);
    }
    println!(
        "estimate_into: {:.2} us",
        t.elapsed().as_secs_f64() / iters as f64 * 1e6
    );

    // the folded-average hot path draws 2·64 normals per snapshot
    let mut u1 = Vec::new();
    let mut u2 = Vec::new();
    let t = Instant::now();
    for _ in 0..iters {
        draw_box_muller_uniforms(&mut rng, 128, &mut u1, &mut u2);
    }
    println!(
        "draw_uniforms(128): {:.2} us",
        t.elapsed().as_secs_f64() / iters as f64 * 1e6
    );

    let mut normals = vec![0.0; 128];
    let t = Instant::now();
    for _ in 0..iters {
        standard_normals_from_uniforms(&u1, &u2, &mut normals);
    }
    println!(
        "bm_transform(128): {:.2} us",
        t.elapsed().as_secs_f64() / iters as f64 * 1e6
    );

    let mut buf: Vec<Complex> = (0..64)
        .map(|k| Complex::from_polar(1.0, 0.1 * k as f64))
        .collect();
    let t = Instant::now();
    for _ in 0..iters {
        with_plan(64, |p| p.inverse_inplace(&mut buf));
        with_plan(64, |p| p.forward_inplace(&mut buf));
    }
    println!(
        "ifft+fft(64): {:.2} us",
        t.elapsed().as_secs_f64() / iters as f64 * 1e6
    );

    let rx: Vec<Complex> = buf.clone();
    let mut avg = vec![Complex::ZERO; 64];
    let t = Instant::now();
    for _ in 0..iters {
        avg.iter_mut().for_each(|z| *z = Complex::ZERO);
        let mut pair = normals.chunks_exact(2);
        for (a, &x) in avg.iter_mut().zip(&rx) {
            let g = pair.next().unwrap();
            *a += x + Complex::new(3e-6 * g[0], 3e-6 * g[1]);
        }
    }
    println!(
        "accumulate(64): {:.2} us",
        t.elapsed().as_secs_f64() / iters as f64 * 1e6
    );
}

//! Property-based tests on the reader substrate.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use wiforce_dsp::Complex;
use wiforce_reader::{ChannelSounder, OfdmSounder};

fn arb_channel() -> impl Strategy<Value = Vec<Complex>> {
    prop::collection::vec((0.05f64..2.0, -3.1f64..3.1), 64..=64).prop_map(|v| {
        v.into_iter()
            .map(|(r, p)| Complex::from_polar(r, p))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Noiseless OFDM channel estimation is exact for arbitrary channels.
    #[test]
    fn noiseless_estimation_exact(truth in arb_channel()) {
        let s = OfdmSounder::wiforce();
        let mut rng = StdRng::seed_from_u64(0);
        let est = s.estimate(&truth, 0.0, &mut rng);
        for (e, t) in est.iter().zip(&truth) {
            prop_assert!((*e - *t).abs() < 1e-8);
        }
    }

    /// Estimation is unbiased: the average of many noisy estimates
    /// converges on the truth.
    #[test]
    fn estimation_unbiased(seed in 0u64..1000) {
        let s = OfdmSounder::wiforce();
        let truth = vec![Complex::from_polar(1.0, 0.5); 64];
        let mut rng = StdRng::seed_from_u64(seed);
        let mut acc = vec![Complex::ZERO; 64];
        let reps = 60;
        for _ in 0..reps {
            for (a, e) in acc.iter_mut().zip(s.estimate(&truth, 0.05, &mut rng)) {
                *a += e;
            }
        }
        let mean_err: f64 = acc
            .iter()
            .zip(&truth)
            .map(|(a, t)| (a.scale(1.0 / reps as f64) - *t).abs())
            .sum::<f64>()
            / 64.0;
        prop_assert!(mean_err < 0.02, "{mean_err}");
    }
}

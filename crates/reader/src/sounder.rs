//! The channel-sounder abstraction.
//!
//! WiForce needs one thing from the physical layer: a periodic vector of
//! per-frequency channel estimates `H[k, n]`. Both the OFDM reader (what
//! the paper built) and an FMCW radar front end (what the paper argues
//! would work equally well) provide it; the sensing algorithm in
//! `wiforce` is written against this trait.

use rand::RngCore;
use wiforce_dsp::rng::CounterRng;
use wiforce_dsp::Complex;

/// A true channel pre-processed by a sounder for repeated estimation.
///
/// Simulations evaluate the same true channel many times (a tag's switch
/// only has four states, so a whole phase-group revisits four channels
/// over hundreds of snapshots). [`ChannelSounder::prepare`] folds the
/// channel-dependent, noise-independent part of the estimation forward
/// model — for OFDM, the symbol multiply and the IFFT to the time domain —
/// into this struct once, and
/// [`ChannelSounder::estimate_prepared_into`] reuses it per snapshot.
#[derive(Debug, Clone)]
pub struct PreparedChannel {
    /// The true per-frequency channel this was prepared from (ascending
    /// grid order, one entry per estimate frequency).
    pub truth: Vec<Complex>,
    /// Sounder-specific precomputation (for OFDM: the noiseless received
    /// preamble symbol in the time domain, post-IFFT and scaling). Empty
    /// when the sounder has no prepared fast path.
    pub payload: Vec<Complex>,
}

/// A device that periodically estimates the channel at a fixed grid of
/// frequency offsets around the carrier.
pub trait ChannelSounder {
    /// Frequency offsets of the estimate grid relative to the carrier, Hz
    /// (e.g. OFDM subcarrier offsets), ascending.
    fn frequency_offsets_hz(&self) -> Vec<f64>;

    /// Time between consecutive channel estimates, s (the paper's `T`).
    fn snapshot_period_s(&self) -> f64;

    /// Duration over which one estimate actually observes the channel, s.
    ///
    /// Sounders rarely integrate the whole snapshot period: the OFDM
    /// reader correlates over its 320-sample preamble and then idles
    /// through the zero padding; an FMCW radar observes during the sweep
    /// only. Time-varying effects (tag modulation, Doppler) are averaged
    /// over this window, not sampled at an instant — simulations that
    /// ignore it alias the tag's square-wave harmonics across Doppler
    /// bins. Defaults to the full snapshot period.
    fn integration_window_s(&self) -> f64 {
        self.snapshot_period_s()
    }

    /// Produces one channel-estimate snapshot given the true channel at
    /// each grid frequency and a per-sample receiver noise level
    /// (std-dev of complex AWGN relative to unit TX amplitude).
    ///
    /// Implementations synthesize their actual waveform, push it through
    /// the (frequency-domain) channel, add noise and run their estimator —
    /// so estimation gain/loss is real, not assumed.
    fn estimate(
        &self,
        true_channel: &[Complex],
        noise_std: f64,
        rng: &mut dyn RngCore,
    ) -> Vec<Complex>;

    /// Like [`Self::estimate`], but writes the snapshot into a
    /// caller-provided buffer instead of allocating — the hot path for
    /// streaming simulation, where the buffer is a row of a
    /// `wiforce_dsp::snapshots::SnapshotMatrix`.
    ///
    /// The default implementation just copies the allocating path;
    /// performance-sensitive sounders override it with a buffer-reusing
    /// implementation that draws the *same* RNG sequence.
    ///
    /// # Panics
    /// Panics if `out.len()` differs from the estimate grid size.
    fn estimate_into(
        &self,
        true_channel: &[Complex],
        noise_std: f64,
        rng: &mut dyn RngCore,
        out: &mut [Complex],
    ) {
        let est = self.estimate(true_channel, noise_std, rng);
        assert_eq!(
            out.len(),
            est.len(),
            "output buffer must match the estimate grid"
        );
        out.copy_from_slice(&est);
    }

    /// Folds the channel-dependent, noise-independent part of the
    /// estimation forward model into a [`PreparedChannel`] for repeated
    /// use with [`Self::estimate_prepared_into`].
    ///
    /// The default keeps only the truth (no precomputation), which the
    /// default `estimate_prepared_into` feeds back through
    /// [`Self::estimate_into`] — correct for every sounder, fast for none.
    fn prepare(&self, true_channel: &[Complex]) -> PreparedChannel {
        PreparedChannel {
            truth: true_channel.to_vec(),
            payload: Vec::new(),
        }
    }

    /// Like [`Self::estimate_into`], but starting from a
    /// [`PreparedChannel`] built by [`Self::prepare`] on the same sounder
    /// configuration. Must draw the identical RNG sequence and produce
    /// bit-identical estimates to
    /// `estimate_into(&prepared.truth, noise_std, rng, out)`.
    fn estimate_prepared_into(
        &self,
        prepared: &PreparedChannel,
        noise_std: f64,
        rng: &mut dyn RngCore,
        out: &mut [Complex],
    ) {
        self.estimate_into(&prepared.truth, noise_std, rng, out);
    }

    /// Like [`Self::estimate_into`], but drawing noise from a
    /// counter-addressed cursor instead of a sequential stream. The
    /// cursor is pinned to one simulation coordinate (press key, group,
    /// snapshot), so the produced estimate is a pure function of that
    /// coordinate — snapshots can be synthesized out of order and across
    /// threads with bit-identical results.
    ///
    /// The default drives the sequential path with the cursor's
    /// [`RngCore`] view, which is already order-independent across
    /// snapshots; sounders with a bulk noise fill override this to hit
    /// the SIMD counter kernel directly. Implementations may consume the
    /// cursor's lanes in a different pattern than the sequential path —
    /// only self-consistency at a fixed coordinate is promised.
    fn estimate_counter_into(
        &self,
        true_channel: &[Complex],
        noise_std: f64,
        cursor: &mut CounterRng,
        out: &mut [Complex],
    ) {
        self.estimate_into(true_channel, noise_std, cursor, out);
    }

    /// Counter-cursor twin of [`Self::estimate_prepared_into`]: must be
    /// bit-identical to `estimate_counter_into(&prepared.truth, …)` with
    /// a cursor at the same coordinates.
    fn estimate_prepared_counter_into(
        &self,
        prepared: &PreparedChannel,
        noise_std: f64,
        cursor: &mut CounterRng,
        out: &mut [Complex],
    ) {
        self.estimate_counter_into(&prepared.truth, noise_std, cursor, out);
    }

    /// Wide (structure-of-arrays) twin of
    /// [`Self::estimate_prepared_counter_into`]: synthesizes a whole
    /// block of snapshots in one call. `prepared` holds one
    /// [`PreparedChannel`] per tag switch state (index = state),
    /// `states[r]` selects the state of snapshot `snap0 + r`, and `out`
    /// is a snapshot-major plane of `states.len()` rows of grid-size
    /// estimates. Noise is drawn straight from the counter kernel at
    /// coordinates `(key, group, snap0 + r, lane)`.
    ///
    /// Returns `Some(lanes)` — the number of cursor lanes each row
    /// consumed — when the sounder has a wide fast path; the caller then
    /// positions per-snapshot cursors with
    /// [`CounterRng::skip_normals`]`(lanes)` before any remaining scalar
    /// draw sites (burst faults, front-end jitter). Returns `None` when
    /// no wide path exists (the default), telling the caller to fall
    /// back to row-at-a-time synthesis. When it returns `Some`, each row
    /// of `out` must be bit-identical to an
    /// `estimate_prepared_counter_into(&prepared[states[r]], …)` call
    /// with a fresh cursor at `(key, group, snap0 + r)`.
    #[allow(clippy::too_many_arguments)]
    fn estimate_prepared_counter_rows_into(
        &self,
        prepared: &[PreparedChannel],
        states: &[u8],
        noise_std: f64,
        key: u64,
        group: u32,
        snap0: u32,
        out: &mut [Complex],
    ) -> Option<u32> {
        let _ = (prepared, states, noise_std, key, group, snap0, out);
        None
    }

    /// Number of standard normals one sequential [`Self::estimate_into`]
    /// call consumes — drawn via
    /// [`wiforce_dsp::rng::draw_box_muller_uniforms`] followed by
    /// [`wiforce_dsp::fastmath::standard_normals_from_uniforms`], in
    /// stream order — when that count is fixed per estimate.
    ///
    /// `Some(count)` is a contract: a producer may pre-draw `count`
    /// normals per snapshot with those exact functions (interleaved with
    /// its own scalar draws in stream order) and hand the plane to
    /// [`Self::estimate_rows_prenoise_into`], which must then be
    /// implemented and bit-identical to row-at-a-time `estimate_into`
    /// calls fed the same RNG stream. `None` (the default) means no
    /// sequential wide path — fall back to rows.
    fn seq_normals_per_estimate(&self) -> Option<usize> {
        None
    }

    /// Sequential-stream wide path: synthesizes one estimate row per
    /// truth row from pre-drawn noise. `truths` is a row-major plane of
    /// per-snapshot true channels (`rows × grid`), `normals` holds
    /// [`Self::seq_normals_per_estimate`] pre-drawn standard normals per
    /// row, and `out` is the matching estimate plane. Returns `false`
    /// (the default) when the sounder has no wide path; when it returns
    /// `true`, each row must be bit-identical to
    /// `estimate_into(truth_row, noise_std, rng, row)` with the RNG
    /// positioned as the pre-draw was.
    fn estimate_rows_prenoise_into(
        &self,
        truths: &[Complex],
        noise_std: f64,
        normals: &[f64],
        out: &mut [Complex],
    ) -> bool {
        let _ = (truths, noise_std, normals, out);
        false
    }

    /// Press-invariant identity of this sounder's configuration, for
    /// response-table caching: two sounders with equal tokens must
    /// [`Self::prepare`] identically (bit-for-bit) from the same truth.
    ///
    /// `Some(token)` lets callers key cached `Vec<PreparedChannel>`
    /// tables by `(tag-table token, config token)` in a per-scene memo
    /// (`wiforce_channel::ChannelCache::response_tables`) and gather
    /// from them instead of re-preparing every press. `None` (the
    /// default) disables that caching for sounders whose preparation is
    /// not a pure function of hashable configuration.
    fn response_token(&self) -> Option<u64> {
        None
    }

    /// Payload-plane twin of [`Self::estimate_prepared_counter_rows_into`]
    /// for rows whose payloads are all distinct (the cross-stream
    /// superposition path blends per-state payload tables into one
    /// payload per row): `payloads` is a row-major plane of precomputed
    /// noiseless payloads (`rows × grid`, each row laid out exactly like
    /// [`PreparedChannel::payload`]) and `out` the matching estimate
    /// plane. Noise comes from the counter kernel at
    /// `(key, group, snap0 + r, lane)`, so rows are pure functions of
    /// their coordinates — any block width, worker count or dispatch
    /// arm produces identical bits.
    ///
    /// Returns `Some(lanes)` consumed per row when the sounder has this
    /// path (same contract as the prepared wide path), else `None` (the
    /// default).
    fn estimate_payload_counter_rows_into(
        &self,
        payloads: &[Complex],
        noise_std: f64,
        key: u64,
        group: u32,
        snap0: u32,
        out: &mut [Complex],
    ) -> Option<u32> {
        let _ = (payloads, noise_std, key, group, snap0, out);
        None
    }

    /// Maximum unambiguous modulation ("artificial Doppler") frequency,
    /// Hz: `1/(2T)` (the paper's Nyquist argument in §4.4).
    fn max_doppler_hz(&self) -> f64 {
        0.5 / self.snapshot_period_s()
    }

    /// Per-component standard deviation of the estimate error this
    /// sounder leaves on each grid point at receiver noise level
    /// `noise_std`, when that error is i.i.d. circular complex Gaussian
    /// and uniform across the grid.
    ///
    /// `Some(sigma)` is the contract that unlocks spectral-domain direct
    /// line synthesis: by DFT unitarity, a snapshot whose estimate error
    /// is white complex Gaussian of per-component std `sigma` contributes
    /// white complex Gaussian noise of the same per-component std to any
    /// unit-normalized discrete spectral line across snapshots — so a
    /// caller can draw the line's noise directly at the consumed bins
    /// instead of synthesizing and transforming every snapshot. `None`
    /// (the default) means the error is not white/uniform (e.g. symbol
    /// amplitudes vary across the grid) and callers must stay on a
    /// time-domain path.
    fn estimate_noise_sigma(&self, noise_std: f64) -> Option<f64> {
        let _ = noise_std;
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A trivial sounder used to test the trait's provided method.
    struct Dummy;

    impl ChannelSounder for Dummy {
        fn frequency_offsets_hz(&self) -> Vec<f64> {
            vec![0.0]
        }
        fn snapshot_period_s(&self) -> f64 {
            57.6e-6
        }
        fn estimate(
            &self,
            true_channel: &[Complex],
            _noise_std: f64,
            _rng: &mut dyn RngCore,
        ) -> Vec<Complex> {
            true_channel.to_vec()
        }
    }

    #[test]
    fn nyquist_limit_matches_paper() {
        // paper §4.4: |f_max| = 1/(2T) ≈ 8.7 kHz
        let d = Dummy;
        assert!((d.max_doppler_hz() - 8680.0).abs() < 20.0);
        // and the chosen 1/4 kHz lines fall comfortably inside
        assert!(4000.0 < d.max_doppler_hz());
    }

    #[test]
    fn trait_object_usable() {
        let d: Box<dyn ChannelSounder> = Box::new(Dummy);
        let mut rng = StdRng::seed_from_u64(0);
        let est = d.estimate(&[Complex::ONE], 0.0, &mut rng);
        assert_eq!(est, vec![Complex::ONE]);
    }

    #[test]
    fn default_estimate_into_matches_estimate() {
        let d = Dummy;
        let mut rng = StdRng::seed_from_u64(0);
        let mut out = [Complex::ZERO; 1];
        d.estimate_into(&[Complex::I], 0.0, &mut rng, &mut out);
        assert_eq!(out[0], Complex::I);
    }

    #[test]
    fn default_counter_paths_agree() {
        // For a sounder with no override, the counter methods delegate
        // through the sequential path with the cursor as its RNG — the
        // full and prepared variants must agree bitwise at one coordinate.
        let d = Dummy;
        let truth = [Complex::new(0.3, -1.2)];
        let mut a = CounterRng::for_snapshot(9, 0, 4);
        let mut out_full = [Complex::ZERO; 1];
        d.estimate_counter_into(&truth, 0.1, &mut a, &mut out_full);
        let prepared = d.prepare(&truth);
        let mut b = CounterRng::for_snapshot(9, 0, 4);
        let mut out_prep = [Complex::ZERO; 1];
        d.estimate_prepared_counter_into(&prepared, 0.1, &mut b, &mut out_prep);
        assert_eq!(out_full[0].re.to_bits(), out_prep[0].re.to_bits());
        assert_eq!(out_full[0].im.to_bits(), out_prep[0].im.to_bits());
        assert_eq!(a.lane(), b.lane());
    }

    #[test]
    #[should_panic(expected = "output buffer")]
    fn default_estimate_into_checks_length() {
        let d = Dummy;
        let mut rng = StdRng::seed_from_u64(0);
        let mut out = [Complex::ZERO; 3];
        d.estimate_into(&[Complex::ONE], 0.0, &mut rng, &mut out);
    }
}

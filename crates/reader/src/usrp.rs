//! SDR front-end description (USRP-N210-style).
//!
//! Bookkeeping for the radio the reader runs on: sample rate, carrier,
//! TX power, and the rate/Nyquist checks that determine which tag clock
//! frequencies are readable (paper §4.4).

/// Configuration of the software-defined radio hosting the reader.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UsrpConfig {
    /// Complex sample rate, S/s (paper: 12.5 MS/s).
    pub sample_rate_hz: f64,
    /// Carrier frequency, Hz (paper: 900 MHz or 2.4 GHz).
    pub carrier_hz: f64,
    /// Transmit power, dBm (paper §5.4: 10 dBm).
    pub tx_power_dbm: f64,
    /// Usable receiver dynamic range, dB (paper §5.2: ≈60 dB).
    pub dynamic_range_db: f64,
}

impl UsrpConfig {
    /// The paper's 900 MHz configuration.
    pub fn n210_900mhz() -> Self {
        UsrpConfig {
            sample_rate_hz: 12.5e6,
            carrier_hz: 0.9e9,
            tx_power_dbm: 10.0,
            dynamic_range_db: 60.0,
        }
    }

    /// The paper's 2.4 GHz configuration.
    pub fn n210_2g4() -> Self {
        UsrpConfig {
            carrier_hz: 2.4e9,
            ..Self::n210_900mhz()
        }
    }

    /// Checks whether a tag whose highest used modulation line is
    /// `max_line_hz` can be read with channel estimates every
    /// `snapshot_period_s` (the §4.4 Nyquist condition `4fs ≤ 1/(2T)`).
    pub fn supports_tag(&self, max_line_hz: f64, snapshot_period_s: f64) -> bool {
        max_line_hz <= 0.5 / snapshot_period_s
    }

    /// The equivalent mover velocity (m/s) that would alias onto a
    /// modulation line at `line_hz` — paper §3.3's argument that the
    /// "artificial Doppler" sits far above real motion: `v = c·f_line/f_c`.
    pub fn equivalent_doppler_velocity(&self, line_hz: f64) -> f64 {
        wiforce_dsp::C0 * line_hz / self.carrier_hz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configs() {
        let a = UsrpConfig::n210_900mhz();
        assert_eq!(a.carrier_hz, 0.9e9);
        let b = UsrpConfig::n210_2g4();
        assert_eq!(b.carrier_hz, 2.4e9);
        assert_eq!(a.sample_rate_hz, b.sample_rate_hz);
    }

    #[test]
    fn nyquist_check_matches_paper() {
        let u = UsrpConfig::n210_900mhz();
        let t = 57.6e-6;
        // 1 kHz base ⇒ 4 kHz max line: fine
        assert!(u.supports_tag(4000.0, t));
        // a 3 kHz base ⇒ 12 kHz line: exceeds 8.68 kHz
        assert!(!u.supports_tag(12_000.0, t));
    }

    #[test]
    fn artificial_doppler_velocity_is_implausibly_fast() {
        // paper §3.3: an object would need to move at c·fs/fc to alias
        // onto the 1 kHz line — ≈333 m/s at 900 MHz, far beyond indoor
        // motion
        let u = UsrpConfig::n210_900mhz();
        let v = u.equivalent_doppler_velocity(1000.0);
        assert!((330.0..340.0).contains(&v), "{v} m/s");
        // at 2.4 GHz the equivalent speed shrinks but stays >100 m/s
        let v2 = UsrpConfig::n210_2g4().equivalent_doppler_velocity(1000.0);
        assert!(v2 > 100.0);
    }
}

//! Sample-stream transmit/receive chain.
//!
//! The rest of the crate works at the channel-estimate level; this module
//! closes the loop at the *sample* level, the way the USRP actually runs
//! (§4.4): a continuous TX stream of preamble-plus-silence frames, a
//! receiver that has to *find* the preamble in its sample stream
//! ([`crate::sync`]), lock the 720-sample frame cadence, and produce one
//! channel estimate per frame. The estimate-level and stream-level paths
//! must agree — a test in `wiforce-repro` drives the full force pipeline
//! through this receiver.

use crate::ofdm::{ascending_to_bins, OfdmSounder};
use crate::sync::find_preamble;
use rand::RngCore;
use std::cell::RefCell;
use wiforce_dsp::fft::{ifft, with_plan};
use wiforce_dsp::rng::complex_gaussian;
use wiforce_dsp::signal::hadamard;
use wiforce_dsp::snapshots::SnapshotMatrix;
use wiforce_dsp::Complex;

/// Per-thread scratch for the allocation-free frame decode path: cached
/// preamble symbols (keyed by configuration) and a reusable averaging
/// buffer.
struct StreamScratch {
    key: (usize, u64),
    symbols: Vec<Complex>,
    avg: Vec<Complex>,
}

thread_local! {
    static STREAM_SCRATCH: RefCell<StreamScratch> = const {
        RefCell::new(StreamScratch { key: (0, 0), symbols: Vec::new(), avg: Vec::new() })
    };
}

/// Generates the reader's continuous TX stream: `n_frames` repetitions of
/// preamble + zero padding.
pub fn tx_stream(sounder: &OfdmSounder, n_frames: usize) -> Vec<Complex> {
    let preamble = sounder.preamble_time();
    let frame = sounder.frame_samples();
    let mut out = Vec::with_capacity(n_frames * frame);
    for _ in 0..n_frames {
        out.extend_from_slice(&preamble);
        out.resize(out.len() + (frame - preamble.len()), Complex::ZERO);
    }
    out
}

/// Simulates the received sample stream for a sequence of per-frame
/// channels: each frame's preamble rides through its own (frame-constant)
/// per-subcarrier channel, AWGN of std `noise_std` covers every sample,
/// and `lead_in` noise-only samples precede the first frame (the unknown
/// timing the receiver must acquire).
pub fn simulate_rx_stream(
    sounder: &OfdmSounder,
    channels: &[Vec<Complex>],
    noise_std: f64,
    lead_in: usize,
    rng: &mut dyn RngCore,
) -> Vec<Complex> {
    let frame = sounder.frame_samples();
    let n_sub = sounder.n_subcarriers;
    let scale = (n_sub as f64).sqrt();
    let symbols = sounder.preamble_symbols();
    let mut out = Vec::with_capacity(lead_in + channels.len() * frame);
    for _ in 0..lead_in {
        out.push(complex_gaussian(rng, noise_std * noise_std));
    }
    for ch in channels {
        assert_eq!(ch.len(), n_sub, "one channel entry per subcarrier");
        // received preamble symbol: IFFT(S·H), repeated n_repeats times
        let rx_freq = hadamard(&symbols, &ascending_to_bins(ch));
        let rx_sym: Vec<Complex> = ifft(&rx_freq).into_iter().map(|z| z * scale).collect();
        for _ in 0..sounder.n_repeats {
            for &x in &rx_sym {
                out.push(x + complex_gaussian(rng, noise_std * noise_std));
            }
        }
        for _ in 0..sounder.zero_pad {
            out.push(complex_gaussian(rng, noise_std * noise_std));
        }
    }
    out
}

/// A locked stream receiver: acquires preamble timing once, then slices
/// frames at the fixed cadence and estimates the channel per frame.
#[derive(Debug, Clone)]
pub struct StreamReceiver {
    sounder: OfdmSounder,
    /// Minimum normalized correlation metric for acquisition.
    pub min_sync_metric: f64,
}

/// Result of processing a stream.
#[derive(Debug, Clone)]
pub struct StreamResult {
    /// Sample offset where the first preamble was found.
    pub sync_offset: usize,
    /// Correlation quality of the acquisition.
    pub sync_metric: f64,
    /// One channel estimate (ascending subcarrier order) per decoded
    /// frame, stored as rows of a flat snapshot matrix.
    pub estimates: SnapshotMatrix,
}

impl StreamReceiver {
    /// Creates a receiver for the given sounding waveform.
    pub fn new(sounder: OfdmSounder) -> Self {
        StreamReceiver {
            sounder,
            min_sync_metric: 1e-4,
        }
    }

    /// Estimates the channel from one received 320-sample preamble.
    pub fn estimate_from_preamble(&self, rx_preamble: &[Complex]) -> Vec<Complex> {
        let mut out = vec![Complex::ZERO; self.sounder.n_subcarriers];
        self.estimate_from_preamble_into(rx_preamble, &mut out);
        out
    }

    /// Like [`Self::estimate_from_preamble`], but writes the estimate into
    /// a caller-provided buffer (typically a fresh `SnapshotMatrix` row)
    /// using per-thread scratch and planned in-place FFTs — no allocation
    /// per frame.
    pub fn estimate_from_preamble_into(&self, rx_preamble: &[Complex], out: &mut [Complex]) {
        let n = self.sounder.n_subcarriers;
        assert_eq!(
            rx_preamble.len(),
            n * self.sounder.n_repeats,
            "need the full received preamble"
        );
        assert_eq!(out.len(), n, "output buffer must match the subcarrier grid");
        let half = n / 2;
        STREAM_SCRATCH.with(|scratch| {
            let scratch = &mut *scratch.borrow_mut();
            if scratch.key != (n, self.sounder.preamble_seed) || scratch.symbols.len() != n {
                scratch.symbols = self.sounder.preamble_symbols();
                scratch.key = (n, self.sounder.preamble_seed);
            }
            scratch.avg.clear();
            scratch.avg.resize(n, Complex::ZERO);
            for rep in rx_preamble.chunks(n) {
                for (a, &x) in scratch.avg.iter_mut().zip(rep) {
                    *a += x;
                }
            }
            let inv = 1.0 / self.sounder.n_repeats as f64;
            scratch.avg.iter_mut().for_each(|z| *z = z.scale(inv));
            let scale = (n as f64).sqrt();
            with_plan(n, |plan| plan.forward_inplace(&mut scratch.avg));
            // equalize and map bin order to ascending offsets into `out`
            for (i, slot) in out.iter_mut().enumerate() {
                let bin = (i + n - half) % n;
                *slot = (scratch.avg[bin] / scale) / scratch.symbols[bin];
            }
        });
    }

    /// Acquires timing and decodes every complete frame in `stream`.
    ///
    /// Returns `None` when no preamble clears the sync threshold.
    pub fn process(&self, stream: &[Complex]) -> Option<StreamResult> {
        let _span = wiforce_telemetry::span!("stream.process");
        let preamble = self.sounder.preamble_time();
        let frame = self.sounder.frame_samples();
        // search exactly one frame period of alignments (any more would
        // cover the next frame's preamble and the global correlation max
        // could land there instead of on the first occurrence)
        let search = stream.len().min(frame + preamble.len() - 1);
        let Some(sync) = find_preamble(&stream[..search], &preamble, self.min_sync_metric) else {
            wiforce_telemetry::counter!("stream.sync_failures", 1);
            return None;
        };
        wiforce_telemetry::counter!("stream.sync_acquisitions", 1);
        wiforce_telemetry::gauge!("stream.sync_metric", sync.peak_metric);
        let mut estimates = SnapshotMatrix::new(self.sounder.n_subcarriers);
        let mut pos = sync.offset;
        while pos + preamble.len() <= stream.len() {
            let row = estimates.push_row_default();
            self.estimate_from_preamble_into(&stream[pos..pos + preamble.len()], row);
            pos += frame;
        }
        wiforce_telemetry::counter!("stream.frames_decoded", estimates.n_rows() as u64);
        Some(StreamResult {
            sync_offset: sync.offset,
            sync_metric: sync.peak_metric,
            estimates,
        })
    }
}

/// One phase group's worth of snapshots travelling through a
/// [`TagDemux`]: the shared snapshot matrix (frequency-multiplexed tags
/// are separated downstream by line extraction, so every subscribed
/// stream sees the same rows), its sequence number in the reader's group
/// timeline, and the production timestamp for latency accounting.
#[derive(Debug, Clone)]
pub struct GroupItem {
    /// Group index in the reader's timeline (0-based, gap-free).
    pub seq: u64,
    /// The group's channel-estimate snapshots (rows = snapshots).
    pub snapshots: std::sync::Arc<SnapshotMatrix>,
    /// When the group left the producer — consumers subtract this from
    /// `Instant::now()` for per-stream latency histograms.
    pub produced: std::time::Instant,
}

/// Error returned when a fan-out would overflow a stream's bounded queue
/// — the backpressure signal a batch engine throttles its producer on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFull {
    /// Index of the stream whose queue is at capacity.
    pub stream: usize,
}

impl std::fmt::Display for QueueFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "stream {} snapshot queue is full", self.stream)
    }
}

impl std::error::Error for QueueFull {}

/// Fan-in point for a frequency-multiplexed multi-tag reader (§7): one
/// physical snapshot stream carries every tag's modulation lines, and the
/// demux hands each registered per-tag stream its own bounded queue of
/// group items. Because the tags ride the *same* rows (separation happens
/// in Doppler, not in time), [`TagDemux::fan_out`] clones the shared
/// `Arc` into every queue; [`TagDemux::match_stream`] additionally routes
/// externally-tagged traffic (e.g. a second reader's frames annotated
/// with a line frequency) to the nearest registered clock.
#[derive(Debug)]
pub struct TagDemux {
    fs_hz: Vec<f64>,
    queues: Vec<std::collections::VecDeque<GroupItem>>,
    capacity: usize,
}

impl TagDemux {
    /// Creates a demux whose per-stream queues hold at most `capacity`
    /// groups before [`TagDemux::fan_out`] reports backpressure.
    pub fn new(capacity: usize) -> Self {
        TagDemux {
            fs_hz: Vec::new(),
            queues: Vec::new(),
            capacity: capacity.max(1),
        }
    }

    /// Registers a per-tag stream by its base clock frequency, returning
    /// its stream index.
    pub fn register(&mut self, fs_hz: f64) -> usize {
        self.fs_hz.push(fs_hz);
        self.queues.push(std::collections::VecDeque::new());
        self.fs_hz.len() - 1
    }

    /// Number of registered streams.
    pub fn n_streams(&self) -> usize {
        self.fs_hz.len()
    }

    /// Per-stream queue capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Registered base clock of stream `i`, Hz.
    pub fn stream_fs_hz(&self, i: usize) -> f64 {
        self.fs_hz[i]
    }

    /// Current queue depth of stream `i`.
    pub fn depth(&self, i: usize) -> usize {
        self.queues[i].len()
    }

    /// `true` when every stream's queue has room for one more group —
    /// the producer's go/no-go check.
    pub fn can_accept(&self) -> bool {
        self.queues.iter().all(|q| q.len() < self.capacity)
    }

    /// Worst-case queue occupancy across streams, in `[0, 1]`.
    pub fn occupancy(&self) -> f64 {
        let deepest = self.queues.iter().map(|q| q.len()).max().unwrap_or(0);
        deepest as f64 / self.capacity as f64
    }

    /// Fans one produced group out to every registered stream (the
    /// frequency-multiplexed fan-in: all tags share the rows). Fails with
    /// [`QueueFull`] — enqueuing nothing — if any stream is at capacity,
    /// so a blocked consumer backpressures the whole reader rather than
    /// silently dropping its groups.
    pub fn fan_out(&mut self, item: GroupItem) -> Result<(), QueueFull> {
        if let Some(stream) = self.queues.iter().position(|q| q.len() >= self.capacity) {
            return Err(QueueFull { stream });
        }
        for q in &mut self.queues {
            q.push_back(item.clone());
        }
        Ok(())
    }

    /// Lossy fan-out for engines running a drop-newest overflow policy:
    /// enqueues the group on every stream with room and *skips* streams
    /// at capacity, returning the indices that dropped it (empty when
    /// everyone accepted). The slow consumer loses data; the reader and
    /// its other streams keep their cadence.
    pub fn fan_out_lossy(&mut self, item: GroupItem) -> Vec<usize> {
        let mut dropped = Vec::new();
        for (i, q) in self.queues.iter_mut().enumerate() {
            if q.len() >= self.capacity {
                dropped.push(i);
            } else {
                q.push_back(item.clone());
            }
        }
        dropped
    }

    /// Routes an externally-tagged group to the single stream whose
    /// registered clock is nearest `line_hz` (within `tol_hz`), for
    /// fan-in of traffic that arrives already separated per tag. Returns
    /// the stream index it landed on.
    pub fn route(
        &mut self,
        line_hz: f64,
        tol_hz: f64,
        item: GroupItem,
    ) -> Result<usize, QueueFull> {
        let Some(stream) = self.match_stream(line_hz, tol_hz) else {
            return Err(QueueFull { stream: usize::MAX });
        };
        if self.queues[stream].len() >= self.capacity {
            return Err(QueueFull { stream });
        }
        self.queues[stream].push_back(item);
        Ok(stream)
    }

    /// The registered stream whose base clock is nearest `line_hz`,
    /// if within `tol_hz`.
    pub fn match_stream(&self, line_hz: f64, tol_hz: f64) -> Option<usize> {
        let (i, d) = self
            .fs_hz
            .iter()
            .enumerate()
            .map(|(i, &f)| (i, (f - line_hz).abs()))
            .min_by(|a, b| a.1.total_cmp(&b.1))?;
        (d <= tol_hz).then_some(i)
    }

    /// Pops the oldest pending group of stream `i` (FIFO).
    pub fn pop(&mut self, i: usize) -> Option<GroupItem> {
        self.queues[i].pop_front()
    }

    /// Drains every pending group of stream `i`, oldest first.
    pub fn drain(&mut self, i: usize) -> Vec<GroupItem> {
        self.queues[i].drain(..).collect()
    }

    /// `true` when no stream has pending groups.
    pub fn is_empty(&self) -> bool {
        self.queues.iter().all(|q| q.is_empty())
    }

    /// Doppler power of each registered stream's base line in a group —
    /// which tags are actually present in the shared rows. Powers are the
    /// squared magnitude of the mean-subtracted Goertzel sum at `fs`,
    /// averaged over subcarriers; a silent tag reads orders of magnitude
    /// below a toggling one.
    pub fn line_powers(&self, group: &SnapshotMatrix, snapshot_period_s: f64) -> Vec<f64> {
        let n = group.n_rows();
        let k = group.n_cols();
        if n == 0 || k == 0 {
            return vec![0.0; self.fs_hz.len()];
        }
        // per-subcarrier means (static clutter at DC)
        let mut means = vec![Complex::ZERO; k];
        for row in group.rows() {
            for (m, &x) in means.iter_mut().zip(row) {
                *m += x;
            }
        }
        let inv = 1.0 / n as f64;
        means.iter_mut().for_each(|m| *m = m.scale(inv));
        self.fs_hz
            .iter()
            .map(|&fs| {
                let f_norm = fs * snapshot_period_s;
                let w = Complex::cis(-wiforce_dsp::TAU * f_norm);
                let mut phase = Complex::ONE;
                let mut acc = vec![Complex::ZERO; k];
                for row in group.rows() {
                    for ((a, &x), &m) in acc.iter_mut().zip(row).zip(&means) {
                        *a += (x - m) * phase;
                    }
                    phase *= w;
                }
                acc.iter().map(|z| z.norm_sqr()).sum::<f64>() / (k as f64 * (n * n) as f64)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn channels(n_frames: usize) -> Vec<Vec<Complex>> {
        (0..n_frames)
            .map(|f| {
                (0..64)
                    .map(|k| {
                        Complex::from_polar(
                            0.5 + 0.001 * f as f64,
                            0.02 * k as f64 + 0.1 * f as f64,
                        )
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn tx_stream_shape() {
        let s = OfdmSounder::wiforce();
        let tx = tx_stream(&s, 3);
        assert_eq!(tx.len(), 3 * 720);
        // padding region is silent
        assert_eq!(tx[320], Complex::ZERO);
        assert_eq!(tx[719], Complex::ZERO);
        assert!(tx[0] != Complex::ZERO);
    }

    #[test]
    fn receiver_acquires_and_decodes_all_frames() {
        let s = OfdmSounder::wiforce();
        let chans = channels(5);
        let mut rng = StdRng::seed_from_u64(1);
        let rx = simulate_rx_stream(&s, &chans, 1e-4, 137, &mut rng);
        let result = StreamReceiver::new(s).process(&rx).expect("sync");
        assert_eq!(result.sync_offset, 137);
        assert_eq!(result.estimates.n_rows(), 5);
        for (est, truth) in result.estimates.rows().zip(&chans) {
            for (e, t) in est.iter().zip(truth) {
                assert!((*e - *t).abs() < 2e-3, "{e:?} vs {t:?}");
            }
        }
    }

    #[test]
    fn noiseless_stream_estimates_exactly() {
        let s = OfdmSounder::wiforce();
        let chans = channels(2);
        let mut rng = StdRng::seed_from_u64(2);
        let rx = simulate_rx_stream(&s, &chans, 0.0, 0, &mut rng);
        let result = StreamReceiver::new(s).process(&rx).expect("sync");
        assert_eq!(result.sync_offset, 0);
        for (est, truth) in result.estimates.rows().zip(&chans) {
            for (e, t) in est.iter().zip(truth) {
                assert!((*e - *t).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn pure_noise_does_not_sync() {
        let s = OfdmSounder::wiforce();
        let mut rng = StdRng::seed_from_u64(3);
        let noise: Vec<Complex> = (0..2000)
            .map(|_| complex_gaussian(&mut rng, 1e-4))
            .collect();
        let mut rx = StreamReceiver::new(s);
        rx.min_sync_metric = 0.05;
        assert!(rx.process(&noise).is_none());
    }

    #[test]
    fn stream_matches_estimate_level_path() {
        // the waveform-level receiver and the OfdmSounder::estimate
        // shortcut must produce identical noiseless channel estimates
        use crate::sounder::ChannelSounder;
        let s = OfdmSounder::wiforce();
        let truth: Vec<Complex> = (0..64)
            .map(|k| Complex::from_polar(1.0, 0.05 * k as f64))
            .collect();
        let mut rng = StdRng::seed_from_u64(4);
        let rx = simulate_rx_stream(&s, std::slice::from_ref(&truth), 0.0, 0, &mut rng);
        let result = StreamReceiver::new(s).process(&rx).expect("sync");
        let stream_est = result.estimates.row(0);
        let direct_est = s.estimate(&truth, 0.0, &mut rng);
        for (a, b) in stream_est.iter().zip(&direct_est) {
            assert!((*a - *b).abs() < 1e-9);
        }
    }

    fn group_item(seq: u64) -> GroupItem {
        GroupItem {
            seq,
            snapshots: std::sync::Arc::new(SnapshotMatrix::new(4)),
            produced: std::time::Instant::now(),
        }
    }

    #[test]
    fn demux_fans_out_to_all_streams_in_order() {
        let mut d = TagDemux::new(4);
        let a = d.register(1000.0);
        let b = d.register(1500.0);
        assert_eq!(d.n_streams(), 2);
        for seq in 0..3 {
            d.fan_out(group_item(seq)).unwrap();
        }
        assert_eq!(d.depth(a), 3);
        assert_eq!(d.depth(b), 3);
        assert_eq!(d.pop(a).unwrap().seq, 0);
        let rest: Vec<u64> = d.drain(a).into_iter().map(|g| g.seq).collect();
        assert_eq!(rest, vec![1, 2]);
        assert_eq!(d.drain(b).len(), 3);
        assert!(d.is_empty());
    }

    #[test]
    fn demux_backpressures_when_any_queue_full() {
        let mut d = TagDemux::new(2);
        let a = d.register(1000.0);
        let b = d.register(1500.0);
        d.fan_out(group_item(0)).unwrap();
        d.fan_out(group_item(1)).unwrap();
        assert!(!d.can_accept());
        assert_eq!(d.occupancy(), 1.0);
        // a full sibling queue blocks the whole fan-out, nothing enqueued
        assert_eq!(d.fan_out(group_item(2)), Err(QueueFull { stream: a }));
        assert_eq!(d.depth(a), 2);
        assert_eq!(d.depth(b), 2);
        // draining one stream reopens the fan-in
        d.drain(a);
        assert!(!d.can_accept()); // b still full
        d.pop(b);
        assert!(d.can_accept());
        d.fan_out(group_item(2)).unwrap();
        assert_eq!(d.pop(a).unwrap().seq, 2);
    }

    #[test]
    fn lossy_fan_out_drops_only_full_streams() {
        let mut d = TagDemux::new(2);
        let a = d.register(1000.0);
        let b = d.register(1500.0);
        assert!(d.fan_out_lossy(group_item(0)).is_empty());
        assert!(d.fan_out_lossy(group_item(1)).is_empty());
        // b is drained, a stays full: only a drops the next group
        d.drain(b);
        assert_eq!(d.fan_out_lossy(group_item(2)), vec![a]);
        assert_eq!(d.depth(a), 2);
        assert_eq!(d.depth(b), 1);
        // a keeps its FIFO prefix; b got the newer group
        assert_eq!(d.pop(a).unwrap().seq, 0);
        assert_eq!(d.pop(b).unwrap().seq, 2);
        // everyone full: every stream reports the drop
        d.fan_out_lossy(group_item(3));
        d.fan_out_lossy(group_item(4));
        assert_eq!(d.fan_out_lossy(group_item(5)), vec![a, b]);
    }

    #[test]
    fn demux_routes_by_nearest_clock() {
        let mut d = TagDemux::new(4);
        let a = d.register(1000.0);
        let b = d.register(1444.4);
        assert_eq!(d.match_stream(1002.0, 10.0), Some(a));
        assert_eq!(d.match_stream(1440.0, 10.0), Some(b));
        assert_eq!(d.match_stream(1200.0, 10.0), None);
        assert_eq!(d.route(1445.0, 10.0, group_item(7)), Ok(b));
        assert_eq!(d.depth(a), 0);
        assert_eq!(d.pop(b).unwrap().seq, 7);
    }

    #[test]
    fn line_powers_separate_active_from_silent_tags() {
        // two on-grid clocks; only the first actually toggles in the rows
        let period = 57.6e-6;
        let n = 625usize;
        let bin = 1.0 / (n as f64 * period);
        let (f_active, f_silent) = (36.0 * bin, 53.0 * bin);
        let mut m = SnapshotMatrix::new(3);
        for i in 0..n {
            let t = i as f64 * period;
            let tone = Complex::cis(wiforce_dsp::TAU * f_active * t).scale(0.1);
            m.push_row(&[
                Complex::new(1.0, 0.0) + tone,
                Complex::new(0.5, 0.5) + tone,
                tone,
            ]);
        }
        let mut d = TagDemux::new(4);
        d.register(f_active);
        d.register(f_silent);
        let p = d.line_powers(&m, period);
        assert!(p[0] > 1e-3, "active line power {}", p[0]);
        assert!(
            p[1] < 1e-9 * p[0],
            "silent tag leaked: {} vs {}",
            p[1],
            p[0]
        );
    }
}

//! Sample-stream transmit/receive chain.
//!
//! The rest of the crate works at the channel-estimate level; this module
//! closes the loop at the *sample* level, the way the USRP actually runs
//! (§4.4): a continuous TX stream of preamble-plus-silence frames, a
//! receiver that has to *find* the preamble in its sample stream
//! ([`crate::sync`]), lock the 720-sample frame cadence, and produce one
//! channel estimate per frame. The estimate-level and stream-level paths
//! must agree — a test in `wiforce-repro` drives the full force pipeline
//! through this receiver.

use crate::ofdm::{ascending_to_bins, OfdmSounder};
use crate::sync::find_preamble;
use rand::RngCore;
use std::cell::RefCell;
use wiforce_dsp::fft::{ifft, with_plan};
use wiforce_dsp::rng::complex_gaussian;
use wiforce_dsp::signal::hadamard;
use wiforce_dsp::snapshots::SnapshotMatrix;
use wiforce_dsp::Complex;

/// Per-thread scratch for the allocation-free frame decode path: cached
/// preamble symbols (keyed by configuration) and a reusable averaging
/// buffer.
struct StreamScratch {
    key: (usize, u64),
    symbols: Vec<Complex>,
    avg: Vec<Complex>,
}

thread_local! {
    static STREAM_SCRATCH: RefCell<StreamScratch> = const {
        RefCell::new(StreamScratch { key: (0, 0), symbols: Vec::new(), avg: Vec::new() })
    };
}

/// Generates the reader's continuous TX stream: `n_frames` repetitions of
/// preamble + zero padding.
pub fn tx_stream(sounder: &OfdmSounder, n_frames: usize) -> Vec<Complex> {
    let preamble = sounder.preamble_time();
    let frame = sounder.frame_samples();
    let mut out = Vec::with_capacity(n_frames * frame);
    for _ in 0..n_frames {
        out.extend_from_slice(&preamble);
        out.resize(out.len() + (frame - preamble.len()), Complex::ZERO);
    }
    out
}

/// Simulates the received sample stream for a sequence of per-frame
/// channels: each frame's preamble rides through its own (frame-constant)
/// per-subcarrier channel, AWGN of std `noise_std` covers every sample,
/// and `lead_in` noise-only samples precede the first frame (the unknown
/// timing the receiver must acquire).
pub fn simulate_rx_stream(
    sounder: &OfdmSounder,
    channels: &[Vec<Complex>],
    noise_std: f64,
    lead_in: usize,
    rng: &mut dyn RngCore,
) -> Vec<Complex> {
    let frame = sounder.frame_samples();
    let n_sub = sounder.n_subcarriers;
    let scale = (n_sub as f64).sqrt();
    let symbols = sounder.preamble_symbols();
    let mut out = Vec::with_capacity(lead_in + channels.len() * frame);
    for _ in 0..lead_in {
        out.push(complex_gaussian(rng, noise_std * noise_std));
    }
    for ch in channels {
        assert_eq!(ch.len(), n_sub, "one channel entry per subcarrier");
        // received preamble symbol: IFFT(S·H), repeated n_repeats times
        let rx_freq = hadamard(&symbols, &ascending_to_bins(ch));
        let rx_sym: Vec<Complex> = ifft(&rx_freq).into_iter().map(|z| z * scale).collect();
        for _ in 0..sounder.n_repeats {
            for &x in &rx_sym {
                out.push(x + complex_gaussian(rng, noise_std * noise_std));
            }
        }
        for _ in 0..sounder.zero_pad {
            out.push(complex_gaussian(rng, noise_std * noise_std));
        }
    }
    out
}

/// A locked stream receiver: acquires preamble timing once, then slices
/// frames at the fixed cadence and estimates the channel per frame.
#[derive(Debug, Clone)]
pub struct StreamReceiver {
    sounder: OfdmSounder,
    /// Minimum normalized correlation metric for acquisition.
    pub min_sync_metric: f64,
}

/// Result of processing a stream.
#[derive(Debug, Clone)]
pub struct StreamResult {
    /// Sample offset where the first preamble was found.
    pub sync_offset: usize,
    /// Correlation quality of the acquisition.
    pub sync_metric: f64,
    /// One channel estimate (ascending subcarrier order) per decoded
    /// frame, stored as rows of a flat snapshot matrix.
    pub estimates: SnapshotMatrix,
}

impl StreamReceiver {
    /// Creates a receiver for the given sounding waveform.
    pub fn new(sounder: OfdmSounder) -> Self {
        StreamReceiver {
            sounder,
            min_sync_metric: 1e-4,
        }
    }

    /// Estimates the channel from one received 320-sample preamble.
    pub fn estimate_from_preamble(&self, rx_preamble: &[Complex]) -> Vec<Complex> {
        let mut out = vec![Complex::ZERO; self.sounder.n_subcarriers];
        self.estimate_from_preamble_into(rx_preamble, &mut out);
        out
    }

    /// Like [`Self::estimate_from_preamble`], but writes the estimate into
    /// a caller-provided buffer (typically a fresh `SnapshotMatrix` row)
    /// using per-thread scratch and planned in-place FFTs — no allocation
    /// per frame.
    pub fn estimate_from_preamble_into(&self, rx_preamble: &[Complex], out: &mut [Complex]) {
        let n = self.sounder.n_subcarriers;
        assert_eq!(
            rx_preamble.len(),
            n * self.sounder.n_repeats,
            "need the full received preamble"
        );
        assert_eq!(out.len(), n, "output buffer must match the subcarrier grid");
        let half = n / 2;
        STREAM_SCRATCH.with(|scratch| {
            let scratch = &mut *scratch.borrow_mut();
            if scratch.key != (n, self.sounder.preamble_seed) || scratch.symbols.len() != n {
                scratch.symbols = self.sounder.preamble_symbols();
                scratch.key = (n, self.sounder.preamble_seed);
            }
            scratch.avg.clear();
            scratch.avg.resize(n, Complex::ZERO);
            for rep in rx_preamble.chunks(n) {
                for (a, &x) in scratch.avg.iter_mut().zip(rep) {
                    *a += x;
                }
            }
            let inv = 1.0 / self.sounder.n_repeats as f64;
            scratch.avg.iter_mut().for_each(|z| *z = z.scale(inv));
            let scale = (n as f64).sqrt();
            with_plan(n, |plan| plan.forward_inplace(&mut scratch.avg));
            // equalize and map bin order to ascending offsets into `out`
            for (i, slot) in out.iter_mut().enumerate() {
                let bin = (i + n - half) % n;
                *slot = (scratch.avg[bin] / scale) / scratch.symbols[bin];
            }
        });
    }

    /// Acquires timing and decodes every complete frame in `stream`.
    ///
    /// Returns `None` when no preamble clears the sync threshold.
    pub fn process(&self, stream: &[Complex]) -> Option<StreamResult> {
        let _span = wiforce_telemetry::span!("stream.process");
        let preamble = self.sounder.preamble_time();
        let frame = self.sounder.frame_samples();
        // search exactly one frame period of alignments (any more would
        // cover the next frame's preamble and the global correlation max
        // could land there instead of on the first occurrence)
        let search = stream.len().min(frame + preamble.len() - 1);
        let Some(sync) = find_preamble(&stream[..search], &preamble, self.min_sync_metric) else {
            wiforce_telemetry::counter!("stream.sync_failures", 1);
            return None;
        };
        wiforce_telemetry::counter!("stream.sync_acquisitions", 1);
        wiforce_telemetry::gauge!("stream.sync_metric", sync.peak_metric);
        let mut estimates = SnapshotMatrix::new(self.sounder.n_subcarriers);
        let mut pos = sync.offset;
        while pos + preamble.len() <= stream.len() {
            let row = estimates.push_row_default();
            self.estimate_from_preamble_into(&stream[pos..pos + preamble.len()], row);
            pos += frame;
        }
        wiforce_telemetry::counter!("stream.frames_decoded", estimates.n_rows() as u64);
        Some(StreamResult {
            sync_offset: sync.offset,
            sync_metric: sync.peak_metric,
            estimates,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn channels(n_frames: usize) -> Vec<Vec<Complex>> {
        (0..n_frames)
            .map(|f| {
                (0..64)
                    .map(|k| {
                        Complex::from_polar(
                            0.5 + 0.001 * f as f64,
                            0.02 * k as f64 + 0.1 * f as f64,
                        )
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn tx_stream_shape() {
        let s = OfdmSounder::wiforce();
        let tx = tx_stream(&s, 3);
        assert_eq!(tx.len(), 3 * 720);
        // padding region is silent
        assert_eq!(tx[320], Complex::ZERO);
        assert_eq!(tx[719], Complex::ZERO);
        assert!(tx[0] != Complex::ZERO);
    }

    #[test]
    fn receiver_acquires_and_decodes_all_frames() {
        let s = OfdmSounder::wiforce();
        let chans = channels(5);
        let mut rng = StdRng::seed_from_u64(1);
        let rx = simulate_rx_stream(&s, &chans, 1e-4, 137, &mut rng);
        let result = StreamReceiver::new(s).process(&rx).expect("sync");
        assert_eq!(result.sync_offset, 137);
        assert_eq!(result.estimates.n_rows(), 5);
        for (est, truth) in result.estimates.rows().zip(&chans) {
            for (e, t) in est.iter().zip(truth) {
                assert!((*e - *t).abs() < 2e-3, "{e:?} vs {t:?}");
            }
        }
    }

    #[test]
    fn noiseless_stream_estimates_exactly() {
        let s = OfdmSounder::wiforce();
        let chans = channels(2);
        let mut rng = StdRng::seed_from_u64(2);
        let rx = simulate_rx_stream(&s, &chans, 0.0, 0, &mut rng);
        let result = StreamReceiver::new(s).process(&rx).expect("sync");
        assert_eq!(result.sync_offset, 0);
        for (est, truth) in result.estimates.rows().zip(&chans) {
            for (e, t) in est.iter().zip(truth) {
                assert!((*e - *t).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn pure_noise_does_not_sync() {
        let s = OfdmSounder::wiforce();
        let mut rng = StdRng::seed_from_u64(3);
        let noise: Vec<Complex> = (0..2000)
            .map(|_| complex_gaussian(&mut rng, 1e-4))
            .collect();
        let mut rx = StreamReceiver::new(s);
        rx.min_sync_metric = 0.05;
        assert!(rx.process(&noise).is_none());
    }

    #[test]
    fn stream_matches_estimate_level_path() {
        // the waveform-level receiver and the OfdmSounder::estimate
        // shortcut must produce identical noiseless channel estimates
        use crate::sounder::ChannelSounder;
        let s = OfdmSounder::wiforce();
        let truth: Vec<Complex> = (0..64)
            .map(|k| Complex::from_polar(1.0, 0.05 * k as f64))
            .collect();
        let mut rng = StdRng::seed_from_u64(4);
        let rx = simulate_rx_stream(&s, std::slice::from_ref(&truth), 0.0, 0, &mut rng);
        let result = StreamReceiver::new(s).process(&rx).expect("sync");
        let stream_est = result.estimates.row(0);
        let direct_est = s.estimate(&truth, 0.0, &mut rng);
        for (a, b) in stream_est.iter().zip(&direct_est) {
            assert!((*a - *b).abs() < 1e-9);
        }
    }
}

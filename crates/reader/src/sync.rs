//! Preamble detection and frame timing.
//!
//! The reader must locate the 320-sample preamble inside its sample stream
//! before estimating the channel. Because TX and RX share one USRP (paper
//! §4.4: "since the transmit and receive chains are on the same device,
//! they are synchronized"), timing is stable once acquired; this module
//! provides the acquisition by cross-correlation plus a correlation-quality
//! metric used to reject frames hit by interference.

use wiforce_dsp::signal::{cross_correlate, peak_index};
use wiforce_dsp::Complex;

/// Result of searching a stream for one preamble.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyncResult {
    /// Sample offset of the preamble start.
    pub offset: usize,
    /// Peak correlation magnitude normalized by preamble energy — ≈ the
    /// channel's direct-path amplitude for a clean hit.
    pub peak_metric: f64,
}

/// Searches `stream` for `preamble` by cross-correlation.
///
/// Returns `None` when the stream is shorter than the preamble or the
/// normalized peak falls below `min_metric`.
pub fn find_preamble(
    stream: &[Complex],
    preamble: &[Complex],
    min_metric: f64,
) -> Option<SyncResult> {
    if preamble.is_empty() || stream.len() < preamble.len() {
        return None;
    }
    let corr = cross_correlate(stream, preamble);
    let idx = peak_index(&corr)?;
    let energy: f64 = preamble.iter().map(|z| z.norm_sqr()).sum();
    let metric = corr[idx].abs() / energy;
    if metric < min_metric {
        return None;
    }
    Some(SyncResult {
        offset: idx,
        peak_metric: metric,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ofdm::OfdmSounder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use wiforce_dsp::rng::complex_gaussian;

    fn embedded_stream(gain: Complex, offset: usize, noise: f64) -> (Vec<Complex>, Vec<Complex>) {
        let pre = OfdmSounder::wiforce().preamble_time();
        let mut rng = StdRng::seed_from_u64(42);
        let mut stream: Vec<Complex> = (0..1000)
            .map(|_| complex_gaussian(&mut rng, noise * noise))
            .collect();
        for (i, &p) in pre.iter().enumerate() {
            stream[offset + i] += p * gain;
        }
        (stream, pre)
    }

    #[test]
    fn finds_clean_preamble() {
        let (stream, pre) = embedded_stream(Complex::from_re(1.0), 333, 0.0);
        let r = find_preamble(&stream, &pre, 0.1).unwrap();
        assert_eq!(r.offset, 333);
        assert!((r.peak_metric - 1.0).abs() < 0.05);
    }

    #[test]
    fn finds_attenuated_preamble_in_noise() {
        let (stream, pre) = embedded_stream(Complex::from_polar(0.05, 1.2), 127, 0.01);
        let r = find_preamble(&stream, &pre, 0.01).unwrap();
        assert_eq!(r.offset, 127);
        assert!((r.peak_metric - 0.05).abs() < 0.01);
    }

    #[test]
    fn rejects_absent_preamble() {
        let mut rng = StdRng::seed_from_u64(7);
        let stream: Vec<Complex> = (0..1000)
            .map(|_| complex_gaussian(&mut rng, 0.01))
            .collect();
        let pre = OfdmSounder::wiforce().preamble_time();
        assert!(find_preamble(&stream, &pre, 0.5).is_none());
    }

    #[test]
    fn degenerate_inputs() {
        let pre = OfdmSounder::wiforce().preamble_time();
        assert!(find_preamble(&[], &pre, 0.1).is_none());
        assert!(find_preamble(&pre[..10], &pre, 0.1).is_none());
        assert!(find_preamble(&pre, &[], 0.1).is_none());
    }
}

#![warn(missing_docs)]

//! # wiforce-reader
//!
//! Wireless-reader substrate for the WiForce reproduction.
//!
//! Paper §4.4: "The main task of the wireless reader is to transmit the
//! OFDM waveform and periodically estimate the channel, so that phase
//! changes at the shifted frequencies from the sensor can be read
//! wirelessly." The prototype reader is a USRP N210 sounding a 64-
//! subcarrier, 12.5 MHz OFDM preamble every 720 samples (57.6 µs), giving
//! a ±8.68 kHz unambiguous Doppler band for the tag's 1/4 kHz lines.
//!
//! WiForce's algorithm is *waveform-agnostic* (§3.3): anything producing
//! periodic wideband channel estimates works. This crate provides:
//!
//! * [`ofdm`] — preamble generation, waveform-level synthesis, and
//!   least-squares channel estimation (the paper's reader).
//! * [`fmcw`] — a chirp sounder producing the same per-frequency channel
//!   samples, demonstrating the waveform-agnostic claim.
//! * [`sounder`] — the common [`sounder::ChannelSounder`] trait.
//! * [`stream`] — the sample-level TX/RX chain: continuous frame stream,
//!   preamble acquisition, per-frame channel estimation.
//! * [`sync`] — preamble detection by cross-correlation (frame timing).
//! * [`usrp`] — SDR front-end description and rate/Nyquist bookkeeping.

pub mod fmcw;
pub mod ofdm;
pub mod sounder;
pub mod stream;
pub mod sync;
pub mod usrp;

pub use ofdm::OfdmSounder;
pub use sounder::ChannelSounder;
pub use usrp::UsrpConfig;

//! FMCW chirp sounding — the waveform-agnostic alternative.
//!
//! Paper §3.3: "WiForce's strategy becomes waveform-agnostic, and can be
//! used with any wideband sensing waveform that allows for periodic
//! channel estimates, such as FMCW, UWB and WiFi-OFDM." An FMCW radar
//! sweeps a chirp across the band; after dechirping, each time instant of
//! the sweep measures the channel at one instantaneous frequency. We model
//! that faithfully at the channel level: the sweep samples `H` on a
//! frequency grid sequentially, each sample carrying its own noise, then a
//! per-sweep estimate is assembled. The grid matches the OFDM sounder's so
//! the downstream algorithm cannot tell them apart — which is the claim.

use crate::sounder::ChannelSounder;
use rand::RngCore;
use wiforce_dsp::rng::complex_gaussian;
use wiforce_dsp::Complex;

/// FMCW sounding configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FmcwSounder {
    /// Number of frequency samples per sweep.
    pub n_points: usize,
    /// Swept bandwidth, Hz.
    pub bandwidth_hz: f64,
    /// Sweep duration, s.
    pub sweep_s: f64,
    /// Idle time between sweeps, s.
    pub idle_s: f64,
}

impl FmcwSounder {
    /// A sweep matched to the paper's OFDM grid: 64 points over 12.5 MHz,
    /// same 57.6 µs repetition period.
    pub fn matched_to_ofdm() -> Self {
        FmcwSounder {
            n_points: 64,
            bandwidth_hz: 12.5e6,
            sweep_s: 25.6e-6,
            idle_s: 32e-6,
        }
    }

    /// Instantaneous frequency offset at sweep sample `i`.
    pub fn sweep_freq_hz(&self, i: usize) -> f64 {
        assert!(i < self.n_points);
        let frac = i as f64 / (self.n_points - 1).max(1) as f64;
        -self.bandwidth_hz / 2.0 + self.bandwidth_hz * frac
    }
}

impl ChannelSounder for FmcwSounder {
    fn frequency_offsets_hz(&self) -> Vec<f64> {
        (0..self.n_points).map(|i| self.sweep_freq_hz(i)).collect()
    }

    fn snapshot_period_s(&self) -> f64 {
        self.sweep_s + self.idle_s
    }

    fn integration_window_s(&self) -> f64 {
        self.sweep_s
    }

    fn estimate(
        &self,
        true_channel: &[Complex],
        noise_std: f64,
        rng: &mut dyn RngCore,
    ) -> Vec<Complex> {
        assert_eq!(
            true_channel.len(),
            self.n_points,
            "one channel sample per sweep point"
        );
        // dechirped FMCW measures H at each instantaneous frequency with
        // per-sample noise; the sweep integrates one beat sample per point
        true_channel
            .iter()
            .map(|&h| h + complex_gaussian(rng, noise_std * noise_std))
            .collect()
    }

    fn estimate_into(
        &self,
        true_channel: &[Complex],
        noise_std: f64,
        rng: &mut dyn RngCore,
        out: &mut [Complex],
    ) {
        assert_eq!(
            true_channel.len(),
            self.n_points,
            "one channel sample per sweep point"
        );
        assert_eq!(
            out.len(),
            self.n_points,
            "output buffer must match the estimate grid"
        );
        for (o, &h) in out.iter_mut().zip(true_channel) {
            *o = h + complex_gaussian(rng, noise_std * noise_std);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn grid_matches_ofdm_span() {
        let f = FmcwSounder::matched_to_ofdm();
        let offs = f.frequency_offsets_hz();
        assert_eq!(offs.len(), 64);
        assert!((offs[0] + 6.25e6).abs() < 1.0);
        assert!((offs[63] - 6.25e6).abs() < 1.0);
        // ascending
        assert!(offs.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn period_supports_tag_lines() {
        let f = FmcwSounder::matched_to_ofdm();
        assert!(f.max_doppler_hz() > 4000.0, "{}", f.max_doppler_hz());
    }

    #[test]
    fn noiseless_estimate_exact() {
        let f = FmcwSounder::matched_to_ofdm();
        let truth: Vec<Complex> = (0..64).map(|i| Complex::cis(i as f64 * 0.1)).collect();
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(f.estimate(&truth, 0.0, &mut rng), truth);
    }

    #[test]
    fn estimate_into_matches_estimate_bitwise() {
        let f = FmcwSounder::matched_to_ofdm();
        let truth: Vec<Complex> = (0..64).map(|i| Complex::cis(i as f64 * 0.3)).collect();
        let expected = f.estimate(&truth, 0.2, &mut StdRng::seed_from_u64(7));
        let mut out = vec![Complex::ZERO; 64];
        f.estimate_into(&truth, 0.2, &mut StdRng::seed_from_u64(7), &mut out);
        assert_eq!(out, expected);
    }

    #[test]
    fn prepared_path_is_bit_identical() {
        // FMCW rides the trait's default prepare/estimate_prepared_into;
        // pin that the prepared path draws the same stream and produces
        // the same bits as the full path, so a future override can't
        // silently diverge.
        use rand::RngCore;
        let f = FmcwSounder::matched_to_ofdm();
        let truth: Vec<Complex> = (0..64).map(|i| Complex::cis(i as f64 * 0.3)).collect();
        let prepared = f.prepare(&truth);
        assert_eq!(prepared.truth, truth);
        for noise in [0.0, 0.2] {
            let mut a = StdRng::seed_from_u64(23);
            let mut b = StdRng::seed_from_u64(23);
            let mut direct = vec![Complex::ZERO; 64];
            let mut fast = vec![Complex::ZERO; 64];
            f.estimate_into(&truth, noise, &mut a, &mut direct);
            f.estimate_prepared_into(&prepared, noise, &mut b, &mut fast);
            for (d, g) in direct.iter().zip(&fast) {
                assert_eq!(d.re.to_bits(), g.re.to_bits());
                assert_eq!(d.im.to_bits(), g.im.to_bits());
            }
            // same RNG stream consumed
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn counter_prepared_path_is_bit_identical() {
        // Same pin for the counter-cursor path: prepared and full
        // variants at one coordinate must agree bitwise and consume the
        // same lanes.
        use wiforce_dsp::rng::CounterRng;
        let f = FmcwSounder::matched_to_ofdm();
        let truth: Vec<Complex> = (0..64).map(|i| Complex::cis(i as f64 * 0.2)).collect();
        let prepared = f.prepare(&truth);
        let mut a = CounterRng::for_snapshot(0x51CA, 1, 7);
        let mut b = CounterRng::for_snapshot(0x51CA, 1, 7);
        let mut direct = vec![Complex::ZERO; 64];
        let mut fast = vec![Complex::ZERO; 64];
        f.estimate_counter_into(&truth, 0.2, &mut a, &mut direct);
        f.estimate_prepared_counter_into(&prepared, 0.2, &mut b, &mut fast);
        for (d, g) in direct.iter().zip(&fast) {
            assert_eq!(d.re.to_bits(), g.re.to_bits());
            assert_eq!(d.im.to_bits(), g.im.to_bits());
        }
        assert_eq!(a.lane(), b.lane());
        // counter draws are snapshot-local: a different snapshot gives
        // different noise, the same snapshot reproduces
        let mut c = CounterRng::for_snapshot(0x51CA, 1, 8);
        let mut other = vec![Complex::ZERO; 64];
        f.estimate_counter_into(&truth, 0.2, &mut c, &mut other);
        assert!(direct.iter().zip(&other).any(|(x, y)| x != y));
    }

    #[test]
    fn noise_is_applied_per_point() {
        let f = FmcwSounder::matched_to_ofdm();
        let truth = vec![Complex::ZERO; 64];
        let mut rng = StdRng::seed_from_u64(1);
        let mut p = 0.0;
        for _ in 0..200 {
            let est = f.estimate(&truth, 0.1, &mut rng);
            p += est.iter().map(|z| z.norm_sqr()).sum::<f64>() / 64.0;
        }
        p /= 200.0;
        assert!((p - 0.01).abs() < 0.002, "{p}");
    }
}

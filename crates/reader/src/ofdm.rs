//! OFDM channel sounding (the paper's reader waveform).
//!
//! Paper §4.4: 64 subcarriers over 12.5 MHz (195 kHz spacing), a 320-sample
//! preamble (five repeats of one 64-sample OFDM symbol) padded with 400
//! zeros, i.e. fresh channel estimates every 720 samples = 57.6 µs.
//!
//! The estimator here is the real thing: the preamble is synthesized in
//! the time domain, passed through the (per-subcarrier) channel, hit with
//! AWGN, then block-averaged and least-squares equalized. The receiver
//! averages the five repeats for the expected √5 noise reduction; since
//! the mean of five iid AWGN draws is exactly one Gaussian of variance
//! σ²/5, the simulation samples that averaged frame directly — one noise
//! pass instead of five, same distribution, which the tests verify.

use crate::sounder::{ChannelSounder, PreparedChannel};
use rand::RngCore;
use std::cell::RefCell;
use wiforce_dsp::fastmath::standard_normals_from_uniforms;
use wiforce_dsp::fft::{ifft, with_plan};
use wiforce_dsp::rng::draw_box_muller_uniforms;
use wiforce_dsp::Complex;

/// Per-thread scratch for the allocation-free OFDM estimation path:
/// cached preamble symbols and their equalization reciprocals (keyed by
/// configuration) and two reusable frame-sized buffers.
struct OfdmScratch {
    key: (usize, u64),
    symbols: Vec<Complex>,
    /// `1 / (√n · s[bin])` per bin — the LS equalization collapses to one
    /// complex multiply instead of two divisions per subcarrier.
    eq: Vec<Complex>,
    rx_sym: Vec<Complex>,
    avg: Vec<Complex>,
    u1s: Vec<f64>,
    u2s: Vec<f64>,
    normals: Vec<f64>,
    /// The four per-state payloads flattened state-major for the wide
    /// (snapshot-plane) synthesis path.
    payload_plane: Vec<Complex>,
}

impl OfdmScratch {
    /// Recomputes the cached preamble symbols (and their equalization
    /// reciprocals) when the sounder configuration changed.
    fn refresh_symbols(&mut self, sounder: &OfdmSounder) {
        let n = sounder.n_subcarriers;
        if self.key != (n, sounder.preamble_seed) || self.symbols.len() != n {
            self.symbols = sounder.preamble_symbols();
            let inv_scale = Complex::new(1.0 / (n as f64).sqrt(), 0.0);
            self.eq = self.symbols.iter().map(|&s| inv_scale / s).collect();
            self.key = (n, sounder.preamble_seed);
        }
    }
}

thread_local! {
    static OFDM_SCRATCH: RefCell<OfdmScratch> = const {
        RefCell::new(OfdmScratch {
            key: (0, 0),
            symbols: Vec::new(),
            eq: Vec::new(),
            rx_sym: Vec::new(),
            avg: Vec::new(),
            u1s: Vec::new(),
            u2s: Vec::new(),
            normals: Vec::new(),
            payload_plane: Vec::new(),
        })
    };
}

/// OFDM sounding configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OfdmSounder {
    /// Number of subcarriers (paper: 64).
    pub n_subcarriers: usize,
    /// Total sounding bandwidth, Hz (paper: 12.5 MHz).
    pub bandwidth_hz: f64,
    /// Preamble symbol repeats (paper: 320/64 = 5).
    pub n_repeats: usize,
    /// Zero-pad samples between frames (paper: 400).
    pub zero_pad: usize,
    /// Seed for the known preamble QPSK sequence.
    pub preamble_seed: u64,
}

impl OfdmSounder {
    /// The paper's exact configuration.
    pub fn wiforce() -> Self {
        OfdmSounder {
            n_subcarriers: 64,
            bandwidth_hz: 12.5e6,
            n_repeats: 5,
            zero_pad: 400,
            preamble_seed: 0x0FD3,
        }
    }

    /// Subcarrier spacing, Hz.
    pub fn subcarrier_spacing_hz(&self) -> f64 {
        self.bandwidth_hz / self.n_subcarriers as f64
    }

    /// Samples per frame (preamble + padding).
    pub fn frame_samples(&self) -> usize {
        self.n_repeats * self.n_subcarriers + self.zero_pad
    }

    /// The known frequency-domain preamble symbols (unit-modulus QPSK from
    /// a deterministic xorshift of the seed).
    pub fn preamble_symbols(&self) -> Vec<Complex> {
        let mut state = self.preamble_seed | 1;
        (0..self.n_subcarriers)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let q = (state >> 5) & 0b11;
                Complex::cis(std::f64::consts::FRAC_PI_4 + q as f64 * std::f64::consts::FRAC_PI_2)
            })
            .collect()
    }

    /// One 64-sample time-domain preamble symbol.
    pub fn preamble_symbol_time(&self) -> Vec<Complex> {
        let scale = (self.n_subcarriers as f64).sqrt();
        ifft(&self.preamble_symbols())
            .into_iter()
            .map(|z| z * scale) // unit average power in time domain
            .collect()
    }

    /// The full 320-sample preamble (repeated symbols).
    pub fn preamble_time(&self) -> Vec<Complex> {
        let sym = self.preamble_symbol_time();
        let mut out = Vec::with_capacity(sym.len() * self.n_repeats);
        for _ in 0..self.n_repeats {
            out.extend_from_slice(&sym);
        }
        out
    }
}

impl ChannelSounder for OfdmSounder {
    fn frequency_offsets_hz(&self) -> Vec<f64> {
        // FFT bin ordering mapped to centred offsets: bins 0..N/2 are
        // non-negative, N/2..N negative; we report ascending offsets and
        // estimators use the same permutation
        let n = self.n_subcarriers as isize;
        let df = self.subcarrier_spacing_hz();
        (0..n).map(|i| (i - n / 2) as f64 * df).collect()
    }

    fn snapshot_period_s(&self) -> f64 {
        self.frame_samples() as f64 / self.bandwidth_hz
    }

    fn integration_window_s(&self) -> f64 {
        // the preamble only — the zero padding is dead air
        (self.n_repeats * self.n_subcarriers) as f64 / self.bandwidth_hz
    }

    fn estimate(
        &self,
        true_channel: &[Complex],
        noise_std: f64,
        rng: &mut dyn RngCore,
    ) -> Vec<Complex> {
        let mut out = vec![Complex::ZERO; self.n_subcarriers];
        self.estimate_into(true_channel, noise_std, rng, &mut out);
        out
    }

    /// Allocation-free estimation: synthesizes and equalizes the frame in
    /// per-thread scratch buffers with planned in-place FFTs, writing the
    /// snapshot straight into `out`. Draws the identical RNG sequence (and
    /// performs the identical floating-point operations) as the paper-path
    /// [`ChannelSounder::estimate`] above.
    fn estimate_into(
        &self,
        true_channel: &[Complex],
        noise_std: f64,
        rng: &mut dyn RngCore,
        out: &mut [Complex],
    ) {
        let n = self.n_subcarriers;
        assert_eq!(
            true_channel.len(),
            n,
            "true_channel must have one entry per subcarrier"
        );
        assert_eq!(out.len(), n, "output buffer must match the estimate grid");
        let half = n / 2;
        let scale = (n as f64).sqrt();
        OFDM_SCRATCH.with(|scratch| {
            let scratch = &mut *scratch.borrow_mut();
            scratch.refresh_symbols(self);
            let s = &scratch.symbols;

            // TX symbol → channel (freq-domain multiply, in bin order) →
            // time domain, all in the reusable rx_sym buffer
            scratch.rx_sym.resize(n, Complex::ZERO);
            for (i, &h) in true_channel.iter().enumerate() {
                let bin = (i + n - half) % n;
                scratch.rx_sym[bin] = s[bin] * h;
            }
            with_plan(n, |plan| plan.inverse_inplace(&mut scratch.rx_sym));
            scratch.rx_sym.iter_mut().for_each(|z| *z = *z * scale);

            // the averaged frame: the mean of n_repeats iid noisy copies is
            // the payload plus one complex Gaussian of variance σ²/n_repeats
            // per sample, so draw that directly (batched Box-Muller uniforms
            // in stream order, then the vectorized transform)
            let n_normals = 2 * n;
            draw_box_muller_uniforms(rng, n_normals, &mut scratch.u1s, &mut scratch.u2s);
            scratch.normals.clear();
            scratch.normals.resize(n_normals, 0.0);
            standard_normals_from_uniforms(&scratch.u1s, &scratch.u2s, &mut scratch.normals);
            let amp = (noise_std * noise_std / (2.0 * self.n_repeats as f64)).sqrt();
            scratch.avg.clear();
            scratch.avg.resize(n, Complex::ZERO);
            {
                let OfdmScratch {
                    avg,
                    rx_sym,
                    normals,
                    ..
                } = scratch;
                wiforce_dsp::kernels::accumulate_noisy(avg, rx_sym, normals, amp);
            }

            // LS equalization: FFT, multiply by the precomputed per-bin
            // reciprocals, and map bin order back to ascending offsets
            // directly into `out`
            with_plan(n, |plan| plan.forward_inplace(&mut scratch.avg));
            for (i, slot) in out.iter_mut().enumerate() {
                let bin = (i + n - half) % n;
                *slot = scratch.avg[bin] * scratch.eq[bin];
            }
        });
    }

    /// Precomputes the noiseless received preamble symbol (symbol
    /// multiply, IFFT, power scaling) so [`Self::estimate_prepared_into`]
    /// can skip straight to the noisy-repeat averaging. A phase-group
    /// revisits only the tag's four switch states, so four of these
    /// replace hundreds of per-snapshot IFFTs.
    fn prepare(&self, true_channel: &[Complex]) -> PreparedChannel {
        let n = self.n_subcarriers;
        assert_eq!(
            true_channel.len(),
            n,
            "true_channel must have one entry per subcarrier"
        );
        let half = n / 2;
        let scale = (n as f64).sqrt();
        let mut payload = vec![Complex::ZERO; n];
        OFDM_SCRATCH.with(|scratch| {
            let scratch = &mut *scratch.borrow_mut();
            scratch.refresh_symbols(self);
            for (i, &h) in true_channel.iter().enumerate() {
                let bin = (i + n - half) % n;
                payload[bin] = scratch.symbols[bin] * h;
            }
        });
        with_plan(n, |plan| plan.inverse_inplace(&mut payload));
        payload.iter_mut().for_each(|z| *z = *z * scale);
        PreparedChannel {
            truth: true_channel.to_vec(),
            payload,
        }
    }

    /// The prepared fast path: identical RNG draws and floating-point
    /// operations as [`Self::estimate_into`] — the precomputed payload *is*
    /// the `rx_sym` that path would have built — so estimates match
    /// bit-for-bit (pinned by a test).
    fn estimate_prepared_into(
        &self,
        prepared: &PreparedChannel,
        noise_std: f64,
        rng: &mut dyn RngCore,
        out: &mut [Complex],
    ) {
        let n = self.n_subcarriers;
        assert_eq!(
            prepared.payload.len(),
            n,
            "prepared payload must match the sounder configuration"
        );
        assert_eq!(out.len(), n, "output buffer must match the estimate grid");
        let half = n / 2;
        OFDM_SCRATCH.with(|scratch| {
            let scratch = &mut *scratch.borrow_mut();
            scratch.refresh_symbols(self);

            // identical draws and arithmetic as `estimate_into` from here
            let n_normals = 2 * n;
            draw_box_muller_uniforms(rng, n_normals, &mut scratch.u1s, &mut scratch.u2s);
            scratch.normals.clear();
            scratch.normals.resize(n_normals, 0.0);
            standard_normals_from_uniforms(&scratch.u1s, &scratch.u2s, &mut scratch.normals);
            let amp = (noise_std * noise_std / (2.0 * self.n_repeats as f64)).sqrt();
            scratch.avg.clear();
            scratch.avg.resize(n, Complex::ZERO);
            {
                let OfdmScratch { avg, normals, .. } = scratch;
                wiforce_dsp::kernels::accumulate_noisy(avg, &prepared.payload, normals, amp);
            }

            with_plan(n, |plan| plan.forward_inplace(&mut scratch.avg));
            for (i, slot) in out.iter_mut().enumerate() {
                let bin = (i + n - half) % n;
                *slot = scratch.avg[bin] * scratch.eq[bin];
            }
        });
    }

    /// Counter-addressed estimation: like [`Self::estimate_into`], but
    /// the `2n` noise normals come from the SIMD-dispatched Philox bulk
    /// kernel at the cursor's coordinates (one lane per normal) instead
    /// of the sequential Box–Muller uniform draw — so the snapshot is a
    /// pure function of `(press key, group, snapshot)`.
    fn estimate_counter_into(
        &self,
        true_channel: &[Complex],
        noise_std: f64,
        cursor: &mut wiforce_dsp::rng::CounterRng,
        out: &mut [Complex],
    ) {
        let n = self.n_subcarriers;
        assert_eq!(
            true_channel.len(),
            n,
            "true_channel must have one entry per subcarrier"
        );
        assert_eq!(out.len(), n, "output buffer must match the estimate grid");
        let half = n / 2;
        let scale = (n as f64).sqrt();
        OFDM_SCRATCH.with(|scratch| {
            let scratch = &mut *scratch.borrow_mut();
            scratch.refresh_symbols(self);
            let s = &scratch.symbols;

            scratch.rx_sym.resize(n, Complex::ZERO);
            for (i, &h) in true_channel.iter().enumerate() {
                let bin = (i + n - half) % n;
                scratch.rx_sym[bin] = s[bin] * h;
            }
            with_plan(n, |plan| plan.inverse_inplace(&mut scratch.rx_sym));
            scratch.rx_sym.iter_mut().for_each(|z| *z = *z * scale);

            scratch.normals.clear();
            scratch.normals.resize(2 * n, 0.0);
            cursor.fill_normals(&mut scratch.normals);
            let amp = (noise_std * noise_std / (2.0 * self.n_repeats as f64)).sqrt();
            scratch.avg.clear();
            scratch.avg.resize(n, Complex::ZERO);
            {
                let OfdmScratch {
                    avg,
                    rx_sym,
                    normals,
                    ..
                } = scratch;
                wiforce_dsp::kernels::accumulate_noisy(avg, rx_sym, normals, amp);
            }

            with_plan(n, |plan| plan.forward_inplace(&mut scratch.avg));
            for (i, slot) in out.iter_mut().enumerate() {
                let bin = (i + n - half) % n;
                *slot = scratch.avg[bin] * scratch.eq[bin];
            }
        });
    }

    /// Counter-addressed prepared path: identical draws (the same `2n`
    /// Philox lanes) and arithmetic as [`Self::estimate_counter_into`],
    /// with the precomputed payload standing in for `rx_sym` — so the two
    /// counter paths match bit-for-bit (pinned by a test).
    fn estimate_prepared_counter_into(
        &self,
        prepared: &PreparedChannel,
        noise_std: f64,
        cursor: &mut wiforce_dsp::rng::CounterRng,
        out: &mut [Complex],
    ) {
        let n = self.n_subcarriers;
        assert_eq!(
            prepared.payload.len(),
            n,
            "prepared payload must match the sounder configuration"
        );
        assert_eq!(out.len(), n, "output buffer must match the estimate grid");
        let half = n / 2;
        OFDM_SCRATCH.with(|scratch| {
            let scratch = &mut *scratch.borrow_mut();
            scratch.refresh_symbols(self);

            scratch.normals.clear();
            scratch.normals.resize(2 * n, 0.0);
            cursor.fill_normals(&mut scratch.normals);
            let amp = (noise_std * noise_std / (2.0 * self.n_repeats as f64)).sqrt();
            scratch.avg.clear();
            scratch.avg.resize(n, Complex::ZERO);
            {
                let OfdmScratch { avg, normals, .. } = scratch;
                wiforce_dsp::kernels::accumulate_noisy(avg, &prepared.payload, normals, amp);
            }

            with_plan(n, |plan| plan.forward_inplace(&mut scratch.avg));
            for (i, slot) in out.iter_mut().enumerate() {
                let bin = (i + n - half) % n;
                *slot = scratch.avg[bin] * scratch.eq[bin];
            }
        });
    }

    /// Wide (structure-of-arrays) synthesis: fills a whole plane of
    /// snapshot rows per call. The Philox plane kernel draws the same
    /// `2n` lanes per row that [`Self::estimate_prepared_counter_into`]
    /// draws through its cursor, the row-plane accumulate performs the
    /// identical per-element arithmetic, the per-row forward FFTs reuse
    /// the same cached plan, and the equalize/reorder kernel replicates
    /// the scalar output loop — so each row is bit-identical to the
    /// row-at-a-time path (pinned by a test). Returns `Some(2n)`: the
    /// lanes each snapshot's cursor consumed.
    fn estimate_prepared_counter_rows_into(
        &self,
        prepared: &[PreparedChannel],
        states: &[u8],
        noise_std: f64,
        key: u64,
        group: u32,
        snap0: u32,
        out: &mut [Complex],
    ) -> Option<u32> {
        let n = self.n_subcarriers;
        let rows = states.len();
        assert_eq!(
            out.len(),
            rows * n,
            "output plane must hold one estimate row per state"
        );
        for p in prepared {
            assert_eq!(
                p.payload.len(),
                n,
                "prepared payload must match the sounder configuration"
            );
        }
        OFDM_SCRATCH.with(|scratch| {
            let scratch = &mut *scratch.borrow_mut();
            scratch.refresh_symbols(self);

            scratch.payload_plane.clear();
            for p in prepared {
                scratch.payload_plane.extend_from_slice(&p.payload);
            }

            let n_normals = 2 * n;
            scratch.normals.clear();
            scratch.normals.resize(rows * n_normals, 0.0);
            let kf = [key as u32, (key >> 32) as u32];
            wiforce_dsp::kernels::philox_normals_rows(
                kf,
                [group, wiforce_dsp::rng::DOMAIN_SNAPSHOT],
                snap0,
                n_normals,
                &mut scratch.normals,
            );
            let amp = (noise_std * noise_std / (2.0 * self.n_repeats as f64)).sqrt();
            scratch.avg.clear();
            scratch.avg.resize(rows * n, Complex::ZERO);
            {
                let OfdmScratch {
                    avg,
                    payload_plane,
                    normals,
                    ..
                } = scratch;
                wiforce_dsp::kernels::accumulate_noisy_rows(
                    avg,
                    payload_plane,
                    states,
                    normals,
                    amp,
                );
            }

            with_plan(n, |plan| plan.forward_rows_inplace(&mut scratch.avg, rows));
            {
                let OfdmScratch { avg, eq, .. } = scratch;
                wiforce_dsp::kernels::eq_reorder_rows(out, avg, eq);
            }
        });
        Some(2 * n as u32)
    }

    /// The five configuration fields fully determine the preamble
    /// symbols, the IFFT plan and the scaling — i.e. everything
    /// [`Self::prepare`] does — so their raw bits are the response-table
    /// identity.
    fn response_token(&self) -> Option<u64> {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for w in [
            self.n_subcarriers as u64,
            self.bandwidth_hz.to_bits(),
            self.n_repeats as u64,
            self.zero_pad as u64,
            self.preamble_seed,
        ] {
            for b in w.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        Some(h)
    }

    /// Payload-plane counter path: the same Philox lanes, noisy-average
    /// kernel, per-row forward FFTs and equalize/reorder as
    /// [`Self::estimate_prepared_counter_rows_into`], minus the payload
    /// gather — each row of `payloads` is already the noiseless received
    /// frame (the cross-stream producer superposes per-state payload
    /// tables into it). Each row is bit-identical to
    /// [`Self::estimate_prepared_counter_into`] fed the same payload at
    /// the same coordinates (pinned by a test).
    fn estimate_payload_counter_rows_into(
        &self,
        payloads: &[Complex],
        noise_std: f64,
        key: u64,
        group: u32,
        snap0: u32,
        out: &mut [Complex],
    ) -> Option<u32> {
        let n = self.n_subcarriers;
        let rows = payloads.len() / n.max(1);
        assert_eq!(payloads.len(), rows * n, "payload plane must be whole rows");
        assert_eq!(out.len(), rows * n, "one estimate row per payload row");
        assert!(rows <= 256, "u8 row index: synthesize in blocks of ≤256");
        OFDM_SCRATCH.with(|scratch| {
            let scratch = &mut *scratch.borrow_mut();
            scratch.refresh_symbols(self);

            let n_normals = 2 * n;
            scratch.normals.clear();
            scratch.normals.resize(rows * n_normals, 0.0);
            let kf = [key as u32, (key >> 32) as u32];
            wiforce_dsp::kernels::philox_normals_rows(
                kf,
                [group, wiforce_dsp::rng::DOMAIN_SNAPSHOT],
                snap0,
                n_normals,
                &mut scratch.normals,
            );
            let amp = (noise_std * noise_std / (2.0 * self.n_repeats as f64)).sqrt();
            scratch.avg.clear();
            scratch.avg.resize(rows * n, Complex::ZERO);
            let mut idx = [0u8; 256];
            for (r, slot) in idx.iter_mut().enumerate().take(rows) {
                *slot = r as u8;
            }
            {
                let OfdmScratch { avg, normals, .. } = scratch;
                wiforce_dsp::kernels::accumulate_noisy_rows(
                    avg,
                    payloads,
                    &idx[..rows],
                    normals,
                    amp,
                );
            }

            with_plan(n, |plan| plan.forward_rows_inplace(&mut scratch.avg, rows));
            {
                let OfdmScratch { avg, eq, .. } = scratch;
                wiforce_dsp::kernels::eq_reorder_rows(out, avg, eq);
            }
        });
        Some(2 * n as u32)
    }

    fn seq_normals_per_estimate(&self) -> Option<usize> {
        Some(2 * self.n_subcarriers)
    }

    /// OFDM estimate error is exactly white and uniform across
    /// subcarriers: the averaged frame carries complex AWGN of
    /// per-component std `amp = √(σ²/(2·n_repeats))`, the unnormalized
    /// forward FFT scales white noise by `√n`, and the LS equalizers have
    /// modulus `1/√n` for the unit-modulus QPSK preamble — the two cancel,
    /// leaving per-component std `amp` on every subcarrier.
    fn estimate_noise_sigma(&self, noise_std: f64) -> Option<f64> {
        Some((noise_std * noise_std / (2.0 * self.n_repeats as f64)).sqrt())
    }

    /// Sequential wide path: per-snapshot truths (the batch engine's
    /// multi-stream blend makes every row distinct), noise pre-drawn by
    /// the caller in stream order. The per-row symbol multiply + planned
    /// IFFT + scale is element-for-element the `rx_sym` build in
    /// [`Self::estimate_into`], and the noisy-average/FFT/equalize tail
    /// reuses the same plane kernels as the counter wide path — so each
    /// row is bit-identical to a row-at-a-time call (pinned by a test).
    fn estimate_rows_prenoise_into(
        &self,
        truths: &[Complex],
        noise_std: f64,
        normals: &[f64],
        out: &mut [Complex],
    ) -> bool {
        let n = self.n_subcarriers;
        let rows = out.len() / n.max(1);
        assert_eq!(out.len(), rows * n, "output plane must be whole rows");
        assert_eq!(truths.len(), rows * n, "one truth row per estimate row");
        assert_eq!(normals.len(), rows * 2 * n, "2n pre-drawn normals per row");
        assert!(rows <= 256, "u8 row index: synthesize in blocks of ≤256");
        let half = n / 2;
        let scale = (n as f64).sqrt();
        OFDM_SCRATCH.with(|scratch| {
            let scratch = &mut *scratch.borrow_mut();
            scratch.refresh_symbols(self);

            // per-row payloads (rows are distinct channels here, so the
            // payload plane is row-major instead of state-major)
            scratch.payload_plane.clear();
            scratch.payload_plane.resize(rows * n, Complex::ZERO);
            for (prow, trow) in scratch
                .payload_plane
                .chunks_exact_mut(n)
                .zip(truths.chunks_exact(n))
            {
                let s = &scratch.symbols;
                for (i, &h) in trow.iter().enumerate() {
                    let bin = (i + n - half) % n;
                    prow[bin] = s[bin] * h;
                }
            }
            with_plan(n, |plan| {
                plan.inverse_rows_inplace(&mut scratch.payload_plane, rows)
            });
            scratch
                .payload_plane
                .iter_mut()
                .for_each(|z| *z = *z * scale);

            let amp = (noise_std * noise_std / (2.0 * self.n_repeats as f64)).sqrt();
            scratch.avg.clear();
            scratch.avg.resize(rows * n, Complex::ZERO);
            let mut idx = [0u8; 256];
            for (r, slot) in idx.iter_mut().enumerate().take(rows) {
                *slot = r as u8;
            }
            {
                let OfdmScratch {
                    avg, payload_plane, ..
                } = scratch;
                wiforce_dsp::kernels::accumulate_noisy_rows(
                    avg,
                    payload_plane,
                    &idx[..rows],
                    normals,
                    amp,
                );
            }

            with_plan(n, |plan| plan.forward_rows_inplace(&mut scratch.avg, rows));
            {
                let OfdmScratch { avg, eq, .. } = scratch;
                wiforce_dsp::kernels::eq_reorder_rows(out, avg, eq);
            }
        });
        true
    }
}

/// Reorders an ascending-frequency-offset vector into FFT bin order.
pub fn ascending_to_bins(ascending: &[Complex]) -> Vec<Complex> {
    let n = ascending.len();
    let half = n / 2;
    let mut bins = vec![Complex::ZERO; n];
    for (i, &v) in ascending.iter().enumerate() {
        // ascending index i ↔ offset (i - n/2); bin = (i - n/2) mod n
        let bin = (i + n - half) % n;
        bins[bin] = v;
    }
    bins
}

/// Inverse of [`ascending_to_bins`].
pub fn bins_to_ascending(bins: &[Complex]) -> Vec<Complex> {
    let n = bins.len();
    let half = n / 2;
    let mut asc = vec![Complex::ZERO; n];
    for (i, slot) in asc.iter_mut().enumerate() {
        let bin = (i + n - half) % n;
        *slot = bins[bin];
    }
    asc
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn paper_parameters() {
        let s = OfdmSounder::wiforce();
        assert_eq!(s.frame_samples(), 720);
        // paper: "sub-carrier spacing of 195 kHz"
        assert!((s.subcarrier_spacing_hz() - 195.3e3).abs() < 1e3);
        // fresh estimates every ~57.6 µs ⇒ Nyquist ≈ 8.7 kHz (paper §4.4)
        assert!((s.snapshot_period_s() - 57.6e-6).abs() < 1e-9);
        assert!((s.max_doppler_hz() - 8680.0).abs() < 20.0);
    }

    #[test]
    fn preamble_has_unit_modulus_symbols() {
        let s = OfdmSounder::wiforce();
        for sym in s.preamble_symbols() {
            assert!((sym.abs() - 1.0).abs() < 1e-12);
        }
        assert_eq!(s.preamble_time().len(), 320);
    }

    #[test]
    fn reorders_are_inverse() {
        let v: Vec<Complex> = (0..64).map(|i| Complex::from_re(i as f64)).collect();
        assert_eq!(bins_to_ascending(&ascending_to_bins(&v)), v);
        // DC (offset 0, ascending index 32) maps to bin 0
        let bins = ascending_to_bins(&v);
        assert_eq!(bins[0].re, 32.0);
    }

    #[test]
    fn noiseless_estimate_is_exact() {
        let s = OfdmSounder::wiforce();
        let mut rng = StdRng::seed_from_u64(1);
        let truth: Vec<Complex> = (0..64)
            .map(|k| Complex::from_polar(1.0 + 0.01 * k as f64, 0.05 * k as f64))
            .collect();
        let est = s.estimate(&truth, 0.0, &mut rng);
        for (e, t) in est.iter().zip(&truth) {
            assert!((*e - *t).abs() < 1e-9, "{e:?} vs {t:?}");
        }
    }

    #[test]
    fn estimate_error_scales_with_noise() {
        let s = OfdmSounder::wiforce();
        let truth = vec![Complex::ONE; 64];
        let rms_err = |noise: f64, seed: u64| -> f64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut acc = 0.0;
            let trials = 50;
            for _ in 0..trials {
                let est = s.estimate(&truth, noise, &mut rng);
                acc += est
                    .iter()
                    .zip(&truth)
                    .map(|(e, t)| (*e - *t).norm_sqr())
                    .sum::<f64>()
                    / 64.0;
            }
            (acc / trials as f64).sqrt()
        };
        let e1 = rms_err(0.01, 2);
        let e10 = rms_err(0.1, 3);
        assert!((e10 / e1 - 10.0).abs() < 2.0, "{e10} / {e1}");
    }

    #[test]
    fn repeat_averaging_buys_sqrt_n() {
        let mut one = OfdmSounder::wiforce();
        one.n_repeats = 1;
        let five = OfdmSounder::wiforce();
        let truth = vec![Complex::ONE; 64];
        let rms = |s: &OfdmSounder, seed: u64| -> f64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut acc = 0.0;
            for _ in 0..80 {
                let est = s.estimate(&truth, 0.05, &mut rng);
                acc += est
                    .iter()
                    .zip(&truth)
                    .map(|(e, t)| (*e - *t).norm_sqr())
                    .sum::<f64>()
                    / 64.0;
            }
            (acc / 80.0).sqrt()
        };
        let r1 = rms(&one, 4);
        let r5 = rms(&five, 5);
        let gain = r1 / r5;
        assert!((gain - 5f64.sqrt()).abs() < 0.4, "averaging gain {gain}");
    }

    #[test]
    fn estimator_tracks_frequency_selective_channel() {
        // a two-tap channel has strong per-subcarrier variation; the
        // estimator must follow it (this is what lets WiForce read phase
        // at every subcarrier independently)
        let s = OfdmSounder::wiforce();
        let offsets = s.frequency_offsets_hz();
        let truth: Vec<Complex> = offsets
            .iter()
            .map(|&df| Complex::ONE + Complex::from_polar(0.5, -wiforce_dsp::TAU * df * 2e-7))
            .collect();
        let mut rng = StdRng::seed_from_u64(6);
        let est = s.estimate(&truth, 0.001, &mut rng);
        for (e, t) in est.iter().zip(&truth) {
            assert!((*e - *t).abs() < 0.01);
        }
    }

    #[test]
    fn prepared_path_is_bit_identical() {
        let s = OfdmSounder::wiforce();
        let truth: Vec<Complex> = (0..64)
            .map(|k| Complex::from_polar(1.0 + 0.01 * k as f64, 0.05 * k as f64))
            .collect();
        let prepared = s.prepare(&truth);
        assert_eq!(prepared.truth, truth);
        for noise in [0.0, 0.05] {
            let mut a = StdRng::seed_from_u64(31);
            let mut b = StdRng::seed_from_u64(31);
            let mut direct = [Complex::ZERO; 64];
            let mut fast = [Complex::ZERO; 64];
            s.estimate_into(&truth, noise, &mut a, &mut direct);
            s.estimate_prepared_into(&prepared, noise, &mut b, &mut fast);
            for (d, f) in direct.iter().zip(&fast) {
                assert_eq!(d.re.to_bits(), f.re.to_bits());
                assert_eq!(d.im.to_bits(), f.im.to_bits());
            }
            // same RNG stream consumed
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn counter_prepared_path_is_bit_identical() {
        use wiforce_dsp::rng::CounterRng;
        let s = OfdmSounder::wiforce();
        let truth: Vec<Complex> = (0..64)
            .map(|k| Complex::from_polar(1.0 + 0.01 * k as f64, 0.05 * k as f64))
            .collect();
        let prepared = s.prepare(&truth);
        for noise in [0.0, 0.05] {
            let mut a = CounterRng::for_snapshot(0xABCD, 2, 41);
            let mut b = CounterRng::for_snapshot(0xABCD, 2, 41);
            let mut direct = [Complex::ZERO; 64];
            let mut fast = [Complex::ZERO; 64];
            s.estimate_counter_into(&truth, noise, &mut a, &mut direct);
            s.estimate_prepared_counter_into(&prepared, noise, &mut b, &mut fast);
            for (d, f) in direct.iter().zip(&fast) {
                assert_eq!(d.re.to_bits(), f.re.to_bits());
                assert_eq!(d.im.to_bits(), f.im.to_bits());
            }
            // both paths consumed the same 2n lanes
            assert_eq!(a.lane(), 128);
            assert_eq!(b.lane(), 128);
        }
    }

    #[test]
    fn counter_path_is_order_independent() {
        // Snapshots estimated at distinct coordinates don't interact:
        // evaluating 41 after 40 or on its own gives the same bits — this
        // is the property that lets the pipeline parallelize synthesis.
        use wiforce_dsp::rng::CounterRng;
        let s = OfdmSounder::wiforce();
        let truth = vec![Complex::ONE; 64];
        let est = |snapshot: u32| {
            let mut c = CounterRng::for_snapshot(77, 0, snapshot);
            let mut out = [Complex::ZERO; 64];
            s.estimate_counter_into(&truth, 0.05, &mut c, &mut out);
            out
        };
        let alone = est(41);
        let _ = est(40);
        let after = est(41);
        for (a, b) in alone.iter().zip(&after) {
            assert_eq!(a.re.to_bits(), b.re.to_bits());
            assert_eq!(a.im.to_bits(), b.im.to_bits());
        }
        // distinct snapshots draw distinct noise
        assert!(alone.iter().zip(est(40).iter()).any(|(a, b)| a != b));
    }

    #[test]
    fn counter_noise_matches_sequential_in_rms() {
        // The counter path swaps the noise source, not the noise model:
        // RMS estimation error over many snapshots must agree with the
        // sequential path at the same σ.
        use wiforce_dsp::rng::CounterRng;
        let s = OfdmSounder::wiforce();
        let truth = vec![Complex::ONE; 64];
        let trials = 120;
        let mut seq_rng = StdRng::seed_from_u64(8);
        let mut acc_seq = 0.0;
        let mut acc_ctr = 0.0;
        let mut out = [Complex::ZERO; 64];
        for t in 0..trials {
            s.estimate_into(&truth, 0.05, &mut seq_rng, &mut out);
            acc_seq += out
                .iter()
                .map(|e| (*e - Complex::ONE).norm_sqr())
                .sum::<f64>()
                / 64.0;
            let mut c = CounterRng::for_snapshot(13, 0, t);
            s.estimate_counter_into(&truth, 0.05, &mut c, &mut out);
            acc_ctr += out
                .iter()
                .map(|e| (*e - Complex::ONE).norm_sqr())
                .sum::<f64>()
                / 64.0;
        }
        let rms_seq = (acc_seq / trials as f64).sqrt();
        let rms_ctr = (acc_ctr / trials as f64).sqrt();
        assert!(
            (rms_ctr / rms_seq - 1.0).abs() < 0.1,
            "counter {rms_ctr} vs sequential {rms_seq}"
        );
    }

    #[test]
    fn wide_rows_path_is_bit_identical_to_row_path() {
        use wiforce_dsp::rng::CounterRng;
        let s = OfdmSounder::wiforce();
        // four distinct "switch state" channels, as the pipeline prepares
        let prepared: Vec<PreparedChannel> = (0..4)
            .map(|st| {
                let truth: Vec<Complex> = (0..64)
                    .map(|k| Complex::from_polar(1.0 + 0.01 * k as f64, 0.03 * (k + st) as f64))
                    .collect();
                s.prepare(&truth)
            })
            .collect();
        let key = 0x00C0_FFEE_u64 | (7u64 << 40);
        let group = 3u32;
        let snap0 = 11u32;
        let states: Vec<u8> = (0..37u8).map(|r| (r.wrapping_mul(7) >> 1) % 4).collect();
        let rows = states.len();
        for noise in [0.0, 0.05] {
            let mut plane = vec![Complex::ZERO; rows * 64];
            let lanes = s
                .estimate_prepared_counter_rows_into(
                    &prepared, &states, noise, key, group, snap0, &mut plane,
                )
                .expect("OFDM has a wide path");
            assert_eq!(lanes, 128);
            for (r, &st) in states.iter().enumerate() {
                let mut cursor = CounterRng::for_snapshot(key, group, snap0 + r as u32);
                let mut row = [Complex::ZERO; 64];
                s.estimate_prepared_counter_into(
                    &prepared[usize::from(st)],
                    noise,
                    &mut cursor,
                    &mut row,
                );
                for (i, (w, x)) in plane[r * 64..(r + 1) * 64].iter().zip(&row).enumerate() {
                    assert_eq!(w.re.to_bits(), x.re.to_bits(), "r={r} i={i}");
                    assert_eq!(w.im.to_bits(), x.im.to_bits(), "r={r} i={i}");
                }
                // a fresh cursor skipped by the returned lane count lands in
                // the same state as the one the row path consumed
                let mut skipped = CounterRng::for_snapshot(key, group, snap0 + r as u32);
                skipped.skip_normals(lanes as usize);
                assert_eq!(cursor.lane(), skipped.lane());
            }
        }
    }

    #[test]
    fn payload_rows_path_is_bit_identical_to_prepared_path() {
        use wiforce_dsp::rng::CounterRng;
        let s = OfdmSounder::wiforce();
        // distinct payload per row, as the cross-stream superposition
        // path produces (blend weights differ row to row)
        let rows = 29usize;
        let payload_rows: Vec<Vec<Complex>> = (0..rows)
            .map(|r| {
                let truth: Vec<Complex> = (0..64)
                    .map(|k| Complex::from_polar(1.0 + 0.01 * k as f64, 0.02 * (k + r) as f64))
                    .collect();
                s.prepare(&truth).payload
            })
            .collect();
        let plane_in: Vec<Complex> = payload_rows.iter().flatten().copied().collect();
        let key = 0xB10C_57AE_u64;
        let group = 5u32;
        let snap0 = 17u32;
        for noise in [0.0, 0.05] {
            let mut plane = vec![Complex::ZERO; rows * 64];
            let lanes = s
                .estimate_payload_counter_rows_into(&plane_in, noise, key, group, snap0, &mut plane)
                .expect("OFDM has a payload-plane path");
            assert_eq!(lanes, 128);
            for (r, payload) in payload_rows.iter().enumerate() {
                let prepared = PreparedChannel {
                    truth: Vec::new(),
                    payload: payload.clone(),
                };
                let mut cursor = CounterRng::for_snapshot(key, group, snap0 + r as u32);
                let mut row = [Complex::ZERO; 64];
                s.estimate_prepared_counter_into(&prepared, noise, &mut cursor, &mut row);
                for (w, x) in plane[r * 64..(r + 1) * 64].iter().zip(&row) {
                    assert_eq!(w.re.to_bits(), x.re.to_bits(), "row {r}");
                    assert_eq!(w.im.to_bits(), x.im.to_bits(), "row {r}");
                }
            }
        }
    }

    #[test]
    fn estimate_noise_sigma_matches_empirical_error() {
        // the advertised white-error std must match the actual estimator
        // output: per-component RMS error over many snapshots ≈ sigma
        let s = OfdmSounder::wiforce();
        let noise = 0.05;
        let sigma = s.estimate_noise_sigma(noise).expect("OFDM error is white");
        assert!((sigma - (noise * noise / 10.0).sqrt()).abs() < 1e-15);
        let truth = vec![Complex::ONE; 64];
        let mut rng = StdRng::seed_from_u64(21);
        let trials = 200;
        let mut acc = 0.0;
        for _ in 0..trials {
            let est = s.estimate(&truth, noise, &mut rng);
            acc += est
                .iter()
                .zip(&truth)
                .map(|(e, t)| (*e - *t).norm_sqr())
                .sum::<f64>();
        }
        // norm_sqr sums both components: E|e|² = 2σ²
        let per_component = (acc / (trials * 64 * 2) as f64).sqrt();
        assert!(
            (per_component / sigma - 1.0).abs() < 0.05,
            "empirical {per_component} vs advertised {sigma}"
        );
    }

    #[test]
    fn response_token_tracks_configuration() {
        let a = OfdmSounder::wiforce();
        assert_eq!(a.response_token(), OfdmSounder::wiforce().response_token());
        let mut b = OfdmSounder::wiforce();
        b.preamble_seed ^= 1;
        assert_ne!(a.response_token(), b.response_token());
        let mut c = OfdmSounder::wiforce();
        c.n_repeats += 1;
        assert_ne!(a.response_token(), c.response_token());
    }

    #[test]
    fn seq_wide_path_is_bit_identical_to_row_path() {
        // the batch producer's wide path: per-snapshot truths, noise
        // pre-drawn from one sequential RNG in stream order
        let s = OfdmSounder::wiforce();
        let npr = s.seq_normals_per_estimate().expect("OFDM advertises one");
        assert_eq!(npr, 128);
        let rows = 23usize;
        let truths: Vec<Complex> = (0..rows * 64)
            .map(|i| Complex::from_polar(1.0 + 1e-3 * (i % 97) as f64, 0.02 * (i % 61) as f64))
            .collect();
        for noise in [0.0, 0.05] {
            // pre-draw, exactly as the producer does
            let mut rng = StdRng::seed_from_u64(77);
            let (mut u1s, mut u2s) = (Vec::new(), Vec::new());
            let mut normals = vec![0.0; rows * npr];
            for r in 0..rows {
                wiforce_dsp::rng::draw_box_muller_uniforms(&mut rng, npr, &mut u1s, &mut u2s);
                wiforce_dsp::fastmath::standard_normals_from_uniforms(
                    &u1s,
                    &u2s,
                    &mut normals[r * npr..(r + 1) * npr],
                );
            }
            let mut plane = vec![Complex::ZERO; rows * 64];
            assert!(s.estimate_rows_prenoise_into(&truths, noise, &normals, &mut plane));

            let mut row_rng = StdRng::seed_from_u64(77);
            let mut row = [Complex::ZERO; 64];
            for r in 0..rows {
                s.estimate_into(&truths[r * 64..(r + 1) * 64], noise, &mut row_rng, &mut row);
                for (w, x) in plane[r * 64..(r + 1) * 64].iter().zip(&row) {
                    assert_eq!(w.re.to_bits(), x.re.to_bits(), "row {r}");
                    assert_eq!(w.im.to_bits(), x.im.to_bits(), "row {r}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "one entry per subcarrier")]
    fn estimate_checks_length() {
        let s = OfdmSounder::wiforce();
        let mut rng = StdRng::seed_from_u64(0);
        let _ = s.estimate(&[Complex::ONE; 3], 0.0, &mut rng);
    }
}

//! Time-domain signal helpers: convolution, correlation, energy, delays.
//!
//! The reader's preamble synchronizer (paper §4.4) finds the 320-sample OFDM
//! preamble in the received stream by cross-correlation; the channel
//! simulator applies multipath as a linear convolution. Both live here.

use crate::complex::Complex;

/// Full linear convolution; output length `a.len() + b.len() - 1`.
pub fn convolve(a: &[Complex], b: &[Complex]) -> Vec<Complex> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let n = a.len() + b.len() - 1;
    let mut out = vec![Complex::ZERO; n];
    for (i, &ai) in a.iter().enumerate() {
        if ai == Complex::ZERO {
            continue;
        }
        for (j, &bj) in b.iter().enumerate() {
            out[i + j] += ai * bj;
        }
    }
    out
}

/// Sliding cross-correlation of `haystack` against `needle`:
/// `out[k] = Σ_i haystack[k+i]·conj(needle[i])` for every full overlap
/// position (`haystack.len() - needle.len() + 1` outputs).
///
/// Returns an empty vector if the needle is longer than the haystack.
pub fn cross_correlate(haystack: &[Complex], needle: &[Complex]) -> Vec<Complex> {
    if needle.is_empty() || haystack.len() < needle.len() {
        return Vec::new();
    }
    let m = haystack.len() - needle.len() + 1;
    (0..m)
        .map(|k| {
            needle
                .iter()
                .enumerate()
                .map(|(i, &ni)| haystack[k + i] * ni.conj())
                .sum()
        })
        .collect()
}

/// Index of the peak-magnitude correlation lag, or `None` for empty input.
pub fn peak_index(corr: &[Complex]) -> Option<usize> {
    corr.iter()
        .enumerate()
        .max_by(|(_, a), (_, b)| {
            a.norm_sqr()
                .partial_cmp(&b.norm_sqr())
                .expect("NaN in correlation")
        })
        .map(|(i, _)| i)
}

/// Signal energy `Σ|x|²`.
pub fn energy(x: &[Complex]) -> f64 {
    x.iter().map(|z| z.norm_sqr()).sum()
}

/// Average power `Σ|x|²/n` (0 for empty).
pub fn power(x: &[Complex]) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    energy(x) / x.len() as f64
}

/// Delays a signal by `d` samples, zero-filling the front and keeping length.
pub fn delay(x: &[Complex], d: usize) -> Vec<Complex> {
    let mut out = vec![Complex::ZERO; x.len()];
    if d < x.len() {
        out[d..].copy_from_slice(&x[..x.len() - d]);
    }
    out
}

/// Element-wise product of equal-length signals.
///
/// # Panics
/// Panics if lengths differ.
pub fn hadamard(a: &[Complex], b: &[Complex]) -> Vec<Complex> {
    assert_eq!(a.len(), b.len(), "hadamard requires equal lengths");
    a.iter().zip(b).map(|(&x, &y)| x * y).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(re: f64, im: f64) -> Complex {
        Complex::new(re, im)
    }

    #[test]
    fn convolve_identity() {
        let x = vec![c(1.0, 0.0), c(2.0, 0.0), c(3.0, 0.0)];
        let d = vec![Complex::ONE];
        assert_eq!(convolve(&x, &d), x);
    }

    #[test]
    fn convolve_known() {
        let a = vec![c(1.0, 0.0), c(2.0, 0.0)];
        let b = vec![c(3.0, 0.0), c(4.0, 0.0)];
        let out = convolve(&a, &b);
        assert_eq!(out.len(), 3);
        assert!((out[0] - c(3.0, 0.0)).abs() < 1e-12);
        assert!((out[1] - c(10.0, 0.0)).abs() < 1e-12);
        assert!((out[2] - c(8.0, 0.0)).abs() < 1e-12);
    }

    #[test]
    fn convolve_commutative() {
        let a: Vec<Complex> = (0..5).map(|i| c(i as f64, (i * i) as f64)).collect();
        let b: Vec<Complex> = (0..3).map(|i| c(1.0 - i as f64, 0.5)).collect();
        let ab = convolve(&a, &b);
        let ba = convolve(&b, &a);
        for (x, y) in ab.iter().zip(&ba) {
            assert!((*x - *y).abs() < 1e-12);
        }
    }

    #[test]
    fn correlation_finds_embedded_needle() {
        let needle: Vec<Complex> = (0..16).map(|i| Complex::cis(i as f64 * 0.9)).collect();
        let mut haystack = vec![Complex::ZERO; 100];
        let offset = 37;
        for (i, &n) in needle.iter().enumerate() {
            haystack[offset + i] = n * 0.5;
        }
        let corr = cross_correlate(&haystack, &needle);
        assert_eq!(peak_index(&corr), Some(offset));
    }

    #[test]
    fn correlation_peak_phase_reflects_channel() {
        // a complex gain on the embedded needle shows up as the peak phase
        let needle: Vec<Complex> = (0..8).map(|i| Complex::cis(i as f64)).collect();
        let gain = Complex::from_polar(2.0, 1.1);
        let mut haystack = vec![Complex::ZERO; 32];
        for (i, &n) in needle.iter().enumerate() {
            haystack[10 + i] = n * gain;
        }
        let corr = cross_correlate(&haystack, &needle);
        let pk = peak_index(&corr).unwrap();
        assert_eq!(pk, 10);
        assert!((corr[pk].arg() - 1.1).abs() < 1e-9);
    }

    #[test]
    fn correlate_empty_cases() {
        assert!(cross_correlate(&[], &[Complex::ONE]).is_empty());
        assert!(cross_correlate(&[Complex::ONE], &[]).is_empty());
        let short = vec![Complex::ONE; 2];
        let long = vec![Complex::ONE; 5];
        assert!(cross_correlate(&short, &long).is_empty());
        assert!(peak_index(&[]).is_none());
    }

    #[test]
    fn energy_and_power() {
        let x = vec![c(3.0, 4.0), c(0.0, 0.0)];
        assert_eq!(energy(&x), 25.0);
        assert_eq!(power(&x), 12.5);
        assert_eq!(power(&[]), 0.0);
    }

    #[test]
    fn delay_shifts_and_pads() {
        let x = vec![c(1.0, 0.0), c(2.0, 0.0), c(3.0, 0.0)];
        let d = delay(&x, 1);
        assert_eq!(d, vec![Complex::ZERO, c(1.0, 0.0), c(2.0, 0.0)]);
        assert_eq!(delay(&x, 10), vec![Complex::ZERO; 3]);
        assert_eq!(delay(&x, 0), x);
    }

    #[test]
    fn hadamard_product() {
        let a = vec![c(1.0, 1.0), c(2.0, 0.0)];
        let b = vec![c(0.0, 1.0), c(3.0, 0.0)];
        let h = hadamard(&a, &b);
        assert!((h[0] - c(-1.0, 1.0)).abs() < 1e-12);
        assert!((h[1] - c(6.0, 0.0)).abs() < 1e-12);
    }
}

//! Polynomial `ln` and `cos` kernels for bulk noise synthesis.
//!
//! The simulator's dominant cost is Box–Muller AWGN: every OFDM snapshot
//! draws hundreds of standard normals, each needing one `ln` and one `cos`.
//! System libm evaluates those one value at a time (~25 ns per normal of
//! pure transcendentals), which bounds the whole press pipeline. The
//! kernels here trade the last ulp of libm accuracy (both stay within
//! ~4 ulp of the correctly-rounded result — orders of magnitude below the
//! simulated noise floor and invisible at the precision any experiment
//! reports) for a formulation built purely from IEEE-exact `f64`
//! arithmetic with branch-free selects, so the batched transform
//! auto-vectorizes.
//!
//! Determinism guarantees, verified by tests:
//! * scalar [`ln_fast`]/[`cos_tau`] and the batched
//!   [`standard_normals_from_uniforms`] produce bit-identical values for
//!   the same inputs — the batch is the same arithmetic, evaluated
//!   lane-parallel;
//! * the SIMD instantiations (dispatched via [`crate::kernels`]) are
//!   semantics-preserving auto-vectorization of the scalar code (no FMA
//!   contraction, no reassociation), so results do not depend on which
//!   path the runtime dispatch picks — simulations reproduce bit-for-bit
//!   across machines.

const TAU: f64 = std::f64::consts::TAU;
const SQRT_2: f64 = std::f64::consts::SQRT_2;
/// Upper 32 bits of ln 2 (Cody–Waite split, exact in `f64`).
const LN_2_HI: f64 = 6.931_471_803_691_238e-1;
/// ln 2 − [`LN_2_HI`].
const LN_2_LO: f64 = 1.908_214_929_270_587_7e-10;

/// Natural logarithm of a positive, normal (non-subnormal) `f64`, within
/// ~3 ulp of libm.
///
/// Decomposes `x = m·2^e` with `m ∈ [√2/2, √2)` and evaluates the atanh
/// series `ln m = 2s·(1 + z/3 + z²/5 + …)` with `s = (m−1)/(m+1)`,
/// `z = s²`. The √2 split keeps `ln x` cancellation-free as `x → 1`.
///
/// The caller must ensure `x` is positive and normal (the Box–Muller
/// uniforms are, by construction); other inputs return garbage rather
/// than the IEEE special values libm would produce.
#[inline]
pub fn ln_fast(x: f64) -> f64 {
    let bits = x.to_bits();
    let e_raw = ((bits >> 52) as i32 as f64) - 1023.0;
    let m_raw = f64::from_bits((bits & 0x000F_FFFF_FFFF_FFFF) | (1023u64 << 52));
    // branch-free √2 split (compiles to a select; same arithmetic either way)
    let big = m_raw > SQRT_2;
    let m = if big { 0.5 * m_raw } else { m_raw };
    let e = if big { e_raw + 1.0 } else { e_raw };
    let s = (m - 1.0) / (m + 1.0);
    let z = s * s;
    let p = 1.0
        + z * (1.0 / 3.0
            + z * (1.0 / 5.0
                + z * (1.0 / 7.0
                    + z * (1.0 / 9.0
                        + z * (1.0 / 11.0
                            + z * (1.0 / 13.0
                                + z * (1.0 / 15.0 + z * (1.0 / 17.0 + z * (1.0 / 19.0)))))))));
    e * LN_2_HI + (2.0 * s * p + e * LN_2_LO)
}

/// `cos(2π·u)` for `u` in turns, within ~4 ulp of libm on `[0, 1)`.
///
/// Quadrant reduction happens in turn space where it is *exact*:
/// `u = k/4 + r` with `k = round(4u)` and `|r| ≤ 1/8` (both the `k/4`
/// product and the subtraction are exact by Sterbenz), so unlike reducing
/// `2πu` modulo π/2 there is no representation error before the
/// polynomial. Quadrant selection uses only `f64` compares/selects so the
/// batched form vectorizes.
#[inline]
pub fn cos_tau(u: f64) -> f64 {
    let k = (4.0 * u).round();
    let r = u - 0.25 * k;
    let theta = TAU * r;
    let z = theta * theta;
    // Taylor kernels on |θ| ≤ π/4; truncation < 1 ulp at the interval edge
    let cos_p = 1.0
        + z * (-1.0 / 2.0
            + z * (1.0 / 24.0
                + z * (-1.0 / 720.0
                    + z * (1.0 / 40_320.0
                        + z * (-1.0 / 3_628_800.0
                            + z * (1.0 / 479_001_600.0
                                + z * (-1.0 / 87_178_291_200.0
                                    + z * (1.0 / 20_922_789_888_000.0))))))));
    let sin_p = theta
        * (1.0
            + z * (-1.0 / 6.0
                + z * (1.0 / 120.0
                    + z * (-1.0 / 5_040.0
                        + z * (1.0 / 362_880.0
                            + z * (-1.0 / 39_916_800.0
                                + z * (1.0 / 6_227_020_800.0
                                    + z * (-1.0 / 1_307_674_368_000.0))))))));
    // cos(kπ/2 + θ): k odd → ±sin kernel, (k+1) mod 4 ≥ 2 → negate.
    // Predicates are computed in float space (exact for k ∈ {0…4}) so the
    // vectorizer can turn them into lane masks.
    let half_k = 0.5 * k;
    let use_sin = half_k - half_k.floor() == 0.5;
    let q = 0.25 * (k + 1.0);
    let neg = q - q.floor() >= 0.5;
    let v = if use_sin { sin_p } else { cos_p };
    if neg {
        -v
    } else {
        v
    }
}

/// One Box–Muller standard normal from a uniform pair:
/// `√(−2 ln u1) · cos(2π u2)`.
#[inline]
pub fn box_muller(u1: f64, u2: f64) -> f64 {
    (-2.0 * ln_fast(u1)).sqrt() * cos_tau(u2)
}

/// Transforms pre-drawn Box–Muller uniform pairs into standard normals:
/// `out[i] = √(−2 ln u1s[i]) · cos(2π u2s[i])`.
///
/// Every `u1s[i]` must be positive and normal (see
/// [`crate::rng::draw_box_muller_uniforms`], which guarantees it).
/// Delegates to the runtime-dispatched
/// [`crate::kernels::box_muller_normals`] kernel; every backend produces
/// the same bits as the scalar [`box_muller`].
///
/// # Panics
/// Panics if the three slices differ in length.
pub fn standard_normals_from_uniforms(u1s: &[f64], u2s: &[f64], out: &mut [f64]) {
    assert_eq!(u1s.len(), out.len(), "one u1 per output normal");
    assert_eq!(u2s.len(), out.len(), "one u2 per output normal");
    crate::kernels::box_muller_normals(u1s, u2s, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn ln_matches_libm() {
        let mut rng = StdRng::seed_from_u64(11);
        let check = |x: f64| {
            let rel = (ln_fast(x) - x.ln()).abs() / x.ln().abs().max(f64::MIN_POSITIVE);
            assert!(rel < 1e-15, "ln({x}) rel err {rel}");
        };
        for _ in 0..200_000 {
            check(rng.gen::<f64>().max(f64::MIN_POSITIVE));
            // the cancellation-prone region near 1
            check(1.0 - rng.gen::<f64>() * 1e-6);
            // large and tiny magnitudes beyond the Box–Muller domain
            check(rng.gen::<f64>() * 1e12 + 1.0);
        }
        for edge in [f64::powi(2.0, -53), 0.5, SQRT_2 / 2.0, SQRT_2, 1.0, 2.0] {
            check(edge);
        }
    }

    #[test]
    fn cos_matches_libm() {
        let mut rng = StdRng::seed_from_u64(12);
        let check = |u: f64| {
            let err = (cos_tau(u) - (TAU * u).cos()).abs();
            assert!(err < 1e-15, "cos_tau({u}) abs err {err}");
        };
        for _ in 0..500_000 {
            check(rng.gen());
        }
        for edge in [
            0.0,
            0.125,
            0.25,
            0.375,
            0.5,
            0.625,
            0.75,
            0.875,
            1.0 - 1e-16,
        ] {
            check(edge);
        }
    }

    #[test]
    fn batch_is_bit_identical_to_scalar() {
        // covers the AVX2 dispatch on machines that take it
        let mut rng = StdRng::seed_from_u64(13);
        let n = 1013; // deliberately not a multiple of any vector width
        let u1s: Vec<f64> = (0..n)
            .map(|_| rng.gen::<f64>().max(f64::MIN_POSITIVE))
            .collect();
        let u2s: Vec<f64> = (0..n).map(|_| rng.gen()).collect();
        let mut batched = vec![0.0; n];
        standard_normals_from_uniforms(&u1s, &u2s, &mut batched);
        for i in 0..n {
            let scalar = box_muller(u1s[i], u2s[i]);
            assert_eq!(batched[i].to_bits(), scalar.to_bits(), "element {i}");
        }
    }

    #[test]
    #[should_panic(expected = "one u1 per output normal")]
    fn batch_checks_lengths() {
        standard_normals_from_uniforms(&[0.5], &[0.5, 0.5], &mut [0.0, 0.0]);
    }
}

//! Spectral windows.
//!
//! Used by the harmonic (Doppler) FFT to trade main-lobe width against
//! sidelobe leakage when isolating the tag's switching tones from clutter.

use crate::TAU;

/// Window shapes supported by [`window`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowKind {
    /// All-ones window (no tapering).
    Rect,
    /// Hann (raised cosine) window.
    Hann,
    /// Hamming window.
    Hamming,
    /// Blackman window.
    Blackman,
}

/// Generates an `n`-point symmetric window of the given kind.
pub fn window(kind: WindowKind, n: usize) -> Vec<f64> {
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        return vec![1.0];
    }
    let denom = (n - 1) as f64;
    (0..n)
        .map(|i| {
            let x = i as f64 / denom;
            match kind {
                WindowKind::Rect => 1.0,
                WindowKind::Hann => 0.5 - 0.5 * (TAU * x).cos(),
                WindowKind::Hamming => 0.54 - 0.46 * (TAU * x).cos(),
                WindowKind::Blackman => 0.42 - 0.5 * (TAU * x).cos() + 0.08 * (2.0 * TAU * x).cos(),
            }
        })
        .collect()
}

/// Coherent gain of a window: mean of its samples. Dividing a windowed
/// spectrum by `n · coherent_gain` restores tone amplitudes.
pub fn coherent_gain(w: &[f64]) -> f64 {
    if w.is_empty() {
        return 0.0;
    }
    w.iter().sum::<f64>() / w.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rect_is_ones() {
        assert_eq!(window(WindowKind::Rect, 4), vec![1.0; 4]);
        assert_eq!(coherent_gain(&window(WindowKind::Rect, 4)), 1.0);
    }

    #[test]
    fn hann_endpoints_zero_center_one() {
        let w = window(WindowKind::Hann, 9);
        assert!(w[0].abs() < 1e-12);
        assert!(w[8].abs() < 1e-12);
        assert!((w[4] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn windows_symmetric() {
        for kind in [WindowKind::Hann, WindowKind::Hamming, WindowKind::Blackman] {
            let w = window(kind, 33);
            for i in 0..w.len() {
                assert!(
                    (w[i] - w[w.len() - 1 - i]).abs() < 1e-12,
                    "{kind:?} idx {i}"
                );
            }
        }
    }

    #[test]
    fn degenerate_lengths() {
        assert!(window(WindowKind::Hann, 0).is_empty());
        assert_eq!(window(WindowKind::Hann, 1), vec![1.0]);
    }

    #[test]
    fn gains_in_expected_order() {
        // rect > hamming > hann > blackman coherent gain
        let n = 128;
        let g = |k| coherent_gain(&window(k, n));
        assert!(g(WindowKind::Rect) > g(WindowKind::Hamming));
        assert!(g(WindowKind::Hamming) > g(WindowKind::Hann));
        assert!(g(WindowKind::Hann) > g(WindowKind::Blackman));
    }
}

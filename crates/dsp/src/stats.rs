//! Descriptive statistics and empirical CDFs.
//!
//! The paper's headline evaluation artifacts are *empirical CDFs* of force
//! and location error (Figs. 13, 14, 16, 17) and their medians. This module
//! provides those plus the circular statistics needed to average phases
//! across subcarriers (paper Eq. 5: "take an average over subcarrier
//! indices").

use crate::complex::Complex;

/// Arithmetic mean; 0 for empty input.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample variance (denominator `n-1`); 0 for fewer than two samples.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Sample standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Root-mean-square of a sequence.
pub fn rms(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|&x| x * x).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Root-mean-square error between two equal-length sequences.
///
/// # Panics
/// Panics if lengths differ.
pub fn rmse(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "rmse requires equal lengths");
    if a.is_empty() {
        return 0.0;
    }
    let ss: f64 = a.iter().zip(b).map(|(&x, &y)| (x - y) * (x - y)).sum();
    (ss / a.len() as f64).sqrt()
}

/// Median (average of middle two for even lengths); NaN-free input assumed.
pub fn median(xs: &[f64]) -> f64 {
    percentile(xs, 50.0)
}

/// Linear-interpolation percentile `p ∈ [0, 100]` (NumPy `linear` method).
/// Returns 0 for empty input.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let p = p.clamp(0.0, 100.0);
    let rank = p / 100.0 * (v.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let frac = rank - lo as f64;
        v[lo] * (1.0 - frac) + v[hi] * frac
    }
}

/// Circular mean of angles (radians): `arg(Σ e^{jθ})`.
///
/// This is how per-subcarrier phase readings are combined — a plain
/// arithmetic mean would be wrong near the ±π wrap.
pub fn circular_mean(angles: &[f64]) -> f64 {
    let s: Complex = angles.iter().map(|&a| Complex::cis(a)).sum();
    s.arg()
}

/// Mean resultant length `|Σ e^{jθ}| / n` — 1 for perfectly aligned phases,
/// → 0 for uniformly scattered ones. A cheap phase-coherence metric.
pub fn circular_resultant(angles: &[f64]) -> f64 {
    if angles.is_empty() {
        return 0.0;
    }
    let s: Complex = angles.iter().map(|&a| Complex::cis(a)).sum();
    s.abs() / angles.len() as f64
}

/// Circular standard deviation `sqrt(-2 ln R)` (radians).
pub fn circular_std(angles: &[f64]) -> f64 {
    let r = circular_resultant(angles).clamp(1e-15, 1.0);
    (-2.0 * r.ln()).sqrt()
}

/// An empirical cumulative distribution function over a sample set.
///
/// Mirrors the CDF plots of the paper's Figs. 13/14/16/17: construct from the
/// absolute errors of a Monte-Carlo run, then query medians/percentiles or
/// dump plot-ready `(value, probability)` rows.
#[derive(Clone, Debug)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds from samples (empty input allowed).
    pub fn new(samples: impl IntoIterator<Item = f64>) -> Self {
        let mut sorted: Vec<f64> = samples.into_iter().collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in ECDF input"));
        Ecdf { sorted }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// `true` if the ECDF holds no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// P(X ≤ x), the fraction of samples at or below `x`.
    pub fn eval(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        // number of elements <= x via partition point
        let cnt = self.sorted.partition_point(|&s| s <= x);
        cnt as f64 / self.sorted.len() as f64
    }

    /// Quantile: smallest sample `v` with `P(X ≤ v) ≥ q`, for `q ∈ (0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let idx = ((q * self.sorted.len() as f64).ceil() as usize).clamp(1, self.sorted.len());
        self.sorted[idx - 1]
    }

    /// Median value.
    pub fn median(&self) -> f64 {
        median(&self.sorted)
    }

    /// 90th-percentile value.
    pub fn p90(&self) -> f64 {
        percentile(&self.sorted, 90.0)
    }

    /// Plot-ready rows `(value, cumulative_probability)`, one per sample.
    pub fn curve(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len();
        self.sorted
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, (i + 1) as f64 / n as f64))
            .collect()
    }

    /// Underlying sorted samples.
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PI;

    #[test]
    fn mean_variance_basics() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        assert!((variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
        assert!((std_dev(&xs) - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs_are_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(rms(&[]), 0.0);
        assert_eq!(median(&[]), 0.0);
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&xs, 0.0), 10.0);
        assert_eq!(percentile(&xs, 100.0), 40.0);
        assert!((percentile(&xs, 50.0) - 25.0).abs() < 1e-12);
        assert!((percentile(&xs, 25.0) - 17.5).abs() < 1e-12);
    }

    #[test]
    fn rmse_known() {
        assert_eq!(rmse(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        assert!((rmse(&[0.0, 0.0], &[3.0, 4.0]) - (12.5f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn circular_mean_handles_wrap() {
        // angles straddling the ±π boundary: arithmetic mean would give ~0,
        // circular mean must give ~π.
        let angles = [PI - 0.1, -PI + 0.1];
        let m = circular_mean(&angles);
        assert!((m.abs() - PI).abs() < 1e-9, "{m}");
    }

    #[test]
    fn circular_resultant_coherence() {
        let aligned = [0.5; 100];
        assert!((circular_resultant(&aligned) - 1.0).abs() < 1e-12);
        let scattered: Vec<f64> = (0..360).map(|i| i as f64 * PI / 180.0).collect();
        assert!(circular_resultant(&scattered) < 0.01);
        assert!(circular_std(&aligned) < 1e-6);
        assert!(circular_std(&scattered) > 1.0);
    }

    #[test]
    fn ecdf_eval_and_quantile() {
        let e = Ecdf::new([1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(e.len(), 5);
        assert_eq!(e.eval(0.0), 0.0);
        assert_eq!(e.eval(3.0), 0.6);
        assert_eq!(e.eval(10.0), 1.0);
        assert_eq!(e.quantile(0.5), 3.0);
        assert_eq!(e.quantile(1.0), 5.0);
        assert_eq!(e.median(), 3.0);
    }

    #[test]
    fn ecdf_curve_monotone() {
        let e = Ecdf::new([0.3, 0.1, 0.7, 0.4]);
        let c = e.curve();
        assert_eq!(c.len(), 4);
        for w in c.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 < w[1].1);
        }
        assert_eq!(c.last().unwrap().1, 1.0);
    }

    #[test]
    fn ecdf_empty() {
        let e = Ecdf::new(std::iter::empty());
        assert!(e.is_empty());
        assert_eq!(e.eval(1.0), 0.0);
        assert_eq!(e.quantile(0.5), 0.0);
    }
}

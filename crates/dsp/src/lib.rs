#![warn(missing_docs)]

//! # wiforce-dsp
//!
//! Signal-processing substrate for the WiForce reproduction.
//!
//! WiForce's sensing algorithm lives entirely in the complex-baseband domain:
//! the reader takes periodic wideband channel estimates, isolates the tag in
//! the Doppler domain with an FFT across snapshots, reads differential phases
//! via conjugate multiplication, and fits/inverts cubic phase-force models.
//! This crate provides every numerical primitive those steps need, with no
//! external numerics dependencies:
//!
//! * [`Complex`] — a minimal, fully-featured `f64` complex number.
//! * [`fft`] — radix-2 and Bluestein FFTs, the Goertzel single-bin DFT used
//!   for cheap harmonic extraction, and a reference DFT for testing.
//! * [`linalg`] — small dense matrices with LU solve and least squares.
//! * [`polyfit`] — polynomial least-squares fitting (the paper's cubic
//!   phase-force model) and evaluation utilities.
//! * [`stats`] — means, medians, percentiles, empirical CDFs, circular
//!   statistics for phase data.
//! * [`phase`] — wrapping, unwrapping and angle conversions.
//! * [`interp`] — 1-D and 2-D interpolation on sorted grids.
//! * [`stft`] — short-time Fourier transform for Doppler waterfalls.
//! * [`window`] — spectral windows.
//! * [`signal`] — convolution / correlation helpers used by preamble sync.
//! * [`snapshots`] — flat row-major snapshot-stream storage
//!   ([`snapshots::SnapshotMatrix`]) shared by the whole pipeline.
//! * [`rng`] — seeded Gaussian / complex-Gaussian sampling (Box–Muller).
//! * [`fastmath`] — vectorizable polynomial `ln`/`cos` kernels backing the
//!   bulk noise synthesis.
//! * [`kernels`] — runtime-dispatched (AVX2/AVX-512/NEON, scalar
//!   fallback, `WIFORCE_FORCE_SCALAR` override) SIMD instantiations of
//!   every hot inner loop; all paths bit-identical.
//!
//! Everything is deterministic given caller-provided RNGs and is `f64`
//! throughout.

pub mod complex;
pub mod fastmath;
pub mod fft;
pub mod interp;
pub mod kernels;
pub mod linalg;
pub mod phase;
pub mod polyfit;
pub mod rng;
pub mod signal;
pub mod snapshots;
pub mod stats;
pub mod stft;
pub mod window;

pub use complex::Complex;
pub use snapshots::{SnapshotMatrix, SnapshotView};

/// Speed of light in vacuum, m/s.
pub const C0: f64 = 299_792_458.0;

/// Convenience: π as `f64`.
pub const PI: f64 = std::f64::consts::PI;

/// Convenience: 2π as `f64`.
pub const TAU: f64 = std::f64::consts::TAU;

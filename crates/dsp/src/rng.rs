//! Seeded random sampling: Gaussian and circularly-symmetric complex
//! Gaussian noise.
//!
//! The `rand` crate (the only approved runtime dependency) provides uniform
//! sampling; the Gaussian transform (Box–Muller) lives here so the channel
//! and front-end simulators can draw AWGN without pulling in `rand_distr`.
//! All samplers take a caller-supplied `Rng`, keeping every simulation
//! deterministic under a fixed seed.

use crate::complex::Complex;
use crate::TAU;
use rand::Rng;

/// Draws one standard-normal sample via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Guard the log against u1 == 0.
    let u1: f64 = loop {
        let u: f64 = rng.gen();
        if u > f64::MIN_POSITIVE {
            break u;
        }
    };
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (TAU * u2).cos()
}

/// Draws a normal sample with the given mean and standard deviation.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    mean + std_dev * standard_normal(rng)
}

/// Draws a circularly-symmetric complex Gaussian sample with total variance
/// `variance` (`variance/2` per real component) — the standard AWGN model.
pub fn complex_gaussian<R: Rng + ?Sized>(rng: &mut R, variance: f64) -> Complex {
    let s = (variance / 2.0).sqrt();
    Complex::new(s * standard_normal(rng), s * standard_normal(rng))
}

/// Fills a buffer with AWGN of the given total variance per sample.
pub fn awgn_buffer<R: Rng + ?Sized>(rng: &mut R, len: usize, variance: f64) -> Vec<Complex> {
    (0..len).map(|_| complex_gaussian(rng, variance)).collect()
}

/// Draws a uniform sample in `[lo, hi)`.
pub fn uniform<R: Rng + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
    lo + (hi - lo) * rng.gen::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{mean, std_dev, variance};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(42);
        let xs: Vec<f64> = (0..50_000).map(|_| standard_normal(&mut rng)).collect();
        assert!(mean(&xs).abs() < 0.02, "mean {}", mean(&xs));
        assert!((std_dev(&xs) - 1.0).abs() < 0.02, "std {}", std_dev(&xs));
    }

    #[test]
    fn normal_scales_and_shifts() {
        let mut rng = StdRng::seed_from_u64(7);
        let xs: Vec<f64> = (0..50_000).map(|_| normal(&mut rng, 5.0, 2.0)).collect();
        assert!((mean(&xs) - 5.0).abs() < 0.05);
        assert!((std_dev(&xs) - 2.0).abs() < 0.05);
    }

    #[test]
    fn complex_gaussian_variance_split() {
        let mut rng = StdRng::seed_from_u64(1);
        let zs: Vec<Complex> = (0..50_000).map(|_| complex_gaussian(&mut rng, 4.0)).collect();
        let re: Vec<f64> = zs.iter().map(|z| z.re).collect();
        let im: Vec<f64> = zs.iter().map(|z| z.im).collect();
        assert!((variance(&re) - 2.0).abs() < 0.1);
        assert!((variance(&im) - 2.0).abs() < 0.1);
        // total power ≈ variance
        let p: f64 = zs.iter().map(|z| z.norm_sqr()).sum::<f64>() / zs.len() as f64;
        assert!((p - 4.0).abs() < 0.1);
    }

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(99);
        let mut b = StdRng::seed_from_u64(99);
        for _ in 0..100 {
            assert_eq!(standard_normal(&mut a), standard_normal(&mut b));
        }
    }

    #[test]
    fn uniform_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = uniform(&mut rng, -2.0, 3.0);
            assert!((-2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn awgn_buffer_len_and_power() {
        let mut rng = StdRng::seed_from_u64(11);
        let buf = awgn_buffer(&mut rng, 10_000, 0.5);
        assert_eq!(buf.len(), 10_000);
        let p: f64 = buf.iter().map(|z| z.norm_sqr()).sum::<f64>() / buf.len() as f64;
        assert!((p - 0.5).abs() < 0.03);
    }
}

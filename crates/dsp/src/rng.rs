//! Seeded random sampling: Gaussian and circularly-symmetric complex
//! Gaussian noise.
//!
//! The `rand` crate (the only approved runtime dependency) provides uniform
//! sampling; the Gaussian transform (Box–Muller) lives here so the channel
//! and front-end simulators can draw AWGN without pulling in `rand_distr`.
//! All samplers take a caller-supplied `Rng`, keeping every simulation
//! deterministic under a fixed seed.

use crate::complex::Complex;
use crate::fastmath;
use rand::Rng;

/// Draws one standard-normal sample via the Box–Muller transform.
///
/// The transform runs on the polynomial kernels in [`crate::fastmath`]
/// (within ~4 ulp of libm), so one sample drawn here is bit-identical to
/// the same draw produced by the batched
/// [`fastmath::standard_normals_from_uniforms`] path.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Guard the log against u1 == 0.
    let u1: f64 = loop {
        let u: f64 = rng.gen();
        if u > f64::MIN_POSITIVE {
            break u;
        }
    };
    let u2: f64 = rng.gen();
    fastmath::box_muller(u1, u2)
}

/// Draws the uniform pairs for `n_normals` Box–Muller samples into `u1s`
/// and `u2s` (cleared first), consuming the RNG stream exactly as
/// `n_normals` sequential [`standard_normal`] calls would — including the
/// guard that redraws a zero `u1`. Feed the pairs to
/// [`fastmath::standard_normals_from_uniforms`] for the batched (and
/// bit-identical) transform.
pub fn draw_box_muller_uniforms<R: Rng + ?Sized>(
    rng: &mut R,
    n_normals: usize,
    u1s: &mut Vec<f64>,
    u2s: &mut Vec<f64>,
) {
    u1s.clear();
    u2s.clear();
    u1s.reserve(n_normals);
    u2s.reserve(n_normals);
    for _ in 0..n_normals {
        let u1: f64 = loop {
            let u: f64 = rng.gen();
            if u > f64::MIN_POSITIVE {
                break u;
            }
        };
        u1s.push(u1);
        u2s.push(rng.gen());
    }
}

/// Draws a normal sample with the given mean and standard deviation.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    mean + std_dev * standard_normal(rng)
}

/// Draws a circularly-symmetric complex Gaussian sample with total variance
/// `variance` (`variance/2` per real component) — the standard AWGN model.
pub fn complex_gaussian<R: Rng + ?Sized>(rng: &mut R, variance: f64) -> Complex {
    let s = (variance / 2.0).sqrt();
    Complex::new(s * standard_normal(rng), s * standard_normal(rng))
}

/// Fills a buffer with AWGN of the given total variance per sample.
pub fn awgn_buffer<R: Rng + ?Sized>(rng: &mut R, len: usize, variance: f64) -> Vec<Complex> {
    (0..len).map(|_| complex_gaussian(rng, variance)).collect()
}

/// Draws a uniform sample in `[lo, hi)`.
pub fn uniform<R: Rng + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
    lo + (hi - lo) * rng.gen::<f64>()
}

// ---------------------------------------------------------------------
// Counter-based (splittable) randomness: Philox 4x32-10
// ---------------------------------------------------------------------

const PHILOX_M0: u32 = 0xD251_1F53;
const PHILOX_M1: u32 = 0xCD9E_8D57;
const PHILOX_W0: u32 = 0x9E37_79B9;
const PHILOX_W1: u32 = 0xBB67_AE85;

#[inline(always)]
fn mulhilo(a: u32, b: u32) -> (u32, u32) {
    let p = u64::from(a) * u64::from(b);
    ((p >> 32) as u32, p as u32)
}

/// One Philox 4x32-10 block: a keyed bijection of the 128-bit counter.
///
/// This is the primitive under every counter-addressed draw in the
/// simulator: the output is a pure function of `(ctr, key)`, so a draw
/// site that derives its counter from simulation coordinates (press key,
/// group, snapshot, lane) produces the same bits regardless of
/// evaluation order, chunking, or thread count. Matches the published
/// Random123 known-answer vectors (pinned in the tests below).
#[inline(always)]
pub fn philox4x32(mut ctr: [u32; 4], key: [u32; 2]) -> [u32; 4] {
    let (mut k0, mut k1) = (key[0], key[1]);
    for _ in 0..10 {
        let (hi0, lo0) = mulhilo(PHILOX_M0, ctr[0]);
        let (hi1, lo1) = mulhilo(PHILOX_M1, ctr[2]);
        ctr = [hi1 ^ ctr[1] ^ k0, lo1, hi0 ^ ctr[3] ^ k1, lo0];
        k0 = k0.wrapping_add(PHILOX_W0);
        k1 = k1.wrapping_add(PHILOX_W1);
    }
    ctr
}

/// The scalar reference for [`crate::kernels::philox_normals`]: the
/// standard normal at counter `[lane, ctr_hi[0], ctr_hi[1], ctr_hi[2]]`.
/// One block provides both Box–Muller uniforms: `u1 ∈ (0, 1]` from the
/// low 64 bits (offset by one ulp so the log never sees zero without a
/// data-dependent redraw), `u2 ∈ [0, 1)` from the high 64 bits.
pub fn philox_normal_at(key: [u32; 2], ctr_hi: [u32; 3], lane: u32) -> f64 {
    const SCALE: f64 = 1.0 / (1u64 << 53) as f64;
    let b = philox4x32([lane, ctr_hi[0], ctr_hi[1], ctr_hi[2]], key);
    let a = (u64::from(b[1]) << 32) | u64::from(b[0]);
    let c = (u64::from(b[3]) << 32) | u64::from(b[2]);
    let u1 = ((a >> 11) + 1) as f64 * SCALE;
    let u2 = (c >> 11) as f64 * SCALE;
    fastmath::box_muller(u1, u2)
}

/// Counter domain for per-snapshot draws (sounder noise, fault
/// decisions, burst interference, front-end jitter).
pub const DOMAIN_SNAPSHOT: u32 = 0;
/// Counter domain for per-group header draws (tag-clock wander steps).
pub const DOMAIN_GROUP: u32 = 1;
/// Counter domain for spectral-line draws: frequency-domain noise at the
/// consumed bins only. The "snapshot" counter slot carries the bin
/// coordinate (the line frequency in centi-hertz), so every
/// `(press key, group, bin)` triple addresses a disjoint lane space —
/// disjoint from both time-domain domains above, which is what lets the
/// spectral and time-domain paths coexist per press without correlated
/// draws.
pub const DOMAIN_SPECTRAL: u32 = 2;

/// A cursor into the Philox counter space at fixed simulation
/// coordinates `(key, domain, group, snapshot)`, advancing only the lane.
///
/// The cursor implements [`rand::RngCore`], so every existing draw site
/// (`standard_normal`, `complex_gaussian`, `uniform`, …) works on it
/// unchanged — but unlike a sequential generator, two cursors at
/// different coordinates never share state, so snapshots can be
/// synthesized independently on any worker in any order and still
/// reproduce bit-for-bit. Bulk normal fills bypass the u64 stream and go
/// straight to the SIMD-dispatched [`crate::kernels::philox_normals`]
/// kernel, one lane per sample.
#[derive(Debug, Clone)]
pub struct CounterRng {
    key: [u32; 2],
    /// High counter words `[snapshot, group, domain]`.
    ctr_hi: [u32; 3],
    lane: u32,
    /// Unconsumed high half of the last block (the u64 stream draws two
    /// words per lane).
    spare: Option<u64>,
}

impl CounterRng {
    /// Cursor at explicit coordinates; lane starts at 0.
    pub fn new(key: u64, domain: u32, group: u32, snapshot: u32) -> Self {
        CounterRng {
            key: [key as u32, (key >> 32) as u32],
            ctr_hi: [snapshot, group, domain],
            lane: 0,
            spare: None,
        }
    }

    /// Cursor for snapshot-local draws ([`DOMAIN_SNAPSHOT`]).
    pub fn for_snapshot(key: u64, group: u32, snapshot: u32) -> Self {
        CounterRng::new(key, DOMAIN_SNAPSHOT, group, snapshot)
    }

    /// Cursor for group-header draws ([`DOMAIN_GROUP`]).
    pub fn for_group(key: u64, group: u32) -> Self {
        CounterRng::new(key, DOMAIN_GROUP, group, 0)
    }

    /// Cursor for spectral-line draws ([`DOMAIN_SPECTRAL`]): one lane
    /// space per `(key, group, bin)`. Callers encode the consumed line
    /// frequency as an integer bin id (see [`spectral_bin_id`]).
    pub fn for_spectral(key: u64, group: u32, bin: u32) -> Self {
        CounterRng::new(key, DOMAIN_SPECTRAL, group, bin)
    }

    /// The next unconsumed lane (counter word 0).
    pub fn lane(&self) -> u32 {
        self.lane
    }

    #[inline(always)]
    fn next_block(&mut self) -> [u32; 4] {
        let b = philox4x32(
            [self.lane, self.ctr_hi[0], self.ctr_hi[1], self.ctr_hi[2]],
            self.key,
        );
        self.lane = self.lane.wrapping_add(1);
        b
    }

    /// Fills `out` with standard normals through the dispatched bulk
    /// kernel, consuming one lane per sample. Any buffered spare word is
    /// discarded first so the fill starts on a whole-lane boundary.
    pub fn fill_normals(&mut self, out: &mut [f64]) {
        self.spare = None;
        crate::kernels::philox_normals(self.key, self.ctr_hi, self.lane, out);
        self.lane = self.lane.wrapping_add(out.len() as u32);
    }

    /// Repositions the cursor as if `n` normals had been filled without
    /// materializing them: discards any buffered spare word and advances
    /// `n` lanes. After `skip_normals(n)` the cursor state is identical
    /// to the state after a [`Self::fill_normals`] of an `n`-sample
    /// buffer — this is what lets a plane-at-a-time (wide) noise fill
    /// hand correctly positioned per-snapshot cursors to the remaining
    /// scalar draw sites (burst faults, front-end jitter).
    pub fn skip_normals(&mut self, n: usize) {
        self.spare = None;
        self.lane = self.lane.wrapping_add(n as u32);
    }
}

/// Maps a spectral-line frequency (Hz) to the integer bin id used as
/// the [`DOMAIN_SPECTRAL`] counter coordinate: the frequency in
/// centi-hertz, rounded. Centi-hertz resolution keeps every line the
/// simulator consumes distinct (tag modulation fundamentals, their
/// floor-probe offsets at 1.37×/2.61×, and the multi-stream frequency
/// plan spaced tens of hertz apart) while staying well inside `u32` for
/// any sub-40-MHz line.
pub fn spectral_bin_id(line_hz: f64) -> u32 {
    (line_hz * 100.0).round() as u32
}

impl rand::RngCore for CounterRng {
    fn next_u32(&mut self) -> u32 {
        self.next_u64() as u32
    }

    fn next_u64(&mut self) -> u64 {
        if let Some(v) = self.spare.take() {
            return v;
        }
        let b = self.next_block();
        self.spare = Some((u64::from(b[3]) << 32) | u64::from(b[2]));
        (u64::from(b[1]) << 32) | u64::from(b[0])
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{mean, std_dev, variance};
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(42);
        let xs: Vec<f64> = (0..50_000).map(|_| standard_normal(&mut rng)).collect();
        assert!(mean(&xs).abs() < 0.02, "mean {}", mean(&xs));
        assert!((std_dev(&xs) - 1.0).abs() < 0.02, "std {}", std_dev(&xs));
    }

    #[test]
    fn normal_scales_and_shifts() {
        let mut rng = StdRng::seed_from_u64(7);
        let xs: Vec<f64> = (0..50_000).map(|_| normal(&mut rng, 5.0, 2.0)).collect();
        assert!((mean(&xs) - 5.0).abs() < 0.05);
        assert!((std_dev(&xs) - 2.0).abs() < 0.05);
    }

    #[test]
    fn complex_gaussian_variance_split() {
        let mut rng = StdRng::seed_from_u64(1);
        let zs: Vec<Complex> = (0..50_000)
            .map(|_| complex_gaussian(&mut rng, 4.0))
            .collect();
        let re: Vec<f64> = zs.iter().map(|z| z.re).collect();
        let im: Vec<f64> = zs.iter().map(|z| z.im).collect();
        assert!((variance(&re) - 2.0).abs() < 0.1);
        assert!((variance(&im) - 2.0).abs() < 0.1);
        // total power ≈ variance
        let p: f64 = zs.iter().map(|z| z.norm_sqr()).sum::<f64>() / zs.len() as f64;
        assert!((p - 4.0).abs() < 0.1);
    }

    #[test]
    fn batched_draw_matches_sequential_normals_bitwise() {
        let mut seq = StdRng::seed_from_u64(17);
        let mut bat = StdRng::seed_from_u64(17);
        let n = 513;
        let sequential: Vec<f64> = (0..n).map(|_| standard_normal(&mut seq)).collect();
        let (mut u1s, mut u2s) = (Vec::new(), Vec::new());
        draw_box_muller_uniforms(&mut bat, n, &mut u1s, &mut u2s);
        let mut batched = vec![0.0; n];
        crate::fastmath::standard_normals_from_uniforms(&u1s, &u2s, &mut batched);
        for (a, b) in sequential.iter().zip(&batched) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // both paths leave the RNG in the same state
        assert_eq!(seq.next_u64(), bat.next_u64());
    }

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(99);
        let mut b = StdRng::seed_from_u64(99);
        for _ in 0..100 {
            assert_eq!(standard_normal(&mut a), standard_normal(&mut b));
        }
    }

    #[test]
    fn uniform_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = uniform(&mut rng, -2.0, 3.0);
            assert!((-2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn philox_matches_published_vectors() {
        // Random123 known-answer tests for Philox 4x32-10.
        assert_eq!(
            philox4x32([0, 0, 0, 0], [0, 0]),
            [0x6627_E8D5, 0xE169_C58D, 0xBC57_AC4C, 0x9B00_DBD8]
        );
        assert_eq!(
            philox4x32([u32::MAX; 4], [u32::MAX; 2]),
            [0x408F_276D, 0x41C8_3B0E, 0xA20B_C7C6, 0x6D54_51FD]
        );
        assert_eq!(
            philox4x32(
                [0x243F_6A88, 0x85A3_08D3, 0x1319_8A2E, 0x0370_7344],
                [0xA409_3822, 0x299F_31D0]
            ),
            [0xD16C_FE09, 0x94FD_CCEB, 0x5001_E420, 0x2412_6EA1]
        );
    }

    #[test]
    fn counter_rng_is_a_pure_function_of_coordinates() {
        let key = 0x0123_4567_89AB_CDEF_u64;
        // Same coordinates → same stream, regardless of construction
        // order or what other cursors drew in between.
        let mut a = CounterRng::for_snapshot(key, 3, 17);
        let mut other = CounterRng::for_snapshot(key, 3, 18);
        let _ = standard_normal(&mut other);
        let mut b = CounterRng::for_snapshot(key, 3, 17);
        for _ in 0..64 {
            assert_eq!(
                standard_normal(&mut a).to_bits(),
                standard_normal(&mut b).to_bits()
            );
        }
        // Different coordinates (snapshot, group, domain, key) → distinct
        // streams.
        let first = |mut c: CounterRng| c.next_u64();
        let base = first(CounterRng::for_snapshot(key, 3, 17));
        assert_ne!(base, first(CounterRng::for_snapshot(key, 3, 18)));
        assert_ne!(base, first(CounterRng::for_snapshot(key, 4, 17)));
        assert_ne!(base, first(CounterRng::for_group(key, 3)));
        assert_ne!(base, first(CounterRng::for_snapshot(key ^ 1, 3, 17)));
    }

    #[test]
    fn spectral_cursor_is_disjoint_and_pure() {
        let key = 0xFEED_u64;
        // pure function of (key, group, bin)
        let first = |mut c: CounterRng| c.next_u64();
        let base = first(CounterRng::for_spectral(key, 3, 100_000));
        assert_eq!(base, first(CounterRng::for_spectral(key, 3, 100_000)));
        // distinct from other bins, groups, keys, and both time domains
        assert_ne!(base, first(CounterRng::for_spectral(key, 3, 400_000)));
        assert_ne!(base, first(CounterRng::for_spectral(key, 4, 100_000)));
        assert_ne!(base, first(CounterRng::for_spectral(key ^ 1, 3, 100_000)));
        assert_ne!(base, first(CounterRng::for_snapshot(key, 3, 100_000)));
        assert_ne!(base, first(CounterRng::for_group(key, 3)));
        // bulk fills agree with the scalar reference at the same coords
        let mut c = CounterRng::for_spectral(key, 3, 137_000);
        let mut buf = vec![0.0; 16];
        c.fill_normals(&mut buf);
        for (i, w) in buf.iter().enumerate() {
            let scalar = philox_normal_at(
                [key as u32, (key >> 32) as u32],
                [137_000, 3, DOMAIN_SPECTRAL],
                i as u32,
            );
            assert_eq!(w.to_bits(), scalar.to_bits(), "lane {i}");
        }
    }

    #[test]
    fn spectral_bin_ids_separate_the_frequency_plan() {
        // the exact line frequencies the simulator consumes must map to
        // distinct bins: fundamentals, floor probes, and a dense
        // multi-stream plan at sub-hertz-scale spacing
        assert_eq!(spectral_bin_id(1000.0), 100_000);
        assert_eq!(spectral_bin_id(4000.0), 400_000);
        assert_ne!(
            spectral_bin_id(1000.0 * 1.37),
            spectral_bin_id(1000.0 * 2.61)
        );
        let mut seen = std::collections::HashSet::new();
        for s in 0..64 {
            let f = 800.0 + s as f64 * (1200.0 / 43.2);
            for m in [1.0, 1.37, 2.61, 4.0] {
                assert!(seen.insert(spectral_bin_id(f * m)), "collision at {f}x{m}");
            }
        }
    }

    #[test]
    fn counter_rng_bulk_fill_is_chunking_invariant() {
        let key = 42u64;
        let mut whole = CounterRng::for_snapshot(key, 1, 2);
        let mut buf = vec![0.0; 128];
        whole.fill_normals(&mut buf);
        assert_eq!(whole.lane(), 128);

        let mut split = CounterRng::for_snapshot(key, 1, 2);
        let mut lo = vec![0.0; 31];
        let mut hi = vec![0.0; 97];
        split.fill_normals(&mut lo);
        split.fill_normals(&mut hi);
        for (i, w) in buf.iter().enumerate() {
            let part = if i < 31 { lo[i] } else { hi[i - 31] };
            assert_eq!(w.to_bits(), part.to_bits(), "lane {i}");
            // and both agree with the scalar reference
            let scalar = philox_normal_at([42, 0], [2, 1, super::DOMAIN_SNAPSHOT], i as u32);
            assert_eq!(w.to_bits(), scalar.to_bits(), "lane {i} vs scalar");
        }
    }

    #[test]
    fn skip_normals_matches_fill_state() {
        // A cursor that skipped n lanes must continue bit-identically to
        // one that actually filled n normals — same lane, no stale spare.
        let key = 0xBEEF_u64;
        for n in [0, 1, 31, 128] {
            let mut filled = CounterRng::for_snapshot(key, 2, 9);
            let mut buf = vec![0.0; n];
            filled.fill_normals(&mut buf);
            let mut skipped = CounterRng::for_snapshot(key, 2, 9);
            skipped.skip_normals(n);
            assert_eq!(filled.lane(), skipped.lane(), "n={n}");
            for _ in 0..8 {
                assert_eq!(filled.next_u64(), skipped.next_u64(), "n={n}");
            }
        }
        // both fill and skip discard a buffered spare word first
        let mut filled = CounterRng::for_snapshot(3, 0, 0);
        let mut skipped = CounterRng::for_snapshot(3, 0, 0);
        assert_eq!(filled.next_u64(), skipped.next_u64());
        let mut buf = vec![0.0; 16];
        filled.fill_normals(&mut buf);
        skipped.skip_normals(16);
        assert_eq!(filled.next_u64(), skipped.next_u64());
    }

    #[test]
    fn counter_rng_normal_moments() {
        // The bulk kernel's (0,1]×[0,1) mapping must still be exact in
        // distribution: standard normal mean/σ within Monte-Carlo error.
        let mut xs = vec![0.0; 50_000];
        let mut c = CounterRng::for_snapshot(7, 0, 0);
        c.fill_normals(&mut xs);
        assert!(mean(&xs).abs() < 0.02, "mean {}", mean(&xs));
        assert!((std_dev(&xs) - 1.0).abs() < 0.02, "std {}", std_dev(&xs));

        // … and the RngCore stream view feeds the existing samplers with
        // well-formed uniforms.
        let mut c = CounterRng::for_snapshot(11, 0, 0);
        let seq: Vec<f64> = (0..50_000).map(|_| standard_normal(&mut c)).collect();
        assert!(mean(&seq).abs() < 0.02, "mean {}", mean(&seq));
        assert!((std_dev(&seq) - 1.0).abs() < 0.02, "std {}", std_dev(&seq));
    }

    #[test]
    fn counter_rng_complex_gaussian_variance_split() {
        let mut c = CounterRng::for_snapshot(5, 0, 0);
        let zs: Vec<Complex> = (0..50_000).map(|_| complex_gaussian(&mut c, 4.0)).collect();
        let re: Vec<f64> = zs.iter().map(|z| z.re).collect();
        let im: Vec<f64> = zs.iter().map(|z| z.im).collect();
        assert!((variance(&re) - 2.0).abs() < 0.1);
        assert!((variance(&im) - 2.0).abs() < 0.1);
    }

    #[test]
    fn counter_rng_uniform_bounds_and_bytes() {
        let mut c = CounterRng::for_group(19, 0);
        for _ in 0..1000 {
            let x = uniform(&mut c, -2.0, 3.0);
            assert!((-2.0..3.0).contains(&x));
        }
        // fill_bytes covers the remaining RngCore surface
        let mut a = CounterRng::for_group(19, 1);
        let mut b = CounterRng::for_group(19, 1);
        let mut buf_a = [0u8; 27];
        let mut buf_b = [0u8; 27];
        a.fill_bytes(&mut buf_a);
        b.fill_bytes(&mut buf_b);
        assert_eq!(buf_a, buf_b);
    }

    #[test]
    fn awgn_buffer_len_and_power() {
        let mut rng = StdRng::seed_from_u64(11);
        let buf = awgn_buffer(&mut rng, 10_000, 0.5);
        assert_eq!(buf.len(), 10_000);
        let p: f64 = buf.iter().map(|z| z.norm_sqr()).sum::<f64>() / buf.len() as f64;
        assert!((p - 0.5).abs() < 0.03);
    }
}

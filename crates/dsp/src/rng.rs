//! Seeded random sampling: Gaussian and circularly-symmetric complex
//! Gaussian noise.
//!
//! The `rand` crate (the only approved runtime dependency) provides uniform
//! sampling; the Gaussian transform (Box–Muller) lives here so the channel
//! and front-end simulators can draw AWGN without pulling in `rand_distr`.
//! All samplers take a caller-supplied `Rng`, keeping every simulation
//! deterministic under a fixed seed.

use crate::complex::Complex;
use crate::fastmath;
use rand::Rng;

/// Draws one standard-normal sample via the Box–Muller transform.
///
/// The transform runs on the polynomial kernels in [`crate::fastmath`]
/// (within ~4 ulp of libm), so one sample drawn here is bit-identical to
/// the same draw produced by the batched
/// [`fastmath::standard_normals_from_uniforms`] path.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Guard the log against u1 == 0.
    let u1: f64 = loop {
        let u: f64 = rng.gen();
        if u > f64::MIN_POSITIVE {
            break u;
        }
    };
    let u2: f64 = rng.gen();
    fastmath::box_muller(u1, u2)
}

/// Draws the uniform pairs for `n_normals` Box–Muller samples into `u1s`
/// and `u2s` (cleared first), consuming the RNG stream exactly as
/// `n_normals` sequential [`standard_normal`] calls would — including the
/// guard that redraws a zero `u1`. Feed the pairs to
/// [`fastmath::standard_normals_from_uniforms`] for the batched (and
/// bit-identical) transform.
pub fn draw_box_muller_uniforms<R: Rng + ?Sized>(
    rng: &mut R,
    n_normals: usize,
    u1s: &mut Vec<f64>,
    u2s: &mut Vec<f64>,
) {
    u1s.clear();
    u2s.clear();
    u1s.reserve(n_normals);
    u2s.reserve(n_normals);
    for _ in 0..n_normals {
        let u1: f64 = loop {
            let u: f64 = rng.gen();
            if u > f64::MIN_POSITIVE {
                break u;
            }
        };
        u1s.push(u1);
        u2s.push(rng.gen());
    }
}

/// Draws a normal sample with the given mean and standard deviation.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    mean + std_dev * standard_normal(rng)
}

/// Draws a circularly-symmetric complex Gaussian sample with total variance
/// `variance` (`variance/2` per real component) — the standard AWGN model.
pub fn complex_gaussian<R: Rng + ?Sized>(rng: &mut R, variance: f64) -> Complex {
    let s = (variance / 2.0).sqrt();
    Complex::new(s * standard_normal(rng), s * standard_normal(rng))
}

/// Fills a buffer with AWGN of the given total variance per sample.
pub fn awgn_buffer<R: Rng + ?Sized>(rng: &mut R, len: usize, variance: f64) -> Vec<Complex> {
    (0..len).map(|_| complex_gaussian(rng, variance)).collect()
}

/// Draws a uniform sample in `[lo, hi)`.
pub fn uniform<R: Rng + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
    lo + (hi - lo) * rng.gen::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{mean, std_dev, variance};
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(42);
        let xs: Vec<f64> = (0..50_000).map(|_| standard_normal(&mut rng)).collect();
        assert!(mean(&xs).abs() < 0.02, "mean {}", mean(&xs));
        assert!((std_dev(&xs) - 1.0).abs() < 0.02, "std {}", std_dev(&xs));
    }

    #[test]
    fn normal_scales_and_shifts() {
        let mut rng = StdRng::seed_from_u64(7);
        let xs: Vec<f64> = (0..50_000).map(|_| normal(&mut rng, 5.0, 2.0)).collect();
        assert!((mean(&xs) - 5.0).abs() < 0.05);
        assert!((std_dev(&xs) - 2.0).abs() < 0.05);
    }

    #[test]
    fn complex_gaussian_variance_split() {
        let mut rng = StdRng::seed_from_u64(1);
        let zs: Vec<Complex> = (0..50_000)
            .map(|_| complex_gaussian(&mut rng, 4.0))
            .collect();
        let re: Vec<f64> = zs.iter().map(|z| z.re).collect();
        let im: Vec<f64> = zs.iter().map(|z| z.im).collect();
        assert!((variance(&re) - 2.0).abs() < 0.1);
        assert!((variance(&im) - 2.0).abs() < 0.1);
        // total power ≈ variance
        let p: f64 = zs.iter().map(|z| z.norm_sqr()).sum::<f64>() / zs.len() as f64;
        assert!((p - 4.0).abs() < 0.1);
    }

    #[test]
    fn batched_draw_matches_sequential_normals_bitwise() {
        let mut seq = StdRng::seed_from_u64(17);
        let mut bat = StdRng::seed_from_u64(17);
        let n = 513;
        let sequential: Vec<f64> = (0..n).map(|_| standard_normal(&mut seq)).collect();
        let (mut u1s, mut u2s) = (Vec::new(), Vec::new());
        draw_box_muller_uniforms(&mut bat, n, &mut u1s, &mut u2s);
        let mut batched = vec![0.0; n];
        crate::fastmath::standard_normals_from_uniforms(&u1s, &u2s, &mut batched);
        for (a, b) in sequential.iter().zip(&batched) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // both paths leave the RNG in the same state
        assert_eq!(seq.next_u64(), bat.next_u64());
    }

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(99);
        let mut b = StdRng::seed_from_u64(99);
        for _ in 0..100 {
            assert_eq!(standard_normal(&mut a), standard_normal(&mut b));
        }
    }

    #[test]
    fn uniform_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = uniform(&mut rng, -2.0, 3.0);
            assert!((-2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn awgn_buffer_len_and_power() {
        let mut rng = StdRng::seed_from_u64(11);
        let buf = awgn_buffer(&mut rng, 10_000, 0.5);
        assert_eq!(buf.len(), 10_000);
        let p: f64 = buf.iter().map(|z| z.norm_sqr()).sum::<f64>() / buf.len() as f64;
        assert!((p - 0.5).abs() < 0.03);
    }
}

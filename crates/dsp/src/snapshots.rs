//! Flat, row-major storage for channel-estimate snapshot streams.
//!
//! The WiForce pipeline moves phase groups of `n_snapshots × k_sub`
//! complex channel estimates (625 × 64 by default, one group every
//! 36 ms). Storing them as `Vec<Vec<Complex>>` costs one heap allocation
//! per snapshot and scatters the group across the heap, which both
//! dominates the simulator's inner loop and defeats the cache during
//! harmonic extraction. [`SnapshotMatrix`] keeps a whole stream in one
//! contiguous buffer: rows are snapshots (time), columns are subcarriers
//! (frequency), and the buffer's capacity is reusable across groups via
//! [`SnapshotMatrix::clear`].
//!
//! [`SnapshotView`] is the borrowed counterpart used by consumers
//! (extraction, Doppler spectra, replay) so sub-ranges of a stream can be
//! processed without copying.

use crate::complex::Complex;

/// Owned row-major matrix of channel-estimate snapshots.
///
/// Row `n` holds snapshot `n`; column `k` holds subcarrier `k`. The
/// column count is fixed by the first row pushed (or at construction) and
/// enforced on every subsequent row.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SnapshotMatrix {
    n_cols: usize,
    data: Vec<Complex>,
}

impl SnapshotMatrix {
    /// Creates an empty matrix with `n_cols` subcarriers per snapshot.
    pub fn new(n_cols: usize) -> Self {
        SnapshotMatrix {
            n_cols,
            data: Vec::new(),
        }
    }

    /// Creates an empty matrix with capacity reserved for `rows` snapshots.
    pub fn with_capacity(n_cols: usize, rows: usize) -> Self {
        SnapshotMatrix {
            n_cols,
            data: Vec::with_capacity(n_cols * rows),
        }
    }

    /// Builds a matrix from an existing flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len()` is not a multiple of `n_cols` (for
    /// `n_cols == 0` the buffer must be empty).
    pub fn from_flat(n_cols: usize, data: Vec<Complex>) -> Self {
        if n_cols == 0 {
            assert!(data.is_empty(), "zero-width matrix cannot hold data");
        } else {
            assert_eq!(
                data.len() % n_cols,
                0,
                "flat buffer is not a whole number of rows"
            );
        }
        SnapshotMatrix { n_cols, data }
    }

    /// Builds a matrix by copying a slice of equal-length rows.
    ///
    /// # Panics
    /// Panics if the rows have unequal lengths.
    pub fn from_rows(rows: &[Vec<Complex>]) -> Self {
        let n_cols = rows.first().map_or(0, Vec::len);
        let mut m = SnapshotMatrix::with_capacity(n_cols, rows.len());
        for r in rows {
            m.push_row(r);
        }
        m
    }

    /// Number of snapshots (rows) currently stored.
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.data.len().checked_div(self.n_cols).unwrap_or(0)
    }

    /// Number of subcarriers (columns) per snapshot.
    #[inline]
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// `true` if no snapshots are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Removes all snapshots, keeping the allocation for reuse.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Keeps only the first `rows` snapshots.
    pub fn truncate(&mut self, rows: usize) {
        self.data.truncate(rows * self.n_cols);
    }

    /// Reserves capacity for `rows` additional snapshots.
    pub fn reserve_rows(&mut self, rows: usize) {
        self.data.reserve(rows * self.n_cols);
    }

    /// Appends one snapshot by copy.
    ///
    /// An empty matrix with zero width adopts the width of the first row,
    /// so `SnapshotMatrix::default()` can buffer a stream whose subcarrier
    /// count is only known at the first snapshot.
    ///
    /// # Panics
    /// Panics if `row.len()` does not match the matrix width.
    pub fn push_row(&mut self, row: &[Complex]) {
        if self.n_cols == 0 && self.data.is_empty() {
            self.n_cols = row.len();
        }
        assert_eq!(row.len(), self.n_cols, "snapshot width mismatch");
        self.data.extend_from_slice(row);
    }

    /// Sets the width of an empty zero-width matrix, so producers that
    /// fill rows in place via [`Self::push_row_default`] can adopt a width
    /// the same way [`Self::push_row`] does.
    ///
    /// # Panics
    /// Panics if the matrix already holds data of a different width.
    pub fn set_width(&mut self, n_cols: usize) {
        if self.n_cols == 0 && self.data.is_empty() {
            self.n_cols = n_cols;
        }
        assert_eq!(self.n_cols, n_cols, "snapshot width mismatch");
    }

    /// Appends one zeroed snapshot and returns it for in-place filling —
    /// the allocation-free write path for producers.
    pub fn push_row_default(&mut self) -> &mut [Complex] {
        let start = self.data.len();
        self.data.resize(start + self.n_cols, Complex::ZERO);
        &mut self.data[start..]
    }

    /// Appends `rows` zeroed snapshots in one resize and returns the new
    /// region as a flat mutable slice (`rows × n_cols` elements, row
    /// major). Parallel producers split this region into disjoint
    /// per-worker row ranges and fill them concurrently.
    ///
    /// # Panics
    /// Panics if the width has not been set (via [`Self::set_width`] or a
    /// prior row) — a zero-width bulk append would be unrecoverable.
    pub fn extend_rows(&mut self, rows: usize) -> &mut [Complex] {
        assert!(self.n_cols > 0, "set_width before extend_rows");
        let start = self.data.len();
        self.data.resize(start + rows * self.n_cols, Complex::ZERO);
        &mut self.data[start..]
    }

    /// Appends a copy of the last row (used to hold the previous estimate
    /// across a dropped snapshot).
    ///
    /// # Panics
    /// Panics if the matrix is empty.
    pub fn push_copy_of_last(&mut self) {
        assert!(!self.is_empty(), "no previous snapshot to copy");
        let start = self.data.len() - self.n_cols;
        self.data.extend_from_within(start..);
    }

    /// Snapshot `n` as a slice.
    #[inline]
    pub fn row(&self, n: usize) -> &[Complex] {
        &self.data[n * self.n_cols..(n + 1) * self.n_cols]
    }

    /// Snapshot `n` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, n: usize) -> &mut [Complex] {
        &mut self.data[n * self.n_cols..(n + 1) * self.n_cols]
    }

    /// The most recent snapshot, if any.
    pub fn last_row(&self) -> Option<&[Complex]> {
        if self.is_empty() {
            None
        } else {
            Some(self.row(self.n_rows() - 1))
        }
    }

    /// Iterates over snapshots in time order.
    pub fn rows(&self) -> std::slice::ChunksExact<'_, Complex> {
        // chunks_exact(0) panics; an empty matrix yields no rows.
        self.data.chunks_exact(self.n_cols.max(1))
    }

    /// The whole buffer, row-major.
    #[inline]
    pub fn as_slice(&self) -> &[Complex] {
        &self.data
    }

    /// Borrowed view of the whole matrix.
    #[inline]
    pub fn view(&self) -> SnapshotView<'_> {
        SnapshotView {
            n_cols: self.n_cols,
            data: &self.data,
        }
    }

    /// Borrowed view of rows `start..start + rows`.
    ///
    /// # Panics
    /// Panics if the range exceeds the stored rows.
    pub fn rows_view(&self, start: usize, rows: usize) -> SnapshotView<'_> {
        assert!(start + rows <= self.n_rows(), "row range out of bounds");
        SnapshotView {
            n_cols: self.n_cols,
            data: &self.data[start * self.n_cols..(start + rows) * self.n_cols],
        }
    }
}

/// Borrowed row-major view over a snapshot stream (or a sub-range of one).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SnapshotView<'a> {
    n_cols: usize,
    data: &'a [Complex],
}

impl<'a> SnapshotView<'a> {
    /// Wraps a flat row-major slice.
    ///
    /// # Panics
    /// Panics if `data.len()` is not a multiple of `n_cols`.
    pub fn from_flat(n_cols: usize, data: &'a [Complex]) -> Self {
        if n_cols == 0 {
            assert!(data.is_empty(), "zero-width view cannot hold data");
        } else {
            assert_eq!(
                data.len() % n_cols,
                0,
                "flat slice is not a whole number of rows"
            );
        }
        SnapshotView { n_cols, data }
    }

    /// Number of snapshots (rows) in the view.
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.data.len().checked_div(self.n_cols).unwrap_or(0)
    }

    /// Number of subcarriers (columns) per snapshot.
    #[inline]
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// `true` if the view holds no snapshots.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Snapshot `n` as a slice.
    #[inline]
    pub fn row(&self, n: usize) -> &'a [Complex] {
        &self.data[n * self.n_cols..(n + 1) * self.n_cols]
    }

    /// Iterates over snapshots in time order.
    pub fn rows(&self) -> std::slice::ChunksExact<'a, Complex> {
        self.data.chunks_exact(self.n_cols.max(1))
    }

    /// The underlying flat slice, row-major.
    #[inline]
    pub fn as_slice(&self) -> &'a [Complex] {
        self.data
    }

    /// Sub-view of rows `start..start + rows`.
    ///
    /// # Panics
    /// Panics if the range exceeds the view's rows.
    pub fn rows_view(&self, start: usize, rows: usize) -> SnapshotView<'a> {
        assert!(start + rows <= self.n_rows(), "row range out of bounds");
        SnapshotView {
            n_cols: self.n_cols,
            data: &self.data[start * self.n_cols..(start + rows) * self.n_cols],
        }
    }
}

impl<'a> From<&'a SnapshotMatrix> for SnapshotView<'a> {
    fn from(m: &'a SnapshotMatrix) -> Self {
        m.view()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(re: f64) -> Complex {
        Complex::from_re(re)
    }

    #[test]
    fn push_and_read_rows() {
        let mut m = SnapshotMatrix::new(3);
        m.push_row(&[c(1.0), c(2.0), c(3.0)]);
        m.push_row(&[c(4.0), c(5.0), c(6.0)]);
        assert_eq!(m.n_rows(), 2);
        assert_eq!(m.n_cols(), 3);
        assert_eq!(m.row(1)[0], c(4.0));
        assert_eq!(m.rows().count(), 2);
        assert_eq!(m.last_row().unwrap()[2], c(6.0));
    }

    #[test]
    fn default_adopts_width_of_first_row() {
        let mut m = SnapshotMatrix::default();
        assert_eq!(m.n_cols(), 0);
        m.push_row(&[c(1.0), c(2.0)]);
        assert_eq!(m.n_cols(), 2);
        assert_eq!(m.n_rows(), 1);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn ragged_rows_rejected() {
        let mut m = SnapshotMatrix::new(2);
        m.push_row(&[c(1.0)]);
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut m = SnapshotMatrix::with_capacity(4, 8);
        for _ in 0..8 {
            m.push_row_default();
        }
        let cap = m.data.capacity();
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.data.capacity(), cap);
        // width survives a clear — the next group reuses the same layout
        assert_eq!(m.n_cols(), 4);
    }

    #[test]
    fn push_copy_of_last_duplicates() {
        let mut m = SnapshotMatrix::new(2);
        m.push_row(&[c(1.0), c(2.0)]);
        m.push_copy_of_last();
        assert_eq!(m.row(1), m.row(0));
    }

    #[test]
    fn push_row_default_is_zeroed_and_writable() {
        let mut m = SnapshotMatrix::new(2);
        m.push_row(&[c(9.0), c(9.0)]);
        let r = m.push_row_default();
        assert_eq!(r, &[Complex::ZERO, Complex::ZERO]);
        r[1] = c(5.0);
        assert_eq!(m.row(1)[1], c(5.0));
    }

    #[test]
    fn extend_rows_appends_zeroed_region() {
        let mut m = SnapshotMatrix::new(3);
        m.push_row(&[c(1.0), c(2.0), c(3.0)]);
        let region = m.extend_rows(4);
        assert_eq!(region.len(), 12);
        assert!(region.iter().all(|&z| z == Complex::ZERO));
        region[3] = c(7.0); // row 2 (second appended), col 0
        assert_eq!(m.n_rows(), 5);
        assert_eq!(m.row(0)[0], c(1.0));
        assert_eq!(m.row(2)[0], c(7.0));
    }

    #[test]
    #[should_panic(expected = "set_width")]
    fn extend_rows_requires_width() {
        let mut m = SnapshotMatrix::default();
        let _ = m.extend_rows(2);
    }

    #[test]
    fn views_and_ranges() {
        let mut m = SnapshotMatrix::new(2);
        for i in 0..6 {
            m.push_row(&[c(i as f64), c(-(i as f64))]);
        }
        let v = m.view();
        assert_eq!(v.n_rows(), 6);
        let mid = m.rows_view(2, 3);
        assert_eq!(mid.n_rows(), 3);
        assert_eq!(mid.row(0)[0], c(2.0));
        let sub = mid.rows_view(1, 1);
        assert_eq!(sub.row(0)[0], c(3.0));
    }

    #[test]
    fn from_rows_round_trip() {
        let rows = vec![vec![c(1.0), c(2.0)], vec![c(3.0), c(4.0)]];
        let m = SnapshotMatrix::from_rows(&rows);
        assert_eq!(m.n_rows(), 2);
        for (mr, vr) in m.rows().zip(&rows) {
            assert_eq!(mr, vr.as_slice());
        }
    }

    #[test]
    fn from_flat_round_trip() {
        let m = SnapshotMatrix::from_flat(2, vec![c(1.0), c(2.0), c(3.0), c(4.0)]);
        assert_eq!(m.n_rows(), 2);
        assert_eq!(m.row(1), &[c(3.0), c(4.0)]);
        assert_eq!(SnapshotView::from_flat(2, m.as_slice()).n_rows(), 2);
    }

    #[test]
    #[should_panic(expected = "whole number of rows")]
    fn from_flat_rejects_partial_rows() {
        let _ = SnapshotMatrix::from_flat(2, vec![c(1.0)]);
    }

    #[test]
    fn empty_matrix_yields_no_rows() {
        let m = SnapshotMatrix::default();
        assert_eq!(m.rows().count(), 0);
        assert_eq!(m.view().rows().count(), 0);
        assert!(m.last_row().is_none());
    }
}

//! Discrete Fourier transforms.
//!
//! WiForce's sensing algorithm (paper §3.3, Eq. 1–3) takes an FFT *across
//! channel snapshots* to isolate the tag's switching harmonics ("artificial
//! Doppler") from static multipath, and the OFDM reader needs FFTs across
//! subcarriers. Snapshot group sizes are powers of two in our pipeline, but
//! calibration sweeps produce arbitrary lengths, so we provide:
//!
//! * [`FftPlan`] — a planned transform with precomputed bit-reversal and
//!   twiddle tables (and a cached Bluestein chirp/b-spectrum for
//!   non-power-of-two lengths), allocation-free in steady state.
//! * [`fft`] / [`ifft`] — any length: radix-2 when `n` is a power of two,
//!   Bluestein's algorithm otherwise. Backed by a per-thread plan cache
//!   ([`with_plan`]), so repeated same-length transforms reuse tables.
//! * [`goertzel`] — single-bin DFT at an arbitrary (even fractional)
//!   normalized frequency; this is how the pipeline cheaply evaluates the
//!   spectrum exactly at `fs` and `4·fs` without a full transform.
//! * [`goertzel_columns`] — batched multi-bin Goertzel over the columns of
//!   a row-major snapshot matrix in a single sequential pass.
//! * [`dft_naive`] — O(n²) reference used by the test-suite oracle.
//!
//! Conventions: forward transform `X[k] = Σ_n x[n]·e^{-j2πkn/N}` (no
//! normalization), inverse divides by `N`, matching NumPy/Matlab.

use crate::complex::Complex;
use crate::TAU;
use std::cell::RefCell;
use std::collections::BTreeMap;

/// Returns `true` if `n` is a power of two (and nonzero).
#[inline]
pub fn is_power_of_two(n: usize) -> bool {
    n != 0 && (n & (n - 1)) == 0
}

/// Next power of two `>= n` (with `next_pow2(0) == 1`).
#[inline]
pub fn next_pow2(n: usize) -> usize {
    n.next_power_of_two().max(1)
}

/// In-place radix-2 decimation-in-time FFT.
///
/// # Panics
/// Panics if `buf.len()` is not a power of two. Use [`fft`] for general
/// lengths.
pub fn fft_radix2_inplace(buf: &mut [Complex]) {
    let n = buf.len();
    assert!(
        is_power_of_two(n),
        "radix-2 FFT requires power-of-two length, got {n}"
    );
    if n <= 1 {
        return;
    }

    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if j > i {
            buf.swap(i, j);
        }
    }

    // Butterflies.
    let mut len = 2;
    while len <= n {
        let ang = -TAU / len as f64;
        let wlen = Complex::cis(ang);
        for chunk in buf.chunks_mut(len) {
            let mut w = Complex::ONE;
            let half = len / 2;
            for i in 0..half {
                let u = chunk[i];
                let v = chunk[i + half] * w;
                chunk[i] = u + v;
                chunk[i + half] = u - v;
                w *= wlen;
            }
        }
        len <<= 1;
    }
}

/// Precomputed bit-reversal permutation and per-stage twiddle tables for a
/// power-of-two length.
///
/// The twiddles are generated with the same phasor recurrence as
/// [`fft_radix2_inplace`] (per stage: `w ← w·e^{-j2π/len}` starting from
/// 1), so a planned transform is bit-identical to the direct one.
#[derive(Debug, Clone)]
struct Radix2Tables {
    n: usize,
    /// For each index, its bit-reversed partner.
    bitrev: Vec<u32>,
    /// Twiddles of all stages, flattened: stage `len` (2, 4, …, n)
    /// contributes `len/2` entries, totalling `n - 1`.
    twiddles: Vec<Complex>,
}

impl Radix2Tables {
    fn new(n: usize) -> Self {
        assert!(
            is_power_of_two(n),
            "radix-2 plan requires power-of-two length, got {n}"
        );
        let bits = n.trailing_zeros();
        let bitrev = (0..n)
            .map(|i| (i.reverse_bits() >> (usize::BITS - bits.max(1))) as u32)
            .collect();
        let mut twiddles = Vec::with_capacity(n.saturating_sub(1));
        let mut len = 2;
        while len <= n {
            let wlen = Complex::cis(-TAU / len as f64);
            let mut w = Complex::ONE;
            for _ in 0..len / 2 {
                twiddles.push(w);
                w *= wlen;
            }
            len <<= 1;
        }
        Radix2Tables {
            n,
            bitrev,
            twiddles,
        }
    }

    /// In-place forward radix-2 FFT using the precomputed tables.
    fn run(&self, buf: &mut [Complex]) {
        let n = self.n;
        debug_assert_eq!(buf.len(), n);
        if n <= 1 {
            return;
        }
        for (i, &j) in self.bitrev.iter().enumerate() {
            let j = j as usize;
            if j > i {
                buf.swap(i, j);
            }
        }
        let mut len = 2;
        let mut stage_off = 0;
        while len <= n {
            let half = len / 2;
            let tw = &self.twiddles[stage_off..stage_off + half];
            for chunk in buf.chunks_mut(len) {
                let (lo, hi) = chunk.split_at_mut(half);
                for ((u, v), &w) in lo.iter_mut().zip(hi.iter_mut()).zip(tw) {
                    let a = *u;
                    let b = *v * w;
                    *u = a + b;
                    *v = a - b;
                }
            }
            stage_off += half;
            len <<= 1;
        }
    }
}

/// Cached state for Bluestein's algorithm at one (non-power-of-two) length.
#[derive(Debug, Clone)]
struct BluesteinPlan {
    /// Forward chirp `e^{-jπk²/n}`, length `n`.
    chirp: Vec<Complex>,
    /// FFT of the convolution kernel, length `m`.
    bspec: Vec<Complex>,
    /// Reusable length-`m` convolution workspace.
    scratch: Vec<Complex>,
    /// Radix-2 tables for the padded length `m`.
    tables: Radix2Tables,
}

/// A planned DFT of one fixed length.
///
/// Precomputes everything the transform needs — bit-reversal permutation,
/// twiddle tables, and for non-power-of-two lengths the Bluestein chirp,
/// kernel spectrum and convolution workspace — so repeated transforms do
/// no allocation and no trigonometry. Power-of-two plans are bit-identical
/// to [`fft_radix2_inplace`]; Bluestein plans are bit-identical to the
/// unplanned [`fft`] path.
///
/// Transforms take `&mut self` because Bluestein plans reuse an internal
/// workspace. For an ad-hoc cached plan see [`with_plan`].
#[derive(Debug, Clone)]
pub struct FftPlan {
    n: usize,
    /// Tables for length `n` itself (power of two) …
    pow2: Option<Radix2Tables>,
    /// … or the Bluestein machinery for awkward lengths.
    bluestein: Option<Box<BluesteinPlan>>,
    /// Reusable split re/im workspace for the row-vectorized transforms.
    rows_scratch: Vec<f64>,
}

impl FftPlan {
    /// Plans a DFT of length `n` (`n ≥ 1`).
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "cannot plan a zero-length FFT");
        if is_power_of_two(n) {
            FftPlan {
                n,
                pow2: Some(Radix2Tables::new(n)),
                bluestein: None,
                rows_scratch: Vec::new(),
            }
        } else {
            // chirp[k] = e^{-jπk²/n}; k² mod 2n avoids large-angle error
            let chirp: Vec<Complex> = (0..n)
                .map(|k| {
                    let kk = (k as u128 * k as u128) % (2 * n as u128);
                    Complex::cis(-crate::PI * kk as f64 / n as f64)
                })
                .collect();
            let m = next_pow2(2 * n - 1);
            let tables = Radix2Tables::new(m);
            let mut b = vec![Complex::ZERO; m];
            b[0] = chirp[0].conj();
            for k in 1..n {
                let c = chirp[k].conj();
                b[k] = c;
                b[m - k] = c;
            }
            tables.run(&mut b);
            FftPlan {
                n,
                pow2: None,
                bluestein: Some(Box::new(BluesteinPlan {
                    chirp,
                    bspec: b,
                    scratch: vec![Complex::ZERO; m],
                    tables,
                })),
                rows_scratch: Vec::new(),
            }
        }
    }

    /// The planned transform length.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always `false`: plans are at least length 1.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Forward DFT in place.
    ///
    /// # Panics
    /// Panics if `buf.len()` differs from the planned length.
    pub fn forward_inplace(&mut self, buf: &mut [Complex]) {
        assert_eq!(buf.len(), self.n, "buffer length does not match plan");
        if let Some(tables) = &self.pow2 {
            tables.run(buf);
            return;
        }
        let bs = self
            .bluestein
            .as_mut()
            .expect("non-pow2 plan has Bluestein state");
        let n = self.n;
        let m = bs.scratch.len();
        for (slot, (&x, &c)) in bs.scratch.iter_mut().zip(buf.iter().zip(&bs.chirp)) {
            *slot = x * c;
        }
        bs.scratch[n..].fill(Complex::ZERO);
        bs.tables.run(&mut bs.scratch);
        for (a, &b) in bs.scratch.iter_mut().zip(&bs.bspec) {
            *a *= b;
        }
        bs.scratch.iter_mut().for_each(|z| *z = z.conj());
        bs.tables.run(&mut bs.scratch);
        let scale = 1.0 / m as f64;
        for (out, (&a, &c)) in buf.iter_mut().zip(bs.scratch.iter().zip(&bs.chirp)) {
            *out = a.conj().scale(scale) * c;
        }
    }

    /// Inverse DFT in place, normalized by `1/N`.
    ///
    /// # Panics
    /// Panics if `buf.len()` differs from the planned length.
    pub fn inverse_inplace(&mut self, buf: &mut [Complex]) {
        assert_eq!(buf.len(), self.n, "buffer length does not match plan");
        // IFFT(x) = conj(FFT(conj(x))) / N
        buf.iter_mut().for_each(|z| *z = z.conj());
        self.forward_inplace(buf);
        let scale = 1.0 / self.n as f64;
        buf.iter_mut().for_each(|z| *z = z.conj().scale(scale));
    }

    /// Forward DFT of every length-`n` row of `plane` in place.
    ///
    /// Power-of-two plans run all rows through one invocation of the
    /// row-vectorized [`crate::kernels::fft_pow2_rows`] kernel, whose
    /// per-row arithmetic is the exact butterfly sequence of
    /// [`Self::forward_inplace`] — so each row comes out bit-identical
    /// to a row-at-a-time transform (pinned by tests below). Other
    /// lengths fall back to per-row Bluestein transforms.
    ///
    /// # Panics
    /// Panics if `plane.len() != rows * self.len()`.
    pub fn forward_rows_inplace(&mut self, plane: &mut [Complex], rows: usize) {
        assert_eq!(
            plane.len(),
            rows * self.n,
            "plane must hold exactly `rows` rows of the planned length"
        );
        if let Some(tables) = &self.pow2 {
            crate::kernels::fft_pow2_rows(
                plane,
                self.n,
                &tables.bitrev,
                &tables.twiddles,
                &mut self.rows_scratch,
            );
            return;
        }
        for row in plane.chunks_exact_mut(self.n) {
            self.forward_inplace(row);
        }
    }

    /// Inverse DFT of every length-`n` row of `plane` in place,
    /// normalized by `1/N`. The conjugate–forward–conjugate/scale
    /// elementwise wrapper of [`Self::inverse_inplace`] around
    /// [`Self::forward_rows_inplace`], so per-row results are
    /// bit-identical to row-at-a-time inverse transforms.
    ///
    /// # Panics
    /// Panics if `plane.len() != rows * self.len()`.
    pub fn inverse_rows_inplace(&mut self, plane: &mut [Complex], rows: usize) {
        assert_eq!(
            plane.len(),
            rows * self.n,
            "plane must hold exactly `rows` rows of the planned length"
        );
        plane.iter_mut().for_each(|z| *z = z.conj());
        self.forward_rows_inplace(plane, rows);
        let scale = 1.0 / self.n as f64;
        plane.iter_mut().for_each(|z| *z = z.conj().scale(scale));
    }

    /// Forward DFT into a fresh vector.
    pub fn forward(&mut self, x: &[Complex]) -> Vec<Complex> {
        let mut buf = x.to_vec();
        self.forward_inplace(&mut buf);
        buf
    }

    /// Inverse DFT into a fresh vector.
    pub fn inverse(&mut self, x: &[Complex]) -> Vec<Complex> {
        let mut buf = x.to_vec();
        self.inverse_inplace(&mut buf);
        buf
    }
}

thread_local! {
    /// Per-thread plan cache backing [`with_plan`] (and thereby [`fft`] /
    /// [`ifft`]). Keyed by length; plans are small (O(n) complex values).
    static PLAN_CACHE: RefCell<BTreeMap<usize, FftPlan>> =
        const { RefCell::new(BTreeMap::new()) };
}

/// Runs `f` with a cached [`FftPlan`] of length `n`, creating (and then
/// caching) the plan on first use. The plan is temporarily removed from
/// the cache while `f` runs, so nested `with_plan` calls are fine.
pub fn with_plan<T>(n: usize, f: impl FnOnce(&mut FftPlan) -> T) -> T {
    PLAN_CACHE.with(|cache| {
        let mut plan = cache
            .borrow_mut()
            .remove(&n)
            .unwrap_or_else(|| FftPlan::new(n));
        let out = f(&mut plan);
        cache.borrow_mut().insert(n, plan);
        out
    })
}

/// Forward DFT of arbitrary length (radix-2 fast path, Bluestein
/// otherwise), using the per-thread plan cache.
pub fn fft(x: &[Complex]) -> Vec<Complex> {
    if x.is_empty() {
        return Vec::new();
    }
    with_plan(x.len(), |p| p.forward(x))
}

/// Inverse DFT of arbitrary length, normalized by `1/N`, using the
/// per-thread plan cache.
pub fn ifft(x: &[Complex]) -> Vec<Complex> {
    if x.is_empty() {
        return Vec::new();
    }
    with_plan(x.len(), |p| p.inverse(x))
}

/// Naive O(n²) DFT used as a correctness oracle in tests.
pub fn dft_naive(x: &[Complex]) -> Vec<Complex> {
    let n = x.len();
    (0..n)
        .map(|k| {
            (0..n)
                .map(|i| x[i] * Complex::cis(-TAU * (k * i) as f64 / n as f64))
                .sum()
        })
        .collect()
}

/// Goertzel evaluation of the DTFT of `x` at normalized frequency
/// `f_norm = f / f_sample` (cycles per sample, may be fractional):
/// `X(f) = Σ_n x[n]·e^{-j2π f_norm n}`.
///
/// This is exactly WiForce's Eq. (1) for one analysis frequency, and is what
/// the pipeline uses to read the `fs` and `4fs` harmonic bins without paying
/// for a full FFT per subcarrier.
pub fn goertzel(x: &[Complex], f_norm: f64) -> Complex {
    // Direct complex accumulation with recurrence phasor; numerically robust
    // for the modest n (<= a few thousand) used per phase group.
    let w = Complex::cis(-TAU * f_norm);
    let mut phase = Complex::ONE;
    let mut acc = Complex::ZERO;
    for &xn in x {
        acc += xn * phase;
        phase *= w;
    }
    acc
}

/// Batched multi-bin Goertzel over the columns of a row-major matrix.
///
/// `data` holds `n_rows × n_cols` samples (row major, as in
/// [`crate::snapshots::SnapshotMatrix`]); column `k` is the time series of
/// subcarrier `k`. The returned `out[j][k]` equals
/// `goertzel(column_k - offset_k, f_norms[j])`, with `offset_k` taken from
/// `col_offsets` (or zero when `None`).
///
/// Instead of gathering each column and running [`goertzel`] per bin —
/// `n_cols × f_norms.len()` strided passes — this walks the matrix **once**
/// in memory order, advancing one shared phase recurrence per row and
/// accumulating every (bin, column) pair on the way through. Because the
/// per-column operations (addition order, phasor recurrence) are exactly
/// those of the per-column evaluation, the results are bit-identical to
/// it, just sequential in memory.
///
/// # Panics
/// Panics if `data.len()` is not a multiple of `n_cols`, or if
/// `col_offsets` is present with a length other than `n_cols`.
pub fn goertzel_columns(
    data: &[Complex],
    n_cols: usize,
    f_norms: &[f64],
    col_offsets: Option<&[Complex]>,
) -> Vec<Vec<Complex>> {
    assert!(n_cols > 0, "matrix must have at least one column");
    assert_eq!(data.len() % n_cols, 0, "data is not a whole number of rows");
    if let Some(off) = col_offsets {
        assert_eq!(off.len(), n_cols, "offset length must match column count");
    }
    let ws: Vec<Complex> = f_norms.iter().map(|&f| Complex::cis(-TAU * f)).collect();
    let mut phases = vec![Complex::ONE; ws.len()];
    let mut out = vec![vec![Complex::ZERO; n_cols]; ws.len()];
    for row in data.chunks_exact(n_cols) {
        // One dispatched row pass per line: each acc[j][k] still receives
        // exactly one add per row, so the result is bit-identical to the
        // per-column formulation this replaces.
        match col_offsets {
            Some(off) => {
                for (acc, &phase) in out.iter_mut().zip(&phases) {
                    crate::kernels::cmac_sub_scaled(acc, row, off, phase);
                }
            }
            None => {
                for (acc, &phase) in out.iter_mut().zip(&phases) {
                    crate::kernels::cmac_scaled(acc, row, phase);
                }
            }
        }
        for (phase, &w) in phases.iter_mut().zip(&ws) {
            *phase *= w;
        }
    }
    out
}

/// Swaps the two halves of a spectrum so the zero bin sits in the middle
/// (like `fftshift`). For odd lengths the extra element goes to the first
/// half after shifting, matching NumPy.
pub fn fftshift<T: Clone>(x: &[T]) -> Vec<T> {
    let n = x.len();
    let half = n.div_ceil(2);
    let mut out = Vec::with_capacity(n);
    out.extend_from_slice(&x[half..]);
    out.extend_from_slice(&x[..half]);
    out
}

/// Frequency (Hz) of FFT bin `k` for length `n` and sample rate `fs_hz`,
/// mapping the upper half to negative frequencies.
pub fn bin_frequency(k: usize, n: usize, fs_hz: f64) -> f64 {
    assert!(k < n);
    let kk = if k <= n / 2 {
        k as f64
    } else {
        k as f64 - n as f64
    };
    kk * fs_hz / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_spectra_close(a: &[Complex], b: &[Complex], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (*x - *y).abs() < tol,
                "bin {i}: {x:?} vs {y:?} (diff {})",
                (*x - *y).abs()
            );
        }
    }

    fn impulse(n: usize, at: usize) -> Vec<Complex> {
        let mut v = vec![Complex::ZERO; n];
        v[at] = Complex::ONE;
        v
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let x = impulse(8, 0);
        let s = fft(&x);
        for z in s {
            assert!((z - Complex::ONE).abs() < 1e-12);
        }
    }

    #[test]
    fn fft_of_shifted_impulse_is_phase_ramp() {
        let x = impulse(16, 3);
        let s = fft(&x);
        for (k, z) in s.iter().enumerate() {
            let expect = Complex::cis(-TAU * 3.0 * k as f64 / 16.0);
            assert!((*z - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn radix2_matches_naive() {
        let x: Vec<Complex> = (0..32)
            .map(|i| Complex::new((i as f64 * 0.7).sin(), (i as f64 * 1.3).cos()))
            .collect();
        assert_spectra_close(&fft(&x), &dft_naive(&x), 1e-9);
    }

    #[test]
    fn bluestein_matches_naive_for_awkward_lengths() {
        for n in [3usize, 5, 6, 7, 12, 17, 30, 97] {
            let x: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64 * 0.31).cos(), (i as f64 * 0.17).sin()))
                .collect();
            assert_spectra_close(&fft(&x), &dft_naive(&x), 1e-8);
        }
    }

    #[test]
    fn ifft_inverts_fft_all_lengths() {
        for n in [1usize, 2, 4, 5, 8, 9, 16, 21, 64, 100] {
            let x: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64).sin(), (i as f64 * 0.5).cos()))
                .collect();
            let back = ifft(&fft(&x));
            assert_spectra_close(&back, &x, 1e-9);
        }
    }

    #[test]
    fn parseval_energy_preserved() {
        let x: Vec<Complex> = (0..64)
            .map(|i| Complex::new((i as f64 * 0.2).sin(), 0.0))
            .collect();
        let time_energy: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let s = fft(&x);
        let freq_energy: f64 = s.iter().map(|z| z.norm_sqr()).sum::<f64>() / 64.0;
        assert!((time_energy - freq_energy).abs() < 1e-9 * time_energy.max(1.0));
    }

    #[test]
    fn goertzel_matches_fft_bin() {
        let n = 128;
        let x: Vec<Complex> = (0..n)
            .map(|i| Complex::cis(TAU * 7.0 * i as f64 / n as f64) * 2.5)
            .collect();
        let s = fft(&x);
        for k in [0usize, 1, 7, 64, 127] {
            let g = goertzel(&x, k as f64 / n as f64);
            assert!((g - s[k]).abs() < 1e-8, "bin {k}");
        }
    }

    #[test]
    fn goertzel_reads_tone_phase() {
        // A tone at normalized frequency f with initial phase φ shows up in
        // the Goertzel bin with phase φ — the property the harmonic reader
        // relies on to extract sensor phases.
        let n = 500;
        let f = 0.031; // not an integer bin of n
        let phi = 1.01;
        let x: Vec<Complex> = (0..n)
            .map(|i| Complex::cis(TAU * f * i as f64 + phi))
            .collect();
        let g = goertzel(&x, f);
        assert!((g.arg() - phi).abs() < 1e-9);
        assert!((g.abs() - n as f64).abs() < 1e-6);
    }

    #[test]
    fn fftshift_even_odd() {
        assert_eq!(fftshift(&[0, 1, 2, 3]), vec![2, 3, 0, 1]);
        assert_eq!(fftshift(&[0, 1, 2, 3, 4]), vec![3, 4, 0, 1, 2]);
    }

    #[test]
    fn bin_frequency_wraps_negative() {
        assert_eq!(bin_frequency(0, 8, 8000.0), 0.0);
        assert_eq!(bin_frequency(1, 8, 8000.0), 1000.0);
        assert_eq!(bin_frequency(4, 8, 8000.0), 4000.0);
        assert_eq!(bin_frequency(5, 8, 8000.0), -3000.0);
        assert_eq!(bin_frequency(7, 8, 8000.0), -1000.0);
    }

    #[test]
    fn empty_input_ok() {
        assert!(fft(&[]).is_empty());
        assert!(ifft(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn radix2_rejects_non_power_of_two() {
        let mut x = vec![Complex::ZERO; 6];
        fft_radix2_inplace(&mut x);
    }

    fn chirp_signal(n: usize) -> Vec<Complex> {
        (0..n)
            .map(|i| Complex::new((i as f64 * 0.7).sin(), (i as f64 * 1.3).cos()))
            .collect()
    }

    #[test]
    fn planned_pow2_is_bit_identical_to_direct() {
        for n in [1usize, 2, 8, 64, 1024] {
            let x = chirp_signal(n);
            let mut direct = x.clone();
            fft_radix2_inplace(&mut direct);
            let mut plan = FftPlan::new(n);
            let mut planned = x.clone();
            plan.forward_inplace(&mut planned);
            assert_eq!(planned, direct, "n = {n}");
        }
    }

    #[test]
    fn planned_matches_naive_all_lengths() {
        for n in [3usize, 5, 7, 12, 17, 30, 64, 97, 625] {
            let x = chirp_signal(n);
            let mut plan = FftPlan::new(n);
            assert_spectra_close(&plan.forward(&x), &dft_naive(&x), 1e-7 * n as f64);
        }
    }

    #[test]
    fn planned_inverse_round_trips() {
        for n in [2usize, 5, 8, 21, 64, 100, 625] {
            let x = chirp_signal(n);
            let mut plan = FftPlan::new(n);
            let spec = plan.forward(&x);
            let back = plan.inverse(&spec);
            assert_spectra_close(&back, &x, 1e-9);
        }
    }

    #[test]
    fn plan_is_reusable_without_state_leak() {
        // two consecutive transforms through one plan must agree with two
        // fresh plans (the Bluestein scratch must not leak between calls)
        let x = chirp_signal(625);
        let y: Vec<Complex> = x.iter().map(|z| *z * 0.3 + Complex::I).collect();
        let mut plan = FftPlan::new(625);
        let first = plan.forward(&x);
        let second = plan.forward(&y);
        assert_eq!(first, FftPlan::new(625).forward(&x));
        assert_eq!(second, FftPlan::new(625).forward(&y));
    }

    #[test]
    fn with_plan_caches_and_nests() {
        let x = chirp_signal(48);
        let direct = FftPlan::new(48).forward(&x);
        // nested with_plan calls (different and same lengths) must work
        let out = with_plan(48, |outer| {
            let inner = with_plan(16, |p| p.forward(&x[..16]));
            assert_eq!(inner.len(), 16);
            let again = with_plan(48, |p| p.forward(&x));
            assert_eq!(again, direct);
            outer.forward(&x)
        });
        assert_eq!(out, direct);
    }

    #[test]
    fn forward_rows_is_bit_identical_to_per_row() {
        for n in [1usize, 2, 8, 64] {
            for rows in [0usize, 1, 3, 8, 64, 100] {
                let plane: Vec<Complex> = (0..rows * n)
                    .map(|i| Complex::new((i as f64 * 0.37).sin(), (i as f64 * 0.23).cos()))
                    .collect();
                let mut wide = plane.clone();
                FftPlan::new(n).forward_rows_inplace(&mut wide, rows);
                let mut scalar = plane;
                let mut plan = FftPlan::new(n);
                for row in scalar.chunks_exact_mut(n) {
                    plan.forward_inplace(row);
                }
                for (i, (a, b)) in wide.iter().zip(&scalar).enumerate() {
                    assert_eq!(a.re.to_bits(), b.re.to_bits(), "n={n} rows={rows} re@{i}");
                    assert_eq!(a.im.to_bits(), b.im.to_bits(), "n={n} rows={rows} im@{i}");
                }
            }
        }
    }

    #[test]
    fn inverse_rows_is_bit_identical_to_per_row() {
        for (n, rows) in [(8usize, 5usize), (64, 17), (64, 64)] {
            let plane: Vec<Complex> = (0..rows * n)
                .map(|i| Complex::new((i as f64 * 0.11).cos(), (i as f64 * 0.41).sin()))
                .collect();
            let mut wide = plane.clone();
            FftPlan::new(n).inverse_rows_inplace(&mut wide, rows);
            let mut scalar = plane;
            let mut plan = FftPlan::new(n);
            for row in scalar.chunks_exact_mut(n) {
                plan.inverse_inplace(row);
            }
            for (i, (a, b)) in wide.iter().zip(&scalar).enumerate() {
                assert_eq!(a.re.to_bits(), b.re.to_bits(), "n={n} rows={rows} re@{i}");
                assert_eq!(a.im.to_bits(), b.im.to_bits(), "n={n} rows={rows} im@{i}");
            }
        }
    }

    #[test]
    fn forward_rows_bluestein_fallback_matches_per_row() {
        let (n, rows) = (12usize, 7usize);
        let plane: Vec<Complex> = (0..rows * n)
            .map(|i| Complex::new((i as f64 * 0.19).sin(), (i as f64 * 0.31).cos()))
            .collect();
        let mut wide = plane.clone();
        FftPlan::new(n).forward_rows_inplace(&mut wide, rows);
        let mut scalar = plane;
        let mut plan = FftPlan::new(n);
        for row in scalar.chunks_exact_mut(n) {
            plan.forward_inplace(row);
        }
        assert_eq!(wide, scalar);
    }

    #[test]
    #[should_panic(expected = "rows of the planned length")]
    fn forward_rows_rejects_ragged_plane() {
        let mut buf = vec![Complex::ZERO; 10];
        FftPlan::new(8).forward_rows_inplace(&mut buf, 2);
    }

    #[test]
    #[should_panic(expected = "does not match plan")]
    fn plan_rejects_wrong_length() {
        let mut plan = FftPlan::new(8);
        let mut buf = vec![Complex::ZERO; 7];
        plan.forward_inplace(&mut buf);
    }

    #[test]
    fn goertzel_columns_matches_per_column() {
        // 50 rows × 7 columns, two analysis bins; must be *bit-identical*
        // to gathering each column and running plain goertzel
        let n_rows = 50;
        let n_cols = 7;
        let data: Vec<Complex> = (0..n_rows * n_cols)
            .map(|i| Complex::new((i as f64 * 0.13).sin(), (i as f64 * 0.29).cos()))
            .collect();
        let f_norms = [0.0576, 0.2304];
        let batched = goertzel_columns(&data, n_cols, &f_norms, None);
        for k in 0..n_cols {
            let col: Vec<Complex> = (0..n_rows).map(|n| data[n * n_cols + k]).collect();
            for (j, &f) in f_norms.iter().enumerate() {
                assert_eq!(batched[j][k], goertzel(&col, f), "bin {j} col {k}");
            }
        }
    }

    #[test]
    fn goertzel_columns_subtracts_offsets_bit_identically() {
        let n_rows = 40;
        let n_cols = 5;
        let data: Vec<Complex> = (0..n_rows * n_cols)
            .map(|i| Complex::new((i as f64 * 0.07).cos(), (i as f64 * 0.11).sin()))
            .collect();
        // per-column means, like the harmonic extractor's mean subtraction
        let mut means = vec![Complex::ZERO; n_cols];
        for row in data.chunks_exact(n_cols) {
            for (m, &x) in means.iter_mut().zip(row) {
                *m += x;
            }
        }
        means
            .iter_mut()
            .for_each(|m| *m = m.scale(1.0 / n_rows as f64));
        let f_norms = [0.031];
        let batched = goertzel_columns(&data, n_cols, &f_norms, Some(&means));
        for k in 0..n_cols {
            let col: Vec<Complex> = (0..n_rows)
                .map(|n| data[n * n_cols + k] - means[k])
                .collect();
            assert_eq!(batched[0][k], goertzel(&col, f_norms[0]), "col {k}");
        }
    }

    #[test]
    fn goertzel_columns_empty_rows() {
        let out = goertzel_columns(&[], 4, &[0.1, 0.2], None);
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|b| b.iter().all(|z| *z == Complex::ZERO)));
    }
}

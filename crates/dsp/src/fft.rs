//! Discrete Fourier transforms.
//!
//! WiForce's sensing algorithm (paper §3.3, Eq. 1–3) takes an FFT *across
//! channel snapshots* to isolate the tag's switching harmonics ("artificial
//! Doppler") from static multipath, and the OFDM reader needs FFTs across
//! subcarriers. Snapshot group sizes are powers of two in our pipeline, but
//! calibration sweeps produce arbitrary lengths, so we provide:
//!
//! * [`fft`] / [`ifft`] — any length: radix-2 when `n` is a power of two,
//!   Bluestein's algorithm otherwise.
//! * [`goertzel`] — single-bin DFT at an arbitrary (even fractional)
//!   normalized frequency; this is how the pipeline cheaply evaluates the
//!   spectrum exactly at `fs` and `4·fs` without a full transform.
//! * [`dft_naive`] — O(n²) reference used by the test-suite oracle.
//!
//! Conventions: forward transform `X[k] = Σ_n x[n]·e^{-j2πkn/N}` (no
//! normalization), inverse divides by `N`, matching NumPy/Matlab.

use crate::complex::Complex;
use crate::TAU;

/// Returns `true` if `n` is a power of two (and nonzero).
#[inline]
pub fn is_power_of_two(n: usize) -> bool {
    n != 0 && (n & (n - 1)) == 0
}

/// Next power of two `>= n` (with `next_pow2(0) == 1`).
#[inline]
pub fn next_pow2(n: usize) -> usize {
    n.next_power_of_two().max(1)
}

/// In-place radix-2 decimation-in-time FFT.
///
/// # Panics
/// Panics if `buf.len()` is not a power of two. Use [`fft`] for general
/// lengths.
pub fn fft_radix2_inplace(buf: &mut [Complex]) {
    let n = buf.len();
    assert!(is_power_of_two(n), "radix-2 FFT requires power-of-two length, got {n}");
    if n <= 1 {
        return;
    }

    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if j > i {
            buf.swap(i, j);
        }
    }

    // Butterflies.
    let mut len = 2;
    while len <= n {
        let ang = -TAU / len as f64;
        let wlen = Complex::cis(ang);
        for chunk in buf.chunks_mut(len) {
            let mut w = Complex::ONE;
            let half = len / 2;
            for i in 0..half {
                let u = chunk[i];
                let v = chunk[i + half] * w;
                chunk[i] = u + v;
                chunk[i + half] = u - v;
                w *= wlen;
            }
        }
        len <<= 1;
    }
}

/// Forward DFT of arbitrary length (radix-2 fast path, Bluestein otherwise).
pub fn fft(x: &[Complex]) -> Vec<Complex> {
    let n = x.len();
    if n == 0 {
        return Vec::new();
    }
    if is_power_of_two(n) {
        let mut buf = x.to_vec();
        fft_radix2_inplace(&mut buf);
        buf
    } else {
        bluestein(x, false)
    }
}

/// Inverse DFT of arbitrary length, normalized by `1/N`.
pub fn ifft(x: &[Complex]) -> Vec<Complex> {
    let n = x.len();
    if n == 0 {
        return Vec::new();
    }
    let mut out = if is_power_of_two(n) {
        // IFFT(x) = conj(FFT(conj(x))) / N
        let mut buf: Vec<Complex> = x.iter().map(|z| z.conj()).collect();
        fft_radix2_inplace(&mut buf);
        buf.iter_mut().for_each(|z| *z = z.conj());
        buf
    } else {
        bluestein(x, true)
    };
    let scale = 1.0 / n as f64;
    out.iter_mut().for_each(|z| *z = z.scale(scale));
    out
}

/// Bluestein's chirp-z algorithm: DFT of arbitrary length via a
/// power-of-two-length circular convolution.
fn bluestein(x: &[Complex], inverse: bool) -> Vec<Complex> {
    let n = x.len();
    let sign = if inverse { 1.0 } else { -1.0 };
    // chirp[k] = e^{sign·jπk²/n}; use k² mod 2n to avoid large-angle
    // precision loss.
    let chirp: Vec<Complex> = (0..n)
        .map(|k| {
            let kk = (k as u128 * k as u128) % (2 * n as u128);
            Complex::cis(sign * crate::PI * kk as f64 / n as f64)
        })
        .collect();

    let m = next_pow2(2 * n - 1);
    let mut a = vec![Complex::ZERO; m];
    for k in 0..n {
        a[k] = x[k] * chirp[k];
    }
    let mut b = vec![Complex::ZERO; m];
    b[0] = chirp[0].conj();
    for k in 1..n {
        let c = chirp[k].conj();
        b[k] = c;
        b[m - k] = c;
    }

    fft_radix2_inplace(&mut a);
    fft_radix2_inplace(&mut b);
    for i in 0..m {
        a[i] *= b[i];
    }
    // inverse power-of-two FFT of a
    a.iter_mut().for_each(|z| *z = z.conj());
    fft_radix2_inplace(&mut a);
    let scale = 1.0 / m as f64;
    (0..n).map(|k| a[k].conj().scale(scale) * chirp[k]).collect()
}

/// Naive O(n²) DFT used as a correctness oracle in tests.
pub fn dft_naive(x: &[Complex]) -> Vec<Complex> {
    let n = x.len();
    (0..n)
        .map(|k| {
            (0..n)
                .map(|i| x[i] * Complex::cis(-TAU * (k * i) as f64 / n as f64))
                .sum()
        })
        .collect()
}

/// Goertzel evaluation of the DTFT of `x` at normalized frequency
/// `f_norm = f / f_sample` (cycles per sample, may be fractional):
/// `X(f) = Σ_n x[n]·e^{-j2π f_norm n}`.
///
/// This is exactly WiForce's Eq. (1) for one analysis frequency, and is what
/// the pipeline uses to read the `fs` and `4fs` harmonic bins without paying
/// for a full FFT per subcarrier.
pub fn goertzel(x: &[Complex], f_norm: f64) -> Complex {
    // Direct complex accumulation with recurrence phasor; numerically robust
    // for the modest n (<= a few thousand) used per phase group.
    let w = Complex::cis(-TAU * f_norm);
    let mut phase = Complex::ONE;
    let mut acc = Complex::ZERO;
    for &xn in x {
        acc += xn * phase;
        phase *= w;
    }
    acc
}

/// Swaps the two halves of a spectrum so the zero bin sits in the middle
/// (like `fftshift`). For odd lengths the extra element goes to the first
/// half after shifting, matching NumPy.
pub fn fftshift<T: Clone>(x: &[T]) -> Vec<T> {
    let n = x.len();
    let half = n.div_ceil(2);
    let mut out = Vec::with_capacity(n);
    out.extend_from_slice(&x[half..]);
    out.extend_from_slice(&x[..half]);
    out
}

/// Frequency (Hz) of FFT bin `k` for length `n` and sample rate `fs_hz`,
/// mapping the upper half to negative frequencies.
pub fn bin_frequency(k: usize, n: usize, fs_hz: f64) -> f64 {
    assert!(k < n);
    let kk = if k <= n / 2 { k as f64 } else { k as f64 - n as f64 };
    kk * fs_hz / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_spectra_close(a: &[Complex], b: &[Complex], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (*x - *y).abs() < tol,
                "bin {i}: {x:?} vs {y:?} (diff {})",
                (*x - *y).abs()
            );
        }
    }

    fn impulse(n: usize, at: usize) -> Vec<Complex> {
        let mut v = vec![Complex::ZERO; n];
        v[at] = Complex::ONE;
        v
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let x = impulse(8, 0);
        let s = fft(&x);
        for z in s {
            assert!((z - Complex::ONE).abs() < 1e-12);
        }
    }

    #[test]
    fn fft_of_shifted_impulse_is_phase_ramp() {
        let x = impulse(16, 3);
        let s = fft(&x);
        for (k, z) in s.iter().enumerate() {
            let expect = Complex::cis(-TAU * 3.0 * k as f64 / 16.0);
            assert!((*z - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn radix2_matches_naive() {
        let x: Vec<Complex> = (0..32)
            .map(|i| Complex::new((i as f64 * 0.7).sin(), (i as f64 * 1.3).cos()))
            .collect();
        assert_spectra_close(&fft(&x), &dft_naive(&x), 1e-9);
    }

    #[test]
    fn bluestein_matches_naive_for_awkward_lengths() {
        for n in [3usize, 5, 6, 7, 12, 17, 30, 97] {
            let x: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64 * 0.31).cos(), (i as f64 * 0.17).sin()))
                .collect();
            assert_spectra_close(&fft(&x), &dft_naive(&x), 1e-8);
        }
    }

    #[test]
    fn ifft_inverts_fft_all_lengths() {
        for n in [1usize, 2, 4, 5, 8, 9, 16, 21, 64, 100] {
            let x: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64).sin(), (i as f64 * 0.5).cos()))
                .collect();
            let back = ifft(&fft(&x));
            assert_spectra_close(&back, &x, 1e-9);
        }
    }

    #[test]
    fn parseval_energy_preserved() {
        let x: Vec<Complex> = (0..64)
            .map(|i| Complex::new((i as f64 * 0.2).sin(), 0.0))
            .collect();
        let time_energy: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let s = fft(&x);
        let freq_energy: f64 = s.iter().map(|z| z.norm_sqr()).sum::<f64>() / 64.0;
        assert!((time_energy - freq_energy).abs() < 1e-9 * time_energy.max(1.0));
    }

    #[test]
    fn goertzel_matches_fft_bin() {
        let n = 128;
        let x: Vec<Complex> = (0..n)
            .map(|i| Complex::cis(TAU * 7.0 * i as f64 / n as f64) * 2.5)
            .collect();
        let s = fft(&x);
        for k in [0usize, 1, 7, 64, 127] {
            let g = goertzel(&x, k as f64 / n as f64);
            assert!((g - s[k]).abs() < 1e-8, "bin {k}");
        }
    }

    #[test]
    fn goertzel_reads_tone_phase() {
        // A tone at normalized frequency f with initial phase φ shows up in
        // the Goertzel bin with phase φ — the property the harmonic reader
        // relies on to extract sensor phases.
        let n = 500;
        let f = 0.031; // not an integer bin of n
        let phi = 1.01;
        let x: Vec<Complex> = (0..n).map(|i| Complex::cis(TAU * f * i as f64 + phi)).collect();
        let g = goertzel(&x, f);
        assert!((g.arg() - phi).abs() < 1e-9);
        assert!((g.abs() - n as f64).abs() < 1e-6);
    }

    #[test]
    fn fftshift_even_odd() {
        assert_eq!(fftshift(&[0, 1, 2, 3]), vec![2, 3, 0, 1]);
        assert_eq!(fftshift(&[0, 1, 2, 3, 4]), vec![3, 4, 0, 1, 2]);
    }

    #[test]
    fn bin_frequency_wraps_negative() {
        assert_eq!(bin_frequency(0, 8, 8000.0), 0.0);
        assert_eq!(bin_frequency(1, 8, 8000.0), 1000.0);
        assert_eq!(bin_frequency(4, 8, 8000.0), 4000.0);
        assert_eq!(bin_frequency(5, 8, 8000.0), -3000.0);
        assert_eq!(bin_frequency(7, 8, 8000.0), -1000.0);
    }

    #[test]
    fn empty_input_ok() {
        assert!(fft(&[]).is_empty());
        assert!(ifft(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn radix2_rejects_non_power_of_two() {
        let mut x = vec![Complex::ZERO; 6];
        fft_radix2_inplace(&mut x);
    }
}

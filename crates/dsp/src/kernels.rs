//! Runtime-dispatched SIMD kernels for the pipeline's inner loops.
//!
//! Every hot per-sample loop in the simulator — Box–Muller noise fill,
//! complex multiply-accumulate (Goertzel row passes, tag-response
//! synthesis, preamble repeat averaging), phase wrapping, window
//! application, ADC quantization — funnels through this module. Each
//! kernel is written once as an explicitly chunked, autovectorization-
//! friendly scalar body; `#[target_feature]` wrappers re-instantiate the
//! *same Rust code* with AVX2 / AVX-512F (x86-64) or NEON (aarch64)
//! enabled, so LLVM may only vectorize it in semantics-preserving ways:
//! no FMA contraction, no reassociation, identical rounding. The runtime
//! [`backend`] dispatch therefore never changes results — a simulation
//! reproduces bit-for-bit whichever path the CPU takes, which the
//! property tests in this module pin down.
//!
//! Setting the `WIFORCE_FORCE_SCALAR` environment variable (to anything
//! but `""`/`"0"`) before first use forces the scalar bodies, keeping the
//! fallback path exercised in CI and giving a ground truth to diff
//! against when debugging a vector unit.

use crate::Complex;
use std::sync::OnceLock;

/// Which instantiation of the kernel bodies the runtime dispatch picked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Portable scalar bodies (also the `WIFORCE_FORCE_SCALAR` override).
    Scalar,
    /// x86-64 AVX2 instantiation.
    Avx2,
    /// x86-64 AVX-512 (F+DQ+VL) instantiation.
    Avx512,
    /// aarch64 NEON instantiation.
    Neon,
}

impl Backend {
    /// Short lowercase name (`"scalar"`, `"avx2"`, `"avx512"`, `"neon"`).
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Avx2 => "avx2",
            Backend::Avx512 => "avx512",
            Backend::Neon => "neon",
        }
    }
}

/// Names of every dispatched kernel, for health-report introspection.
pub const KERNEL_NAMES: &[&str] = &[
    "philox_normals",
    "philox_normals_rows",
    "box_muller_normals",
    "cmac_scaled",
    "cmac_sub_scaled",
    "synth_truth",
    "accumulate_state",
    "blend_states",
    "accumulate_noisy",
    "accumulate_noisy_rows",
    "eq_reorder_rows",
    "fft_pow2_rows",
    "wrap_phases",
    "apply_window",
    "quantize_complex",
];

fn detect(force_scalar: bool) -> Backend {
    if force_scalar {
        return Backend::Scalar;
    }
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("avx512dq")
            && std::arch::is_x86_feature_detected!("avx512vl")
        {
            return Backend::Avx512;
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            return Backend::Avx2;
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        if std::arch::is_aarch64_feature_detected!("neon") {
            return Backend::Neon;
        }
    }
    Backend::Scalar
}

static BACKEND: OnceLock<Backend> = OnceLock::new();

/// The backend the dispatch table resolved to (decided once per process:
/// `WIFORCE_FORCE_SCALAR` override first, then CPUID/NEON detection,
/// scalar fallback).
pub fn backend() -> Backend {
    *BACKEND.get_or_init(|| {
        let force =
            std::env::var_os("WIFORCE_FORCE_SCALAR").is_some_and(|v| !v.is_empty() && v != "0");
        detect(force)
    })
}

/// `true` when the scalar override environment variable took effect.
pub fn forced_scalar() -> bool {
    backend() == Backend::Scalar && detect(false) != Backend::Scalar
}

/// The dispatched kernel set: `(kernel name, backend name)` per kernel.
/// All kernels share one backend decision; the pairs exist so health
/// reports can enumerate exactly what ran.
pub fn active_kernels() -> Vec<(&'static str, &'static str)> {
    let b = backend().name();
    KERNEL_NAMES.iter().map(|&k| (k, b)).collect()
}

/// Declares one dispatched kernel: a shared `#[inline(always)]` body,
/// per-ISA `#[target_feature]` instantiations of that same body, and the
/// public entry point that routes through [`backend`].
macro_rules! simd_kernel {
    (
        $(#[$doc:meta])*
        pub fn $name:ident($($arg:ident: $ty:ty),* $(,)?)
            = $body:ident / $avx2:ident / $avx512:ident / $neon:ident
    ) => {
        #[cfg(target_arch = "x86_64")]
        #[target_feature(enable = "avx2")]
        fn $avx2($($arg: $ty),*) {
            $body($($arg),*)
        }

        #[cfg(target_arch = "x86_64")]
        #[target_feature(enable = "avx512f,avx512dq,avx512vl")]
        fn $avx512($($arg: $ty),*) {
            $body($($arg),*)
        }

        #[cfg(target_arch = "aarch64")]
        #[target_feature(enable = "neon")]
        fn $neon($($arg: $ty),*) {
            $body($($arg),*)
        }

        $(#[$doc])*
        pub fn $name($($arg: $ty),*) {
            match backend() {
                // Safety: each arm was gated on runtime detection of the
                // exact feature its wrapper enables.
                #[cfg(target_arch = "x86_64")]
                Backend::Avx2 => unsafe { $avx2($($arg),*) },
                #[cfg(target_arch = "x86_64")]
                Backend::Avx512 => unsafe { $avx512($($arg),*) },
                #[cfg(target_arch = "aarch64")]
                Backend::Neon => unsafe { $neon($($arg),*) },
                _ => $body($($arg),*),
            }
        }
    };
}

// ---------------------------------------------------------------------
// Counter-based (Philox) noise fill
// ---------------------------------------------------------------------

#[inline(always)]
fn philox_normals_body(key: [u32; 2], ctr_hi: [u32; 3], lane0: u32, out: &mut [f64]) {
    const SCALE: f64 = 1.0 / (1u64 << 53) as f64;
    for (i, o) in out.iter_mut().enumerate() {
        let lane = lane0.wrapping_add(i as u32);
        let b = crate::rng::philox4x32([lane, ctr_hi[0], ctr_hi[1], ctr_hi[2]], key);
        let a = (u64::from(b[1]) << 32) | u64::from(b[0]);
        let c = (u64::from(b[3]) << 32) | u64::from(b[2]);
        // u1 ∈ (0, 1] (strictly positive without a redraw loop, so the
        // body stays branch-free and vectorizable); u2 ∈ [0, 1).
        let u1 = ((a >> 11) + 1) as f64 * SCALE;
        let u2 = (c >> 11) as f64 * SCALE;
        *o = crate::fastmath::box_muller(u1, u2);
    }
}

simd_kernel! {
    /// Fills `out` with standard normals drawn from the Philox 4x32-10
    /// counter stream at `(key, ctr_hi, lane0 + i)`: one counter block
    /// yields the two 53-bit uniforms of one Box–Muller sample, so
    /// `out[i]` is a pure function of its coordinates — independent of
    /// call order, chunking, and thread count. Bit-identical to the
    /// scalar [`crate::rng::philox_normal_at`] per element.
    pub fn philox_normals(key: [u32; 2], ctr_hi: [u32; 3], lane0: u32, out: &mut [f64])
        = philox_normals_body / philox_normals_avx2
        / philox_normals_avx512 / philox_normals_neon
}

#[inline(always)]
fn philox_normals_rows_body(
    key: [u32; 2],
    grp_dom: [u32; 2],
    snap0: u32,
    lanes: usize,
    out: &mut [f64],
) {
    const SCALE: f64 = 1.0 / (1u64 << 53) as f64;
    if lanes == 0 {
        return;
    }
    for (r, row) in out.chunks_exact_mut(lanes).enumerate() {
        let snap = snap0.wrapping_add(r as u32);
        for (i, o) in row.iter_mut().enumerate() {
            let b = crate::rng::philox4x32([i as u32, snap, grp_dom[0], grp_dom[1]], key);
            let a = (u64::from(b[1]) << 32) | u64::from(b[0]);
            let c = (u64::from(b[3]) << 32) | u64::from(b[2]);
            let u1 = ((a >> 11) + 1) as f64 * SCALE;
            let u2 = (c >> 11) as f64 * SCALE;
            *o = crate::fastmath::box_muller(u1, u2);
        }
    }
}

simd_kernel! {
    /// Wide (snapshot-major) Philox noise fill: `out` is a plane of
    /// `out.len() / lanes` rows with `lanes` lanes each; row `r` holds
    /// the normals at counter coordinates
    /// `(key, [lane, snap0 + r, grp_dom[0], grp_dom[1]])` for lanes
    /// `0..lanes` — bit-identical per row to a [`philox_normals`] call
    /// with `ctr_hi = [snap0 + r, grp_dom[0], grp_dom[1]]` and
    /// `lane0 = 0`, but filled in one kernel invocation so the vector
    /// unit stays busy across whole snapshot blocks. A trailing partial
    /// row (`out.len() % lanes != 0`) is left untouched.
    pub fn philox_normals_rows(key: [u32; 2], grp_dom: [u32; 2], snap0: u32, lanes: usize, out: &mut [f64])
        = philox_normals_rows_body / philox_normals_rows_avx2
        / philox_normals_rows_avx512 / philox_normals_rows_neon
}

// ---------------------------------------------------------------------
// Box–Muller noise fill
// ---------------------------------------------------------------------

#[inline(always)]
fn box_muller_normals_body(u1s: &[f64], u2s: &[f64], out: &mut [f64]) {
    for ((o, &u1), &u2) in out.iter_mut().zip(u1s).zip(u2s) {
        *o = crate::fastmath::box_muller(u1, u2);
    }
}

simd_kernel! {
    /// Transforms Box–Muller uniform pairs into standard normals:
    /// `out[i] = √(−2 ln u1s[i]) · cos(2π u2s[i])`, bit-identical to the
    /// scalar [`crate::fastmath::box_muller`] per element. Every `u1s[i]`
    /// must be positive and normal (see
    /// [`crate::rng::draw_box_muller_uniforms`]). Slices must share one
    /// length (debug-asserted; the zip truncates in release).
    pub fn box_muller_normals(u1s: &[f64], u2s: &[f64], out: &mut [f64])
        = box_muller_normals_body / box_muller_normals_avx2
        / box_muller_normals_avx512 / box_muller_normals_neon
}

// ---------------------------------------------------------------------
// Complex multiply-accumulate family
// ---------------------------------------------------------------------

#[inline(always)]
fn cmac_scaled_body(acc: &mut [Complex], x: &[Complex], s: Complex) {
    for (a, &v) in acc.iter_mut().zip(x) {
        *a += v * s;
    }
}

simd_kernel! {
    /// `acc[i] += x[i] · s` — the offset-free Goertzel row update.
    pub fn cmac_scaled(acc: &mut [Complex], x: &[Complex], s: Complex)
        = cmac_scaled_body / cmac_scaled_avx2 / cmac_scaled_avx512 / cmac_scaled_neon
}

#[inline(always)]
fn cmac_sub_scaled_body(acc: &mut [Complex], x: &[Complex], off: &[Complex], s: Complex) {
    for ((a, &v), &o) in acc.iter_mut().zip(x).zip(off) {
        *a += (v - o) * s;
    }
}

simd_kernel! {
    /// `acc[i] += (x[i] − off[i]) · s` — the mean-removed Goertzel row
    /// update.
    pub fn cmac_sub_scaled(acc: &mut [Complex], x: &[Complex], off: &[Complex], s: Complex)
        = cmac_sub_scaled_body / cmac_sub_scaled_avx2
        / cmac_sub_scaled_avx512 / cmac_sub_scaled_neon
}

#[inline(always)]
fn synth_truth_body(
    out: &mut [Complex],
    statics: &[Complex],
    gains: &[Complex],
    table: &[[Complex; 4]],
    state: usize,
) {
    for (((h, &s), &g), row) in out.iter_mut().zip(statics).zip(gains).zip(table) {
        *h = s + g * row[state];
    }
}

simd_kernel! {
    /// Per-subcarrier channel synthesis for one pure tag state:
    /// `out[k] = statics[k] + gains[k] · table[k][state]`.
    pub fn synth_truth(out: &mut [Complex], statics: &[Complex], gains: &[Complex], table: &[[Complex; 4]], state: usize)
        = synth_truth_body / synth_truth_avx2 / synth_truth_avx512 / synth_truth_neon
}

#[inline(always)]
fn accumulate_state_body(
    acc: &mut [Complex],
    gains: &[Complex],
    table: &[[Complex; 4]],
    state: usize,
) {
    for ((h, &g), row) in acc.iter_mut().zip(gains).zip(table) {
        *h += g * row[state];
    }
}

simd_kernel! {
    /// Adds one tag stream's pure-state backscatter:
    /// `acc[k] += gains[k] · table[k][state]`.
    pub fn accumulate_state(acc: &mut [Complex], gains: &[Complex], table: &[[Complex; 4]], state: usize)
        = accumulate_state_body / accumulate_state_avx2
        / accumulate_state_avx512 / accumulate_state_neon
}

#[inline(always)]
fn blend_states_body(acc: &mut [Complex], gains: &[Complex], table: &[[Complex; 4]], w: &[f64; 4]) {
    for ((h, &g), row) in acc.iter_mut().zip(gains).zip(table) {
        let avg = row[0].scale(w[0]) + row[1].scale(w[1]) + row[2].scale(w[2]) + row[3].scale(w[3]);
        *h += g * avg;
    }
}

simd_kernel! {
    /// Adds one tag stream's backscatter with the four switch states
    /// blended by integration-window weights `w` (summed in state order,
    /// matching the reference evaluation bit-for-bit).
    pub fn blend_states(acc: &mut [Complex], gains: &[Complex], table: &[[Complex; 4]], w: &[f64; 4])
        = blend_states_body / blend_states_avx2 / blend_states_avx512 / blend_states_neon
}

#[inline(always)]
fn accumulate_noisy_body(acc: &mut [Complex], signal: &[Complex], noise_pairs: &[f64], amp: f64) {
    for ((a, &x), g) in acc.iter_mut().zip(signal).zip(noise_pairs.chunks_exact(2)) {
        *a += x + Complex::new(amp * g[0], amp * g[1]);
    }
}

simd_kernel! {
    /// One noisy preamble repeat:
    /// `acc[i] += signal[i] + amp·(noise_pairs[2i] + j·noise_pairs[2i+1])`.
    /// `noise_pairs` holds `2·acc.len()` interleaved standard normals.
    pub fn accumulate_noisy(acc: &mut [Complex], signal: &[Complex], noise_pairs: &[f64], amp: f64)
        = accumulate_noisy_body / accumulate_noisy_avx2
        / accumulate_noisy_avx512 / accumulate_noisy_neon
}

#[inline(always)]
fn accumulate_noisy_rows_body(
    acc: &mut [Complex],
    payloads: &[Complex],
    states: &[u8],
    noise: &[f64],
    amp: f64,
) {
    if states.is_empty() {
        return;
    }
    let n = acc.len() / states.len();
    for ((row, &st), pairs) in acc
        .chunks_exact_mut(n)
        .zip(states)
        .zip(noise.chunks_exact(2 * n))
    {
        let signal = &payloads[usize::from(st) * n..usize::from(st) * n + n];
        for ((a, &x), g) in row.iter_mut().zip(signal).zip(pairs.chunks_exact(2)) {
            *a += x + Complex::new(amp * g[0], amp * g[1]);
        }
    }
}

simd_kernel! {
    /// Wide (snapshot-major) noisy accumulate: `acc` is a plane of
    /// `states.len()` rows of `n = acc.len() / states.len()` bins each,
    /// `payloads` holds the four state payloads back-to-back
    /// (state-major, `4·n` entries), and `noise` carries `2·n`
    /// interleaved standard normals per row. Row `r` receives
    /// `acc[r][i] += payloads[states[r]][i] + amp·(g0 + j·g1)` — the
    /// per-row arithmetic is the exact [`accumulate_noisy`] expression,
    /// so a plane call is bit-identical to row-at-a-time calls.
    pub fn accumulate_noisy_rows(acc: &mut [Complex], payloads: &[Complex], states: &[u8], noise: &[f64], amp: f64)
        = accumulate_noisy_rows_body / accumulate_noisy_rows_avx2
        / accumulate_noisy_rows_avx512 / accumulate_noisy_rows_neon
}

#[inline(always)]
fn eq_reorder_rows_body(out: &mut [Complex], avg: &[Complex], eq: &[Complex]) {
    let n = eq.len();
    if n == 0 {
        return;
    }
    let half = n / 2;
    for (orow, arow) in out.chunks_exact_mut(n).zip(avg.chunks_exact(n)) {
        for (i, slot) in orow.iter_mut().enumerate() {
            let bin = (i + n - half) % n;
            *slot = arow[bin] * eq[bin];
        }
    }
}

simd_kernel! {
    /// Wide equalize + fftshift reorder: for each row pair of the
    /// `out`/`avg` planes (row length `n = eq.len()`),
    /// `out[i] = avg[bin] · eq[bin]` with `bin = (i + n − n/2) mod n` —
    /// the per-element math of the scalar OFDM estimator's final loop,
    /// applied to whole snapshot blocks per invocation.
    pub fn eq_reorder_rows(out: &mut [Complex], avg: &[Complex], eq: &[Complex])
        = eq_reorder_rows_body / eq_reorder_rows_avx2
        / eq_reorder_rows_avx512 / eq_reorder_rows_neon
}

#[inline(always)]
fn fft_pow2_rows_body(
    plane: &mut [Complex],
    n: usize,
    bitrev: &[u32],
    twiddles: &[Complex],
    scratch: &mut Vec<f64>,
) {
    if n <= 1 {
        return;
    }
    let rows = plane.len() / n;
    debug_assert_eq!(plane.len(), rows * n);
    if rows == 0 {
        return;
    }
    if scratch.len() != 2 * n * rows {
        // every slot is overwritten by the transpose below, so the fill
        // value only matters for capacity bookkeeping
        scratch.clear();
        scratch.resize(2 * n * rows, 0.0);
    }
    let (re, im) = scratch.split_at_mut(n * rows);
    // Transpose to position-major split re/im lanes (lane r of position k
    // is row r's bin k), tiled so reads and writes both stay within a few
    // cache lines per tile.
    const TILE: usize = 8;
    for k0 in (0..n).step_by(TILE) {
        let k1 = (k0 + TILE).min(n);
        for r0 in (0..rows).step_by(TILE) {
            let r1 = (r0 + TILE).min(rows);
            for k in k0..k1 {
                let re_lane = &mut re[k * rows + r0..k * rows + r1];
                let im_lane = &mut im[k * rows + r0..k * rows + r1];
                for (r, (o_re, o_im)) in re_lane.iter_mut().zip(im_lane).enumerate() {
                    let z = plane[(r0 + r) * n + k];
                    *o_re = z.re;
                    *o_im = z.im;
                }
            }
        }
    }
    // Bit-reversal as whole-lane block swaps — a pure index permutation
    // moves values untouched, so this is exactly the scalar swap pass.
    for (i, &j) in bitrev.iter().enumerate() {
        let j = j as usize;
        if j > i {
            let (a, b) = re.split_at_mut(j * rows);
            a[i * rows..i * rows + rows].swap_with_slice(&mut b[..rows]);
            let (a, b) = im.split_at_mut(j * rows);
            a[i * rows..i * rows + rows].swap_with_slice(&mut b[..rows]);
        }
    }
    // Butterfly stages in the exact order (and with the exact twiddles) of
    // the scalar planned transform; each lane carries one row, and lanes
    // never mix, so per-row results match the scalar path bit-for-bit.
    let mut len = 2;
    let mut stage_off = 0;
    while len <= n {
        let half = len / 2;
        let tw = &twiddles[stage_off..stage_off + half];
        let mut start = 0;
        while start < n {
            for (i, &w) in tw.iter().enumerate() {
                let lo = (start + i) * rows;
                let hi = lo + half * rows;
                let (re_lo_part, re_hi_part) = re.split_at_mut(hi);
                let (im_lo_part, im_hi_part) = im.split_at_mut(hi);
                let lo_re = &mut re_lo_part[lo..lo + rows];
                let hi_re = &mut re_hi_part[..rows];
                let lo_im = &mut im_lo_part[lo..lo + rows];
                let hi_im = &mut im_hi_part[..rows];
                for r in 0..rows {
                    let br = hi_re[r] * w.re - hi_im[r] * w.im;
                    let bi = hi_re[r] * w.im + hi_im[r] * w.re;
                    let ar = lo_re[r];
                    let ai = lo_im[r];
                    lo_re[r] = ar + br;
                    lo_im[r] = ai + bi;
                    hi_re[r] = ar - br;
                    hi_im[r] = ai - bi;
                }
            }
            start += len;
        }
        stage_off += half;
        len <<= 1;
    }
    for r0 in (0..rows).step_by(TILE) {
        let r1 = (r0 + TILE).min(rows);
        for k0 in (0..n).step_by(TILE) {
            let k1 = (k0 + TILE).min(n);
            for r in r0..r1 {
                let row = &mut plane[r * n..r * n + n];
                for (k, z) in row.iter_mut().enumerate().take(k1).skip(k0) {
                    z.re = re[k * rows + r];
                    z.im = im[k * rows + r];
                }
            }
        }
    }
}

simd_kernel! {
    /// Row-vectorized radix-2 FFT: transforms every length-`n` row of
    /// `plane` (`plane.len() / n` rows) in one invocation. The rows are
    /// transposed into position-major split re/im lanes so every
    /// butterfly touches `rows` contiguous doubles — the vector unit
    /// spans *rows*, not positions — while each lane executes the exact
    /// add/mul sequence of the scalar planned transform
    /// (`FftPlan::forward_inplace`) with the same precomputed `bitrev`
    /// and `twiddles` tables. Per-row results are therefore bit-identical
    /// to row-at-a-time scalar transforms (pinned by fft tests).
    /// `scratch` is caller-owned workspace, resized to `2·n·rows`.
    pub fn fft_pow2_rows(plane: &mut [Complex], n: usize, bitrev: &[u32], twiddles: &[Complex], scratch: &mut Vec<f64>)
        = fft_pow2_rows_body / fft_pow2_rows_avx2
        / fft_pow2_rows_avx512 / fft_pow2_rows_neon
}

// ---------------------------------------------------------------------
// Phase wrap, window application, quantization
// ---------------------------------------------------------------------

#[inline(always)]
fn wrap_phases_body(vals: &mut [f64]) {
    for v in vals.iter_mut() {
        *v = crate::phase::wrap_to_pi(*v);
    }
}

simd_kernel! {
    /// Wraps every element to `(−π, π]` in place (elementwise
    /// [`crate::phase::wrap_to_pi`]).
    pub fn wrap_phases(vals: &mut [f64])
        = wrap_phases_body / wrap_phases_avx2 / wrap_phases_avx512 / wrap_phases_neon
}

#[inline(always)]
fn apply_window_body(frame: &mut [Complex], window: &[f64]) {
    for (z, &w) in frame.iter_mut().zip(window) {
        *z = z.scale(w);
    }
}

simd_kernel! {
    /// Multiplies a complex frame by a real window in place.
    pub fn apply_window(frame: &mut [Complex], window: &[f64])
        = apply_window_body / apply_window_avx2 / apply_window_avx512 / apply_window_neon
}

#[inline(always)]
fn quantize_complex_body(row: &mut [Complex], full_scale: f64, step: f64) {
    for z in row.iter_mut() {
        let re = (z.re.clamp(-full_scale, full_scale) / step).round() * step;
        let im = (z.im.clamp(-full_scale, full_scale) / step).round() * step;
        *z = Complex::new(re, im);
    }
}

simd_kernel! {
    /// Mid-tread uniform quantization of both components to multiples of
    /// `step`, clamped to `±full_scale` — the bulk form of an ADC
    /// transfer curve. Callers pass the same `step = 2·full_scale/levels`
    /// as their scalar reference so results agree bit-for-bit.
    pub fn quantize_complex(row: &mut [Complex], full_scale: f64, step: f64)
        = quantize_complex_body / quantize_complex_avx2
        / quantize_complex_avx512 / quantize_complex_neon
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn complexes(rng: &mut StdRng, n: usize) -> Vec<Complex> {
        (0..n)
            .map(|_| Complex::new(rng.gen::<f64>() * 4.0 - 2.0, rng.gen::<f64>() * 4.0 - 2.0))
            .collect()
    }

    fn table(rng: &mut StdRng, n: usize) -> Vec<[Complex; 4]> {
        (0..n)
            .map(|_| {
                [
                    Complex::new(rng.gen(), rng.gen()),
                    Complex::new(rng.gen(), rng.gen()),
                    Complex::new(rng.gen(), rng.gen()),
                    Complex::new(rng.gen(), rng.gen()),
                ]
            })
            .collect()
    }

    fn assert_bits_eq(a: &[Complex], b: &[Complex]) {
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(x.re.to_bits(), y.re.to_bits(), "re mismatch at {i}");
            assert_eq!(x.im.to_bits(), y.im.to_bits(), "im mismatch at {i}");
        }
    }

    #[test]
    fn backend_is_detected_and_named() {
        let b = backend();
        assert!(!b.name().is_empty());
        let kernels = active_kernels();
        assert_eq!(kernels.len(), KERNEL_NAMES.len());
        assert!(kernels.iter().all(|&(_, back)| back == b.name()));
    }

    #[test]
    fn forced_scalar_detection_prefers_override() {
        assert_eq!(detect(true), Backend::Scalar);
        // with no override, detection picks whatever the CPU supports —
        // on x86-64/aarch64 CI machines that is at least AVX2/NEON, but
        // scalar is a valid answer on anything else
        let _ = detect(false);
    }

    // Every kernel below: dispatched entry point vs scalar body must be
    // bit-identical, at lengths straddling the chunk width.

    #[test]
    fn box_muller_kernel_matches_scalar_bitwise() {
        let mut rng = StdRng::seed_from_u64(1);
        for n in [0, 1, 7, 8, 9, 64, 640, 1013] {
            let u1s: Vec<f64> = (0..n)
                .map(|_| rng.gen::<f64>().max(f64::MIN_POSITIVE))
                .collect();
            let u2s: Vec<f64> = (0..n).map(|_| rng.gen()).collect();
            let mut fast = vec![0.0; n];
            box_muller_normals(&u1s, &u2s, &mut fast);
            for i in 0..n {
                let want = crate::fastmath::box_muller(u1s[i], u2s[i]);
                assert_eq!(fast[i].to_bits(), want.to_bits(), "n={n} i={i}");
            }
        }
    }

    #[test]
    fn philox_kernel_matches_scalar_bitwise() {
        let key = [0xDEAD_BEEF, 0x0123_4567];
        let ctr_hi = [17, 3, 1];
        for n in [0, 1, 7, 8, 9, 64, 128, 1013] {
            let mut fast = vec![0.0; n];
            philox_normals(key, ctr_hi, 5, &mut fast);
            let mut want = vec![0.0; n];
            philox_normals_body(key, ctr_hi, 5, &mut want);
            for i in 0..n {
                assert_eq!(fast[i].to_bits(), want[i].to_bits(), "n={n} i={i}");
                let scalar = crate::rng::philox_normal_at(key, ctr_hi, 5u32.wrapping_add(i as u32));
                assert_eq!(fast[i].to_bits(), scalar.to_bits(), "n={n} i={i} vs scalar");
            }
        }
    }

    #[test]
    fn philox_kernel_is_offset_invariant() {
        // Drawing lanes [0, 64) in one call or two must agree bitwise:
        // each element depends only on its own counter coordinates.
        let key = [1, 2];
        let ctr_hi = [9, 9, 0];
        let mut whole = vec![0.0; 64];
        philox_normals(key, ctr_hi, 0, &mut whole);
        let mut lo = vec![0.0; 24];
        let mut hi = vec![0.0; 40];
        philox_normals(key, ctr_hi, 0, &mut lo);
        philox_normals(key, ctr_hi, 24, &mut hi);
        for (i, w) in whole.iter().enumerate() {
            let part = if i < 24 { lo[i] } else { hi[i - 24] };
            assert_eq!(w.to_bits(), part.to_bits(), "lane {i}");
        }
    }

    #[test]
    fn cmac_kernels_match_scalar_bitwise() {
        let mut rng = StdRng::seed_from_u64(2);
        for n in [1, 5, 8, 64, 127] {
            let x = complexes(&mut rng, n);
            let off = complexes(&mut rng, n);
            let s = Complex::new(rng.gen(), rng.gen());
            let base = complexes(&mut rng, n);

            let mut got = base.clone();
            cmac_scaled(&mut got, &x, s);
            let mut want = base.clone();
            cmac_scaled_body(&mut want, &x, s);
            assert_bits_eq(&got, &want);

            let mut got = base.clone();
            cmac_sub_scaled(&mut got, &x, &off, s);
            let mut want = base.clone();
            cmac_sub_scaled_body(&mut want, &x, &off, s);
            assert_bits_eq(&got, &want);
        }
    }

    #[test]
    fn synthesis_kernels_match_scalar_bitwise() {
        let mut rng = StdRng::seed_from_u64(3);
        for n in [1, 8, 64, 65] {
            let statics = complexes(&mut rng, n);
            let gains = complexes(&mut rng, n);
            let tab = table(&mut rng, n);
            let w = [0.25, 0.125, 0.5, 0.125];
            for state in 0..4 {
                let mut got = vec![Complex::ZERO; n];
                synth_truth(&mut got, &statics, &gains, &tab, state);
                let mut want = vec![Complex::ZERO; n];
                synth_truth_body(&mut want, &statics, &gains, &tab, state);
                assert_bits_eq(&got, &want);

                let mut got = statics.clone();
                accumulate_state(&mut got, &gains, &tab, state);
                let mut want = statics.clone();
                accumulate_state_body(&mut want, &gains, &tab, state);
                assert_bits_eq(&got, &want);
            }
            let mut got = statics.clone();
            blend_states(&mut got, &gains, &tab, &w);
            let mut want = statics.clone();
            blend_states_body(&mut want, &gains, &tab, &w);
            assert_bits_eq(&got, &want);
        }
    }

    #[test]
    fn accumulate_noisy_matches_scalar_bitwise() {
        let mut rng = StdRng::seed_from_u64(4);
        for n in [1, 8, 64, 100] {
            let signal = complexes(&mut rng, n);
            let pairs: Vec<f64> = (0..2 * n).map(|_| rng.gen::<f64>() - 0.5).collect();
            let base = complexes(&mut rng, n);
            let mut got = base.clone();
            accumulate_noisy(&mut got, &signal, &pairs, 0.37);
            let mut want = base.clone();
            accumulate_noisy_body(&mut want, &signal, &pairs, 0.37);
            assert_bits_eq(&got, &want);
        }
    }

    #[test]
    fn philox_rows_kernel_matches_single_row_bitwise() {
        // A plane fill must agree per row with the row-at-a-time kernel
        // and the scalar per-element draw — same counter coordinates.
        let key = [0x5EED_CAFE, 0x89AB_CDEF];
        let grp_dom = [7, 0];
        for (rows, lanes) in [(0usize, 8usize), (1, 1), (3, 7), (4, 128), (9, 33)] {
            let mut plane = vec![0.0; rows * lanes];
            philox_normals_rows(key, grp_dom, 11, lanes, &mut plane);
            let mut want_plane = vec![0.0; rows * lanes];
            philox_normals_rows_body(key, grp_dom, 11, lanes, &mut want_plane);
            for r in 0..rows {
                let snap = 11u32.wrapping_add(r as u32);
                let ctr_hi = [snap, grp_dom[0], grp_dom[1]];
                let mut row = vec![0.0; lanes];
                philox_normals(key, ctr_hi, 0, &mut row);
                for i in 0..lanes {
                    let got = plane[r * lanes + i];
                    assert_eq!(got.to_bits(), want_plane[r * lanes + i].to_bits());
                    assert_eq!(got.to_bits(), row[i].to_bits(), "rows={rows} r={r} i={i}");
                    let scalar = crate::rng::philox_normal_at(key, ctr_hi, i as u32);
                    assert_eq!(got.to_bits(), scalar.to_bits(), "r={r} i={i} vs scalar");
                }
            }
        }
    }

    #[test]
    fn philox_rows_kernel_ignores_partial_tail() {
        let key = [1, 2];
        let mut plane = vec![f64::NAN; 2 * 8 + 3];
        philox_normals_rows(key, [0, 0], 0, 8, &mut plane);
        assert!(plane[..16].iter().all(|v| v.is_finite()));
        assert!(plane[16..].iter().all(|v| v.is_nan()));
    }

    #[test]
    fn accumulate_noisy_rows_matches_scalar_bitwise() {
        let mut rng = StdRng::seed_from_u64(7);
        for (rows, n) in [(1usize, 1usize), (3, 8), (5, 64), (4, 100)] {
            let payloads = complexes(&mut rng, 4 * n);
            let states: Vec<u8> = (0..rows).map(|_| rng.gen::<u8>() % 4).collect();
            let noise: Vec<f64> = (0..2 * n * rows).map(|_| rng.gen::<f64>() - 0.5).collect();
            let base = complexes(&mut rng, n * rows);
            let amp = 0.41;

            let mut got = base.clone();
            accumulate_noisy_rows(&mut got, &payloads, &states, &noise, amp);
            let mut body = base.clone();
            accumulate_noisy_rows_body(&mut body, &payloads, &states, &noise, amp);
            assert_bits_eq(&got, &body);

            // Reference: one accumulate_noisy call per row.
            let mut want = base.clone();
            for r in 0..rows {
                let st = usize::from(states[r]);
                accumulate_noisy_body(
                    &mut want[r * n..(r + 1) * n],
                    &payloads[st * n..st * n + n],
                    &noise[2 * n * r..2 * n * (r + 1)],
                    amp,
                );
            }
            assert_bits_eq(&got, &want);
        }
    }

    #[test]
    fn eq_reorder_rows_matches_reference() {
        let mut rng = StdRng::seed_from_u64(8);
        for (rows, n) in [(1usize, 2usize), (3, 8), (5, 64), (2, 100)] {
            let avg = complexes(&mut rng, rows * n);
            let eq = complexes(&mut rng, n);
            let mut got = vec![Complex::ZERO; rows * n];
            eq_reorder_rows(&mut got, &avg, &eq);
            let mut body = vec![Complex::ZERO; rows * n];
            eq_reorder_rows_body(&mut body, &avg, &eq);
            assert_bits_eq(&got, &body);

            let half = n / 2;
            let mut want = vec![Complex::ZERO; rows * n];
            for r in 0..rows {
                for i in 0..n {
                    let bin = (i + n - half) % n;
                    want[r * n + i] = avg[r * n + bin] * eq[bin];
                }
            }
            assert_bits_eq(&got, &want);
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn wide_isa_instantiations_match_scalar_bitwise() {
        let key = [3, 4];
        let (rows, lanes) = (5usize, 67usize);
        let mut scalar = vec![0.0; rows * lanes];
        philox_normals_rows_body(key, [2, 1], 6, lanes, &mut scalar);
        if std::arch::is_x86_feature_detected!("avx2") {
            let mut v = vec![0.0; rows * lanes];
            // Safety: AVX2 support was just detected.
            unsafe { philox_normals_rows_avx2(key, [2, 1], 6, lanes, &mut v) };
            for (a, b) in v.iter().zip(&scalar) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        if std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("avx512dq")
            && std::arch::is_x86_feature_detected!("avx512vl")
        {
            let mut v = vec![0.0; rows * lanes];
            // Safety: AVX-512 F+DQ+VL support was just detected.
            unsafe { philox_normals_rows_avx512(key, [2, 1], 6, lanes, &mut v) };
            for (a, b) in v.iter().zip(&scalar) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn wrap_window_quantize_match_scalar_bitwise() {
        let mut rng = StdRng::seed_from_u64(5);
        for n in [1, 8, 64, 99] {
            let phases: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() * 50.0 - 25.0).collect();
            let mut got = phases.clone();
            wrap_phases(&mut got);
            let mut want = phases.clone();
            wrap_phases_body(&mut want);
            for (g, w) in got.iter().zip(&want) {
                assert_eq!(g.to_bits(), w.to_bits());
            }

            let frame = complexes(&mut rng, n);
            let win: Vec<f64> = (0..n).map(|_| rng.gen()).collect();
            let mut got = frame.clone();
            apply_window(&mut got, &win);
            let mut want = frame.clone();
            apply_window_body(&mut want, &win);
            assert_bits_eq(&got, &want);

            let row = complexes(&mut rng, n);
            let full_scale = 1.5;
            let step = 2.0 * full_scale / 1024.0;
            let mut got = row.clone();
            quantize_complex(&mut got, full_scale, step);
            let mut want = row.clone();
            quantize_complex_body(&mut want, full_scale, step);
            assert_bits_eq(&got, &want);
        }
    }

    #[test]
    #[ignore = "manual micro-benchmark of the per-ISA instantiations"]
    fn timing_per_isa() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 640;
        let u1s: Vec<f64> = (0..n)
            .map(|_| rng.gen::<f64>().max(f64::MIN_POSITIVE))
            .collect();
        let u2s: Vec<f64> = (0..n).map(|_| rng.gen()).collect();
        let mut out = vec![0.0; n];
        let iters = 20000;
        type FillFn<'a> = &'a mut dyn FnMut(&[f64], &[f64], &mut [f64]);
        let mut time = |f: FillFn| {
            let t = std::time::Instant::now();
            for _ in 0..iters {
                f(&u1s, &u2s, &mut out);
            }
            t.elapsed().as_secs_f64() / iters as f64 * 1e6
        };
        println!("scalar body: {:.2} us", time(&mut box_muller_normals_body));
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2") {
                println!(
                    "avx2: {:.2} us",
                    time(&mut |a, b, o| unsafe { box_muller_normals_avx2(a, b, o) })
                );
            }
            if std::arch::is_x86_feature_detected!("avx512f") {
                println!(
                    "avx512: {:.2} us",
                    time(&mut |a, b, o| unsafe { box_muller_normals_avx512(a, b, o) })
                );
            }
        }
    }

    /// The per-ISA instantiations themselves (not just whatever backend
    /// dispatch picked) must agree with the scalar body on machines that
    /// have the features.
    #[cfg(target_arch = "x86_64")]
    #[test]
    fn isa_instantiations_match_scalar_bitwise() {
        let mut rng = StdRng::seed_from_u64(6);
        let n = 1013;
        let u1s: Vec<f64> = (0..n)
            .map(|_| rng.gen::<f64>().max(f64::MIN_POSITIVE))
            .collect();
        let u2s: Vec<f64> = (0..n).map(|_| rng.gen()).collect();
        let mut scalar = vec![0.0; n];
        box_muller_normals_body(&u1s, &u2s, &mut scalar);
        if std::arch::is_x86_feature_detected!("avx2") {
            let mut v = vec![0.0; n];
            // Safety: AVX2 support was just detected.
            unsafe { box_muller_normals_avx2(&u1s, &u2s, &mut v) };
            assert_eq!(
                v.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                scalar.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            );
        }
        if std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("avx512dq")
            && std::arch::is_x86_feature_detected!("avx512vl")
        {
            let mut v = vec![0.0; n];
            // Safety: AVX-512 F+DQ+VL support was just detected.
            unsafe { box_muller_normals_avx512(&u1s, &u2s, &mut v) };
            assert_eq!(
                v.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                scalar.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            );
        }
    }

    /// Same per-ISA check for the Philox counter kernel: the RNG family
    /// must reproduce bit-for-bit on every vector unit it dispatches to.
    #[cfg(target_arch = "x86_64")]
    #[test]
    fn philox_isa_instantiations_match_scalar_bitwise() {
        let key = [0x9E37_79B9, 0x7F4A_7C15];
        let ctr_hi = [611, 2, 1];
        let n = 1013;
        let mut scalar = vec![0.0; n];
        philox_normals_body(key, ctr_hi, 0, &mut scalar);
        if std::arch::is_x86_feature_detected!("avx2") {
            let mut v = vec![0.0; n];
            // Safety: AVX2 support was just detected.
            unsafe { philox_normals_avx2(key, ctr_hi, 0, &mut v) };
            assert_eq!(
                v.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                scalar.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            );
        }
        if std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("avx512dq")
            && std::arch::is_x86_feature_detected!("avx512vl")
        {
            let mut v = vec![0.0; n];
            // Safety: AVX-512 F+DQ+VL support was just detected.
            unsafe { philox_normals_avx512(key, ctr_hi, 0, &mut v) };
            assert_eq!(
                v.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                scalar.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            );
        }
    }
}

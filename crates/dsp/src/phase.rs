//! Phase arithmetic: wrapping, unwrapping, unit conversions.
//!
//! WiForce ultimately measures *phase jumps* — the differential phase between
//! consecutive phase-groups (paper Eq. 4–5). Accumulating those jumps into a
//! continuous phase-vs-force trajectory requires consistent wrapping and
//! unwrapping, collected here.

use crate::PI;
use crate::TAU;

/// Wraps an angle into `(-π, π]`.
#[inline]
pub fn wrap_to_pi(theta: f64) -> f64 {
    let mut t = (theta + PI).rem_euclid(TAU);
    if t == 0.0 {
        t = TAU; // map the boundary so the result is exactly +π, not -π
    }
    t - PI
}

/// Wraps an angle into `[0, 2π)`.
#[inline]
pub fn wrap_to_tau(theta: f64) -> f64 {
    theta.rem_euclid(TAU)
}

/// Degrees → radians.
#[inline]
pub fn deg_to_rad(deg: f64) -> f64 {
    deg * PI / 180.0
}

/// Radians → degrees.
#[inline]
pub fn rad_to_deg(rad: f64) -> f64 {
    rad * 180.0 / PI
}

/// Unwraps a phase sequence in place: removes jumps larger than π by adding
/// multiples of 2π, producing a continuous trajectory (NumPy `unwrap`
/// semantics).
pub fn unwrap_inplace(phases: &mut [f64]) {
    let mut offset = 0.0;
    let mut prev_raw = match phases.first() {
        Some(&p) => p,
        None => return,
    };
    for p in phases.iter_mut().skip(1) {
        let raw = *p;
        let mut d = raw - prev_raw;
        if d > PI {
            offset -= TAU * ((d + PI) / TAU).floor();
            d = wrap_to_pi(d);
        } else if d < -PI {
            offset += TAU * ((-d + PI) / TAU).floor();
            d = wrap_to_pi(d);
        }
        let _ = d;
        prev_raw = raw;
        *p = raw + offset;
    }
}

/// Returns an unwrapped copy of `phases`.
pub fn unwrap(phases: &[f64]) -> Vec<f64> {
    let mut v = phases.to_vec();
    unwrap_inplace(&mut v);
    v
}

/// Shortest signed angular difference `a - b`, wrapped into `(-π, π]`.
#[inline]
pub fn angle_diff(a: f64, b: f64) -> f64 {
    wrap_to_pi(a - b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrap_to_pi_range() {
        for k in -20..=20 {
            let t = k as f64 * 0.7;
            let w = wrap_to_pi(t);
            assert!(w > -PI - 1e-12 && w <= PI + 1e-12, "{t} -> {w}");
            // same point on the circle
            assert!(((t - w) / TAU).round() * TAU - (t - w) < 1e-9);
        }
    }

    #[test]
    fn wrap_boundary_positive_pi() {
        assert!((wrap_to_pi(PI) - PI).abs() < 1e-12);
        assert!((wrap_to_pi(-PI) - PI).abs() < 1e-12);
        assert!((wrap_to_pi(3.0 * PI) - PI).abs() < 1e-9);
    }

    #[test]
    fn wrap_to_tau_range() {
        assert!((wrap_to_tau(-0.1) - (TAU - 0.1)).abs() < 1e-12);
        assert_eq!(wrap_to_tau(0.0), 0.0);
        assert!((wrap_to_tau(TAU + 0.5) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn deg_rad_round_trip() {
        for d in [-270.0, -90.0, 0.0, 45.0, 180.0, 720.0] {
            assert!((rad_to_deg(deg_to_rad(d)) - d).abs() < 1e-12);
        }
        assert!((deg_to_rad(180.0) - PI).abs() < 1e-15);
    }

    #[test]
    fn unwrap_linear_ramp() {
        // a steadily increasing phase that wraps several times
        let truth: Vec<f64> = (0..100).map(|i| i as f64 * 0.4).collect();
        let wrapped: Vec<f64> = truth.iter().map(|&t| wrap_to_pi(t)).collect();
        let un = unwrap(&wrapped);
        for (u, t) in un.iter().zip(&truth) {
            // unwrap recovers up to a constant offset; ramp starts near 0 so
            // offset should be 0
            assert!((u - t).abs() < 1e-9, "{u} vs {t}");
        }
    }

    #[test]
    fn unwrap_decreasing_ramp() {
        let truth: Vec<f64> = (0..80).map(|i| -(i as f64) * 0.5).collect();
        let wrapped: Vec<f64> = truth.iter().map(|&t| wrap_to_pi(t)).collect();
        let un = unwrap(&wrapped);
        for (u, t) in un.iter().zip(&truth) {
            assert!((u - t).abs() < 1e-9);
        }
    }

    #[test]
    fn unwrap_noop_for_small_steps() {
        let p = vec![0.0, 0.3, 0.1, -0.4, 0.2];
        assert_eq!(unwrap(&p), p);
    }

    #[test]
    fn unwrap_empty_and_single() {
        assert!(unwrap(&[]).is_empty());
        assert_eq!(unwrap(&[1.23]), vec![1.23]);
    }

    #[test]
    fn angle_diff_shortest_path() {
        assert!((angle_diff(0.1, -0.1) - 0.2).abs() < 1e-12);
        assert!((angle_diff(-3.0, 3.0) - (TAU - 6.0)).abs() < 1e-12);
        assert!((angle_diff(3.0, -3.0) + (TAU - 6.0)).abs() < 1e-12);
    }
}

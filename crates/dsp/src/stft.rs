//! Short-time Fourier transform (spectrogram).
//!
//! Used for time-resolved Doppler views of snapshot streams: a force
//! press appearing, a mover sweeping through, a tag's clock drifting —
//! all visible as a waterfall that the single long FFT of
//! `wiforce::spectrum` integrates away.

use crate::complex::Complex;
use crate::fft::fft;
use crate::window::{window, WindowKind};

/// A spectrogram: power per (frame, bin).
#[derive(Debug, Clone)]
pub struct Spectrogram {
    /// Power rows, one per time frame; `rows[t][b]`.
    pub rows: Vec<Vec<f64>>,
    /// Bin frequencies, Hz (non-negative half), ascending.
    pub freqs_hz: Vec<f64>,
    /// Time of each frame's centre, s.
    pub times_s: Vec<f64>,
}

/// Computes the STFT power of a complex sequence sampled at `fs_hz`, with
/// `frame_len` samples per frame (must be ≥ 2; rounded up to a power of
/// two internally), hop `hop` samples, and a Hann window.
///
/// Frames that would run past the end of the input are dropped.
pub fn spectrogram(x: &[Complex], fs_hz: f64, frame_len: usize, hop: usize) -> Spectrogram {
    assert!(frame_len >= 2, "frame_len must be at least 2");
    assert!(hop >= 1, "hop must be at least 1");
    let n_fft = frame_len.next_power_of_two();
    let w = window(WindowKind::Hann, frame_len);
    let n_bins = n_fft / 2;
    let freqs_hz: Vec<f64> = (0..n_bins)
        .map(|b| b as f64 * fs_hz / n_fft as f64)
        .collect();

    let mut rows = Vec::new();
    let mut times_s = Vec::new();
    let mut start = 0usize;
    let mut buf = vec![Complex::ZERO; n_fft];
    while start + frame_len <= x.len() {
        // remove the frame mean (DC clutter) then window
        let mut mean = Complex::ZERO;
        for &v in &x[start..start + frame_len] {
            mean += v;
        }
        mean = mean.scale(1.0 / frame_len as f64);
        for i in 0..frame_len {
            buf[i] = x[start + i] - mean;
        }
        crate::kernels::apply_window(&mut buf[..frame_len], &w);
        buf[frame_len..].iter_mut().for_each(|z| *z = Complex::ZERO);
        let spec = fft(&buf);
        rows.push(spec[..n_bins].iter().map(|z| z.norm_sqr()).collect());
        times_s.push((start + frame_len / 2) as f64 / fs_hz);
        start += hop;
    }
    Spectrogram {
        rows,
        freqs_hz,
        times_s,
    }
}

impl Spectrogram {
    /// Number of time frames.
    pub fn n_frames(&self) -> usize {
        self.rows.len()
    }

    /// The strongest bin's frequency (Hz) in frame `t`.
    pub fn peak_frequency_hz(&self, t: usize) -> f64 {
        let row = &self.rows[t];
        let (b, _) = row
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("NaN"))
            .expect("nonempty row");
        self.freqs_hz[b]
    }

    /// Total power per frame (a time-domain envelope of non-DC activity).
    pub fn frame_power(&self) -> Vec<f64> {
        self.rows.iter().map(|r| r.iter().sum()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TAU;

    #[test]
    fn tracks_a_frequency_step() {
        // 1 kHz tone for the first half, 3 kHz for the second
        let fs = 17_361.0; // the reader's snapshot rate
        let n = 4000;
        let x: Vec<Complex> = (0..n)
            .map(|i| {
                let t = i as f64 / fs;
                let f = if i < n / 2 { 1000.0 } else { 3000.0 };
                Complex::cis(TAU * f * t) + Complex::from_re(0.5) // plus DC clutter
            })
            .collect();
        let sg = spectrogram(&x, fs, 512, 256);
        assert!(sg.n_frames() >= 10);
        let early = sg.peak_frequency_hz(1);
        let late = sg.peak_frequency_hz(sg.n_frames() - 2);
        assert!((early - 1000.0).abs() < 80.0, "{early}");
        assert!((late - 3000.0).abs() < 80.0, "{late}");
    }

    #[test]
    fn dc_is_removed() {
        let fs = 1000.0;
        let x = vec![Complex::from_re(2.0); 1024];
        let sg = spectrogram(&x, fs, 256, 128);
        for p in sg.frame_power() {
            assert!(p < 1e-12, "DC should vanish, got {p}");
        }
    }

    #[test]
    fn envelope_detects_activity_onset() {
        let fs = 1000.0;
        let n = 2000;
        let x: Vec<Complex> = (0..n)
            .map(|i| {
                if i >= n / 2 {
                    Complex::cis(TAU * 100.0 * i as f64 / fs)
                } else {
                    Complex::ZERO
                }
            })
            .collect();
        let sg = spectrogram(&x, fs, 128, 64);
        let env = sg.frame_power();
        let mid = env.len() / 2;
        let quiet = env[..mid - 2].iter().cloned().fold(0.0_f64, f64::max);
        let loud = env[mid + 2..].iter().cloned().fold(0.0_f64, f64::max);
        assert!(loud > 100.0 * quiet.max(1e-12));
    }

    #[test]
    fn frame_geometry() {
        let x = vec![Complex::ZERO; 1000];
        let sg = spectrogram(&x, 1000.0, 100, 50);
        // frames at 0, 50, …, 900 → 19 frames
        assert_eq!(sg.n_frames(), 19);
        assert_eq!(sg.freqs_hz.len(), 64); // next_pow2(100)/2
        assert!((sg.times_s[0] - 0.05).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "hop")]
    fn rejects_zero_hop() {
        let _ = spectrogram(&[Complex::ZERO; 16], 1.0, 4, 0);
    }
}

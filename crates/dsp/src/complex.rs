//! A minimal complex-number type for `f64` baseband arithmetic.
//!
//! The approved dependency set for this reproduction does not include `num`,
//! so we carry our own `Complex`. It is deliberately small: exactly the
//! operations the WiForce pipeline needs (polar construction, conjugation,
//! magnitude/phase, exponentials, the arithmetic operator set) with semantics
//! matching `num_complex::Complex64` where they overlap.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number `re + j·im` with `f64` components.
#[derive(Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity `0 + 0j`.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0j`.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit `0 + 1j`.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from rectangular components.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_re(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Creates a complex number from polar form `r·e^{jθ}`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex::new(r * theta.cos(), r * theta.sin())
    }

    /// Unit phasor `e^{jθ}`.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Complex::from_polar(1.0, theta)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex::new(self.re, -self.im)
    }

    /// Magnitude `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude `|z|²` (cheaper than [`abs`](Self::abs)).
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Principal argument in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Polar decomposition `(r, θ)`.
    #[inline]
    pub fn to_polar(self) -> (f64, f64) {
        (self.abs(), self.arg())
    }

    /// Complex exponential `e^z`.
    #[inline]
    pub fn exp(self) -> Self {
        Complex::from_polar(self.re.exp(), self.im)
    }

    /// Multiplicative inverse `1/z`.
    ///
    /// Returns non-finite components if `z == 0`, mirroring `f64` division.
    #[inline]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        Complex::new(self.re / d, -self.im / d)
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Complex::new(self.re * k, self.im * k)
    }

    /// Principal square root.
    #[inline]
    pub fn sqrt(self) -> Self {
        let (r, theta) = self.to_polar();
        Complex::from_polar(r.sqrt(), theta / 2.0)
    }

    /// `true` if both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl fmt::Debug for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{}j",
            self.re,
            if self.im < 0.0 { "-" } else { "+" },
            self.im.abs()
        )
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<f64> for Complex {
    #[inline]
    fn from(re: f64) -> Self {
        Complex::from_re(re)
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex {
    type Output = Complex;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z/w = z·w⁻¹ is the definition
    fn div(self, rhs: Complex) -> Complex {
        self * rhs.inv()
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, k: f64) -> Complex {
        self.scale(k)
    }
}

impl Mul<Complex> for f64 {
    type Output = Complex;
    #[inline]
    fn mul(self, z: Complex) -> Complex {
        z.scale(self)
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, k: f64) -> Complex {
        Complex::new(self.re / k, self.im / k)
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        *self = *self + rhs;
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        *self = *self - rhs;
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl DivAssign for Complex {
    #[inline]
    fn div_assign(&mut self, rhs: Complex) {
        *self = *self / rhs;
    }
}

impl Sum for Complex {
    fn sum<I: Iterator<Item = Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ZERO, |acc, z| acc + z)
    }
}

impl<'a> Sum<&'a Complex> for Complex {
    fn sum<I: Iterator<Item = &'a Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ZERO, |acc, z| acc + *z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    fn close(a: Complex, b: Complex) -> bool {
        (a - b).abs() < EPS
    }

    #[test]
    fn construction_and_accessors() {
        let z = Complex::new(3.0, -4.0);
        assert_eq!(z.re, 3.0);
        assert_eq!(z.im, -4.0);
        assert_eq!(z.abs(), 5.0);
        assert_eq!(z.norm_sqr(), 25.0);
    }

    #[test]
    fn polar_round_trip() {
        let z = Complex::from_polar(2.0, 0.7);
        let (r, th) = z.to_polar();
        assert!((r - 2.0).abs() < EPS);
        assert!((th - 0.7).abs() < EPS);
    }

    #[test]
    fn cis_is_unit_magnitude() {
        for k in 0..16 {
            let th = k as f64 * 0.41;
            assert!((Complex::cis(th).abs() - 1.0).abs() < EPS);
        }
    }

    #[test]
    fn arithmetic_identities() {
        let a = Complex::new(1.5, -2.25);
        let b = Complex::new(-0.5, 3.0);
        assert!(close(a + b - b, a));
        assert!(close(a * b / b, a));
        assert!(close(a * a.inv(), Complex::ONE));
        assert!(close(-(-a), a));
        assert!(close(a * Complex::ONE, a));
        assert!(close(a + Complex::ZERO, a));
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert!(close(Complex::I * Complex::I, -Complex::ONE));
    }

    #[test]
    fn conj_properties() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(-3.0, 0.5);
        assert!(close((a * b).conj(), a.conj() * b.conj()));
        assert!(((a * a.conj()).re - a.norm_sqr()).abs() < EPS);
        assert!((a * a.conj()).im.abs() < EPS);
    }

    #[test]
    fn conjugate_multiplication_extracts_phase_difference() {
        // The core trick of WiForce's Eq. (4): conj-multiplying two phasors
        // with the same magnitude and a common phase factor leaves only the
        // phase difference.
        let common = Complex::from_polar(0.8, 1.234); // air propagation etc.
        let p1 = common * Complex::cis(0.25);
        let p2 = common * Complex::cis(0.75);
        let d = p2 * p1.conj();
        assert!((d.arg() - 0.5).abs() < EPS);
        assert!((d.abs() - common.norm_sqr()).abs() < EPS);
    }

    #[test]
    fn exp_matches_euler() {
        let z = Complex::new(0.3, 1.1);
        let e = z.exp();
        let expect = Complex::from_polar(0.3f64.exp(), 1.1);
        assert!(close(e, expect));
    }

    #[test]
    fn sqrt_squares_back() {
        let z = Complex::new(-3.0, 4.0);
        let s = z.sqrt();
        assert!(close(s * s, z));
        // principal branch: non-negative real part
        assert!(s.re >= 0.0);
    }

    #[test]
    fn sum_over_iterator() {
        let v = [Complex::new(1.0, 1.0); 4];
        let s: Complex = v.iter().sum();
        assert!(close(s, Complex::new(4.0, 4.0)));
    }

    #[test]
    fn scalar_ops() {
        let z = Complex::new(2.0, -6.0);
        assert!(close(z * 0.5, Complex::new(1.0, -3.0)));
        assert!(close(0.5 * z, Complex::new(1.0, -3.0)));
        assert!(close(z / 2.0, Complex::new(1.0, -3.0)));
    }

    #[test]
    fn display_format() {
        assert_eq!(format!("{}", Complex::new(1.0, -2.0)), "1-2j");
        assert_eq!(format!("{}", Complex::new(-1.5, 0.5)), "-1.5+0.5j");
    }
}

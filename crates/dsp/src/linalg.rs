//! Small dense real matrices: LU solve and linear least squares.
//!
//! The WiForce pipeline only needs modest linear algebra — fitting cubic
//! phase-force models (4×4 normal equations), least-squares channel
//! estimation, and the beam contact solver's banded systems — so this module
//! keeps to a simple row-major `Vec<f64>` matrix with partial-pivot LU.

use std::fmt;
use std::ops::{Index, IndexMut};

/// Errors from linear-algebra routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// The system matrix is singular (or numerically so) at the given pivot.
    Singular {
        /// Pivot column at which elimination failed.
        pivot: usize,
    },
    /// Operand shapes are incompatible.
    ShapeMismatch {
        /// Shape the operation required.
        expected: (usize, usize),
        /// Shape that was supplied.
        got: (usize, usize),
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::Singular { pivot } => {
                write!(f, "matrix is singular at pivot {pivot}")
            }
            LinalgError::ShapeMismatch { expected, got } => {
                write!(f, "shape mismatch: expected {expected:?}, got {got:?}")
            }
        }
    }
}

impl std::error::Error for LinalgError {}

/// A dense row-major matrix of `f64`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            write!(f, "  ")?;
            for c in 0..self.cols {
                write!(f, "{:>12.5} ", self[(r, c)])?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

impl Matrix {
    /// All-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds from a row-major slice of rows.
    ///
    /// # Panics
    /// Panics if rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Builds an `rows x cols` matrix from a generator `f(r, c)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m[(r, c)] = f(r, c);
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |r, c| self[(c, r)])
    }

    /// Matrix product `self * rhs`.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix, LinalgError> {
        if self.cols != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                expected: (self.cols, rhs.cols),
                got: (rhs.rows, rhs.cols),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(r, k)];
                if a == 0.0 {
                    continue;
                }
                for c in 0..rhs.cols {
                    out[(r, c)] += a * rhs[(k, c)];
                }
            }
        }
        Ok(out)
    }

    /// Matrix-vector product.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if self.cols != v.len() {
            return Err(LinalgError::ShapeMismatch {
                expected: (self.cols, 1),
                got: (v.len(), 1),
            });
        }
        Ok((0..self.rows)
            .map(|r| (0..self.cols).map(|c| self[(r, c)] * v[c]).sum())
            .collect())
    }

    /// Solves `self · x = b` with partial-pivot Gaussian elimination.
    ///
    /// `self` must be square; `b.len()` must equal `rows`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let n = self.rows;
        if self.cols != n {
            return Err(LinalgError::ShapeMismatch {
                expected: (n, n),
                got: (n, self.cols),
            });
        }
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                expected: (n, 1),
                got: (b.len(), 1),
            });
        }
        let mut a = self.data.clone();
        let mut x = b.to_vec();

        for col in 0..n {
            // Pivot selection.
            let (mut piv, mut best) = (col, a[col * n + col].abs());
            for r in (col + 1)..n {
                let v = a[r * n + col].abs();
                if v > best {
                    best = v;
                    piv = r;
                }
            }
            if best < 1e-300 {
                return Err(LinalgError::Singular { pivot: col });
            }
            if piv != col {
                for c in 0..n {
                    a.swap(col * n + c, piv * n + c);
                }
                x.swap(col, piv);
            }
            // Eliminate below.
            let inv_p = 1.0 / a[col * n + col];
            for r in (col + 1)..n {
                let factor = a[r * n + col] * inv_p;
                if factor == 0.0 {
                    continue;
                }
                a[r * n + col] = 0.0;
                for c in (col + 1)..n {
                    a[r * n + c] -= factor * a[col * n + c];
                }
                x[r] -= factor * x[col];
            }
        }
        // Back substitution.
        for col in (0..n).rev() {
            let mut acc = x[col];
            for c in (col + 1)..n {
                acc -= a[col * n + c] * x[c];
            }
            x[col] = acc / a[col * n + col];
        }
        Ok(x)
    }

    /// Least-squares solution of the overdetermined system `self · x ≈ b`
    /// via the normal equations `(AᵀA)x = Aᵀb` with Tikhonov damping
    /// `ridge ≥ 0` on the diagonal.
    pub fn lstsq(&self, b: &[f64], ridge: f64) -> Result<Vec<f64>, LinalgError> {
        if b.len() != self.rows {
            return Err(LinalgError::ShapeMismatch {
                expected: (self.rows, 1),
                got: (b.len(), 1),
            });
        }
        let at = self.transpose();
        let mut ata = at.matmul(self)?;
        for i in 0..ata.rows {
            ata[(i, i)] += ridge;
        }
        let atb = at.matvec(b)?;
        ata.solve(&atb)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

/// Solves a symmetric tridiagonal-plus-diagonal-dominant banded system fast.
///
/// `solve_banded` solves `A x = b` where `A` is banded with half-bandwidth
/// `kd` (i.e. `A[i][j] == 0` when `|i-j| > kd`), given in LAPACK-style band
/// storage `band[d][i] = A[i][i+d-kd]` — but to keep the call sites simple we
/// accept a closure returning `A[i][j]`. Gaussian elimination without
/// pivoting (valid for the diagonally dominant systems produced by the beam
/// finite-difference operator).
pub fn solve_banded(
    n: usize,
    kd: usize,
    a: impl Fn(usize, usize) -> f64,
    b: &[f64],
) -> Result<Vec<f64>, LinalgError> {
    assert_eq!(b.len(), n);
    let width = 2 * kd + 1;
    // band[i][d] = A[i][i + d - kd]
    let mut band = vec![0.0; n * width];
    for i in 0..n {
        for d in 0..width {
            let j = i as isize + d as isize - kd as isize;
            if j >= 0 && (j as usize) < n {
                band[i * width + d] = a(i, j as usize);
            }
        }
    }
    let mut x = b.to_vec();
    // Forward elimination.
    for i in 0..n {
        let p = band[i * width + kd];
        if p.abs() < 1e-300 {
            return Err(LinalgError::Singular { pivot: i });
        }
        let inv_p = 1.0 / p;
        for r in (i + 1)..(i + kd + 1).min(n) {
            let off = kd as isize - (r - i) as isize;
            let idx = (r * width) as isize + off;
            let factor = band[idx as usize] * inv_p;
            if factor == 0.0 {
                continue;
            }
            band[idx as usize] = 0.0;
            for c in (i + 1)..(i + kd + 1).min(n) {
                let src = i * width + kd + (c - i);
                let dst = (r * width) as isize + kd as isize - (r as isize - c as isize);
                band[dst as usize] -= factor * band[src];
            }
            x[r] -= factor * x[i];
        }
    }
    // Back substitution.
    for i in (0..n).rev() {
        let mut acc = x[i];
        for c in (i + 1)..(i + kd + 1).min(n) {
            acc -= band[i * width + kd + (c - i)] * x[c];
        }
        x[i] = acc / band[i * width + kd];
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_solve() {
        let id = Matrix::identity(3);
        let b = vec![1.0, -2.0, 3.0];
        assert_eq!(id.solve(&b).unwrap(), b);
    }

    #[test]
    fn known_3x3_solve() {
        let a = Matrix::from_rows(&[
            vec![2.0, 1.0, -1.0],
            vec![-3.0, -1.0, 2.0],
            vec![-2.0, 1.0, 2.0],
        ]);
        let x = a.solve(&[8.0, -11.0, -3.0]).unwrap();
        let expect = [2.0, 3.0, -1.0];
        for (got, want) in x.iter().zip(expect) {
            assert!((got - want).abs() < 1e-12, "{got} vs {want}");
        }
    }

    #[test]
    fn solve_requires_pivoting() {
        // zero on the leading diagonal forces a row swap
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let x = a.solve(&[2.0, 3.0]).unwrap();
        assert_eq!(x, vec![3.0, 2.0]);
    }

    #[test]
    fn singular_detected() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert!(matches!(
            a.solve(&[1.0, 2.0]),
            Err(LinalgError::Singular { .. })
        ));
    }

    #[test]
    fn matmul_matvec_agree() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let v = vec![1.0, 0.0, -1.0];
        let mv = a.matvec(&v).unwrap();
        assert_eq!(mv, vec![-2.0, -2.0]);
        let vm = Matrix::from_rows(&[vec![1.0], vec![0.0], vec![-1.0]]);
        let mm = a.matmul(&vm).unwrap();
        assert_eq!(mm[(0, 0)], -2.0);
        assert_eq!(mm[(1, 0)], -2.0);
    }

    #[test]
    fn shape_mismatch_reported() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            a.matvec(&[1.0, 2.0]),
            Err(LinalgError::ShapeMismatch { .. })
        ));
        assert!(matches!(
            a.solve(&[1.0, 2.0]),
            Err(LinalgError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn lstsq_recovers_exact_solution() {
        // Overdetermined but consistent: y = 2x + 1 sampled at 5 points.
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0];
        let a = Matrix::from_fn(5, 2, |r, c| if c == 0 { 1.0 } else { xs[r] });
        let b: Vec<f64> = xs.iter().map(|x| 2.0 * x + 1.0).collect();
        let sol = a.lstsq(&b, 0.0).unwrap();
        assert!((sol[0] - 1.0).abs() < 1e-10);
        assert!((sol[1] - 2.0).abs() < 1e-10);
    }

    #[test]
    fn lstsq_minimizes_residual_with_noise() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64 / 10.0).collect();
        // y = 3x - 2 with deterministic "noise"
        let b: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| 3.0 * x - 2.0 + 0.01 * ((i * 7 % 11) as f64 - 5.0))
            .collect();
        let a = Matrix::from_fn(xs.len(), 2, |r, c| if c == 0 { 1.0 } else { xs[r] });
        let sol = a.lstsq(&b, 0.0).unwrap();
        assert!((sol[0] + 2.0).abs() < 0.05);
        assert!((sol[1] - 3.0).abs() < 0.02);
    }

    #[test]
    fn banded_matches_dense() {
        // 1-D Laplacian (tridiagonal, diagonally dominant with +4 diag)
        let n = 12;
        let aij = |i: usize, j: usize| -> f64 {
            if i == j {
                4.0
            } else if i.abs_diff(j) == 1 {
                -1.0
            } else {
                0.0
            }
        };
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).sin()).collect();
        let banded = solve_banded(n, 1, aij, &b).unwrap();
        let dense = Matrix::from_fn(n, n, aij).solve(&b).unwrap();
        for (x, y) in banded.iter().zip(&dense) {
            assert!((x - y).abs() < 1e-10);
        }
    }

    #[test]
    fn banded_wider_bandwidth() {
        // pentadiagonal system like the beam 4th-difference operator
        let n = 20;
        let aij = |i: usize, j: usize| -> f64 {
            match i.abs_diff(j) {
                0 => 7.0,
                1 => -4.0 * 0.5,
                2 => 1.0 * 0.25,
                _ => 0.0,
            }
        };
        let b: Vec<f64> = (0..n).map(|i| 1.0 + i as f64).collect();
        let banded = solve_banded(n, 2, aij, &b).unwrap();
        let dense = Matrix::from_fn(n, n, aij).solve(&b).unwrap();
        for (x, y) in banded.iter().zip(&dense) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
    }
}

//! Interpolation on sorted grids.
//!
//! The sensor model is calibrated at five discrete press locations
//! (20/30/40/50/60 mm); estimating at intermediate locations (the paper
//! validates at 55 mm) requires interpolating fitted model parameters across
//! location — done here with linear and monotone-friendly Catmull-Rom
//! interpolation, plus bilinear interpolation for 2-D lookup tables.

use std::fmt;

/// Errors from interpolation routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpError {
    /// Grid has fewer than two points.
    TooFewPoints,
    /// Grid abscissae are not strictly increasing.
    NotSorted,
    /// Grid and value lengths differ.
    LengthMismatch,
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::TooFewPoints => write!(f, "need at least 2 grid points"),
            InterpError::NotSorted => write!(f, "grid must be strictly increasing"),
            InterpError::LengthMismatch => write!(f, "grid and values must have equal length"),
        }
    }
}

impl std::error::Error for InterpError {}

fn validate(xs: &[f64], ys: &[f64]) -> Result<(), InterpError> {
    if xs.len() < 2 {
        return Err(InterpError::TooFewPoints);
    }
    if xs.len() != ys.len() {
        return Err(InterpError::LengthMismatch);
    }
    if xs.windows(2).any(|w| w[0] >= w[1]) {
        return Err(InterpError::NotSorted);
    }
    Ok(())
}

/// Index of the left grid point of the interval containing `x` (clamped to
/// the outermost intervals for extrapolation).
fn bracket(xs: &[f64], x: f64) -> usize {
    let n = xs.len();
    if x <= xs[0] {
        return 0;
    }
    if x >= xs[n - 1] {
        return n - 2;
    }
    // partition_point gives first index with xs[i] > x
    xs.partition_point(|&g| g <= x).saturating_sub(1).min(n - 2)
}

/// Piecewise-linear interpolation of `(xs, ys)` at `x`, linearly
/// extrapolating beyond the grid ends.
pub fn lerp(xs: &[f64], ys: &[f64], x: f64) -> Result<f64, InterpError> {
    validate(xs, ys)?;
    let i = bracket(xs, x);
    let t = (x - xs[i]) / (xs[i + 1] - xs[i]);
    Ok(ys[i] * (1.0 - t) + ys[i + 1] * t)
}

/// Catmull-Rom cubic interpolation at `x` (C¹-smooth through the samples),
/// clamping to linear behaviour beyond the grid.
pub fn catmull_rom(xs: &[f64], ys: &[f64], x: f64) -> Result<f64, InterpError> {
    validate(xs, ys)?;
    let n = xs.len();
    if x <= xs[0] || x >= xs[n - 1] || n < 3 {
        return lerp(xs, ys, x);
    }
    let i = bracket(xs, x);
    // Tangents via finite differences (non-uniform grid aware).
    let tangent = |k: usize| -> f64 {
        if k == 0 {
            (ys[1] - ys[0]) / (xs[1] - xs[0])
        } else if k == n - 1 {
            (ys[n - 1] - ys[n - 2]) / (xs[n - 1] - xs[n - 2])
        } else {
            (ys[k + 1] - ys[k - 1]) / (xs[k + 1] - xs[k - 1])
        }
    };
    let h = xs[i + 1] - xs[i];
    let t = (x - xs[i]) / h;
    let (m0, m1) = (tangent(i) * h, tangent(i + 1) * h);
    let t2 = t * t;
    let t3 = t2 * t;
    Ok((2.0 * t3 - 3.0 * t2 + 1.0) * ys[i]
        + (t3 - 2.0 * t2 + t) * m0
        + (-2.0 * t3 + 3.0 * t2) * ys[i + 1]
        + (t3 - t2) * m1)
}

/// A precomputed Catmull-Rom evaluation stencil at one fixed abscissa.
///
/// Catmull-Rom interpolation is linear in the sample values: for a fixed
/// grid `xs` and query `x`, the result is a dot product of at most four
/// weights with `ys[base..]`. Callers that evaluate many different value
/// rows at the same abscissae (e.g. the sensor-model inversion's grid
/// scan, which sweeps force rows under fixed location columns) build the
/// stencil once per abscissa and pay four multiply-adds per evaluation
/// instead of a full bracket + tangent computation.
#[derive(Debug, Clone, Copy)]
pub struct CatmullStencil {
    /// First sample index the taps apply to.
    base: usize,
    /// Tap weights for `ys[base..base + 4]`; trailing taps that fall off
    /// the grid carry zero weight.
    w: [f64; 4],
}

impl CatmullStencil {
    /// Applies the stencil to one row of sample values (`ys` must be the
    /// same length as the grid the stencil was built for).
    #[inline]
    pub fn eval(&self, ys: &[f64]) -> f64 {
        let mut acc = 0.0;
        for (w, y) in self.w.iter().zip(&ys[self.base..]) {
            acc += w * y;
        }
        acc
    }
}

/// Builds the [`CatmullStencil`] for query point `x` on grid `xs`,
/// matching [`catmull_rom`]'s piecewise definition (including the linear
/// clamp beyond the grid ends) up to floating-point reassociation.
pub fn catmull_stencil(xs: &[f64], x: f64) -> Result<CatmullStencil, InterpError> {
    if xs.len() < 2 {
        return Err(InterpError::TooFewPoints);
    }
    if xs.windows(2).any(|w| w[0] >= w[1]) {
        return Err(InterpError::NotSorted);
    }
    let n = xs.len();
    let i = bracket(xs, x);
    if x <= xs[0] || x >= xs[n - 1] || n < 3 {
        let t = (x - xs[i]) / (xs[i + 1] - xs[i]);
        return Ok(CatmullStencil {
            base: i,
            w: [1.0 - t, t, 0.0, 0.0],
        });
    }
    let h = xs[i + 1] - xs[i];
    let t = (x - xs[i]) / h;
    let t2 = t * t;
    let t3 = t2 * t;
    let b0 = 2.0 * t3 - 3.0 * t2 + 1.0;
    let b1 = t3 - 2.0 * t2 + t;
    let b2 = -2.0 * t3 + 3.0 * t2;
    let b3 = t3 - t2;
    // accumulate per-sample weights of b0·ys[i] + b1·h·tangent(i) +
    // b2·ys[i+1] + b3·h·tangent(i+1), where each tangent is a finite
    // difference of two samples
    let base = if i == 0 { 0 } else { i - 1 };
    let mut w = [0.0f64; 4];
    {
        let mut add = |idx: usize, v: f64| w[idx - base] += v;
        add(i, b0);
        add(i + 1, b2);
        if i == 0 {
            let c = b1 * h / (xs[1] - xs[0]);
            add(1, c);
            add(0, -c);
        } else {
            let c = b1 * h / (xs[i + 1] - xs[i - 1]);
            add(i + 1, c);
            add(i - 1, -c);
        }
        if i + 1 == n - 1 {
            let c = b3 * h / (xs[n - 1] - xs[n - 2]);
            add(n - 1, c);
            add(n - 2, -c);
        } else {
            let c = b3 * h / (xs[i + 2] - xs[i]);
            add(i + 2, c);
            add(i, -c);
        }
    }
    Ok(CatmullStencil { base, w })
}

/// Bilinear interpolation on a rectangular grid.
///
/// `values[i][j]` corresponds to `(xs[i], ys[j])`. Clamps outside the grid.
pub fn bilinear(
    xs: &[f64],
    ys: &[f64],
    values: &[Vec<f64>],
    x: f64,
    y: f64,
) -> Result<f64, InterpError> {
    if xs.len() < 2 || ys.len() < 2 {
        return Err(InterpError::TooFewPoints);
    }
    if values.len() != xs.len() || values.iter().any(|row| row.len() != ys.len()) {
        return Err(InterpError::LengthMismatch);
    }
    if xs.windows(2).any(|w| w[0] >= w[1]) || ys.windows(2).any(|w| w[0] >= w[1]) {
        return Err(InterpError::NotSorted);
    }
    let i = bracket(xs, x);
    let j = bracket(ys, y);
    let tx = ((x - xs[i]) / (xs[i + 1] - xs[i])).clamp(0.0, 1.0);
    let ty = ((y - ys[j]) / (ys[j + 1] - ys[j])).clamp(0.0, 1.0);
    let v00 = values[i][j];
    let v10 = values[i + 1][j];
    let v01 = values[i][j + 1];
    let v11 = values[i + 1][j + 1];
    Ok(v00 * (1.0 - tx) * (1.0 - ty)
        + v10 * tx * (1.0 - ty)
        + v01 * (1.0 - tx) * ty
        + v11 * tx * ty)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stencil_matches_catmull_rom_everywhere() {
        // non-uniform grid, queries inside every interval, at knots, and
        // beyond both ends (the linear-clamp region)
        let xs = [0.0, 0.7, 1.5, 3.1, 4.0];
        let rows = [
            [1.0, -2.0, 0.5, 3.0, -1.0],
            [0.0, 1.0, 4.0, 9.0, 16.0],
            [5.0, 5.0, 5.0, 5.0, 5.0],
        ];
        for q in 0..200 {
            let x = -0.5 + 5.0 * q as f64 / 199.0;
            let st = catmull_stencil(&xs, x).unwrap();
            for ys in &rows {
                let direct = catmull_rom(&xs, ys, x).unwrap();
                let via = st.eval(ys);
                assert!(
                    (direct - via).abs() <= 1e-12 * (1.0 + direct.abs()),
                    "x={x}: direct={direct} stencil={via}"
                );
            }
        }
    }

    #[test]
    fn stencil_handles_tiny_grids() {
        // n == 2 → pure lerp path; n == 3 → boundary tangents both sides
        let st = catmull_stencil(&[0.0, 1.0], 0.25).unwrap();
        assert!((st.eval(&[0.0, 4.0]) - 1.0).abs() < 1e-15);
        let xs = [0.0, 1.0, 2.0];
        let ys = [0.0, 1.0, 0.0];
        for &x in &[0.3, 0.5, 1.2, 1.9] {
            let st = catmull_stencil(&xs, x).unwrap();
            let direct = catmull_rom(&xs, &ys, x).unwrap();
            assert!((st.eval(&ys) - direct).abs() < 1e-12);
        }
    }

    #[test]
    fn stencil_rejects_bad_grids() {
        assert!(catmull_stencil(&[0.0], 0.0).is_err());
        assert!(catmull_stencil(&[1.0, 0.5], 0.7).is_err());
    }

    #[test]
    fn lerp_hits_knots_and_midpoints() {
        let xs = [0.0, 1.0, 3.0];
        let ys = [0.0, 10.0, 30.0];
        assert_eq!(lerp(&xs, &ys, 0.0).unwrap(), 0.0);
        assert_eq!(lerp(&xs, &ys, 1.0).unwrap(), 10.0);
        assert_eq!(lerp(&xs, &ys, 2.0).unwrap(), 20.0);
        assert_eq!(lerp(&xs, &ys, 0.5).unwrap(), 5.0);
    }

    #[test]
    fn lerp_extrapolates_linearly() {
        let xs = [0.0, 1.0];
        let ys = [0.0, 2.0];
        assert_eq!(lerp(&xs, &ys, 2.0).unwrap(), 4.0);
        assert_eq!(lerp(&xs, &ys, -1.0).unwrap(), -2.0);
    }

    #[test]
    fn lerp_errors() {
        assert_eq!(lerp(&[1.0], &[1.0], 0.5), Err(InterpError::TooFewPoints));
        assert_eq!(
            lerp(&[1.0, 0.0], &[1.0, 2.0], 0.5),
            Err(InterpError::NotSorted)
        );
        assert_eq!(
            lerp(&[0.0, 1.0], &[1.0], 0.5),
            Err(InterpError::LengthMismatch)
        );
    }

    #[test]
    fn catmull_rom_through_knots() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys = [0.0, 1.0, 4.0, 9.0];
        for (x, y) in xs.iter().zip(&ys) {
            assert!((catmull_rom(&xs, &ys, *x).unwrap() - y).abs() < 1e-12);
        }
    }

    #[test]
    fn catmull_rom_reproduces_smooth_function_better_than_lerp() {
        let xs: Vec<f64> = (0..7).map(|i| i as f64).collect();
        let f = |x: f64| (x * 0.7).sin();
        let ys: Vec<f64> = xs.iter().map(|&x| f(x)).collect();
        let mut err_cr = 0.0;
        let mut err_l = 0.0;
        for k in 0..60 {
            let x = 0.05 + k as f64 * 0.1;
            err_cr += (catmull_rom(&xs, &ys, x).unwrap() - f(x)).abs();
            err_l += (lerp(&xs, &ys, x).unwrap() - f(x)).abs();
        }
        assert!(
            err_cr < err_l,
            "catmull-rom {err_cr} should beat lerp {err_l}"
        );
    }

    #[test]
    fn bilinear_corners_and_center() {
        let xs = [0.0, 1.0];
        let ys = [0.0, 1.0];
        let v = vec![vec![0.0, 1.0], vec![2.0, 3.0]];
        assert_eq!(bilinear(&xs, &ys, &v, 0.0, 0.0).unwrap(), 0.0);
        assert_eq!(bilinear(&xs, &ys, &v, 1.0, 1.0).unwrap(), 3.0);
        assert_eq!(bilinear(&xs, &ys, &v, 0.5, 0.5).unwrap(), 1.5);
    }

    #[test]
    fn bilinear_clamps_outside() {
        let xs = [0.0, 1.0];
        let ys = [0.0, 1.0];
        let v = vec![vec![0.0, 1.0], vec![2.0, 3.0]];
        assert_eq!(bilinear(&xs, &ys, &v, -5.0, -5.0).unwrap(), 0.0);
        assert_eq!(bilinear(&xs, &ys, &v, 5.0, 5.0).unwrap(), 3.0);
    }

    #[test]
    fn bilinear_shape_errors() {
        let xs = [0.0, 1.0];
        let ys = [0.0, 1.0];
        let bad = vec![vec![0.0], vec![1.0]];
        assert_eq!(
            bilinear(&xs, &ys, &bad, 0.5, 0.5),
            Err(InterpError::LengthMismatch)
        );
    }
}

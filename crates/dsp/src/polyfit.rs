//! Polynomial least-squares fitting and evaluation.
//!
//! WiForce's sensor model (paper §4.2) is a *cubic fit* of the phase-force
//! profile at each calibration location; the wireless estimator then inverts
//! the fitted model. This module provides the [`Polynomial`] type used for
//! those fits plus monotone-inversion helpers.

use crate::linalg::{LinalgError, Matrix};
use std::fmt;

/// A real polynomial `c₀ + c₁x + c₂x² + …` stored by ascending power.
#[derive(Clone, Debug, PartialEq)]
pub struct Polynomial {
    coeffs: Vec<f64>,
}

impl Polynomial {
    /// Constructs from ascending-power coefficients; trailing zeros trimmed.
    pub fn new(mut coeffs: Vec<f64>) -> Self {
        while coeffs.len() > 1 && coeffs.last() == Some(&0.0) {
            coeffs.pop();
        }
        if coeffs.is_empty() {
            coeffs.push(0.0);
        }
        Polynomial { coeffs }
    }

    /// The zero polynomial.
    pub fn zero() -> Self {
        Polynomial { coeffs: vec![0.0] }
    }

    /// Ascending-power coefficients.
    pub fn coeffs(&self) -> &[f64] {
        &self.coeffs
    }

    /// Degree (0 for constants, including the zero polynomial).
    pub fn degree(&self) -> usize {
        self.coeffs.len() - 1
    }

    /// Horner evaluation.
    pub fn eval(&self, x: f64) -> f64 {
        self.coeffs.iter().rev().fold(0.0, |acc, &c| acc * x + c)
    }

    /// First derivative as a new polynomial.
    pub fn derivative(&self) -> Polynomial {
        if self.coeffs.len() <= 1 {
            return Polynomial::zero();
        }
        Polynomial::new(
            self.coeffs[1..]
                .iter()
                .enumerate()
                .map(|(i, &c)| c * (i + 1) as f64)
                .collect(),
        )
    }

    /// Least-squares fit of degree `degree` to samples `(xs, ys)`.
    ///
    /// Requires `xs.len() == ys.len() >= degree + 1`. Uses Vandermonde normal
    /// equations with a tiny ridge for numerical robustness on clustered
    /// abscissae (typical of force sweeps).
    pub fn fit(xs: &[f64], ys: &[f64], degree: usize) -> Result<Polynomial, FitError> {
        if xs.len() != ys.len() {
            return Err(FitError::LengthMismatch {
                xs: xs.len(),
                ys: ys.len(),
            });
        }
        if xs.len() < degree + 1 {
            return Err(FitError::TooFewPoints {
                need: degree + 1,
                got: xs.len(),
            });
        }
        // Scale x into [-1, 1] for conditioning, fit, then compose back.
        let (lo, hi) = xs
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &x| {
                (lo.min(x), hi.max(x))
            });
        let span = (hi - lo).max(1e-12);
        let mid = 0.5 * (hi + lo);
        let half = 0.5 * span;
        let scaled: Vec<f64> = xs.iter().map(|&x| (x - mid) / half).collect();

        let a = Matrix::from_fn(xs.len(), degree + 1, |r, c| scaled[r].powi(c as i32));
        let c_scaled = a.lstsq(ys, 1e-12).map_err(FitError::Linalg)?;

        // Expand p((x - mid)/half) into plain powers of x via synthetic
        // composition: p(u), u = (x - mid)/half.
        let mut out = vec![0.0; degree + 1];
        // powers of u as polynomials in x, built iteratively
        let mut upow = vec![1.0]; // u^0 = 1
        let u_lin = [-mid / half, 1.0 / half]; // u = a + b x
        for (k, ck) in c_scaled.iter().enumerate() {
            for (i, &ui) in upow.iter().enumerate() {
                out[i] += ck * ui;
            }
            if k < degree {
                // upow *= u_lin
                let mut next = vec![0.0; upow.len() + 1];
                for (i, &ui) in upow.iter().enumerate() {
                    next[i] += ui * u_lin[0];
                    next[i + 1] += ui * u_lin[1];
                }
                upow = next;
            }
        }
        Ok(Polynomial::new(out))
    }

    /// RMS residual of this polynomial over samples.
    pub fn rms_residual(&self, xs: &[f64], ys: &[f64]) -> f64 {
        assert_eq!(xs.len(), ys.len());
        if xs.is_empty() {
            return 0.0;
        }
        let ss: f64 = xs
            .iter()
            .zip(ys)
            .map(|(&x, &y)| {
                let e = self.eval(x) - y;
                e * e
            })
            .sum();
        (ss / xs.len() as f64).sqrt()
    }

    /// Finds `x ∈ [lo, hi]` with `p(x) = y` by bisection, assuming `p` is
    /// monotone on the interval. Returns `None` if `y` is outside
    /// `[min(p(lo), p(hi)), max(p(lo), p(hi))]`.
    pub fn invert_monotone(&self, y: f64, lo: f64, hi: f64) -> Option<f64> {
        let (flo, fhi) = (self.eval(lo), self.eval(hi));
        let (ymin, ymax) = if flo <= fhi { (flo, fhi) } else { (fhi, flo) };
        if y < ymin - 1e-9 || y > ymax + 1e-9 {
            return None;
        }
        let increasing = fhi >= flo;
        let (mut a, mut b) = (lo, hi);
        for _ in 0..200 {
            let m = 0.5 * (a + b);
            let fm = self.eval(m);
            let go_right = if increasing { fm < y } else { fm > y };
            if go_right {
                a = m;
            } else {
                b = m;
            }
            if (b - a).abs() < 1e-12 * (hi - lo).abs().max(1.0) {
                break;
            }
        }
        Some(0.5 * (a + b))
    }
}

impl fmt::Display for Polynomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (i, &c) in self.coeffs.iter().enumerate() {
            if c == 0.0 && self.coeffs.len() > 1 {
                continue;
            }
            if !first {
                write!(f, " {} ", if c < 0.0 { "-" } else { "+" })?;
            } else if c < 0.0 {
                write!(f, "-")?;
            }
            let a = c.abs();
            match i {
                0 => write!(f, "{a}")?,
                1 => write!(f, "{a}·x")?,
                _ => write!(f, "{a}·x^{i}")?,
            }
            first = false;
        }
        if first {
            write!(f, "0")?;
        }
        Ok(())
    }
}

/// Errors from polynomial fitting.
#[derive(Debug, Clone, PartialEq)]
pub enum FitError {
    /// `xs` and `ys` had different lengths.
    LengthMismatch {
        /// Number of abscissae supplied.
        xs: usize,
        /// Number of ordinates supplied.
        ys: usize,
    },
    /// Not enough samples for the requested degree.
    TooFewPoints {
        /// Samples required for the requested degree.
        need: usize,
        /// Samples supplied.
        got: usize,
    },
    /// Underlying linear solve failed.
    Linalg(LinalgError),
}

impl fmt::Display for FitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FitError::LengthMismatch { xs, ys } => {
                write!(f, "xs has {xs} samples but ys has {ys}")
            }
            FitError::TooFewPoints { need, got } => {
                write!(f, "need at least {need} samples for this degree, got {got}")
            }
            FitError::Linalg(e) => write!(f, "linear solve failed: {e}"),
        }
    }
}

impl std::error::Error for FitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_horner() {
        let p = Polynomial::new(vec![1.0, -2.0, 3.0]); // 1 - 2x + 3x²
        assert_eq!(p.eval(0.0), 1.0);
        assert_eq!(p.eval(1.0), 2.0);
        assert_eq!(p.eval(2.0), 9.0);
    }

    #[test]
    fn trailing_zeros_trimmed() {
        let p = Polynomial::new(vec![1.0, 2.0, 0.0, 0.0]);
        assert_eq!(p.degree(), 1);
        assert_eq!(p.coeffs(), &[1.0, 2.0]);
    }

    #[test]
    fn derivative_rules() {
        let p = Polynomial::new(vec![5.0, 1.0, -3.0, 2.0]); // 5 + x - 3x² + 2x³
        let d = p.derivative();
        assert_eq!(d.coeffs(), &[1.0, -6.0, 6.0]);
        assert_eq!(Polynomial::new(vec![7.0]).derivative(), Polynomial::zero());
    }

    #[test]
    fn fit_exact_cubic() {
        let truth = Polynomial::new(vec![0.5, -1.0, 0.25, 0.125]);
        let xs: Vec<f64> = (0..20).map(|i| i as f64 * 0.4).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| truth.eval(x)).collect();
        let fit = Polynomial::fit(&xs, &ys, 3).unwrap();
        for (a, b) in fit.coeffs().iter().zip(truth.coeffs()) {
            assert!((a - b).abs() < 1e-8, "{a} vs {b}");
        }
        assert!(fit.rms_residual(&xs, &ys) < 1e-9);
    }

    #[test]
    fn fit_degree_zero_is_mean() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        let fit = Polynomial::fit(&xs, &ys, 0).unwrap();
        assert!((fit.eval(0.0) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn fit_errors() {
        assert!(matches!(
            Polynomial::fit(&[1.0], &[1.0, 2.0], 1),
            Err(FitError::LengthMismatch { .. })
        ));
        assert!(matches!(
            Polynomial::fit(&[1.0, 2.0], &[1.0, 2.0], 3),
            Err(FitError::TooFewPoints { need: 4, got: 2 })
        ));
    }

    #[test]
    fn fit_is_least_squares_on_noisy_data() {
        // quadratic + small symmetric perturbation: fit should stay close
        let xs: Vec<f64> = (0..40).map(|i| i as f64 * 0.2).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, &x)| 2.0 + 0.5 * x * x + if i % 2 == 0 { 0.01 } else { -0.01 })
            .collect();
        let fit = Polynomial::fit(&xs, &ys, 2).unwrap();
        assert!((fit.coeffs()[2] - 0.5).abs() < 1e-3);
        assert!((fit.coeffs()[0] - 2.0).abs() < 2e-2);
    }

    #[test]
    fn invert_monotone_increasing() {
        let p = Polynomial::new(vec![0.0, 2.0, 0.0, 1.0]); // 2x + x³, strictly increasing
        let x = p.invert_monotone(10.0, 0.0, 3.0).unwrap();
        assert!((p.eval(x) - 10.0).abs() < 1e-8);
    }

    #[test]
    fn invert_monotone_decreasing() {
        let p = Polynomial::new(vec![5.0, -1.0]); // 5 - x
        let x = p.invert_monotone(2.0, 0.0, 10.0).unwrap();
        assert!((x - 3.0).abs() < 1e-9);
    }

    #[test]
    fn invert_out_of_range_is_none() {
        let p = Polynomial::new(vec![0.0, 1.0]);
        assert!(p.invert_monotone(100.0, 0.0, 1.0).is_none());
        assert!(p.invert_monotone(-1.0, 0.0, 1.0).is_none());
    }

    #[test]
    fn display_is_readable() {
        let p = Polynomial::new(vec![1.0, 0.0, -2.5]);
        assert_eq!(format!("{p}"), "1 - 2.5·x^2");
    }
}

//! Property-based tests over the DSP primitives.

use proptest::prelude::*;
use wiforce_dsp::fft::{dft_naive, fft, goertzel, goertzel_columns, ifft, FftPlan};
use wiforce_dsp::phase::{unwrap, wrap_to_pi};
use wiforce_dsp::polyfit::Polynomial;
use wiforce_dsp::stats::{median, percentile};
use wiforce_dsp::Complex;

fn arb_signal(max_len: usize) -> impl Strategy<Value = Vec<Complex>> {
    prop::collection::vec((-1.0f64..1.0, -1.0f64..1.0), 1..max_len)
        .prop_map(|v| v.into_iter().map(|(re, im)| Complex::new(re, im)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// FFT matches the O(n²) reference for arbitrary lengths.
    #[test]
    fn fft_matches_naive(x in arb_signal(48)) {
        let fast = fft(&x);
        let slow = dft_naive(&x);
        for (a, b) in fast.iter().zip(&slow) {
            prop_assert!((*a - *b).abs() < 1e-7 * (x.len() as f64));
        }
    }

    /// IFFT inverts FFT for arbitrary lengths.
    #[test]
    fn ifft_inverts(x in arb_signal(64)) {
        let back = ifft(&fft(&x));
        for (a, b) in back.iter().zip(&x) {
            prop_assert!((*a - *b).abs() < 1e-8);
        }
    }

    /// The FFT is linear.
    #[test]
    fn fft_linear(x in arb_signal(32), a in -3.0f64..3.0) {
        let scaled: Vec<Complex> = x.iter().map(|&z| z * a).collect();
        let fx = fft(&x);
        let fs = fft(&scaled);
        for (s, f) in fs.iter().zip(&fx) {
            prop_assert!((*s - *f * a).abs() < 1e-8);
        }
    }

    /// A planned FFT matches the O(n²) reference for arbitrary lengths —
    /// power-of-two sizes exercise the radix-2 tables, everything else the
    /// cached Bluestein path — and is bit-identical to the free [`fft`].
    #[test]
    fn fft_plan_matches_naive(x in arb_signal(48)) {
        let mut plan = FftPlan::new(x.len());
        let planned = plan.forward(&x);
        let slow = dft_naive(&x);
        for (a, b) in planned.iter().zip(&slow) {
            prop_assert!((*a - *b).abs() < 1e-7 * (x.len() as f64));
        }
        let free = fft(&x);
        for (a, b) in planned.iter().zip(&free) {
            prop_assert_eq!(a.re.to_bits(), b.re.to_bits());
            prop_assert_eq!(a.im.to_bits(), b.im.to_bits());
        }
    }

    /// A planned inverse undoes a planned forward for arbitrary lengths.
    #[test]
    fn fft_plan_inverse_inverts(x in arb_signal(64)) {
        let mut plan = FftPlan::new(x.len());
        let fwd = plan.forward(&x);
        let back = plan.inverse(&fwd);
        for (a, b) in back.iter().zip(&x) {
            prop_assert!((*a - *b).abs() < 1e-8);
        }
    }

    /// The batched column Goertzel is bit-identical to gathering each column
    /// (minus its offset) and running the scalar [`goertzel`] per bin.
    #[test]
    fn goertzel_columns_matches_per_column(
        flat in arb_signal(96),
        n_cols in 1usize..7,
        f1 in 0.0f64..1.0,
        f2 in 0.0f64..1.0,
        offset_flag in 0usize..2,
    ) {
        let n_rows = flat.len() / n_cols;
        let data = &flat[..n_rows * n_cols];
        let offsets: Vec<Complex> =
            (0..n_cols).map(|k| Complex::new(0.1 * k as f64, -0.05 * k as f64)).collect();
        let use_offsets = offset_flag == 1;
        let off = use_offsets.then_some(offsets.as_slice());
        let batched = goertzel_columns(data, n_cols, &[f1, f2], off);
        for (j, &f) in [f1, f2].iter().enumerate() {
            for k in 0..n_cols {
                let col: Vec<Complex> = (0..n_rows)
                    .map(|r| {
                        let x = data[r * n_cols + k];
                        if use_offsets { x - offsets[k] } else { x }
                    })
                    .collect();
                let scalar = goertzel(&col, f);
                prop_assert_eq!(batched[j][k].re.to_bits(), scalar.re.to_bits());
                prop_assert_eq!(batched[j][k].im.to_bits(), scalar.im.to_bits());
            }
        }
    }

    /// Goertzel at an integer bin equals the FFT bin.
    #[test]
    fn goertzel_equals_fft_bin(x in arb_signal(40), k in 0usize..40) {
        let n = x.len();
        let k = k % n;
        let g = goertzel(&x, k as f64 / n as f64);
        let s = dft_naive(&x);
        prop_assert!((g - s[k]).abs() < 1e-7 * n as f64);
    }

    /// Unwrapping a wrapped smooth trajectory recovers it exactly
    /// (offset-free when it starts in (−π, π]).
    #[test]
    fn unwrap_recovers_smooth_paths(steps in prop::collection::vec(-1.5f64..1.5, 1..80), start in -3.0f64..3.0) {
        let mut truth = vec![wrap_to_pi(start)];
        for d in steps {
            let last = *truth.last().expect("nonempty");
            truth.push(last + d);
        }
        let wrapped: Vec<f64> = truth.iter().map(|&t| wrap_to_pi(t)).collect();
        let un = unwrap(&wrapped);
        for (u, t) in un.iter().zip(&truth) {
            prop_assert!((u - t).abs() < 1e-9);
        }
    }

    /// Polynomial fit reproduces exact polynomial data of matching degree.
    #[test]
    fn polyfit_exact_on_polynomial_data(
        c0 in -2.0f64..2.0,
        c1 in -2.0f64..2.0,
        c2 in -2.0f64..2.0,
        c3 in -2.0f64..2.0,
    ) {
        let truth = Polynomial::new(vec![c0, c1, c2, c3]);
        let xs: Vec<f64> = (0..12).map(|i| i as f64 * 0.5).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| truth.eval(x)).collect();
        let fit = Polynomial::fit(&xs, &ys, 3).expect("fit");
        for &x in &xs {
            prop_assert!((fit.eval(x) - truth.eval(x)).abs() < 1e-6);
        }
    }

    /// Percentiles are monotone and bracket the sample range.
    #[test]
    fn percentiles_monotone(xs in prop::collection::vec(-100.0f64..100.0, 1..50)) {
        let p25 = percentile(&xs, 25.0);
        let p50 = percentile(&xs, 50.0);
        let p75 = percentile(&xs, 75.0);
        prop_assert!(p25 <= p50 && p50 <= p75);
        prop_assert!((median(&xs) - p50).abs() < 1e-12);
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(p25 >= lo && p75 <= hi);
    }
}

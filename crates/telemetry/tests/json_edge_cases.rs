//! Edge-case and property tests for `wiforce_telemetry::json`: escape
//! handling, non-finite canonicalization, nesting bounds, and
//! writer→parser round trips over generated documents.

use proptest::prelude::*;
use proptest::TestRng;
use wiforce_telemetry::json::{self, JsonWriter, Value};

#[test]
fn string_escapes_round_trip() {
    let cases = [
        "plain",
        "quote \" backslash \\ slash /",
        "newline\ntab\tcr\r",
        "control \u{1} \u{1f} bell \u{7}",
        "unicode ✓ λ 力 𝕊",
        "",
    ];
    for s in cases {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.string("v", s);
        w.end_object();
        let text = w.finish();
        let v = json::parse(&text).unwrap_or_else(|e| panic!("{s:?}: {e}"));
        assert_eq!(v.get("v").unwrap().as_str(), Some(s), "case {s:?}");
    }
}

#[test]
fn parser_accepts_standard_escapes() {
    let v = json::parse(r#"{"s": "aA\n\t\"\\\/\b\f\r"}"#).expect("parses");
    assert_eq!(
        v.get("s").unwrap().as_str(),
        Some("aA\n\t\"\\/\u{8}\u{c}\r")
    );
}

#[test]
fn non_finite_numbers_canonicalize_to_null() {
    // the writer's documented behaviour: NaN and ±Inf become null, so an
    // artifact can never carry a non-finite literal
    let mut w = JsonWriter::new();
    w.begin_object();
    w.number("nan", f64::NAN)
        .number("pinf", f64::INFINITY)
        .number("ninf", f64::NEG_INFINITY)
        .number("fine", 1.5);
    w.end_object();
    let text = w.finish();
    assert!(!text.contains("NaN") && !text.contains(": inf"), "{text}");
    let v = json::parse(&text).unwrap();
    assert_eq!(v.get("nan"), Some(&Value::Null));
    assert_eq!(v.get("pinf"), Some(&Value::Null));
    assert_eq!(v.get("ninf"), Some(&Value::Null));
    assert_eq!(v.get("fine").unwrap().as_f64(), Some(1.5));
    // and the parser rejects bare non-finite tokens (not JSON)
    assert!(json::parse("{\"x\": NaN}").is_err());
    assert!(json::parse("{\"x\": Infinity}").is_err());
}

#[test]
fn deeply_nested_arrays_bounded() {
    for depth in [1, 8, json::MAX_DEPTH] {
        let doc = format!("{}0{}", "[".repeat(depth), "]".repeat(depth));
        assert!(json::parse(&doc).is_ok(), "depth {depth} should parse");
    }
    for depth in [json::MAX_DEPTH + 1, json::MAX_DEPTH * 8] {
        let doc = format!("{}0{}", "[".repeat(depth), "]".repeat(depth));
        let err = json::parse(&doc).expect_err("too deep");
        assert!(err.contains("nesting"), "depth {depth}: {err}");
    }
}

#[test]
fn null_round_trips() {
    let v = json::parse("{\"x\": null}").unwrap();
    assert_eq!(v.get("x"), Some(&Value::Null));
}

// --- seed-driven generators (the vendored proptest has no recursive /
// string strategies, so documents are pure functions of a u64 seed) ---

const STRING_PALETTE: &[char] = &[
    'a', 'Z', '0', ' ', '_', '"', '\\', '/', '\n', '\t', '\r', '\u{1}', '✓', 'λ', '力', '𝕊',
];

fn gen_string(rng: &mut TestRng) -> String {
    let len = rng.below(12) as usize;
    (0..len)
        .map(|_| STRING_PALETTE[rng.below(STRING_PALETTE.len() as u64) as usize])
        .collect()
}

fn gen_key(rng: &mut TestRng, taken: &mut Vec<String>) -> String {
    // unique keys: `Value::get` finds the first match, so duplicates
    // would make the round-trip comparison ambiguous
    loop {
        let len = 1 + rng.below(6) as usize;
        let key: String = (0..len)
            .map(|_| (b'a' + rng.below(26) as u8) as char)
            .collect();
        if !taken.contains(&key) {
            taken.push(key.clone());
            return key;
        }
    }
}

fn gen_number(rng: &mut TestRng) -> f64 {
    // spread across magnitudes, both signs; finite only (the writer
    // canonicalizes non-finite to null)
    let mag = (rng.unit_f64() * 2.0 - 1.0) * 10f64.powi(rng.below(25) as i32 - 12);
    if mag.is_finite() {
        mag
    } else {
        0.0
    }
}

fn gen_value(rng: &mut TestRng, depth: u32) -> Value {
    let pick = if depth == 0 {
        rng.below(4)
    } else {
        rng.below(6)
    };
    match pick {
        0 => Value::Null,
        1 => Value::Bool(rng.below(2) == 0),
        2 => Value::Num(gen_number(rng)),
        3 => Value::Str(gen_string(rng)),
        4 => Value::Obj(gen_members(rng, depth - 1)),
        _ => {
            // arrays hold objects only — the writer's keyed API cannot
            // produce bare scalars as array elements
            let n = rng.below(3) as usize;
            Value::Arr(
                (0..n)
                    .map(|_| Value::Obj(gen_members(rng, depth - 1)))
                    .collect(),
            )
        }
    }
}

fn gen_members(rng: &mut TestRng, depth: u32) -> Vec<(String, Value)> {
    let n = rng.below(4) as usize;
    let mut taken = Vec::new();
    (0..n)
        .map(|_| {
            let key = gen_key(rng, &mut taken);
            (key, gen_value(rng, depth))
        })
        .collect()
}

fn write_value(w: &mut JsonWriter, key: &str, v: &Value) {
    match v {
        Value::Null => {
            w.number(key, f64::NAN);
        }
        Value::Bool(b) => {
            w.boolean(key, *b);
        }
        Value::Num(n) => {
            w.number(key, *n);
        }
        Value::Str(s) => {
            w.string(key, s);
        }
        Value::Obj(members) => {
            w.begin_object_key(key);
            for (k, mv) in members {
                write_value(w, k, mv);
            }
            w.end_object();
        }
        Value::Arr(items) => {
            w.begin_array_key(key);
            for item in items {
                let Value::Obj(members) = item else {
                    unreachable!("generator only puts objects in arrays")
                };
                w.begin_object();
                for (k, mv) in members {
                    write_value(w, k, mv);
                }
                w.end_object();
            }
            w.end_array();
        }
    }
}

fn values_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        // the writer prints f64 with `{}` (shortest round-trippable
        // form), so parse-back must be bit-exact
        (Value::Num(x), Value::Num(y)) => x.to_bits() == y.to_bits(),
        (Value::Obj(x), Value::Obj(y)) => {
            x.len() == y.len()
                && x.iter()
                    .zip(y)
                    .all(|((ka, va), (kb, vb))| ka == kb && values_eq(va, vb))
        }
        (Value::Arr(x), Value::Arr(y)) => {
            x.len() == y.len() && x.iter().zip(y).all(|(va, vb)| values_eq(va, vb))
        }
        (a, b) => a == b,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    #[test]
    fn writer_parser_round_trip(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::from_name(&format!("doc-{seed}"));
        let root = gen_members(&mut rng, 3);
        let mut w = JsonWriter::new();
        w.begin_object();
        for (k, v) in &root {
            write_value(&mut w, k, v);
        }
        w.end_object();
        let text = w.finish();
        let parsed = json::parse(&text).expect("generated document parses");
        prop_assert!(values_eq(&parsed, &Value::Obj(root)), "round trip mismatch:\n{}", text);
    }

    #[test]
    fn finite_numbers_round_trip_exactly(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::from_name(&format!("num-{seed}"));
        let n = gen_number(&mut rng);
        let mut w = JsonWriter::new();
        w.begin_object();
        w.number("n", n);
        w.end_object();
        let v = json::parse(&w.finish()).expect("parses");
        prop_assert_eq!(
            v.get("n").unwrap().as_f64().map(f64::to_bits),
            Some(n.to_bits())
        );
    }

    #[test]
    fn arbitrary_strings_round_trip(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::from_name(&format!("str-{seed}"));
        let s = gen_string(&mut rng);
        let mut w = JsonWriter::new();
        w.begin_object();
        w.string("s", &s);
        w.end_object();
        let v = json::parse(&w.finish()).expect("parses");
        prop_assert_eq!(v.get("s").unwrap().as_str(), Some(s.as_str()));
    }

    #[test]
    fn parser_never_panics_on_noise(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::from_name(&format!("noise-{seed}"));
        let palette = b"[]{}\",:0-9az .eE+-\\";
        let len = rng.below(64) as usize;
        let noise: String = (0..len)
            .map(|_| palette[rng.below(palette.len() as u64) as usize] as char)
            .collect();
        let _ = json::parse(&noise); // Ok or Err are both fine; no panic, no hang
    }
}

//! The pipeline health report: a serializable aggregate of everything a
//! running WiForce reader should surface to its operator — per-stage
//! latency percentiles, throughput counters, and signal-quality gauges
//! (harmonic-line SNR, reference-lock state, snapshot yield under fault
//! injection).
//!
//! Built from a [`TelemetrySnapshot`] (one thread's recordings, or the
//! index-ordered merge of many — see `wiforce_bench::montecarlo`), and
//! written as JSON by the crate's own tiny writer so the report can be
//! produced from `wiforce-cli --health-json`, `repro_all`, and CI without
//! external dependencies.

use crate::json::JsonWriter;
use crate::{Histogram, TelemetrySnapshot};

/// Current `PipelineHealth` JSON schema version. Bump when keys change.
/// v2 added `adaptive_snapshot_yield`: the fraction of the snapshot
/// budget the adaptive synthesis path actually synthesized (1.0 in exact
/// mode, lower when groups hit their SNR target early; null when no
/// synthesis ran).
/// v3 added the response-table / wide-batching trio:
/// `response_table_hit_rate` (per-scene sounding-response memo hits over
/// total lookups; null before any lookup), `synth_chunk_rows` (the SoA
/// chunk width the calibrated synthesis paths drive), and
/// `cross_stream_occupancy` (mean fill of the cross-stream superposition
/// mega-chunks; null when the path never ran).
pub const HEALTH_SCHEMA_VERSION: u64 = 3;

/// Latency statistics for one span path.
#[derive(Debug, Clone, PartialEq)]
pub struct StageStats {
    /// Hierarchical span path (e.g. `"pipeline.measure_press"`).
    pub name: String,
    /// Number of completed spans.
    pub count: u64,
    /// Median latency, ns (bucket resolution).
    pub p50_ns: f64,
    /// 95th-percentile latency, ns (bucket resolution).
    pub p95_ns: f64,
    /// Worst observed latency, ns (exact).
    pub max_ns: f64,
    /// Total time spent in the stage, ns.
    pub total_ns: f64,
}

impl StageStats {
    fn from_histogram(name: &str, h: &Histogram) -> Self {
        StageStats {
            name: name.to_string(),
            count: h.count,
            p50_ns: h.quantile(0.50),
            p95_ns: h.quantile(0.95),
            max_ns: if h.count == 0 { 0.0 } else { h.max },
            total_ns: h.sum,
        }
    }
}

/// Summary statistics for one value histogram (observations).
#[derive(Debug, Clone, PartialEq)]
pub struct ObservationStats {
    /// Observation name.
    pub name: String,
    /// Number of observations.
    pub count: u64,
    /// Mean value.
    pub mean: f64,
    /// Median (bucket resolution).
    pub p50: f64,
    /// 95th percentile (bucket resolution).
    pub p95: f64,
    /// Exact maximum.
    pub max: f64,
}

/// The aggregated health report.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineHealth {
    /// Report schema version ([`HEALTH_SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Per-stage latency stats, sorted by span path.
    pub stages: Vec<StageStats>,
    /// Monotonic counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Last-value gauges, sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// Value-histogram summaries, sorted by name.
    pub observations: Vec<ObservationStats>,
    /// Fraction of sounded snapshots that survived fault injection
    /// (1.0 when no snapshots were dropped; `None` when nothing ran).
    pub snapshot_yield: Option<f64>,
    /// Fraction of the snapshot budget the adaptive synthesis path
    /// actually synthesized: 1.0 in exact mode, below 1.0 when groups
    /// reached their SNR target on the prefix and stopped early (`None`
    /// when no synthesis ran).
    pub adaptive_snapshot_yield: Option<f64>,
    /// `true` when the streaming estimator reported a locked no-touch
    /// reference (`None` when no estimator ran).
    pub reference_locked: Option<bool>,
    /// Hit rate of the per-scene sounding-response memo (`None` before
    /// any lookup was recorded).
    pub response_table_hit_rate: Option<f64>,
    /// SoA chunk width the synthesis paths ran at (`None` when no
    /// synthesis reported it).
    pub synth_chunk_rows: Option<f64>,
    /// Mean occupancy of the cross-stream superposition chunks (`None`
    /// when the cross-stream path never ran).
    pub cross_stream_occupancy: Option<f64>,
}

impl PipelineHealth {
    /// Aggregates a telemetry snapshot into a report.
    pub fn from_snapshot(snap: &TelemetrySnapshot) -> Self {
        let stages = snap
            .spans
            .iter()
            .map(|(name, h)| StageStats::from_histogram(name, h))
            .collect();
        let counters: Vec<(String, u64)> =
            snap.counters.iter().map(|(k, &v)| (k.clone(), v)).collect();
        let gauges: Vec<(String, f64)> = snap.gauges.iter().map(|(k, &v)| (k.clone(), v)).collect();
        let observations = snap
            .observations
            .iter()
            .map(|(name, h)| ObservationStats {
                name: name.clone(),
                count: h.count,
                mean: h.mean(),
                p50: h.quantile(0.50),
                p95: h.quantile(0.95),
                max: if h.count == 0 { 0.0 } else { h.max },
            })
            .collect();

        let counter = |name: &str| snap.counters.get(name).copied();
        let snapshot_yield = counter("pipeline.snapshots_total").map(|total| {
            let dropped = counter("faults.snapshots_dropped").unwrap_or(0);
            if total == 0 {
                1.0
            } else {
                1.0 - dropped as f64 / total as f64
            }
        });
        let reference_locked = snap
            .gauges
            .get("estimator.reference_locked")
            .map(|&v| v != 0.0);
        let adaptive_snapshot_yield = snap.gauges.get("pipeline.adaptive_snapshot_yield").copied();
        let response_table_hit_rate = snap.gauges.get("pipeline.response_table_hit_rate").copied();
        let synth_chunk_rows = snap.gauges.get("pipeline.synth_chunk_rows").copied();
        let cross_stream_occupancy = snap.gauges.get("batch.cross_stream_occupancy").copied();

        PipelineHealth {
            schema_version: HEALTH_SCHEMA_VERSION,
            stages,
            counters,
            gauges,
            observations,
            snapshot_yield,
            adaptive_snapshot_yield,
            reference_locked,
            response_table_hit_rate,
            synth_chunk_rows,
            cross_stream_occupancy,
        }
    }

    /// Builds the report from this thread's recorder, draining it.
    pub fn collect() -> Self {
        Self::from_snapshot(&crate::take())
    }

    /// Serializes the report as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.integer("schema_version", self.schema_version);
        match self.snapshot_yield {
            Some(y) => w.number("snapshot_yield", y),
            None => w.number("snapshot_yield", f64::NAN), // serialized as null
        };
        match self.adaptive_snapshot_yield {
            Some(y) => w.number("adaptive_snapshot_yield", y),
            None => w.number("adaptive_snapshot_yield", f64::NAN),
        };
        match self.reference_locked {
            Some(locked) => w.boolean("estimator_reference_locked", locked),
            None => w.number("estimator_reference_locked", f64::NAN),
        };
        match self.response_table_hit_rate {
            Some(r) => w.number("response_table_hit_rate", r),
            None => w.number("response_table_hit_rate", f64::NAN),
        };
        match self.synth_chunk_rows {
            Some(r) => w.number("synth_chunk_rows", r),
            None => w.number("synth_chunk_rows", f64::NAN),
        };
        match self.cross_stream_occupancy {
            Some(o) => w.number("cross_stream_occupancy", o),
            None => w.number("cross_stream_occupancy", f64::NAN),
        };
        w.begin_array_key("stages");
        for s in &self.stages {
            w.begin_object();
            w.string("name", &s.name)
                .integer("count", s.count)
                .number("p50_ns", s.p50_ns)
                .number("p95_ns", s.p95_ns)
                .number("max_ns", s.max_ns)
                .number("total_ns", s.total_ns);
            w.end_object();
        }
        w.end_array();
        w.begin_object_key("counters");
        for (k, v) in &self.counters {
            w.integer(k, *v);
        }
        w.end_object();
        w.begin_object_key("gauges");
        for (k, v) in &self.gauges {
            w.number(k, *v);
        }
        w.end_object();
        w.begin_array_key("observations");
        for o in &self.observations {
            w.begin_object();
            w.string("name", &o.name)
                .integer("count", o.count)
                .number("mean", o.mean)
                .number("p50", o.p50)
                .number("p95", o.p95)
                .number("max", o.max);
            w.end_object();
        }
        w.end_array();
        w.end_object();
        w.finish()
    }

    /// Finds a stage by exact span path.
    pub fn stage(&self, name: &str) -> Option<&StageStats> {
        self.stages.iter().find(|s| s.name == name)
    }

    /// Looks up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|&(_, v)| v)
    }

    /// Looks up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(k, _)| k == name).map(|&(_, v)| v)
    }

    /// Looks up an observation summary by name.
    pub fn observation(&self, name: &str) -> Option<&ObservationStats> {
        self.observations.iter().find(|o| o.name == name)
    }

    /// Gauges whose name starts with `prefix` — the per-stream view of a
    /// batch run (`batch.stream.<name>.*`), in sorted-name order.
    pub fn gauges_with_prefix(&self, prefix: &str) -> Vec<(&str, f64)> {
        self.gauges
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(k, v)| (k.as_str(), *v))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn sample_snapshot() -> TelemetrySnapshot {
        let mut snap = TelemetrySnapshot::default();
        let mut h = Histogram::default();
        for v in [1000.0, 2000.0, 3000.0] {
            h.record(v);
        }
        snap.spans.insert("pipeline.measure_press".into(), h);
        snap.counters.insert("pipeline.snapshots_total".into(), 100);
        snap.counters.insert("faults.snapshots_dropped".into(), 4);
        snap.gauges.insert("pipeline.line_to_floor_db".into(), 31.5);
        snap.gauges.insert("estimator.reference_locked".into(), 1.0);
        snap.gauges
            .insert("pipeline.adaptive_snapshot_yield".into(), 0.44);
        let mut obs = Histogram::default();
        obs.record(0.2);
        snap.observations
            .insert("tracker.force_innovation_n".into(), obs);
        snap
    }

    #[test]
    fn derives_yield_and_lock_state() {
        let health = PipelineHealth::from_snapshot(&sample_snapshot());
        assert_eq!(health.schema_version, HEALTH_SCHEMA_VERSION);
        assert!((health.snapshot_yield.unwrap() - 0.96).abs() < 1e-12);
        assert_eq!(health.adaptive_snapshot_yield, Some(0.44));
        assert_eq!(health.reference_locked, Some(true));
        let stage = health.stage("pipeline.measure_press").unwrap();
        assert_eq!(stage.count, 3);
        assert_eq!(stage.max_ns, 3000.0);
        assert!((stage.total_ns - 6000.0).abs() < 1e-9);
        assert_eq!(health.counter("pipeline.snapshots_total"), Some(100));
        assert_eq!(health.gauge("pipeline.line_to_floor_db"), Some(31.5));
    }

    #[test]
    fn empty_snapshot_reports_unknowns() {
        let health = PipelineHealth::from_snapshot(&TelemetrySnapshot::default());
        assert_eq!(health.snapshot_yield, None);
        assert_eq!(health.adaptive_snapshot_yield, None);
        assert_eq!(health.reference_locked, None);
        assert!(health.stages.is_empty());
        // and the JSON still parses with the required keys present
        let v = json::parse(&health.to_json()).unwrap();
        assert_eq!(v.get("snapshot_yield"), Some(&json::Value::Null));
        assert_eq!(v.get("adaptive_snapshot_yield"), Some(&json::Value::Null));
        assert!(v.get("stages").unwrap().as_array().unwrap().is_empty());
    }

    #[test]
    fn json_round_trip_preserves_structure() {
        let health = PipelineHealth::from_snapshot(&sample_snapshot());
        let text = health.to_json();
        let v = json::parse(&text).expect("health JSON parses");
        assert_eq!(
            v.get("schema_version").unwrap().as_f64(),
            Some(HEALTH_SCHEMA_VERSION as f64)
        );
        assert_eq!(
            v.get("estimator_reference_locked"),
            Some(&json::Value::Bool(true))
        );
        assert_eq!(
            v.get("adaptive_snapshot_yield").unwrap().as_f64(),
            Some(0.44)
        );
        let stages = v.get("stages").unwrap().as_array().unwrap();
        assert_eq!(stages.len(), 1);
        assert_eq!(
            stages[0].get("name").unwrap().as_str(),
            Some("pipeline.measure_press")
        );
        assert_eq!(
            v.get("counters")
                .unwrap()
                .get("faults.snapshots_dropped")
                .unwrap()
                .as_f64(),
            Some(4.0)
        );
        let obs = v.get("observations").unwrap().as_array().unwrap();
        assert_eq!(
            obs[0].get("name").unwrap().as_str(),
            Some("tracker.force_innovation_n")
        );
    }
}

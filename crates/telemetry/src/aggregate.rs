//! Rolling per-stream health aggregation with SLO-style degradation
//! flags.
//!
//! [`crate::PipelineHealth`] summarizes a run *after* it finishes; a
//! serving engine needs the same signal *while* it runs. The
//! [`HealthAggregator`] folds per-group samples (consume latency, line
//! SNR, queue occupancy, failures) into fixed-size windows per stream;
//! when a window closes it emits a [`StreamWindow`] with bucket-accurate
//! p50/p95/p99 latency and [`DegradationFlags`] — SNR below the floor
//! for N consecutive windows, queue saturation, worker starvation
//! (median latency past the starvation bound, i.e. groups sat queued
//! because no worker picked them up). The batch engine forwards those
//! windows to an observer callback incrementally; the CLI `serve`
//! command prints them as they close.
//!
//! Window *counts* and sample totals are deterministic functions of the
//! workload; latency percentiles and latency-derived flags are
//! wall-clock measurements and naturally vary run to run (the same
//! split as [`crate::TelemetrySnapshot::deterministic_eq`]).

use crate::json::JsonWriter;
use crate::Histogram;
use std::collections::BTreeMap;

/// Aggregation policy: window size and SLO thresholds.
#[derive(Debug, Clone, Copy)]
pub struct AggregatorConfig {
    /// Samples (consumed groups) per window; a window closes and emits
    /// after this many `record` calls on a stream. Clamped to ≥ 1.
    pub window: usize,
    /// SNR floor, dB; a window whose minimum SNR sample sits below it is
    /// an SNR-breach window.
    pub snr_floor_db: f64,
    /// Consecutive breach windows before `snr_below_floor` raises.
    pub snr_breach_windows: u32,
    /// Queue occupancy (fraction of capacity) at or above which a window
    /// counts as saturated.
    pub queue_saturation: f64,
    /// Worker-starvation bound, ns: a window whose median consume
    /// latency exceeds this flags `worker_starved`.
    pub starvation_latency_ns: f64,
}

impl Default for AggregatorConfig {
    fn default() -> Self {
        AggregatorConfig {
            window: 4,
            snr_floor_db: 6.0,
            snr_breach_windows: 2,
            queue_saturation: 0.75,
            starvation_latency_ns: 250e6,
        }
    }
}

/// One per-group sample a stream's consumer feeds the aggregator.
#[derive(Debug, Clone, Copy)]
pub struct WindowSample {
    /// Produce→consume latency of the group, ns.
    pub latency_ns: f64,
    /// Line SNR measured on the group, dB (`None` when the consumer has
    /// no estimate — SNR flags then stay quiet).
    pub snr_db: Option<f64>,
    /// Queue occupancy observed when the group was drained, in `[0, 1]`.
    pub queue_occupancy: f64,
    /// `true` when the group's estimate failed.
    pub failed: bool,
}

/// Degradation verdict of one window (or the OR across windows in
/// [`StreamHealth`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DegradationFlags {
    /// Minimum SNR sat below [`AggregatorConfig::snr_floor_db`] for
    /// [`AggregatorConfig::snr_breach_windows`] consecutive windows.
    pub snr_below_floor: bool,
    /// Peak queue occupancy reached [`AggregatorConfig::queue_saturation`].
    pub queue_saturated: bool,
    /// Median consume latency exceeded
    /// [`AggregatorConfig::starvation_latency_ns`].
    pub worker_starved: bool,
}

impl DegradationFlags {
    /// `true` when any flag is raised.
    pub fn any(self) -> bool {
        self.snr_below_floor || self.queue_saturated || self.worker_starved
    }

    fn or(self, other: DegradationFlags) -> DegradationFlags {
        DegradationFlags {
            snr_below_floor: self.snr_below_floor || other.snr_below_floor,
            queue_saturated: self.queue_saturated || other.queue_saturated,
            worker_starved: self.worker_starved || other.worker_starved,
        }
    }
}

/// One closed window of one stream.
#[derive(Debug, Clone)]
pub struct StreamWindow {
    /// Stream name.
    pub stream: String,
    /// 0-based window index on this stream.
    pub window: u64,
    /// Samples in the window (== config window, except a final flush).
    pub samples: u64,
    /// Median consume latency, ns (bucket resolution).
    pub p50_ns: f64,
    /// 95th-percentile consume latency, ns.
    pub p95_ns: f64,
    /// 99th-percentile consume latency, ns.
    pub p99_ns: f64,
    /// Worst (minimum) SNR sample in the window, dB.
    pub min_snr_db: Option<f64>,
    /// Peak queue occupancy in the window.
    pub peak_occupancy: f64,
    /// Failed estimates in the window.
    pub failures: u64,
    /// The window's verdict.
    pub flags: DegradationFlags,
}

impl StreamWindow {
    /// Single-line JSON rendering for incremental emission during a run.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.string("stream", &self.stream)
            .integer("window", self.window)
            .integer("samples", self.samples)
            .number("p50_ns", self.p50_ns)
            .number("p95_ns", self.p95_ns)
            .number("p99_ns", self.p99_ns)
            .number("min_snr_db", self.min_snr_db.unwrap_or(f64::NAN))
            .number("peak_occupancy", self.peak_occupancy)
            .integer("failures", self.failures)
            .boolean("snr_below_floor", self.flags.snr_below_floor)
            .boolean("queue_saturated", self.flags.queue_saturated)
            .boolean("worker_starved", self.flags.worker_starved);
        w.end_object();
        w.finish().replace('\n', "").replace("  ", " ")
    }
}

/// Rolling summary of one stream across every window so far.
#[derive(Debug, Clone)]
pub struct StreamHealth {
    /// Stream name.
    pub stream: String,
    /// Windows closed.
    pub windows: u64,
    /// Total samples recorded.
    pub samples: u64,
    /// Rolling median latency, ns.
    pub p50_ns: f64,
    /// Rolling 95th-percentile latency, ns.
    pub p95_ns: f64,
    /// Rolling 99th-percentile latency, ns.
    pub p99_ns: f64,
    /// Windows that closed with any flag raised.
    pub degraded_windows: u64,
    /// OR of every closed window's flags.
    pub flags: DegradationFlags,
    /// Total failed estimates.
    pub failures: u64,
}

#[derive(Debug, Default)]
struct StreamState {
    window_hist: Histogram,
    rolling_hist: Histogram,
    win_min_snr: Option<f64>,
    win_peak_occupancy: f64,
    win_failures: u64,
    win_samples: u64,
    windows_closed: u64,
    snr_breach_run: u32,
    degraded_windows: u64,
    flags_any: DegradationFlags,
    failures_total: u64,
    samples_total: u64,
}

/// Folds per-group samples into per-stream windows; see the module docs.
#[derive(Debug)]
pub struct HealthAggregator {
    cfg: AggregatorConfig,
    streams: BTreeMap<String, StreamState>,
}

impl Default for HealthAggregator {
    fn default() -> Self {
        HealthAggregator::new(AggregatorConfig::default())
    }
}

impl HealthAggregator {
    /// An aggregator with the given policy.
    pub fn new(mut cfg: AggregatorConfig) -> Self {
        cfg.window = cfg.window.max(1);
        HealthAggregator {
            cfg,
            streams: BTreeMap::new(),
        }
    }

    /// The active policy.
    pub fn config(&self) -> &AggregatorConfig {
        &self.cfg
    }

    /// Feeds one sample; returns the closed [`StreamWindow`] when this
    /// sample completes the stream's current window.
    pub fn record(&mut self, stream: &str, s: WindowSample) -> Option<StreamWindow> {
        let window = self.cfg.window;
        let state = self.streams.entry(stream.to_string()).or_default();
        state.window_hist.record(s.latency_ns);
        state.win_min_snr = match (state.win_min_snr, s.snr_db) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        state.win_peak_occupancy = state.win_peak_occupancy.max(s.queue_occupancy);
        state.win_failures += u64::from(s.failed);
        state.win_samples += 1;
        state.samples_total += 1;
        state.failures_total += u64::from(s.failed);
        if state.win_samples as usize >= window {
            return Some(Self::close_window(&self.cfg, stream, state));
        }
        None
    }

    /// Closes a stream's partial window, if it has samples.
    pub fn flush(&mut self, stream: &str) -> Option<StreamWindow> {
        let state = self.streams.get_mut(stream)?;
        (state.win_samples > 0).then(|| Self::close_window(&self.cfg, stream, state))
    }

    /// Closes every stream's partial window, in stream-name order.
    pub fn flush_all(&mut self) -> Vec<StreamWindow> {
        let names: Vec<String> = self.streams.keys().cloned().collect();
        names.iter().filter_map(|n| self.flush(n)).collect()
    }

    fn close_window(cfg: &AggregatorConfig, stream: &str, state: &mut StreamState) -> StreamWindow {
        let h = &state.window_hist;
        let breached = state.win_min_snr.is_some_and(|snr| snr < cfg.snr_floor_db);
        state.snr_breach_run = if breached {
            state.snr_breach_run + 1
        } else {
            0
        };
        let flags = DegradationFlags {
            snr_below_floor: state.snr_breach_run >= cfg.snr_breach_windows,
            queue_saturated: state.win_peak_occupancy >= cfg.queue_saturation,
            worker_starved: h.quantile(0.50) > cfg.starvation_latency_ns,
        };
        let out = StreamWindow {
            stream: stream.to_string(),
            window: state.windows_closed,
            samples: state.win_samples,
            p50_ns: h.quantile(0.50),
            p95_ns: h.quantile(0.95),
            p99_ns: h.quantile(0.99),
            min_snr_db: state.win_min_snr,
            peak_occupancy: state.win_peak_occupancy,
            failures: state.win_failures,
            flags,
        };
        state.rolling_hist.merge_from(h);
        state.windows_closed += 1;
        state.degraded_windows += u64::from(flags.any());
        state.flags_any = state.flags_any.or(flags);
        state.window_hist = Histogram::default();
        state.win_min_snr = None;
        state.win_peak_occupancy = 0.0;
        state.win_failures = 0;
        state.win_samples = 0;
        out
    }

    /// Rolling per-stream summaries, sorted by stream name. Partial
    /// windows contribute only after a [`Self::flush`].
    pub fn health(&self) -> Vec<StreamHealth> {
        self.streams
            .iter()
            .map(|(name, s)| StreamHealth {
                stream: name.clone(),
                windows: s.windows_closed,
                samples: s.samples_total,
                p50_ns: s.rolling_hist.quantile(0.50),
                p95_ns: s.rolling_hist.quantile(0.95),
                p99_ns: s.rolling_hist.quantile(0.99),
                degraded_windows: s.degraded_windows,
                flags: s.flags_any,
                failures: s.failures_total,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn sample(latency_ns: f64, snr_db: f64, occ: f64) -> WindowSample {
        WindowSample {
            latency_ns,
            snr_db: Some(snr_db),
            queue_occupancy: occ,
            failed: false,
        }
    }

    #[test]
    fn windows_close_on_schedule() {
        let mut agg = HealthAggregator::new(AggregatorConfig {
            window: 3,
            ..AggregatorConfig::default()
        });
        assert!(agg.record("s0", sample(1000.0, 20.0, 0.1)).is_none());
        assert!(agg.record("s0", sample(2000.0, 20.0, 0.2)).is_none());
        let w = agg.record("s0", sample(4000.0, 20.0, 0.3)).expect("closes");
        assert_eq!(w.window, 0);
        assert_eq!(w.samples, 3);
        assert!(w.p50_ns >= 1000.0 && w.p50_ns <= 4000.0, "{}", w.p50_ns);
        assert!((w.peak_occupancy - 0.3).abs() < 1e-12);
        assert!(!w.flags.any());
        // second window gets index 1
        for _ in 0..2 {
            assert!(agg.record("s0", sample(1000.0, 20.0, 0.1)).is_none());
        }
        let w2 = agg.record("s0", sample(1000.0, 20.0, 0.1)).unwrap();
        assert_eq!(w2.window, 1);
    }

    #[test]
    fn snr_breach_needs_consecutive_windows() {
        let cfg = AggregatorConfig {
            window: 1,
            snr_floor_db: 10.0,
            snr_breach_windows: 2,
            ..AggregatorConfig::default()
        };
        let mut agg = HealthAggregator::new(cfg);
        let w1 = agg.record("s", sample(1.0, 5.0, 0.0)).unwrap();
        assert!(!w1.flags.snr_below_floor, "one breach window is not enough");
        let w2 = agg.record("s", sample(1.0, 5.0, 0.0)).unwrap();
        assert!(w2.flags.snr_below_floor, "second consecutive breach flags");
        // a healthy window resets the run
        let w3 = agg.record("s", sample(1.0, 30.0, 0.0)).unwrap();
        assert!(!w3.flags.snr_below_floor);
        let w4 = agg.record("s", sample(1.0, 5.0, 0.0)).unwrap();
        assert!(!w4.flags.snr_below_floor);
    }

    #[test]
    fn saturation_and_starvation_flags() {
        let cfg = AggregatorConfig {
            window: 2,
            queue_saturation: 0.75,
            starvation_latency_ns: 1e6,
            ..AggregatorConfig::default()
        };
        let mut agg = HealthAggregator::new(cfg);
        agg.record("s", sample(5e6, 20.0, 0.5));
        let w = agg.record("s", sample(5e6, 20.0, 0.8)).unwrap();
        assert!(w.flags.queue_saturated);
        assert!(w.flags.worker_starved);
        assert!(w.flags.any());
    }

    #[test]
    fn missing_snr_keeps_snr_flag_quiet() {
        let cfg = AggregatorConfig {
            window: 1,
            snr_floor_db: 10.0,
            snr_breach_windows: 1,
            ..AggregatorConfig::default()
        };
        let mut agg = HealthAggregator::new(cfg);
        let w = agg
            .record(
                "s",
                WindowSample {
                    latency_ns: 1.0,
                    snr_db: None,
                    queue_occupancy: 0.0,
                    failed: true,
                },
            )
            .unwrap();
        assert!(!w.flags.snr_below_floor);
        assert_eq!(w.min_snr_db, None);
        assert_eq!(w.failures, 1);
    }

    #[test]
    fn flush_closes_partial_windows_and_health_rolls_up() {
        let mut agg = HealthAggregator::new(AggregatorConfig {
            window: 4,
            ..AggregatorConfig::default()
        });
        for _ in 0..4 {
            agg.record("a", sample(1000.0, 20.0, 0.1));
        }
        agg.record("b", sample(2000.0, 20.0, 0.2));
        assert!(agg.flush("a").is_none(), "a has no partial window");
        let wb = agg.flush("b").expect("b has a partial window");
        assert_eq!(wb.samples, 1);
        assert!(agg.flush_all().is_empty(), "everything already flushed");

        let health = agg.health();
        assert_eq!(health.len(), 2);
        assert_eq!(health[0].stream, "a");
        assert_eq!(health[0].windows, 1);
        assert_eq!(health[0].samples, 4);
        assert_eq!(health[1].stream, "b");
        assert_eq!(health[1].samples, 1);
    }

    #[test]
    fn window_json_is_single_line_and_parses() {
        let mut agg = HealthAggregator::new(AggregatorConfig {
            window: 1,
            ..AggregatorConfig::default()
        });
        let w = agg.record("s0", sample(1500.0, 18.0, 0.25)).unwrap();
        let line = w.to_json();
        assert!(!line.contains('\n'), "{line}");
        let v = json::parse(&line).expect("window JSON parses");
        assert_eq!(v.get("stream").unwrap().as_str(), Some("s0"));
        assert_eq!(v.get("samples").unwrap().as_f64(), Some(1.0));
        assert_eq!(v.get("snr_below_floor"), Some(&json::Value::Bool(false)));
    }
}

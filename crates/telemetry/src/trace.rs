//! Continuous timeline tracing: per-thread lock-free SPSC event rings
//! flushed into Chrome trace-event JSON.
//!
//! Where the recorder ([`crate::Recorder`]) aggregates — histograms,
//! counters, one number per metric — the trace ring keeps the *timeline*:
//! every span begin/end, instant, flow and counter event with a raw TSC
//! timestamp ([`crate::fastclock`]), per worker thread, in a bounded
//! ring. The collector ([`collect`]) drains all rings and the writer
//! ([`TraceSnapshot::chrome_trace`]) emits Chrome trace-event JSON that
//! loads directly in Perfetto or `chrome://tracing`, with one lane per
//! worker thread, flow arrows linking cross-thread handoffs (producer →
//! consumer fan-out, synth chunks → fused spectrum extraction), and
//! per-stream counter tracks.
//!
//! ## Hot-path contract
//!
//! Recording never blocks and never allocates after a thread's first
//! event: each thread owns a single-producer ring ([`ring_capacity`]
//! slots); the only consumer is the collector. A full ring *drops* the
//! new event and bumps a relaxed drop counter ([`drop_count`]) — the
//! pipeline never stalls on its own observability. When tracing is
//! disabled (the default) every entry point is one relaxed atomic load.
//!
//! Tracing touches no RNG or numeric state, so pipeline outputs are
//! bit-identical with tracing on or off (pinned in
//! `tests/observability.rs`).

use crate::fastclock;
use crate::json::JsonWriter;
use std::cell::{Cell, RefCell, UnsafeCell};
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Sentinel for "no argument attached" on an event.
pub const NO_ARG: u64 = u64::MAX;

/// Default per-thread ring capacity in events (power of two). Override
/// with `WIFORCE_TRACE_CAPACITY` (rounded up to a power of two).
pub const DEFAULT_RING_CAPACITY: usize = 1 << 14;

/// Per-thread ring capacity for this process (read once; see
/// [`DEFAULT_RING_CAPACITY`]).
pub fn ring_capacity() -> usize {
    static CAP: OnceLock<usize> = OnceLock::new();
    *CAP.get_or_init(|| {
        std::env::var("WIFORCE_TRACE_CAPACITY")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .map(|n| n.clamp(16, 1 << 22).next_power_of_two())
            .unwrap_or(DEFAULT_RING_CAPACITY)
    })
}

/// What a [`TraceEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Span opened (Chrome phase `B`). `arg` optionally carries an id.
    Begin,
    /// Span closed (Chrome phase `E`).
    End,
    /// Point event (Chrome phase `i`, thread scope).
    Instant,
    /// Flow start (Chrome phase `s`); `flow` is the flow id a later
    /// [`EventKind::FlowEnd`] binds to.
    FlowStart,
    /// Flow end (Chrome phase `f`, binding point `e`).
    FlowEnd,
    /// Counter sample (Chrome phase `C`); `arg` is the value and `flow`
    /// selects the series (rendered as `name.<flow>`).
    Counter,
}

/// One timeline event. Plain-old-data so ring slots are trivially
/// copyable; names are `&'static str` so recording never allocates.
#[derive(Debug, Clone, Copy)]
pub struct TraceEvent {
    /// Raw [`fastclock::ticks`] timestamp.
    pub tsc: u64,
    /// Event name (span / flow / counter name).
    pub name: &'static str,
    /// Phase.
    pub kind: EventKind,
    /// Kind-specific argument ([`NO_ARG`] when absent): counter value,
    /// or a stream/group id annotated onto spans and instants.
    pub arg: u64,
    /// Flow id for flow events, series id for counters ([`NO_ARG`]
    /// when absent).
    pub flow: u64,
}

/// The SPSC ring. The owning thread is the only producer; the collector
/// (under the registry lock) is the only consumer. `head` is the
/// producer's write cursor, `tail` the consumer's read cursor; both grow
/// monotonically and are masked into the slot array.
struct Ring {
    slots: Box<[UnsafeCell<MaybeUninit<TraceEvent>>]>,
    mask: usize,
    head: AtomicUsize,
    tail: AtomicUsize,
    dropped: AtomicU64,
}

// Safety: the SPSC protocol makes slot access exclusive — the producer
// writes a slot strictly before publishing it via `head` (Release), and
// the consumer only reads slots at indices below an Acquire-loaded
// `head`, retiring them via `tail` before the producer may reuse them.
unsafe impl Sync for Ring {}
unsafe impl Send for Ring {}

impl Ring {
    fn new(capacity: usize) -> Ring {
        let cap = capacity.next_power_of_two().max(16);
        let slots = (0..cap)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Ring {
            slots,
            mask: cap - 1,
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Producer side: append one event or count a drop. Never blocks.
    #[inline]
    fn push(&self, ev: TraceEvent) {
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Acquire);
        if head.wrapping_sub(tail) > self.mask {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        unsafe {
            (*self.slots[head & self.mask].get()).write(ev);
        }
        self.head.store(head.wrapping_add(1), Ordering::Release);
    }

    /// Consumer side: drain everything published so far.
    fn drain(&self, out: &mut Vec<TraceEvent>) {
        let head = self.head.load(Ordering::Acquire);
        let mut tail = self.tail.load(Ordering::Relaxed);
        while tail != head {
            out.push(unsafe { (*self.slots[tail & self.mask].get()).assume_init() });
            tail = tail.wrapping_add(1);
        }
        self.tail.store(tail, Ordering::Release);
    }
}

/// One registered worker lane: its ring plus display identity.
struct Lane {
    ring: Ring,
    /// Chrome `tid` for this lane (registration order).
    lane: u32,
    thread_name: String,
}

/// The global enable gate, independent of the telemetry recorder's.
static TRACING: AtomicBool = AtomicBool::new(false);
/// Bumped by [`reset`] so thread-local lane handles re-register instead
/// of writing into a retired ring.
static EPOCH: AtomicU64 = AtomicU64::new(0);

fn registry() -> &'static Mutex<Vec<Arc<Lane>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<Lane>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static LOCAL_LANE: RefCell<Option<Arc<Lane>>> = const { RefCell::new(None) };
    static LOCAL_EPOCH: Cell<u64> = const { Cell::new(u64::MAX) };
}

/// `true` when the trace ring is capturing.
#[inline(always)]
pub fn trace_enabled() -> bool {
    TRACING.load(Ordering::Relaxed)
}

/// Turns timeline capture on or off (process-wide).
pub fn set_trace_enabled(on: bool) {
    TRACING.store(on, Ordering::Relaxed);
}

/// Records one event into this thread's ring (cold path: the caller
/// checked [`trace_enabled`]). Registers the lane on first use and after
/// every [`reset`].
fn emit(kind: EventKind, name: &'static str, arg: u64, flow: u64) {
    let ev = TraceEvent {
        tsc: fastclock::ticks(),
        name,
        kind,
        arg,
        flow,
    };
    let epoch = EPOCH.load(Ordering::Relaxed);
    LOCAL_LANE.with(|slot| {
        let mut slot = slot.borrow_mut();
        if slot.is_none() || LOCAL_EPOCH.get() != epoch {
            let mut reg = registry().lock().expect("trace registry");
            let lane = Arc::new(Lane {
                ring: Ring::new(ring_capacity()),
                lane: reg.len() as u32,
                thread_name: std::thread::current()
                    .name()
                    .map(str::to_string)
                    .unwrap_or_else(|| format!("thread-{}", reg.len())),
            });
            reg.push(Arc::clone(&lane));
            *slot = Some(lane);
            LOCAL_EPOCH.set(epoch);
        }
        slot.as_ref().expect("lane registered above").ring.push(ev);
    });
}

/// Emits a span-begin event. No-op while tracing is off.
#[inline]
pub fn begin(name: &'static str) {
    if trace_enabled() {
        emit(EventKind::Begin, name, NO_ARG, NO_ARG);
    }
}

/// Emits a span-end event. No-op while tracing is off.
#[inline]
pub fn end(name: &'static str) {
    if trace_enabled() {
        emit(EventKind::End, name, NO_ARG, NO_ARG);
    }
}

/// Emits an instant event annotated with `arg` (use [`NO_ARG`] for
/// none). No-op while tracing is off.
#[inline]
pub fn instant(name: &'static str, arg: u64) {
    if trace_enabled() {
        emit(EventKind::Instant, name, arg, NO_ARG);
    }
}

/// Emits a flow-start event; a later [`flow_end`] with the same id draws
/// the arrow (across threads). No-op while tracing is off.
#[inline]
pub fn flow_start(name: &'static str, id: u64) {
    if trace_enabled() {
        emit(EventKind::FlowStart, name, NO_ARG, id);
    }
}

/// Emits a flow-end event binding to the enclosing slice. No-op while
/// tracing is off.
#[inline]
pub fn flow_end(name: &'static str, id: u64) {
    if trace_enabled() {
        emit(EventKind::FlowEnd, name, NO_ARG, id);
    }
}

/// Emits a counter sample; `series` ([`NO_ARG`] for none) splits one
/// name into per-stream tracks (`name.<series>`). No-op while off.
#[inline]
pub fn counter_value(name: &'static str, value: u64, series: u64) {
    if trace_enabled() {
        emit(EventKind::Counter, name, value, series);
    }
}

/// A trace-only span guard: begin on construction, end on drop. Inert
/// (no events, no registration) when tracing was off at entry.
#[must_use = "a trace span emits its end event on drop"]
pub struct TraceSpan {
    name: &'static str,
    active: bool,
}

/// Opens a trace-only span (for hot-loop stages too fine-grained for the
/// aggregating recorder, e.g. per-chunk synthesis).
#[inline]
pub fn span(name: &'static str) -> TraceSpan {
    let active = trace_enabled();
    if active {
        emit(EventKind::Begin, name, NO_ARG, NO_ARG);
    }
    TraceSpan { name, active }
}

/// Opens a trace-only span annotated with `arg` (e.g. a group id).
#[inline]
pub fn span_arg(name: &'static str, arg: u64) -> TraceSpan {
    let active = trace_enabled();
    if active {
        emit(EventKind::Begin, name, arg, NO_ARG);
    }
    TraceSpan { name, active }
}

impl Drop for TraceSpan {
    #[inline]
    fn drop(&mut self) {
        if self.active {
            end(self.name);
        }
    }
}

/// Events drained from one lane, in ring (per-thread chronological)
/// order.
pub struct LaneEvents {
    /// Chrome `tid`.
    pub lane: u32,
    /// OS thread name at registration.
    pub thread_name: String,
    /// The lane's events.
    pub events: Vec<TraceEvent>,
}

/// Everything the collector drained, plus what the writer needs to turn
/// ticks into microseconds.
pub struct TraceSnapshot {
    /// Per-lane event lists, in lane order.
    pub lanes: Vec<LaneEvents>,
    /// Events rejected by full rings since the last [`reset`].
    pub dropped: u64,
    /// Tick → nanosecond scale at collection time.
    pub ns_per_tick: f64,
}

impl TraceSnapshot {
    /// Total drained events across lanes.
    pub fn total_events(&self) -> usize {
        self.lanes.iter().map(|l| l.events.len()).sum()
    }

    /// Serializes the snapshot as Chrome trace-event JSON (object form:
    /// `{"traceEvents": [...], "otherData": {...}}`), loadable in
    /// Perfetto / `chrome://tracing`. Events are globally sorted by
    /// timestamp; each lane becomes a `tid` with a `thread_name`
    /// metadata record; `otherData` carries the drop count so artifact
    /// validation can gate on it.
    pub fn chrome_trace(&self) -> String {
        let t0 = self
            .lanes
            .iter()
            .flat_map(|l| l.events.iter().map(|e| e.tsc))
            .min()
            .unwrap_or(0);
        let us = |tsc: u64| tsc.wrapping_sub(t0) as f64 * self.ns_per_tick / 1e3;

        let mut flat: Vec<(u32, &TraceEvent)> = Vec::with_capacity(self.total_events());
        for lane in &self.lanes {
            for ev in &lane.events {
                flat.push((lane.lane, ev));
            }
        }
        flat.sort_by(|a, b| a.1.tsc.cmp(&b.1.tsc).then(a.0.cmp(&b.0)));

        let mut w = JsonWriter::new();
        w.begin_object();
        w.begin_array_key("traceEvents");
        w.begin_object();
        w.string("name", "process_name")
            .string("ph", "M")
            .integer("pid", 1)
            .integer("tid", 0);
        w.begin_object_key("args");
        w.string("name", "wiforce");
        w.end_object();
        w.end_object();
        for lane in &self.lanes {
            w.begin_object();
            w.string("name", "thread_name")
                .string("ph", "M")
                .integer("pid", 1)
                .integer("tid", lane.lane as u64);
            w.begin_object_key("args");
            w.string("name", &lane.thread_name);
            w.end_object();
            w.end_object();
        }
        for (tid, ev) in &flat {
            w.begin_object();
            match ev.kind {
                EventKind::Begin => {
                    w.string("name", ev.name).string("ph", "B");
                }
                EventKind::End => {
                    w.string("name", ev.name).string("ph", "E");
                }
                EventKind::Instant => {
                    w.string("name", ev.name).string("ph", "i").string("s", "t");
                }
                EventKind::FlowStart => {
                    w.string("name", ev.name).string("ph", "s");
                    w.integer("id", ev.flow);
                }
                EventKind::FlowEnd => {
                    w.string("name", ev.name)
                        .string("ph", "f")
                        .string("bp", "e");
                    w.integer("id", ev.flow);
                }
                EventKind::Counter => {
                    // per-series counters get their own named track
                    if ev.flow != NO_ARG {
                        let series = format!("{}.{}", ev.name, ev.flow);
                        w.string("name", &series);
                    } else {
                        w.string("name", ev.name);
                    }
                    w.string("ph", "C");
                }
            }
            let cat = match ev.kind {
                EventKind::FlowStart | EventKind::FlowEnd => "flow",
                _ => "wiforce",
            };
            w.string("cat", cat)
                .number("ts", us(ev.tsc))
                .integer("pid", 1)
                .integer("tid", *tid as u64);
            match ev.kind {
                EventKind::Counter => {
                    w.begin_object_key("args");
                    w.integer("value", ev.arg);
                    w.end_object();
                }
                _ if ev.arg != NO_ARG => {
                    w.begin_object_key("args");
                    w.integer("id", ev.arg);
                    w.end_object();
                }
                _ => {}
            }
            w.end_object();
        }
        w.end_array();
        w.begin_object_key("otherData");
        w.integer("dropped_events", self.dropped);
        w.number("ns_per_tick", self.ns_per_tick);
        w.integer("lanes", self.lanes.len() as u64);
        w.end_object();
        w.end_object();
        w.finish()
    }
}

/// Drains every registered lane's ring into a [`TraceSnapshot`]. Safe to
/// call while producers are still recording (they keep appending past the
/// drain point); call after the traced workload for a complete timeline.
pub fn collect() -> TraceSnapshot {
    let reg = registry().lock().expect("trace registry");
    let mut lanes = Vec::with_capacity(reg.len());
    let mut dropped = 0u64;
    for lane in reg.iter() {
        let mut events = Vec::new();
        lane.ring.drain(&mut events);
        dropped += lane.ring.dropped.load(Ordering::Relaxed);
        lanes.push(LaneEvents {
            lane: lane.lane,
            thread_name: lane.thread_name.clone(),
            events,
        });
    }
    TraceSnapshot {
        lanes,
        dropped,
        ns_per_tick: fastclock::ns_per_tick(),
    }
}

/// Total events dropped by full rings since the last [`reset`].
pub fn drop_count() -> u64 {
    let reg = registry().lock().expect("trace registry");
    reg.iter()
        .map(|l| l.ring.dropped.load(Ordering::Relaxed))
        .sum()
}

/// Discards all captured events and retires every lane. Threads
/// re-register (fresh rings, fresh lane ids) on their next event.
pub fn reset() {
    EPOCH.fetch_add(1, Ordering::Relaxed);
    registry().lock().expect("trace registry").clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    /// Serializes trace tests: they all mutate the global gate/registry.
    fn with_gate<T>(on: bool, f: impl FnOnce() -> T) -> T {
        use std::sync::Mutex;
        static LOCK: Mutex<()> = Mutex::new(());
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        set_trace_enabled(on);
        let out = f();
        set_trace_enabled(false);
        reset();
        out
    }

    fn with_tracing<T>(f: impl FnOnce() -> T) -> T {
        with_gate(true, f)
    }

    #[test]
    fn disabled_records_nothing() {
        let snap = with_gate(false, || {
            begin("x");
            end("x");
            instant("p", 3);
            let _s = span("y");
            collect()
        });
        assert_eq!(snap.total_events(), 0);
        assert_eq!(snap.dropped, 0);
    }

    #[test]
    fn events_round_trip_through_ring() {
        let snap = with_tracing(|| {
            {
                let _s = span_arg("outer", 7);
                instant("tick", 1);
            }
            flow_start("hand", 42);
            flow_end("hand", 42);
            counter_value("depth", 3, 0);
            collect()
        });
        assert_eq!(snap.dropped, 0);
        assert_eq!(snap.total_events(), 6);
        let events = &snap.lanes[0].events;
        assert_eq!(events[0].kind, EventKind::Begin);
        assert_eq!(events[0].arg, 7);
        assert_eq!(events[1].kind, EventKind::Instant);
        assert_eq!(events[2].kind, EventKind::End);
        assert_eq!(events[3].flow, 42);
        // timestamps are monotone within a lane
        assert!(events.windows(2).all(|w| w[0].tsc <= w[1].tsc));
    }

    #[test]
    fn full_ring_drops_and_counts() {
        let snap = with_tracing(|| {
            let cap = ring_capacity();
            for i in 0..(cap as u64 + 10) {
                instant("spin", i);
            }
            collect()
        });
        assert_eq!(snap.dropped, 10);
        assert_eq!(snap.total_events(), ring_capacity());
    }

    #[test]
    fn chrome_trace_is_valid_json_with_lanes() {
        let text = with_tracing(|| {
            let t = std::thread::Builder::new()
                .name("trace-worker".into())
                .spawn(|| {
                    let _s = span("work");
                    instant("inside", NO_ARG);
                })
                .unwrap();
            t.join().unwrap();
            let _s = span("main-side");
            collect().chrome_trace()
        });
        let v = json::parse(&text).expect("chrome trace parses");
        let events = v.get("traceEvents").unwrap().as_array().unwrap();
        // 1 process_name + 2 thread_name + 5 events
        assert!(events.len() >= 7, "got {}", events.len());
        let names: Vec<&str> = events
            .iter()
            .filter_map(|e| e.get("name").and_then(|n| n.as_str()))
            .collect();
        assert!(names.contains(&"thread_name"));
        assert!(names.contains(&"work"));
        // ts is sorted over non-metadata events
        let ts: Vec<f64> = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) != Some("M"))
            .map(|e| e.get("ts").unwrap().as_f64().unwrap())
            .collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(
            v.get("otherData").unwrap().get("dropped_events"),
            Some(&json::Value::Num(0.0))
        );
    }

    #[test]
    fn reset_retires_lanes_and_reuses_thread() {
        with_tracing(|| {
            instant("a", 1);
            assert_eq!(collect().total_events(), 1);
            reset();
            // same thread must re-register into a fresh lane
            instant("b", 2);
            let snap = collect();
            assert_eq!(snap.total_events(), 1);
            assert_eq!(snap.lanes[0].events[0].name, "b");
            assert_eq!(drop_count(), 0);
        });
    }
}

//! Minimal dependency-free JSON: a writer used by [`crate::PipelineHealth`]
//! (same hand-rolled style as the `bench_json` binary) and a matching
//! small parser used to validate emitted artifacts in tests and CI.
//!
//! The writer covers exactly what the telemetry reports need — objects,
//! arrays, strings, bools, and finite numbers (non-finite values are
//! written as `null`). The parser accepts standard JSON; it exists so the
//! `check_artifacts` bin and the doc/health tests can assert structure
//! without a `serde`/`jq` dependency.

use std::fmt::Write as _;

/// Incremental JSON writer with indentation, producing output in the
/// same two-space style as `BENCH_pipeline.json`.
#[derive(Debug, Default)]
pub struct JsonWriter {
    out: String,
    /// Per-open-container flag: has this container emitted an item yet?
    stack: Vec<bool>,
}

impl JsonWriter {
    /// A fresh writer.
    pub fn new() -> Self {
        JsonWriter::default()
    }

    fn indent(&mut self) {
        for _ in 0..self.stack.len() {
            self.out.push_str("  ");
        }
    }

    /// Comma/newline bookkeeping before a new item in the open container.
    fn pre_item(&mut self) {
        if let Some(has_items) = self.stack.last_mut() {
            if *has_items {
                self.out.push(',');
            }
            *has_items = true;
            self.out.push('\n');
            self.indent();
        }
    }

    fn escaped(s: &str) -> String {
        let mut out = String::with_capacity(s.len());
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                '\r' => out.push_str("\\r"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
        out
    }

    /// Opens the root object (or a nested anonymous one inside an array).
    pub fn begin_object(&mut self) -> &mut Self {
        self.pre_item();
        self.out.push('{');
        self.stack.push(false);
        self
    }

    /// Opens `"key": {`.
    pub fn begin_object_key(&mut self, key: &str) -> &mut Self {
        self.pre_item();
        let _ = write!(self.out, "\"{}\": {{", Self::escaped(key));
        self.stack.push(false);
        self
    }

    /// Closes the innermost object.
    pub fn end_object(&mut self) -> &mut Self {
        let had_items = self.stack.pop().unwrap_or(false);
        if had_items {
            self.out.push('\n');
            self.indent();
        }
        self.out.push('}');
        self
    }

    /// Opens `"key": [`.
    pub fn begin_array_key(&mut self, key: &str) -> &mut Self {
        self.pre_item();
        let _ = write!(self.out, "\"{}\": [", Self::escaped(key));
        self.stack.push(false);
        self
    }

    /// Closes the innermost array.
    pub fn end_array(&mut self) -> &mut Self {
        let had_items = self.stack.pop().unwrap_or(false);
        if had_items {
            self.out.push('\n');
            self.indent();
        }
        self.out.push(']');
        self
    }

    /// Writes `"key": "value"`.
    pub fn string(&mut self, key: &str, value: &str) -> &mut Self {
        self.pre_item();
        let _ = write!(
            self.out,
            "\"{}\": \"{}\"",
            Self::escaped(key),
            Self::escaped(value)
        );
        self
    }

    /// Writes `"key": <number>`; non-finite values become `null`.
    pub fn number(&mut self, key: &str, value: f64) -> &mut Self {
        self.pre_item();
        if value.is_finite() {
            let _ = write!(self.out, "\"{}\": {}", Self::escaped(key), value);
        } else {
            let _ = write!(self.out, "\"{}\": null", Self::escaped(key));
        }
        self
    }

    /// Writes `"key": <integer>`.
    pub fn integer(&mut self, key: &str, value: u64) -> &mut Self {
        self.pre_item();
        let _ = write!(self.out, "\"{}\": {}", Self::escaped(key), value);
        self
    }

    /// Writes `"key": true|false`.
    pub fn boolean(&mut self, key: &str, value: bool) -> &mut Self {
        self.pre_item();
        let _ = write!(self.out, "\"{}\": {}", Self::escaped(key), value);
        self
    }

    /// Finishes and returns the document (with a trailing newline).
    pub fn finish(mut self) -> String {
        debug_assert!(self.stack.is_empty(), "unclosed containers");
        self.out.push('\n');
        self.out
    }
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null` (also produced by the writer for non-finite numbers).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Maximum container nesting depth [`parse`] accepts. Telemetry
/// artifacts nest a handful of levels; the bound exists so adversarial
/// or corrupted input (`[[[[…`) fails with an error instead of
/// overflowing the parser's recursion stack.
pub const MAX_DEPTH: usize = 128;

/// Parses a JSON document, returning the root value or a message with
/// the byte offset of the first error. Documents nested deeper than
/// [`MAX_DEPTH`] are rejected.
pub fn parse(src: &str) -> Result<Value, String> {
    let bytes = src.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize, depth: usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(b, pos, depth),
        Some(b'[') => parse_array(b, pos, depth),
        Some(b'"') => Ok(Value::Str(parse_string(b, pos)?)),
        Some(b't') => parse_keyword(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_keyword(b, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_keyword(b, pos, "null", Value::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_keyword(b: &[u8], pos: &mut usize, word: &str, v: Value) -> Result<Value, String> {
    if b[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(v)
    } else {
        Err(format!("expected '{word}' at byte {pos}"))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Value::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {pos}"))?;
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(&c) => {
                // copy the full UTF-8 sequence starting at this byte
                let s = std::str::from_utf8(&b[*pos..])
                    .map_err(|_| format!("invalid UTF-8 at byte {pos}"))?;
                let ch = s.chars().next().unwrap_or('\u{fffd}');
                out.push(ch);
                *pos += ch.len_utf8().max(1);
                let _ = c;
            }
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize, depth: usize) -> Result<Value, String> {
    if depth >= MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH} at byte {pos}"));
    }
    expect(b, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(members));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos, depth + 1)?;
        members.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize, depth: usize) -> Result<Value, String> {
    if depth >= MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH} at byte {pos}"));
    }
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos, depth + 1)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_round_trips_through_parser() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.integer("schema_version", 2)
            .string("name", "he said \"hi\"\n")
            .number("pi", 3.5)
            .number("bad", f64::NAN)
            .boolean("ok", true);
        w.begin_array_key("items");
        w.begin_object();
        w.number("v", 1.0);
        w.end_object();
        w.begin_object();
        w.number("v", 2.0);
        w.end_object();
        w.end_array();
        w.begin_object_key("nested");
        w.integer("n", 7);
        w.end_object();
        w.end_object();
        let text = w.finish();

        let v = parse(&text).expect("parses");
        assert_eq!(v.get("schema_version").unwrap().as_f64(), Some(2.0));
        assert_eq!(v.get("name").unwrap().as_str(), Some("he said \"hi\"\n"));
        assert_eq!(v.get("bad"), Some(&Value::Null));
        assert_eq!(v.get("ok"), Some(&Value::Bool(true)));
        assert_eq!(v.get("items").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(
            v.get("nested").unwrap().get("n").unwrap().as_f64(),
            Some(7.0)
        );
    }

    #[test]
    fn parses_bench_json_style() {
        let text = "{\n  \"press_iters\": 25,\n  \"ns_per_press\": 20041909,\n  \
                    \"presses_per_sec\": 49.90\n}\n";
        let v = parse(text).unwrap();
        assert_eq!(v.get("press_iters").unwrap().as_f64(), Some(25.0));
        assert_eq!(v.get("presses_per_sec").unwrap().as_f64(), Some(49.9));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1, 2,,]").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn nesting_bound_rejects_deep_documents() {
        let deep_ok = format!("{}1{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(parse(&deep_ok).is_ok());
        let too_deep = format!(
            "{}1{}",
            "[".repeat(MAX_DEPTH + 1),
            "]".repeat(MAX_DEPTH + 1)
        );
        let err = parse(&too_deep).unwrap_err();
        assert!(err.contains("nesting"), "{err}");
        // mixed object/array nesting counts the same
        let mixed = "{\"a\": ".repeat(MAX_DEPTH + 1) + "1" + &"}".repeat(MAX_DEPTH + 1);
        assert!(parse(&mixed).is_err());
    }

    #[test]
    fn empty_containers() {
        assert_eq!(parse("{}").unwrap(), Value::Obj(vec![]));
        assert_eq!(parse("[]").unwrap(), Value::Arr(vec![]));
        let mut w = JsonWriter::new();
        w.begin_object();
        w.end_object();
        assert_eq!(parse(&w.finish()).unwrap(), Value::Obj(vec![]));
    }
}

//! Process-wide metrics registry with Prometheus text exposition.
//!
//! The thread-local recorder ([`crate::Recorder`]) is built for
//! deterministic per-run artifacts: each worker records privately and
//! the engine merges snapshots in index order. A *serving* process needs
//! the opposite shape — one live registry any thread can write and any
//! scraper can read at any moment. This module provides that: named
//! counters, gauges and histograms keyed by `(name, labels)` (labels
//! carry the per-stream / per-worker dimensions), a [`snapshot`] API for
//! the future daemon's `/metrics` endpoint, and a text renderer in
//! Prometheus exposition format ([`MetricsSnapshot::prometheus`]).
//!
//! Writes go through one `Mutex` — metric updates happen at group /
//! press / job granularity (milliseconds), not per sample, so contention
//! is negligible; hot loops keep using the lock-free trace ring and the
//! thread-local recorder. Like the other observability layers the whole
//! module sits behind its own `AtomicBool` gate and is off by default;
//! every entry point is a relaxed load + early return while disabled,
//! and recording touches no RNG or numeric pipeline state.

use crate::Histogram;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// One metric series identity: a family name plus its sorted label set.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct SeriesKey {
    /// Metric family name (dotted WiForce convention, e.g.
    /// `batch.presses_served`; sanitized for Prometheus on render).
    pub name: String,
    /// Label pairs, sorted by label name.
    pub labels: Vec<(String, String)>,
}

impl SeriesKey {
    fn new(name: &str, labels: &[(&str, &str)]) -> SeriesKey {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|&(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        SeriesKey {
            name: name.to_string(),
            labels,
        }
    }

    /// `true` when this series carries the given label pair.
    pub fn has_label(&self, key: &str, value: &str) -> bool {
        self.labels.iter().any(|(k, v)| k == key && v == value)
    }
}

#[derive(Debug, Default)]
struct Registry {
    counters: BTreeMap<SeriesKey, u64>,
    gauges: BTreeMap<SeriesKey, f64>,
    histograms: BTreeMap<SeriesKey, Histogram>,
}

static METRICS: AtomicBool = AtomicBool::new(false);

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: Mutex<Registry> = Mutex::new(Registry {
        counters: BTreeMap::new(),
        gauges: BTreeMap::new(),
        histograms: BTreeMap::new(),
    });
    &REGISTRY
}

/// `true` when the registry is accepting updates.
#[inline(always)]
pub fn metrics_enabled() -> bool {
    METRICS.load(Ordering::Relaxed)
}

/// Turns the registry on or off (process-wide).
pub fn set_metrics_enabled(on: bool) {
    METRICS.store(on, Ordering::Relaxed);
}

/// Adds `n` to a labelled monotonic counter. No-op while disabled.
pub fn counter_add(name: &str, labels: &[(&str, &str)], n: u64) {
    if !metrics_enabled() {
        return;
    }
    let key = SeriesKey::new(name, labels);
    let mut reg = registry().lock().expect("metrics registry");
    *reg.counters.entry(key).or_insert(0) += n;
}

/// Sets a labelled gauge (last writer wins). No-op while disabled.
pub fn gauge_set(name: &str, labels: &[(&str, &str)], v: f64) {
    if !metrics_enabled() {
        return;
    }
    let key = SeriesKey::new(name, labels);
    let mut reg = registry().lock().expect("metrics registry");
    reg.gauges.insert(key, v);
}

/// Records one value into a labelled histogram. No-op while disabled.
pub fn observe(name: &str, labels: &[(&str, &str)], v: f64) {
    if !metrics_enabled() {
        return;
    }
    let key = SeriesKey::new(name, labels);
    let mut reg = registry().lock().expect("metrics registry");
    reg.histograms.entry(key).or_default().record(v);
}

/// Merges a pre-aggregated histogram into a labelled series — for
/// folding an engine's per-run histogram (queue depth, latency) into
/// the live registry in one call. No-op while disabled.
pub fn merge_histogram(name: &str, labels: &[(&str, &str)], h: &Histogram) {
    if !metrics_enabled() || h.count == 0 {
        return;
    }
    let key = SeriesKey::new(name, labels);
    let mut reg = registry().lock().expect("metrics registry");
    reg.histograms.entry(key).or_default().merge_from(h);
}

/// Clears every series (the gate state is untouched).
pub fn reset() {
    let mut reg = registry().lock().expect("metrics registry");
    *reg = Registry::default();
}

/// A point-in-time copy of the registry.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Counter series, sorted by key.
    pub counters: Vec<(SeriesKey, u64)>,
    /// Gauge series, sorted by key.
    pub gauges: Vec<(SeriesKey, f64)>,
    /// Histogram series, sorted by key.
    pub histograms: Vec<(SeriesKey, Histogram)>,
}

/// Copies the registry (works whether or not recording is enabled, so a
/// scraper can read after the workload disabled updates).
pub fn snapshot() -> MetricsSnapshot {
    let reg = registry().lock().expect("metrics registry");
    MetricsSnapshot {
        counters: reg.counters.iter().map(|(k, &v)| (k.clone(), v)).collect(),
        gauges: reg.gauges.iter().map(|(k, &v)| (k.clone(), v)).collect(),
        histograms: reg
            .histograms
            .iter()
            .map(|(k, h)| (k.clone(), h.clone()))
            .collect(),
    }
}

/// Renders the current registry in Prometheus text exposition format.
pub fn prometheus() -> String {
    snapshot().prometheus()
}

/// Maps a dotted WiForce metric name onto the Prometheus grammar:
/// `wiforce_` prefix, `[a-zA-Z0-9_:]` body, leading digits guarded.
fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 8);
    out.push_str("wiforce_");
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            if i == 0 && c.is_ascii_digit() {
                out.push('_');
            }
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn render_labels(out: &mut String, labels: &[(String, String)], extra: Option<(&str, &str)>) {
    if labels.is_empty() && extra.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels
        .iter()
        .map(|(k, v)| (k.as_str(), v.as_str()))
        .chain(extra)
    {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(&escape_label(v));
        out.push('"');
    }
    out.push('}');
}

fn render_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

impl MetricsSnapshot {
    /// Total number of exported series (histograms count once each).
    pub fn series_count(&self) -> usize {
        self.counters.len() + self.gauges.len() + self.histograms.len()
    }

    /// Looks up a counter by name and exact label subset.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        let key = SeriesKey::new(name, labels);
        self.counters
            .iter()
            .find(|(k, _)| *k == key)
            .map(|&(_, v)| v)
    }

    /// Looks up a gauge by name and exact label set.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        let key = SeriesKey::new(name, labels);
        self.gauges.iter().find(|(k, _)| *k == key).map(|&(_, v)| v)
    }

    /// Renders Prometheus text exposition: counters and gauges as-is,
    /// histograms as summaries (p50/p95/p99 quantile series plus `_sum`
    /// and `_count`). Families are announced once with a `# TYPE` line;
    /// series order is deterministic (sorted keys).
    pub fn prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_family = String::new();
        let type_line = |out: &mut String, last: &mut String, fam: &str, ty: &str| {
            if *last != fam {
                out.push_str("# TYPE ");
                out.push_str(fam);
                out.push(' ');
                out.push_str(ty);
                out.push('\n');
                *last = fam.to_string();
            }
        };
        for (key, v) in &self.counters {
            let fam = sanitize(&key.name);
            type_line(&mut out, &mut last_family, &fam, "counter");
            out.push_str(&fam);
            render_labels(&mut out, &key.labels, None);
            out.push(' ');
            out.push_str(&v.to_string());
            out.push('\n');
        }
        for (key, v) in &self.gauges {
            let fam = sanitize(&key.name);
            type_line(&mut out, &mut last_family, &fam, "gauge");
            out.push_str(&fam);
            render_labels(&mut out, &key.labels, None);
            out.push(' ');
            out.push_str(&render_f64(*v));
            out.push('\n');
        }
        for (key, h) in &self.histograms {
            let fam = sanitize(&key.name);
            type_line(&mut out, &mut last_family, &fam, "summary");
            for (q, label) in [(0.50, "0.5"), (0.95, "0.95"), (0.99, "0.99")] {
                out.push_str(&fam);
                render_labels(&mut out, &key.labels, Some(("quantile", label)));
                out.push(' ');
                out.push_str(&render_f64(h.quantile(q)));
                out.push('\n');
            }
            out.push_str(&fam);
            out.push_str("_sum");
            render_labels(&mut out, &key.labels, None);
            out.push(' ');
            out.push_str(&render_f64(h.sum));
            out.push('\n');
            out.push_str(&fam);
            out.push_str("_count");
            render_labels(&mut out, &key.labels, None);
            out.push(' ');
            out.push_str(&h.count.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes access to the global registry across tests.
    fn with_metrics<T>(f: impl FnOnce() -> T) -> T {
        static LOCK: Mutex<()> = Mutex::new(());
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        set_metrics_enabled(true);
        let out = f();
        set_metrics_enabled(false);
        reset();
        out
    }

    #[test]
    fn disabled_records_nothing() {
        let snap = with_metrics(|| {
            set_metrics_enabled(false);
            counter_add("c", &[], 1);
            gauge_set("g", &[], 1.0);
            observe("o", &[], 1.0);
            set_metrics_enabled(true);
            snapshot()
        });
        assert_eq!(snap.series_count(), 0);
    }

    #[test]
    fn labelled_series_accumulate_independently() {
        let snap = with_metrics(|| {
            counter_add("batch.presses_served", &[("stream", "s0")], 2);
            counter_add("batch.presses_served", &[("stream", "s0")], 3);
            counter_add("batch.presses_served", &[("stream", "s1")], 1);
            gauge_set("batch.queue_peak", &[("stream", "s0")], 4.0);
            observe("batch.latency_ns", &[("stream", "s0")], 1000.0);
            observe("batch.latency_ns", &[("stream", "s0")], 3000.0);
            snapshot()
        });
        assert_eq!(
            snap.counter("batch.presses_served", &[("stream", "s0")]),
            Some(5)
        );
        assert_eq!(
            snap.counter("batch.presses_served", &[("stream", "s1")]),
            Some(1)
        );
        assert_eq!(
            snap.gauge("batch.queue_peak", &[("stream", "s0")]),
            Some(4.0)
        );
        assert_eq!(snap.histograms.len(), 1);
        assert_eq!(snap.histograms[0].1.count, 2);
    }

    #[test]
    fn label_order_does_not_split_series() {
        let snap = with_metrics(|| {
            counter_add("x", &[("a", "1"), ("b", "2")], 1);
            counter_add("x", &[("b", "2"), ("a", "1")], 1);
            snapshot()
        });
        assert_eq!(snap.counters.len(), 1);
        assert_eq!(snap.counters[0].1, 2);
    }

    #[test]
    fn prometheus_exposition_shape() {
        let text = with_metrics(|| {
            counter_add("batch.presses_served", &[("stream", "s0")], 7);
            gauge_set("estimator.locked", &[("stream", "s0")], 1.0);
            observe("batch.group_latency_ns", &[("stream", "s0")], 2048.0);
            prometheus()
        });
        assert!(
            text.contains("# TYPE wiforce_batch_presses_served counter"),
            "{text}"
        );
        assert!(text.contains("wiforce_batch_presses_served{stream=\"s0\"} 7"));
        assert!(text.contains("# TYPE wiforce_estimator_locked gauge"));
        assert!(text.contains("# TYPE wiforce_batch_group_latency_ns summary"));
        assert!(text.contains("quantile=\"0.5\""));
        assert!(text.contains("wiforce_batch_group_latency_ns_count{stream=\"s0\"} 1"));
        assert!(text.contains("wiforce_batch_group_latency_ns_sum{stream=\"s0\"} 2048"));
        // every non-comment line is `name[{labels}] value`
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (series, value) = line.rsplit_once(' ').expect("sample line");
            assert!(!series.is_empty());
            assert!(
                value.parse::<f64>().is_ok() || ["NaN", "+Inf", "-Inf"].contains(&value),
                "bad value {value}"
            );
        }
    }

    #[test]
    fn merge_histogram_folds_engine_runs() {
        let snap = with_metrics(|| {
            let mut h = Histogram::default();
            h.record(10.0);
            h.record(20.0);
            merge_histogram("batch.queue_depth", &[], &h);
            merge_histogram("batch.queue_depth", &[], &h);
            merge_histogram("empty", &[], &Histogram::default());
            snapshot()
        });
        assert_eq!(snap.histograms.len(), 1);
        assert_eq!(snap.histograms[0].1.count, 4);
        assert!((snap.histograms[0].1.sum - 60.0).abs() < 1e-12);
    }

    #[test]
    fn sanitize_maps_dots_and_guards_digits() {
        assert_eq!(sanitize("batch.queue_peak"), "wiforce_batch_queue_peak");
        assert_eq!(sanitize("9lives"), "wiforce__9lives");
        assert_eq!(sanitize("a-b c"), "wiforce_a_b_c");
    }
}

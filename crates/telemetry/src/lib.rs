#![warn(missing_docs)]

//! # wiforce-telemetry
//!
//! Zero-cost observability for the WiForce pipeline: hierarchical
//! [`span!`]s with monotonic timing, [`counter!`]s, [`gauge!`]s and
//! fixed-bucket [`observe!`] histograms, recorded into a thread-local
//! [`Recorder`] and aggregated into a [`PipelineHealth`] report.
//!
//! The whole crate is gated behind one `static AtomicBool`: when
//! telemetry is disabled (the default) every instrumentation call is a
//! single relaxed atomic load followed by an `#[inline]` early return,
//! so the instrumented hot paths cost nothing measurable (the
//! `bench_json` binary tracks the off-vs-on overhead in
//! `BENCH_pipeline.json`). Enabling the recorder never touches any RNG
//! or numeric state, so estimator outputs are bit-identical with
//! telemetry on or off (proptested in `tests/telemetry_determinism.rs`).
//!
//! Spans are hierarchical: a span entered while another is open records
//! under the joined path (`"pipeline.measure_press/harmonics.extract_lines"`),
//! giving per-stage latency breakdowns without a global registry.
//!
//! No external dependencies — JSON serialization is the crate's own tiny
//! writer ([`json`]), and a matching minimal parser is provided for
//! artifact validation in tests and CI.
//!
//! Three continuous-observability layers build on the recorder, each
//! behind its own gate (all off by default, all RNG-free):
//! [`trace`] — per-thread lock-free event rings flushed to Chrome
//! trace-event JSON; [`metrics`] — a process-wide labelled registry with
//! Prometheus text exposition; [`aggregate`] — rolling per-stream window
//! health with SLO degradation flags.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

pub mod aggregate;
pub mod health;
pub mod json;
pub mod metrics;
pub mod trace;

pub use aggregate::{
    AggregatorConfig, DegradationFlags, HealthAggregator, StreamHealth, StreamWindow, WindowSample,
};
pub use health::PipelineHealth;

/// Cheap timestamp source for per-item stage attribution inside hot
/// loops.
///
/// The snapshot engine takes six timestamps per snapshot when telemetry
/// is on; at ~40 ns per `Instant::now` that alone costs ~0.3 ms per
/// press — several percent of the whole pipeline, breaching the
/// telemetry-overhead budget. On x86_64 the TSC is constant-rate on
/// every CPU this project targets and costs ~8 ns to read, so the stage
/// clocks accumulate raw ticks and convert the *sums* to nanoseconds
/// once per call with a lazily calibrated [`fastclock::ns_per_tick`].
/// Non-x86 targets fall back to `Instant`, where a tick is a nanosecond.
pub mod fastclock {
    use std::sync::OnceLock;
    use std::time::Instant;

    /// Reads the raw tick counter (TSC on x86_64; monotonic nanoseconds
    /// elsewhere). Only tick *differences* are meaningful.
    #[inline(always)]
    pub fn ticks() -> u64 {
        #[cfg(target_arch = "x86_64")]
        unsafe {
            core::arch::x86_64::_rdtsc()
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            epoch().elapsed().as_nanos() as u64
        }
    }

    #[cfg(not(target_arch = "x86_64"))]
    fn epoch() -> &'static Instant {
        static EPOCH: OnceLock<Instant> = OnceLock::new();
        EPOCH.get_or_init(Instant::now)
    }

    /// Nanoseconds per tick. On x86_64 this is calibrated once per
    /// process against `Instant` over a ~1 ms busy wait (call it outside
    /// hot loops — the stage clocks convert accumulated sums, never
    /// individual deltas); elsewhere it is exactly 1.0.
    pub fn ns_per_tick() -> f64 {
        #[cfg(target_arch = "x86_64")]
        {
            static NS_PER_TICK: OnceLock<f64> = OnceLock::new();
            *NS_PER_TICK.get_or_init(|| {
                let t0 = Instant::now();
                let c0 = ticks();
                while t0.elapsed().as_micros() < 1000 {
                    std::hint::spin_loop();
                }
                let dns = t0.elapsed().as_nanos() as f64;
                let dticks = ticks().wrapping_sub(c0) as f64;
                if dticks > 0.0 {
                    dns / dticks
                } else {
                    1.0 // non-monotone TSC: degrade to "a tick is a ns"
                }
            })
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            1.0
        }
    }
}

/// The global enable gate. Off by default; every recording entry point
/// checks it first with a relaxed load.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// `true` when the recorder is collecting.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns recording on or off (process-wide; all threads observe it).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// A fixed-bucket histogram over positive magnitudes (latencies in ns,
/// powers, phase magnitudes, …).
///
/// Buckets are powers of two from 2⁻³² up to 2³², plus an underflow
/// bucket (zero, negative and sub-2⁻³² values) and an overflow bucket.
/// Exact `count`/`sum`/`min`/`max` ride along, so `max` is precise and
/// quantiles are bucket-resolution (≤ one octave of error) — plenty for
/// p50/p95 latency reporting, and merging two histograms is exact
/// (bucket counts add).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Total number of recorded values.
    pub count: u64,
    /// Sum of recorded values (accumulated in record/merge order).
    pub sum: f64,
    /// Smallest recorded value.
    pub min: f64,
    /// Largest recorded value.
    pub max: f64,
    /// Bucket counts: `[0]` underflow, `[1..=64]` octaves 2⁻³²…2³²,
    /// `[65]` overflow.
    pub buckets: [u64; 66],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: [0; 66],
        }
    }
}

impl Histogram {
    /// Bucket index for a value: floor(log2(v)) clamped to the bucket
    /// range, computed exactly from the IEEE exponent for normal values.
    fn bucket_index(v: f64) -> usize {
        if v.is_nan() || v < 2.0f64.powi(-32) {
            return 0;
        }
        if v >= 2.0f64.powi(32) {
            return 65;
        }
        let exp = ((v.to_bits() >> 52) & 0x7ff) as i64 - 1023; // floor(log2 v)
        (exp + 33) as usize
    }

    /// Records one value.
    pub fn record(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[Self::bucket_index(v)] += 1;
    }

    /// Records `count` occurrences totalling `total` — the bulk form of
    /// [`Self::record`] for per-sample events accumulated over a chunk.
    /// `count` and `sum` stay exact; the samples land in the bucket of
    /// their chunk mean, so quantiles are chunk-resolution.
    pub fn record_bulk(&mut self, count: u64, total: f64) {
        if count == 0 {
            return;
        }
        let mean = total / count as f64;
        self.count += count;
        self.sum += total;
        self.min = self.min.min(mean);
        self.max = self.max.max(mean);
        self.buckets[Self::bucket_index(mean)] += count;
    }

    /// Merges another histogram into this one (bucket counts add; the
    /// sum accumulates in call order, so index-ordered merges are
    /// deterministic).
    pub fn merge_from(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
    }

    /// Mean of the recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Bucket-resolution quantile estimate for `q` in `[0, 1]`: walks the
    /// cumulative bucket counts and returns the geometric midpoint of the
    /// bucket containing the target rank, clamped to the exact observed
    /// `[min, max]`. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        if q >= 1.0 {
            return self.max;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= target {
                let rep = match i {
                    0 => self.min,
                    65 => self.max,
                    _ => 1.5 * 2.0f64.powi(i as i32 - 33),
                };
                return rep.clamp(self.min, self.max);
            }
        }
        self.max
    }
}

/// A drained or cloned view of one recorder's contents. Span keys are
/// `/`-joined hierarchical paths; counter/gauge/observation keys are the
/// instrumentation names. `BTreeMap` keeps iteration (and therefore JSON
/// output and merge results) deterministically ordered.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetrySnapshot {
    /// Span latency histograms (values in nanoseconds), by path.
    pub spans: BTreeMap<String, Histogram>,
    /// Monotonic counters.
    pub counters: BTreeMap<String, u64>,
    /// Last-value gauges.
    pub gauges: BTreeMap<String, f64>,
    /// Value histograms recorded via [`observe!`].
    pub observations: BTreeMap<String, Histogram>,
}

impl TelemetrySnapshot {
    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
            && self.counters.is_empty()
            && self.gauges.is_empty()
            && self.observations.is_empty()
    }

    /// Merges `other` into `self`. Counters and histogram buckets add;
    /// gauges take `other`'s value (last writer wins) — so merging a
    /// sequence of snapshots in index order is deterministic regardless
    /// of which thread produced each one.
    pub fn merge_from(&mut self, other: &TelemetrySnapshot) {
        for (k, h) in &other.spans {
            self.spans.entry(k.clone()).or_default().merge_from(h);
        }
        for (k, &n) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += n;
        }
        for (k, &v) in &other.gauges {
            self.gauges.insert(k.clone(), v);
        }
        for (k, h) in &other.observations {
            self.observations
                .entry(k.clone())
                .or_default()
                .merge_from(h);
        }
    }

    /// The deterministic subset of two snapshots compared for equality:
    /// counters, gauges, observations, and span *counts* (span durations
    /// are wall-clock and naturally vary run to run). This is what the
    /// thread-count-invariance test checks.
    pub fn deterministic_eq(&self, other: &TelemetrySnapshot) -> bool {
        let span_counts = |s: &TelemetrySnapshot| -> BTreeMap<String, u64> {
            s.spans.iter().map(|(k, h)| (k.clone(), h.count)).collect()
        };
        self.counters == other.counters
            && self.gauges == other.gauges
            && self.observations == other.observations
            && span_counts(self) == span_counts(other)
    }
}

/// The thread-local metric store. Instrumentation macros write here;
/// [`take`] and [`snapshot`] read it.
#[derive(Debug, Default)]
pub struct Recorder {
    data: TelemetrySnapshot,
    /// Open-span path stack (names of enclosing spans).
    stack: Vec<&'static str>,
}

thread_local! {
    static RECORDER: RefCell<Recorder> = RefCell::new(Recorder::default());
}

/// Drains this thread's recorder, returning everything recorded since
/// the last drain.
pub fn take() -> TelemetrySnapshot {
    RECORDER.with(|r| {
        let rec = &mut *r.borrow_mut();
        std::mem::take(&mut rec.data)
    })
}

/// Clones this thread's recorder contents without draining.
pub fn snapshot() -> TelemetrySnapshot {
    RECORDER.with(|r| r.borrow().data.clone())
}

/// Clears this thread's recorder.
pub fn reset() {
    let _ = take();
}

/// Merges a drained snapshot into this thread's recorder — used to fold
/// worker-thread telemetry back into the caller after a parallel region
/// (merge the workers' snapshots in a deterministic order first). No-op
/// while disabled.
pub fn absorb(snap: &TelemetrySnapshot) {
    if !enabled() {
        return;
    }
    RECORDER.with(|r| r.borrow_mut().data.merge_from(snap));
}

/// Records `n` onto a monotonic counter. No-op while disabled.
#[inline]
pub fn counter(name: &'static str, n: u64) {
    if !enabled() {
        return;
    }
    RECORDER.with(|r| {
        *r.borrow_mut().data.counters.entry(name.into()).or_insert(0) += n;
    });
}

/// Sets a last-value gauge. No-op while disabled.
#[inline]
pub fn gauge(name: &'static str, v: f64) {
    if !enabled() {
        return;
    }
    RECORDER.with(|r| {
        r.borrow_mut().data.gauges.insert(name.into(), v);
    });
}

/// Records a value into a fixed-bucket histogram. No-op while disabled.
#[inline]
pub fn observe(name: &'static str, v: f64) {
    if !enabled() {
        return;
    }
    RECORDER.with(|r| {
        r.borrow_mut()
            .data
            .observations
            .entry(name.into())
            .or_default()
            .record(v);
    });
}

/// Like [`counter`], but with a runtime-built name — for per-stream or
/// per-shard metrics (`batch.stream.<name>.presses_ok`) whose identity is
/// only known at run time. No-op while disabled; the `String` is only
/// built by callers when [`enabled`] says recording is on.
#[inline]
pub fn counter_owned(name: String, n: u64) {
    if !enabled() {
        return;
    }
    RECORDER.with(|r| {
        *r.borrow_mut().data.counters.entry(name).or_insert(0) += n;
    });
}

/// Like [`gauge`], but with a runtime-built name. No-op while disabled.
#[inline]
pub fn gauge_owned(name: String, v: f64) {
    if !enabled() {
        return;
    }
    RECORDER.with(|r| {
        r.borrow_mut().data.gauges.insert(name, v);
    });
}

/// Like [`observe`], but with a runtime-built name. No-op while disabled.
#[inline]
pub fn observe_owned(name: String, v: f64) {
    if !enabled() {
        return;
    }
    RECORDER.with(|r| {
        r.borrow_mut()
            .data
            .observations
            .entry(name)
            .or_default()
            .record(v);
    });
}

/// Records `count` span occurrences totalling `total_ns` nanoseconds
/// under `name`, joined beneath the currently-open span path — the bulk
/// companion to [`span!`] for per-sample stages. Hot loops accumulate a
/// stage's elapsed nanoseconds manually (taking `Instant`s only while
/// [`enabled`]) and record once per chunk, which removes the thread-local
/// borrow + path join + map lookup from every sample while keeping the
/// same hierarchical span path and exact count/total. No-op while
/// disabled or when `count` is zero.
#[inline]
pub fn span_bulk(name: &'static str, count: u64, total_ns: f64) {
    if count == 0 || !enabled() {
        return;
    }
    RECORDER.with(|r| {
        let rec = &mut *r.borrow_mut();
        let path = rec
            .stack
            .iter()
            .chain(std::iter::once(&name))
            .copied()
            .collect::<Vec<_>>()
            .join("/");
        rec.data
            .spans
            .entry(path)
            .or_default()
            .record_bulk(count, total_ns);
    });
}

/// An open timing span. Created by [`span!`]; records its elapsed wall
/// time under the hierarchical path of enclosing spans when dropped.
/// When telemetry is disabled the constructor returns an inert value and
/// `drop` is a no-op.
#[must_use = "a span records on drop; binding it to _ ends it immediately"]
pub struct Span {
    /// `None` when telemetry was disabled at entry.
    start: Option<Instant>,
    name: &'static str,
    /// Stack depth at entry, so drop can restore it even if inner spans
    /// leaked (e.g. through an early return).
    depth: usize,
    /// `true` when the trace ring was capturing at entry (the end event
    /// must pair with the begin even if tracing is toggled mid-span).
    traced: bool,
}

impl Span {
    /// Opens a span. Prefer the [`span!`] macro.
    ///
    /// When the trace ring is capturing ([`trace::trace_enabled`]) the
    /// span also emits timeline begin/end events — every `span!` site is
    /// a trace point without separate instrumentation.
    #[inline]
    pub fn enter(name: &'static str) -> Span {
        let traced = trace::trace_enabled();
        if traced {
            trace::begin(name);
        }
        if !enabled() {
            return Span {
                start: None,
                name,
                depth: 0,
                traced,
            };
        }
        let depth = RECORDER.with(|r| {
            let rec = &mut *r.borrow_mut();
            rec.stack.push(name);
            rec.stack.len() - 1
        });
        Span {
            start: Some(Instant::now()),
            name,
            depth,
            traced,
        }
    }
}

impl Drop for Span {
    #[inline]
    fn drop(&mut self) {
        if self.traced {
            trace::end(self.name);
        }
        let Some(start) = self.start else { return };
        let elapsed_ns = start.elapsed().as_nanos() as f64;
        RECORDER.with(|r| {
            let rec = &mut *r.borrow_mut();
            // joined path of enclosing spans + this one
            let path = rec.stack[..self.depth]
                .iter()
                .chain(std::iter::once(&self.name))
                .copied()
                .collect::<Vec<_>>()
                .join("/");
            rec.stack.truncate(self.depth);
            rec.data.spans.entry(path).or_default().record(elapsed_ns);
        });
    }
}

/// Opens a hierarchical timing span recording into the thread-local
/// recorder; the returned guard records elapsed nanoseconds on drop.
///
/// ```
/// let _guard = wiforce_telemetry::span!("harmonics.extract_lines");
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::Span::enter($name)
    };
}

/// Increments a counter: `counter!("faults.snapshots_dropped", 1)`.
#[macro_export]
macro_rules! counter {
    ($name:expr, $n:expr) => {
        $crate::counter($name, $n)
    };
}

/// Sets a gauge: `gauge!("pipeline.line_to_floor_db", snr)`.
#[macro_export]
macro_rules! gauge {
    ($name:expr, $v:expr) => {
        $crate::gauge($name, $v)
    };
}

/// Records a histogram observation: `observe!("tracker.force_innovation_n", x)`.
#[macro_export]
macro_rules! observe {
    ($name:expr, $v:expr) => {
        $crate::observe($name, $v)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes access to the global enable flag across tests.
    fn with_enabled<T>(f: impl FnOnce() -> T) -> T {
        use std::sync::Mutex;
        static LOCK: Mutex<()> = Mutex::new(());
        let _g = LOCK.lock().unwrap();
        reset();
        set_enabled(true);
        let out = f();
        set_enabled(false);
        reset();
        out
    }

    #[test]
    fn fastclock_tracks_wall_time() {
        // ticks × ns_per_tick over a busy wait should agree with Instant
        // to well within the accuracy spans need (the tolerance is loose
        // because CI boxes jitter)
        let _ = fastclock::ns_per_tick(); // calibrate outside the window
        let t0 = Instant::now();
        let c0 = fastclock::ticks();
        while t0.elapsed().as_millis() < 20 {
            std::hint::spin_loop();
        }
        let wall = t0.elapsed().as_nanos() as f64;
        let fast = fastclock::ticks().wrapping_sub(c0) as f64 * fastclock::ns_per_tick();
        let ratio = fast / wall;
        assert!((0.7..1.3).contains(&ratio), "fast/wall ratio {ratio}");
    }

    #[test]
    fn disabled_records_nothing() {
        reset();
        set_enabled(false);
        counter("c", 3);
        gauge("g", 1.5);
        observe("o", 2.0);
        {
            let _s = span!("s");
        }
        assert!(take().is_empty());
    }

    #[test]
    fn counters_gauges_observations_record() {
        let snap = with_enabled(|| {
            counter("presses", 2);
            counter("presses", 3);
            gauge("snr_db", 10.0);
            gauge("snr_db", 12.5);
            observe("mag", 0.25);
            observe("mag", 4.0);
            take()
        });
        assert_eq!(snap.counters["presses"], 5);
        assert_eq!(snap.gauges["snr_db"], 12.5);
        let h = &snap.observations["mag"];
        assert_eq!(h.count, 2);
        assert_eq!(h.min, 0.25);
        assert_eq!(h.max, 4.0);
        assert!((h.sum - 4.25).abs() < 1e-12);
    }

    #[test]
    fn owned_names_record_like_static_ones() {
        let snap = with_enabled(|| {
            counter_owned(format!("batch.stream.{}.presses", 3), 2);
            counter("batch.stream.3.presses", 1);
            gauge_owned("batch.stream.3.ok".to_string(), 1.0);
            observe_owned("batch.queue_depth".to_string(), 2.0);
            take()
        });
        assert_eq!(snap.counters["batch.stream.3.presses"], 3);
        assert_eq!(snap.gauges["batch.stream.3.ok"], 1.0);
        assert_eq!(snap.observations["batch.queue_depth"].count, 1);
    }

    #[test]
    fn owned_names_noop_while_disabled() {
        reset();
        set_enabled(false);
        counter_owned("c".into(), 1);
        gauge_owned("g".into(), 1.0);
        observe_owned("o".into(), 1.0);
        assert!(take().is_empty());
    }

    #[test]
    fn spans_nest_hierarchically() {
        let snap = with_enabled(|| {
            {
                let _outer = span!("outer");
                let _inner = span!("inner");
            }
            {
                let _solo = span!("inner");
            }
            take()
        });
        assert_eq!(snap.spans["outer"].count, 1);
        assert_eq!(snap.spans["outer/inner"].count, 1);
        assert_eq!(snap.spans["inner"].count, 1);
        assert!(snap.spans["outer"].max >= snap.spans["outer/inner"].min);
    }

    #[test]
    fn span_bulk_records_under_open_path() {
        let snap = with_enabled(|| {
            {
                let _outer = span!("outer");
                span_bulk("stage", 625, 625.0 * 2000.0);
            }
            span_bulk("stage", 0, 123.0); // zero-count is a no-op
            take()
        });
        let h = &snap.spans["outer/stage"];
        assert_eq!(h.count, 625);
        assert!((h.sum - 1_250_000.0).abs() < 1e-6);
        assert_eq!(h.min, 2000.0);
        assert_eq!(h.max, 2000.0);
        assert!(!snap.spans.contains_key("stage"));
    }

    #[test]
    fn record_bulk_matches_repeated_record_counts() {
        let mut bulk = Histogram::default();
        bulk.record_bulk(4, 8.0);
        let mut each = Histogram::default();
        for _ in 0..4 {
            each.record(2.0);
        }
        assert_eq!(bulk.count, each.count);
        assert_eq!(bulk.sum, each.sum);
        assert_eq!(bulk.buckets, each.buckets);
    }

    #[test]
    fn histogram_quantiles_bracket_values() {
        let mut h = Histogram::default();
        for i in 1..=100 {
            h.record(i as f64);
        }
        assert_eq!(h.count, 100);
        assert_eq!(h.max, 100.0);
        let p50 = h.quantile(0.5);
        // bucket resolution is one octave: p50 of 1..100 lies in [32, 64)
        assert!((16.0..=64.0).contains(&p50), "{p50}");
        assert_eq!(h.quantile(1.0), 100.0);
        // underflow and overflow land in the edge buckets
        h.record(0.0);
        h.record(1e12);
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[65], 1);
    }

    #[test]
    fn merge_is_index_order_deterministic() {
        let mk = |vals: &[f64], gauge_v: f64| {
            let mut s = TelemetrySnapshot::default();
            let mut h = Histogram::default();
            for &v in vals {
                h.record(v);
            }
            s.observations.insert("m".into(), h);
            s.counters.insert("c".into(), vals.len() as u64);
            s.gauges.insert("g".into(), gauge_v);
            s
        };
        let parts = [mk(&[1.0, 2.0], 7.0), mk(&[3.0], 8.0), mk(&[0.5], 9.0)];
        let mut a = TelemetrySnapshot::default();
        for p in &parts {
            a.merge_from(p);
        }
        let mut b = TelemetrySnapshot::default();
        for p in &parts {
            b.merge_from(p);
        }
        assert_eq!(a, b);
        assert_eq!(a.counters["c"], 4);
        assert_eq!(a.gauges["g"], 9.0, "last gauge wins");
        assert_eq!(a.observations["m"].count, 4);
        assert!(a.deterministic_eq(&b));
    }

    #[test]
    fn bucket_index_is_floor_log2() {
        assert_eq!(Histogram::bucket_index(1.0), 33);
        assert_eq!(Histogram::bucket_index(1.5), 33);
        assert_eq!(Histogram::bucket_index(2.0), 34);
        assert_eq!(Histogram::bucket_index(0.5), 32);
        assert_eq!(Histogram::bucket_index(0.0), 0);
        assert_eq!(Histogram::bucket_index(-3.0), 0);
        assert_eq!(Histogram::bucket_index(f64::NAN), 0);
        assert_eq!(Histogram::bucket_index(1e300), 65);
    }
}

//! Press-invariant channel cache.
//!
//! Everything the pipeline derives from a [`Scene`] at a fixed frequency
//! grid — static multipath response, backscatter path gain, AGC full
//! scale — is invariant across presses: only the tag's reflection and the
//! receiver noise change snapshot to snapshot. Yet the seed pipeline
//! re-evaluated all of it (per subcarrier, with tissue-stack ABCD
//! products inside) on every `run_snapshots` call. [`ChannelCache`] holds
//! that invariant slice, and [`SharedChannelCache`] shares one entry
//! read-only between the pipeline and every `wiforce::batch` worker.
//!
//! Invalidation is by value, not by notification: an entry stores the
//! FNV-1a [`scene_fingerprint`] of every scene and grid field it was
//! built from, and [`SharedChannelCache::get_or_build`] rebuilds whenever
//! the fingerprint of the requested scene differs (a mover edit, a
//! blockage change, a tag move — anything). A stale entry can therefore
//! never be observed, which the cache-equivalence fixture tests pin.

use crate::scene::Scene;
use std::any::Any;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use wiforce_dsp::Complex;

/// The press-invariant part of the channel for one `(scene, grid)` pair.
#[derive(Debug, Clone)]
pub struct ChannelCache {
    /// [`scene_fingerprint`] of the scene + grid this was built from.
    pub fingerprint: u64,
    /// Absolute grid frequencies, Hz (ascending).
    pub freqs_hz: Vec<f64>,
    /// Static response (direct + clutter) per grid frequency.
    pub statics: Vec<Complex>,
    /// Backscatter path gain (excluding the tag reflection) per grid
    /// frequency.
    pub gains: Vec<Complex>,
    /// Direct-path amplitude at the carrier (burst-interference scale).
    pub direct_amp: f64,
    /// AGC full-scale amplitude: strongest static magnitude × 1.5.
    pub full_scale: f64,
    /// Memoized per-tag-state response planes ([`Self::state_planes`]).
    planes_memo: PlaneMemo,
    /// Memoized sounding-response tables ([`Self::response_tables`]).
    response_memo: ResponseMemo,
}

/// Per-scene tag-state response planes: the full received channel
/// (`statics + gains·table[state]`) for each tag switch state, flattened
/// state-major — the wide synthesis path's subcarrier tables. Built once
/// per `(scene, tag table)` pair and shared read-only.
#[derive(Debug)]
pub struct StatePlanes {
    /// [`plane_token`] of the tag-state table these were built from.
    pub token: u64,
    /// Number of states (plane rows).
    pub n_states: usize,
    /// State-major planes: `n_states` rows of grid-size responses.
    pub planes: Vec<Complex>,
}

impl StatePlanes {
    /// The response plane for one tag state.
    pub fn state(&self, state: usize) -> &[Complex] {
        let n = self.planes.len() / self.n_states;
        &self.planes[state * n..(state + 1) * n]
    }
}

/// One-entry token-keyed slot for [`StatePlanes`]; shared (and thread-safe)
/// across everyone holding the same `Arc<ChannelCache>`.
#[derive(Debug, Default)]
struct PlaneMemo {
    slot: Mutex<Option<Arc<StatePlanes>>>,
}

impl Clone for PlaneMemo {
    fn clone(&self) -> Self {
        PlaneMemo {
            slot: Mutex::new(self.slot.lock().expect("state-plane memo poisoned").clone()),
        }
    }
}

/// FNV-1a token over the raw bits of a tag-state table — the identity
/// under which a [`StatePlanes`] entry is valid.
pub fn plane_token<'a>(values: impl IntoIterator<Item = &'a Complex>) -> u64 {
    let mut h = Fnv::new();
    for v in values {
        h.f64(v.re);
        h.f64(v.im);
    }
    h.finish()
}

/// FNV-1a token over a sequence of raw `u64` words — how sounders derive
/// the `config_token` half of a [`ChannelCache::response_tables`] key
/// from their press-invariant configuration fields.
pub fn config_token(words: impl IntoIterator<Item = u64>) -> u64 {
    let mut h = Fnv::new();
    for w in words {
        h.u64(w);
    }
    h.finish()
}

/// Type-erased, bounded map of press-invariant sounding-response tables,
/// keyed by `(plane token, sounder config token)`. The channel crate
/// cannot name the reader crate's prepared-channel types, so entries are
/// stored as `Arc<dyn Any>` and downcast on the way out; a key collision
/// with a different stored type is treated as a miss and overwritten.
///
/// Hit/miss totals live here as atomics (not in the telemetry stream)
/// for the same reason as [`SharedChannelCache`]'s: a warm memo survives
/// across runs and which thread builds an entry is a scheduling
/// accident, so per-thread counters would break deterministic merges.
struct ResponseMemo {
    map: Mutex<HashMap<(u64, u64), Arc<dyn Any + Send + Sync>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// Entry bound for [`ResponseMemo`]: generous next to real fleets (an
/// 8-stream batch with per-press contacts holds a channel table plus a
/// payload table per distinct contact — tens of entries), tiny next to
/// the planes it guards. On overflow the map is cleared — the next
/// lookups rebuild, correctness is unaffected.
const RESPONSE_MEMO_CAP: usize = 256;

impl Default for ResponseMemo {
    fn default() -> Self {
        ResponseMemo {
            map: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }
}

impl std::fmt::Debug for ResponseMemo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let len = self.map.lock().map(|m| m.len()).unwrap_or(0);
        f.debug_struct("ResponseMemo")
            .field("entries", &len)
            .field("hits", &self.hits.load(Ordering::Relaxed))
            .field("misses", &self.misses.load(Ordering::Relaxed))
            .finish()
    }
}

impl Clone for ResponseMemo {
    fn clone(&self) -> Self {
        ResponseMemo {
            map: Mutex::new(self.map.lock().expect("response memo poisoned").clone()),
            hits: AtomicU64::new(self.hits.load(Ordering::Relaxed)),
            misses: AtomicU64::new(self.misses.load(Ordering::Relaxed)),
        }
    }
}

impl ChannelCache {
    /// Evaluates the press-invariant channel state for `scene` at
    /// `freqs_hz` — the same arithmetic, in the same order, as the
    /// uncached pipeline setup, so cached and uncached runs agree
    /// bit-for-bit.
    pub fn build(scene: &Scene, freqs_hz: &[f64]) -> Self {
        let statics: Vec<Complex> = freqs_hz.iter().map(|&f| scene.static_response(f)).collect();
        let gains: Vec<Complex> = freqs_hz
            .iter()
            .map(|&f| scene.backscatter_gain(f))
            .collect();
        let direct_amp = scene.direct_response(scene.carrier_hz).abs();
        let full_scale = statics.iter().map(|s| s.abs()).fold(0.0_f64, f64::max) * 1.5;
        ChannelCache {
            fingerprint: scene_fingerprint(scene, freqs_hz),
            freqs_hz: freqs_hz.to_vec(),
            statics,
            gains,
            direct_amp,
            full_scale,
            planes_memo: PlaneMemo::default(),
            response_memo: ResponseMemo::default(),
        }
    }

    /// Returns the memoized per-state response planes for the tag-state
    /// table identified by `token` ([`plane_token`] over its entries),
    /// calling `build` only when the slot is empty or was built from a
    /// different table. A scene mutation never serves stale planes: the
    /// fingerprint check in [`SharedChannelCache::get_or_build`] replaces
    /// the whole entry, memo included, before this is ever consulted.
    pub fn state_planes(
        &self,
        token: u64,
        n_states: usize,
        build: impl FnOnce() -> Vec<Complex>,
    ) -> Arc<StatePlanes> {
        let mut slot = self
            .planes_memo
            .slot
            .lock()
            .expect("state-plane memo poisoned");
        if let Some(entry) = slot.as_ref() {
            if entry.token == token && entry.n_states == n_states {
                return Arc::clone(entry);
            }
        }
        let planes = build();
        assert_eq!(
            planes.len(),
            n_states * self.statics.len(),
            "state planes must be n_states rows of the grid width"
        );
        let built = Arc::new(StatePlanes {
            token,
            n_states,
            planes,
        });
        *slot = Some(Arc::clone(&built));
        built
    }

    /// Returns the memoized sounding-response tables for the
    /// `(tag-table token, sounder config token)` pair, calling `build`
    /// only on a miss. `T` is whatever press-invariant precomputation
    /// the sounder gathers from at estimate time (e.g. a
    /// `Vec<PreparedChannel>` of per-state payloads); it is stored
    /// type-erased and downcast on every hit. Stale entries are
    /// impossible for the same reason as [`Self::state_planes`]: a scene
    /// mutation changes the fingerprint and replaces the whole cache
    /// entry, memo included, and a tag-table or sounder-config change
    /// changes the key.
    pub fn response_tables<T: Any + Send + Sync>(
        &self,
        token: u64,
        config_token: u64,
        build: impl FnOnce() -> T,
    ) -> Arc<T> {
        let key = (token, config_token);
        {
            let map = self
                .response_memo
                .map
                .lock()
                .expect("response memo poisoned");
            if let Some(entry) = map.get(&key) {
                if let Ok(hit) = Arc::clone(entry).downcast::<T>() {
                    self.response_memo.hits.fetch_add(1, Ordering::Relaxed);
                    return hit;
                }
            }
        }
        // build outside the lock: entries are pure functions of the key,
        // so a racing double-build stores identical tables
        self.response_memo.misses.fetch_add(1, Ordering::Relaxed);
        let built = Arc::new(build());
        let mut map = self
            .response_memo
            .map
            .lock()
            .expect("response memo poisoned");
        if map.len() >= RESPONSE_MEMO_CAP {
            map.clear();
        }
        map.insert(key, Arc::clone(&built) as Arc<dyn Any + Send + Sync>);
        built
    }

    /// Lifetime `(hits, misses)` totals of [`Self::response_tables`] on
    /// this entry (shared across every `Arc` holder; a `clone()` of the
    /// cache value itself snapshots and then diverges).
    pub fn response_stats(&self) -> (u64, u64) {
        (
            self.response_memo.hits.load(Ordering::Relaxed),
            self.response_memo.misses.load(Ordering::Relaxed),
        )
    }

    /// Zeroes the response-table hit/miss totals (entries are kept) —
    /// how benches measure the steady-state hit rate after warmup.
    pub fn reset_response_stats(&self) {
        self.response_memo.hits.store(0, Ordering::Relaxed);
        self.response_memo.misses.store(0, Ordering::Relaxed);
    }
}

/// FNV-1a hash over the raw bits of every scene field (geometry, power,
/// clutter paths, movers, tissue stack, blockage) plus the grid
/// frequencies — the identity under which [`ChannelCache`] entries are
/// valid. Any field change, however small, changes the fingerprint.
pub fn scene_fingerprint(scene: &Scene, freqs_hz: &[f64]) -> u64 {
    let mut h = Fnv::new();
    h.f64(scene.carrier_hz);
    for p in [scene.tx_pos_m, scene.rx_pos_m, scene.tag_pos_m] {
        for v in p {
            h.f64(v);
        }
    }
    h.f64(scene.tx_power_dbm);
    h.f64(scene.antenna_gain_dbi);
    h.u64(scene.multipath.len() as u64);
    for path in scene.multipath.paths() {
        h.f64(path.distance_m);
        h.f64(path.gain.re);
        h.f64(path.gain.im);
    }
    h.u64(scene.movers.len() as u64);
    for m in &scene.movers {
        h.f64(m.distance0_m);
        h.f64(m.speed_m_per_s);
        h.f64(m.gain.re);
        h.f64(m.gain.im);
    }
    match &scene.tissue {
        None => h.u64(0),
        Some(layers) => {
            h.u64(1 + layers.len() as u64);
            for l in layers {
                h.f64(l.dielectric.rel_permittivity);
                h.f64(l.dielectric.loss_tangent);
                h.f64(l.dielectric.conductivity_s_per_m);
                h.f64(l.thickness_m);
            }
        }
    }
    h.f64(scene.direct_blockage_db);
    h.f64(scene.tissue_excess_db_per_pass);
    h.u64(freqs_hz.len() as u64);
    for &f in freqs_hz {
        h.f64(f);
    }
    h.finish()
}

struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

/// A process-shareable slot holding the current [`ChannelCache`] entry.
///
/// `Clone` shares the underlying slot (it is an `Arc`), so a cloned
/// `Simulation` — as `wiforce::batch` makes per worker — reuses the same
/// entry instead of rebuilding per thread. Readers get an
/// `Arc<ChannelCache>` and never block each other beyond the lookup lock.
///
/// Hit/miss statistics live on the shared slot as atomics, NOT in the
/// telemetry stream: which thread performs the single build is a
/// scheduling accident, and a warm slot survives across runs, so
/// per-thread telemetry counters would break the sweep's
/// deterministic-merge guarantee. [`Self::stats`] reads the totals.
#[derive(Debug, Clone, Default)]
pub struct SharedChannelCache {
    slot: Arc<Mutex<Option<Arc<ChannelCache>>>>,
    stats: Arc<CacheStats>,
}

#[derive(Debug, Default)]
struct CacheStats {
    hits: AtomicU64,
    misses: AtomicU64,
}

impl SharedChannelCache {
    /// An empty cache slot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the cached entry for `(scene, freqs_hz)`, building (and
    /// storing) it when the slot is empty or fingerprint-stale.
    pub fn get_or_build(&self, scene: &Scene, freqs_hz: &[f64]) -> Arc<ChannelCache> {
        let fp = scene_fingerprint(scene, freqs_hz);
        let mut slot = self.slot.lock().expect("channel cache poisoned");
        if let Some(entry) = slot.as_ref() {
            if entry.fingerprint == fp {
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                return Arc::clone(entry);
            }
        }
        self.stats.misses.fetch_add(1, Ordering::Relaxed);
        let built = Arc::new(ChannelCache::build(scene, freqs_hz));
        *slot = Some(Arc::clone(&built));
        built
    }

    /// Lifetime `(hits, misses)` totals across every clone of this slot.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.stats.hits.load(Ordering::Relaxed),
            self.stats.misses.load(Ordering::Relaxed),
        )
    }

    /// Zeroes the hit/miss totals (the entry itself is kept).
    pub fn reset_stats(&self) {
        self.stats.hits.store(0, Ordering::Relaxed);
        self.stats.misses.store(0, Ordering::Relaxed);
    }

    /// Drops the current entry (the next lookup rebuilds). Fingerprint
    /// checks already catch every scene mutation; this exists for tests
    /// and for callers that want to bound memory.
    pub fn invalidate(&self) {
        *self.slot.lock().expect("channel cache poisoned") = None;
    }

    /// `(hits, misses)` of the current entry's response-table memo
    /// ([`ChannelCache::response_stats`]); `(0, 0)` when the slot is
    /// empty.
    pub fn response_stats(&self) -> (u64, u64) {
        self.slot
            .lock()
            .expect("channel cache poisoned")
            .as_ref()
            .map(|e| e.response_stats())
            .unwrap_or((0, 0))
    }

    /// Zeroes the current entry's response-table hit/miss totals.
    pub fn reset_response_stats(&self) {
        if let Some(e) = self.slot.lock().expect("channel cache poisoned").as_ref() {
            e.reset_response_stats();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::movers::MovingScatterer;

    fn freqs() -> Vec<f64> {
        (0..8).map(|i| 0.9e9 + i as f64 * 195.3e3).collect()
    }

    #[test]
    fn build_matches_direct_evaluation_bitwise() {
        let scene = Scene::tissue_phantom(0.9e9, 45.0);
        let f = freqs();
        let c = ChannelCache::build(&scene, &f);
        for (k, &fk) in f.iter().enumerate() {
            let s = scene.static_response(fk);
            let g = scene.backscatter_gain(fk);
            assert_eq!(c.statics[k].re.to_bits(), s.re.to_bits());
            assert_eq!(c.statics[k].im.to_bits(), s.im.to_bits());
            assert_eq!(c.gains[k].re.to_bits(), g.re.to_bits());
            assert_eq!(c.gains[k].im.to_bits(), g.im.to_bits());
        }
        let fs = f
            .iter()
            .map(|&fk| scene.static_response(fk).abs())
            .fold(0.0_f64, f64::max)
            * 1.5;
        assert_eq!(c.full_scale.to_bits(), fs.to_bits());
    }

    #[test]
    fn fingerprint_tracks_every_field_class() {
        let base = Scene::fig12(0.9e9);
        let f = freqs();
        let fp0 = scene_fingerprint(&base, &f);
        assert_eq!(fp0, scene_fingerprint(&base.clone(), &f), "deterministic");

        let mut moved = base.clone();
        moved.tag_pos_m[0] += 1e-9;
        assert_ne!(fp0, scene_fingerprint(&moved, &f), "geometry");

        let mut blocked = base.clone();
        blocked.direct_blockage_db = 45.0;
        assert_ne!(fp0, scene_fingerprint(&blocked, &f), "blockage");

        let mut mover = base.clone();
        mover.movers.push(MovingScatterer::walker(0.1));
        assert_ne!(fp0, scene_fingerprint(&mover, &f), "movers");

        let tissue = Scene::tissue_phantom(0.9e9, 0.0);
        assert_ne!(fp0, scene_fingerprint(&tissue, &f), "tissue");

        let mut f2 = f.clone();
        f2[3] += 1.0;
        assert_ne!(fp0, scene_fingerprint(&base, &f2), "grid");
    }

    #[test]
    fn state_plane_memo_is_token_keyed() {
        let scene = Scene::fig12(0.9e9);
        let f = freqs();
        let cache = ChannelCache::build(&scene, &f);
        let n = f.len();
        let table_a: Vec<Complex> = (0..4 * n).map(|i| Complex::new(i as f64, -1.0)).collect();
        let table_b: Vec<Complex> = (0..4 * n).map(|i| Complex::new(i as f64, 1.0)).collect();
        let tok_a = plane_token(table_a.iter());
        let tok_b = plane_token(table_b.iter());
        assert_ne!(tok_a, tok_b, "token tracks the table bits");

        let a = cache.state_planes(tok_a, 4, || table_a.clone());
        let a2 = cache.state_planes(tok_a, 4, || panic!("must not rebuild on a token hit"));
        assert!(Arc::ptr_eq(&a, &a2));
        assert_eq!(a.state(2), &table_a[2 * n..3 * n]);

        // a different table (tag config edit) replaces the entry…
        let b = cache.state_planes(tok_b, 4, || table_b.clone());
        assert!(!Arc::ptr_eq(&a, &b));
        // …and clones of the cache carry the memoized entry along
        let c = cache
            .clone()
            .state_planes(tok_b, 4, || panic!("clone shares the entry"));
        assert_eq!(c.token, tok_b);
    }

    #[test]
    fn response_memo_is_keyed_and_counted() {
        let cache = ChannelCache::build(&Scene::fig12(0.9e9), &freqs());
        let cfg_a = config_token([64, 5, 0x0FD3]);
        let cfg_b = config_token([64, 5, 0x0FD4]);
        assert_ne!(cfg_a, cfg_b, "config token tracks the words");

        let a = cache.response_tables(7, cfg_a, || vec![1.0_f64, 2.0]);
        let a2: Arc<Vec<f64>> =
            cache.response_tables(7, cfg_a, || panic!("must not rebuild on a hit"));
        assert!(Arc::ptr_eq(&a, &a2));
        assert_eq!(cache.response_stats(), (1, 1));

        // a different config token (sounder edit) is a distinct entry…
        let b = cache.response_tables(7, cfg_b, || vec![3.0_f64]);
        assert_eq!(b[0], 3.0);
        // …as is a different table token (tag edit)
        let c = cache.response_tables(8, cfg_a, || vec![4.0_f64]);
        assert_eq!(c[0], 4.0);
        assert_eq!(cache.response_stats(), (1, 3));

        // a colliding key holding another type rebuilds instead of
        // serving the wrong table
        let d: Arc<Vec<u32>> = cache.response_tables(7, cfg_a, || vec![9_u32]);
        assert_eq!(d[0], 9);

        cache.reset_response_stats();
        assert_eq!(cache.response_stats(), (0, 0));
        // entries survive a stats reset
        let _: Arc<Vec<u32>> = cache.response_tables(7, cfg_a, || panic!("entry kept"));
        assert_eq!(cache.response_stats(), (1, 0));
    }

    #[test]
    fn response_memo_caps_its_entry_count() {
        let cache = ChannelCache::build(&Scene::fig12(0.9e9), &freqs());
        for i in 0..(2 * super::RESPONSE_MEMO_CAP as u64) {
            let _ = cache.response_tables(i, 0, || i);
        }
        let (h, m) = cache.response_stats();
        assert_eq!(h, 0);
        assert_eq!(m, 2 * super::RESPONSE_MEMO_CAP as u64);
        // the map was cleared at capacity, so a re-lookup of an early key
        // rebuilds — bounded memory, never a stale or wrong entry
        let v = cache.response_tables(0, 0, || 123_u64);
        assert_eq!(*v, 123);
    }

    #[test]
    #[should_panic(expected = "grid width")]
    fn state_plane_memo_rejects_misshapen_planes() {
        let cache = ChannelCache::build(&Scene::fig12(0.9e9), &freqs());
        cache.state_planes(1, 4, || vec![Complex::ZERO; 3]);
    }

    #[test]
    fn shared_cache_hits_and_invalidates() {
        let shared = SharedChannelCache::new();
        let scene = Scene::fig12(0.9e9);
        let f = freqs();
        let a = shared.get_or_build(&scene, &f);
        let b = shared.get_or_build(&scene, &f);
        assert!(Arc::ptr_eq(&a, &b), "second lookup hits");
        // clones share the slot (what batch workers rely on) — and the
        // hit/miss totals, which clones also share
        let c = shared.clone().get_or_build(&scene, &f);
        assert!(Arc::ptr_eq(&a, &c));
        assert_eq!(shared.stats(), (2, 1), "two hits, one build");

        let mut mutated = scene.clone();
        mutated.direct_blockage_db = 10.0;
        let d = shared.get_or_build(&mutated, &f);
        assert!(!Arc::ptr_eq(&a, &d), "scene mutation rebuilds");
        assert_eq!(d.fingerprint, scene_fingerprint(&mutated, &f));

        shared.invalidate();
        let e = shared.get_or_build(&mutated, &f);
        assert!(!Arc::ptr_eq(&d, &e), "invalidate drops the entry");
        assert_eq!(d.full_scale.to_bits(), e.full_scale.to_bits());

        shared.reset_stats();
        assert_eq!(shared.stats(), (0, 0));
    }
}

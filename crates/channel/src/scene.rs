//! Backscatter scene: geometry, clutter, tissue, and the composite channel.
//!
//! Implements the paper's channel equation (§3.3):
//!
//! ```text
//! H[k,n] = Σᵢ αᵢ·e^{−j2πkF·dᵢ/c}  +  α_s·e^{−j2πkF·d_s/c} · Γ_tag(f_k, t_n)
//! ```
//!
//! where the first term is the static environment (direct path + clutter)
//! and the second is the two-way backscatter path modulated by the tag's
//! time-varying reflection. Geometries mirror the paper's setups: Fig. 12
//! (TX–RX 1 m apart, sensor 0.5 m from each), Fig. 15 (tissue phantom wall
//! in the backscatter path, metal plate blocking the direct path), and
//! Fig. 18 (sensor swept along a 4 m TX–RX line).

use crate::movers::MovingScatterer;
use crate::multipath::StaticMultipath;
use crate::pathloss::{backscatter_amplitude, friis_amplitude};
use wiforce_dsp::{Complex, C0, TAU};
use wiforce_em::materials::{stack_transmission, TissueLayer};

/// A point in 3-D space, metres.
pub type Point = [f64; 3];

/// Euclidean distance between two points.
pub fn dist(a: Point, b: Point) -> f64 {
    ((a[0] - b[0]).powi(2) + (a[1] - b[1]).powi(2) + (a[2] - b[2]).powi(2)).sqrt()
}

/// A complete over-the-air measurement scene.
#[derive(Debug, Clone)]
pub struct Scene {
    /// Carrier frequency, Hz.
    pub carrier_hz: f64,
    /// TX antenna position, m.
    pub tx_pos_m: Point,
    /// RX antenna position, m.
    pub rx_pos_m: Point,
    /// Tag antenna position, m.
    pub tag_pos_m: Point,
    /// Transmit power, dBm.
    pub tx_power_dbm: f64,
    /// Per-antenna gain, dBi (applied to each traversal).
    pub antenna_gain_dbi: f64,
    /// Static clutter.
    pub multipath: StaticMultipath,
    /// Moving scatterers (dynamic clutter with real Doppler).
    pub movers: Vec<MovingScatterer>,
    /// Optional tissue wall between the tag and *both* reader antennas
    /// (each backscatter leg traverses it once).
    pub tissue: Option<Vec<TissueLayer>>,
    /// Extra attenuation inserted on the direct TX→RX path, dB (the §5.2
    /// metal plate; 0 over the air).
    pub direct_blockage_db: f64,
    /// Excess loss per tissue-stack traversal beyond normal-incidence
    /// absorption, dB — the paper's "refraction and total internal
    /// propagation effects, which exacerbate the losses" (§5.2).
    pub tissue_excess_db_per_pass: f64,
}

impl Scene {
    /// The paper's Fig. 12 geometry: TX and RX 1 m apart, sensor
    /// equidistant at 0.5 m from each, 10 dBm TX, modest antenna gain,
    /// no tissue, no blockage, clutter added by the caller.
    pub fn fig12(carrier_hz: f64) -> Self {
        Scene {
            carrier_hz,
            tx_pos_m: [0.0, 0.0, 0.0],
            rx_pos_m: [1.0, 0.0, 0.0],
            tag_pos_m: [0.5, 0.0, 0.0],
            tx_power_dbm: 10.0,
            antenna_gain_dbi: 3.0,
            multipath: StaticMultipath::anechoic(),
            movers: Vec::new(),
            tissue: None,
            direct_blockage_db: 0.0,
            tissue_excess_db_per_pass: 15.0,
        }
    }

    /// The paper's Fig. 18 distance sweep: TX and RX 4 m apart on a line,
    /// tag placed `tag_from_tx_m` from the TX on the same line (offset a
    /// few cm off-axis to avoid exact shadowing).
    pub fn fig18(carrier_hz: f64, tag_from_tx_m: f64) -> Self {
        Scene {
            tx_pos_m: [0.0, 0.0, 0.0],
            rx_pos_m: [4.0, 0.0, 0.0],
            tag_pos_m: [tag_from_tx_m, 0.05, 0.0],
            ..Self::fig12(carrier_hz)
        }
    }

    /// The paper's Fig. 15 tissue-phantom setup: Fig. 12 geometry with the
    /// three-layer phantom in the backscatter path and a metal plate
    /// (`blockage_db`, paper: ≈45 dB) on the direct path.
    pub fn tissue_phantom(carrier_hz: f64, blockage_db: f64) -> Self {
        Scene {
            tissue: Some(wiforce_em::materials::wiforce_phantom()),
            direct_blockage_db: blockage_db,
            ..Self::fig12(carrier_hz)
        }
    }

    /// TX→RX distance, m.
    pub fn direct_distance_m(&self) -> f64 {
        dist(self.tx_pos_m, self.rx_pos_m)
    }

    /// Round-trip backscatter distance TX→tag→RX, m.
    pub fn backscatter_distance_m(&self) -> f64 {
        dist(self.tx_pos_m, self.tag_pos_m) + dist(self.tag_pos_m, self.rx_pos_m)
    }

    /// Linear amplitude factor from the antenna gains over `n_hops`
    /// antenna traversals.
    fn antenna_amp(&self, n_hops: u32) -> f64 {
        10f64.powf(self.antenna_gain_dbi * n_hops as f64 / 20.0)
    }

    /// Direct-path complex gain at absolute frequency `f_hz` (TX and RX
    /// antenna gains, free space, blockage).
    pub fn direct_response(&self, f_hz: f64) -> Complex {
        let d = self.direct_distance_m();
        let amp = friis_amplitude(f_hz, d)
            * self.antenna_amp(2)
            * 10f64.powf(-self.direct_blockage_db / 20.0);
        Complex::from_polar(amp, -TAU * f_hz * d / C0)
    }

    /// Backscatter-path complex gain at `f_hz`, *excluding* the tag's own
    /// reflection coefficient: TX gain, both free-space legs, tag antenna
    /// twice, optional tissue wall twice, RX gain.
    pub fn backscatter_gain(&self, f_hz: f64) -> Complex {
        let d1 = dist(self.tx_pos_m, self.tag_pos_m);
        let d2 = dist(self.tag_pos_m, self.rx_pos_m);
        let mut g = Complex::from_polar(
            backscatter_amplitude(f_hz, d1, d2) * self.antenna_amp(4),
            -TAU * f_hz * (d1 + d2) / C0,
        );
        if let Some(layers) = &self.tissue {
            let t = stack_transmission(layers, f_hz)
                * 10f64.powf(-self.tissue_excess_db_per_pass / 20.0);
            g *= t * t; // traversed on the way in and out
        }
        g
    }

    /// Composite channel at `f_hz` given the tag's instantaneous
    /// reflection `gamma_tag` — the paper's `H[k,n]` for one `(k, n)`.
    pub fn channel(&self, f_hz: f64, gamma_tag: Complex) -> Complex {
        self.direct_response(f_hz)
            + self.multipath.response(f_hz)
            + self.backscatter_gain(f_hz) * gamma_tag
    }

    /// Static part of the channel (everything except the tag term and any
    /// moving scatterers).
    pub fn static_response(&self, f_hz: f64) -> Complex {
        self.direct_response(f_hz) + self.multipath.response(f_hz)
    }

    /// Time-varying clutter from moving scatterers at time `t_s`.
    pub fn dynamic_response(&self, f_hz: f64, t_s: f64) -> Complex {
        self.movers.iter().map(|m| m.response(f_hz, t_s)).sum()
    }

    /// Power ratio (dB) between the direct path and the backscatter path
    /// for a tag reflection magnitude `gamma_mag` — the quantity the §5.2
    /// dynamic-range argument is about.
    pub fn direct_to_backscatter_db(&self, gamma_mag: f64) -> f64 {
        let f = self.carrier_hz;
        20.0 * (self.direct_response(f).abs() / (self.backscatter_gain(f).abs() * gamma_mag))
            .log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig12_geometry() {
        let s = Scene::fig12(0.9e9);
        assert!((s.direct_distance_m() - 1.0).abs() < 1e-12);
        // "equidistant at 50 cm away from either of them" with a 1 m
        // TX–RX spacing puts the sensor on the line's midpoint
        let d1 = dist(s.tx_pos_m, s.tag_pos_m);
        let d2 = dist(s.tag_pos_m, s.rx_pos_m);
        assert!((d1 - 0.5).abs() < 1e-9, "{d1}");
        assert!((d2 - 0.5).abs() < 1e-9, "{d2}");
    }

    #[test]
    fn backscatter_much_weaker_than_direct() {
        let s = Scene::fig12(0.9e9);
        let r = s.direct_to_backscatter_db(0.4);
        assert!((15.0..50.0).contains(&r), "direct/backscatter {r} dB");
    }

    #[test]
    fn channel_sums_terms() {
        let s = Scene::fig12(0.9e9);
        let g = Complex::from_polar(0.3, 1.0);
        let h = s.channel(0.9e9, g);
        let manual = s.direct_response(0.9e9) + s.backscatter_gain(0.9e9) * g;
        assert!((h - manual).abs() < 1e-15);
    }

    #[test]
    fn blockage_attenuates_direct_only() {
        let mut s = Scene::fig12(0.9e9);
        let d0 = s.direct_response(0.9e9).abs();
        let b0 = s.backscatter_gain(0.9e9).abs();
        s.direct_blockage_db = 45.0;
        assert!((20.0 * (d0 / s.direct_response(0.9e9).abs()).log10() - 45.0).abs() < 1e-9);
        assert_eq!(s.backscatter_gain(0.9e9).abs(), b0);
    }

    #[test]
    fn tissue_phantom_hits_paper_budget() {
        // paper §5.2: ≈110 dB two-way backscatter loss at 900 MHz through
        // the phantom (vs ~45–55 dB over the air)
        let ota = Scene::fig12(0.9e9);
        let ph = Scene::tissue_phantom(0.9e9, 45.0);
        let loss_ota = -20.0 * ota.backscatter_gain(0.9e9).abs().log10();
        let loss_ph = -20.0 * ph.backscatter_gain(0.9e9).abs().log10();
        assert!(
            (35.0..65.0).contains(&loss_ota),
            "over-the-air {loss_ota} dB"
        );
        assert!((85.0..135.0).contains(&loss_ph), "phantom {loss_ph} dB");
        assert!(loss_ph > loss_ota + 35.0);
    }

    #[test]
    fn fig18_tag_sweep_changes_budget() {
        let near_rx = Scene::fig18(0.9e9, 3.0); // 3 m from TX, 1 m from RX
        let mid = Scene::fig18(0.9e9, 2.0);
        let g_near = near_rx.backscatter_gain(0.9e9).abs();
        let g_mid = mid.backscatter_gain(0.9e9).abs();
        // 1m·3m product beats 2m·2m product
        assert!(g_near > g_mid);
    }

    #[test]
    fn phase_tracks_total_distance() {
        let s = Scene::fig12(0.9e9);
        let f = 0.9e9;
        let expect = -TAU * f * s.backscatter_distance_m() / C0;
        let got = s.backscatter_gain(f).arg();
        let diff = (got - expect).rem_euclid(TAU);
        assert!(diff < 1e-9 || (TAU - diff) < 1e-9, "{got} vs {expect}");
    }

    #[test]
    fn static_response_excludes_tag() {
        let s = Scene::fig12(0.9e9);
        assert_eq!(s.static_response(0.9e9), s.channel(0.9e9, Complex::ZERO));
    }
}

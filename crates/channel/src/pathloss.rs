//! Link budgets: Friis one-way and backscatter two-way path loss.
//!
//! The paper's numbers to reproduce: ≈110 dB two-way backscatter loss
//! through the tissue phantom at 900 MHz, 10–15 dB direct-path loss at
//! ~1 m spacing, and usable reads out to ~5 m (§1, §5.2, §5.4).

use wiforce_dsp::{C0, PI};

/// Free-space amplitude gain (≤ 1) over distance `d_m` at `f_hz`:
/// `λ / (4πd)`. Squaring gives the Friis power ratio for unit antenna
/// gains.
pub fn friis_amplitude(f_hz: f64, d_m: f64) -> f64 {
    assert!(f_hz > 0.0, "frequency must be positive");
    let lambda = C0 / f_hz;
    let d = d_m.max(lambda / (4.0 * PI)); // clamp inside the near field
    lambda / (4.0 * PI * d)
}

/// One-way free-space path loss in dB (positive number).
pub fn friis_loss_db(f_hz: f64, d_m: f64) -> f64 {
    -20.0 * friis_amplitude(f_hz, d_m).log10()
}

/// Two-way backscatter amplitude gain: TX→tag over `d1_m`, tag→RX over
/// `d2_m`, with the tag re-radiating whatever fraction its reflection
/// coefficient allows (applied separately by the caller).
pub fn backscatter_amplitude(f_hz: f64, d1_m: f64, d2_m: f64) -> f64 {
    friis_amplitude(f_hz, d1_m) * friis_amplitude(f_hz, d2_m)
}

/// Two-way backscatter loss in dB (positive).
pub fn backscatter_loss_db(f_hz: f64, d1_m: f64, d2_m: f64) -> f64 {
    -20.0 * backscatter_amplitude(f_hz, d1_m, d2_m).log10()
}

/// Converts dBm to watts.
pub fn dbm_to_watts(dbm: f64) -> f64 {
    10f64.powf((dbm - 30.0) / 10.0)
}

/// Converts watts to dBm.
pub fn watts_to_dbm(w: f64) -> f64 {
    10.0 * w.log10() + 30.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn friis_known_value() {
        // classic: 1 GHz at 1 m → 32.4 dB... more precisely
        // 20·log10(4πd/λ) = 20·log10(4π/0.29979) = 32.45 dB
        let l = friis_loss_db(1e9, 1.0);
        assert!((l - 32.45).abs() < 0.05, "{l}");
    }

    #[test]
    fn loss_grows_6db_per_doubling() {
        let l1 = friis_loss_db(0.9e9, 1.0);
        let l2 = friis_loss_db(0.9e9, 2.0);
        assert!((l2 - l1 - 6.02).abs() < 0.01);
    }

    #[test]
    fn backscatter_is_sum_of_legs_in_db() {
        let f = 0.9e9;
        let two_way = backscatter_loss_db(f, 0.5, 0.5);
        let one_way = friis_loss_db(f, 0.5);
        assert!((two_way - 2.0 * one_way).abs() < 1e-9);
    }

    #[test]
    fn paper_geometry_budget() {
        // paper Fig. 12: TX–RX ≈ 1 m (direct 10–15 dB-ish at 900 MHz
        // with antenna gains; raw isotropic Friis gives ~31.5 dB),
        // sensor equidistant 0.5 m from each ⇒ two-way backscatter ≈ 51 dB
        let f = 0.9e9;
        let bs = backscatter_loss_db(f, 0.5, 0.5);
        assert!((45.0..60.0).contains(&bs), "{bs} dB");
        // at the 2 m/2 m worst case of Fig. 18 the budget is ~75 dB
        let far = backscatter_loss_db(f, 2.0, 2.0);
        assert!(far > bs + 20.0, "{far} vs {bs}");
    }

    #[test]
    fn near_field_clamp_prevents_gain_above_unity() {
        let a = friis_amplitude(0.9e9, 0.0);
        assert!(a <= 1.0 + 1e-12);
    }

    #[test]
    fn dbm_watt_round_trip() {
        assert!((dbm_to_watts(30.0) - 1.0).abs() < 1e-12);
        assert!((dbm_to_watts(10.0) - 0.01).abs() < 1e-12);
        assert!((watts_to_dbm(dbm_to_watts(17.3)) - 17.3).abs() < 1e-9);
    }
}

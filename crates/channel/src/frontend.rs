//! Receiver front-end: noise, phase jitter, AGC and ADC dynamic range.
//!
//! Two front-end realities drive the paper's results:
//!
//! 1. **Phase stability.** The reported ~0.5° wireless phase accuracy is
//!    not thermal-noise-limited (the link budget is far too good for that)
//!    — it is set by LO phase noise, platform micro-motion and residual
//!    sampling jitter. We model these as a per-snapshot common-mode phase
//!    jitter plus AWGN on each channel estimate.
//! 2. **Dynamic range.** Paper §5.2: "The dynamic range of the USRP SDR we
//!    use was around 60 dB, because of which we can't decode the weak
//!    backscattered signal under the presence of the much stronger direct
//!    path signal" — hence the metal plate. We model AGC that scales the
//!    strongest signal to full scale and an ADC whose quantization floor
//!    sits `6.02·enob` dB below it.

use rand::Rng;
use wiforce_dsp::rng::{complex_gaussian, standard_normal};
use wiforce_dsp::Complex;

/// Receiver front-end model applied to each channel-estimate snapshot.
#[derive(Debug, Clone, Copy)]
pub struct Frontend {
    /// Effective number of ADC bits (USRP N210 usable ≈ 10 ⇒ ~60 dB).
    pub adc_enob_bits: u32,
    /// Receiver noise floor: AWGN standard deviation per received sample,
    /// relative to unit TX amplitude (absolute, i.e. independent of the
    /// channel — thermal noise does not care how strong the direct path
    /// is).
    pub noise_floor: f64,
    /// Common-mode phase jitter per snapshot, radians RMS.
    pub phase_jitter_rad: f64,
}

impl Frontend {
    /// A USRP-N210-like front end tuned so the end-to-end pipeline sees
    /// ≈0.5° phase noise after the paper's averaging — the paper's
    /// reported accuracy floor.
    pub fn usrp_n210() -> Self {
        // TX and RX share one device's LO, so close-in phase noise is
        // common-mode and cancels (paper §4.4); the residual per-snapshot
        // jitter models platform micro-motion and sampling jitter
        Frontend {
            adc_enob_bits: 10,
            noise_floor: 6e-6,
            phase_jitter_rad: 0.2f64.to_radians(),
        }
    }

    /// An ideal front end (no noise, no quantization) for debugging and
    /// algorithm-only ablations.
    pub fn ideal() -> Self {
        Frontend {
            adc_enob_bits: 0,
            noise_floor: 0.0,
            phase_jitter_rad: 0.0,
        }
    }

    /// ADC dynamic range, dB.
    pub fn dynamic_range_db(&self) -> f64 {
        6.02 * self.adc_enob_bits as f64
    }

    /// Applies jitter and quantization only (no additive noise) — used by
    /// the pipeline, which injects thermal noise at the waveform level
    /// inside the channel sounder instead.
    pub fn process<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        estimates: &mut [Complex],
        full_scale: f64,
    ) {
        let no_noise = Frontend {
            noise_floor: 0.0,
            ..*self
        };
        no_noise.capture(rng, estimates, full_scale, 0.0);
    }

    /// Like [`Self::process`], but with the jitter draw pre-supplied:
    /// `g` is the standard normal the sequential path would have drawn
    /// from its RNG at this point (ignored when `phase_jitter_rad == 0`,
    /// where the sequential path draws nothing). Lets a wide producer
    /// pre-draw a whole snapshot block's scalars in exact stream order
    /// and then apply the front end per row without an RNG in hand —
    /// bit-identical to `process` fed the same draw.
    pub fn process_with_jitter_normal(&self, g: f64, estimates: &mut [Complex], full_scale: f64) {
        let jitter = if self.phase_jitter_rad > 0.0 {
            Complex::cis(self.phase_jitter_rad * g)
        } else {
            Complex::ONE
        };
        for h in estimates.iter_mut() {
            *h *= jitter;
        }
        if self.adc_enob_bits > 0 && full_scale > 0.0 {
            let levels = (1u64 << self.adc_enob_bits.min(62)) as f64;
            let step = 2.0 * full_scale / levels;
            wiforce_dsp::kernels::quantize_complex(estimates, full_scale, step);
        }
    }

    /// Processes one snapshot of per-subcarrier channel estimates.
    ///
    /// `full_scale` is the AGC reference amplitude (typically the strongest
    /// static-path magnitude across subcarriers); `noise_scale` multiplies
    /// the noise floor (1.0 for plain captures).
    pub fn capture<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        estimates: &mut [Complex],
        full_scale: f64,
        noise_scale: f64,
    ) {
        // common-mode LO/platform phase wobble for this snapshot
        let jitter = if self.phase_jitter_rad > 0.0 {
            Complex::cis(self.phase_jitter_rad * standard_normal(rng))
        } else {
            Complex::ONE
        };
        let sigma2 = (self.noise_floor * noise_scale).powi(2);
        if sigma2 == 0.0 {
            // noiseless path (how the pipeline calls this, via `process`):
            // bulk rotate then one dispatched quantization pass — the same
            // arithmetic as the general loop below, element for element
            for h in estimates.iter_mut() {
                *h *= jitter;
            }
            if self.adc_enob_bits > 0 && full_scale > 0.0 {
                let levels = (1u64 << self.adc_enob_bits.min(62)) as f64;
                let step = 2.0 * full_scale / levels;
                wiforce_dsp::kernels::quantize_complex(estimates, full_scale, step);
            }
            return;
        }
        for h in estimates.iter_mut() {
            let mut v = *h * jitter;
            v += complex_gaussian(rng, sigma2);
            if self.adc_enob_bits > 0 && full_scale > 0.0 {
                v = quantize(v, full_scale, self.adc_enob_bits);
            }
            *h = v;
        }
    }
}

/// Quantizes a complex value to an `bits`-bit ADC with ±`full_scale` range
/// per rail, clipping on overflow.
pub fn quantize(z: Complex, full_scale: f64, bits: u32) -> Complex {
    let levels = (1u64 << bits.min(62)) as f64;
    let step = 2.0 * full_scale / levels;
    let q = |x: f64| -> f64 {
        let clipped = x.clamp(-full_scale, full_scale);
        (clipped / step).round() * step
    };
    Complex::new(q(z.re), q(z.im))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn dynamic_range_matches_paper() {
        // ~60 dB (paper §5.2)
        let dr = Frontend::usrp_n210().dynamic_range_db();
        assert!((55.0..65.0).contains(&dr), "{dr}");
    }

    #[test]
    fn ideal_front_end_is_transparent() {
        let fe = Frontend::ideal();
        let mut rng = StdRng::seed_from_u64(1);
        let mut est = vec![Complex::new(0.5, -0.25); 8];
        let orig = est.clone();
        fe.capture(&mut rng, &mut est, 1.0, 1.0);
        assert_eq!(est, orig);
    }

    #[test]
    fn quantize_rounds_and_clips() {
        let q = quantize(Complex::new(0.400001, -2.0), 1.0, 8);
        let step = 2.0 / 256.0;
        assert!((q.re - (0.400001f64 / step).round() * step).abs() < 1e-12);
        assert!((q.im + 1.0).abs() < step, "clipped to -full_scale");
    }

    #[test]
    fn quantization_floor_hides_tiny_signals() {
        // a signal 80 dB below full scale vanishes in a 10-bit ADC —
        // the §5.2 "can't decode" phenomenon
        let tiny = Complex::from_re(1e-4); // -80 dB rel 1.0
        let q = quantize(tiny, 1.0, 10);
        assert_eq!(q, Complex::ZERO);
        // but survives once the direct path is knocked down 45 dB
        // (full scale follows the direct path via AGC)
        let q2 = quantize(tiny, 1e-4 * 31.6, 10); // direct now only 30 dB above
        assert!(q2.abs() > 0.0);
    }

    #[test]
    fn phase_jitter_is_common_mode() {
        let fe = Frontend {
            adc_enob_bits: 0,
            noise_floor: 0.0,
            phase_jitter_rad: 0.05,
        };
        let mut rng = StdRng::seed_from_u64(2);
        let mut est = vec![Complex::ONE, Complex::I, Complex::new(0.5, 0.5)];
        let orig = est.clone();
        fe.capture(&mut rng, &mut est, 1.0, 1.0);
        // all entries rotated by the same angle
        let rot0 = (est[0] * orig[0].conj()).arg();
        for (e, o) in est.iter().zip(&orig) {
            let rot = (*e * o.conj()).arg();
            assert!((rot - rot0).abs() < 1e-12);
        }
        assert!(rot0.abs() > 1e-6, "some rotation applied");
    }

    #[test]
    fn estimate_noise_scales_with_noise_scale() {
        let fe = Frontend {
            adc_enob_bits: 0,
            noise_floor: 0.01,
            phase_jitter_rad: 0.0,
        };
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let mut est = vec![Complex::ZERO; n];
        fe.capture(&mut rng, &mut est, 1.0, 2.0);
        let p: f64 = est.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        let expect = (0.01f64 * 2.0).powi(2);
        assert!((p / expect - 1.0).abs() < 0.05, "{p} vs {expect}");
    }

    #[test]
    fn pre_drawn_jitter_matches_process_bitwise() {
        let fe = Frontend {
            adc_enob_bits: 10,
            noise_floor: 0.0,
            phase_jitter_rad: 0.2f64.to_radians(),
        };
        let mut rng = StdRng::seed_from_u64(17);
        let mut a = vec![Complex::new(0.31, -0.12); 16];
        let mut b = a.clone();
        fe.process(&mut rng, &mut a, 1.0);
        // replay: the same draw, pre-extracted as the wide producer does
        let mut rng2 = StdRng::seed_from_u64(17);
        let g = standard_normal(&mut rng2);
        fe.process_with_jitter_normal(g, &mut b, 1.0);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.re.to_bits(), y.re.to_bits());
            assert_eq!(x.im.to_bits(), y.im.to_bits());
        }
        // jitter off: no draw consumed, g is ignored
        let quiet = Frontend {
            phase_jitter_rad: 0.0,
            ..fe
        };
        let mut c = vec![Complex::new(0.31, -0.12); 16];
        let mut d = c.clone();
        quiet.process(&mut rng, &mut c, 1.0);
        quiet.process_with_jitter_normal(123.0, &mut d, 1.0);
        assert_eq!(c, d);
    }

    #[test]
    fn capture_deterministic_under_seed() {
        let fe = Frontend::usrp_n210();
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        let mut e1 = vec![Complex::new(0.1, 0.2); 4];
        let mut e2 = e1.clone();
        fe.capture(&mut a, &mut e1, 1.0, 1.0);
        fe.capture(&mut b, &mut e2, 1.0, 1.0);
        assert_eq!(e1, e2);
    }
}

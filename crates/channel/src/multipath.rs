//! Static multipath clutter.
//!
//! The paper's core signal-processing claim (§3.3) is that the harmonic
//! ("artificial Doppler") FFT *nulls out static multipath*: reflections off
//! walls and furniture are constant across channel snapshots, so they land
//! in the zero-Doppler bin. This module generates exactly the clutter term
//! of the paper's channel equation: `Σᵢ αᵢ·e^{−j2πf·dᵢ/c}`.

use rand::Rng;
use wiforce_dsp::rng::uniform;
use wiforce_dsp::{Complex, C0, TAU};

/// One static propagation path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Path {
    /// Total path length TX→reflector→RX, m.
    pub distance_m: f64,
    /// Complex path gain α (attenuation + reflection phase).
    pub gain: Complex,
}

/// A static multipath profile: a set of discrete paths.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StaticMultipath {
    paths: Vec<Path>,
}

impl StaticMultipath {
    /// No clutter (anechoic chamber).
    pub fn anechoic() -> Self {
        StaticMultipath { paths: Vec::new() }
    }

    /// Builds from explicit paths.
    pub fn from_paths(paths: Vec<Path>) -> Self {
        StaticMultipath { paths }
    }

    /// Generates a random indoor profile: `n_paths` reflections with total
    /// path lengths in `[d_min, d_max]` m and per-path amplitude uniform in
    /// `[0, max_amplitude]` with uniform phase.
    pub fn random_indoor<R: Rng + ?Sized>(
        rng: &mut R,
        n_paths: usize,
        d_min_m: f64,
        d_max_m: f64,
        max_amplitude: f64,
    ) -> Self {
        let paths = (0..n_paths)
            .map(|_| Path {
                distance_m: uniform(rng, d_min_m, d_max_m),
                gain: Complex::from_polar(uniform(rng, 0.0, max_amplitude), uniform(rng, 0.0, TAU)),
            })
            .collect();
        StaticMultipath { paths }
    }

    /// A representative cluttered office: 8 reflections, 2–15 m excess
    /// paths, each up to 30 % of the direct-path amplitude.
    pub fn office<R: Rng + ?Sized>(rng: &mut R, direct_amplitude: f64) -> Self {
        Self::random_indoor(rng, 8, 2.0, 15.0, 0.3 * direct_amplitude)
    }

    /// The paths.
    pub fn paths(&self) -> &[Path] {
        &self.paths
    }

    /// Number of paths.
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// `true` if there is no clutter.
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }

    /// Frequency response of the clutter at absolute frequency `f_hz`:
    /// `Σᵢ αᵢ·e^{−j2πf·dᵢ/c}` — the first term of the paper's `H[k,n]`.
    pub fn response(&self, f_hz: f64) -> Complex {
        self.paths
            .iter()
            .map(|p| p.gain * Complex::cis(-TAU * f_hz * p.distance_m / C0))
            .sum()
    }

    /// Total clutter power `Σ|αᵢ|²`.
    pub fn power(&self) -> f64 {
        self.paths.iter().map(|p| p.gain.norm_sqr()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn anechoic_is_zero() {
        let m = StaticMultipath::anechoic();
        assert!(m.is_empty());
        assert_eq!(m.response(0.9e9), Complex::ZERO);
        assert_eq!(m.power(), 0.0);
    }

    #[test]
    fn single_path_phase_matches_distance() {
        let m = StaticMultipath::from_paths(vec![Path {
            distance_m: 3.0,
            gain: Complex::ONE,
        }]);
        let f = 0.9e9;
        let h = m.response(f);
        let expect = Complex::cis(-TAU * f * 3.0 / C0);
        assert!((h - expect).abs() < 1e-12);
    }

    #[test]
    fn response_is_static_across_time() {
        // (trivially true by construction, but this is the property the
        // Doppler-nulling claim rests on: same response every snapshot)
        let mut rng = StdRng::seed_from_u64(5);
        let m = StaticMultipath::office(&mut rng, 1.0);
        let h1 = m.response(0.9e9);
        let h2 = m.response(0.9e9);
        assert_eq!(h1, h2);
    }

    #[test]
    fn random_profile_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let m = StaticMultipath::random_indoor(&mut rng, 20, 2.0, 10.0, 0.5);
        assert_eq!(m.len(), 20);
        for p in m.paths() {
            assert!((2.0..10.0).contains(&p.distance_m));
            assert!(p.gain.abs() <= 0.5);
        }
    }

    #[test]
    fn response_varies_across_frequency() {
        // frequency-selective fading: different subcarriers see different
        // clutter sums
        let mut rng = StdRng::seed_from_u64(1);
        let m = StaticMultipath::office(&mut rng, 1.0);
        let h1 = m.response(0.9e9);
        let h2 = m.response(0.9e9 + 6e6);
        assert!((h1 - h2).abs() > 1e-3);
    }

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let ma = StaticMultipath::office(&mut a, 1.0);
        let mb = StaticMultipath::office(&mut b, 1.0);
        assert_eq!(ma, mb);
    }
}

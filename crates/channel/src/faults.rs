//! Fault injection for robustness testing.
//!
//! In the spirit of smoltcp's `--drop-chance`/`--corrupt-chance` example
//! options: the pipeline should keep working (or degrade gracefully and
//! *detectably*) under real-world imperfections the paper glosses over —
//! the tag's Arduino clock drifting relative to the reader ("the arduino
//! clock is not synchronized with the other elements of the system",
//! §4.4), dropped channel estimates, and interference bursts.

use rand::Rng;
use wiforce_dsp::rng::{complex_gaussian, uniform};
use wiforce_dsp::Complex;

/// Fault configuration applied at the channel-estimate stream level.
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultConfig {
    /// Probability that a whole snapshot is lost (preamble miss).
    pub snapshot_drop_prob: f64,
    /// Tag clock frequency error, parts-per-million. The modulation lines
    /// move off the nominal `fs`/`4fs` bins by `fs·ppm·1e-6`.
    pub tag_clock_ppm: f64,
    /// Probability that a snapshot is hit by an interference burst.
    pub burst_prob: f64,
    /// Burst amplitude relative to the direct path.
    pub burst_rel_amp: f64,
}

impl FaultConfig {
    /// No faults.
    pub fn none() -> Self {
        FaultConfig::default()
    }

    /// A harsh-but-survivable profile used by the robustness tests.
    pub fn harsh() -> Self {
        FaultConfig {
            snapshot_drop_prob: 0.02,
            tag_clock_ppm: 50.0,
            burst_prob: 0.01,
            burst_rel_amp: 0.1,
        }
    }

    /// A dropout/saturation-heavy profile: frequent preamble misses plus
    /// interference bursts strong enough to drive the front-end ADC into
    /// clipping (amplitude well above the direct path). Used by the batch
    /// fault-isolation tests — a stream under this regime must degrade on
    /// its own without stalling or corrupting sibling streams.
    pub fn saturating() -> Self {
        FaultConfig {
            snapshot_drop_prob: 0.10,
            tag_clock_ppm: 80.0,
            burst_prob: 0.05,
            burst_rel_amp: 10.0,
        }
    }

    /// Effective tag base clock (Hz) after drift.
    pub fn drifted_clock_hz(&self, nominal_hz: f64) -> f64 {
        nominal_hz * (1.0 + self.tag_clock_ppm * 1e-6)
    }

    /// Stateless drop decision: draws one uniform from `rng` iff
    /// `snapshot_drop_prob > 0`. This is the pure predicate under
    /// [`FaultInjector::drops_snapshot`], exposed so counter-addressed
    /// synthesis can make the same decision from a snapshot-local cursor
    /// (no injector state, no telemetry) and tally events in bulk.
    pub fn decide_drop<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        self.snapshot_drop_prob > 0.0 && uniform(rng, 0.0, 1.0) < self.snapshot_drop_prob
    }

    /// Stateless burst decision + injection twin of
    /// [`FaultInjector::maybe_burst`]: returns `true` when a burst was
    /// applied to `estimates`.
    pub fn apply_burst<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        estimates: &mut [Complex],
        direct_amp: f64,
    ) -> bool {
        if self.burst_prob > 0.0 && uniform(rng, 0.0, 1.0) < self.burst_prob {
            let var = (self.burst_rel_amp * direct_amp).powi(2);
            for h in estimates.iter_mut() {
                *h += complex_gaussian(rng, var);
            }
            true
        } else {
            false
        }
    }
}

/// Stateful fault injector for one capture run.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    config: FaultConfig,
    dropped: usize,
    bursts: usize,
}

impl FaultInjector {
    /// Creates an injector for a capture run.
    pub fn new(config: FaultConfig) -> Self {
        FaultInjector {
            config,
            dropped: 0,
            bursts: 0,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Decides whether snapshot `_n` is dropped entirely.
    pub fn drops_snapshot<R: Rng + ?Sized>(&mut self, rng: &mut R) -> bool {
        if self.config.decide_drop(rng) {
            self.dropped += 1;
            wiforce_telemetry::counter!("faults.snapshots_dropped", 1);
            true
        } else {
            false
        }
    }

    /// Possibly injects an interference burst into a snapshot's estimates.
    pub fn maybe_burst<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        estimates: &mut [Complex],
        direct_amp: f64,
    ) {
        if self.config.apply_burst(rng, estimates, direct_amp) {
            self.bursts += 1;
            wiforce_telemetry::counter!("faults.bursts_injected", 1);
        }
    }

    /// Folds fault tallies made outside the injector (parallel synthesis
    /// workers decide drops/bursts from counter cursors and report their
    /// totals here) into the run's counts and the telemetry counters.
    pub fn add_external(&mut self, dropped: usize, bursts: usize) {
        self.dropped += dropped;
        self.bursts += bursts;
        wiforce_telemetry::counter!("faults.snapshots_dropped", dropped as u64);
        wiforce_telemetry::counter!("faults.bursts_injected", bursts as u64);
    }

    /// Snapshots dropped so far.
    pub fn dropped_count(&self) -> usize {
        self.dropped
    }

    /// Bursts injected so far.
    pub fn burst_count(&self) -> usize {
        self.bursts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn none_never_faults() {
        let mut inj = FaultInjector::new(FaultConfig::none());
        let mut rng = StdRng::seed_from_u64(0);
        let mut est = vec![Complex::ONE; 4];
        for _ in 0..1000 {
            assert!(!inj.drops_snapshot(&mut rng));
            inj.maybe_burst(&mut rng, &mut est, 1.0);
        }
        assert_eq!(inj.dropped_count(), 0);
        assert_eq!(inj.burst_count(), 0);
        assert_eq!(est, vec![Complex::ONE; 4]);
    }

    #[test]
    fn drop_rate_approximates_probability() {
        let mut inj = FaultInjector::new(FaultConfig {
            snapshot_drop_prob: 0.1,
            ..FaultConfig::none()
        });
        let mut rng = StdRng::seed_from_u64(1);
        let n = 50_000;
        let dropped = (0..n).filter(|_| inj.drops_snapshot(&mut rng)).count();
        let rate = dropped as f64 / n as f64;
        assert!((rate - 0.1).abs() < 0.01, "{rate}");
        assert_eq!(inj.dropped_count(), dropped);
    }

    #[test]
    fn bursts_add_energy() {
        let mut inj = FaultInjector::new(FaultConfig {
            burst_prob: 1.0,
            burst_rel_amp: 0.5,
            ..FaultConfig::none()
        });
        let mut rng = StdRng::seed_from_u64(2);
        let mut est = vec![Complex::ZERO; 1000];
        inj.maybe_burst(&mut rng, &mut est, 1.0);
        assert_eq!(inj.burst_count(), 1);
        let p: f64 = est.iter().map(|z| z.norm_sqr()).sum::<f64>() / est.len() as f64;
        assert!((p - 0.25).abs() < 0.05, "{p}");
    }

    #[test]
    fn saturating_profile_drops_and_clips() {
        let cfg = FaultConfig::saturating();
        assert!(cfg.snapshot_drop_prob > FaultConfig::harsh().snapshot_drop_prob);
        assert!(
            cfg.burst_rel_amp > 1.0,
            "bursts must exceed the direct path"
        );
        let mut inj = FaultInjector::new(cfg);
        let mut rng = StdRng::seed_from_u64(3);
        let mut est = vec![Complex::ZERO; 64];
        let mut dropped = 0;
        for _ in 0..2000 {
            if inj.drops_snapshot(&mut rng) {
                dropped += 1;
            } else {
                inj.maybe_burst(&mut rng, &mut est, 1.0);
            }
        }
        assert_eq!(dropped, inj.dropped_count());
        let rate = dropped as f64 / 2000.0;
        assert!((rate - 0.10).abs() < 0.03, "drop rate {rate}");
        assert!(inj.burst_count() > 0);
        // a burst at 10× the direct path lands far outside any sane
        // full-scale setting, i.e. the front end will clip it
        let peak = est.iter().map(|z| z.abs()).fold(0.0_f64, f64::max);
        assert!(peak > 1.0, "burst peak {peak}");
    }

    #[test]
    fn fault_events_recorded_in_telemetry() {
        // the drop/burst counts must reach the telemetry recorder, not
        // just the injector's own fields
        wiforce_telemetry::reset();
        wiforce_telemetry::set_enabled(true);
        let mut inj = FaultInjector::new(FaultConfig {
            snapshot_drop_prob: 0.5,
            burst_prob: 1.0,
            burst_rel_amp: 0.1,
            ..FaultConfig::none()
        });
        let mut rng = StdRng::seed_from_u64(4);
        let mut est = vec![Complex::ZERO; 4];
        for _ in 0..100 {
            let _ = inj.drops_snapshot(&mut rng);
        }
        inj.maybe_burst(&mut rng, &mut est, 1.0);
        wiforce_telemetry::set_enabled(false);
        let snap = wiforce_telemetry::take();
        assert_eq!(
            snap.counters.get("faults.snapshots_dropped").copied(),
            Some(inj.dropped_count() as u64)
        );
        assert_eq!(
            snap.counters.get("faults.bursts_injected").copied(),
            Some(1)
        );
    }

    #[test]
    fn stateless_predicates_match_injector_stream() {
        // decide_drop/apply_burst must consume the same draws and make
        // the same decisions as the stateful injector methods — the
        // counter-addressed synthesis path depends on this equivalence.
        let cfg = FaultConfig::saturating();
        let mut inj = FaultInjector::new(cfg);
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        let mut est_a = vec![Complex::ZERO; 8];
        let mut est_b = vec![Complex::ZERO; 8];
        let mut external = (0, 0);
        for _ in 0..500 {
            let da = inj.drops_snapshot(&mut a);
            let db = cfg.decide_drop(&mut b);
            assert_eq!(da, db);
            if !da {
                inj.maybe_burst(&mut a, &mut est_a, 1.0);
                if cfg.apply_burst(&mut b, &mut est_b, 1.0) {
                    external.1 += 1;
                }
            } else {
                external.0 += 1;
            }
        }
        assert_eq!(est_a, est_b);
        assert_eq!(inj.dropped_count(), external.0);
        assert_eq!(inj.burst_count(), external.1);
        // and folding external tallies reproduces the injector's counts
        let mut fold = FaultInjector::new(cfg);
        fold.add_external(external.0, external.1);
        assert_eq!(fold.dropped_count(), inj.dropped_count());
        assert_eq!(fold.burst_count(), inj.burst_count());
    }

    #[test]
    fn clock_drift_moves_lines() {
        let cfg = FaultConfig {
            tag_clock_ppm: 100.0,
            ..FaultConfig::none()
        };
        let f = cfg.drifted_clock_hz(1000.0);
        assert!((f - 1000.1).abs() < 1e-9);
        assert_eq!(FaultConfig::none().drifted_clock_hz(1000.0), 1000.0);
    }
}

#![warn(missing_docs)]

//! # wiforce-channel
//!
//! Wireless-channel substrate for the WiForce reproduction.
//!
//! The paper's evaluations happen over the air in cluttered indoor rooms
//! (Fig. 12), through gelatin tissue phantoms (§5.2, Fig. 15), and across
//! a range of TX–sensor–RX geometries (§5.4, Fig. 18). This crate models
//! all of that as a linear time-varying frequency response
//!
//! ```text
//! H(f, t) = H_direct(f) + H_multipath(f) + g_backscatter(f)·Γ_tag(f, t)
//! ```
//!
//! plus receiver realities: thermal noise, finite ADC dynamic range (the
//! 60 dB USRP limitation that forces the paper's metal-plate isolation in
//! the phantom experiment), and injectable faults.
//!
//! * [`cache`] — press-invariant channel cache (static response,
//!   backscatter gain, AGC full scale) shared read-only by the pipeline
//!   and batch workers, fingerprint-invalidated on any scene change.
//! * [`pathloss`] — Friis one-way and radar-style two-way backscatter
//!   budgets.
//! * [`multipath`] — static indoor clutter as a sum of discrete paths.
//! * [`scene`] — TX/tag/RX geometry + clutter + optional tissue wall:
//!   produces per-subcarrier, per-snapshot channels.
//! * [`frontend`] — thermal noise floor, AGC + ADC quantization, dynamic
//!   range, direct-path blockage.
//! * [`movers`] — moving scatterers (real Doppler) for the §3.3
//!   interference-separation experiment.
//! * [`faults`] — snapshot dropouts, tag clock drift, interference bursts
//!   (for robustness testing, smoltcp-style).

pub mod cache;
pub mod faults;
pub mod frontend;
pub mod movers;
pub mod multipath;
pub mod pathloss;
pub mod scene;

pub use cache::{ChannelCache, SharedChannelCache};
pub use frontend::Frontend;
pub use multipath::StaticMultipath;
pub use scene::Scene;

/// Boltzmann constant, J/K.
pub const K_BOLTZMANN: f64 = 1.380_649e-23;

//! Moving scatterers: dynamic clutter with real Doppler.
//!
//! Paper §3.3: "The switching frequency `fs` can be related to an
//! equivalent Doppler, `fs = f_c·v/c`, and thus an object in the
//! environment moving at velocity `v = c·fs/f_c` would create interference
//! with the sensor signal. However, the chosen `fs` is large enough so
//! that this equivalent speed is so high that it wouldn't appear in the
//! environment." This module provides the moving reflector that lets the
//! `doppler_interference` experiment check that claim quantitatively: slow
//! walkers land near DC and are rejected; only near-`fs`-equivalent speeds
//! (hundreds of m/s at 900 MHz) corrupt the tag lines.

use wiforce_dsp::{Complex, C0, TAU};

/// A point scatterer moving radially at constant speed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MovingScatterer {
    /// Total path length TX→scatterer→RX at `t = 0`, m.
    pub distance0_m: f64,
    /// Rate of change of the total path length, m/s (twice the radial
    /// speed for a monostatic-ish geometry; use the path-length rate
    /// directly).
    pub speed_m_per_s: f64,
    /// Complex path gain at `t = 0`.
    pub gain: Complex,
}

impl MovingScatterer {
    /// A person walking: ~1 m/s path-length rate, 20 % of the direct
    /// amplitude, 3 m excess path.
    pub fn walker(direct_amplitude: f64) -> Self {
        MovingScatterer {
            distance0_m: 3.0,
            speed_m_per_s: 1.0,
            gain: Complex::from_polar(0.2 * direct_amplitude, 0.7),
        }
    }

    /// Doppler frequency (Hz) this scatterer produces at carrier `f_hz`:
    /// `f_d = f·v/c`.
    pub fn doppler_hz(&self, f_hz: f64) -> f64 {
        f_hz * self.speed_m_per_s / C0
    }

    /// The path-length rate (m/s) whose Doppler lands exactly on a
    /// modulation line at `line_hz` for carrier `f_hz` — the paper's
    /// "equivalent speed".
    pub fn speed_for_line(f_hz: f64, line_hz: f64) -> f64 {
        C0 * line_hz / f_hz
    }

    /// Channel contribution at absolute frequency `f_hz` and time `t_s`.
    pub fn response(&self, f_hz: f64, t_s: f64) -> Complex {
        let d = self.distance0_m + self.speed_m_per_s * t_s;
        self.gain * Complex::cis(-TAU * f_hz * d / C0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doppler_formula() {
        let m = MovingScatterer {
            distance0_m: 3.0,
            speed_m_per_s: 1.0,
            gain: Complex::ONE,
        };
        // 1 m/s at 900 MHz ⇒ 3 Hz
        assert!((m.doppler_hz(0.9e9) - 3.0).abs() < 0.01);
    }

    #[test]
    fn equivalent_speed_matches_paper_argument() {
        // the speed aliasing onto the 1 kHz line at 900 MHz ≈ 333 m/s —
        // "so high that it wouldn't appear in the environment"
        let v = MovingScatterer::speed_for_line(0.9e9, 1000.0);
        assert!((330.0..340.0).contains(&v), "{v}");
    }

    #[test]
    fn response_rotates_at_doppler_rate() {
        let m = MovingScatterer {
            distance0_m: 2.0,
            speed_m_per_s: 5.0,
            gain: Complex::ONE,
        };
        let f = 0.9e9;
        let dt = 1e-3;
        let r0 = m.response(f, 0.0);
        let r1 = m.response(f, dt);
        let dphi = (r1 * r0.conj()).arg();
        let expect = -TAU * m.doppler_hz(f) * dt;
        assert!((dphi - expect).abs() < 1e-9, "{dphi} vs {expect}");
    }

    #[test]
    fn stationary_scatterer_is_static() {
        let m = MovingScatterer {
            distance0_m: 2.0,
            speed_m_per_s: 0.0,
            gain: Complex::I,
        };
        assert_eq!(m.response(1e9, 0.0), m.response(1e9, 5.0));
    }
}

//! Property and statistical tests on the channel substrate.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use wiforce_channel::pathloss::{backscatter_loss_db, friis_loss_db};
use wiforce_channel::{Scene, StaticMultipath};

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Friis loss is monotone in distance and frequency.
    #[test]
    fn friis_monotone(d in 0.2f64..20.0, dd in 0.1f64..10.0, f in 0.4e9f64..5.9e9) {
        prop_assert!(friis_loss_db(f, d + dd) > friis_loss_db(f, d));
        prop_assert!(friis_loss_db(f * 1.5, d) > friis_loss_db(f, d));
    }

    /// Two-way backscatter loss equals the sum of the two one-way legs.
    #[test]
    fn backscatter_is_sum_of_legs(d1 in 0.3f64..5.0, d2 in 0.3f64..5.0, f in 0.5e9f64..3.0e9) {
        let total = backscatter_loss_db(f, d1, d2);
        let sum = friis_loss_db(f, d1) + friis_loss_db(f, d2);
        prop_assert!((total - sum).abs() < 1e-9);
    }

    /// The composite channel is linear in the tag reflection.
    #[test]
    fn channel_linear_in_gamma(re in -0.9f64..0.9, im in -0.9f64..0.9) {
        use wiforce_dsp::Complex;
        let s = Scene::fig12(0.9e9);
        let g = Complex::new(re, im);
        let h0 = s.channel(0.9e9, Complex::ZERO);
        let h1 = s.channel(0.9e9, g);
        let h2 = s.channel(0.9e9, g.scale(2.0));
        // (h2 - h0) == 2·(h1 - h0)
        let lin = (h2 - h0) - (h1 - h0).scale(2.0);
        prop_assert!(lin.abs() < 1e-15);
    }
}

#[test]
fn dense_multipath_magnitude_is_rayleigh_like() {
    // with many independent paths the summed clutter amplitude approaches
    // a Rayleigh distribution: mean/rms = sqrt(pi/4) ≈ 0.886
    let mut rng = StdRng::seed_from_u64(42);
    let mut ratios = Vec::new();
    let mags: Vec<f64> = (0..4000)
        .map(|_| {
            let m = StaticMultipath::random_indoor(&mut rng, 24, 1.0, 30.0, 0.1);
            m.response(0.9e9).abs()
        })
        .collect();
    let mean = mags.iter().sum::<f64>() / mags.len() as f64;
    let rms = (mags.iter().map(|m| m * m).sum::<f64>() / mags.len() as f64).sqrt();
    ratios.push(mean / rms);
    let expected = (std::f64::consts::PI / 4.0).sqrt();
    assert!(
        (mean / rms - expected).abs() < 0.03,
        "mean/rms {} vs Rayleigh {expected}",
        mean / rms
    );
}

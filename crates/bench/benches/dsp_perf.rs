//! Criterion benches for the DSP substrate: the primitives on the
//! pipeline's hot path (FFTs per OFDM frame, Goertzel per phase group,
//! polynomial fits per calibration).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use wiforce_dsp::fft::{fft, goertzel};
use wiforce_dsp::polyfit::Polynomial;
use wiforce_dsp::Complex;

fn signal(n: usize) -> Vec<Complex> {
    (0..n)
        .map(|i| Complex::cis(i as f64 * 0.37) * 0.5)
        .collect()
}

fn bench_fft(c: &mut Criterion) {
    let mut g = c.benchmark_group("fft");
    for n in [64usize, 256, 625, 1024] {
        let x = signal(n);
        g.bench_function(format!("fft_{n}"), |b| b.iter(|| fft(black_box(&x))));
    }
    g.finish();
}

fn bench_goertzel(c: &mut Criterion) {
    let x = signal(625);
    c.bench_function("goertzel_625", |b| {
        b.iter(|| goertzel(black_box(&x), black_box(0.0576)))
    });
}

fn bench_polyfit(c: &mut Criterion) {
    let xs: Vec<f64> = (0..16).map(|i| i as f64 * 0.5).collect();
    let ys: Vec<f64> = xs.iter().map(|&x| 0.1 + 0.3 * x - 0.01 * x * x).collect();
    c.bench_function("cubic_fit_16pts", |b| {
        b.iter(|| Polynomial::fit(black_box(&xs), black_box(&ys), 3).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_fft, bench_goertzel, bench_polyfit
}
criterion_main!(benches);

//! Criterion benches for the mechanics substrate: the FD contact solve
//! (calibration cost) vs the analytic model (Monte-Carlo cost).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use wiforce_mech::contact::{ContactSolver, SensorMech};
use wiforce_mech::{AnalyticContactModel, ForceTransducer, Indenter};

fn bench_fd_solver(c: &mut Criterion) {
    let mut g = c.benchmark_group("contact_fd");
    for nodes in [101usize, 201, 401] {
        let solver = ContactSolver::with_nodes(
            SensorMech::wiforce_prototype(),
            Indenter::actuator_tip(),
            nodes,
        );
        g.bench_function(format!("solve_{nodes}_nodes"), |b| {
            b.iter(|| solver.contact_patch(black_box(4.0), black_box(0.035)))
        });
    }
    g.finish();
}

fn bench_analytic(c: &mut Criterion) {
    let model =
        AnalyticContactModel::new(SensorMech::wiforce_prototype(), Indenter::actuator_tip());
    c.bench_function("contact_analytic", |b| {
        b.iter(|| model.contact_patch(black_box(4.0), black_box(0.035)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_fd_solver, bench_analytic
}
criterion_main!(benches);

//! Criterion benches for the end-to-end pipeline: channel sounding,
//! phase-group extraction and model inversion — the pieces that set the
//! reader's real-time budget (one phase group every 36 ms must be
//! processed in well under 36 ms).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use wiforce::harmonics::extract_lines;
use wiforce::pipeline::{Simulation, TagClock};
use wiforce_dsp::Complex;
use wiforce_reader::{ChannelSounder, OfdmSounder};

fn bench_ofdm_estimate(c: &mut Criterion) {
    let s = OfdmSounder::wiforce();
    let truth = vec![Complex::ONE; 64];
    let mut rng = StdRng::seed_from_u64(1);
    c.bench_function("ofdm_channel_estimate", |b| {
        b.iter(|| s.estimate(black_box(&truth), 1e-4, &mut rng))
    });
}

fn bench_group_extraction(c: &mut Criterion) {
    let sim = Simulation::paper_default(0.9e9);
    let mut rng = StdRng::seed_from_u64(2);
    let mut clock = TagClock::new(&mut rng);
    let group = sim.run_snapshots(None, 1, &mut clock, &mut rng);
    c.bench_function("phase_group_extract_625x64", |b| {
        b.iter(|| extract_lines(black_box(&sim.group), black_box(group.view()), 0.0))
    });
}

fn bench_model_invert(c: &mut Criterion) {
    let sim = Simulation::paper_default(2.4e9);
    let model = sim.vna_calibration().unwrap();
    let (p1, p2) = sim.vna_phases(4.0, 0.040);
    c.bench_function("model_invert", |b| {
        b.iter(|| model.invert(black_box(p1), black_box(p2), 0.35).unwrap())
    });
}

fn bench_measure_press(c: &mut Criterion) {
    let mut sim = Simulation::paper_default(2.4e9);
    sim.reference_groups = 1;
    sim.measure_groups = 1;
    let model = sim.vna_calibration().unwrap();
    let mut rng = StdRng::seed_from_u64(3);
    c.bench_function("measure_press_end_to_end", |b| {
        b.iter(|| {
            sim.measure_press(black_box(&model), 4.0, 0.040, &mut rng)
                .unwrap()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_ofdm_estimate, bench_group_extraction, bench_model_invert, bench_measure_press
}
criterion_main!(benches);

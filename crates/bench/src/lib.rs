//! # wiforce-bench
//!
//! Benchmark harness for the WiForce reproduction: one binary per table
//! and figure of the paper's evaluation (see `src/bin/`), plus Criterion
//! performance benches (`benches/`).
//!
//! Each figure binary regenerates the paper's rows/series as aligned text
//! tables and records paper-vs-measured outcomes; `repro_all` runs
//! everything and rewrites `EXPERIMENTS.md`.

pub mod experiments;
pub mod montecarlo;
pub mod observability;
pub mod regression;
pub mod report;
pub mod table;

pub use report::{ExperimentRecord, Report};
pub use table::TextTable;

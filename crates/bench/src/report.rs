//! Paper-vs-measured experiment records and the EXPERIMENTS.md writer.

use std::fmt::Write as _;
use std::path::Path;

/// One reproduced quantity: what the paper reported vs what we measured.
#[derive(Debug, Clone)]
pub struct ExperimentRecord {
    /// Experiment id, e.g. "Fig. 13 @ 900 MHz".
    pub id: String,
    /// The quantity, e.g. "median force error".
    pub quantity: String,
    /// The paper's value, human-readable.
    pub paper: String,
    /// Our measured value, human-readable.
    pub measured: String,
    /// Whether the reproduction criterion holds (shape/ordering, not
    /// absolute equality).
    pub ok: bool,
    /// The criterion that was checked.
    pub criterion: String,
}

impl ExperimentRecord {
    /// Builds a record.
    pub fn new(
        id: impl Into<String>,
        quantity: impl Into<String>,
        paper: impl Into<String>,
        measured: impl Into<String>,
        ok: bool,
        criterion: impl Into<String>,
    ) -> Self {
        ExperimentRecord {
            id: id.into(),
            quantity: quantity.into(),
            paper: paper.into(),
            measured: measured.into(),
            ok,
            criterion: criterion.into(),
        }
    }
}

/// A collection of records that can be rendered and merged into
/// EXPERIMENTS.md.
#[derive(Debug, Clone, Default)]
pub struct Report {
    records: Vec<ExperimentRecord>,
}

impl Report {
    /// An empty report.
    pub fn new() -> Self {
        Report::default()
    }

    /// Adds a record.
    pub fn push(&mut self, r: ExperimentRecord) {
        self.records.push(r);
    }

    /// All records.
    pub fn records(&self) -> &[ExperimentRecord] {
        &self.records
    }

    /// `true` if every record's criterion held.
    pub fn all_ok(&self) -> bool {
        self.records.iter().all(|r| r.ok)
    }

    /// Renders the records as a Markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str("| Experiment | Quantity | Paper | Measured | Criterion | OK |\n");
        out.push_str("|---|---|---|---|---|---|\n");
        for r in &self.records {
            let _ = writeln!(
                out,
                "| {} | {} | {} | {} | {} | {} |",
                r.id,
                r.quantity,
                r.paper,
                r.measured,
                r.criterion,
                if r.ok { "✅" } else { "❌" }
            );
        }
        out
    }

    /// Renders a console summary.
    pub fn to_console(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            let _ = writeln!(
                out,
                "[{}] {} — {}: paper {}, measured {} ({})",
                if r.ok { "ok" } else { "FAIL" },
                r.id,
                r.quantity,
                r.paper,
                r.measured,
                r.criterion
            );
        }
        out
    }

    /// Appends this report's markdown under a section header in the given
    /// file (creating it if needed); replaces an existing section with the
    /// same header.
    pub fn write_section(&self, path: &Path, section: &str) -> std::io::Result<()> {
        let existing = std::fs::read_to_string(path).unwrap_or_default();
        let header = format!("## {section}");
        let mut kept = String::new();
        let mut skipping = false;
        for line in existing.lines() {
            if line.trim() == header {
                skipping = true;
                continue;
            }
            if skipping && line.starts_with("## ") {
                skipping = false;
            }
            if !skipping {
                kept.push_str(line);
                kept.push('\n');
            }
        }
        let mut out = kept.trim_end().to_string();
        if !out.is_empty() {
            out.push_str("\n\n");
        }
        let _ = writeln!(out, "{header}\n");
        out.push_str(&self.to_markdown());
        std::fs::write(path, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(ok: bool) -> ExperimentRecord {
        ExperimentRecord::new("Fig. X", "median", "1.0 N", "1.1 N", ok, "within 2×")
    }

    #[test]
    fn markdown_contains_rows() {
        let mut rep = Report::new();
        rep.push(rec(true));
        let md = rep.to_markdown();
        assert!(md.contains("Fig. X"));
        assert!(md.contains("✅"));
        assert!(rep.all_ok());
    }

    #[test]
    fn all_ok_reflects_failures() {
        let mut rep = Report::new();
        rep.push(rec(true));
        rep.push(rec(false));
        assert!(!rep.all_ok());
        assert!(rep.to_console().contains("FAIL"));
    }

    #[test]
    fn write_section_replaces() {
        let dir = std::env::temp_dir().join("wiforce_report_test");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("EXPERIMENTS.md");
        let _ = std::fs::remove_file(&path);

        let mut rep1 = Report::new();
        rep1.push(rec(true));
        rep1.write_section(&path, "Fig. X").unwrap();
        let mut rep2 = Report::new();
        rep2.push(ExperimentRecord::new(
            "Fig. X", "median", "1.0 N", "2.2 N", false, "c",
        ));
        rep2.write_section(&path, "Fig. X").unwrap();

        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content.matches("## Fig. X").count(), 1);
        assert!(content.contains("2.2 N"));
        assert!(!content.contains("1.1 N"), "old section should be replaced");
    }
}

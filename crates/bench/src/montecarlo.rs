//! Monte-Carlo press sweeps shared by the CDF experiments
//! (Figs. 13/14/16/17).
//!
//! Runs many simulated presses against the calibrated model and collects
//! force/location errors. Presses are independent, so the sweep fans out
//! over `std::thread` with per-press deterministic seeds — rerunning any
//! configuration reproduces identical numbers.

use rand::rngs::StdRng;
use rand::SeedableRng;
use wiforce::calib::SensorModel;
use wiforce::pipeline::Simulation;
use wiforce_telemetry::TelemetrySnapshot;

/// One press result.
#[derive(Debug, Clone, Copy)]
pub struct PressResult {
    /// Ground-truth force, N.
    pub true_force_n: f64,
    /// Ground-truth location, m.
    pub true_location_m: f64,
    /// Estimated force, N (NaN if the press failed to read).
    pub est_force_n: f64,
    /// Estimated location, m (NaN if failed).
    pub est_location_m: f64,
    /// Whether the press produced a reading at all.
    pub ok: bool,
}

impl PressResult {
    /// Absolute force error, N.
    pub fn force_error_n(&self) -> f64 {
        (self.est_force_n - self.true_force_n).abs()
    }

    /// Absolute location error, m.
    pub fn location_error_m(&self) -> f64 {
        (self.est_location_m - self.true_location_m).abs()
    }
}

/// A Monte-Carlo sweep configuration.
#[derive(Debug, Clone)]
pub struct Sweep {
    /// Press locations, m.
    pub locations_m: Vec<f64>,
    /// Press forces, N.
    pub forces_n: Vec<f64>,
    /// Independent trials per (force, location).
    pub trials: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Sweep {
    /// The paper's §5.1 sweep: forces 0–8 N at 20/40/55/60 mm.
    pub fn paper_eval(trials: usize) -> Self {
        Sweep {
            locations_m: vec![0.020, 0.040, 0.055, 0.060],
            forces_n: (1..=16).map(|i| i as f64 * 0.5).collect(),
            trials,
            seed: 0x57EE9,
        }
    }

    /// Total number of presses.
    pub fn len(&self) -> usize {
        self.locations_m.len() * self.forces_n.len() * self.trials
    }

    /// `true` if the sweep is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enumerates `(force, location, seed)` tuples.
    fn presses(&self) -> Vec<(f64, f64, u64)> {
        let mut v = Vec::with_capacity(self.len());
        let mut idx = 0u64;
        for &loc in &self.locations_m {
            for &f in &self.forces_n {
                for _ in 0..self.trials {
                    v.push((f, loc, self.seed.wrapping_add(idx.wrapping_mul(0x9E3779B9))));
                    idx += 1;
                }
            }
        }
        v
    }
}

/// Runs the sweep in parallel, returning one result per press.
pub fn run_sweep(sim: &Simulation, model: &SensorModel, sweep: &Sweep) -> Vec<PressResult> {
    let n_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(16);
    run_sweep_with_threads(sim, model, sweep, n_threads)
}

/// Runs the sweep on exactly `n_threads` worker threads.
///
/// Workers claim presses one at a time off a shared atomic counter
/// (work-stealing), so a straggler press never idles the rest of the
/// pool the way static chunking did. Every press still runs from its own
/// deterministic seed and results are merged back in press order, so the
/// output is bit-identical for any thread count.
pub fn run_sweep_with_threads(
    sim: &Simulation,
    model: &SensorModel,
    sweep: &Sweep,
    n_threads: usize,
) -> Vec<PressResult> {
    let (results, telemetry) = run_sweep_with_threads_telemetry(sim, model, sweep, n_threads);
    // fold the workers' (index-order merged) telemetry into the caller's
    // recorder so sweeps inside a larger telemetry session aren't lost
    wiforce_telemetry::absorb(&telemetry);
    results
}

/// Like [`run_sweep_with_threads`], but also returns the merged telemetry
/// of the whole sweep.
///
/// When the telemetry recorder is enabled, each press runs against a
/// fresh per-thread recorder and its snapshot is captured alongside the
/// press result; after the workers join, the snapshots are merged in
/// press-index order — exactly like the result merge — so counters,
/// gauges, and observation histograms are identical for any thread count
/// (span *durations* are wall-clock and excluded from that guarantee; see
/// [`TelemetrySnapshot::deterministic_eq`]). With telemetry disabled the
/// merged snapshot is empty and the per-press capture costs nothing.
pub fn run_sweep_with_threads_telemetry(
    sim: &Simulation,
    model: &SensorModel,
    sweep: &Sweep,
    n_threads: usize,
) -> (Vec<PressResult>, TelemetrySnapshot) {
    use std::sync::atomic::{AtomicUsize, Ordering};

    let presses = sweep.presses();
    let n_threads = n_threads.max(1);
    let next = AtomicUsize::new(0);

    let run_press = |&(force, loc, seed): &(f64, f64, u64)| {
        let mut rng = StdRng::seed_from_u64(seed);
        match sim.measure_press(model, force, loc, &mut rng) {
            Ok(reading) => PressResult {
                true_force_n: force,
                true_location_m: loc,
                est_force_n: reading.force_n,
                est_location_m: reading.location_m,
                ok: true,
            },
            Err(_) => PressResult {
                true_force_n: force,
                true_location_m: loc,
                est_force_n: f64::NAN,
                est_location_m: f64::NAN,
                ok: false,
            },
        }
    };

    let telemetry_on = wiforce_telemetry::enabled();
    let mut results: Vec<Option<(PressResult, Option<TelemetrySnapshot>)>> =
        vec![None; presses.len()];
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n_threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut done = Vec::new();
                    loop {
                        let idx = next.fetch_add(1, Ordering::Relaxed);
                        let Some(press) = presses.get(idx) else { break };
                        let snap = if telemetry_on {
                            wiforce_telemetry::reset();
                            let r = run_press(press);
                            (r, Some(wiforce_telemetry::take()))
                        } else {
                            (run_press(press), None)
                        };
                        done.push((idx, snap));
                    }
                    done
                })
            })
            .collect();
        for handle in handles {
            for (idx, r) in handle.join().expect("sweep worker panicked") {
                results[idx] = Some(r);
            }
        }
    });
    let mut merged = TelemetrySnapshot::default();
    let results = results
        .into_iter()
        .map(|r| {
            let (press, snap) = r.expect("all presses filled");
            if let Some(snap) = snap {
                merged.merge_from(&snap);
            }
            press
        })
        .collect();
    (results, merged)
}

/// Force errors (N) of successful presses.
pub fn force_errors(results: &[PressResult]) -> Vec<f64> {
    results
        .iter()
        .filter(|r| r.ok)
        .map(PressResult::force_error_n)
        .collect()
}

/// Location errors (mm) of successful presses.
pub fn location_errors_mm(results: &[PressResult]) -> Vec<f64> {
    results
        .iter()
        .filter(|r| r.ok)
        .map(|r| r.location_error_m() * 1e3)
        .collect()
}

/// Returns `true` when `--quick` was passed (fig binaries use fewer
/// trials for a fast smoke run).
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_enumeration() {
        let s = Sweep {
            locations_m: vec![0.02, 0.04],
            forces_n: vec![1.0, 2.0],
            trials: 3,
            seed: 1,
        };
        assert_eq!(s.len(), 12);
        assert!(!s.is_empty());
        let p = s.presses();
        assert_eq!(p.len(), 12);
        // seeds distinct
        let mut seeds: Vec<u64> = p.iter().map(|x| x.2).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 12);
    }

    #[test]
    fn run_small_sweep_deterministic() {
        let mut sim = Simulation::paper_default(2.4e9);
        sim.reference_groups = 1;
        sim.measure_groups = 1;
        let model = sim.vna_calibration().unwrap();
        let sweep = Sweep {
            locations_m: vec![0.040],
            forces_n: vec![4.0],
            trials: 2,
            seed: 9,
        };
        let a = run_sweep(&sim, &model, &sweep);
        let b = run_sweep(&sim, &model, &sweep);
        assert_eq!(a.len(), 2);
        for (x, y) in a.iter().zip(&b) {
            assert!(x.ok && y.ok);
            assert_eq!(x.est_force_n, y.est_force_n);
        }
        let errs = force_errors(&a);
        assert_eq!(errs.len(), 2);
        assert!(errs.iter().all(|&e| e < 1.5), "{errs:?}");
    }

    #[test]
    fn sweep_bit_identical_across_thread_counts() {
        let mut sim = Simulation::paper_default(2.4e9);
        sim.reference_groups = 1;
        sim.measure_groups = 1;
        let model = sim.vna_calibration().unwrap();
        let sweep = Sweep {
            locations_m: vec![0.020, 0.055],
            forces_n: vec![2.0, 5.0],
            trials: 2,
            seed: 42,
        };
        let single = run_sweep_with_threads(&sim, &model, &sweep, 1);
        assert_eq!(single.len(), sweep.len());
        for n_threads in [2, 3, 7] {
            let multi = run_sweep_with_threads(&sim, &model, &sweep, n_threads);
            assert_eq!(multi.len(), single.len());
            for (a, b) in single.iter().zip(&multi) {
                assert_eq!(a.ok, b.ok, "{n_threads} threads");
                assert_eq!(a.est_force_n.to_bits(), b.est_force_n.to_bits());
                assert_eq!(a.est_location_m.to_bits(), b.est_location_m.to_bits());
            }
        }
    }
}

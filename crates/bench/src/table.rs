//! Aligned text tables and CSV output for the figure binaries.

use std::fmt::Write as _;

/// A simple right-aligned text table builder.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Starts a table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width must match header");
        self.rows.push(row);
        self
    }

    /// Renders as an aligned text table.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |out: &mut String, cells: &[String]| {
            for i in 0..cols {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{:>width$}", cells[i], width = widths[i]);
            }
            out.push('\n');
        };
        fmt_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(&mut out, row);
        }
        out
    }

    /// Renders as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        out.push_str(
            &self
                .header
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with the given number of decimals.
pub fn fmt(v: f64, decimals: usize) -> String {
    format!("{v:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new(["force (N)", "phase"]);
        t.row(["1.0", "12.3"]).row(["10.0", "4.5"]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("force (N)"));
        assert!(lines[2].ends_with("12.3"));
    }

    #[test]
    fn csv_escapes() {
        let mut t = TextTable::new(["a", "b"]);
        t.row(["1,5", "x\"y"]);
        let csv = t.to_csv();
        assert!(csv.contains("\"1,5\""));
        assert!(csv.contains("\"x\"\"y\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = TextTable::new(["a", "b"]);
        t.row(["only one"]);
    }
}

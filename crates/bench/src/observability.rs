//! Structural validators for the observability artifacts CI produces:
//! Chrome trace-event JSON (`wiforce-cli trace`) and Prometheus text
//! exposition (`wiforce-cli metrics`).
//!
//! Both validators are plain functions from parsed input to a list of
//! human-readable violations (empty = valid), mirroring
//! [`crate::regression::compare`]: `check_artifacts` wires them to files
//! and exit codes, the CI observability job wires those to a red build.
//!
//! The trace validator doubles as the ring-overflow gate: a non-zero
//! `otherData.dropped_events` is a violation, because a trace with holes
//! cannot back the flow-matching checks (and CI runs are sized to fit
//! the per-thread rings).

use wiforce_telemetry::json::Value;

/// Chrome trace-event phases the WiForce exporter emits (metadata,
/// span begin/end, instant, flow start/end, counter).
pub const KNOWN_PHASES: [&str; 7] = ["M", "B", "E", "i", "s", "f", "C"];

/// Validates a parsed Chrome trace-event document. Checks, in order:
///
/// - `traceEvents` is a non-empty array containing at least one
///   non-metadata event;
/// - every event carries `name`/`ph`/`pid`/`tid`, the phase is one of
///   [`KNOWN_PHASES`], and non-metadata events have a finite `ts`;
/// - process and thread metadata (`process_name`, ≥ 1 `thread_name`)
///   are present so Perfetto labels the lanes;
/// - span begins and ends balance per lane (depth never goes negative,
///   every lane ends at depth 0);
/// - every flow end (`ph:"f"`) binds to a flow start (`ph:"s"`) with
///   the same name and id;
/// - `otherData` reports `ns_per_tick > 0`, `lanes ≥ 1`, and
///   `dropped_events == 0` (the ring-overflow gate).
pub fn validate_chrome_trace(doc: &Value) -> Vec<String> {
    let mut v = Vec::new();

    let Some(events) = doc.get("traceEvents").and_then(Value::as_array) else {
        return vec!["trace: missing 'traceEvents' array".to_string()];
    };
    if events.is_empty() {
        v.push("trace: 'traceEvents' is empty".to_string());
    }

    let mut non_meta = 0usize;
    let mut thread_names = 0usize;
    let mut saw_process_name = false;
    // (lane, open span depth) and (name, id) of open flows
    let mut depth: Vec<(u64, i64)> = Vec::new();
    let mut flow_starts: Vec<(String, u64)> = Vec::new();

    for (i, ev) in events.iter().enumerate() {
        let name = ev.get("name").and_then(Value::as_str);
        let ph = ev.get("ph").and_then(Value::as_str);
        let tid = ev.get("tid").and_then(Value::as_f64);
        if name.is_none() || ph.is_none() {
            v.push(format!("trace: event[{i}] lacks 'name' or 'ph'"));
            continue;
        }
        let (name, ph) = (name.unwrap(), ph.unwrap());
        if !KNOWN_PHASES.contains(&ph) {
            v.push(format!("trace: event[{i}] has unknown phase {ph:?}"));
            continue;
        }
        if ev.get("pid").and_then(Value::as_f64).is_none() || tid.is_none() {
            v.push(format!("trace: event[{i}] ({name}) lacks 'pid'/'tid'"));
            continue;
        }
        let tid = tid.unwrap() as u64;
        if ph == "M" {
            match name {
                "process_name" => saw_process_name = true,
                "thread_name" => thread_names += 1,
                _ => {}
            }
            continue;
        }
        non_meta += 1;
        match ev.get("ts").and_then(Value::as_f64) {
            Some(ts) if ts.is_finite() && ts >= 0.0 => {}
            _ => v.push(format!("trace: event[{i}] ({name}) has no finite 'ts'")),
        }
        match ph {
            "B" | "E" => {
                let d = match depth.iter_mut().find(|(l, _)| *l == tid) {
                    Some((_, d)) => d,
                    None => {
                        depth.push((tid, 0));
                        &mut depth.last_mut().expect("just pushed").1
                    }
                };
                *d += if ph == "B" { 1 } else { -1 };
                if *d < 0 {
                    v.push(format!(
                        "trace: lane {tid} closes span {name:?} with no open span"
                    ));
                    *d = 0; // report once, keep scanning
                }
            }
            "s" | "f" => {
                let id = ev.get("id").and_then(Value::as_f64).map(|x| x as u64);
                let Some(id) = id else {
                    v.push(format!("trace: flow event[{i}] ({name}) lacks 'id'"));
                    continue;
                };
                if ph == "s" {
                    flow_starts.push((name.to_string(), id));
                } else if !flow_starts.iter().any(|(n, fi)| n == name && *fi == id) {
                    v.push(format!(
                        "trace: flow end {name:?} id {id} has no matching start"
                    ));
                }
            }
            "C" => {
                let has_value = ev
                    .get("args")
                    .map(|a| a.get("value").and_then(Value::as_f64).is_some())
                    .unwrap_or(false);
                if !has_value {
                    v.push(format!(
                        "trace: counter event[{i}] ({name}) lacks args.value"
                    ));
                }
            }
            _ => {}
        }
    }

    if non_meta == 0 {
        v.push("trace: no timeline events (metadata only)".to_string());
    }
    if !saw_process_name {
        v.push("trace: missing 'process_name' metadata".to_string());
    }
    if thread_names == 0 {
        v.push("trace: missing 'thread_name' metadata".to_string());
    }
    for (lane, d) in &depth {
        if *d != 0 {
            v.push(format!("trace: lane {lane} leaves {d} span(s) open"));
        }
    }

    match doc.get("otherData") {
        None => v.push("trace: missing 'otherData'".to_string()),
        Some(other) => {
            match other.get("dropped_events").and_then(Value::as_f64) {
                None => v.push("trace: otherData lacks 'dropped_events'".to_string()),
                Some(d) if d > 0.0 => v.push(format!(
                    "trace: ring overflow dropped {d} event(s), expected 0"
                )),
                _ => {}
            }
            match other.get("ns_per_tick").and_then(Value::as_f64) {
                Some(n) if n > 0.0 => {}
                _ => v.push("trace: otherData.ns_per_tick must be > 0".to_string()),
            }
            match other.get("lanes").and_then(Value::as_f64) {
                Some(l) if l >= 1.0 => {}
                _ => v.push("trace: otherData.lanes must be >= 1".to_string()),
            }
        }
    }

    v
}

/// `true` when `name` is a valid Prometheus metric name
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`).
fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// A parsed exposition sample: metric name, label pairs, value text.
type Sample<'a> = (&'a str, Vec<(&'a str, &'a str)>, &'a str);

/// Splits a sample line into (metric name, label pairs, value text).
fn parse_sample(line: &str) -> Option<Sample<'_>> {
    let (series, value) = line.rsplit_once(' ')?;
    let (name, labels) = match series.split_once('{') {
        Some((name, rest)) => {
            let body = rest.strip_suffix('}')?;
            let mut pairs = Vec::new();
            if !body.is_empty() {
                for pair in body.split(',') {
                    let (k, quoted) = pair.split_once('=')?;
                    let val = quoted.strip_prefix('"')?.strip_suffix('"')?;
                    pairs.push((k, val));
                }
            }
            (name, pairs)
        }
        None => (series, Vec::new()),
    };
    Some((name, labels, value))
}

/// Validates Prometheus text exposition as produced by
/// `MetricsSnapshot::prometheus`. Checks:
///
/// - every non-comment line parses as `name[{k="v",…}] value` with a
///   grammar-legal metric name and a float (or `NaN`/`±Inf`) value;
/// - every sample's family (name with `_sum`/`_count` stripped) was
///   announced by a preceding `# TYPE family counter|gauge|summary`
///   line;
/// - summaries carry `quantile` series plus `_sum`/`_count`;
/// - at least one sample is labelled `stream="…"` (the per-stream
///   series the batch engine is contracted to export).
pub fn validate_prometheus(text: &str) -> Vec<String> {
    let mut v = Vec::new();
    if text.trim().is_empty() {
        return vec!["metrics: exposition is empty".to_string()];
    }

    // family -> type, in announcement order
    let mut families: Vec<(String, String)> = Vec::new();
    let mut samples = 0usize;
    let mut stream_labelled = 0usize;

    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            match (parts.next(), parts.next(), parts.next()) {
                (Some(fam), Some(ty), None)
                    if valid_metric_name(fam)
                        && ["counter", "gauge", "summary", "histogram", "untyped"]
                            .contains(&ty) =>
                {
                    families.push((fam.to_string(), ty.to_string()));
                }
                _ => v.push(format!("metrics: line {n}: malformed TYPE line {line:?}")),
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP or comment
        }
        let Some((name, labels, value)) = parse_sample(line) else {
            v.push(format!("metrics: line {n}: unparseable sample {line:?}"));
            continue;
        };
        samples += 1;
        if !valid_metric_name(name) {
            v.push(format!("metrics: line {n}: illegal metric name {name:?}"));
        }
        if value.parse::<f64>().is_err() && !["NaN", "+Inf", "-Inf"].contains(&value) {
            v.push(format!("metrics: line {n}: unparseable value {value:?}"));
        }
        let family = name
            .strip_suffix("_sum")
            .or_else(|| name.strip_suffix("_count"))
            .filter(|f| families.iter().any(|(fam, ty)| fam == f && ty == "summary"))
            .unwrap_or(name);
        if !families.iter().any(|(fam, _)| fam == family) {
            v.push(format!(
                "metrics: line {n}: sample {name:?} has no preceding TYPE line"
            ));
        }
        if labels.iter().any(|(k, _)| *k == "stream") {
            stream_labelled += 1;
        }
    }

    if samples == 0 {
        v.push("metrics: no samples (comments only)".to_string());
    }
    if stream_labelled == 0 {
        v.push("metrics: no per-stream series (no sample with a stream=\"…\" label)".to_string());
    }

    // each announced summary must actually export quantile + _sum + _count
    for (fam, ty) in &families {
        if ty != "summary" {
            continue;
        }
        let has = |needle: &str| text.lines().any(|l| l.starts_with(needle));
        if !text
            .lines()
            .any(|l| l.starts_with(fam.as_str()) && l.contains("quantile=\""))
        {
            v.push(format!("metrics: summary {fam} exports no quantile series"));
        }
        if !has(&format!("{fam}_sum")) || !has(&format!("{fam}_count")) {
            v.push(format!("metrics: summary {fam} lacks _sum/_count series"));
        }
    }

    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use wiforce_telemetry::json::parse;

    fn trace_doc(body_events: &str, dropped: u64) -> Value {
        parse(&format!(
            r#"{{"traceEvents": [
                {{"name": "process_name", "ph": "M", "pid": 1, "tid": 0,
                  "args": {{"name": "wiforce"}}}},
                {{"name": "thread_name", "ph": "M", "pid": 1, "tid": 1,
                  "args": {{"name": "worker-0"}}}},
                {body_events}
            ],
            "otherData": {{"dropped_events": {dropped}, "ns_per_tick": 1.0,
                           "lanes": 1}}}}"#
        ))
        .expect("trace doc parses")
    }

    const BALANCED: &str = r#"
        {"name": "batch.run", "ph": "B", "cat": "wiforce", "ts": 0.0,
         "pid": 1, "tid": 1},
        {"name": "batch.handoff", "ph": "s", "cat": "flow", "ts": 1.0,
         "pid": 1, "tid": 1, "id": 7},
        {"name": "batch.handoff", "ph": "f", "cat": "flow", "ts": 2.0,
         "pid": 1, "tid": 1, "bp": "e", "id": 7},
        {"name": "batch.queue_depth.0", "ph": "C", "cat": "wiforce",
         "ts": 3.0, "pid": 1, "tid": 1, "args": {"value": 2}},
        {"name": "batch.run", "ph": "E", "cat": "wiforce", "ts": 4.0,
         "pid": 1, "tid": 1}"#;

    #[test]
    fn well_formed_trace_passes() {
        let doc = trace_doc(BALANCED, 0);
        assert_eq!(validate_chrome_trace(&doc), Vec::<String>::new());
    }

    #[test]
    fn dropped_events_gate_fires() {
        let doc = trace_doc(BALANCED, 3);
        let v = validate_chrome_trace(&doc);
        assert!(v.iter().any(|e| e.contains("ring overflow")), "{v:?}");
    }

    #[test]
    fn unbalanced_spans_flagged() {
        let doc = trace_doc(
            r#"{"name": "a", "ph": "B", "ts": 0.0, "pid": 1, "tid": 1}"#,
            0,
        );
        let v = validate_chrome_trace(&doc);
        assert!(v.iter().any(|e| e.contains("open")), "{v:?}");

        let doc = trace_doc(
            r#"{"name": "a", "ph": "E", "ts": 0.0, "pid": 1, "tid": 1}"#,
            0,
        );
        let v = validate_chrome_trace(&doc);
        assert!(v.iter().any(|e| e.contains("no open span")), "{v:?}");
    }

    #[test]
    fn orphan_flow_end_flagged() {
        let doc = trace_doc(
            r#"{"name": "h", "ph": "f", "ts": 0.0, "pid": 1, "tid": 1,
                "bp": "e", "id": 9}"#,
            0,
        );
        let v = validate_chrome_trace(&doc);
        assert!(v.iter().any(|e| e.contains("no matching start")), "{v:?}");
    }

    #[test]
    fn missing_sections_flagged() {
        let doc = parse(r#"{"foo": 1}"#).unwrap();
        let v = validate_chrome_trace(&doc);
        assert!(v[0].contains("traceEvents"), "{v:?}");

        let doc = parse(r#"{"traceEvents": []}"#).unwrap();
        let v = validate_chrome_trace(&doc);
        assert!(v.iter().any(|e| e.contains("empty")), "{v:?}");
        assert!(v.iter().any(|e| e.contains("otherData")), "{v:?}");
    }

    const GOOD_PROM: &str = "\
# TYPE wiforce_batch_presses_served counter
wiforce_batch_presses_served{stream=\"s0\"} 7
wiforce_batch_presses_served{stream=\"s1\"} 9
# TYPE wiforce_batch_workers gauge
wiforce_batch_workers 4
# TYPE wiforce_batch_group_latency_ns summary
wiforce_batch_group_latency_ns{stream=\"s0\",quantile=\"0.5\"} 2048
wiforce_batch_group_latency_ns{stream=\"s0\",quantile=\"0.95\"} 4096
wiforce_batch_group_latency_ns{stream=\"s0\",quantile=\"0.99\"} 4096
wiforce_batch_group_latency_ns_sum{stream=\"s0\"} 6144
wiforce_batch_group_latency_ns_count{stream=\"s0\"} 3
";

    #[test]
    fn well_formed_prometheus_passes() {
        assert_eq!(validate_prometheus(GOOD_PROM), Vec::<String>::new());
    }

    #[test]
    fn prometheus_missing_type_line_flagged() {
        let v = validate_prometheus("wiforce_x{stream=\"s0\"} 1\n");
        assert!(v.iter().any(|e| e.contains("no preceding TYPE")), "{v:?}");
    }

    #[test]
    fn prometheus_requires_stream_series() {
        let v = validate_prometheus("# TYPE wiforce_x counter\nwiforce_x 1\n");
        assert!(v.iter().any(|e| e.contains("per-stream")), "{v:?}");
    }

    #[test]
    fn prometheus_bad_lines_flagged() {
        let text = "# TYPE wiforce_x counter\nwiforce_x{stream=\"s0\"} not_a_number\n\
                    9bad{stream=\"s0\"} 1\n";
        let v = validate_prometheus(text);
        assert!(v.iter().any(|e| e.contains("unparseable value")), "{v:?}");
        assert!(v.iter().any(|e| e.contains("illegal metric name")), "{v:?}");
    }

    #[test]
    fn prometheus_incomplete_summary_flagged() {
        let text = "# TYPE wiforce_lat summary\nwiforce_lat{stream=\"s0\",quantile=\"0.5\"} 1\n";
        let v = validate_prometheus(text);
        assert!(v.iter().any(|e| e.contains("_sum/_count")), "{v:?}");
    }

    #[test]
    fn prometheus_empty_flagged() {
        assert!(validate_prometheus("")[0].contains("empty"));
        let v = validate_prometheus("# TYPE wiforce_x counter\n");
        assert!(v.iter().any(|e| e.contains("no samples")), "{v:?}");
    }
}

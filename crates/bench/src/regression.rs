//! Perf-regression gate over `BENCH_pipeline.json` artifacts.
//!
//! CI regenerates the benchmark on every run and compares it against the
//! committed baseline with [`compare`]: the hot-path metric
//! (`ns_per_press`) may not regress by more than [`MAX_REGRESSION_PCT`],
//! and the fresh artifact must carry a complete batch-engine
//! `throughput` section ([`REQUIRED_STREAM_POINTS`]) demonstrating at
//! least [`MIN_STREAM_SPEEDUP`]× aggregate presses/sec at the largest
//! stream count versus one stream. Everything else is reported
//! informationally in a before/after table suitable for a GitHub job
//! summary ([`Comparison::markdown_table`]).
//!
//! The comparison logic is a plain function over parsed JSON values so
//! it unit-tests without touching the filesystem; `check_artifacts`
//! wires it to files and exit codes.

use wiforce_telemetry::json::Value;

/// Hard ceiling on how much slower a gated metric may get, percent.
///
/// The gate compares two single runs of a timing benchmark on a shared
/// one-core CI box; the press loop's observed run-to-run spread is
/// ~±10%, so the ceiling sits above the noise floor while still
/// catching real multi-stage regressions.
pub const MAX_REGRESSION_PCT: f64 = 25.0;

/// Hard ceiling on how much `stage_breakdown.synth_ns_per_press` may
/// regress, percent. Tighter than the headline gate: the synthesis stage
/// is the pipeline's dominant cost and its per-stage time is a span
/// aggregate over every telemetry-on press (less noisy than a single
/// wall-clock pair), so a 15% move is a real regression, not jitter.
pub const MAX_SYNTH_STAGE_REGRESSION_PCT: f64 = 15.0;

/// Maximum absolute growth of `allocs_per_group` over the baseline.
/// Allocation counts are near-deterministic (the counting allocator sees
/// the same steady-state loop every run), so any growth beyond a couple
/// of stray allocations is a real hot-path regression — this metric
/// drifted 6 → 13 while it was informational, which is exactly what the
/// gate now prevents.
pub const MAX_ALLOCS_PER_GROUP_GROWTH: f64 = 2.0;

/// Stream counts the fresh artifact's `throughput` section must cover.
pub const REQUIRED_STREAM_POINTS: [u64; 3] = [1, 4, 8];

/// Minimum aggregate presses/sec speedup at the largest required stream
/// count relative to one stream (the sounding-amortization guarantee).
///
/// The ideal ratio is `8(s+x)/(s+8x)` for shared sounding cost `s` and
/// per-stream cost `x`; with the sounding now ~5× faster than at v3 the
/// non-amortizing stages (demux copy, Goertzel extraction, model
/// inversion) cap it near 3.2×, so the gate sits at 2.5× — low enough
/// not to flake on scheduler jitter, high enough that it fails if the
/// sounding stops being shared.
pub const MIN_STREAM_SPEEDUP: f64 = 2.5;

/// Hard ceiling on `telemetry_overhead_pct`: recording spans and counters
/// may not cost more than this fraction of the telemetry-off hot path
/// (enforced by `check_artifacts` on schema-v4 artifacts).
///
/// Recalibrated from 5% with the counter-synthesis path: with the
/// recorder enabled the workers accumulate per-snapshot tick counts and
/// the calling thread replays them (plus the fused-extraction spans) in
/// deterministic order after the join, which prices the median a few
/// points above zero, and single-core CI runs of the off/on pair swing
/// ±3 points on top. The ceiling sits above that floor while still
/// catching a recorder that starts allocating or locking per snapshot.
pub const MAX_TELEMETRY_OVERHEAD_PCT: f64 = 12.0;

/// Reconciliation band for the schema-v5 stage-sum check: the four
/// per-stage `*_ns_per_press` entries must sum to within this band of
/// `ns_per_press_telemetry_on`. The band is deliberately loose — the
/// stages are span/tick aggregates averaged over every telemetry-on
/// block while the headline is the best block, the fused streaming path
/// counts spectrum extraction both inside the synthesis wall time and as
/// its own thread-time stage, and parallel synthesis makes thread time
/// exceed wall time — but it still catches a stage that silently stops
/// being recorded (sum collapses toward 0) or double-counts wildly.
pub const STAGE_SUM_MIN_RATIO: f64 = 0.35;
/// Upper edge of the stage-sum reconciliation band (see
/// [`STAGE_SUM_MIN_RATIO`]).
pub const STAGE_SUM_MAX_RATIO: f64 = 2.5;

/// Ceiling on `synth_wide.ns_per_group_on / ns_per_group_off` for v8
/// artifacts: the calibrated default may only run the wide SoA path when
/// it actually wins, so an artifact where wide costs more than the row
/// path (beyond timing noise on one 50-iteration pair) means the
/// chunk-width calibration is broken or being ignored.
pub const MAX_WIDE_ON_OFF_RATIO: f64 = 1.05;

/// Floor on the steady-state `response_table_hit_rate` for v8 artifacts:
/// with patch jitter zeroed, every post-warmup press must gather its
/// prepared sounding tables from the per-scene response memo.
pub const MIN_RESPONSE_TABLE_HIT_RATE: f64 = 0.99;

/// Absolute ceiling on `allocs_per_group` for v8 artifacts. The pooled
/// scratch and response tables brought the steady-state sequential group
/// to a handful of allocations; this gate keeps it there independently of
/// what any baseline says.
pub const MAX_ALLOCS_PER_GROUP: f64 = 6.0;

/// Floor on aggregate batch throughput at the 8-stream point for full
/// (non-`quick`) v8 artifacts, presses per second across all streams.
pub const MIN_THROUGHPUT_8_STREAMS_PPS: f64 = 1200.0;

/// Ceiling on `synth_spectral.ns_per_press` for full v9 artifacts: the
/// spectral path synthesizes the two consumed lines directly (O(K) work
/// per group instead of O(N·K) waveform + O(N log N) extraction), so a
/// sequential press must come in under a millisecond — roughly 3× faster
/// than the time-domain headline has ever been. Breaching it means the
/// fast path fell back to waveform synthesis or grew a hidden O(N·K)
/// stage.
pub const MAX_SPECTRAL_NS_PER_PRESS: f64 = 1_000_000.0;

/// Floor on `synth_spectral.presses_per_sec_8_streams` for full v9
/// artifacts: an 8-stream spectral batch run must clear 5000 aggregate
/// presses/sec — an order of magnitude above the time-domain
/// [`MIN_THROUGHPUT_8_STREAMS_PPS`] floor, which is the whole point of
/// skipping the waveform.
pub const MIN_SPECTRAL_THROUGHPUT_8_STREAMS_PPS: f64 = 5000.0;

/// Keys of the v9 `synth_spectral` object (all timing-derived, so the
/// determinism diff skips them via [`is_timing_key`]'s patterns).
pub const SYNTH_SPECTRAL_METRICS: [&str; 4] = [
    "ns_per_press",
    "presses_per_sec",
    "presses_per_sec_8_streams",
    "p95_stream_latency_ns",
];

/// Keys of the schema-v4 `stage_breakdown` object, reported per-stage in
/// the before/after table so a `ns_per_press` move names its stage.
pub const STAGE_BREAKDOWN_METRICS: [&str; 5] = [
    "synth_ns_per_press",
    "spectrum_ns_per_press",
    "estimator_ns_per_press",
    "tracker_ns_per_press",
    "cache_hit_rate",
];

/// One before/after line of the comparison table.
#[derive(Debug, Clone)]
pub struct Row {
    /// Metric name as it appears in the artifact.
    pub metric: String,
    /// Baseline value, if the baseline artifact has the key.
    pub baseline: Option<f64>,
    /// Fresh value, if the fresh artifact has the key.
    pub fresh: Option<f64>,
    /// Relative change in percent, `(fresh - baseline) / baseline`.
    pub delta_pct: Option<f64>,
    /// Whether this row participates in the pass/fail gate.
    pub gated: bool,
}

impl Row {
    fn build(metric: &str, baseline: &Value, fresh: &Value, gated: bool) -> Row {
        let b = baseline.get(metric).and_then(Value::as_f64);
        let f = fresh.get(metric).and_then(Value::as_f64);
        let delta_pct = match (b, f) {
            (Some(b), Some(f)) if b != 0.0 => Some(100.0 * (f - b) / b),
            _ => None,
        };
        Row {
            metric: metric.to_string(),
            baseline: b,
            fresh: f,
            delta_pct,
            gated,
        }
    }
}

/// The outcome of one baseline-vs-fresh comparison.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Before/after rows, gated metrics first.
    pub rows: Vec<Row>,
    /// Human-readable gate violations; empty means the gate passes.
    pub violations: Vec<String>,
}

impl Comparison {
    /// `true` when no gated metric regressed and the throughput section
    /// is complete.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// GitHub-flavoured markdown before/after table plus a verdict line,
    /// ready for `$GITHUB_STEP_SUMMARY`.
    pub fn markdown_table(&self) -> String {
        let mut out = String::from("### Pipeline benchmark vs baseline\n\n");
        out.push_str("| metric | baseline | fresh | Δ% | gate |\n");
        out.push_str("|---|---:|---:|---:|---|\n");
        for row in &self.rows {
            let fmt = |v: Option<f64>| match v {
                Some(v) => format!("{v:.2}"),
                None => "—".to_string(),
            };
            let delta = match row.delta_pct {
                Some(d) => format!("{d:+.1}%"),
                None => "—".to_string(),
            };
            let gate = if !row.gated {
                "info"
            } else if self
                .violations
                .iter()
                .any(|v| v.starts_with(row.metric.as_str()))
            {
                "**FAIL**"
            } else {
                "ok"
            };
            out.push_str(&format!(
                "| {} | {} | {} | {} | {} |\n",
                row.metric,
                fmt(row.baseline),
                fmt(row.fresh),
                delta,
                gate
            ));
        }
        out.push('\n');
        if self.passed() {
            out.push_str("✅ no perf regression\n");
        } else {
            for v in &self.violations {
                out.push_str(&format!("❌ {v}\n"));
            }
        }
        out
    }
}

/// Extracts `presses_per_sec` per stream count from an artifact's
/// `throughput` array, in file order.
fn throughput_points(doc: &Value) -> Option<Vec<(u64, f64, Option<f64>)>> {
    let arr = doc.get("throughput").and_then(Value::as_array)?;
    let mut out = Vec::new();
    for entry in arr {
        let streams = entry.get("streams").and_then(Value::as_f64)? as u64;
        let pps = entry.get("presses_per_sec").and_then(Value::as_f64)?;
        let p95 = entry.get("p95_stream_latency_ns").and_then(Value::as_f64);
        out.push((streams, pps, p95));
    }
    Some(out)
}

/// Compares a fresh `BENCH_pipeline.json` document against the committed
/// baseline. Gates: `ns_per_press` may not regress more than
/// [`MAX_REGRESSION_PCT`]; the fresh `throughput` section must cover
/// [`REQUIRED_STREAM_POINTS`] with positive throughput and latency keys
/// and scale by [`MIN_STREAM_SPEEDUP`] at the top point.
pub fn compare(baseline: &Value, fresh: &Value) -> Comparison {
    let mut rows = Vec::new();
    let mut violations = Vec::new();

    // gated hot-path metric (lower is better)
    let row = Row::build("ns_per_press", baseline, fresh, true);
    match (row.fresh, row.delta_pct) {
        (None, _) => violations.push("ns_per_press is missing from the fresh artifact".to_string()),
        (Some(_), Some(d)) if d > MAX_REGRESSION_PCT => violations.push(format!(
            "ns_per_press regressed {d:+.1}% (limit {MAX_REGRESSION_PCT:.0}%)"
        )),
        _ => {}
    }
    rows.push(row);

    // gated allocation count: near-deterministic, so growth beyond a
    // couple of stray allocations is a real hot-path regression
    let allocs = Row::build("allocs_per_group", baseline, fresh, true);
    if let (Some(b), Some(f)) = (allocs.baseline, allocs.fresh) {
        if f > b + MAX_ALLOCS_PER_GROUP_GROWTH {
            violations.push(format!(
                "allocs_per_group grew from {b:.1} to {f:.1} \
                 (allowed +{MAX_ALLOCS_PER_GROUP_GROWTH:.0})"
            ));
        }
    }
    rows.push(allocs);

    // informational context
    for metric in ["presses_per_sec", "ns_per_group", "telemetry_overhead_pct"] {
        rows.push(Row::build(metric, baseline, fresh, false));
    }

    // wide-path guard (schema v7+): the calibrated default must keep the
    // SoA path at least as fast as the row path. Gated on the fresh
    // artifact alone — the ratio needs no baseline — and reported as a
    // before/after row so a drift in either leg is visible.
    let wide = |doc: &Value, key: &str| {
        doc.get("synth_wide")
            .and_then(|sw| sw.get(key))
            .and_then(Value::as_f64)
    };
    for key in ["ns_per_group_on", "ns_per_group_off"] {
        let b = wide(baseline, key);
        let f = wide(fresh, key);
        if b.is_some() || f.is_some() {
            rows.push(Row {
                metric: format!("synth_wide.{key}"),
                baseline: b,
                fresh: f,
                delta_pct: match (b, f) {
                    (Some(b), Some(f)) if b != 0.0 => Some(100.0 * (f - b) / b),
                    _ => None,
                },
                gated: key == "ns_per_group_on",
            });
        }
    }
    if let (Some(on), Some(off)) = (
        wide(fresh, "ns_per_group_on"),
        wide(fresh, "ns_per_group_off"),
    ) {
        if off > 0.0 && on / off > MAX_WIDE_ON_OFF_RATIO {
            violations.push(format!(
                "synth_wide.ns_per_group_on = {on:.0} is {:.2}× ns_per_group_off = {off:.0} \
                 (limit {MAX_WIDE_ON_OFF_RATIO:.2}×) — the wide path is enabled but losing; \
                 the chunk-width calibration should have fallen back to the row path",
                on / off
            ));
        }
    }

    // schema v4+: per-stage deltas. The synthesis stage is gated on its
    // own (it dominates the press and its span aggregate is less noisy
    // than the wall-clock headline); the rest name the stage that moved.
    let stage = |doc: &Value, key: &str| {
        doc.get("stage_breakdown")
            .and_then(|sb| sb.get(key))
            .and_then(Value::as_f64)
    };
    for key in STAGE_BREAKDOWN_METRICS {
        let b = stage(baseline, key);
        let f = stage(fresh, key);
        let delta_pct = match (b, f) {
            (Some(b), Some(f)) if b != 0.0 => Some(100.0 * (f - b) / b),
            _ => None,
        };
        let gated = key == "synth_ns_per_press";
        if gated {
            if let Some(d) = delta_pct {
                if d > MAX_SYNTH_STAGE_REGRESSION_PCT {
                    violations.push(format!(
                        "stage_breakdown.synth_ns_per_press regressed {d:+.1}% \
                         (limit {MAX_SYNTH_STAGE_REGRESSION_PCT:.0}%)"
                    ));
                }
            }
        }
        if b.is_some() || f.is_some() {
            rows.push(Row {
                metric: format!("stage_breakdown.{key}"),
                baseline: b,
                fresh: f,
                delta_pct,
                gated,
            });
        }
    }

    // throughput section: structural completeness is gated
    let base_points = throughput_points(baseline).unwrap_or_default();
    match throughput_points(fresh) {
        None => violations.push(
            "fresh artifact is missing the 'throughput' section \
             (streams/presses_per_sec/p95_stream_latency_ns)"
                .to_string(),
        ),
        Some(points) => {
            for want in REQUIRED_STREAM_POINTS {
                let Some(&(_, pps, p95)) = points.iter().find(|(s, _, _)| *s == want) else {
                    violations.push(format!("throughput section lacks the {want}-stream point"));
                    continue;
                };
                if pps <= 0.0 {
                    violations.push(format!(
                        "throughput[streams={want}].presses_per_sec = {pps}, expected > 0"
                    ));
                }
                if p95.is_none() {
                    violations.push(format!(
                        "throughput[streams={want}] is missing 'p95_stream_latency_ns'"
                    ));
                }
                let base_pps = base_points
                    .iter()
                    .find(|(s, _, _)| *s == want)
                    .map(|&(_, pps, _)| pps);
                let delta_pct = base_pps
                    .filter(|b| *b != 0.0)
                    .map(|b| 100.0 * (pps - b) / b);
                rows.push(Row {
                    metric: format!("throughput[{want}].presses_per_sec"),
                    baseline: base_pps,
                    fresh: Some(pps),
                    delta_pct,
                    gated: false,
                });
            }
            let one = points.iter().find(|(s, _, _)| *s == 1).map(|p| p.1);
            let top_streams = *REQUIRED_STREAM_POINTS.iter().max().expect("non-empty");
            let top = points
                .iter()
                .find(|(s, _, _)| *s == top_streams)
                .map(|p| p.1);
            if let (Some(one), Some(top)) = (one, top) {
                if one > 0.0 && top / one < MIN_STREAM_SPEEDUP {
                    violations.push(format!(
                        "aggregate speedup at {top_streams} streams is {:.2}×, \
                         expected ≥ {MIN_STREAM_SPEEDUP:.1}×",
                        top / one
                    ));
                }
            }
        }
    }

    Comparison { rows, violations }
}

/// Returns `true` when a JSON key names a timing-dependent quantity that
/// legitimately varies between runs (and between worker counts): span
/// durations, latencies, throughput rates, overhead ratios, and the
/// worker-count knobs themselves. Everything else — counts, counters,
/// gauges, observation histograms, yields — is expected to be
/// bit-deterministic for a fixed seed regardless of
/// `WIFORCE_SYNTH_WORKERS`, which is what [`diff_ignoring_timing`]
/// checks.
pub fn is_timing_key(key: &str) -> bool {
    key.ends_with("_ns")
        || key.starts_with("ns_per")
        || key.contains("_ns_per")
        || key.contains("per_sec")
        || key.contains("latency")
        || key.contains("overhead")
        || key == "synth_workers"
        || key == "workers"
        || key == "git_rev"
        // schema-v6 observability section: event counts vary with lane
        // registration order and how work lands on workers, and the
        // registry's per-worker label set follows the worker count
        || key == "trace_events"
        || key == "trace_dropped"
        || key == "metrics_series"
        // schema-v8 wide-batching fields: the chunk-width probe times the
        // machine, so its verdict (and everything downstream of the
        // chosen width — chunk sizes, superposition-block occupancy)
        // legitimately differs between runs and hosts
        || key == "calibration"
        || key == "chunk_rows"
        || key == "occupancy"
        || key == "wide_default"
        // the response memo's counters are shared across synth workers
        // and a racing double-build counts as an extra miss, so the
        // cumulative rate differs by scheduling accident (the bench's
        // own steady-state measurement — warm memo, then count — is
        // what the ≥ 0.99 gate checks instead)
        || key == "response_table_hit_rate"
}

fn diff_walk(path: &str, a: &Value, b: &Value, out: &mut Vec<String>) {
    const MAX_DIFFS: usize = 64;
    if out.len() >= MAX_DIFFS {
        return;
    }
    match (a, b) {
        (Value::Obj(ka), Value::Obj(kb)) => {
            for (k, va) in ka {
                if is_timing_key(k) {
                    continue;
                }
                let child = format!("{path}.{k}");
                match kb.iter().find(|(kb, _)| kb == k) {
                    Some((_, vb)) => diff_walk(&child, va, vb, out),
                    None => out.push(format!("{child}: present in A, missing in B")),
                }
            }
            for (k, _) in kb {
                if !is_timing_key(k) && !ka.iter().any(|(ka, _)| ka == k) {
                    out.push(format!("{path}.{k}: present in B, missing in A"));
                }
            }
        }
        (Value::Arr(xa), Value::Arr(xb)) => {
            if xa.len() != xb.len() {
                out.push(format!(
                    "{path}: array length {} in A vs {} in B",
                    xa.len(),
                    xb.len()
                ));
                return;
            }
            for (i, (va, vb)) in xa.iter().zip(xb).enumerate() {
                diff_walk(&format!("{path}[{i}]"), va, vb, out);
            }
        }
        (Value::Num(na), Value::Num(nb)) => {
            // deterministic outputs must match exactly (they are the same
            // bits formatted by the same writer)
            if na != nb && !(na.is_nan() && nb.is_nan()) {
                out.push(format!("{path}: {na} in A vs {nb} in B"));
            }
        }
        (Value::Str(sa), Value::Str(sb)) => {
            if sa != sb {
                out.push(format!("{path}: {sa:?} in A vs {sb:?} in B"));
            }
        }
        (Value::Bool(ba), Value::Bool(bb)) => {
            if ba != bb {
                out.push(format!("{path}: {ba} in A vs {bb} in B"));
            }
        }
        (Value::Null, Value::Null) => {}
        _ => out.push(format!("{path}: type mismatch between A and B")),
    }
}

/// Structurally compares two JSON artifacts while skipping keys that
/// [`is_timing_key`] classifies as run-dependent. Returns the list of
/// differences (empty = deterministically equal). CI runs this over
/// health and bench artifacts produced at `WIFORCE_SYNTH_WORKERS=1`
/// vs `=8` to pin the counter path's worker-count invariance end to end.
pub fn diff_ignoring_timing(a: &Value, b: &Value) -> Vec<String> {
    let mut out = Vec::new();
    diff_walk("$", a, b, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wiforce_telemetry::json::parse;

    fn doc(ns_per_press: f64, throughput: &str) -> Value {
        parse(&format!(
            r#"{{
                "schema_version": 3,
                "git_rev": "abc",
                "ns_per_press": {ns_per_press},
                "presses_per_sec": {},
                "ns_per_group": 6000000,
                "allocs_per_group": 6,
                "telemetry_overhead_pct": 10.0,
                "throughput": {throughput}
            }}"#,
            1e9 / ns_per_press
        ))
        .expect("test doc parses")
    }

    fn full_throughput() -> String {
        let body = REQUIRED_STREAM_POINTS
            .iter()
            .map(|s| {
                format!(
                    r#"{{"streams": {s}, "workers": {s}, "presses_per_sec": {}, "p95_stream_latency_ns": 5000000}}"#,
                    *s as f64 * 100.0
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        format!("[{body}]")
    }

    #[test]
    fn equal_artifacts_pass() {
        let base = doc(2e7, &full_throughput());
        let cmp = compare(&base, &base);
        assert!(cmp.passed(), "{:?}", cmp.violations);
        assert!(cmp.markdown_table().contains("✅"));
    }

    #[test]
    fn small_regression_passes_large_fails() {
        let base = doc(2e7, &full_throughput());
        let ok = doc(2e7 * 1.20, &full_throughput());
        assert!(compare(&base, &ok).passed());

        let bad = doc(2e7 * 1.30, &full_throughput());
        let cmp = compare(&base, &bad);
        assert!(!cmp.passed());
        assert!(
            cmp.violations[0].contains("ns_per_press"),
            "{:?}",
            cmp.violations
        );
        assert!(cmp.markdown_table().contains("**FAIL**"));
    }

    #[test]
    fn improvement_always_passes() {
        let base = doc(2e7, &full_throughput());
        let faster = doc(2e7 * 0.5, &full_throughput());
        assert!(compare(&base, &faster).passed());
    }

    #[test]
    fn missing_throughput_section_fails() {
        let base = doc(2e7, &full_throughput());
        let fresh = parse(
            r#"{"schema_version": 2, "git_rev": "abc", "ns_per_press": 2e7,
                "presses_per_sec": 50.0, "ns_per_group": 6e6, "allocs_per_group": 6}"#,
        )
        .unwrap();
        let cmp = compare(&base, &fresh);
        assert!(!cmp.passed());
        assert!(cmp.violations.iter().any(|v| v.contains("throughput")));
    }

    #[test]
    fn missing_stream_point_fails() {
        let base = doc(2e7, &full_throughput());
        let fresh = doc(
            2e7,
            r#"[{"streams": 1, "workers": 1, "presses_per_sec": 100.0,
                 "p95_stream_latency_ns": 5000000},
                {"streams": 4, "workers": 4, "presses_per_sec": 400.0,
                 "p95_stream_latency_ns": 5000000}]"#,
        );
        let cmp = compare(&base, &fresh);
        assert!(!cmp.passed());
        assert!(
            cmp.violations.iter().any(|v| v.contains("8-stream")),
            "{:?}",
            cmp.violations
        );
    }

    #[test]
    fn insufficient_speedup_fails() {
        let base = doc(2e7, &full_throughput());
        let flat = doc(
            2e7,
            r#"[{"streams": 1, "workers": 1, "presses_per_sec": 100.0,
                 "p95_stream_latency_ns": 5000000},
                {"streams": 4, "workers": 4, "presses_per_sec": 150.0,
                 "p95_stream_latency_ns": 5000000},
                {"streams": 8, "workers": 8, "presses_per_sec": 200.0,
                 "p95_stream_latency_ns": 5000000}]"#,
        );
        let cmp = compare(&base, &flat);
        assert!(!cmp.passed());
        assert!(
            cmp.violations.iter().any(|v| v.contains("speedup")),
            "{:?}",
            cmp.violations
        );
    }

    #[test]
    fn baseline_without_throughput_still_gates_fresh() {
        // upgrading from a v2 baseline: fresh must carry the section even
        // though the baseline predates it
        let base = parse(
            r#"{"schema_version": 2, "git_rev": "old", "ns_per_press": 2e7,
                "presses_per_sec": 50.0, "ns_per_group": 6e6, "allocs_per_group": 6}"#,
        )
        .unwrap();
        let fresh = doc(2e7, &full_throughput());
        let cmp = compare(&base, &fresh);
        assert!(cmp.passed(), "{:?}", cmp.violations);
    }

    #[test]
    fn stage_breakdown_rows_are_reported_not_gated() {
        let base = doc(2e7, &full_throughput());
        let with_stages = parse(&format!(
            r#"{{
                "schema_version": 4,
                "git_rev": "abc",
                "ns_per_press": 2e7,
                "presses_per_sec": 50.0,
                "ns_per_group": 6000000,
                "allocs_per_group": 6,
                "telemetry_overhead_pct": 3.0,
                "stage_breakdown": {{
                    "synth_ns_per_press": 9000000,
                    "spectrum_ns_per_press": 600000,
                    "estimator_ns_per_press": 2000,
                    "tracker_ns_per_press": 500,
                    "cache_hit_rate": 1.0
                }},
                "throughput": {}
            }}"#,
            full_throughput()
        ))
        .unwrap();
        // v3 baseline without the section: fresh stages still listed
        let cmp = compare(&base, &with_stages);
        assert!(cmp.passed(), "{:?}", cmp.violations);
        let md = cmp.markdown_table();
        assert!(md.contains("stage_breakdown.synth_ns_per_press"), "{md}");
        // v4 vs v4: deltas computed; the synthesis stage carries its own
        // gate, the remaining stages stay informational
        let cmp2 = compare(&with_stages, &with_stages);
        let row = cmp2
            .rows
            .iter()
            .find(|r| r.metric == "stage_breakdown.synth_ns_per_press")
            .expect("stage row");
        assert_eq!(row.delta_pct, Some(0.0));
        assert!(row.gated);
        let spectrum = cmp2
            .rows
            .iter()
            .find(|r| r.metric == "stage_breakdown.spectrum_ns_per_press")
            .expect("spectrum row");
        assert!(!spectrum.gated);
    }

    #[test]
    fn diff_ignores_timing_keys_but_flags_real_drift() {
        let a = parse(
            r#"{"schema_version": 5, "ns_per_press": 100, "synth_workers": 1,
                "telemetry_spans_recorded": 42, "git_rev": "aaa",
                "counters": {"pipeline.presses": 9, "faults.snapshots_dropped": 3},
                "stages": [{"name": "pipeline.run_snapshots", "count": 2, "p95_ns": 5}],
                "throughput": [{"streams": 1, "workers": 1, "presses_per_sec": 10.0}]}"#,
        )
        .unwrap();
        let b = parse(
            r#"{"schema_version": 5, "ns_per_press": 999, "synth_workers": 8,
                "telemetry_spans_recorded": 42, "git_rev": "bbb",
                "counters": {"pipeline.presses": 9, "faults.snapshots_dropped": 3},
                "stages": [{"name": "pipeline.run_snapshots", "count": 2, "p95_ns": 7000}],
                "throughput": [{"streams": 1, "workers": 1, "presses_per_sec": 55.5}]}"#,
        )
        .unwrap();
        // only timing keys differ → deterministically equal
        assert_eq!(diff_ignoring_timing(&a, &b), Vec::<String>::new());

        // a drifted counter is a real difference
        let c = parse(
            r#"{"schema_version": 5, "ns_per_press": 100, "synth_workers": 1,
                "telemetry_spans_recorded": 41, "git_rev": "aaa",
                "counters": {"pipeline.presses": 9, "faults.snapshots_dropped": 4},
                "stages": [{"name": "pipeline.run_snapshots", "count": 3, "p95_ns": 5}],
                "throughput": [{"streams": 1, "workers": 1, "presses_per_sec": 10.0}]}"#,
        )
        .unwrap();
        let diffs = diff_ignoring_timing(&a, &c);
        assert!(
            diffs.iter().any(|d| d.contains("snapshots_dropped")),
            "{diffs:?}"
        );
        assert!(
            diffs.iter().any(|d| d.contains("telemetry_spans_recorded")),
            "{diffs:?}"
        );
        assert!(diffs.iter().any(|d| d.contains("count")), "{diffs:?}");
    }

    #[test]
    fn diff_flags_missing_keys_and_shape_changes() {
        let a = parse(r#"{"counters": {"x": 1}, "stages": [{"name": "s"}]}"#).unwrap();
        let b = parse(r#"{"counters": {}, "stages": []}"#).unwrap();
        let diffs = diff_ignoring_timing(&a, &b);
        assert!(
            diffs.iter().any(|d| d.contains("missing in B")),
            "{diffs:?}"
        );
        assert!(
            diffs.iter().any(|d| d.contains("array length")),
            "{diffs:?}"
        );
        let c = parse(r#"{"counters": 3, "stages": [{"name": "s"}]}"#).unwrap();
        assert!(diff_ignoring_timing(&a, &c)
            .iter()
            .any(|d| d.contains("type mismatch")));
    }

    fn doc_with_stages(ns_per_press: f64, synth_ns: f64, allocs: f64) -> Value {
        parse(&format!(
            r#"{{
                "schema_version": 7,
                "git_rev": "abc",
                "ns_per_press": {ns_per_press},
                "presses_per_sec": {},
                "ns_per_group": 6000000,
                "allocs_per_group": {allocs},
                "telemetry_overhead_pct": 3.0,
                "stage_breakdown": {{
                    "synth_ns_per_press": {synth_ns},
                    "spectrum_ns_per_press": 600000,
                    "estimator_ns_per_press": 2000,
                    "tracker_ns_per_press": 500,
                    "cache_hit_rate": 1.0
                }},
                "throughput": {}
            }}"#,
            1e9 / ns_per_press,
            full_throughput()
        ))
        .expect("test doc parses")
    }

    #[test]
    fn synth_stage_gate_catches_its_own_regression() {
        let base = doc_with_stages(2e7, 3.0e6, 6.0);
        // the stage regresses 20% while the headline stays flat — the
        // per-stage gate must catch what the 25% headline gate misses
        let bad = doc_with_stages(2e7, 3.6e6, 6.0);
        let cmp = compare(&base, &bad);
        assert!(!cmp.passed());
        assert!(
            cmp.violations
                .iter()
                .any(|v| v.starts_with("stage_breakdown.synth_ns_per_press")),
            "{:?}",
            cmp.violations
        );
        // the headline row must not be marked FAIL by the stage violation
        let md = cmp.markdown_table();
        assert!(
            md.contains("| ns_per_press | 20000000.00 | 20000000.00 | +0.0% | ok |"),
            "{md}"
        );
        // within the limit passes
        let ok = doc_with_stages(2e7, 3.4e6, 6.0);
        assert!(compare(&base, &ok).passed());
    }

    #[test]
    fn allocs_per_group_growth_fails() {
        let base = doc_with_stages(2e7, 3.0e6, 6.0);
        // the historical 6 → 13 drift must now fail
        let drifted = doc_with_stages(2e7, 3.0e6, 13.0);
        let cmp = compare(&base, &drifted);
        assert!(!cmp.passed());
        assert!(
            cmp.violations
                .iter()
                .any(|v| v.starts_with("allocs_per_group")),
            "{:?}",
            cmp.violations
        );
        // a couple of stray allocations stay within tolerance
        let ok = doc_with_stages(2e7, 3.0e6, 7.5);
        assert!(compare(&base, &ok).passed());
        // improvement is always fine
        let better = doc_with_stages(2e7, 3.0e6, 0.0);
        assert!(compare(&base, &better).passed());
    }

    #[test]
    fn markdown_table_lists_all_rows() {
        let base = doc(2e7, &full_throughput());
        let md = compare(&base, &base).markdown_table();
        for needle in [
            "ns_per_press",
            "presses_per_sec",
            "ns_per_group",
            "throughput[8].presses_per_sec",
        ] {
            assert!(md.contains(needle), "missing {needle} in:\n{md}");
        }
    }
}

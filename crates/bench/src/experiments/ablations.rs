//! Ablations of the design choices DESIGN.md calls out.
//!
//! 1. Subcarrier averaging (the paper's "averaging gains", §3.3).
//! 2. Phase-group length vs extraction method (orthogonal-N DFT vs LS).
//! 3. Duty-cycled clocking vs the naive 50/50 strawman.
//! 4. Off-state branch reflection magnitude (tag imperfection).
//! 5. Waveform: OFDM vs FMCW sounding (the waveform-agnostic claim).
//! 6. Mechanics: analytic model vs finite-difference contact solver.

use crate::montecarlo::{force_errors, run_sweep, Sweep};
use crate::report::{ExperimentRecord, Report};
use crate::table::{fmt, TextTable};
use rand::rngs::StdRng;
use rand::SeedableRng;
use wiforce::diffphase::Averaging;
use wiforce::harmonics::ExtractionMethod;
use wiforce::pipeline::Simulation;
use wiforce_dsp::stats::{circular_std, Ecdf};

/// Phase repeatability (deg) of a 4 N press at 40 mm under a given sim.
fn phase_std_deg(sim: &Simulation, reads: usize, seed: u64) -> f64 {
    let contact = sim.contact_for(4.0, 0.040);
    let phases: Vec<f64> = (0..reads)
        .filter_map(|i| {
            let mut rng = StdRng::seed_from_u64(seed + i as u64 * 6151);
            sim.measure_phases(contact.as_ref(), &mut rng)
                .ok()
                .map(|d| d.dphi1_rad)
        })
        .collect();
    circular_std(&phases).to_degrees()
}

/// Median force error of a small sweep under a given sim + its own
/// calibration; failed presses (undetected / out of model range) count as
/// a full-scale 8 N error so broken configurations cannot look good by
/// failing silently.
fn median_force_error(sim: &Simulation, trials: usize, seed: u64) -> f64 {
    let model = sim.vna_calibration().expect("calibration");
    let sweep = Sweep {
        locations_m: vec![0.030, 0.050],
        forces_n: vec![1.0, 3.0, 5.0, 7.0],
        trials,
        seed,
    };
    let results = run_sweep(sim, &model, &sweep);
    let mut errs = force_errors(&results);
    errs.extend(results.iter().filter(|r| !r.ok).map(|_| 8.0));
    Ecdf::new(errs).median()
}

/// Runs all ablations.
pub fn run(quick: bool) -> Report {
    let reads = if quick { 4 } else { 8 };
    let trials = if quick { 1 } else { 3 };
    let mut rep = Report::new();

    // 1. subcarrier averaging — the gain shows where per-subcarrier SNR
    // is low (weak links like the phantom/distance cases), so raise the
    // receiver noise floor to that regime
    println!("== Ablation: subcarrier averaging (low-SNR regime) ==\n");
    let mut table = TextTable::new(["combiner", "phase std (°)"]);
    let mut stds = Vec::new();
    for (name, avg) in [
        ("coherent (64 subcarriers)", Averaging::Coherent),
        ("phase mean (64 subcarriers)", Averaging::PhaseMean),
        ("single subcarrier", Averaging::SingleSubcarrier),
    ] {
        let mut sim = Simulation::paper_default(0.9e9);
        sim.frontend.noise_floor = 3e-3; // ~40 dB above the bench floor
        sim.averaging = avg;
        let s = phase_std_deg(&sim, reads, 0xAB1);
        table.row([name.to_string(), fmt(s, 3)]);
        stds.push(s);
    }
    println!("{}", table.render());
    rep.push(ExperimentRecord::new(
        "Ablation 1",
        "subcarrier averaging gain",
        "averaging improves phase robustness (§3.3)",
        format!("coherent {:.3}° vs single {:.3}°", stds[0], stds[2]),
        stds[0] < 0.5 * stds[2],
        "coherent std < 0.5× single-subcarrier std at low SNR",
    ));

    // 2. group length / extraction method — paired comparison: identical
    // snapshot streams (same seed) through the plain mean-subtracted DFT
    // vs the joint LS extractor. At the orthogonal N=625 they agree; at a
    // non-orthogonal N=125 the DFT picks up cross-line leakage and the
    // two diverge, quantifying exactly the leakage LS removes.
    println!("== Ablation: phase-group length and extraction ==\n");
    let extraction_gap = |n: usize| -> f64 {
        let contact_sim = Simulation::paper_default(0.9e9);
        let contact = contact_sim.contact_for(4.0, 0.040);
        let mut acc = 0.0;
        let mut count = 0usize;
        for i in 0..reads {
            let dphi = |method: ExtractionMethod| -> Option<f64> {
                let mut sim = Simulation::paper_default(0.9e9);
                sim.group.n_snapshots = n;
                sim.group.method = method;
                let mut rng = StdRng::seed_from_u64(0xAB2 + i as u64 * 6151);
                sim.measure_phases(contact.as_ref(), &mut rng)
                    .ok()
                    .map(|d| d.dphi1_rad)
            };
            if let (Some(a), Some(b)) = (
                dphi(ExtractionMethod::MeanSubtractedDft),
                dphi(ExtractionMethod::LeastSquares),
            ) {
                acc += wiforce_dsp::phase::wrap_to_pi(a - b).abs();
                count += 1;
            }
        }
        (acc / count.max(1) as f64).to_degrees()
    };
    let gap_625 = extraction_gap(625);
    let gap_125 = extraction_gap(125);
    let mut table = TextTable::new(["group length", "latency (ms)", "DFT-vs-LS gap (°)"]);
    table.row([
        "N=625 (orthogonal)".to_string(),
        fmt(36.0, 1),
        fmt(gap_625, 4),
    ]);
    table.row(["N=125 (leaky)".to_string(), fmt(7.2, 1), fmt(gap_125, 4)]);
    println!("{}", table.render());
    rep.push(ExperimentRecord::new(
        "Ablation 2",
        "short-group leakage and the LS fix",
        "non-orthogonal N leaks; joint LS removes it",
        format!("gap {gap_625:.3}° at N=625 vs {gap_125:.3}° at N=125"),
        gap_625 < 0.2 && gap_125 > 2.0 * gap_625.max(0.02),
        "extractors agree at N=625, diverge at N=125",
    ));

    // 3. clocking scheme end-to-end
    println!("== Ablation: WiForce clocking vs naive 50/50 ==\n");
    let base = Simulation::paper_default(0.9e9);
    let err_wf = median_force_error(&base, trials, 0xAB3);
    let mut naive = Simulation::paper_default(0.9e9);
    naive.tag = naive.tag.with_naive_clocks();
    naive.group.line2_hz = 2.0 * 1000.0; // naive port-2 line sits at 2fs
    let err_naive = median_force_error(&naive, trials, 0xAB4);
    println!("median force error: WiForce {err_wf:.2} N, naive clocking {err_naive:.2} N\n");
    rep.push(ExperimentRecord::new(
        "Ablation 3",
        "duty-cycled clocking necessity",
        "naive clocks intermodulate (Fig. 7)",
        format!("WiForce {err_wf:.2} N vs naive {err_naive:.2} N"),
        err_naive > 1.5 * err_wf,
        "naive median error > 1.5× WiForce",
    ));

    // 4. off-branch reflection sweep
    println!("== Ablation: off-state branch reflection magnitude ==\n");
    let mut table = TextTable::new(["|Γ_off-branch|", "median force err (N)"]);
    let mut errs = Vec::new();
    for b in [0.0, 0.01, 0.05, 0.15, 0.30] {
        let mut sim = Simulation::paper_default(0.9e9);
        sim.tag.switch1.off_branch_mag = b;
        sim.tag.switch2.off_branch_mag = b;
        let e = median_force_error(&sim, trials, 0xAB5);
        table.row([fmt(b, 2), fmt(e, 3)]);
        errs.push(e);
    }
    println!("{}", table.render());
    rep.push(ExperimentRecord::new(
        "Ablation 4",
        "branch-reflection sensitivity",
        "(modelling choice — see DESIGN.md)",
        format!("err at |Γ|=0: {:.2} N, at 0.3: {:.2} N", errs[0], errs[4]),
        errs[4] > errs[0],
        "error grows with off-branch reflection",
    ));

    // 5. waveform agnosticism
    println!("== Ablation: OFDM vs FMCW sounding ==\n");
    let err_ofdm = err_wf;
    let fmcw = Simulation::paper_default(0.9e9).with_fmcw_sounder();
    let err_fmcw = median_force_error(&fmcw, trials, 0xAB6);
    println!("median force error: OFDM {err_ofdm:.2} N, FMCW {err_fmcw:.2} N\n");
    rep.push(ExperimentRecord::new(
        "Ablation 5",
        "waveform-agnostic sounding (§3.3)",
        "any periodic wideband estimate works",
        format!("OFDM {err_ofdm:.2} N vs FMCW {err_fmcw:.2} N"),
        err_fmcw < 2.5 * err_ofdm + 0.2,
        "FMCW within 2.5× of OFDM",
    ));

    // 6. mechanics model
    println!("== Ablation: analytic vs finite-difference mechanics ==\n");
    let fd = Simulation::paper_default(0.9e9).with_fd_mechanics();
    let err_fd = median_force_error(&fd, if quick { 1 } else { 2 }, 0xAB7);
    println!("median force error: analytic {err_wf:.2} N, FD solver {err_fd:.2} N\n");
    rep.push(ExperimentRecord::new(
        "Ablation 6",
        "mechanics-model consistency",
        "(reproduction check)",
        format!("analytic {err_wf:.2} N vs FD {err_fd:.2} N"),
        err_fd < 1.5,
        "FD-driven pipeline still estimates (< 1.5 N median)",
    ));

    // 7. calibration source: VNA vs over-the-air self-calibration
    println!("== Ablation: VNA vs wireless calibration ==\n");
    let sim = Simulation::paper_default(2.4e9);
    let err_vna = {
        let model = sim.vna_calibration().expect("calibration");
        let sweep = Sweep {
            locations_m: vec![0.030, 0.050],
            forces_n: vec![1.0, 3.0, 5.0, 7.0],
            trials,
            seed: 0xAB8,
        };
        let results = run_sweep(&sim, &model, &sweep);
        Ecdf::new(force_errors(&results)).median()
    };
    let err_wireless = {
        let mut rng = StdRng::seed_from_u64(0xAB9);
        let model = sim
            .wireless_calibration_at(
                &[0.020, 0.030, 0.040, 0.050, 0.060],
                8,
                if quick { 1 } else { 2 },
                &mut rng,
            )
            .expect("wireless calibration");
        let sweep = Sweep {
            locations_m: vec![0.030, 0.050],
            forces_n: vec![1.0, 3.0, 5.0, 7.0],
            trials,
            seed: 0xAB8,
        };
        let results = run_sweep(&sim, &model, &sweep);
        Ecdf::new(force_errors(&results)).median()
    };
    println!("median force error: VNA-calibrated {err_vna:.2} N, wireless-calibrated {err_wireless:.2} N\n");
    rep.push(ExperimentRecord::new(
        "Ablation 7",
        "VNA-free self-calibration",
        "(deployment extension)",
        format!("VNA {err_vna:.2} N vs wireless {err_wireless:.2} N"),
        err_wireless < 2.0 * err_vna + 0.3,
        "wireless calibration within 2× of VNA",
    ));

    println!("{}", rep.to_console());
    rep
}

//! One module per reproduced table/figure. Each exposes
//! `run(quick: bool) -> Report`, printing its series to stdout and
//! returning paper-vs-measured records; the `repro_all` binary collects
//! every report into `EXPERIMENTS.md`.

pub mod ablations;
pub mod doppler;
pub mod fig04;
pub mod fig05;
pub mod fig07;
pub mod fig10;
pub mod fig13_14;
pub mod fig16;
pub mod fig17;
pub mod fig18;
pub mod fig19;
pub mod hysteresis;
pub mod power;
pub mod table1;

/// Resolves the repository root (for writing EXPERIMENTS.md) from the
/// bench crate's manifest directory.
pub fn repo_root() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root exists")
}

//! Figs. 13 & 14 — force and location error CDFs at 900 MHz / 2.4 GHz.
//!
//! The headline evaluation: Monte-Carlo presses of 0–8 N at 20/40/55/60 mm
//! through the full wireless pipeline, errors against ground truth, and
//! empirical CDFs. Paper medians: force 0.56 N @ 900 MHz and 0.34 N
//! @ 2.4 GHz; location 0.86 mm and 0.59 mm. The shape criteria: errors a
//! small fraction of the 8 N / 80 mm ranges, 2.4 GHz beating 900 MHz, and
//! per-location performance uniform along the sensor.

use crate::montecarlo::{force_errors, location_errors_mm, run_sweep, PressResult, Sweep};
use crate::report::{ExperimentRecord, Report};
use crate::table::{fmt, TextTable};
use wiforce::pipeline::Simulation;
use wiforce_dsp::stats::Ecdf;

/// Results for one carrier.
pub struct CarrierRun {
    /// Carrier frequency, Hz.
    pub carrier_hz: f64,
    /// All press results.
    pub results: Vec<PressResult>,
}

/// Runs the paper evaluation sweep at both carriers.
pub fn run_both_carriers(quick: bool) -> Vec<CarrierRun> {
    let trials = if quick { 2 } else { 6 };
    [0.9e9, 2.4e9]
        .into_iter()
        .map(|carrier| {
            let sim = Simulation::paper_default(carrier);
            let model = sim.vna_calibration().expect("calibration");
            let sweep = Sweep::paper_eval(trials);
            let results = run_sweep(&sim, &model, &sweep);
            CarrierRun {
                carrier_hz: carrier,
                results,
            }
        })
        .collect()
}

fn print_cdf(label: &str, ecdf: &Ecdf, unit: &str) {
    let mut table = TextTable::new(["percentile", &format!("{label} ({unit})")]);
    for p in [10, 25, 50, 75, 90, 95] {
        table.row([format!("{p}%"), fmt(ecdf.quantile(p as f64 / 100.0), 3)]);
    }
    println!("{}", table.render());
}

/// Shared runner: computes both figures' statistics from one sweep pair.
pub fn run_figs(quick: bool) -> (Report, Report) {
    let runs = run_both_carriers(quick);
    let mut rep13 = Report::new();
    let mut rep14 = Report::new();

    let mut medians_force = Vec::new();
    let mut medians_loc = Vec::new();
    for run in &runs {
        let ghz = run.carrier_hz / 1e9;
        let ok = run.results.iter().filter(|r| r.ok).count();
        println!(
            "== Figs. 13/14 @ {ghz} GHz: {} presses, {ok} decoded ==\n",
            run.results.len()
        );
        let fe = Ecdf::new(force_errors(&run.results));
        let le = Ecdf::new(location_errors_mm(&run.results));
        print_cdf("force error", &fe, "N");
        print_cdf("location error", &le, "mm");

        // per-location medians (the "uniform along the length" claim)
        let mut table = TextTable::new([
            "location (mm)",
            "median force err (N)",
            "median loc err (mm)",
        ]);
        let mut per_loc_medians = Vec::new();
        for &loc in &[0.020, 0.040, 0.055, 0.060] {
            let sub: Vec<PressResult> = run
                .results
                .iter()
                .filter(|r| (r.true_location_m - loc).abs() < 1e-9)
                .copied()
                .collect();
            let fm = Ecdf::new(force_errors(&sub)).median();
            let lm = Ecdf::new(location_errors_mm(&sub)).median();
            per_loc_medians.push(fm);
            table.row([fmt(loc * 1e3, 0), fmt(fm, 3), fmt(lm, 3)]);
        }
        println!("{}", table.render());

        medians_force.push(fe.median());
        medians_loc.push(le.median());

        let spread = per_loc_medians
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max)
            / per_loc_medians
                .iter()
                .cloned()
                .fold(f64::INFINITY, f64::min)
                .max(1e-6);
        rep13.push(ExperimentRecord::new(
            format!("Fig. 13 @ {ghz} GHz"),
            "uniformity along sensor",
            "per-location CDFs comparable",
            format!("max/min per-location median = {spread:.1}×"),
            spread < 6.0,
            "per-location medians within 6×",
        ));
    }

    let (f900, f24) = (medians_force[0], medians_force[1]);
    let (l900, l24) = (medians_loc[0], medians_loc[1]);
    rep13.push(ExperimentRecord::new(
        "Fig. 13 @ 900 MHz",
        "median force error",
        "0.56 N",
        format!("{f900:.2} N"),
        (0.1..=1.4).contains(&f900),
        "a small fraction of the 8 N range (0.1–1.4 N)",
    ));
    rep13.push(ExperimentRecord::new(
        "Fig. 13 @ 2.4 GHz",
        "median force error",
        "0.34 N",
        format!("{f24:.2} N"),
        (0.05..=0.9).contains(&f24),
        "smaller than 900 MHz band (0.05–0.9 N)",
    ));
    rep13.push(ExperimentRecord::new(
        "Fig. 13",
        "2.4 GHz beats 900 MHz (force)",
        "higher carrier ⇒ lower error",
        format!("{f24:.2} N < {f900:.2} N"),
        f24 < f900,
        "median(2.4 GHz) < median(900 MHz)",
    ));
    rep14.push(ExperimentRecord::new(
        "Fig. 14 @ 900 MHz",
        "median location error",
        "0.86 mm",
        format!("{l900:.2} mm"),
        (0.2..=2.5).contains(&l900),
        "sub-few-mm (0.2–2.5 mm)",
    ));
    rep14.push(ExperimentRecord::new(
        "Fig. 14 @ 2.4 GHz",
        "median location error",
        "0.59 mm",
        format!("{l24:.2} mm"),
        (0.1..=1.6).contains(&l24),
        "sub-few-mm (0.1–1.6 mm)",
    ));
    rep14.push(ExperimentRecord::new(
        "Fig. 14",
        "2.4 GHz beats 900 MHz (location)",
        "higher carrier ⇒ finer localization",
        format!("{l24:.2} mm < {l900:.2} mm"),
        l24 < l900,
        "median(2.4 GHz) < median(900 MHz)",
    ));
    println!("{}", rep13.to_console());
    println!("{}", rep14.to_console());
    (rep13, rep14)
}

//! Fig. 16 — sensing through the tissue phantom (900 MHz).
//!
//! Paper §5.2: the three-layer gelatin phantom adds ≈110 dB of two-way
//! backscatter loss; the 60 dB USRP dynamic range then cannot hold both
//! the direct path and the backscatter, so a metal plate knocks the direct
//! path down ≈45 dB. With the plate the system works, with a slightly
//! higher median force error (0.62 N vs 0.56 N over the air); without it,
//! the tag is undecodable. Presses at 60 mm, as in the paper.

use crate::montecarlo::{force_errors, run_sweep, Sweep};
use crate::report::{ExperimentRecord, Report};
use crate::table::{fmt, TextTable};
use rand::rngs::StdRng;
use rand::SeedableRng;
use wiforce::pipeline::Simulation;
use wiforce::WiForceError;
use wiforce_channel::Scene;
use wiforce_dsp::stats::Ecdf;

/// Runs the experiment.
pub fn run(quick: bool) -> Report {
    println!("== Fig. 16: tissue phantom at 900 MHz, presses at 60 mm ==\n");
    let trials = if quick { 2 } else { 6 };

    // over-the-air baseline at the same location
    let ota = Simulation::paper_default(0.9e9);
    let model = ota.vna_calibration().expect("calibration");
    let sweep = Sweep {
        locations_m: vec![0.060],
        forces_n: (1..=16).map(|i| i as f64 * 0.5).collect(),
        trials,
        seed: 0x7155,
    };
    let ota_results = run_sweep(&ota, &model, &sweep);
    let ota_median = Ecdf::new(force_errors(&ota_results)).median();

    // phantom with the metal plate (≈50 dB of direct-path knockdown, and
    // a longer integration — the weak through-tissue line needs it)
    let mut phantom = Simulation::paper_default(0.9e9);
    phantom.scene = Scene::tissue_phantom(0.9e9, 50.0);
    phantom.reference_groups = 4;
    phantom.measure_groups = 4;
    let ph_results = run_sweep(&phantom, &model, &sweep);
    let ph_ok = ph_results.iter().filter(|r| r.ok).count();
    let ph_median = Ecdf::new(force_errors(&ph_results)).median();

    let mut table = TextTable::new(["setup", "decoded", "median force err (N)"]);
    table.row([
        "over the air".to_string(),
        format!(
            "{}/{}",
            ota_results.iter().filter(|r| r.ok).count(),
            ota_results.len()
        ),
        fmt(ota_median, 3),
    ]);
    table.row([
        "phantom + metal plate".to_string(),
        format!("{ph_ok}/{}", ph_results.len()),
        fmt(ph_median, 3),
    ]);
    println!("{}", table.render());

    // phantom WITHOUT the plate: detection must fail (dynamic range)
    let mut no_plate = Simulation::paper_default(0.9e9);
    no_plate.scene = Scene::tissue_phantom(0.9e9, 0.0);
    let mut rng = StdRng::seed_from_u64(0xDEAD);
    let contact = no_plate.contact_for(4.0, 0.060);
    let no_plate_result = no_plate.measure_phases(contact.as_ref(), &mut rng);
    let failed_without_plate = matches!(no_plate_result, Err(WiForceError::TagNotDetected { .. }));
    println!(
        "without the metal plate: {}\n",
        match &no_plate_result {
            Err(e) => format!("{e}"),
            Ok(_) => "unexpectedly decoded".to_string(),
        }
    );

    let budget = Scene::tissue_phantom(0.9e9, 50.0);
    let bs_loss = -20.0 * budget.backscatter_gain(0.9e9).abs().log10();
    println!("two-way backscatter loss through phantom: {bs_loss:.0} dB (paper: ≈110 dB)\n");

    let mut rep = Report::new();
    rep.push(ExperimentRecord::new(
        "Fig. 16",
        "median force error through phantom",
        "0.62 N (vs 0.56 N over the air)",
        format!("{ph_median:.2} N (vs {ota_median:.2} N OTA)"),
        ph_median >= ota_median * 0.8 && ph_median < ota_median * 3.0 + 0.3,
        "phantom slightly worse than OTA, same order",
    ));
    rep.push(ExperimentRecord::new(
        "§5.2",
        "decoding without the metal plate",
        "impossible (60 dB ADC dynamic range)",
        if failed_without_plate {
            "tag not detected".into()
        } else {
            "decoded".to_string()
        },
        failed_without_plate,
        "TagNotDetected without blockage",
    ));
    rep.push(ExperimentRecord::new(
        "§5.2",
        "two-way backscatter loss through phantom",
        "≈110 dB",
        format!("{bs_loss:.0} dB"),
        (90.0..=130.0).contains(&bs_loss),
        "within 90–130 dB",
    ));
    println!("{}", rep.to_console());
    rep
}

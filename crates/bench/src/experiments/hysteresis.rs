//! Hysteresis-loop experiment (extension): ramp the press up and back
//! down and compare the estimated force on the two branches.
//!
//! Ecoflex viscoelasticity makes the loading and unloading branches of a
//! press cycle differ (the model is calibrated on quasi-static data, so
//! the unloading branch reads systematically high). This quantifies the
//! effect the paper's measurement clouds hint at, using the
//! `wiforce_mech::hysteresis` wrapper end to end.

use crate::report::{ExperimentRecord, Report};
use crate::table::{fmt, TextTable};
use rand::rngs::StdRng;
use rand::SeedableRng;
use wiforce::pipeline::Simulation;
use wiforce_dsp::stats::mean;
use wiforce_mech::contact::SensorMech;
use wiforce_mech::hysteresis::Hysteretic;
use wiforce_mech::{AnalyticContactModel, Indenter};
use wiforce_sensor::tag::ContactState;

/// Runs the experiment.
pub fn run(quick: bool) -> Report {
    println!("== Extension: force hysteresis loop at 40 mm (2.4 GHz) ==\n");
    // this experiment isolates the *mechanical* loop, so the RF chain is
    // idealized (no front-end noise, no tag-clock wander, no press jitter)
    let mut sim = Simulation::paper_default(2.4e9);
    sim.patch_position_jitter_m = 0.0;
    sim.patch_edge_jitter_m = 0.0;
    sim.frontend = wiforce_channel::Frontend::ideal();
    sim.tag_clock_wander_ppm = 0.0;
    sim.reference_groups = 1;
    sim.measure_groups = 1;
    let model = sim.vna_calibration().expect("calibration");

    let mut mech = Hysteretic::new(AnalyticContactModel::new(
        SensorMech::wiforce_prototype(),
        Indenter::actuator_tip(),
    ));

    // triangular ramp 0 → 8 → 0 N over 8 s, sampled per phase group
    let steps = if quick { 24 } else { 48 };
    let dwell_s = 8.0 / steps as f64;
    let mut rng = StdRng::seed_from_u64(0x575);
    let mut rows: Vec<(f64, f64, bool)> = Vec::new(); // (applied, estimated, rising)
    for k in 0..steps {
        let frac = k as f64 / (steps - 1) as f64;
        let rising = frac < 0.5;
        let applied = if rising {
            16.0 * frac
        } else {
            16.0 * (1.0 - frac)
        };
        let t = k as f64 * dwell_s;
        let Some(patch) = mech.press(t, applied, 0.040) else {
            continue;
        };
        let contact = ContactState::from_patch(&patch, 0.080);
        if let Ok(d) = sim.measure_phases(Some(&contact), &mut rng) {
            if let Ok(est) = model.invert(d.dphi1_rad, d.dphi2_rad, 0.35) {
                rows.push((applied, est.force_n, rising));
            }
        }
    }

    let mut table = TextTable::new([
        "applied (N)",
        "estimated rising (N)",
        "estimated falling (N)",
    ]);
    let mut gaps = Vec::new();
    for level in [2.0, 4.0, 6.0] {
        let near = |rising: bool| -> Option<f64> {
            let ests: Vec<f64> = rows
                .iter()
                .filter(|&&(a, _, r)| r == rising && (a - level).abs() < 0.5)
                .map(|&(_, e, _)| e)
                .collect();
            if ests.is_empty() {
                None
            } else {
                Some(mean(&ests))
            }
        };
        if let (Some(up), Some(down)) = (near(true), near(false)) {
            gaps.push(down - up);
            table.row([fmt(level, 1), fmt(up, 2), fmt(down, 2)]);
        }
    }
    println!("{}", table.render());
    let loop_width = mean(&gaps);
    println!("mean loop width (falling − rising): {loop_width:.2} N\n");

    let mut rep = Report::new();
    rep.push(ExperimentRecord::new(
        "Extension: hysteresis",
        "loading/unloading branch separation",
        "(beyond the paper — viscoelastic Ecoflex)",
        format!("{loop_width:.2} N mean loop width"),
        loop_width > 0.05 && loop_width < 1.5,
        "loop opens (>0.05 N) but stays bounded (<1.5 N)",
    ));
    println!("{}", rep.to_console());
    rep
}

//! Fig. 7/8 — intermodulation: naive 50/50 clocking vs WiForce clocking.
//!
//! With two plain 50 %-duty clocks both switches are sometimes on at once;
//! the line then conducts end-to-end and the ports' identities "muddle up"
//! (paper §3.2). The sharpest observable: move *only* port 2's shorting
//! point and watch port 1's Doppler line — it must not move. Under the
//! naive clocks it does; under WiForce's duty-cycled clocks it does not.

use crate::report::{ExperimentRecord, Report};
use crate::table::{fmt, TextTable};
use wiforce_dsp::fft::goertzel;
use wiforce_dsp::Complex;
use wiforce_sensor::tag::ContactState;
use wiforce_sensor::SensorTag;

const T_SNAP: f64 = 57.6e-6;
const N: usize = 5000; // 0.288 s of snapshots

fn line_value(tag: &SensorTag, f_line: f64, contact: Option<&ContactState>) -> Complex {
    let series: Vec<Complex> = (0..N)
        .map(|i| tag.antenna_reflection(0.9e9, i as f64 * T_SNAP, contact))
        .collect();
    // subtract mean (static term), then read the line
    let mean: Complex = series
        .iter()
        .copied()
        .sum::<Complex>()
        .scale(1.0 / N as f64);
    let centered: Vec<Complex> = series.iter().map(|&z| z - mean).collect();
    goertzel(&centered, f_line * T_SNAP).scale(1.0 / N as f64)
}

/// Error (deg) of the port-1 *differential* phase (no-touch → touch)
/// against the wired VNA truth — the quantity the sensing actually uses.
/// The intermodulation bites in the no-touch reference: with no contact
/// the line conducts end-to-end, so whenever both switches are on the
/// port-1 reflection leaks out the far side and the through path pollutes
/// the fs line, dragging the reference phase away from the clean
/// reflective-open stub measurement the algorithm assumes.
fn differential_error_deg(tag: &SensorTag, port1_line: f64) -> f64 {
    let contact = ContactState {
        port1_short_m: 0.030,
        port2_short_m: 0.035,
    };
    let reference = line_value(tag, port1_line, None);
    let touched = line_value(tag, port1_line, Some(&contact));
    let measured = (reference * touched.conj()).arg();
    let ideal =
        tag.line
            .differential_phase(0.9e9, contact.port1_short_m, tag.switch2.off_termination());
    wiforce_dsp::phase::wrap_to_pi(measured - ideal)
        .to_degrees()
        .abs()
}

/// Runs the experiment.
pub fn run(_quick: bool) -> Report {
    println!("== Fig. 7/8: clocking schemes and intermodulation ==\n");
    let fs = 1000.0;
    let wiforce = SensorTag::wiforce_prototype(fs);
    let naive = SensorTag::wiforce_prototype(fs).with_naive_clocks();

    // spectra at the key lines, no contact
    let mut table = TextTable::new(["line", "WiForce |Γ̃|", "naive |Γ̃|"]);
    for (name, f) in [
        ("fs", fs),
        ("2fs", 2.0 * fs),
        ("3fs", 3.0 * fs),
        ("4fs", 4.0 * fs),
    ] {
        table.row([
            name.to_string(),
            fmt(line_value(&wiforce, f, None).abs(), 4),
            fmt(line_value(&naive, f, None).abs(), 4),
        ]);
    }
    println!("{}", table.render());

    let leak_wf = differential_error_deg(&wiforce, fs);
    let leak_naive = differential_error_deg(&naive, fs);
    println!(
        "port-1 differential-phase error vs VNA truth (4 N-style press):\n  \
         WiForce clocks: {leak_wf:.2}°   naive clocks: {leak_naive:.2}°\n"
    );

    // overlap fractions
    let overlap = |tag: &SensorTag| -> f64 {
        let n = 40_000;
        (0..n)
            .filter(|&i| {
                let t = i as f64 * 4e-3 / n as f64;
                tag.clocks.modulation1(t) && tag.clocks.modulation2(t)
            })
            .count() as f64
            / n as f64
    };
    let ov_wf = overlap(&wiforce);
    let ov_naive = overlap(&naive);
    println!("both-switches-on time fraction: WiForce {ov_wf:.3}, naive {ov_naive:.3}\n");

    let mut rep = Report::new();
    rep.push(ExperimentRecord::new(
        "Fig. 8",
        "switch-on exclusivity",
        "only one switch on at any instant",
        format!("WiForce overlap {ov_wf:.3}, naive {ov_naive:.3}"),
        ov_wf == 0.0 && ov_naive > 0.2,
        "WiForce overlap = 0, naive > 0.2",
    ));
    rep.push(ExperimentRecord::new(
        "Fig. 7",
        "port-1 differential-phase corruption",
        "naive clocks muddle identities; WiForce clean",
        format!("WiForce {leak_wf:.2}°, naive {leak_naive:.2}°"),
        leak_wf < 1.0 && leak_naive > 5.0,
        "WiForce < 1° and naive > 5°",
    ));
    println!("{}", rep.to_console());
    rep
}

//! §3.3 Doppler-separation experiment: real movers vs the tag's
//! "artificial Doppler".
//!
//! The paper argues static multipath lands at zero Doppler and real motion
//! stays far below `fs`: "an object in the environment moving at velocity
//! `v = c·fs/f_c` would create interference with the sensor signal.
//! However, the chosen `fs` is large enough so that this equivalent speed
//! is so high that it wouldn't appear in the environment." We sweep a
//! moving scatterer's speed from walking pace to the aliasing speed and
//! measure the port-1 phase error: rejection everywhere except at the
//! (implausible) line-equivalent speed.

use crate::report::{ExperimentRecord, Report};
use crate::table::{fmt, TextTable};
use rand::rngs::StdRng;
use rand::SeedableRng;
use wiforce::pipeline::Simulation;
use wiforce_channel::movers::MovingScatterer;
use wiforce_dsp::phase::wrap_to_pi;
use wiforce_dsp::Complex;

/// Port-1 phase error (deg, vs VNA) with one mover of the given
/// path-length rate in the scene.
fn phase_error_with_mover(speed_m_per_s: f64, reads: usize) -> f64 {
    let mut sim = Simulation::paper_default(0.9e9);
    let direct = sim.scene.direct_response(0.9e9).abs();
    sim.scene.movers = vec![MovingScatterer {
        distance0_m: 3.0,
        speed_m_per_s,
        gain: Complex::from_polar(0.3 * direct, 0.7),
    }];
    let (v1, _) = sim.vna_phases(4.0, 0.040);
    let contact = sim.contact_for(4.0, 0.040);
    let mut acc = 0.0;
    let mut n = 0usize;
    for i in 0..reads {
        let mut rng = StdRng::seed_from_u64(0xD099_u64.wrapping_add(i as u64 * 7919));
        if let Ok(d) = sim.measure_phases(contact.as_ref(), &mut rng) {
            acc += wrap_to_pi(d.dphi1_rad - v1).abs();
            n += 1;
        }
    }
    if n == 0 {
        return f64::NAN;
    }
    (acc / n as f64).to_degrees()
}

/// Runs the experiment.
pub fn run(quick: bool) -> Report {
    println!("== §3.3: Doppler separation — movers vs the tag lines (900 MHz) ==\n");
    let reads = if quick { 3 } else { 6 };
    let v_alias = MovingScatterer::speed_for_line(0.9e9, 1000.0);

    let mut table = TextTable::new(["mover speed (m/s)", "Doppler (Hz)", "port-1 phase err (°)"]);
    // negative rate = approaching ⇒ positive Doppler, landing on the
    // +fs bin the reader actually uses
    let speeds = [0.0, 1.0, 5.0, 30.0, -v_alias];
    let mut errs = Vec::new();
    for &v in &speeds {
        let e = phase_error_with_mover(v, reads);
        table.row([
            fmt(v.abs(), 1),
            fmt(-v * 0.9e9 / wiforce_dsp::C0, 1),
            if e.is_nan() {
                "undetected".into()
            } else {
                fmt(e, 2)
            },
        ]);
        errs.push(e);
    }
    println!("{}", table.render());
    println!(
        "aliasing speed for the 1 kHz line at 900 MHz: {v_alias:.0} m/s \
         (the paper's implausible-mover argument)\n"
    );

    let walker = errs[1];
    let fast = errs[3];
    let aliased = errs[4];
    let clean = errs[0];

    let mut rep = Report::new();
    rep.push(ExperimentRecord::new(
        "§3.3 Doppler",
        "walking-speed clutter rejection",
        "moving objects don't interfere below the equivalent speed",
        format!("1 m/s: {walker:.2}° vs static {clean:.2}°"),
        walker < clean + 1.0,
        "walker adds < 1° of phase error",
    ));
    rep.push(ExperimentRecord::new(
        "§3.3 Doppler",
        "fast-but-plausible motion (30 m/s)",
        "still far below the 1 kHz line",
        format!("{fast:.2}°"),
        fast < clean + 2.0,
        "30 m/s adds < 2° of phase error",
    ));
    rep.push(ExperimentRecord::new(
        "§3.3 Doppler",
        "line-equivalent speed corrupts the tag",
        format!("v = c·fs/f_c ≈ {v_alias:.0} m/s would interfere"),
        if aliased.is_nan() {
            "tag undetectable".to_string()
        } else {
            format!("{aliased:.1}° error")
        },
        aliased.is_nan() || aliased > 3.0 * (clean + 0.2),
        "aliasing mover breaks the measurement (validating the margin)",
    ));
    println!("{}", rep.to_console());
    rep
}

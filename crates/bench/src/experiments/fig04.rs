//! Fig. 4c — force-to-phase transduction: thin trace vs soft beam.
//!
//! The paper's motivating plot: a naive thin-trace microstrip saturates at
//! a near-invariant phase once touched, while the soft Ecoflex beam keeps
//! shifting its shorting points with force, producing a pronounced
//! phase-force profile. We run both sensor builds through the
//! finite-difference contact solver and read port-1 VNA phases.

use crate::report::{ExperimentRecord, Report};
use crate::table::{fmt, TextTable};
use wiforce_em::{SensorLine, Termination};
use wiforce_mech::contact::{ContactSolver, SensorMech};
use wiforce_mech::{ForceTransducer, Indenter};

/// Port-1 differential phase (deg) of a sensor at the given force/location.
fn port1_phase_deg(
    solver: &ContactSolver,
    line: &SensorLine,
    f_hz: f64,
    force: f64,
    x0: f64,
) -> Option<f64> {
    let patch = solver.contact_patch(force, x0)?;
    Some(
        line.differential_phase(f_hz, patch.port1_length_m(), Termination::Open)
            .to_degrees(),
    )
}

/// Runs the experiment.
pub fn run(_quick: bool) -> Report {
    println!("== Fig. 4c: phase-force transduction, thin trace vs soft beam ==\n");
    let soft = ContactSolver::with_nodes(
        SensorMech::wiforce_prototype(),
        Indenter::actuator_tip(),
        201,
    );
    let thin = ContactSolver::with_nodes(SensorMech::thin_trace(), Indenter::actuator_tip(), 201);
    let line = SensorLine::wiforce_prototype();
    let x0 = 0.040;
    let forces: Vec<f64> = (1..=16).map(|i| i as f64 * 0.5).collect();

    let mut table = TextTable::new([
        "force (N)",
        "thin @900MHz (°)",
        "soft @900MHz (°)",
        "thin @2.4GHz (°)",
        "soft @2.4GHz (°)",
    ]);

    // phases relative to the first-contact phase, like the paper's plot
    let series = |solver: &ContactSolver, f_hz: f64| -> Vec<Option<f64>> {
        let base = port1_phase_deg(solver, &line, f_hz, forces[0], x0);
        forces
            .iter()
            .map(
                |&f| match (port1_phase_deg(solver, &line, f_hz, f, x0), base) {
                    (Some(p), Some(b)) => Some(p - b),
                    _ => None,
                },
            )
            .collect()
    };
    let thin900 = series(&thin, 0.9e9);
    let soft900 = series(&soft, 0.9e9);
    let thin24 = series(&thin, 2.4e9);
    let soft24 = series(&soft, 2.4e9);

    let cell = |v: &Option<f64>| v.map_or("n/a".to_string(), |p| fmt(p, 2));
    for (i, &f) in forces.iter().enumerate() {
        table.row([
            fmt(f, 1),
            cell(&thin900[i]),
            cell(&soft900[i]),
            cell(&thin24[i]),
            cell(&soft24[i]),
        ]);
    }
    println!("{}", table.render());

    let swing = |s: &[Option<f64>]| -> f64 {
        let vals: Vec<f64> = s.iter().flatten().copied().collect();
        let (lo, hi) = vals
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
                (lo.min(v), hi.max(v))
            });
        hi - lo
    };
    let soft_sw = swing(&soft24);
    let thin_sw = swing(&thin24);
    println!("phase swing over 0.5–8 N at 2.4 GHz: soft {soft_sw:.1}°, thin {thin_sw:.1}°\n");

    let mut rep = Report::new();
    rep.push(ExperimentRecord::new(
        "Fig. 4c",
        "soft-beam vs thin-trace phase swing (2.4 GHz)",
        "soft pronounced, thin ~flat",
        format!("soft {soft_sw:.1}°, thin {thin_sw:.1}°"),
        soft_sw > 3.0 * thin_sw && soft_sw > 10.0,
        "soft swing > 3× thin and > 10°",
    ));
    let soft_sw9 = swing(&soft900);
    rep.push(ExperimentRecord::new(
        "Fig. 4c",
        "higher carrier ⇒ more phase per mm",
        "phase scales with frequency",
        format!("900 MHz {soft_sw9:.1}° vs 2.4 GHz {soft_sw:.1}°"),
        soft_sw > 1.5 * soft_sw9,
        "2.4 GHz swing > 1.5× 900 MHz swing",
    ));
    rep
}

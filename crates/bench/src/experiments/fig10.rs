//! Fig. 10 — sensor RF characterization: S11/S21 over 0–3 GHz.
//!
//! "Across the entire 3 GHz frequencies, S11 is below −10 dB, S12 is
//! about 0 dB with linear phase" — the broadband claim. We sweep the
//! prototype line on the simulated bench VNA.

use crate::report::{ExperimentRecord, Report};
use crate::table::{fmt, TextTable};
use wiforce_dsp::polyfit::Polynomial;
use wiforce_em::vna::{FrequencySweep, Vna};
use wiforce_em::SensorLine;

/// Runs the experiment.
pub fn run(_quick: bool) -> Report {
    println!("== Fig. 10: sensor S-parameters, 0.05–3 GHz (bench VNA) ==\n");
    let line = SensorLine::wiforce_prototype();
    let vna = Vna::bench();
    let sweep = FrequencySweep {
        start_hz: 0.05e9,
        stop_hz: 3.0e9,
        points: 60,
    };
    let result = vna.sweep(sweep, |f| line.rest_sparams(f));

    let phases = result.s21_phase_unwrapped();
    let mut table = TextTable::new(["f (GHz)", "S11 (dB)", "S21 (dB)", "∠S21 (°)"]);
    for (i, &f) in result.freqs_hz.iter().enumerate().step_by(5) {
        table.row([
            fmt(f / 1e9, 2),
            fmt(result.sparams[i].s11_db(), 1),
            fmt(result.sparams[i].s21_db(), 2),
            fmt(phases[i].to_degrees(), 1),
        ]);
    }
    println!("{}", table.render());

    let worst_s11 = result.worst_s11_db();
    let worst_s21 = result.s21_db().into_iter().fold(f64::INFINITY, f64::min);
    let fit = Polynomial::fit(&result.freqs_hz, &phases, 1).expect("linear fit");
    let rms_nonlin = fit.rms_residual(&result.freqs_hz, &phases).to_degrees();
    println!(
        "worst S11 {worst_s11:.1} dB, worst S21 {worst_s21:.2} dB, \
         S21 phase nonlinearity {rms_nonlin:.2}° RMS\n"
    );

    let mut rep = Report::new();
    rep.push(ExperimentRecord::new(
        "Fig. 10",
        "S11 across 0–3 GHz",
        "below −10 dB",
        format!("worst {worst_s11:.1} dB"),
        worst_s11 < -10.0,
        "worst S11 < −10 dB",
    ));
    rep.push(ExperimentRecord::new(
        "Fig. 10",
        "S21 (thru) across 0–3 GHz",
        "≈ 0 dB",
        format!("worst {worst_s21:.2} dB"),
        worst_s21 > -1.0,
        "worst S21 > −1 dB",
    ));
    rep.push(ExperimentRecord::new(
        "Fig. 10",
        "S21 phase linearity",
        "linear phase",
        format!("{rms_nonlin:.2}° RMS deviation from linear"),
        rms_nonlin < 3.0,
        "RMS nonlinearity < 3°",
    ));
    println!("{}", rep.to_console());
    rep
}

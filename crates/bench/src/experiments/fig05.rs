//! Fig. 5b — per-port phase-force profiles vs press location.
//!
//! The localization-enabling asymmetry: a centre press moves both ports'
//! phases symmetrically; an off-centre press keeps moving the *near*
//! port's phase while the *far* port's shorting point sits almost still
//! (the long side collapses early). VNA readings through the FD solver.

use crate::report::{ExperimentRecord, Report};
use crate::table::{fmt, TextTable};
use wiforce_em::{SensorLine, Termination};
use wiforce_mech::contact::{ContactSolver, SensorMech};
use wiforce_mech::{ForceTransducer, Indenter};

/// Both ports' differential phases (deg) at a press, or None below touch.
fn phases_deg(
    solver: &ContactSolver,
    line: &SensorLine,
    f_hz: f64,
    force: f64,
    x0: f64,
) -> Option<(f64, f64)> {
    let patch = solver.contact_patch(force, x0)?;
    let len = solver.length_m();
    let p1 = line.differential_phase(f_hz, patch.port1_length_m(), Termination::Open);
    let p2 = line.differential_phase(f_hz, patch.port2_length_m(len), Termination::Open);
    Some((p1.to_degrees(), p2.to_degrees()))
}

/// Runs the experiment.
pub fn run(_quick: bool) -> Report {
    println!("== Fig. 5b: port-wise phase-force profiles at 20/40/60 mm (900 MHz VNA) ==\n");
    let solver = ContactSolver::with_nodes(
        SensorMech::wiforce_prototype(),
        Indenter::actuator_tip(),
        201,
    );
    let line = SensorLine::wiforce_prototype();
    let f_hz = 0.9e9;
    let forces: Vec<f64> = (1..=16).map(|i| i as f64 * 0.5).collect();
    let locations = [0.020, 0.040, 0.060];

    let mut rep = Report::new();
    let mut swings = Vec::new(); // (x0, port1 swing, port2 swing)
    for &x0 in &locations {
        let mut table = TextTable::new(["force (N)", "port1 φ (°)", "port2 φ (°)"]);
        let base = phases_deg(&solver, &line, f_hz, forces[0], x0).expect("contact at 0.5 N");
        let mut p1s = Vec::new();
        let mut p2s = Vec::new();
        for &f in &forces {
            if let Some((p1, p2)) = phases_deg(&solver, &line, f_hz, f, x0) {
                table.row([fmt(f, 1), fmt(p1 - base.0, 2), fmt(p2 - base.1, 2)]);
                p1s.push(p1 - base.0);
                p2s.push(p2 - base.1);
            }
        }
        println!("-- press at {:.0} mm --", x0 * 1e3);
        println!("{}", table.render());
        let swing = |v: &[f64]| {
            v.iter()
                .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &x| {
                    (lo.min(x), hi.max(x))
                })
        };
        let (l1, h1) = swing(&p1s);
        let (l2, h2) = swing(&p2s);
        swings.push((x0, h1 - l1, h2 - l2));
    }

    let (_, s1_20, s2_20) = swings[0];
    let (_, s1_40, s2_40) = swings[1];
    let (_, s1_60, s2_60) = swings[2];

    rep.push(ExperimentRecord::new(
        "Fig. 5b",
        "centre press symmetry (40 mm)",
        "both ports move alike",
        format!("port1 {s1_40:.1}°, port2 {s2_40:.1}°"),
        (s1_40 - s2_40).abs() < 0.35 * s1_40.max(s2_40),
        "port swings within 35 % of each other",
    ));
    rep.push(ExperimentRecord::new(
        "Fig. 5b",
        "press at 20 mm: near port swings, far port ~static",
        "near ≫ far",
        format!("near {s1_20:.1}°, far {s2_20:.1}°"),
        s1_20 > 1.7 * s2_20,
        "near swing > 1.7× far swing",
    ));
    rep.push(ExperimentRecord::new(
        "Fig. 5b",
        "press at 60 mm: mirrored asymmetry",
        "far ≫ near (mirrored)",
        format!("near(port1) {s1_60:.1}°, far(port2) {s2_60:.1}°"),
        s2_60 > 1.7 * s1_60,
        "port-2 swing > 1.7× port-1 swing",
    ));
    println!("{}", rep.to_console());
    rep
}

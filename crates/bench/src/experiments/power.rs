//! §4.3 power budget — "< 1 µW in TSMC 65 nm" — and the §6 battery-free
//! feasibility it enables.

use crate::report::{ExperimentRecord, Report};
use crate::table::{fmt, TextTable};
use wiforce_sensor::harvest::{feasibility_radius_m, Rectifier};
use wiforce_sensor::power::{estimate, CmosNode};

/// Runs the experiment.
pub fn run(_quick: bool) -> Report {
    println!("== §4.3: tag power budget ==\n");
    let mut table = TextTable::new([
        "node",
        "fs (kHz)",
        "switch drive (nW)",
        "clock gen (nW)",
        "leakage (nW)",
        "total (µW)",
    ]);
    let mut total_65_at_1k = f64::NAN;
    for node in [CmosNode::N180, CmosNode::TSMC65, CmosNode::N28] {
        for fs in [1_000.0, 10_000.0, 50_000.0] {
            let b = estimate(node, fs);
            if node.name == "65nm" && fs == 1_000.0 {
                total_65_at_1k = b.total_uw();
            }
            table.row([
                node.name.to_string(),
                fmt(fs / 1e3, 0),
                fmt(b.switch_drive_w * 1e9, 2),
                fmt(b.clock_gen_w * 1e9, 0),
                fmt(b.leakage_w * 1e9, 0),
                fmt(b.total_uw(), 3),
            ]);
        }
    }
    println!("{}", table.render());

    // §6: battery-free feasibility via RF harvesting
    println!("battery-free feasibility (1 W EIRP-class reader, 900 MHz):\n");
    let mut htable = TextTable::new(["rectifier", "feasibility radius (m)"]);
    let budget = estimate(CmosNode::TSMC65, 1_000.0);
    let mut radius_cmos = 0.0;
    for (name, rect) in [
        ("CMOS rectenna (−20 dBm, 30 %)", Rectifier::cmos_rectenna()),
        ("Schottky (−15 dBm, 20 %)", Rectifier::schottky()),
    ] {
        let r = feasibility_radius_m(&budget, &rect, 1.0, 0.9e9, 4.0, 1.6);
        if name.starts_with("CMOS") {
            radius_cmos = r.unwrap_or(0.0);
        }
        htable.row([
            name.to_string(),
            r.map_or("infeasible".into(), |v| fmt(v, 2)),
        ]);
    }
    println!("{}", htable.render());

    let mut rep = Report::new();
    rep.push(ExperimentRecord::new(
        "§4.3",
        "tag power in TSMC 65 nm at fs = 1 kHz",
        "< 1 µW",
        format!("{total_65_at_1k:.3} µW"),
        total_65_at_1k < 1.0,
        "total < 1 µW",
    ));
    rep.push(ExperimentRecord::new(
        "§6",
        "battery-free operation via RF harvesting",
        "power frugal enough for energy harvesting",
        format!("self-powered out to {radius_cmos:.1} m (CMOS rectenna)"),
        radius_cmos > 1.0,
        "feasibility radius > 1 m",
    ));
    println!("{}", rep.to_console());
    rep
}

//! Fig. 18 — phase stability vs TX/sensor/RX geometry.
//!
//! Paper §5.4: TX and RX 4 m apart, 10 dBm TX at 900 MHz, sensor moved
//! along the line. Phase stability stays under ~1° near either antenna and
//! within ~5° at the worst 2 m/2 m midpoint (weakest combined backscatter
//! budget). We measure the repeatability (std) of the port-1 differential
//! phase for a fixed 4 N press across independent reads.

use crate::report::{ExperimentRecord, Report};
use crate::table::{fmt, TextTable};
use rand::rngs::StdRng;
use rand::SeedableRng;
use wiforce::pipeline::Simulation;
use wiforce_channel::Scene;
use wiforce_dsp::stats::circular_std;

/// Phase repeatability (deg) at one tag position.
fn phase_std_deg(sim: &Simulation, reads: usize, seed: u64) -> Option<f64> {
    let contact = sim.contact_for(4.0, 0.040);
    let mut phases = Vec::with_capacity(reads);
    for i in 0..reads {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(i as u64 * 7919));
        match sim.measure_phases(contact.as_ref(), &mut rng) {
            Ok(d) => phases.push(d.dphi1_rad),
            Err(_) => return None,
        }
    }
    Some(circular_std(&phases).to_degrees())
}

/// Runs the experiment.
pub fn run(quick: bool) -> Report {
    println!("== Fig. 18: phase stability over a 4 m TX–RX line (900 MHz, 10 dBm) ==\n");
    let reads = if quick { 12 } else { 24 };
    let positions = [1.0, 1.5, 2.0, 2.5, 3.0];

    let mut table = TextTable::new(["tag at (m from TX)", "TX–tag / tag–RX", "phase std (°)"]);
    let mut stds = Vec::new();
    for &d in &positions {
        let mut sim = Simulation::paper_default(0.9e9);
        sim.scene = Scene::fig18(0.9e9, d);
        // common random numbers across positions isolate the geometry effect
        let s = phase_std_deg(&sim, reads, 0xF18);
        let label = format!("{d:.1} / {:.1}", 4.0 - d);
        match s {
            Some(v) => {
                table.row([fmt(d, 1), label, fmt(v, 2)]);
                stds.push((d, v));
            }
            None => {
                table.row([fmt(d, 1), label, "not detected".to_string()]);
            }
        }
    }
    println!("{}", table.render());

    let at = |d: f64| {
        stds.iter()
            .find(|(p, _)| (*p - d).abs() < 1e-9)
            .map(|(_, v)| *v)
    };
    let best_end = at(1.0).unwrap_or(f64::NAN).min(at(3.0).unwrap_or(f64::NAN));
    let mid = at(2.0).unwrap_or(f64::NAN);

    let mut rep = Report::new();
    rep.push(ExperimentRecord::new(
        "Fig. 18",
        "phase stability near an antenna (1 m / 3 m)",
        "< 1°",
        format!("{best_end:.2}°"),
        best_end.is_finite() && best_end < 1.5,
        "best end-position std < 1.5°",
    ));
    rep.push(ExperimentRecord::new(
        "Fig. 18",
        "phase stability at the worst 2 m / 2 m midpoint",
        "within 5°",
        format!("{mid:.2}°"),
        mid.is_finite() && mid < 6.0,
        "midpoint std < 6°",
    ));
    rep.push(ExperimentRecord::new(
        "Fig. 18",
        "midpoint is the worst geometry",
        "stability degrades away from the antennas",
        format!("mid {mid:.2}° vs best {best_end:.2}°"),
        mid > best_end,
        "std(2 m/2 m) > std(1 m/3 m)",
    ));
    println!("{}", rep.to_console());
    rep
}

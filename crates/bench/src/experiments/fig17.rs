//! Fig. 17 — fingertip presses: location histogram and force staircase.
//!
//! Paper §5.3: a user presses the sensor at 60 mm with increasing force
//! levels (visual feedback from a load cell). WiForce pins the contact
//! location to 60 mm within fingertip width and tracks the force levels —
//! "more than just binary touch sensing". We drive the streaming estimator
//! with a synthetic fingertip staircase (first-order settling + tremor).

use crate::report::{ExperimentRecord, Report};
use crate::table::{fmt, TextTable};
use rand::rngs::StdRng;
use rand::SeedableRng;
use wiforce::estimator::{EstimatorConfig, ForceEstimator};
use wiforce::pipeline::{Simulation, TagClock};
use wiforce_dsp::stats::mean;
use wiforce_mech::profile::{FingertipStaircase, PressProfile};
use wiforce_mech::Indenter;

/// Runs the experiment.
pub fn run(quick: bool) -> Report {
    println!("== Fig. 17: fingertip staircase at 60 mm (2.4 GHz) ==\n");
    let sim = Simulation::paper_default(2.4e9).with_indenter(Indenter::fingertip());
    let model = sim.vna_calibration().expect("calibration");

    let mut profile = FingertipStaircase::user_study();
    if quick {
        profile.hold_s = 0.5;
    }

    let cfg = EstimatorConfig {
        group: sim.group,
        reference_groups: 3,
        ..EstimatorConfig::wiforce(1000.0)
    };
    let mut est = ForceEstimator::new(cfg, model);
    let mut rng = StdRng::seed_from_u64(0xF175);
    let mut clock = TagClock::new(&mut rng);

    // 3 reference groups of untouched sensor; one snapshot buffer is
    // reused for every group of the whole staircase
    let mut stream = wiforce_dsp::SnapshotMatrix::default();
    sim.run_snapshots_into(
        None,
        cfg.reference_groups,
        &mut clock,
        &mut rng,
        &mut stream,
    );
    for s in stream.rows() {
        let _ = est.push_snapshot(s).expect("reference groups");
    }

    let group_s = cfg.group.group_duration_s();
    let n_groups = (profile.duration_s() / group_s) as usize;
    let mut readings = Vec::new();
    for g in 0..n_groups {
        let t_mid = (g as f64 + 0.5) * group_s;
        let force = profile.force_at(t_mid);
        let contact = sim.jittered_contact(force, profile.location_m(), &mut rng);
        stream.clear();
        sim.run_snapshots_into(contact.as_ref(), 1, &mut clock, &mut rng, &mut stream);
        for s in stream.rows() {
            if let Ok(Some(r)) = est.push_snapshot(s) {
                readings.push((t_mid, force, r));
            }
        }
    }

    // location histogram over touched readings (5 mm bins, like a
    // fingertip-width resolution view)
    let touched: Vec<_> = readings.iter().filter(|(_, _, r)| r.touched).collect();
    // bins centred on multiples of 5 mm (0, 5, …, 80)
    let mut hist = [0usize; 17];
    for (_, _, r) in &touched {
        let bin = ((r.location_m * 1e3 / 5.0).round() as usize).min(16);
        hist[bin] += 1;
    }
    let mut table = TextTable::new(["location bin (mm)", "count"]);
    for (i, &c) in hist.iter().enumerate() {
        if c > 0 {
            table.row([format!("{} ± 2.5", i * 5), c.to_string()]);
        }
    }
    println!("{}", table.render());
    let mode_bin = hist
        .iter()
        .enumerate()
        .max_by_key(|(_, &c)| c)
        .map(|(i, _)| i)
        .unwrap_or(0);
    let in_mode = hist[mode_bin] as f64 / touched.len().max(1) as f64;

    // per-level force tracking
    let mut level_table = TextTable::new(["target level (N)", "mean estimate (N)", "error (N)"]);
    let mut level_errors = Vec::new();
    let mut level_means = Vec::new();
    for (i, &level) in profile.levels_n.iter().enumerate() {
        // settled half of the hold window
        let t_lo = (i as f64 + 0.5) * profile.hold_s;
        let t_hi = (i as f64 + 1.0) * profile.hold_s;
        let ests: Vec<f64> = readings
            .iter()
            .filter(|(t, _, r)| *t >= t_lo && *t < t_hi && r.touched)
            .map(|(_, _, r)| r.force_n)
            .collect();
        if ests.is_empty() {
            continue;
        }
        let m = mean(&ests);
        level_errors.push((m - level).abs());
        level_means.push(m);
        level_table.row([fmt(level, 1), fmt(m, 2), fmt((m - level).abs(), 2)]);
    }
    println!("{}", level_table.render());

    let worst_level = level_errors.iter().cloned().fold(0.0, f64::max);
    // the paper's claim is *force levels are distinguishable*: the
    // increasing staircase must come out strictly increasing
    let ordered = level_means.windows(2).all(|w| w[1] > w[0]);
    let mode_center = mode_bin as f64 * 5.0;

    let mut rep = Report::new();
    rep.push(ExperimentRecord::new(
        "Fig. 17a",
        "fingertip press localization",
        "all touches classified at 60 mm (fingertip ≈10 mm wide)",
        format!(
            "{:.0}% of readings in the {mode_center:.0} mm bin",
            in_mode * 100.0
        ),
        (mode_center - 60.0).abs() <= 5.0 && in_mode > 0.7,
        "mode bin within 5 mm of 60 mm, >70 % of readings",
    ));
    rep.push(ExperimentRecord::new(
        "Fig. 17b",
        "force-level tracking",
        "increasing levels estimated and distinguishable",
        format!(
            "levels {} (worst error {worst_level:.2} N)",
            if ordered {
                "strictly ordered"
            } else {
                "NOT ordered"
            }
        ),
        ordered && worst_level < 1.0 && level_errors.len() >= 4,
        "staircase order preserved, every level within 1 N",
    ));
    println!("{}", rep.to_console());
    rep
}

//! Table 1 — VNA vs fitted model vs wireless phase-force curves.
//!
//! The paper's validation triptych: at each test location the VNA curve,
//! the cubic model (trained at 20/30/40/50/60 mm — so 55 mm is held out)
//! and the wirelessly measured curve should overlay. We print all three
//! per location and score the overlay RMS.

use crate::report::{ExperimentRecord, Report};
use crate::table::{fmt, TextTable};
use rand::rngs::StdRng;
use rand::SeedableRng;
use wiforce::pipeline::Simulation;
use wiforce_dsp::phase::wrap_to_pi;

/// Runs the experiment.
pub fn run(quick: bool) -> Report {
    let mut rep = Report::new();
    for carrier in [0.9e9, 2.4e9] {
        let ghz = carrier / 1e9;
        println!("== Table 1 @ {ghz} GHz: VNA vs model vs wireless ==\n");
        let sim = Simulation::paper_default(carrier);
        let model = sim.vna_calibration().expect("calibration");
        let forces: Vec<f64> = if quick {
            vec![1.0, 3.0, 5.0, 7.0]
        } else {
            (1..=16).map(|i| i as f64 * 0.5).collect()
        };

        for &loc in &[0.020, 0.040, 0.055, 0.060] {
            let mut table = TextTable::new([
                "force (N)",
                "VNA φ1 (°)",
                "model φ1 (°)",
                "wireless φ1 (°)",
                "VNA φ2 (°)",
                "model φ2 (°)",
                "wireless φ2 (°)",
            ]);
            let mut vna1 = Vec::new();
            let mut mdl1 = Vec::new();
            let mut wls1 = Vec::new();
            let mut vna2 = Vec::new();
            let mut mdl2 = Vec::new();
            let mut wls2 = Vec::new();
            for (i, &f) in forces.iter().enumerate() {
                let (v1, v2) = sim.vna_phases(f, loc);
                // the model fits *unwrapped* phase curves; bring its
                // predictions onto the VNA's principal branch for display
                let (m1u, m2u) = model.predict(f, loc);
                let m1 = v1 + wrap_to_pi(m1u - v1);
                let m2 = v2 + wrap_to_pi(m2u - v2);
                let mut rng = StdRng::seed_from_u64(0x7AB1 + i as u64 + (loc * 1e6) as u64);
                let contact = sim.contact_for(f, loc);
                let w = sim
                    .measure_phases(contact.as_ref(), &mut rng)
                    .expect("detectable");
                table.row([
                    fmt(f, 1),
                    fmt(v1.to_degrees(), 2),
                    fmt(m1.to_degrees(), 2),
                    fmt(w.dphi1_rad.to_degrees(), 2),
                    fmt(v2.to_degrees(), 2),
                    fmt(m2.to_degrees(), 2),
                    fmt(w.dphi2_rad.to_degrees(), 2),
                ]);
                vna1.push(v1.to_degrees());
                mdl1.push(m1.to_degrees());
                wls1.push(w.dphi1_rad.to_degrees());
                vna2.push(v2.to_degrees());
                mdl2.push(m2.to_degrees());
                wls2.push(w.dphi2_rad.to_degrees());
            }
            println!("-- press at {:.0} mm --", loc * 1e3);
            println!("{}", table.render());

            // wrap-aware RMS in degrees
            let rms = |a: &[f64], b: &[f64]| -> f64 {
                let ss: f64 = a
                    .iter()
                    .zip(b)
                    .map(|(&x, &y)| {
                        let e = wrap_to_pi((x - y).to_radians()).to_degrees();
                        e * e
                    })
                    .sum();
                (ss / a.len() as f64).sqrt()
            };
            let model_rms = rms(&vna1, &mdl1).max(rms(&vna2, &mdl2));
            let wireless_rms = rms(&vna1, &wls1).max(rms(&vna2, &wls2));
            let held_out = (loc - 0.055).abs() < 1e-9;
            let id = format!(
                "Table 1 @ {ghz} GHz, {:.0} mm{}",
                loc * 1e3,
                if held_out { " (held out)" } else { "" }
            );
            rep.push(ExperimentRecord::new(
                id.clone(),
                "model-vs-VNA overlay",
                "curves overlay",
                format!("{model_rms:.2}° RMS"),
                model_rms < 2.0,
                "model RMS < 2°",
            ));
            rep.push(ExperimentRecord::new(
                id,
                "wireless-vs-VNA overlay",
                "wireless follows VNA closely",
                format!("{wireless_rms:.2}° RMS"),
                wireless_rms < 3.5,
                "wireless RMS < 3.5°",
            ));
        }
    }
    println!("{}", rep.to_console());
    rep
}

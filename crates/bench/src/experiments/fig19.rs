//! Fig. 19 — trace-ratio optimization vs ground width (Appendix).
//!
//! The parametric study behind the sensor cross-section: the closed-form
//! air microstrip wants width:height ≈ 5:1 for 50 Ω, but widening the
//! ground trace for SMA soldering shifts the optimum to ≈ 4:1.

use crate::report::{ExperimentRecord, Report};
use crate::table::{fmt, TextTable};
use wiforce_em::hfss::{optimal_ratio, ratio_sweep};

/// Runs the experiment.
pub fn run(_quick: bool) -> Report {
    println!("== Fig. 19: optimal width:height ratio vs ground width ==\n");
    let ratios: Vec<f64> = (20..=70).map(|k| k as f64 * 0.1).collect();
    let band: Vec<f64> = (1..=30).map(|k| k as f64 * 0.1e9).collect();

    let mut table = TextTable::new([
        "w/h ratio",
        "Z (narrow gnd) Ω",
        "S11 narrow (dB)",
        "Z (wide gnd) Ω",
        "S11 wide (dB)",
    ]);
    let narrow = ratio_sweep(1.0, &ratios, &band, 0.080);
    let wide = ratio_sweep(2.4, &ratios, &band, 0.080);
    for (n, w) in narrow.iter().zip(&wide).step_by(5) {
        table.row([
            fmt(n.width_height_ratio, 1),
            fmt(n.impedance_ohm, 1),
            fmt(n.worst_s11_db, 1),
            fmt(w.impedance_ohm, 1),
            fmt(w.worst_s11_db, 1),
        ]);
    }
    println!("{}", table.render());

    let opt_narrow = optimal_ratio(&narrow);
    let opt_wide = optimal_ratio(&wide);
    println!(
        "optimal ratio: narrow ground {opt_narrow:.1}:1, wide (2.4×) ground {opt_wide:.1}:1\n"
    );

    let mut rep = Report::new();
    rep.push(ExperimentRecord::new(
        "Fig. 19",
        "optimal ratio, narrow ground",
        "≈5:1 (closed form)",
        format!("{opt_narrow:.1}:1"),
        (4.5..=5.5).contains(&opt_narrow),
        "within 4.5–5.5",
    ));
    rep.push(ExperimentRecord::new(
        "Fig. 19",
        "optimal ratio, widened ground",
        "≈4:1",
        format!("{opt_wide:.1}:1"),
        (3.5..=4.5).contains(&opt_wide),
        "within 3.5–4.5",
    ));
    rep.push(ExperimentRecord::new(
        "Fig. 19",
        "ground widening lowers the optimum",
        "5:1 → 4:1",
        format!("{opt_narrow:.1} → {opt_wide:.1}"),
        opt_wide < opt_narrow - 0.5,
        "wide-ground optimum at least 0.5 lower",
    ));
    println!("{}", rep.to_console());
    rep
}

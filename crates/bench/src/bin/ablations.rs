//! Regenerates the paper's ablations experiment. Pass `--quick` for a fast
//! smoke run with fewer trials.

fn main() {
    let quick = wiforce_bench::montecarlo::quick_mode();
    let report = wiforce_bench::experiments::ablations::run(quick);
    std::process::exit(if report.all_ok() { 0 } else { 1 });
}

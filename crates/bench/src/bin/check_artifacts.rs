//! CI artifact validator: parses `BENCH_pipeline.json` and/or a
//! `PipelineHealth` report with the telemetry crate's own JSON parser and
//! asserts the structure CI (and downstream dashboards) rely on — no
//! `jq`, no serde.
//!
//! ```text
//! check_artifacts --bench BENCH_pipeline.json --health health.json \
//!                 [--trace trace.json] [--metrics metrics.prom] \
//!                 [--calibration CALIBRATION_synth.json] \
//!                 [--baseline BENCH_baseline.json]
//! ```
//!
//! Any input flag may be omitted; at least one is required. Exits
//! non-zero with a list of violations when a file fails validation.
//!
//! `--trace` validates a Chrome trace-event export (`wiforce-cli
//! trace`): structure, span balance, flow binding, and the
//! ring-overflow gate (`otherData.dropped_events` must be 0).
//! `--metrics` validates Prometheus text exposition (`wiforce-cli
//! metrics`): grammar, `# TYPE` coverage, summary completeness, and the
//! presence of per-stream series. Both are backed by
//! [`wiforce_bench::observability`].
//!
//! `--calibration` validates the standalone `CALIBRATION_synth.json`
//! probe verdict: structure plus the schema-v2 provenance pair
//! (`schema_version` + `git_rev`), so the `--revs` / `--expect-rev`
//! staleness gates below cover it exactly like the bench baseline.
//!
//! `--revs` takes a `git log` listing (one rev per line, short or full)
//! and fails when each committed artifact's `git_rev` (`--baseline` when
//! given, else `--bench`; plus `--calibration` when given) names no
//! commit in it — a stale-baseline trap.
//!
//! With `--baseline`, the `--bench` artifact is additionally compared
//! against the given committed baseline with
//! [`wiforce_bench::regression::compare`]: a `ns_per_press` regression
//! beyond the limit or a missing/flat batch `throughput` section fails
//! the run. The before/after table is printed to stdout and, when
//! `$GITHUB_STEP_SUMMARY` is set, appended to the CI job summary.
//!
//! The separate `--diff A.json B.json` mode backs the CI determinism
//! job: it compares two artifacts field-by-field with
//! [`wiforce_bench::regression::diff_ignoring_timing`], ignoring only
//! timing-derived keys, and exits non-zero on any other difference —
//! counter-based synthesis must produce identical results at any
//! `WIFORCE_SYNTH_WORKERS` setting.

use wiforce_bench::{observability, regression};
use wiforce_telemetry::json::{parse, Value};

/// Collects human-readable violations for one document.
struct Checker<'a> {
    file: &'a str,
    errors: Vec<String>,
}

impl<'a> Checker<'a> {
    fn new(file: &'a str) -> Self {
        Checker {
            file,
            errors: Vec::new(),
        }
    }

    fn fail(&mut self, msg: String) {
        self.errors.push(format!("{}: {msg}", self.file));
    }

    /// Requires `key` to be a finite number, optionally `> 0`.
    fn number(&mut self, root: &Value, key: &str, positive: bool) {
        match root.get(key).and_then(Value::as_f64) {
            None => self.fail(format!("missing numeric key '{key}'")),
            Some(v) if !v.is_finite() => self.fail(format!("'{key}' is not finite")),
            Some(v) if positive && v <= 0.0 => self.fail(format!("'{key}' = {v}, expected > 0")),
            Some(_) => {}
        }
    }

    /// Requires `key` to be a non-empty string.
    fn string(&mut self, root: &Value, key: &str) {
        match root.get(key).and_then(Value::as_str) {
            None => self.fail(format!("missing string key '{key}'")),
            Some("") => self.fail(format!("'{key}' is empty")),
            Some(_) => {}
        }
    }
}

fn check_bench(file: &str, root: &Value) -> Vec<String> {
    let mut c = Checker::new(file);
    c.number(root, "schema_version", true);
    c.string(root, "git_rev");
    c.number(root, "press_iters", true);
    c.number(root, "ns_per_press", true);
    c.number(root, "presses_per_sec", true);
    c.number(root, "ns_per_press_telemetry_on", true);
    c.number(root, "telemetry_overhead_pct", false);
    c.number(root, "ns_per_group", true);
    c.number(root, "allocs_per_group", false);

    // schema v4: per-stage breakdown + telemetry-overhead ceiling
    let schema = root
        .get("schema_version")
        .and_then(Value::as_f64)
        .unwrap_or(0.0);
    if schema >= 4.0 {
        match root.get("stage_breakdown") {
            None => c.fail("missing 'stage_breakdown' object (schema v4)".into()),
            Some(sb) => {
                for key in regression::STAGE_BREAKDOWN_METRICS {
                    if sb.get(key).and_then(Value::as_f64).is_none() {
                        c.fail(format!("stage_breakdown missing numeric key '{key}'"));
                    }
                }
            }
        }
        if let Some(v) = root.get("telemetry_overhead_pct").and_then(Value::as_f64) {
            if v > regression::MAX_TELEMETRY_OVERHEAD_PCT {
                c.fail(format!(
                    "telemetry_overhead_pct = {v:.2} exceeds the {:.1}% ceiling",
                    regression::MAX_TELEMETRY_OVERHEAD_PCT
                ));
            }
        }
    }

    // schema v5: counter-synthesis fields, floored overhead, and the
    // stage-sum reconciliation gate
    if schema >= 5.0 {
        c.number(root, "synth_workers", true);
        c.number(root, "ns_per_group_parallel", true);
        c.number(root, "telemetry_overhead_raw_pct", false);
        if let Some(v) = root.get("telemetry_overhead_pct").and_then(Value::as_f64) {
            if v < 0.0 {
                c.fail(format!(
                    "telemetry_overhead_pct = {v:.2} is negative — schema v5 floors it at 0 \
                     (the signed measurement belongs in telemetry_overhead_raw_pct)"
                ));
            }
            // the floored field must be exactly max(raw, 0): the two
            // come from the same off/on pair, so any daylight between
            // them means one was edited or computed from different runs
            if let Some(raw) = root
                .get("telemetry_overhead_raw_pct")
                .and_then(Value::as_f64)
            {
                let floored = raw.max(0.0);
                if (v - floored).abs() > 1e-9 {
                    c.fail(format!(
                        "telemetry_overhead_pct = {v:.4} but \
                         max(telemetry_overhead_raw_pct, 0) = {floored:.4} — \
                         the floored field must equal the raw field clamped at 0"
                    ));
                }
            }
        }
        // the four per-stage times must add up to roughly the measured
        // press: a stage that silently stops being recorded collapses
        // the sum, a double-counted one inflates it
        let stage = |key: &str| {
            root.get("stage_breakdown")
                .and_then(|sb| sb.get(key))
                .and_then(Value::as_f64)
        };
        let sum: Option<f64> = [
            "synth_ns_per_press",
            "spectrum_ns_per_press",
            "estimator_ns_per_press",
            "tracker_ns_per_press",
        ]
        .iter()
        .map(|k| stage(k))
        .sum();
        if let (Some(sum), Some(total)) = (
            sum,
            root.get("ns_per_press_telemetry_on")
                .and_then(Value::as_f64),
        ) {
            if total > 0.0 {
                let ratio = sum / total;
                if !(regression::STAGE_SUM_MIN_RATIO..=regression::STAGE_SUM_MAX_RATIO)
                    .contains(&ratio)
                {
                    c.fail(format!(
                        "stage_breakdown sums to {sum:.0} ns = {ratio:.2}× \
                         ns_per_press_telemetry_on ({total:.0} ns), outside the \
                         [{:.2}, {:.2}] reconciliation band",
                        regression::STAGE_SUM_MIN_RATIO,
                        regression::STAGE_SUM_MAX_RATIO
                    ));
                }
            }
        }
    }

    // schema v6: the observability section — the telemetry-on blocks run
    // with the trace ring and metrics registry live, so events must have
    // been recorded, nothing may have been dropped (the per-block drain
    // keeps the rings far from full), and the registry must export series
    if schema >= 6.0 {
        match root.get("observability") {
            None => c.fail("missing 'observability' object (schema v6)".into()),
            Some(obs) => {
                let mut obs_num = |key: &str, positive: bool| match obs
                    .get(key)
                    .and_then(Value::as_f64)
                {
                    None => c.fail(format!("observability missing numeric key '{key}'")),
                    Some(v) if !v.is_finite() => c.fail(format!("observability.{key} not finite")),
                    Some(v) if positive && v <= 0.0 => {
                        c.fail(format!("observability.{key} = {v}, expected > 0"))
                    }
                    Some(_) => {}
                };
                obs_num("trace_events", true);
                obs_num("trace_ring_capacity", true);
                obs_num("metrics_series", true);
                match obs.get("trace_dropped").and_then(Value::as_f64) {
                    None => c.fail("observability missing numeric key 'trace_dropped'".into()),
                    Some(d) if d > 0.0 => c.fail(format!(
                        "observability.trace_dropped = {d} — the trace ring overflowed \
                         during the benchmark, expected 0"
                    )),
                    _ => {}
                }
            }
        }
    }

    // schema v7: the synth_wide section — wide vs row group timings plus
    // the adaptive snapshot yield (a budget fraction, so (0, 1])
    if schema >= 7.0 {
        match root.get("synth_wide") {
            None => c.fail("missing 'synth_wide' object (schema v7)".into()),
            Some(sw) => {
                for key in ["ns_per_group_on", "ns_per_group_off"] {
                    match sw.get(key).and_then(Value::as_f64) {
                        None => c.fail(format!("synth_wide missing numeric key '{key}'")),
                        Some(v) if !(v > 0.0 && v.is_finite()) => {
                            c.fail(format!("synth_wide.{key} = {v}, expected > 0"))
                        }
                        Some(_) => {}
                    }
                }
                match sw.get("adaptive_snapshot_yield").and_then(Value::as_f64) {
                    None => {
                        c.fail("synth_wide missing numeric key 'adaptive_snapshot_yield'".into())
                    }
                    Some(y) if !(y > 0.0 && y <= 1.0) => c.fail(format!(
                        "synth_wide.adaptive_snapshot_yield = {y}, expected in (0, 1]"
                    )),
                    Some(_) => {}
                }
            }
        }
    }

    // schema v8: the wide-batching / response-table gates — these are
    // absolute (no baseline needed): the calibrated wide default must
    // win, the response memo must absorb steady-state presses, the
    // steady-state group must stay near allocation-free, and a full
    // artifact must clear the 8-stream throughput floor
    if schema >= 8.0 {
        let quick = root.get("quick").and_then(Value::as_bool);
        if quick.is_none() {
            c.fail("missing boolean key 'quick' (schema v8)".into());
        }
        match root.get("calibration") {
            None => c.fail("missing 'calibration' object (schema v8)".into()),
            Some(cal) => {
                for key in ["chunk_rows", "ns_per_row_wide", "ns_per_row_narrow"] {
                    if cal.get(key).and_then(Value::as_f64).is_none() {
                        c.fail(format!("calibration missing numeric key '{key}'"));
                    }
                }
                for key in ["wide_default", "probed"] {
                    if cal.get(key).and_then(Value::as_bool).is_none() {
                        c.fail(format!("calibration missing boolean key '{key}'"));
                    }
                }
            }
        }
        match root.get("response_table_hit_rate").and_then(Value::as_f64) {
            None => c.fail("missing numeric key 'response_table_hit_rate' (schema v8)".into()),
            Some(r) if r < regression::MIN_RESPONSE_TABLE_HIT_RATE => c.fail(format!(
                "response_table_hit_rate = {r:.4} below the {:.2} floor — steady-state \
                 presses are rebuilding press-invariant sounding tables",
                regression::MIN_RESPONSE_TABLE_HIT_RATE
            )),
            _ => {}
        }
        match root.get("cross_stream_batch") {
            None => c.fail("missing 'cross_stream_batch' object (schema v8)".into()),
            Some(cs) => {
                for key in ["batch_presses", "chunk_rows"] {
                    if cs.get(key).and_then(Value::as_f64).is_none() {
                        c.fail(format!("cross_stream_batch missing numeric key '{key}'"));
                    }
                }
                match cs.get("occupancy").and_then(Value::as_f64) {
                    None => c.fail("cross_stream_batch missing numeric key 'occupancy'".into()),
                    Some(o) if !(0.0..=1.0).contains(&o) => c.fail(format!(
                        "cross_stream_batch.occupancy = {o}, expected in [0, 1]"
                    )),
                    _ => {}
                }
            }
        }
        if let Some(v) = root.get("allocs_per_group").and_then(Value::as_f64) {
            if v > regression::MAX_ALLOCS_PER_GROUP {
                c.fail(format!(
                    "allocs_per_group = {v:.1} exceeds the {:.0} ceiling",
                    regression::MAX_ALLOCS_PER_GROUP
                ));
            }
        }
        let sw = |key: &str| {
            root.get("synth_wide")
                .and_then(|sw| sw.get(key))
                .and_then(Value::as_f64)
        };
        if let (Some(on), Some(off)) = (sw("ns_per_group_on"), sw("ns_per_group_off")) {
            if off > 0.0 && on / off > regression::MAX_WIDE_ON_OFF_RATIO {
                c.fail(format!(
                    "synth_wide.ns_per_group_on = {on:.0} is {:.2}× ns_per_group_off = \
                     {off:.0} (limit {:.2}×) — wide synthesis is enabled but losing",
                    on / off,
                    regression::MAX_WIDE_ON_OFF_RATIO
                ));
            }
        }
        if quick == Some(false) {
            match root
                .get("throughput")
                .and_then(Value::as_array)
                .and_then(|points| {
                    points
                        .iter()
                        .find(|p| p.get("streams").and_then(Value::as_f64) == Some(8.0))
                })
                .and_then(|p| p.get("presses_per_sec"))
                .and_then(Value::as_f64)
            {
                None => c.fail("full v8 artifact lacks the 8-stream throughput point".into()),
                Some(pps) if pps < regression::MIN_THROUGHPUT_8_STREAMS_PPS => c.fail(format!(
                    "throughput[streams=8].presses_per_sec = {pps:.0} below the {:.0} floor",
                    regression::MIN_THROUGHPUT_8_STREAMS_PPS
                )),
                _ => {}
            }
        }
    }

    // schema v9: spectral direct line synthesis + the observability
    // measurement fixes. The spectral section carries its own absolute
    // perf gates on full artifacts (no baseline needed): the whole point
    // of skipping the waveform is a sub-millisecond sequential press and
    // an 8-stream rate an order of magnitude above the time-domain
    // floor. The metrics-series count must now reflect the instrumented
    // batch run's per-stream series, not the single-stream press loop.
    if schema >= 9.0 {
        let quick = root.get("quick").and_then(Value::as_bool);
        c.number(root, "overhead_blocks", true);
        match root.get("synth_spectral") {
            None => c.fail("missing 'synth_spectral' object (schema v9)".into()),
            Some(ss) => {
                for key in regression::SYNTH_SPECTRAL_METRICS {
                    match ss.get(key).and_then(Value::as_f64) {
                        None => c.fail(format!("synth_spectral missing numeric key '{key}'")),
                        Some(v) if !(v > 0.0 && v.is_finite()) => {
                            c.fail(format!("synth_spectral.{key} = {v}, expected > 0"))
                        }
                        Some(_) => {}
                    }
                }
                if quick == Some(false) {
                    if let Some(ns) = ss.get("ns_per_press").and_then(Value::as_f64) {
                        if ns > regression::MAX_SPECTRAL_NS_PER_PRESS {
                            c.fail(format!(
                                "synth_spectral.ns_per_press = {ns:.0} exceeds the \
                                 {:.0} ns ceiling — direct line synthesis is not \
                                 delivering its sub-millisecond press",
                                regression::MAX_SPECTRAL_NS_PER_PRESS
                            ));
                        }
                    }
                    if let Some(pps) = ss.get("presses_per_sec_8_streams").and_then(Value::as_f64) {
                        if pps < regression::MIN_SPECTRAL_THROUGHPUT_8_STREAMS_PPS {
                            c.fail(format!(
                                "synth_spectral.presses_per_sec_8_streams = {pps:.0} \
                                 below the {:.0} floor",
                                regression::MIN_SPECTRAL_THROUGHPUT_8_STREAMS_PPS
                            ));
                        }
                    }
                }
            }
        }
        let obs = |key: &str| {
            root.get("observability")
                .and_then(|o| o.get(key))
                .and_then(Value::as_f64)
        };
        match (obs("metrics_series"), obs("metrics_streams")) {
            (_, None) => {
                c.fail("observability missing numeric key 'metrics_streams' (schema v9)".into())
            }
            (Some(series), Some(streams)) if series < streams => c.fail(format!(
                "observability.metrics_series = {series:.0} below the stream count \
                 {streams:.0} — the registry harvest missed the batch run's \
                 per-stream series (the pre-v9 bug this field now gates)"
            )),
            _ => {}
        }
    }

    // schema v3: the batch-engine throughput section
    match root.get("throughput").and_then(Value::as_array) {
        None => c.fail("missing 'throughput' array (batch engine section)".into()),
        Some(points) => {
            for want in regression::REQUIRED_STREAM_POINTS {
                let Some(point) = points
                    .iter()
                    .find(|p| p.get("streams").and_then(Value::as_f64) == Some(want as f64))
                else {
                    c.fail(format!("'throughput' lacks the {want}-stream point"));
                    continue;
                };
                for key in ["workers", "presses_per_sec", "p95_stream_latency_ns"] {
                    if point.get(key).and_then(Value::as_f64).is_none() {
                        c.fail(format!("throughput[streams={want}] missing '{key}'"));
                    }
                }
            }
        }
    }
    c.errors
}

/// Validates the standalone `CALIBRATION_synth.json` probe verdict:
/// structure plus the v2 provenance pair (`schema_version` + `git_rev`)
/// the `--revs` / `--expect-rev` staleness gates key on. A committed
/// calibration without provenance can silently pin a chunk width probed
/// on a machine (and code) nobody remembers.
fn check_calibration(file: &str, root: &Value) -> Vec<String> {
    let mut c = Checker::new(file);
    match root.get("schema_version").and_then(Value::as_f64) {
        None => c.fail("missing numeric key 'schema_version' (calibration v2)".into()),
        Some(v) if v < 2.0 => c.fail(format!(
            "schema_version = {v} predates the provenance stamp — regenerate \
             CALIBRATION_synth.json with bench_json"
        )),
        Some(_) => {}
    }
    c.string(root, "git_rev");
    for key in ["chunk_rows", "ns_per_row_wide", "ns_per_row_narrow"] {
        c.number(root, key, true);
    }
    for key in ["wide_default", "probed"] {
        if root.get(key).and_then(Value::as_bool).is_none() {
            c.fail(format!("missing boolean key '{key}'"));
        }
    }
    c.errors
}

fn check_health(file: &str, root: &Value) -> Vec<String> {
    let mut c = Checker::new(file);
    c.number(root, "schema_version", true);

    // yield and lock state must be present (null only when the relevant
    // subsystem never ran; the CLI `health` command runs them all)
    for key in [
        "snapshot_yield",
        "adaptive_snapshot_yield",
        "estimator_reference_locked",
    ] {
        if root.get(key).is_none() {
            c.fail(format!("missing key '{key}'"));
        }
    }

    // schema v3: response-table / wide-batching gauges (null when the
    // relevant path never ran, but the keys must exist)
    if root
        .get("schema_version")
        .and_then(Value::as_f64)
        .unwrap_or(0.0)
        >= 3.0
    {
        for key in [
            "response_table_hit_rate",
            "synth_chunk_rows",
            "cross_stream_occupancy",
        ] {
            if root.get(key).is_none() {
                c.fail(format!("missing key '{key}' (health schema v3)"));
            }
        }
    }

    // per-stage latency percentiles
    match root.get("stages").and_then(Value::as_array) {
        None => c.fail("missing 'stages' array".into()),
        Some([]) => c.fail("'stages' is empty — no spans were recorded".into()),
        Some(stages) => {
            for stage in stages {
                c.string(stage, "name");
                for key in ["count", "p50_ns", "p95_ns", "max_ns", "total_ns"] {
                    c.number(stage, key, false);
                }
            }
        }
    }

    // counters and gauges objects
    for key in ["counters", "gauges"] {
        if !matches!(root.get(key), Some(Value::Obj(_))) {
            c.fail(format!("missing object key '{key}'"));
        }
    }
    if root.get("observations").and_then(Value::as_array).is_none() {
        c.fail("missing 'observations' array".into());
    }
    c.errors
}

/// Reads and parses one JSON artifact.
fn load(path: &str) -> Result<Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: unreadable: {e}"))?;
    parse(&text).map_err(|e| format!("{path}: invalid JSON: {e}"))
}

/// Runs a check over the parsed file, accumulating violations.
fn check_file(
    path: &str,
    errors: &mut Vec<String>,
    check: impl FnOnce(&str, &Value) -> Vec<String>,
) {
    match std::fs::read_to_string(path) {
        Err(e) => errors.push(format!("{path}: unreadable: {e}")),
        Ok(text) => match parse(&text) {
            Err(e) => errors.push(format!("{path}: invalid JSON: {e}")),
            Ok(root) => errors.extend(check(path, &root)),
        },
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    let arg = |name: &str| {
        argv.iter()
            .position(|a| a == name)
            .and_then(|i| argv.get(i + 1).cloned())
    };
    let bench = arg("--bench");
    let health = arg("--health");
    let baseline = arg("--baseline");
    let trace = arg("--trace");
    let metrics = arg("--metrics");
    let calibration = arg("--calibration");
    let revs = arg("--revs");
    let expect_rev = arg("--expect-rev");

    // determinism mode: `--diff A B` compares two artifacts produced by
    // the same build under different worker counts / SIMD backends and
    // fails on any difference outside timing-derived keys
    if let Some(i) = argv.iter().position(|a| a == "--diff") {
        let (Some(a_path), Some(b_path)) = (argv.get(i + 1), argv.get(i + 2)) else {
            eprintln!("--diff requires two file arguments");
            std::process::exit(2);
        };
        match (load(a_path), load(b_path)) {
            (Err(e), _) | (_, Err(e)) => {
                eprintln!("FAIL {e}");
                std::process::exit(1);
            }
            (Ok(a), Ok(b)) => {
                let diffs = regression::diff_ignoring_timing(&a, &b);
                if diffs.is_empty() {
                    println!("{a_path} vs {b_path}: identical modulo timing keys");
                    std::process::exit(0);
                }
                for d in &diffs {
                    eprintln!("FAIL {a_path} vs {b_path}: {d}");
                }
                std::process::exit(1);
            }
        }
    }

    if bench.is_none()
        && health.is_none()
        && trace.is_none()
        && metrics.is_none()
        && calibration.is_none()
    {
        eprintln!(
            "usage: check_artifacts [--bench BENCH_pipeline.json] [--health health.json] \
             [--trace trace.json] [--metrics metrics.prom] \
             [--calibration CALIBRATION_synth.json] \
             [--baseline BENCH_baseline.json] [--revs git-log.txt] \
             [--expect-rev SHA] | --diff A.json B.json"
        );
        std::process::exit(2);
    }
    if baseline.is_some() && bench.is_none() {
        eprintln!("--baseline requires --bench");
        std::process::exit(2);
    }
    if revs.is_some() && baseline.is_none() && bench.is_none() && calibration.is_none() {
        eprintln!("--revs requires --bench, --baseline, or --calibration");
        std::process::exit(2);
    }
    if expect_rev.is_some() && bench.is_none() && calibration.is_none() {
        eprintln!("--expect-rev requires --bench or --calibration");
        std::process::exit(2);
    }

    let mut errors = Vec::new();
    if let Some(path) = &bench {
        check_file(path, &mut errors, check_bench);
    }
    if let Some(path) = &health {
        check_file(path, &mut errors, check_health);
    }
    if let Some(path) = &calibration {
        check_file(path, &mut errors, check_calibration);
    }
    if let Some(path) = &trace {
        check_file(path, &mut errors, |file, root| {
            observability::validate_chrome_trace(root)
                .into_iter()
                .map(|v| format!("{file}: {v}"))
                .collect()
        });
    }
    if let Some(path) = &metrics {
        // Prometheus exposition is not JSON — read and validate as text
        match std::fs::read_to_string(path) {
            Err(e) => errors.push(format!("{path}: unreadable: {e}")),
            Ok(text) => errors.extend(
                observability::validate_prometheus(&text)
                    .into_iter()
                    .map(|v| format!("{path}: {v}")),
            ),
        }
    }

    // provenance gate: the committed artifact's git_rev must name a
    // commit from the provided `git log` listing (one rev per line,
    // short or full), catching a baseline that went stale because nobody
    // regenerated it after landing perf-relevant changes. Applies to the
    // --baseline artifact when given (that is the committed one), else
    // to --bench.
    if let Some(revs_path) = &revs {
        // the committed bench baseline and the committed calibration
        // verdict both go stale the same way; each provided artifact's
        // git_rev must name a commit from the listing
        let targets: Vec<&String> = baseline
            .as_ref()
            .or(bench.as_ref())
            .into_iter()
            .chain(calibration.as_ref())
            .collect();
        match std::fs::read_to_string(revs_path) {
            Err(e) => errors.push(format!("{revs_path}: unreadable: {e}")),
            Ok(revlist) => {
                for target in targets {
                    match load(target) {
                        Err(e) => errors.push(e),
                        Ok(doc) => match doc.get("git_rev").and_then(Value::as_str) {
                            None | Some("") => errors
                                .push(format!("{target}: missing 'git_rev' for the --revs check")),
                            Some(rev) => {
                                let known = revlist
                                    .split_whitespace()
                                    .any(|r| r.starts_with(rev) || rev.starts_with(r));
                                if !known {
                                    errors.push(format!(
                                        "{target}: git_rev {rev:?} does not match any commit in \
                                         {revs_path} — the committed artifact is stale; \
                                         regenerate it with bench_json and commit the result"
                                    ));
                                }
                            }
                        },
                    }
                }
            }
        }
    }

    // build-provenance gate: a freshly generated --bench artifact must be
    // stamped with the rev it was built from. CI passes the checkout SHA;
    // a mismatch means the bench binary was built before HEAD moved (the
    // stale-GIT_REV bug the build script's rerun-if-changed now prevents)
    if let Some(want) = &expect_rev {
        // a freshly generated calibration carries the same stamp as the
        // bench artifact it was written alongside — check both
        for fresh_path in bench.iter().chain(calibration.iter()) {
            match load(fresh_path) {
                Err(e) => errors.push(e),
                Ok(doc) => match doc.get("git_rev").and_then(Value::as_str) {
                    None | Some("") => {
                        errors.push(format!("{fresh_path}: missing 'git_rev' for --expect-rev"))
                    }
                    Some(rev) => {
                        if !(rev.starts_with(want.as_str()) || want.starts_with(rev)) {
                            errors.push(format!(
                                "{fresh_path}: git_rev {rev:?} does not match the expected \
                                 build rev {want:?} — the bench binary carries a stale stamp"
                            ));
                        }
                    }
                },
            }
        }
    }

    // perf-regression gate: fresh --bench vs committed --baseline
    if let (Some(base_path), Some(fresh_path)) = (&baseline, &bench) {
        match (load(base_path), load(fresh_path)) {
            (Err(e), _) | (_, Err(e)) => errors.push(e),
            (Ok(base), Ok(fresh)) => {
                let cmp = regression::compare(&base, &fresh);
                let table = cmp.markdown_table();
                println!("{table}");
                if let Ok(summary) = std::env::var("GITHUB_STEP_SUMMARY") {
                    use std::io::Write;
                    if let Ok(mut f) = std::fs::OpenOptions::new()
                        .create(true)
                        .append(true)
                        .open(&summary)
                    {
                        let _ = writeln!(f, "{table}");
                    }
                }
                for v in cmp.violations {
                    errors.push(format!("{fresh_path} vs {base_path}: {v}"));
                }
            }
        }
    }

    if errors.is_empty() {
        for path in [bench, health, trace, metrics, calibration]
            .into_iter()
            .flatten()
        {
            println!("{path}: OK");
        }
    } else {
        for e in &errors {
            eprintln!("FAIL {e}");
        }
        std::process::exit(1);
    }
}

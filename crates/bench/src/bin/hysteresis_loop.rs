//! Regenerates the hysteresis-loop extension experiment. Pass `--quick`
//! for fewer ramp steps.

fn main() {
    let quick = wiforce_bench::montecarlo::quick_mode();
    let report = wiforce_bench::experiments::hysteresis::run(quick);
    std::process::exit(if report.all_ok() { 0 } else { 1 });
}

//! Regenerates Fig. 14 (location-error CDFs at 900 MHz and 2.4 GHz).
//! Pass `--quick` for a fast smoke run.

fn main() {
    let quick = wiforce_bench::montecarlo::quick_mode();
    let (_, rep14) = wiforce_bench::experiments::fig13_14::run_figs(quick);
    std::process::exit(if rep14.all_ok() { 0 } else { 1 });
}

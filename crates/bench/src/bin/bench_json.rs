//! Machine-readable pipeline benchmark: times the end-to-end press
//! pipeline and the snapshot engine under a counting allocator, then
//! writes `BENCH_pipeline.json` at the repo root.
//!
//! Reported metrics:
//! - `presses_per_sec` / `ns_per_press` — full `measure_press` round trips
//!   (sounding, fault injection, harmonic extraction, model inversion)
//!   with the telemetry recorder disabled;
//! - `ns_per_press_telemetry_on` / `telemetry_overhead_pct` — the same
//!   loop with the recorder enabled, quantifying the cost of spans,
//!   counters, and histograms on the hot path;
//! - `ns_per_group` — one 625×64 phase group synthesized through
//!   `run_snapshots_into` into a reused [`wiforce_dsp::SnapshotMatrix`];
//! - `allocs_per_group` — heap allocations per steady-state group (the
//!   flat snapshot engine's target is 0);
//! - `throughput` — the multi-stream batch engine (`wiforce::batch`) at
//!   1/4/8 frequency-multiplexed streams: aggregate `presses_per_sec`
//!   and `p95_stream_latency_ns` per point. Because every stream of a
//!   reader rides the *same* channel sounding, aggregate throughput must
//!   scale superlinearly in wall-clock terms (≥ 3× at 8 streams vs 1) —
//!   `check_artifacts` gates on this;
//! - `schema_version` / `git_rev` — artifact provenance for CI checks.
//!
//! Pass `--quick` for fewer iterations.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use wiforce::batch::{run_batch, BatchConfig, ReaderSpec};
use wiforce::pipeline::{Simulation, TagClock};
use wiforce_dsp::SnapshotMatrix;
use wiforce_telemetry::json::JsonWriter;

/// Version of the BENCH_pipeline.json layout, bumped on breaking changes.
/// v3 added the `throughput` batch-engine section.
const BENCH_SCHEMA_VERSION: u32 = 3;

/// A pass-through allocator that counts every allocation, so the bench
/// can assert the steady-state snapshot loop is allocation-free.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_count() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// Times `press_iters` presses, returning ns per press.
fn time_presses(
    sim: &Simulation,
    model: &wiforce::calib::SensorModel,
    rng: &mut StdRng,
    press_iters: usize,
) -> f64 {
    let t0 = Instant::now();
    for _ in 0..press_iters {
        sim.measure_press(model, 4.0, 0.040, rng).expect("press");
    }
    t0.elapsed().as_nanos() as f64 / press_iters as f64
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let press_iters = if quick { 5 } else { 25 };
    let group_iters = if quick { 10 } else { 50 };

    // --- end-to-end presses, telemetry off ----------------------------
    let mut sim = Simulation::paper_default(2.4e9);
    sim.reference_groups = 1;
    sim.measure_groups = 1;
    let model = sim.vna_calibration().expect("calibration");
    let mut rng = StdRng::seed_from_u64(3);
    // warm up thread-local FFT plans and scratch buffers
    sim.measure_press(&model, 4.0, 0.040, &mut rng)
        .expect("warmup press");

    let ns_per_press = time_presses(&sim, &model, &mut rng, press_iters);
    let presses_per_sec = 1e9 / ns_per_press;

    // --- same loop, telemetry on --------------------------------------
    wiforce_telemetry::set_enabled(true);
    wiforce_telemetry::reset();
    let ns_per_press_on = time_presses(&sim, &model, &mut rng, press_iters);
    wiforce_telemetry::set_enabled(false);
    let telemetry = wiforce_telemetry::take();
    let overhead_pct = 100.0 * (ns_per_press_on - ns_per_press) / ns_per_press;

    // --- steady-state snapshot groups ---------------------------------
    let sim = Simulation::paper_default(2.4e9);
    let mut rng = StdRng::seed_from_u64(7);
    let mut clock = TagClock::new(&mut rng);
    let mut stream = SnapshotMatrix::default();
    // warm up: first fill grows the buffer to capacity once
    sim.run_snapshots_into(None, 1, &mut clock, &mut rng, &mut stream);
    stream.clear();

    let allocs_before = alloc_count();
    let t0 = Instant::now();
    for _ in 0..group_iters {
        stream.clear();
        sim.run_snapshots_into(None, 1, &mut clock, &mut rng, &mut stream);
    }
    let group_elapsed = t0.elapsed();
    let allocs = alloc_count() - allocs_before;
    let ns_per_group = group_elapsed.as_nanos() as f64 / group_iters as f64;
    let allocs_per_group = allocs as f64 / group_iters as f64;

    // --- multi-stream batch throughput --------------------------------
    // one reader, N frequency-multiplexed tags sharing its snapshots:
    // the expensive channel sounding amortizes across streams, so
    // aggregate presses/sec grows near-linearly in N on any core count
    let sim = Simulation::paper_default(2.4e9);
    let batch_model = std::sync::Arc::new(sim.vna_calibration().expect("calibration"));
    let batch_presses = if quick { 2 } else { 4 };
    let mut throughput = Vec::new();
    for &n_streams in &[1usize, 4, 8] {
        let spec = ReaderSpec::frequency_multiplexed(n_streams, batch_presses, 17, &sim.group)
            .expect("frequency allocation");
        let cfg = BatchConfig::wiforce(n_streams);
        let report = run_batch(&sim, &batch_model, std::slice::from_ref(&spec), &cfg)
            .expect("batch throughput run");
        throughput.push((
            n_streams,
            cfg.workers,
            report.presses_per_sec(),
            report.p95_stream_latency_ns(),
        ));
    }

    let mut w = JsonWriter::new();
    w.begin_object();
    w.integer("schema_version", u64::from(BENCH_SCHEMA_VERSION));
    w.string("git_rev", env!("GIT_REV"));
    w.integer("press_iters", press_iters as u64);
    w.number("ns_per_press", ns_per_press.round());
    w.number("presses_per_sec", (presses_per_sec * 100.0).round() / 100.0);
    w.number("ns_per_press_telemetry_on", ns_per_press_on.round());
    w.number(
        "telemetry_overhead_pct",
        (overhead_pct * 100.0).round() / 100.0,
    );
    w.integer(
        "telemetry_spans_recorded",
        telemetry.spans.values().map(|s| s.count).sum::<u64>(),
    );
    w.integer("group_iters", group_iters as u64);
    w.number("ns_per_group", ns_per_group.round());
    w.number(
        "allocs_per_group",
        (allocs_per_group * 100.0).round() / 100.0,
    );
    w.begin_array_key("throughput");
    for &(streams, workers, pps, p95) in &throughput {
        w.begin_object();
        w.integer("streams", streams as u64);
        w.integer("workers", workers as u64);
        w.number("presses_per_sec", (pps * 100.0).round() / 100.0);
        w.integer("p95_stream_latency_ns", p95);
        w.end_object();
    }
    w.end_array();
    w.end_object();
    let json = w.finish();

    let path = wiforce_bench::experiments::repo_root().join("BENCH_pipeline.json");
    std::fs::write(&path, &json).expect("write BENCH_pipeline.json");
    println!("{json}");
    println!("wrote {}", path.display());
}

//! Machine-readable pipeline benchmark: times the end-to-end press
//! pipeline and the snapshot engine under a counting allocator, then
//! writes `BENCH_pipeline.json` at the repo root.
//!
//! Reported metrics:
//! - `presses_per_sec` / `ns_per_press` — full `measure_press` round trips
//!   (sounding, fault injection, harmonic extraction, model inversion);
//! - `ns_per_group` — one 625×64 phase group synthesized through
//!   `run_snapshots_into` into a reused [`wiforce_dsp::SnapshotMatrix`];
//! - `allocs_per_group` — heap allocations per steady-state group (the
//!   flat snapshot engine's target is 0).
//!
//! Pass `--quick` for fewer iterations.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use wiforce::pipeline::{Simulation, TagClock};
use wiforce_dsp::SnapshotMatrix;

/// A pass-through allocator that counts every allocation, so the bench
/// can assert the steady-state snapshot loop is allocation-free.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_count() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let press_iters = if quick { 5 } else { 25 };
    let group_iters = if quick { 10 } else { 50 };

    // --- end-to-end presses -------------------------------------------
    let mut sim = Simulation::paper_default(2.4e9);
    sim.reference_groups = 1;
    sim.measure_groups = 1;
    let model = sim.vna_calibration().expect("calibration");
    let mut rng = StdRng::seed_from_u64(3);
    // warm up thread-local FFT plans and scratch buffers
    sim.measure_press(&model, 4.0, 0.040, &mut rng)
        .expect("warmup press");

    let t0 = Instant::now();
    for _ in 0..press_iters {
        sim.measure_press(&model, 4.0, 0.040, &mut rng)
            .expect("press");
    }
    let press_elapsed = t0.elapsed();
    let ns_per_press = press_elapsed.as_nanos() as f64 / press_iters as f64;
    let presses_per_sec = 1e9 / ns_per_press;

    // --- steady-state snapshot groups ---------------------------------
    let sim = Simulation::paper_default(2.4e9);
    let mut rng = StdRng::seed_from_u64(7);
    let mut clock = TagClock::new(&mut rng);
    let mut stream = SnapshotMatrix::default();
    // warm up: first fill grows the buffer to capacity once
    sim.run_snapshots_into(None, 1, &mut clock, &mut rng, &mut stream);
    stream.clear();

    let allocs_before = alloc_count();
    let t0 = Instant::now();
    for _ in 0..group_iters {
        stream.clear();
        sim.run_snapshots_into(None, 1, &mut clock, &mut rng, &mut stream);
    }
    let group_elapsed = t0.elapsed();
    let allocs = alloc_count() - allocs_before;
    let ns_per_group = group_elapsed.as_nanos() as f64 / group_iters as f64;
    let allocs_per_group = allocs as f64 / group_iters as f64;

    let json = format!(
        "{{\n  \"press_iters\": {press_iters},\n  \"ns_per_press\": {ns_per_press:.0},\n  \
         \"presses_per_sec\": {presses_per_sec:.2},\n  \"group_iters\": {group_iters},\n  \
         \"ns_per_group\": {ns_per_group:.0},\n  \"allocs_per_group\": {allocs_per_group:.2}\n}}\n"
    );
    let path = wiforce_bench::experiments::repo_root().join("BENCH_pipeline.json");
    std::fs::write(&path, &json).expect("write BENCH_pipeline.json");
    println!("{json}");
    println!("wrote {}", path.display());
}

//! Machine-readable pipeline benchmark: times the end-to-end press
//! pipeline and the snapshot engine under a counting allocator, then
//! writes `BENCH_pipeline.json` at the repo root.
//!
//! Reported metrics:
//! - `presses_per_sec` / `ns_per_press` — full `measure_press` round trips
//!   (sounding, fault injection, harmonic extraction, model inversion)
//!   with the telemetry recorder disabled;
//! - `ns_per_press_telemetry_on` / `telemetry_overhead_pct` — the same
//!   loop with the recorder enabled, quantifying the cost of spans,
//!   counters, and histograms on the hot path;
//! - `ns_per_group` — one 625×64 phase group synthesized through the
//!   sequential `run_snapshots_into` reference path into a reused
//!   [`wiforce_dsp::SnapshotMatrix`];
//! - `ns_per_group_parallel` / `synth_workers` — the same group through
//!   the counter-addressed parallel path (`run_snapshots_counter_into`)
//!   at the session's worker count (`WIFORCE_SYNTH_WORKERS`);
//! - `allocs_per_group` — heap allocations per steady-state group on the
//!   sequential path (the flat snapshot engine's target is 0);
//! - `throughput` — the multi-stream batch engine (`wiforce::batch`) at
//!   1/4/8 frequency-multiplexed streams: aggregate `presses_per_sec`
//!   and `p95_stream_latency_ns` per point. Because every stream of a
//!   reader rides the *same* channel sounding, aggregate throughput must
//!   scale superlinearly in wall-clock terms (≥ 2.5× at 8 streams vs 1) —
//!   `check_artifacts` gates on this;
//! - `observability` — trace-ring totals from the telemetry-on loop
//!   (events captured, ring-overflow drops, configured ring capacity)
//!   plus the metrics-registry series count; the on-blocks run with the
//!   ring and registry enabled, so the overhead gate covers them;
//! - `stage_breakdown` — per-stage ns-per-press from the telemetry-on
//!   loop's spans (synth = snapshot synthesis incl. sounding + frontend,
//!   spectrum = harmonic extraction, estimator = model inversion,
//!   tracker = Kalman smoothing) plus the channel-cache hit rate, so a
//!   perf regression names the stage that caused it;
//! - `schema_version` / `git_rev` — artifact provenance for CI checks.
//!
//! Pass `--quick` for fewer iterations.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use wiforce::batch::{run_batch, BatchConfig, ReaderSpec};
use wiforce::pipeline::{PressNoise, Simulation, TagClock};
use wiforce::tracking::{Tracker, TrackerConfig};
use wiforce_dsp::SnapshotMatrix;
use wiforce_telemetry::json::JsonWriter;

/// Version of the BENCH_pipeline.json layout, bumped on breaking changes.
/// v3 added the `throughput` batch-engine section; v4 the
/// `stage_breakdown` section (per-stage ns-per-press + cache hit rate);
/// v5 the counter-synthesis fields: `synth_workers` (worker threads the
/// press loop ran with), `ns_per_group_parallel` (one phase group through
/// the parallel counter path), and `telemetry_overhead_raw_pct` (the
/// signed measured ratio behind the floored `telemetry_overhead_pct`);
/// v6 the `observability` section (trace-ring event/drop totals, ring
/// capacity, metrics-registry series count) — and, significantly, the
/// telemetry-on blocks now run with the trace ring *and* the metrics
/// registry enabled, so `telemetry_overhead_pct` gates the full
/// observability stack, not just the recorder;
/// v7 the `synth_wide` section: the counter group timed with the SoA
/// wide path forced on vs off (`ns_per_group_on` / `ns_per_group_off`,
/// bitwise-identical output either way) plus
/// `adaptive_snapshot_yield` — the fraction of the snapshot budget an
/// SNR-targeted adaptive press actually synthesized;
/// v8 the wide-batching / response-table fields: a top-level `quick`
/// flag (gates relax on quick artifacts), the `calibration` object (the
/// one-shot SoA chunk-width probe's verdict, also written to
/// `CALIBRATION_synth.json`), `response_table_hit_rate` (steady-state
/// per-scene sounding-response memo hit rate under zeroed patch jitter),
/// and the `cross_stream_batch` object (superposition batch occupancy +
/// chunk width from an untimed observed run); throughput points now run
/// with `cross_stream` superposition on and record it, and the batch
/// press count is 8 per stream in full mode (2 quick) so the steady
/// state dominates the fixed per-run cost;
/// v9 the spectral-synthesis fields: the `synth_spectral` object times
/// the direct line-synthesis path (`WIFORCE_SYNTH_SPECTRAL`) that never
/// materializes time-domain snapshots — `ns_per_press` /
/// `presses_per_sec` from a sequential press loop (gated < 1 ms/press on
/// full artifacts) and `presses_per_sec_8_streams` /
/// `p95_stream_latency_ns` from an 8-stream spectral batch run (gated
/// ≥ 5000 presses/sec on full artifacts). Two measurement fixes ride
/// along: `observability.metrics_series` is now harvested *after* the
/// instrumented 8-stream observed batch run (the registry's per-stream
/// series were previously missed, freezing the field at 1) together with
/// the new `observability.metrics_streams` it is gated against, and the
/// paired off/on overhead blocks rise from 7 to 11 in full mode (the
/// count is recorded as `overhead_blocks`) so the median behind
/// `telemetry_overhead_raw_pct` rests on more ratio samples.
const BENCH_SCHEMA_VERSION: u32 = 9;

/// A pass-through allocator that counts every allocation, so the bench
/// can assert the steady-state snapshot loop is allocation-free.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_count() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// Times `press_iters` presses (each smoothed through a [`Tracker`], so
/// the stage breakdown covers the full reading path), returning ns per
/// press.
fn time_presses(
    sim: &Simulation,
    model: &wiforce::calib::SensorModel,
    rng: &mut StdRng,
    press_iters: usize,
) -> f64 {
    let mut tracker = Tracker::new(TrackerConfig::wiforce());
    let t0 = Instant::now();
    for _ in 0..press_iters {
        let reading = sim.measure_press(model, 4.0, 0.040, rng).expect("press");
        let _span = wiforce_telemetry::span!("bench.tracker");
        tracker.update(&reading);
    }
    t0.elapsed().as_nanos() as f64 / press_iters as f64
}

/// Sums the telemetry-on loop's span totals whose path leaf is `leaf`,
/// normalised to ns per press.
fn stage_ns_per_press(
    telemetry: &wiforce_telemetry::TelemetrySnapshot,
    leaf: &str,
    press_iters: usize,
) -> f64 {
    telemetry
        .spans
        .iter()
        .filter(|(path, _)| path.rsplit('/').next() == Some(leaf))
        .map(|(_, h)| h.sum)
        .sum::<f64>()
        / press_iters as f64
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    // 11 paired off/on blocks in full mode: the gated overhead is the
    // median of the per-pair ratios, and more pairs both tighten it and
    // let single-block scheduler spikes fall outside the middle
    let blocks = if quick { 3 } else { 11 };
    let block_iters = if quick { 3 } else { 5 };
    let press_iters = blocks * block_iters;
    let group_iters = if quick { 10 } else { 50 };

    // --- end-to-end presses, telemetry off vs on ----------------------
    // One long loop per mode is at the mercy of scheduler and frequency
    // jitter (single 25-press runs swing ±15% on a busy box), far more
    // than the few-percent overhead being gated. So the two modes run as
    // alternating short blocks: the headline `ns_per_press` is the best
    // off-block (jitter is strictly additive, so the minimum is the
    // honest cost), and the gated overhead is the *median* of the
    // per-pair on/off ratios — each ratio compares adjacent blocks under
    // near-identical machine conditions, so slow drift cancels and a
    // single noisy block cannot swing the median.
    let mut sim = Simulation::paper_default(2.4e9);
    sim.reference_groups = 1;
    sim.measure_groups = 1;
    let model = sim.vna_calibration().expect("calibration");
    let mut rng = StdRng::seed_from_u64(3);
    // warm up thread-local FFT plans, scratch buffers, and the TSC
    // calibration the telemetry-on stage clocks convert through
    sim.measure_press(&model, 4.0, 0.040, &mut rng)
        .expect("warmup press");
    wiforce_telemetry::fastclock::ns_per_tick();

    wiforce_telemetry::reset();
    wiforce_telemetry::trace::reset();
    wiforce_telemetry::metrics::reset();
    let mut ns_per_press = f64::INFINITY;
    let mut ns_per_press_on = f64::INFINITY;
    let mut ratios = Vec::with_capacity(blocks);
    let mut trace_events = 0u64;
    let mut trace_dropped = 0u64;
    for _ in 0..blocks {
        let off = time_presses(&sim, &model, &mut rng, block_iters);
        // the "on" cost covers the whole observability stack: recorder
        // spans/counters, SPSC trace-ring events, and metrics-registry
        // updates — the ≤12% gate holds with everything enabled
        wiforce_telemetry::set_enabled(true);
        wiforce_telemetry::trace::set_trace_enabled(true);
        wiforce_telemetry::metrics::set_metrics_enabled(true);
        let on = time_presses(&sim, &model, &mut rng, block_iters);
        wiforce_telemetry::set_enabled(false);
        wiforce_telemetry::trace::set_trace_enabled(false);
        wiforce_telemetry::metrics::set_metrics_enabled(false);
        // drain the rings between blocks so a long bench can't overflow
        // them; the drop counter is cumulative, so keep the latest
        let ring = wiforce_telemetry::trace::collect();
        trace_events += ring.total_events() as u64;
        trace_dropped = ring.dropped;
        ns_per_press = ns_per_press.min(off);
        ns_per_press_on = ns_per_press_on.min(on);
        ratios.push(on / off);
    }
    let telemetry = wiforce_telemetry::take();
    ratios.sort_by(f64::total_cmp);
    let presses_per_sec = 1e9 / ns_per_press;
    // the raw median ratio can dip below zero when block noise exceeds
    // the true overhead; report the signed measurement for diagnostics
    // but floor the headline (an overhead cannot be negative)
    let overhead_raw_pct = 100.0 * (ratios[ratios.len() / 2] - 1.0);
    let overhead_pct = overhead_raw_pct.max(0.0);

    // --- stage breakdown from the telemetry-on loop -------------------
    let synth_ns = stage_ns_per_press(&telemetry, "pipeline.run_snapshots", press_iters);
    let spectrum_ns = stage_ns_per_press(&telemetry, "harmonics.extract_lines", press_iters);
    let estimator_ns = stage_ns_per_press(&telemetry, "pipeline.model_invert", press_iters);
    let tracker_ns = stage_ns_per_press(&telemetry, "bench.tracker", press_iters);
    // cache stats live on the shared slot (not in telemetry, which must
    // stay deterministic across thread counts); totals cover the warmup
    // press (the single build) plus both timed loops
    let (cache_hits, cache_misses) = sim.channel_cache.stats();
    let cache_hit_rate = if cache_hits + cache_misses > 0 {
        cache_hits as f64 / (cache_hits + cache_misses) as f64
    } else {
        0.0
    };

    // --- steady-state snapshot groups ---------------------------------
    let sim = Simulation::paper_default(2.4e9);
    let mut rng = StdRng::seed_from_u64(7);
    let mut clock = TagClock::new(&mut rng);
    let mut stream = SnapshotMatrix::default();
    // warm up: first fill grows the buffer to capacity once
    sim.run_snapshots_into(None, 1, &mut clock, &mut rng, &mut stream);
    stream.clear();

    let allocs_before = alloc_count();
    let t0 = Instant::now();
    for _ in 0..group_iters {
        stream.clear();
        sim.run_snapshots_into(None, 1, &mut clock, &mut rng, &mut stream);
    }
    let group_elapsed = t0.elapsed();
    let allocs = alloc_count() - allocs_before;
    let ns_per_group = group_elapsed.as_nanos() as f64 / group_iters as f64;
    let allocs_per_group = allocs as f64 / group_iters as f64;

    // --- parallel counter-synthesis groups -----------------------------
    // the same steady-state group through the counter-addressed path at
    // the session's worker count (bit-identical output at any setting;
    // the wall time is what parallelism buys)
    let synth_workers = wiforce::parallel::default_workers();
    let mut rng = StdRng::seed_from_u64(7);
    let mut clock = TagClock::new(&mut rng);
    let mut noise = PressNoise::from_seed(0xBE7C);
    stream.clear();
    sim.run_snapshots_counter_into(None, 1, &mut clock, &mut noise, &mut stream);
    let t0 = Instant::now();
    for _ in 0..group_iters {
        stream.clear();
        sim.run_snapshots_counter_into(None, 1, &mut clock, &mut noise, &mut stream);
    }
    let ns_per_group_parallel = t0.elapsed().as_nanos() as f64 / group_iters as f64;

    // --- wide vs row counter synthesis ---------------------------------
    // the same counter group with the structure-of-arrays wide path
    // forced on vs off; the outputs are bitwise identical, so the delta
    // is purely what plane-major synthesis buys
    let mut wide_times = [0.0f64; 2];
    for (i, wide) in [true, false].into_iter().enumerate() {
        let mut sim_w = sim.clone();
        sim_w.synth_wide = Some(wide);
        let mut rng = StdRng::seed_from_u64(7);
        let mut clock = TagClock::new(&mut rng);
        let mut noise = PressNoise::from_seed(0xBE7C);
        stream.clear();
        sim_w.run_snapshots_counter_into(None, 1, &mut clock, &mut noise, &mut stream);
        let t0 = Instant::now();
        for _ in 0..group_iters {
            stream.clear();
            sim_w.run_snapshots_counter_into(None, 1, &mut clock, &mut noise, &mut stream);
        }
        wide_times[i] = t0.elapsed().as_nanos() as f64 / group_iters as f64;
    }
    let [ns_per_group_wide_on, ns_per_group_wide_off] = wide_times;

    // --- adaptive snapshot budget --------------------------------------
    // one SNR-targeted press with the recorder on: the yield gauge says
    // what fraction of the budget the adaptive path synthesized before
    // the extracted lines cleared the target (deterministic for a fixed
    // seed, so the determinism diff covers it)
    let mut sim_a = Simulation::paper_default(2.4e9);
    sim_a.reference_groups = 1;
    sim_a.measure_groups = 1;
    sim_a.adaptive = wiforce::pipeline::AdaptiveBudget::wiforce();
    let model_a = sim_a.vna_calibration().expect("calibration");
    let mut rng_a = StdRng::seed_from_u64(11);
    wiforce_telemetry::reset();
    wiforce_telemetry::set_enabled(true);
    sim_a
        .measure_press(&model_a, 4.0, 0.040, &mut rng_a)
        .expect("adaptive press");
    wiforce_telemetry::set_enabled(false);
    let adaptive_snapshot_yield = wiforce_telemetry::take()
        .gauges
        .get("pipeline.adaptive_snapshot_yield")
        .copied()
        .unwrap_or(1.0);

    // --- response-table steady state -----------------------------------
    // repeated presses at one (force, location) with patch jitter zeroed:
    // the warmup press populates the per-scene response memo, after which
    // every press gathers its prepared sounding tables instead of
    // recomputing them. The paper-default patch jitter is deliberately
    // zeroed — it uniquifies the contact per press, which the memo cannot
    // (and should not) absorb.
    let mut sim_r = Simulation::paper_default(2.4e9);
    sim_r.reference_groups = 1;
    sim_r.measure_groups = 1;
    sim_r.patch_position_jitter_m = 0.0;
    sim_r.patch_edge_jitter_m = 0.0;
    let model_r = sim_r.vna_calibration().expect("calibration");
    let mut rng_r = StdRng::seed_from_u64(19);
    sim_r
        .measure_press(&model_r, 4.0, 0.040, &mut rng_r)
        .expect("response-table warmup press");
    sim_r.channel_cache.reset_response_stats();
    for _ in 0..5 {
        sim_r
            .measure_press(&model_r, 4.0, 0.040, &mut rng_r)
            .expect("response-table press");
    }
    let (rt_hits, rt_misses) = sim_r.channel_cache.response_stats();
    let response_table_hit_rate = if rt_hits + rt_misses > 0 {
        rt_hits as f64 / (rt_hits + rt_misses) as f64
    } else {
        0.0
    };

    // --- spectral direct line synthesis --------------------------------
    // the same sequential press loop with spectral synthesis forced on:
    // the pipeline produces the two consumed harmonic lines directly
    // (deterministic response tables + noise by DFT unitarity at K bins),
    // so the 625×64 waveform and its extraction never happen. This is a
    // different noise realization than the time-domain paths, which is
    // why it is a separate gated section rather than the headline.
    let mut sim_s = Simulation::paper_default(2.4e9);
    sim_s.reference_groups = 1;
    sim_s.measure_groups = 1;
    sim_s.synth_spectral = Some(true);
    let model_s = sim_s.vna_calibration().expect("calibration");
    let mut rng_s = StdRng::seed_from_u64(3);
    sim_s
        .measure_press(&model_s, 4.0, 0.040, &mut rng_s)
        .expect("spectral warmup press");
    let mut ns_per_press_spectral = f64::INFINITY;
    for _ in 0..blocks {
        let t = time_presses(&sim_s, &model_s, &mut rng_s, block_iters);
        ns_per_press_spectral = ns_per_press_spectral.min(t);
    }
    let spectral_presses_per_sec = 1e9 / ns_per_press_spectral;

    // --- multi-stream batch throughput --------------------------------
    // one reader, N frequency-multiplexed tags sharing its snapshots:
    // the expensive channel sounding amortizes across streams, so
    // aggregate presses/sec grows near-linearly in N on any core count
    let sim = Simulation::paper_default(2.4e9);
    let batch_model = std::sync::Arc::new(sim.vna_calibration().expect("calibration"));
    let batch_presses = if quick { 2 } else { 8 };
    let mut throughput = Vec::new();
    for &n_streams in &[1usize, 4, 8] {
        let spec = ReaderSpec::frequency_multiplexed(n_streams, batch_presses, 17, &sim.group)
            .expect("frequency allocation");
        let cfg = BatchConfig {
            cross_stream: true,
            ..BatchConfig::wiforce(n_streams)
        };
        let mut best = (0.0f64, 0u64);
        // best-of-3: the ≥1200 presses/sec gate compares against machine
        // capability, not scheduler luck, and jitter is strictly additive
        for _ in 0..3 {
            let report = run_batch(&sim, &batch_model, std::slice::from_ref(&spec), &cfg)
                .expect("batch throughput run");
            if report.presses_per_sec() > best.0 {
                best = (report.presses_per_sec(), report.p95_stream_latency_ns());
            }
        }
        throughput.push((n_streams, cfg.workers, best.0, best.1));
    }

    // 8-stream batch with spectral synthesis on: the producer walks each
    // stream's state weights once per group and emits the two lines
    // directly, so the aggregate rate is gated an order of magnitude
    // above the time-domain floor on full artifacts
    let mut sim_sb = sim.clone();
    sim_sb.synth_spectral = Some(true);
    let spec = ReaderSpec::frequency_multiplexed(8, batch_presses, 17, &sim_sb.group)
        .expect("frequency allocation");
    let cfg = BatchConfig::wiforce(8);
    let mut spectral_best = (0.0f64, 0u64);
    for _ in 0..3 {
        let report = run_batch(&sim_sb, &batch_model, std::slice::from_ref(&spec), &cfg)
            .expect("spectral batch throughput run");
        if report.presses_per_sec() > spectral_best.0 {
            spectral_best = (report.presses_per_sec(), report.p95_stream_latency_ns());
        }
    }
    let (spectral_batch_pps, spectral_batch_p95) = spectral_best;

    // untimed observed re-run at the top stream count: the timed loops
    // keep telemetry off, so the cross-stream occupancy / chunk gauges —
    // and the metrics registry's per-stream series, whose count the
    // artifact reports — are harvested from one extra instrumented run
    wiforce_telemetry::reset();
    wiforce_telemetry::metrics::reset();
    wiforce_telemetry::metrics::set_metrics_enabled(true);
    wiforce_telemetry::set_enabled(true);
    let spec = ReaderSpec::frequency_multiplexed(8, batch_presses, 17, &sim.group)
        .expect("frequency allocation");
    let cfg = BatchConfig {
        cross_stream: true,
        ..BatchConfig::wiforce(8)
    };
    let observed = wiforce::batch::run_batch_observed(
        &sim,
        &batch_model,
        std::slice::from_ref(&spec),
        &cfg,
        None,
        None,
    )
    .expect("observed batch run");
    wiforce_telemetry::set_enabled(false);
    wiforce_telemetry::metrics::set_metrics_enabled(false);
    let _ = wiforce_telemetry::take();
    // the engine folds its per-stream counters into the registry at run
    // completion, so the series count reflects real batch observability
    // (one-plus series per stream), not the single-stream press loop
    let metrics_streams = 8u64;
    let metrics_series = wiforce_telemetry::metrics::snapshot().series_count() as u64;
    let cross_occupancy = observed
        .telemetry
        .gauges
        .get("batch.cross_stream_occupancy")
        .copied()
        .unwrap_or(0.0);
    let cross_chunk_rows = observed
        .telemetry
        .gauges
        .get("batch.cross_stream_chunk_rows")
        .copied()
        .unwrap_or(0.0);
    let cal = *wiforce::calibrate::calibration();

    let mut w = JsonWriter::new();
    w.begin_object();
    w.integer("schema_version", u64::from(BENCH_SCHEMA_VERSION));
    w.string("git_rev", env!("GIT_REV"));
    w.boolean("quick", quick);
    w.integer("press_iters", press_iters as u64);
    w.number("ns_per_press", ns_per_press.round());
    w.number("presses_per_sec", (presses_per_sec * 100.0).round() / 100.0);
    w.number("ns_per_press_telemetry_on", ns_per_press_on.round());
    w.number(
        "telemetry_overhead_pct",
        (overhead_pct * 100.0).round() / 100.0,
    );
    w.number(
        "telemetry_overhead_raw_pct",
        (overhead_raw_pct * 100.0).round() / 100.0,
    );
    w.integer("overhead_blocks", blocks as u64);
    w.integer(
        "telemetry_spans_recorded",
        telemetry.spans.values().map(|s| s.count).sum::<u64>(),
    );
    w.integer("synth_workers", synth_workers as u64);
    w.integer("group_iters", group_iters as u64);
    w.number("ns_per_group", ns_per_group.round());
    w.number("ns_per_group_parallel", ns_per_group_parallel.round());
    w.number(
        "allocs_per_group",
        (allocs_per_group * 100.0).round() / 100.0,
    );
    w.number(
        "response_table_hit_rate",
        (response_table_hit_rate * 10000.0).round() / 10000.0,
    );
    w.begin_object_key("calibration");
    w.boolean("wide_default", cal.wide_default);
    w.integer("chunk_rows", cal.chunk_rows as u64);
    w.number("ns_per_row_wide", cal.ns_per_row_wide.round());
    w.number("ns_per_row_narrow", cal.ns_per_row_narrow.round());
    w.boolean("probed", cal.probed);
    w.end_object();
    w.begin_object_key("cross_stream_batch");
    w.integer("batch_presses", batch_presses as u64);
    w.number("occupancy", (cross_occupancy * 10000.0).round() / 10000.0);
    w.integer("chunk_rows", cross_chunk_rows as u64);
    w.end_object();
    w.begin_object_key("synth_spectral");
    w.number("ns_per_press", ns_per_press_spectral.round());
    w.number(
        "presses_per_sec",
        (spectral_presses_per_sec * 100.0).round() / 100.0,
    );
    w.number(
        "presses_per_sec_8_streams",
        (spectral_batch_pps * 100.0).round() / 100.0,
    );
    w.integer("p95_stream_latency_ns", spectral_batch_p95);
    w.end_object();
    w.begin_object_key("synth_wide");
    w.number("ns_per_group_on", ns_per_group_wide_on.round());
    w.number("ns_per_group_off", ns_per_group_wide_off.round());
    w.number(
        "adaptive_snapshot_yield",
        (adaptive_snapshot_yield * 10000.0).round() / 10000.0,
    );
    w.end_object();
    w.begin_object_key("observability");
    w.integer("trace_events", trace_events);
    w.integer("trace_dropped", trace_dropped);
    w.integer(
        "trace_ring_capacity",
        wiforce_telemetry::trace::ring_capacity() as u64,
    );
    w.integer("metrics_series", metrics_series);
    w.integer("metrics_streams", metrics_streams);
    w.end_object();
    w.begin_object_key("stage_breakdown");
    w.number("synth_ns_per_press", synth_ns.round());
    w.number("spectrum_ns_per_press", spectrum_ns.round());
    w.number("estimator_ns_per_press", estimator_ns.round());
    w.number("tracker_ns_per_press", tracker_ns.round());
    w.number("cache_hit_rate", (cache_hit_rate * 1000.0).round() / 1000.0);
    w.end_object();
    w.begin_array_key("throughput");
    for &(streams, workers, pps, p95) in &throughput {
        w.begin_object();
        w.integer("streams", streams as u64);
        w.integer("workers", workers as u64);
        w.boolean("cross_stream", true);
        w.number("presses_per_sec", (pps * 100.0).round() / 100.0);
        w.integer("p95_stream_latency_ns", p95);
        w.end_object();
    }
    w.end_array();
    w.end_object();
    let json = w.finish();

    let root = wiforce_bench::experiments::repo_root();
    let path = root.join("BENCH_pipeline.json");
    std::fs::write(&path, &json).expect("write BENCH_pipeline.json");
    let cal_path = root.join("CALIBRATION_synth.json");
    std::fs::write(&cal_path, cal.to_json_stamped(env!("GIT_REV")))
        .expect("write CALIBRATION_synth.json");
    println!("{json}");
    println!("wrote {}", path.display());
    println!("wrote {}", cal_path.display());
}

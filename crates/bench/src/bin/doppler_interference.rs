//! Regenerates the §3.3 Doppler-separation experiment (moving clutter vs
//! the tag's modulation lines). Pass `--quick` for fewer reads.

fn main() {
    let quick = wiforce_bench::montecarlo::quick_mode();
    let report = wiforce_bench::experiments::doppler::run(quick);
    std::process::exit(if report.all_ok() { 0 } else { 1 });
}

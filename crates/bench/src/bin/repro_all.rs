//! Runs every reproduced experiment and rewrites the paper-vs-measured
//! sections of EXPERIMENTS.md. Pass `--quick` for a fast smoke run, and
//! `--health-json <path>` to run with telemetry enabled and write the
//! merged [`wiforce_telemetry::PipelineHealth`] report of the whole
//! reproduction (sweep workers' telemetry is folded back in press-index
//! order, so the report is identical for any thread count).

use wiforce_bench::experiments as exp;
use wiforce_bench::Report;

/// Value of `--health-json <path>`, if present.
fn health_json_arg() -> Option<String> {
    let argv: Vec<String> = std::env::args().collect();
    argv.iter()
        .position(|a| a == "--health-json")
        .and_then(|i| argv.get(i + 1).cloned())
}

fn main() {
    let quick = wiforce_bench::montecarlo::quick_mode();
    let health_out = health_json_arg();
    if health_out.is_some() {
        wiforce_telemetry::reset();
        wiforce_telemetry::set_enabled(true);
    }
    let path = exp::repo_root().join("EXPERIMENTS.md");
    println!("writing results to {}\n", path.display());

    let mut all_ok = true;
    let mut write = |section: &str, report: Report| {
        all_ok &= report.all_ok();
        report
            .write_section(&path, section)
            .expect("write EXPERIMENTS.md");
    };

    write(
        "Fig. 4c — transduction: thin trace vs soft beam",
        exp::fig04::run(quick),
    );
    write(
        "Fig. 5b — per-port phase-force profiles",
        exp::fig05::run(quick),
    );
    write(
        "Fig. 7/8 — clocking and intermodulation",
        exp::fig07::run(quick),
    );
    write("Fig. 10 — sensor S-parameters", exp::fig10::run(quick));
    let (rep13, rep14) = exp::fig13_14::run_figs(quick);
    write("Fig. 13 — force error CDFs", rep13);
    write("Fig. 14 — location error CDFs", rep14);
    write("Fig. 16 — tissue phantom", exp::fig16::run(quick));
    write("Fig. 17 — fingertip presses", exp::fig17::run(quick));
    write("Fig. 18 — distance sweep", exp::fig18::run(quick));
    write("Fig. 19 — ratio optimization", exp::fig19::run(quick));
    write(
        "Table 1 — VNA vs model vs wireless",
        exp::table1::run(quick),
    );
    write(
        "§4.3 — power budget & §6 battery-free feasibility",
        exp::power::run(quick),
    );
    write(
        "§3.3 — Doppler separation vs moving clutter",
        exp::doppler::run(quick),
    );
    write("Ablations", exp::ablations::run(quick));
    write("Extension — hysteresis loop", exp::hysteresis::run(quick));

    if let Some(out) = health_out {
        wiforce_telemetry::set_enabled(false);
        let report = wiforce_telemetry::PipelineHealth::collect();
        std::fs::write(&out, report.to_json()).expect("write health report");
        println!("wrote health report to {out}");
    }

    println!(
        "\nall criteria {}",
        if all_ok { "PASSED" } else { "had FAILURES" }
    );
    std::process::exit(if all_ok { 0 } else { 1 });
}

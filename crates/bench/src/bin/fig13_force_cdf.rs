//! Regenerates Fig. 13 (force-error CDFs at 900 MHz and 2.4 GHz).
//! Pass `--quick` for a fast smoke run.

fn main() {
    let quick = wiforce_bench::montecarlo::quick_mode();
    let (rep13, _) = wiforce_bench::experiments::fig13_14::run_figs(quick);
    std::process::exit(if rep13.all_ok() { 0 } else { 1 });
}

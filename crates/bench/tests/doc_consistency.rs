//! Documentation drift guard: the `--bin` names the docs tell readers to
//! run, the experiment-module wiring, and the section headers `repro_all`
//! maintains in EXPERIMENTS.md must all match what's actually in the
//! tree. These rotted silently before (a renamed fig bin left stale
//! commands in DESIGN.md), so CI checks them.

use std::collections::BTreeSet;
use std::path::Path;
use wiforce_bench::experiments::repo_root;

/// Every `--bin <name>` token in the text.
fn bin_references(text: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for (i, _) in text.match_indices("--bin") {
        let rest = text[i + "--bin".len()..].trim_start_matches([' ', '`']);
        let name: String = rest
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_' || *c == '-')
            .collect();
        if !name.is_empty() {
            out.insert(name);
        }
    }
    out
}

fn read(path: &Path) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Stems of the `.rs` files directly inside `dir`.
fn rs_stems(dir: &Path) -> BTreeSet<String> {
    std::fs::read_dir(dir)
        .unwrap_or_else(|e| panic!("read_dir {}: {e}", dir.display()))
        .filter_map(|entry| {
            let path = entry.expect("dir entry").path();
            (path.extension()? == "rs").then(|| path.file_stem()?.to_str().map(String::from))?
        })
        .collect()
}

#[test]
fn documented_bins_exist() {
    let root = repo_root();
    let mut available = rs_stems(&root.join("crates/bench/src/bin"));
    // the workspace-level CLI is also referenced with --bin
    available.insert("wiforce-cli".into());

    for doc in ["DESIGN.md", "README.md", "EXPERIMENTS.md"] {
        let text = read(&root.join(doc));
        for name in bin_references(&text) {
            assert!(
                available.contains(&name),
                "{doc} tells readers to run `--bin {name}`, but no such binary exists \
                 (available: {available:?})"
            );
        }
    }
}

/// Every `wiforce-cli -- <subcommand>` the docs tell readers to run must
/// be a real match arm in the CLI's dispatcher (and vice versa: every
/// dispatched subcommand must be mentioned in the CLI's usage string).
#[test]
fn documented_cli_subcommands_exist() {
    let root = repo_root();
    let cli = read(&root.join("src/bin/wiforce-cli.rs"));

    // match arms of the form `"press" => cmd_press(...)`
    let mut dispatched = BTreeSet::new();
    for line in cli.lines() {
        let t = line.trim();
        if let Some(rest) = t.strip_prefix('"') {
            if let Some(end) = rest.find('"') {
                if rest[end..].contains("=> cmd_") {
                    dispatched.insert(rest[..end].to_string());
                }
            }
        }
    }
    assert!(
        dispatched.len() >= 8,
        "expected the full subcommand set, found {dispatched:?}"
    );

    for doc in ["DESIGN.md", "README.md"] {
        let text = read(&root.join(doc));
        for (i, _) in text.match_indices("wiforce-cli -- ") {
            let rest = &text[i + "wiforce-cli -- ".len()..];
            let name: String = rest
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '-')
                .collect();
            assert!(
                dispatched.contains(&name),
                "{doc} tells readers to run `wiforce-cli -- {name}`, but the CLI \
                 only dispatches {dispatched:?}"
            );
        }
    }

    // the usage string must advertise every dispatched subcommand
    for cmd in &dispatched {
        assert!(
            cli.contains(&format!("{cmd} ")) || cli.contains(&format!("|{cmd}")),
            "CLI usage text does not mention subcommand '{cmd}'"
        );
    }
}

/// The CI workflow must regenerate the benchmark against the committed
/// baseline — a renamed artifact or a dropped `--baseline` flag would
/// silently disable the perf-regression gate.
#[test]
fn ci_wires_the_perf_regression_gate() {
    let root = repo_root();
    let ci = read(&root.join(".github/workflows/ci.yml"));
    for needle in [
        "bench_json",
        "check_artifacts",
        "--baseline BENCH_baseline.json",
        "cp BENCH_pipeline.json BENCH_baseline.json",
    ] {
        assert!(ci.contains(needle), "ci.yml lost '{needle}'");
    }
    // the baseline snapshot must happen before the bench regenerates
    let snap = ci.find("cp BENCH_pipeline.json").expect("snapshot step");
    let bench = ci.find("--bin bench_json").expect("bench step");
    assert!(
        snap < bench,
        "ci.yml snapshots the baseline after regenerating it — gate compares \
         fresh against fresh"
    );
}

#[test]
fn experiment_modules_match_files() {
    let root = repo_root();
    let dir = root.join("crates/bench/src/experiments");
    let mod_rs = read(&dir.join("mod.rs"));
    let declared: BTreeSet<String> = mod_rs
        .lines()
        .filter_map(|l| {
            l.trim()
                .strip_prefix("pub mod ")
                .and_then(|r| r.strip_suffix(';'))
                .map(String::from)
        })
        .collect();
    let mut files = rs_stems(&dir);
    files.remove("mod");

    assert_eq!(
        declared, files,
        "experiments/mod.rs declarations and experiments/*.rs files diverge"
    );
}

#[test]
fn repro_all_sections_match_experiments_md() {
    let root = repo_root();
    let repro = read(&root.join("crates/bench/src/bin/repro_all.rs"));
    // every double-quoted literal in repro_all.rs (titles are plain
    // strings with no escapes)
    let mut literals = BTreeSet::new();
    let mut rest = repro.as_str();
    while let Some(start) = rest.find('"') {
        let tail = &rest[start + 1..];
        let Some(end) = tail.find('"') else { break };
        literals.insert(&tail[..end]);
        rest = &tail[end + 1..];
    }

    let experiments = read(&root.join("EXPERIMENTS.md"));
    let headers: Vec<&str> = experiments
        .lines()
        .filter_map(|l| l.strip_prefix("## "))
        .map(str::trim)
        .collect();
    assert!(!headers.is_empty(), "EXPERIMENTS.md has no sections");

    for header in &headers {
        assert!(
            literals.contains(header),
            "EXPERIMENTS.md section '{header}' is not written by repro_all — \
             stale section or renamed title"
        );
    }
    // and every experiment repro_all writes has a section in the file
    for title in literals {
        let looks_like_title = title.starts_with("Fig. ")
            || title.starts_with("Table ")
            || title.starts_with('§')
            || title == "Ablations"
            || title.starts_with("Extension");
        if looks_like_title {
            assert!(
                headers.contains(&title),
                "repro_all writes section '{title}' but EXPERIMENTS.md lacks it — \
                 run `cargo run -p wiforce-bench --bin repro_all`"
            );
        }
    }
}

//! Manual micro-benchmark decomposing the per-snapshot cost of
//! `run_snapshots_into` (run with `--ignored --nocapture`). Companion to
//! `crates/reader/tests/microprof.rs`, which decomposes the sounder.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;
use wiforce::pipeline::{Simulation, TagClock};
use wiforce_dsp::SnapshotMatrix;

#[test]
#[ignore = "manual micro-benchmark of the snapshot hot loop"]
fn microprof_pipeline() {
    let sim = Simulation::paper_default(2.4e9);
    let mut rng = StdRng::seed_from_u64(7);
    let mut clock = TagClock::new(&mut rng);
    let mut out = SnapshotMatrix::default();
    sim.run_snapshots_into(None, 1, &mut clock, &mut rng, &mut out);

    let groups = 20;
    let t = Instant::now();
    for _ in 0..groups {
        out.clear();
        sim.run_snapshots_into(None, 1, &mut clock, &mut rng, &mut out);
    }
    let per_group = t.elapsed().as_secs_f64() / groups as f64;
    println!(
        "run_snapshots_into: {:.0} us/group, {:.2} us/snapshot",
        per_group * 1e6,
        per_group * 1e6 / sim.group.n_snapshots as f64
    );

    // modulation alone (clock advance is a couple of flops)
    let iters = 200_000;
    let t_snap = sim.group.snapshot_period_s;
    let mut acc = 0usize;
    let mut t_tag = 0.0;
    let t = Instant::now();
    for _ in 0..iters {
        t_tag += t_snap;
        let on1 = sim.tag.clocks.modulation1(t_tag);
        let on2 = sim.tag.clocks.modulation2(t_tag);
        acc += on1 as usize | ((on2 as usize) << 1);
    }
    println!(
        "modulation: {:.3} us/snapshot (acc {acc})",
        t.elapsed().as_secs_f64() / iters as f64 * 1e6
    );

    // frontend alone
    let mut row: Vec<wiforce_dsp::Complex> = (0..64)
        .map(|k| wiforce_dsp::Complex::from_polar(1e-4, 0.1 * k as f64))
        .collect();
    let iters = 50_000;
    let t = Instant::now();
    for _ in 0..iters {
        sim.frontend.process(&mut rng, &mut row, 2e-4);
    }
    println!(
        "frontend.process: {:.3} us/snapshot",
        t.elapsed().as_secs_f64() / iters as f64 * 1e6
    );
}

//! The sweep's telemetry merge must share the result merge's guarantee:
//! identical at any thread count. Span durations are wall-clock, so the
//! comparison is [`TelemetrySnapshot::deterministic_eq`] — counters,
//! gauges, observation histograms, and span counts.

use wiforce::pipeline::Simulation;
use wiforce_bench::montecarlo::{run_sweep_with_threads_telemetry, Sweep};

#[test]
fn sweep_health_merge_identical_across_thread_counts() {
    let mut sim = Simulation::paper_default(2.4e9);
    sim.reference_groups = 1;
    sim.measure_groups = 1;
    let model = sim.vna_calibration().expect("calibration");
    let sweep = Sweep {
        locations_m: vec![0.020, 0.055],
        forces_n: vec![2.0, 5.0],
        trials: 2,
        seed: 42,
    };

    wiforce_telemetry::reset();
    wiforce_telemetry::set_enabled(true);
    let (r1, t1) = run_sweep_with_threads_telemetry(&sim, &model, &sweep, 1);
    let (r4, t4) = run_sweep_with_threads_telemetry(&sim, &model, &sweep, 4);
    wiforce_telemetry::set_enabled(false);
    wiforce_telemetry::reset();

    // the press results keep their existing bit-identity guarantee
    assert_eq!(r1.len(), sweep.len());
    for (a, b) in r1.iter().zip(&r4) {
        assert_eq!(a.ok, b.ok);
        assert_eq!(a.est_force_n.to_bits(), b.est_force_n.to_bits());
        assert_eq!(a.est_location_m.to_bits(), b.est_location_m.to_bits());
    }

    // and the merged telemetry matches on its deterministic subset
    assert!(
        t1.deterministic_eq(&t4),
        "telemetry merge diverged across thread counts:\n1 thread: {t1:?}\n4 threads: {t4:?}"
    );
    assert_eq!(
        t1.counters.get("pipeline.presses").copied(),
        Some(sweep.len() as u64)
    );
    assert!(t1.gauges.contains_key("pipeline.line_to_floor_db"));
    assert!(t1.counters.contains_key("pipeline.snapshots_total"));

    // a health report built from the merge carries the acceptance keys
    let health = wiforce_telemetry::PipelineHealth::from_snapshot(&t1);
    assert!(health.snapshot_yield.is_some());
    assert!(health.counter("faults.snapshots_dropped").is_some());
    assert!(!health.stages.is_empty());
}

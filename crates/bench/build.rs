//! Embeds the git revision into the bench binaries so BENCH_pipeline.json
//! records which commit produced it. Honors an externally supplied
//! `GIT_REV` (CI sets it from the checkout SHA), falls back to asking git,
//! and finally to "unknown" so offline/tarball builds still work.

use std::process::Command;

fn main() {
    println!("cargo:rerun-if-env-changed=GIT_REV");
    let rev = std::env::var("GIT_REV").ok().or_else(|| {
        Command::new("git")
            .args(["rev-parse", "--short", "HEAD"])
            .output()
            .ok()
            .filter(|o| o.status.success())
            .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
    });
    let rev = rev
        .filter(|r| !r.is_empty())
        .unwrap_or_else(|| "unknown".into());
    println!("cargo:rustc-env=GIT_REV={rev}");
}

//! Embeds the git revision into the bench binaries so BENCH_pipeline.json
//! records which commit produced it. Honors an externally supplied
//! `GIT_REV` (CI sets it from the checkout SHA), falls back to asking git,
//! and finally to "unknown" so offline/tarball builds still work.

use std::path::Path;
use std::process::Command;

fn main() {
    println!("cargo:rerun-if-env-changed=GIT_REV");
    // Re-stamp when HEAD moves. Without these, cargo reuses the build
    // script output from whichever commit first compiled this crate, so
    // bench artifacts carry a stale rev — exactly the provenance drift
    // the CI `--revs` / `--expect-rev` gates exist to catch. `.git/HEAD`
    // covers branch switches and detached-HEAD commits; the pointed-to
    // ref file covers new commits on the current branch (falling back to
    // packed-refs when the loose ref file does not exist).
    let git_dir = Path::new("../../.git");
    if git_dir.exists() {
        println!("cargo:rerun-if-changed={}", git_dir.join("HEAD").display());
        if let Ok(head) = std::fs::read_to_string(git_dir.join("HEAD")) {
            if let Some(r) = head.trim().strip_prefix("ref: ") {
                let loose = git_dir.join(r);
                let watch = if loose.exists() {
                    loose
                } else {
                    git_dir.join("packed-refs")
                };
                println!("cargo:rerun-if-changed={}", watch.display());
            }
        }
    }
    let rev = std::env::var("GIT_REV").ok().or_else(|| {
        Command::new("git")
            .args(["rev-parse", "--short", "HEAD"])
            .output()
            .ok()
            .filter(|o| o.status.success())
            .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
    });
    let rev = rev
        .filter(|r| !r.is_empty())
        .unwrap_or_else(|| "unknown".into());
    println!("cargo:rustc-env=GIT_REV={rev}");
}

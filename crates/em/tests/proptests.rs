//! Property-based tests on the two-port algebra and line models.

use proptest::prelude::*;
use wiforce_dsp::Complex;
use wiforce_em::microstrip::Microstrip;
use wiforce_em::twoport::Abcd;
use wiforce_em::Dielectric;

fn arb_network() -> impl Strategy<Value = Abcd> {
    // random cascades of passive elements are reciprocal by construction
    (
        0.1f64..200.0,
        -100.0f64..100.0,
        1e-4f64..0.05,
        -0.05f64..0.05,
        20.0f64..120.0,
        0.0f64..3.0,
        1.0f64..200.0,
        0.001f64..0.3,
    )
        .prop_map(|(rs, xs, gs, bs, z0, alpha, beta, len)| {
            Abcd::series(Complex::new(rs, xs))
                .cascade(&Abcd::shunt(Complex::new(gs, bs)))
                .cascade(&Abcd::line(
                    Complex::from_re(z0),
                    Complex::new(alpha, beta),
                    len,
                ))
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Reciprocal networks have unit ABCD determinant and S12 == S21.
    #[test]
    fn cascades_stay_reciprocal(net in arb_network()) {
        let det = net.det();
        prop_assert!((det - Complex::ONE).abs() < 1e-6, "det {det:?}");
        let s = net.to_sparams(50.0);
        prop_assert!((s.s12 - s.s21).abs() < 1e-6);
    }

    /// Cascading is associative.
    #[test]
    fn cascade_associative(a in arb_network(), b in arb_network(), c in arb_network()) {
        let left = a.cascade(&b).cascade(&c);
        let right = a.cascade(&b.cascade(&c));
        prop_assert!((left.a - right.a).abs() < 1e-6 * left.a.abs().max(1.0));
        prop_assert!((left.b - right.b).abs() < 1e-6 * left.b.abs().max(1.0));
        prop_assert!((left.c - right.c).abs() < 1e-6 * left.c.abs().max(1.0));
        prop_assert!((left.d - right.d).abs() < 1e-6 * left.d.abs().max(1.0));
    }

    /// Passive networks never reflect or transmit more power than they
    /// receive.
    #[test]
    fn passive_networks_do_not_amplify(net in arb_network()) {
        let s = net.to_sparams(50.0);
        prop_assert!(s.s11.abs() <= 1.0 + 1e-9, "S11 {}", s.s11.abs());
        prop_assert!(s.s21.abs() <= 1.0 + 1e-9, "S21 {}", s.s21.abs());
    }

    /// Microstrip impedance decreases monotonically with trace width and
    /// increases with height.
    #[test]
    fn microstrip_impedance_monotone(
        w1 in 0.5e-3f64..5e-3,
        dw in 0.1e-3f64..3e-3,
        h in 0.2e-3f64..2e-3,
    ) {
        let z = |w: f64, h: f64| Microstrip {
            trace_width_m: w,
            height_m: h,
            substrate: Dielectric::AIR,
            conductivity_s_per_m: 5.8e7,
        }
        .impedance_ohm();
        prop_assert!(z(w1 + dw, h) < z(w1, h));
        prop_assert!(z(w1, h * 1.5) > z(w1, h));
    }

    /// Phase accumulated on a shorted stub grows linearly with length
    /// (modulo wrapping): doubling the length doubles the round-trip
    /// electrical length.
    #[test]
    fn stub_phase_linear_in_length(d in 0.005f64..0.035) {
        use wiforce_em::{SensorLine, Termination};
        use wiforce_dsp::phase::wrap_to_pi;
        let mut line = SensorLine::wiforce_prototype();
        line.contact_resistance_ohm = 0.0;
        let f = 0.9e9;
        let beta = line.microstrip.beta(f);
        let p1 = line.port_phase(f, Some(d), Termination::Open);
        let p2 = line.port_phase(f, Some(2.0 * d), Termination::Open);
        // ideal relation: φ(2d) − φ(d) = −2βd (+ mismatch ripple)
        let diff = wrap_to_pi(p2 - p1 + 2.0 * beta * d);
        prop_assert!(diff.abs() < 0.3, "ripple-adjusted residual {diff}");
    }
}

//! Antenna gain patterns and polarization.
//!
//! The paper treats antennas as fixed gains; real deployments (a tag stuck
//! on a surgical tool at an arbitrary angle) see the *pattern*: a dipole
//! tag antenna read off-axis loses several dB, and a polarization
//! mismatch costs `cos²ψ`. This module provides standard lossless
//! patterns, verified to conserve radiated power, plus the mismatch law —
//! used by the orientation-sensitivity analysis.

use wiforce_dsp::PI;

/// Idealized lossless antenna patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pattern {
    /// Reference isotropic radiator (0 dBi everywhere).
    Isotropic,
    /// Infinitesimal (short) dipole: `1.5·sin²θ`, 1.76 dBi peak.
    ShortDipole,
    /// Half-wave dipole: `1.64·[cos(π/2·cosθ)/sinθ]²`, 2.15 dBi peak.
    HalfWaveDipole,
    /// Simple unidirectional patch: `3.26·cos²θ` on the front hemisphere
    /// (≈5 dBi peak), −15 dB floor behind.
    Patch,
}

impl Pattern {
    /// Linear gain at polar angle `theta` (rad) from boresight.
    pub fn gain(&self, theta: f64) -> f64 {
        let theta = theta.rem_euclid(2.0 * PI);
        let theta = if theta > PI { 2.0 * PI - theta } else { theta };
        match self {
            Pattern::Isotropic => 1.0,
            Pattern::ShortDipole => 1.5 * theta.sin().powi(2),
            Pattern::HalfWaveDipole => {
                let s = theta.sin();
                if s.abs() < 1e-9 {
                    return 0.0;
                }
                1.64 * ((PI / 2.0 * theta.cos()).cos() / s).powi(2)
            }
            Pattern::Patch => {
                if theta <= PI / 2.0 {
                    let g = 3.26 * theta.cos().powi(2);
                    g.max(3.26 * 10f64.powf(-1.5))
                } else {
                    3.26 * 10f64.powf(-1.5) // -15 dB back lobe
                }
            }
        }
    }

    /// Peak gain, dBi.
    pub fn peak_gain_dbi(&self) -> f64 {
        let peak = (0..=1800)
            .map(|i| self.gain(i as f64 * PI / 1800.0))
            .fold(0.0_f64, f64::max);
        10.0 * peak.log10()
    }

    /// Radiated-power integral `∮ G dΩ / 4π` — exactly 1 for a lossless
    /// antenna (used by the tests; the `Patch` model is approximate).
    pub fn power_integral(&self) -> f64 {
        // axisymmetric patterns: ∫ G(θ) sinθ dθ / 2
        let n = 20_000;
        let dtheta = PI / n as f64;
        (0..n)
            .map(|i| {
                let theta = (i as f64 + 0.5) * dtheta;
                self.gain(theta) * theta.sin() * dtheta
            })
            .sum::<f64>()
            / 2.0
    }
}

/// Polarization mismatch power factor between two linear antennas whose
/// polarization axes differ by `psi` radians: `cos²ψ`.
pub fn polarization_match(psi_rad: f64) -> f64 {
    psi_rad.cos().powi(2)
}

/// Combined link gain factor (linear, power) for a tag antenna read at
/// `theta` off boresight with polarization mismatch `psi`.
pub fn link_gain(pattern: Pattern, theta_rad: f64, psi_rad: f64) -> f64 {
    pattern.gain(theta_rad) * polarization_match(psi_rad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isotropic_is_unity_everywhere() {
        for k in 0..10 {
            assert_eq!(Pattern::Isotropic.gain(k as f64 * 0.4), 1.0);
        }
        assert!((Pattern::Isotropic.power_integral() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn dipole_peaks_broadside_nulls_axial() {
        for p in [Pattern::ShortDipole, Pattern::HalfWaveDipole] {
            assert!(p.gain(PI / 2.0) > 1.4, "{p:?}");
            assert!(p.gain(0.0) < 1e-6, "{p:?} axial null");
            assert!(p.gain(PI) < 1e-6);
        }
    }

    #[test]
    fn lossless_patterns_conserve_power() {
        assert!((Pattern::ShortDipole.power_integral() - 1.0).abs() < 1e-4);
        assert!((Pattern::HalfWaveDipole.power_integral() - 1.0).abs() < 2e-3);
    }

    #[test]
    fn peak_gains_match_textbook() {
        assert!((Pattern::ShortDipole.peak_gain_dbi() - 1.76).abs() < 0.05);
        assert!((Pattern::HalfWaveDipole.peak_gain_dbi() - 2.15).abs() < 0.05);
        assert!((Pattern::Patch.peak_gain_dbi() - 5.13).abs() < 0.2);
    }

    #[test]
    fn patch_front_to_back() {
        let p = Pattern::Patch;
        let ftb = 10.0 * (p.gain(0.0) / p.gain(PI)).log10();
        assert!((ftb - 15.0).abs() < 0.5, "front-to-back {ftb} dB");
    }

    #[test]
    fn polarization_law() {
        assert!((polarization_match(0.0) - 1.0).abs() < 1e-12);
        assert!(polarization_match(PI / 2.0) < 1e-12);
        assert!((polarization_match(PI / 4.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn off_axis_read_costs_decibels() {
        // a tag dipole read 60° off broadside (θ = 30° from the axis)
        // plus 30° polarization mismatch: ≈7.6 dB pattern + 1.25 dB
        // polarization — orientation matters a lot for real stickers
        let g = link_gain(Pattern::HalfWaveDipole, PI / 2.0 - PI / 3.0, PI / 6.0);
        let loss_db = 10.0 * (Pattern::HalfWaveDipole.gain(PI / 2.0) / g).log10();
        assert!((6.0..12.0).contains(&loss_db), "{loss_db} dB");
    }

    #[test]
    fn pattern_symmetric_about_pi() {
        let p = Pattern::ShortDipole;
        assert!((p.gain(1.0) - p.gain(2.0 * PI - 1.0)).abs() < 1e-12);
    }
}

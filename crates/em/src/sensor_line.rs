//! The WiForce sensor as an RF network.
//!
//! Electrically the sensor is a microstrip line that a press shorts at the
//! two contact-patch edges (paper Figs. 1–2). What each port "sees" is:
//!
//! * **no touch** — the full line, terminated by whatever sits at the far
//!   end (the other port's RF switch: reflective-open when off);
//! * **touch** — a shorted stub whose length is the distance to the nearest
//!   shorting point. Signal past the short is irrelevant: the short
//!   reflects (nearly) everything.
//!
//! This module computes per-port complex reflection coefficients and the
//! rest-state two-port S-parameters (paper Fig. 10). Contact positions are
//! plain distances (metres), so this crate stays independent of the
//! mechanics crate; `wiforce-sensor` bridges `ContactPatch` into these
//! calls.

use crate::microstrip::Microstrip;
use crate::twoport::{Abcd, SParams};
use crate::Z_REF;
use wiforce_dsp::Complex;

/// Far-end termination seen along the line when there is no contact.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Termination {
    /// Reflective open (Γ = +1): the paper's off-state reflective switch.
    Open,
    /// Short circuit (Γ = −1).
    Short,
    /// Matched load (Γ = 0): an absorptive switch — the design the paper
    /// rejects in §4.3 because the no-touch reference phase disappears.
    Matched,
    /// Arbitrary complex load impedance, Ω.
    Load(Complex),
}

impl Termination {
    /// Load impedance of this termination, Ω.
    pub fn impedance(&self) -> Complex {
        match *self {
            Termination::Open => Complex::from_re(1e9), // practically open
            Termination::Short => Complex::ZERO,
            Termination::Matched => Complex::from_re(Z_REF),
            Termination::Load(z) => z,
        }
    }
}

/// The sensor line: a microstrip of fixed length with optional shorts.
#[derive(Debug, Clone, Copy)]
pub struct SensorLine {
    /// Line cross-section model.
    pub microstrip: Microstrip,
    /// Total line length, m (paper: 80 mm).
    pub length_m: f64,
    /// Residual resistance of a pressed contact, Ω (imperfect short).
    pub contact_resistance_ohm: f64,
}

impl SensorLine {
    /// The paper's 80 mm prototype line.
    pub fn wiforce_prototype() -> Self {
        SensorLine {
            microstrip: Microstrip::wiforce_sensor(),
            length_m: 0.080,
            contact_resistance_ohm: 0.5,
        }
    }

    /// Characteristic impedance as a complex number.
    fn z0(&self) -> Complex {
        Complex::from_re(self.microstrip.impedance_ohm())
    }

    /// Reflection coefficient looking into the line from one port, in the
    /// 50 Ω system, when the nearest short (if any) is `short_dist_m` away
    /// and the far end (at `length_m`) is terminated by `far`.
    ///
    /// `short_dist_m = None` means no contact: the wave traverses the full
    /// line and reflects off the far termination.
    pub fn port_reflection(
        &self,
        f_hz: f64,
        short_dist_m: Option<f64>,
        far: Termination,
    ) -> Complex {
        let gamma = self.microstrip.gamma(f_hz);
        match short_dist_m {
            Some(d) => {
                let d = d.clamp(0.0, self.length_m);
                let stub = Abcd::line(self.z0(), gamma, d);
                stub.input_reflection(Complex::from_re(self.contact_resistance_ohm), Z_REF)
            }
            None => {
                let line = Abcd::line(self.z0(), gamma, self.length_m);
                line.input_reflection(far.impedance(), Z_REF)
            }
        }
    }

    /// Phase (rad) of the port reflection; convenience for the transduction
    /// plots.
    pub fn port_phase(&self, f_hz: f64, short_dist_m: Option<f64>, far: Termination) -> f64 {
        self.port_reflection(f_hz, short_dist_m, far).arg()
    }

    /// Rest-state (no touch) two-port S-parameters in 50 Ω — the paper's
    /// Fig. 10 VNA characterization.
    pub fn rest_sparams(&self, f_hz: f64) -> SParams {
        let gamma = self.microstrip.gamma(f_hz);
        Abcd::line(self.z0(), gamma, self.length_m).to_sparams(Z_REF)
    }

    /// The differential phase the reader ultimately measures at one port:
    /// `∠Γ(no touch) − ∠Γ(short at d)` wrapped to (−π, π]. This is
    /// `φ_full − φ_short` of paper §3.2.
    pub fn differential_phase(&self, f_hz: f64, short_dist_m: f64, far: Termination) -> f64 {
        let no_touch = self.port_reflection(f_hz, None, far);
        let touched = self.port_reflection(f_hz, Some(short_dist_m), far);
        (no_touch * touched.conj()).arg()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wiforce_dsp::phase::wrap_to_pi;

    fn line() -> SensorLine {
        SensorLine::wiforce_prototype()
    }

    #[test]
    fn short_at_port_reflects_minus_one() {
        let mut l = line();
        l.contact_resistance_ohm = 0.0;
        let g = l.port_reflection(0.9e9, Some(0.0), Termination::Open);
        assert!((g - Complex::from_re(-1.0)).abs() < 1e-9, "{g:?}");
    }

    #[test]
    fn shorted_stub_phase_tracks_distance() {
        // ideal lossless theory: Γ = -e^{-2jβd} in the line's own Z0;
        // in the 50 Ω system there is a small extra rotation from the
        // Z0 ≈ 56 Ω mismatch, so compare against 2βd within tolerance
        let l = line();
        let f = 0.9e9;
        let beta = l.microstrip.beta(f);
        for d in [0.01, 0.03, 0.05, 0.08] {
            let g = l.port_reflection(f, Some(d), Termination::Open);
            let expect = wrap_to_pi(std::f64::consts::PI - 2.0 * beta * d);
            let got = g.arg();
            let err = wrap_to_pi(got - expect).abs();
            assert!(err < 0.25, "d={d}: got {got}, expect {expect}");
            assert!(g.abs() > 0.9, "short should reflect nearly all power");
        }
    }

    #[test]
    fn differential_phase_zero_for_short_at_far_end_open() {
        // a short at the far end vs an open at the far end differ by π
        let l = line();
        let dphi = l.differential_phase(0.9e9, l.length_m, Termination::Open);
        assert!(
            (wrap_to_pi(dphi - std::f64::consts::PI)).abs() < 0.3,
            "{dphi}"
        );
    }

    #[test]
    fn differential_phase_monotone_as_short_approaches() {
        // as the shorting point moves toward the port (d decreasing), the
        // stub phase -2βd increases; check strict monotonicity over a
        // wrap-free range
        let l = line();
        let f = 0.9e9;
        let mut prev = None;
        for d in [0.060, 0.050, 0.040, 0.030, 0.020] {
            let phi = l.differential_phase(f, d, Termination::Open);
            if let Some(p) = prev {
                assert!(phi < p, "phase should decrease: {phi} vs {p}");
            }
            prev = Some(phi);
        }
    }

    #[test]
    fn phase_sensitivity_scales_with_frequency() {
        // moving the short by Δd changes phase by 2βΔd — about 2.67× more
        // at 2.4 GHz than at 900 MHz
        let l = line();
        let dd = 0.005;
        let d900 = wrap_to_pi(
            l.port_phase(0.9e9, Some(0.030), Termination::Open)
                - l.port_phase(0.9e9, Some(0.030 + dd), Termination::Open),
        )
        .abs();
        let d24 = wrap_to_pi(
            l.port_phase(2.4e9, Some(0.030), Termination::Open)
                - l.port_phase(2.4e9, Some(0.030 + dd), Termination::Open),
        )
        .abs();
        let ratio = d24 / d900;
        // ideal TEM ratio is 2.4/0.9 ≈ 2.67; the Z0 ≈ 56 Ω mismatch adds
        // standing-wave ripple that perturbs the local slope
        assert!((1.7..3.6).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn rest_state_matches_paper_fig10() {
        // S11 below −10 dB across 0–3 GHz and |S21| ≈ 0 dB
        let l = line();
        let mut f = 0.05e9;
        while f <= 3.0e9 {
            let s = l.rest_sparams(f);
            assert!(
                s.s11_db() < -10.0,
                "S11 {} dB at {} GHz",
                s.s11_db(),
                f / 1e9
            );
            assert!(
                s.s21_db() > -1.0,
                "S21 {} dB at {} GHz",
                s.s21_db(),
                f / 1e9
            );
            f += 0.05e9;
        }
    }

    #[test]
    fn rest_s21_phase_is_linear() {
        // linear S12 phase (Fig. 10): unwrapped phase vs frequency should
        // fit a straight line well
        let l = line();
        let freqs: Vec<f64> = (1..=60).map(|k| k as f64 * 0.05e9).collect();
        let phases: Vec<f64> = freqs.iter().map(|&f| l.rest_sparams(f).s21.arg()).collect();
        let un = wiforce_dsp::phase::unwrap(&phases);
        let fit = wiforce_dsp::polyfit::Polynomial::fit(&freqs, &un, 1).unwrap();
        let rms = fit.rms_residual(&freqs, &un);
        assert!(rms < 0.05, "nonlinear phase, rms {rms} rad");
        // slope = -2π·L/c
        let slope = fit.coeffs()[1];
        let expect = -wiforce_dsp::TAU * l.length_m / wiforce_dsp::C0;
        assert!((slope / expect - 1.0).abs() < 0.05, "{slope} vs {expect}");
    }

    #[test]
    fn matched_far_end_kills_no_touch_reflection() {
        // with an absorptive (matched) switch the no-touch reference
        // reflection nearly vanishes — the paper's argument for
        // *reflective* switches in §4.3
        let l = line();
        let open = l.port_reflection(0.9e9, None, Termination::Open);
        let matched = l.port_reflection(0.9e9, None, Termination::Matched);
        assert!(open.abs() > 0.8, "reflective open gives strong reference");
        assert!(matched.abs() < 0.2, "matched absorbs: {}", matched.abs());
    }

    #[test]
    fn contact_resistance_weakens_short() {
        let mut l = line();
        l.contact_resistance_ohm = 10.0;
        let weak = l
            .port_reflection(0.9e9, Some(0.02), Termination::Open)
            .abs();
        l.contact_resistance_ohm = 0.0;
        let strong = l
            .port_reflection(0.9e9, Some(0.02), Termination::Open)
            .abs();
        assert!(weak < strong);
    }

    #[test]
    fn distance_clamped_to_line() {
        let l = line();
        let g1 = l.port_reflection(0.9e9, Some(10.0), Termination::Open);
        let g2 = l.port_reflection(0.9e9, Some(l.length_m), Termination::Open);
        assert!((g1 - g2).abs() < 1e-12);
    }
}

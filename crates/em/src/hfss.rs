//! Parametric ground-width study (the paper's Appendix / Fig. 19).
//!
//! The Appendix reports an HFSS finding: the ideal (closed-form) air
//! microstrip wants a width:height ratio of ≈5:1 for 50 Ω, but widening the
//! ground trace (needed to solder SMA connector legs) adds fringing
//! capacitance that lowers the line impedance, shifting the optimum ratio
//! to ≈4:1. We model that with a saturating ground-width correction fitted
//! to reproduce exactly that 5:1 → 4:1 shift, then expose the same
//! parametric sweep the paper plots: insertion loss vs ratio, per ground
//! width.

use crate::materials::Dielectric;
use crate::microstrip::Microstrip;
use crate::twoport::Abcd;
use crate::Z_REF;
use wiforce_dsp::Complex;

/// A microstrip with an explicitly finite (possibly widened) ground trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroundedMicrostrip {
    /// The underlying (infinite-ground) microstrip model.
    pub microstrip: Microstrip,
    /// Ground trace width, m.
    pub ground_width_m: f64,
}

impl GroundedMicrostrip {
    /// The paper's prototype: 2.5 mm trace over a 6 mm ground.
    pub fn wiforce_prototype() -> Self {
        GroundedMicrostrip {
            microstrip: Microstrip::wiforce_sensor(),
            ground_width_m: 6e-3,
        }
    }

    /// Impedance correction factor from the widened ground's fringing
    /// capacitance: 1 at `ground = trace` (the closed-form regime), dropping
    /// by ≈11 % once the ground is ≳2.4× the trace (saturating).
    pub fn ground_correction(&self) -> f64 {
        let w = self.microstrip.trace_width_m;
        let ratio = (self.ground_width_m / w).max(1.0);
        // calibrated so Z(4:1 trace:height, 2.4× ground) = 50 Ω
        const K: f64 = 0.188;
        1.0 - K * (1.0 - (-(ratio - 1.0) / 1.5).exp())
    }

    /// Corrected characteristic impedance, Ω.
    pub fn impedance_ohm(&self) -> f64 {
        self.microstrip.impedance_ohm() * self.ground_correction()
    }

    /// Worst-case |S11| (dB) of an 80 mm line of this cross-section in the
    /// 50 Ω system across `freqs_hz` — the matching quality metric of the
    /// Fig. 19 sweep.
    pub fn worst_s11_db(&self, freqs_hz: &[f64], length_m: f64) -> f64 {
        let z0 = Complex::from_re(self.impedance_ohm());
        freqs_hz
            .iter()
            .map(|&f| {
                let s = Abcd::line(z0, self.microstrip.gamma(f), length_m).to_sparams(Z_REF);
                s.s11_db()
            })
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Peak insertion loss (dB) across `freqs_hz` for a line of
    /// `length_m` — mismatch ripple shows up here.
    pub fn worst_insertion_loss_db(&self, freqs_hz: &[f64], length_m: f64) -> f64 {
        let z0 = Complex::from_re(self.impedance_ohm());
        freqs_hz
            .iter()
            .map(|&f| {
                let s = Abcd::line(z0, self.microstrip.gamma(f), length_m).to_sparams(Z_REF);
                s.insertion_loss_db()
            })
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

/// One row of the Fig. 19 parametric sweep.
#[derive(Debug, Clone, Copy)]
pub struct RatioSweepPoint {
    /// Trace-width : height ratio `w/h`.
    pub width_height_ratio: f64,
    /// Corrected line impedance, Ω.
    pub impedance_ohm: f64,
    /// Worst |S11| across the band, dB.
    pub worst_s11_db: f64,
    /// Worst insertion loss across the band, dB.
    pub worst_insertion_loss_db: f64,
}

/// Sweeps the width:height ratio for a given ground width (as a multiple of
/// the trace width), reporting matching quality per point — the software
/// stand-in for the paper's HFSS study.
pub fn ratio_sweep(
    ground_over_trace: f64,
    ratios: &[f64],
    freqs_hz: &[f64],
    length_m: f64,
) -> Vec<RatioSweepPoint> {
    ratios
        .iter()
        .map(|&r| {
            // fix height, vary trace width
            let height = 0.63e-3;
            let trace = r * height;
            let gm = GroundedMicrostrip {
                microstrip: Microstrip {
                    trace_width_m: trace,
                    height_m: height,
                    substrate: Dielectric::AIR,
                    conductivity_s_per_m: 5.8e7,
                },
                ground_width_m: ground_over_trace * trace,
            };
            RatioSweepPoint {
                width_height_ratio: r,
                impedance_ohm: gm.impedance_ohm(),
                worst_s11_db: gm.worst_s11_db(freqs_hz, length_m),
                worst_insertion_loss_db: gm.worst_insertion_loss_db(freqs_hz, length_m),
            }
        })
        .collect()
}

/// The ratio minimizing worst-case S11 in a sweep.
pub fn optimal_ratio(points: &[RatioSweepPoint]) -> f64 {
    points
        .iter()
        .min_by(|a, b| a.worst_s11_db.partial_cmp(&b.worst_s11_db).expect("NaN"))
        .map(|p| p.width_height_ratio)
        .unwrap_or(f64::NAN)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn band() -> Vec<f64> {
        (1..=30).map(|k| k as f64 * 0.1e9).collect()
    }

    fn ratios() -> Vec<f64> {
        (20..=70).map(|k| k as f64 * 0.1).collect()
    }

    #[test]
    fn narrow_ground_optimum_near_five() {
        let pts = ratio_sweep(1.0, &ratios(), &band(), 0.080);
        let opt = optimal_ratio(&pts);
        assert!((4.5..5.5).contains(&opt), "optimum {opt}");
    }

    #[test]
    fn wide_ground_optimum_near_four() {
        // the paper's finding: widened ground (6 mm / 2.5 mm = 2.4×) shifts
        // the optimum to ≈4:1
        let pts = ratio_sweep(2.4, &ratios(), &band(), 0.080);
        let opt = optimal_ratio(&pts);
        assert!((3.5..4.5).contains(&opt), "optimum {opt}");
    }

    #[test]
    fn prototype_impedance_is_matched() {
        let z = GroundedMicrostrip::wiforce_prototype().impedance_ohm();
        assert!((z - 50.0).abs() < 2.0, "Z = {z}");
    }

    #[test]
    fn correction_saturates() {
        let mut gm = GroundedMicrostrip::wiforce_prototype();
        gm.ground_width_m = 2.5e-3; // equal to trace
        assert!((gm.ground_correction() - 1.0).abs() < 1e-12);
        gm.ground_width_m = 25e-3;
        let c_wide = gm.ground_correction();
        gm.ground_width_m = 250e-3;
        let c_very_wide = gm.ground_correction();
        assert!((c_wide - c_very_wide).abs() < 0.01, "saturating correction");
        assert!(c_wide < 0.9);
    }

    #[test]
    fn mismatch_grows_away_from_optimum() {
        let pts = ratio_sweep(2.4, &ratios(), &band(), 0.080);
        let opt = optimal_ratio(&pts);
        let s11_at = |r: f64| -> f64 {
            pts.iter()
                .min_by(|a, b| {
                    (a.width_height_ratio - r)
                        .abs()
                        .partial_cmp(&(b.width_height_ratio - r).abs())
                        .unwrap()
                })
                .unwrap()
                .worst_s11_db
        };
        assert!(s11_at(opt) < s11_at(opt - 1.5));
        assert!(s11_at(opt) < s11_at(opt + 1.5));
    }

    #[test]
    fn insertion_loss_small_near_match() {
        let pts = ratio_sweep(2.4, &ratios(), &band(), 0.080);
        let best = pts
            .iter()
            .min_by(|a, b| a.worst_s11_db.partial_cmp(&b.worst_s11_db).unwrap())
            .unwrap();
        assert!(
            best.worst_insertion_loss_db < 0.5,
            "{}",
            best.worst_insertion_loss_db
        );
    }
}

//! Vector-network-analyzer simulator.
//!
//! The paper characterizes the sensor with a 2-port VNA (Fig. 10, the
//! Table 1 wired baselines, and the §4.2 sensor-model calibration). This
//! module provides frequency sweeps of any device-under-test expressed as
//! `f → SParams`, with optional instrument noise so "VNA ground truth" in
//! the experiments carries realistic (small) measurement error.

use crate::twoport::SParams;
use rand_like::TraceNoise;
use wiforce_dsp::Complex;

/// A linear frequency sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrequencySweep {
    /// Start frequency, Hz.
    pub start_hz: f64,
    /// Stop frequency, Hz (inclusive).
    pub stop_hz: f64,
    /// Number of points (≥ 2).
    pub points: usize,
}

impl FrequencySweep {
    /// The paper's Fig. 10 sweep: 50 MHz – 3 GHz.
    pub fn wiforce_broadband() -> Self {
        FrequencySweep {
            start_hz: 0.05e9,
            stop_hz: 3.0e9,
            points: 60,
        }
    }

    /// Frequency of point `i`.
    pub fn freq(&self, i: usize) -> f64 {
        assert!(self.points >= 2 && i < self.points);
        self.start_hz + (self.stop_hz - self.start_hz) * i as f64 / (self.points - 1) as f64
    }

    /// All frequencies.
    pub fn frequencies(&self) -> Vec<f64> {
        (0..self.points).map(|i| self.freq(i)).collect()
    }
}

/// One measured sweep: frequencies plus S-parameters per point.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// Frequencies, Hz.
    pub freqs_hz: Vec<f64>,
    /// Measured S-parameters per frequency.
    pub sparams: Vec<SParams>,
}

impl SweepResult {
    /// |S11| in dB per point.
    pub fn s11_db(&self) -> Vec<f64> {
        self.sparams.iter().map(|s| s.s11_db()).collect()
    }

    /// |S21| in dB per point.
    pub fn s21_db(&self) -> Vec<f64> {
        self.sparams.iter().map(|s| s.s21_db()).collect()
    }

    /// Unwrapped S21 phase in radians per point.
    pub fn s21_phase_unwrapped(&self) -> Vec<f64> {
        let raw: Vec<f64> = self.sparams.iter().map(|s| s.s21.arg()).collect();
        wiforce_dsp::phase::unwrap(&raw)
    }

    /// Worst (highest) S11 across the sweep, dB.
    pub fn worst_s11_db(&self) -> f64 {
        self.s11_db().into_iter().fold(f64::NEG_INFINITY, f64::max)
    }
}

/// A simulated VNA with trace-noise magnitude/phase floors.
#[derive(Debug, Clone, Copy)]
pub struct Vna {
    /// RMS magnitude trace noise, linear fraction (typ. 0.001 ≈ −60 dB).
    pub mag_noise: f64,
    /// RMS phase trace noise, radians (typ. 0.1° ≈ 0.0017 rad).
    pub phase_noise_rad: f64,
    /// Seed for the deterministic noise process.
    pub seed: u64,
}

impl Vna {
    /// An ideal (noise-free) instrument.
    pub fn ideal() -> Self {
        Vna {
            mag_noise: 0.0,
            phase_noise_rad: 0.0,
            seed: 0,
        }
    }

    /// A realistic bench VNA: −60 dB magnitude floor, 0.1° phase noise.
    pub fn bench() -> Self {
        Vna {
            mag_noise: 1e-3,
            phase_noise_rad: 0.1f64.to_radians(),
            seed: 0x5A11,
        }
    }

    /// Measures a DUT over the sweep. The DUT is any `f → SParams` map.
    pub fn sweep(&self, sweep: FrequencySweep, dut: impl Fn(f64) -> SParams) -> SweepResult {
        let mut noise = TraceNoise::new(self.seed);
        let freqs = sweep.frequencies();
        let sparams = freqs
            .iter()
            .map(|&f| {
                let s = dut(f);
                SParams {
                    s11: self.corrupt(s.s11, &mut noise),
                    s12: self.corrupt(s.s12, &mut noise),
                    s21: self.corrupt(s.s21, &mut noise),
                    s22: self.corrupt(s.s22, &mut noise),
                }
            })
            .collect();
        SweepResult {
            freqs_hz: freqs,
            sparams,
        }
    }

    /// Measures a 1-port reflection at a single frequency.
    pub fn measure_reflection(&self, gamma: Complex) -> Complex {
        let mut noise = TraceNoise::new(self.seed);
        self.corrupt(gamma, &mut noise)
    }

    fn corrupt(&self, z: Complex, noise: &mut TraceNoise) -> Complex {
        if self.mag_noise == 0.0 && self.phase_noise_rad == 0.0 {
            return z;
        }
        let dm = 1.0 + self.mag_noise * noise.next_gaussian();
        let dp = self.phase_noise_rad * noise.next_gaussian();
        z * Complex::from_polar(dm.max(0.0), dp)
    }
}

/// Small deterministic Gaussian stream (xorshift + Box–Muller) so the VNA
/// noise is reproducible without threading a `rand` RNG through the EM
/// crate.
mod rand_like {
    /// Deterministic N(0,1) stream.
    #[derive(Debug, Clone)]
    pub struct TraceNoise {
        state: u64,
        spare: Option<f64>,
    }

    impl TraceNoise {
        /// Seeds the stream (seed 0 is remapped to a fixed constant).
        pub fn new(seed: u64) -> Self {
            TraceNoise {
                state: if seed == 0 { 0x9E3779B9 } else { seed },
                spare: None,
            }
        }

        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.state = x;
            x
        }

        fn next_unit(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Next standard-normal sample.
        pub fn next_gaussian(&mut self) -> f64 {
            if let Some(s) = self.spare.take() {
                return s;
            }
            let u1 = self.next_unit().max(1e-300);
            let u2 = self.next_unit();
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = std::f64::consts::TAU * u2;
            self.spare = Some(r * theta.sin());
            r * theta.cos()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sensor_line::SensorLine;

    #[test]
    fn sweep_frequencies_inclusive() {
        let s = FrequencySweep {
            start_hz: 1e9,
            stop_hz: 2e9,
            points: 5,
        };
        let f = s.frequencies();
        assert_eq!(f.len(), 5);
        assert_eq!(f[0], 1e9);
        assert_eq!(f[4], 2e9);
        assert_eq!(f[2], 1.5e9);
    }

    #[test]
    fn ideal_vna_is_transparent() {
        let line = SensorLine::wiforce_prototype();
        let vna = Vna::ideal();
        let r = vna.sweep(FrequencySweep::wiforce_broadband(), |f| {
            line.rest_sparams(f)
        });
        let direct = line.rest_sparams(r.freqs_hz[10]);
        assert_eq!(r.sparams[10].s21, direct.s21);
    }

    #[test]
    fn bench_vna_noise_is_small_and_deterministic() {
        let line = SensorLine::wiforce_prototype();
        let vna = Vna::bench();
        let sweep = FrequencySweep::wiforce_broadband();
        let a = vna.sweep(sweep, |f| line.rest_sparams(f));
        let b = vna.sweep(sweep, |f| line.rest_sparams(f));
        for (x, y) in a.sparams.iter().zip(&b.sparams) {
            assert_eq!(x.s21, y.s21, "same seed ⇒ same measurement");
        }
        for (i, s) in a.sparams.iter().enumerate() {
            let truth = line.rest_sparams(a.freqs_hz[i]);
            assert!((s.s21.abs() - truth.s21.abs()).abs() < 0.02);
            assert!((s.s21.arg() - truth.s21.arg()).abs() < 0.02);
        }
    }

    #[test]
    fn sweep_result_helpers() {
        let line = SensorLine::wiforce_prototype();
        let r = Vna::ideal().sweep(FrequencySweep::wiforce_broadband(), |f| {
            line.rest_sparams(f)
        });
        assert!(r.worst_s11_db() < -10.0); // the paper's Fig. 10 claim
        let ph = r.s21_phase_unwrapped();
        // unwrapped phase is decreasing (delay line)
        assert!(ph.windows(2).all(|w| w[1] < w[0]));
    }

    #[test]
    #[should_panic]
    fn freq_out_of_range_panics() {
        let s = FrequencySweep {
            start_hz: 1e9,
            stop_hz: 2e9,
            points: 3,
        };
        let _ = s.freq(3);
    }
}

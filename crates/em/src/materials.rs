//! Dielectric materials, including human-tissue phantoms.
//!
//! The paper's §5.2 tests propagation through a three-layer gelatin phantom
//! (muscle 25 mm / fat 10 mm / skin 2 mm) "with dielectric properties
//! selected to mimic human tissue properties". Relative permittivities and
//! conductivities below follow the standard Gabriel tissue database values
//! around 900 MHz (the frequency the paper uses in-body, since 2.4 GHz is
//! strongly attenuated).

use crate::{EPS0, MU0};
use wiforce_dsp::{Complex, TAU};

/// A linear isotropic dielectric described by relative permittivity plus
/// either a loss tangent or an ionic conductivity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Dielectric {
    /// Real relative permittivity εᵣ'.
    pub rel_permittivity: f64,
    /// Loss tangent tan δ (used for substrate-style losses).
    pub loss_tangent: f64,
    /// Ionic conductivity σ, S/m (used for tissue-style losses).
    pub conductivity_s_per_m: f64,
}

impl Dielectric {
    /// Vacuum / dry air.
    pub const AIR: Dielectric = Dielectric {
        rel_permittivity: 1.0,
        loss_tangent: 0.0,
        conductivity_s_per_m: 0.0,
    };

    /// FR-4 PCB laminate.
    pub const FR4: Dielectric = Dielectric {
        rel_permittivity: 4.4,
        loss_tangent: 0.02,
        conductivity_s_per_m: 0.0,
    };

    /// Muscle tissue near 900 MHz (Gabriel database).
    pub const MUSCLE: Dielectric = Dielectric {
        rel_permittivity: 55.0,
        loss_tangent: 0.0,
        conductivity_s_per_m: 0.94,
    };

    /// Fat tissue near 900 MHz.
    pub const FAT: Dielectric = Dielectric {
        rel_permittivity: 5.5,
        loss_tangent: 0.0,
        conductivity_s_per_m: 0.05,
    };

    /// Skin (dry) near 900 MHz.
    pub const SKIN: Dielectric = Dielectric {
        rel_permittivity: 41.0,
        loss_tangent: 0.0,
        conductivity_s_per_m: 0.87,
    };

    /// Complex relative permittivity `εᵣ' − j·(εᵣ'·tanδ + σ/(ω·ε₀))`.
    pub fn complex_permittivity(&self, f_hz: f64) -> Complex {
        let omega = TAU * f_hz;
        let imag = self.rel_permittivity * self.loss_tangent
            + if omega > 0.0 {
                self.conductivity_s_per_m / (omega * EPS0)
            } else {
                0.0
            };
        Complex::new(self.rel_permittivity, -imag)
    }

    /// Complex propagation constant `γ = jω√(με₀ε_c)` for a plane wave in
    /// this medium at `f_hz`; `γ.re` is the attenuation (Np/m), `γ.im` the
    /// phase constant (rad/m).
    pub fn gamma(&self, f_hz: f64) -> Complex {
        let omega = TAU * f_hz;
        let ec = self.complex_permittivity(f_hz) * EPS0;
        (Complex::new(0.0, omega) * Complex::new(0.0, omega) * ec.scale(MU0)).sqrt()
    }

    /// Plane-wave intrinsic impedance `η = √(μ/ε_c)`, Ω.
    pub fn intrinsic_impedance(&self, f_hz: f64) -> Complex {
        let ec = self.complex_permittivity(f_hz) * EPS0;
        (Complex::from_re(MU0) / ec).sqrt()
    }

    /// One-way attenuation in dB over `len_m` at `f_hz`.
    pub fn attenuation_db(&self, f_hz: f64, len_m: f64) -> f64 {
        let alpha = self.gamma(f_hz).re;
        20.0 * alpha * len_m * std::f64::consts::LOG10_E
    }
}

/// One layer of a planar tissue phantom.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TissueLayer {
    /// Layer dielectric.
    pub dielectric: Dielectric,
    /// Layer thickness, m.
    pub thickness_m: f64,
}

/// The paper's three-layer phantom: 25 mm muscle, 10 mm fat, 2 mm skin.
pub fn wiforce_phantom() -> Vec<TissueLayer> {
    vec![
        TissueLayer {
            dielectric: Dielectric::MUSCLE,
            thickness_m: 25e-3,
        },
        TissueLayer {
            dielectric: Dielectric::FAT,
            thickness_m: 10e-3,
        },
        TissueLayer {
            dielectric: Dielectric::SKIN,
            thickness_m: 2e-3,
        },
    ]
}

/// One-way propagation factor (complex amplitude) through a stack of
/// layers at normal incidence, including absorption, per-interface Fresnel
/// transmission from air into/out of the stack, and accumulated phase.
pub fn stack_transmission(layers: &[TissueLayer], f_hz: f64) -> Complex {
    let mut t = Complex::ONE;
    let mut prev = Dielectric::AIR;
    for layer in layers {
        t *= fresnel_transmission(prev, layer.dielectric, f_hz);
        let g = layer.dielectric.gamma(f_hz);
        t *= (-g * layer.thickness_m).exp();
        prev = layer.dielectric;
    }
    t *= fresnel_transmission(prev, Dielectric::AIR, f_hz);
    t
}

/// Fresnel amplitude transmission coefficient from medium `a` into `b` at
/// normal incidence: `τ = 2η_b / (η_a + η_b)`.
pub fn fresnel_transmission(a: Dielectric, b: Dielectric, f_hz: f64) -> Complex {
    let ea = a.intrinsic_impedance(f_hz);
    let eb = b.intrinsic_impedance(f_hz);
    eb.scale(2.0) / (ea + eb)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn air_is_lossless() {
        let g = Dielectric::AIR.gamma(0.9e9);
        assert!(g.re.abs() < 1e-12);
        // β = ω/c
        let beta = TAU * 0.9e9 / wiforce_dsp::C0;
        assert!((g.im - beta).abs() / beta < 1e-9);
        assert!(Dielectric::AIR.attenuation_db(0.9e9, 1.0).abs() < 1e-9);
    }

    #[test]
    fn tissue_has_high_permittivity() {
        // paper §5.2: "materials with high dielectric constants (εᵣ > 10)"
        for d in [Dielectric::MUSCLE, Dielectric::SKIN] {
            assert!(d.rel_permittivity > 10.0, "{d:?}");
        }
    }

    #[test]
    fn muscle_attenuates_strongly_at_900mhz() {
        // published values: muscle α ≈ 1–2.5 dB/cm at 900 MHz
        let db_per_cm = Dielectric::MUSCLE.attenuation_db(0.9e9, 0.01);
        assert!((0.8..3.0).contains(&db_per_cm), "{db_per_cm} dB/cm");
    }

    #[test]
    fn fat_much_more_transparent_than_muscle() {
        let f = 0.9e9;
        assert!(
            Dielectric::FAT.attenuation_db(f, 0.01)
                < 0.3 * Dielectric::MUSCLE.attenuation_db(f, 0.01)
        );
    }

    #[test]
    fn attenuation_grows_with_frequency() {
        // the reason the paper picks 900 MHz over 2.4 GHz for in-body
        let a900 = Dielectric::MUSCLE.attenuation_db(0.9e9, 0.025);
        let a24 = Dielectric::MUSCLE.attenuation_db(2.4e9, 0.025);
        assert!(a24 > a900, "2.4 GHz {a24} dB vs 900 MHz {a900} dB");
    }

    #[test]
    fn intrinsic_impedance_air_377() {
        let eta = Dielectric::AIR.intrinsic_impedance(1e9);
        assert!((eta.re - 376.73).abs() < 0.1);
        assert!(eta.im.abs() < 1e-6);
    }

    #[test]
    fn fresnel_same_medium_is_unity() {
        let t = fresnel_transmission(Dielectric::AIR, Dielectric::AIR, 1e9);
        assert!((t - Complex::ONE).abs() < 1e-12);
    }

    #[test]
    fn phantom_one_way_loss_tens_of_db() {
        // the paper reports ≈110 dB two-way backscatter loss through the
        // phantom including air propagation; the phantom stack itself (one
        // way, both phantom walls ≈ twice through) accounts for a few tens
        // of dB of that
        let t = stack_transmission(&wiforce_phantom(), 0.9e9);
        let db = -20.0 * t.abs().log10();
        assert!((10.0..40.0).contains(&db), "one-way phantom loss {db} dB");
    }

    #[test]
    fn phantom_layers_match_paper() {
        let ph = wiforce_phantom();
        assert_eq!(ph.len(), 3);
        assert_eq!(ph[0].thickness_m, 25e-3);
        assert_eq!(ph[1].thickness_m, 10e-3);
        assert_eq!(ph[2].thickness_m, 2e-3);
    }

    #[test]
    fn complex_permittivity_lossless_at_dc_guard() {
        // no division blow-up at f = 0
        let e = Dielectric::MUSCLE.complex_permittivity(0.0);
        assert!(e.re == 55.0 && e.im == 0.0);
    }
}

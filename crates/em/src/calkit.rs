//! One-port VNA error model and Short-Open-Load calibration.
//!
//! The paper's §4.2 sensor model is built from VNA phase readings, which
//! are only as good as the instrument's calibration. A real reflection
//! measurement sees the DUT through a three-term error network —
//! directivity `e00`, source match `e11`, and reflection tracking
//! `e10·e01`:
//!
//! ```text
//! Γ_measured = e00 + (e10e01 · Γ_actual) / (1 − e11 · Γ_actual)
//! ```
//!
//! Measuring the three known standards (short Γ=−1, open Γ=+1, load Γ=0)
//! determines the three terms exactly, after which raw measurements can be
//! corrected. This module provides the error network, the SOL solver, and
//! the correction — so the reproduction's "VNA ground truth" can carry a
//! realistic uncalibrated-instrument ablation.

use wiforce_dsp::Complex;

/// Three-term one-port error network.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorModel {
    /// Directivity: leakage that returns without reaching the DUT.
    pub e00: Complex,
    /// Source match: re-reflection between instrument and DUT.
    pub e11: Complex,
    /// Reflection tracking: the product `e10·e01` (round-trip gain).
    pub tracking: Complex,
}

impl ErrorModel {
    /// A perfect instrument (no correction needed).
    pub fn ideal() -> Self {
        ErrorModel {
            e00: Complex::ZERO,
            e11: Complex::ZERO,
            tracking: Complex::ONE,
        }
    }

    /// A plausible bench-top instrument before user calibration: −30 dB
    /// directivity, −25 dB source match, 1 dB tracking ripple with phase.
    pub fn uncalibrated_bench() -> Self {
        ErrorModel {
            e00: Complex::from_polar(0.032, 0.8),
            e11: Complex::from_polar(0.056, -1.9),
            tracking: Complex::from_polar(0.89, 0.35),
        }
    }

    /// What the instrument reports for an actual reflection `gamma`.
    pub fn apply(&self, gamma: Complex) -> Complex {
        self.e00 + (self.tracking * gamma) / (Complex::ONE - self.e11 * gamma)
    }

    /// Inverts [`apply`](Self::apply): recovers the actual reflection from
    /// a raw measurement.
    pub fn correct(&self, measured: Complex) -> Complex {
        let num = measured - self.e00;
        num / (self.tracking + self.e11 * num)
    }

    /// Solves the error terms from raw measurements of the three ideal
    /// standards: short (Γ=−1), open (Γ=+1), load (Γ=0).
    pub fn from_sol(m_short: Complex, m_open: Complex, m_load: Complex) -> Self {
        // load: Γ=0 ⇒ e00 = m_load
        let e00 = m_load;
        let a = m_short - e00; // = -T / (1 + e11)
        let b = m_open - e00; // =  T / (1 - e11)
                              // a·(1+e11) = -T ;  b·(1-e11) = T  ⇒  a + a·e11 = -b + b·e11
                              // ⇒ e11 = (a + b) / (b - a)
        let e11 = (a + b) / (b - a);
        let tracking = b * (Complex::ONE - e11);
        ErrorModel { e00, e11, tracking }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex, b: Complex, tol: f64) -> bool {
        (a - b).abs() < tol
    }

    #[test]
    fn ideal_is_transparent() {
        let m = ErrorModel::ideal();
        let g = Complex::from_polar(0.8, 1.2);
        assert!(close(m.apply(g), g, 1e-12));
        assert!(close(m.correct(g), g, 1e-12));
    }

    #[test]
    fn apply_correct_round_trip() {
        let m = ErrorModel::uncalibrated_bench();
        for k in 0..24 {
            let g = Complex::from_polar(0.05 + 0.04 * k as f64 % 0.95, k as f64 * 0.7);
            let corrected = m.correct(m.apply(g));
            assert!(close(corrected, g, 1e-12), "{g:?} -> {corrected:?}");
        }
    }

    #[test]
    fn sol_recovers_error_terms() {
        let truth = ErrorModel::uncalibrated_bench();
        let m_short = truth.apply(-Complex::ONE);
        let m_open = truth.apply(Complex::ONE);
        let m_load = truth.apply(Complex::ZERO);
        let solved = ErrorModel::from_sol(m_short, m_open, m_load);
        assert!(close(solved.e00, truth.e00, 1e-12));
        assert!(close(solved.e11, truth.e11, 1e-12));
        assert!(close(solved.tracking, truth.tracking, 1e-12));
    }

    #[test]
    fn calibrated_measurement_of_sensor_phase() {
        // the end-use: raw sensor reflections through an uncalibrated
        // instrument are badly distorted; SOL-corrected ones are exact
        use crate::sensor_line::{SensorLine, Termination};
        let line = SensorLine::wiforce_prototype();
        let inst = ErrorModel::uncalibrated_bench();
        let cal = ErrorModel::from_sol(
            inst.apply(-Complex::ONE),
            inst.apply(Complex::ONE),
            inst.apply(Complex::ZERO),
        );
        let truth = line.port_reflection(0.9e9, Some(0.03), Termination::Open);
        let raw = inst.apply(truth);
        let corrected = cal.correct(raw);
        assert!(
            (raw - truth).abs() > 0.02,
            "uncalibrated should be visibly wrong"
        );
        assert!(close(corrected, truth, 1e-10));
    }

    #[test]
    fn phase_error_of_uncalibrated_instrument_is_significant() {
        // quantifies why the paper calibrates: a few degrees of phase error
        // dwarfs the 0.5° sensing requirement
        use wiforce_dsp::phase::wrap_to_pi;
        let inst = ErrorModel::uncalibrated_bench();
        let g = Complex::from_polar(0.9, -2.0);
        let err = wrap_to_pi((inst.apply(g).arg() - g.arg()).abs());
        assert!(err.to_degrees() > 1.0, "{}", err.to_degrees());
    }
}

//! Two-port network algebra: ABCD (chain) matrices and S-parameters.
//!
//! The sensor, switches and splitter compose as cascaded two-ports; the VNA
//! simulator reports S-parameters. Standard microwave network theory
//! (Pozar/Steer conventions), reference impedance 50 Ω unless stated.

use crate::Z_REF;
use wiforce_dsp::Complex;

/// An ABCD (chain) matrix `[A B; C D]` with complex entries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Abcd {
    /// A entry (dimensionless).
    pub a: Complex,
    /// B entry (Ω).
    pub b: Complex,
    /// C entry (S).
    pub c: Complex,
    /// D entry (dimensionless).
    pub d: Complex,
}

impl Abcd {
    /// Identity (a zero-length thru).
    pub fn identity() -> Self {
        Abcd {
            a: Complex::ONE,
            b: Complex::ZERO,
            c: Complex::ZERO,
            d: Complex::ONE,
        }
    }

    /// A series impedance `Z`.
    pub fn series(z: Complex) -> Self {
        Abcd {
            a: Complex::ONE,
            b: z,
            c: Complex::ZERO,
            d: Complex::ONE,
        }
    }

    /// A shunt admittance `Y`.
    pub fn shunt(y: Complex) -> Self {
        Abcd {
            a: Complex::ONE,
            b: Complex::ZERO,
            c: y,
            d: Complex::ONE,
        }
    }

    /// A transmission-line segment with characteristic impedance `z0`,
    /// propagation constant `gamma` (1/m) and length `len_m`.
    pub fn line(z0: Complex, gamma: Complex, len_m: f64) -> Self {
        let gl = gamma * len_m;
        // cosh/sinh of complex argument via exponentials
        let ep = gl.exp();
        let em = (-gl).exp();
        let cosh = (ep + em).scale(0.5);
        let sinh = (ep - em).scale(0.5);
        Abcd {
            a: cosh,
            b: z0 * sinh,
            c: sinh / z0,
            d: cosh,
        }
    }

    /// An ideal transformer with turns ratio `n` (port1:port2 = n:1).
    pub fn transformer(n: f64) -> Self {
        Abcd {
            a: Complex::from_re(n),
            b: Complex::ZERO,
            c: Complex::ZERO,
            d: Complex::from_re(1.0 / n),
        }
    }

    /// Cascade: `self` followed by `next` (matrix product).
    pub fn cascade(&self, next: &Abcd) -> Abcd {
        Abcd {
            a: self.a * next.a + self.b * next.c,
            b: self.a * next.b + self.b * next.d,
            c: self.c * next.a + self.d * next.c,
            d: self.c * next.b + self.d * next.d,
        }
    }

    /// Determinant (1 for reciprocal networks).
    pub fn det(&self) -> Complex {
        self.a * self.d - self.b * self.c
    }

    /// Converts to S-parameters in a real reference impedance `z_ref`.
    pub fn to_sparams(&self, z_ref: f64) -> SParams {
        let z0 = Complex::from_re(z_ref);
        let denom = self.a + self.b / z0 + self.c * z0 + self.d;
        SParams {
            s11: (self.a + self.b / z0 - self.c * z0 - self.d) / denom,
            s12: self.det().scale(2.0) / denom,
            s21: Complex::from_re(2.0) / denom,
            s22: (-self.a + self.b / z0 - self.c * z0 + self.d) / denom,
        }
    }

    /// Input impedance at port 1 when port 2 is terminated by `z_load`.
    pub fn input_impedance(&self, z_load: Complex) -> Complex {
        (self.a * z_load + self.b) / (self.c * z_load + self.d)
    }

    /// Reflection coefficient at port 1 (reference `z_ref`) when port 2 is
    /// terminated by `z_load`.
    pub fn input_reflection(&self, z_load: Complex, z_ref: f64) -> Complex {
        let zin = self.input_impedance(z_load);
        let zr = Complex::from_re(z_ref);
        (zin - zr) / (zin + zr)
    }
}

/// Scattering parameters of a two-port at one frequency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SParams {
    /// Port-1 reflection.
    pub s11: Complex,
    /// Reverse transmission.
    pub s12: Complex,
    /// Forward transmission.
    pub s21: Complex,
    /// Port-2 reflection.
    pub s22: Complex,
}

impl SParams {
    /// Return loss at port 1, dB (positive number = good match).
    pub fn return_loss_db(&self) -> f64 {
        -20.0 * self.s11.abs().log10()
    }

    /// Insertion loss, dB (positive number = loss).
    pub fn insertion_loss_db(&self) -> f64 {
        -20.0 * self.s21.abs().log10()
    }

    /// |S11| in dB (negative for matched networks, as plotted in Fig. 10).
    pub fn s11_db(&self) -> f64 {
        20.0 * self.s11.abs().log10()
    }

    /// |S21| in dB.
    pub fn s21_db(&self) -> f64 {
        20.0 * self.s21.abs().log10()
    }
}

/// Converts a real impedance to the reflection coefficient in `Z_REF`.
pub fn reflection_of(z: Complex) -> Complex {
    let zr = Complex::from_re(Z_REF);
    (z - zr) / (z + zr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wiforce_dsp::TAU;

    fn close(a: Complex, b: Complex, tol: f64) -> bool {
        (a - b).abs() < tol
    }

    #[test]
    fn identity_is_perfect_thru() {
        let s = Abcd::identity().to_sparams(50.0);
        assert!(close(s.s11, Complex::ZERO, 1e-12));
        assert!(close(s.s21, Complex::ONE, 1e-12));
        assert!(s.insertion_loss_db().abs() < 1e-9);
    }

    #[test]
    fn cascade_with_identity_is_noop() {
        let line = Abcd::line(Complex::from_re(75.0), Complex::new(0.1, 30.0), 0.1);
        let c = line.cascade(&Abcd::identity());
        assert!(close(c.a, line.a, 1e-12) && close(c.d, line.d, 1e-12));
    }

    #[test]
    fn series_resistor_splits_power() {
        // 50 Ω series resistor in a 50 Ω system: S21 = 2·50/(2·50+50) = 2/3
        let s = Abcd::series(Complex::from_re(50.0)).to_sparams(50.0);
        assert!((s.s21.re - 2.0 / 3.0).abs() < 1e-12);
        assert!((s.s11.re - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn matched_line_has_no_reflection() {
        let z0 = Complex::from_re(50.0);
        let gamma = Complex::new(0.0, TAU * 1e9 / wiforce_dsp::C0);
        let s = Abcd::line(z0, gamma, 0.123).to_sparams(50.0);
        assert!(s.s11.abs() < 1e-12, "{:?}", s.s11);
        assert!((s.s21.abs() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn line_phase_matches_beta_length() {
        let z0 = Complex::from_re(50.0);
        let beta = TAU * 1e9 / wiforce_dsp::C0;
        let len = 0.05;
        let s = Abcd::line(z0, Complex::new(0.0, beta), len).to_sparams(50.0);
        // S21 = e^{-jβl}
        assert!(
            (s.s21.arg() + beta * len).abs() < 1e-9
                || (s.s21.arg() + beta * len - TAU).abs() < 1e-9
        );
    }

    #[test]
    fn quarter_wave_transformer_inverts_impedance() {
        // classic: Zin = Z0²/ZL for a λ/4 line
        let z0 = 70.7;
        let f = 1e9;
        let lambda = wiforce_dsp::C0 / f;
        let line = Abcd::line(
            Complex::from_re(z0),
            Complex::new(0.0, TAU / lambda),
            lambda / 4.0,
        );
        let zin = line.input_impedance(Complex::from_re(100.0));
        assert!((zin.re - z0 * z0 / 100.0).abs() < 1e-6, "{zin:?}");
        assert!(zin.im.abs() < 1e-6);
    }

    #[test]
    fn shorted_line_reflection_phase() {
        // shorted lossless line of length l: Γ_in = -e^{-2jβl}
        let beta = TAU * 0.9e9 / wiforce_dsp::C0;
        let len = 0.030;
        let line = Abcd::line(Complex::from_re(50.0), Complex::new(0.0, beta), len);
        let g = line.input_reflection(Complex::ZERO, 50.0);
        assert!((g.abs() - 1.0).abs() < 1e-9);
        let expect = -Complex::cis(-2.0 * beta * len);
        assert!(close(g, expect, 1e-9), "{g:?} vs {expect:?}");
    }

    #[test]
    fn reciprocal_network_det_is_one() {
        let net = Abcd::series(Complex::new(10.0, 5.0))
            .cascade(&Abcd::shunt(Complex::new(0.01, -0.02)))
            .cascade(&Abcd::line(
                Complex::from_re(60.0),
                Complex::new(0.05, 20.0),
                0.2,
            ));
        assert!(close(net.det(), Complex::ONE, 1e-9));
        // and S12 == S21 for reciprocal networks
        let s = net.to_sparams(50.0);
        assert!(close(s.s12, s.s21, 1e-9));
    }

    #[test]
    fn transformer_matches_impedance() {
        // 2:1 transformer makes 12.5 Ω look like 50 Ω
        let t = Abcd::transformer(2.0);
        let zin = t.input_impedance(Complex::from_re(12.5));
        assert!((zin.re - 50.0).abs() < 1e-9);
    }

    #[test]
    fn lossy_line_attenuates() {
        let alpha = 2.0; // Np/m
        let s =
            Abcd::line(Complex::from_re(50.0), Complex::new(alpha, 100.0), 0.1).to_sparams(50.0);
        let il = s.insertion_loss_db();
        // 0.2 Np → 1.737 dB
        assert!((il - 0.2 * 8.686).abs() < 1e-3, "{il}");
    }
}

//! Microstrip transmission-line model.
//!
//! The paper's Appendix gives the air-substrate microstrip impedance as
//! `Z = 60·ln[6h/w + √(1 + (2h/w)²)]` (Steer, *Microwave and RF Design*),
//! from which setting `Z = 50 Ω` yields the operating width:height ratio of
//! ≈5:1, shifting to ≈4:1 once the ground trace is widened for SMA
//! interfacing (Fig. 19). We implement that formula, the Hammerstad–Jensen
//! effective permittivity for dielectric substrates, the propagation
//! constant, and a skin-effect conductor-loss estimate.

use crate::materials::Dielectric;
use crate::MU0;
use wiforce_dsp::{Complex, C0, PI, TAU};

/// A microstrip line: signal trace of width `w` suspended `h` above a
/// ground plane, on a substrate dielectric (air for the WiForce sensor).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Microstrip {
    /// Signal trace width, m.
    pub trace_width_m: f64,
    /// Substrate height (trace-to-ground separation), m.
    pub height_m: f64,
    /// Substrate dielectric.
    pub substrate: Dielectric,
    /// Trace conductivity, S/m (copper by default).
    pub conductivity_s_per_m: f64,
}

impl Microstrip {
    /// The paper's sensor line: 2.5 mm trace, 0.63 mm air gap, copper.
    pub fn wiforce_sensor() -> Self {
        Microstrip {
            trace_width_m: 2.5e-3,
            height_m: 0.63e-3,
            substrate: Dielectric::AIR,
            conductivity_s_per_m: 5.8e7,
        }
    }

    /// Characteristic impedance (Ω) via the paper's Appendix formula:
    /// `Z = 60/√ε_eff · ln[6h/w + √(1 + (2h/w)²)]`.
    pub fn impedance_ohm(&self) -> f64 {
        let r = self.height_m / self.trace_width_m;
        let z_air = 60.0 * (6.0 * r + (1.0 + (2.0 * r) * (2.0 * r)).sqrt()).ln();
        z_air / self.effective_permittivity().sqrt()
    }

    /// Effective relative permittivity (Hammerstad–Jensen). Equals 1 for an
    /// air substrate.
    pub fn effective_permittivity(&self) -> f64 {
        let er = self.substrate.rel_permittivity;
        if (er - 1.0).abs() < 1e-12 {
            return 1.0;
        }
        let u = self.trace_width_m / self.height_m;
        0.5 * (er + 1.0) + 0.5 * (er - 1.0) / (1.0 + 12.0 / u).sqrt()
    }

    /// Phase velocity on the line, m/s.
    pub fn phase_velocity(&self) -> f64 {
        C0 / self.effective_permittivity().sqrt()
    }

    /// Phase constant β at frequency `f_hz`, rad/m.
    pub fn beta(&self, f_hz: f64) -> f64 {
        TAU * f_hz / self.phase_velocity()
    }

    /// Conductor attenuation constant α at `f_hz`, Np/m (skin effect):
    /// `α_c = R_s / (Z₀·w)` with surface resistance `R_s = √(πfμ/σ)`.
    pub fn alpha_conductor(&self, f_hz: f64) -> f64 {
        if f_hz <= 0.0 {
            return 0.0;
        }
        let rs = (PI * f_hz * MU0 / self.conductivity_s_per_m).sqrt();
        rs / (self.impedance_ohm() * self.trace_width_m)
    }

    /// Dielectric attenuation constant at `f_hz`, Np/m (zero for air).
    pub fn alpha_dielectric(&self, f_hz: f64) -> f64 {
        let tan_d = self.substrate.loss_tangent;
        if tan_d == 0.0 {
            return 0.0;
        }
        // standard quasi-TEM dielectric loss formula
        let er = self.substrate.rel_permittivity;
        let ee = self.effective_permittivity();
        let k0 = TAU * f_hz / C0;
        k0 * er * (ee - 1.0) * tan_d / (2.0 * ee.sqrt() * (er - 1.0))
    }

    /// Complex propagation constant `γ = α + jβ` at `f_hz`.
    pub fn gamma(&self, f_hz: f64) -> Complex {
        Complex::new(
            self.alpha_conductor(f_hz) + self.alpha_dielectric(f_hz),
            self.beta(f_hz),
        )
    }

    /// One-way phase accumulated over `len_m` of line at `f_hz`, rad.
    pub fn phase_over(&self, f_hz: f64, len_m: f64) -> f64 {
        self.beta(f_hz) * len_m
    }

    /// One-way amplitude factor over `len_m` of line at `f_hz` (≤ 1).
    pub fn loss_over(&self, f_hz: f64, len_m: f64) -> f64 {
        (-(self.alpha_conductor(f_hz) + self.alpha_dielectric(f_hz)) * len_m).exp()
    }

    /// Width:height ratio `w/h` giving exactly `z_target` Ω on this
    /// substrate (bisection on the monotone impedance formula).
    pub fn ratio_for_impedance(substrate: Dielectric, z_target: f64) -> f64 {
        let z_of = |wh: f64| -> f64 {
            Microstrip {
                trace_width_m: wh,
                height_m: 1.0,
                substrate,
                conductivity_s_per_m: 5.8e7,
            }
            .impedance_ohm()
        };
        // impedance decreases with w/h
        let (mut lo, mut hi) = (0.05_f64, 100.0_f64);
        for _ in 0..80 {
            let mid = 0.5 * (lo + hi);
            if z_of(mid) > z_target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_appendix_ratio_is_about_five_to_one() {
        // "Setting Z = 50 Ω in the above equation gives us the operating
        // w/h ratio to be approximately 5:1" (paper Appendix)
        let ratio = Microstrip::ratio_for_impedance(Dielectric::AIR, 50.0);
        assert!((4.4..5.6).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn prototype_impedance_near_fifty() {
        // w/h = 2.5/0.63 ≈ 3.97 gives a bit above 50 Ω on the ideal
        // formula (the HFSS ground-width correction brings it to 50)
        let z = Microstrip::wiforce_sensor().impedance_ohm();
        assert!((50.0..62.0).contains(&z), "Z = {z}");
    }

    #[test]
    fn impedance_monotone_decreasing_in_width() {
        let mut prev = f64::INFINITY;
        for w in [1e-3, 2e-3, 4e-3, 8e-3] {
            let z = Microstrip {
                trace_width_m: w,
                ..Microstrip::wiforce_sensor()
            }
            .impedance_ohm();
            assert!(z < prev);
            prev = z;
        }
    }

    #[test]
    fn air_substrate_travels_at_c() {
        let m = Microstrip::wiforce_sensor();
        assert_eq!(m.effective_permittivity(), 1.0);
        assert!((m.phase_velocity() - C0).abs() < 1.0);
    }

    #[test]
    fn dielectric_substrate_slows_wave() {
        let m = Microstrip {
            substrate: Dielectric::FR4,
            ..Microstrip::wiforce_sensor()
        };
        let ee = m.effective_permittivity();
        assert!(ee > 1.5 && ee < m.substrate.rel_permittivity);
        assert!(m.phase_velocity() < C0);
    }

    #[test]
    fn beta_scales_linearly_with_frequency() {
        let m = Microstrip::wiforce_sensor();
        let b1 = m.beta(0.9e9);
        let b2 = m.beta(1.8e9);
        assert!((b2 / b1 - 2.0).abs() < 1e-12);
        // 900 MHz in air: β = 2π·f/c ≈ 18.86 rad/m
        assert!((b1 - TAU * 0.9e9 / C0).abs() < 1e-9);
    }

    #[test]
    fn phase_over_sensor_length() {
        // full 80 mm at 900 MHz ≈ 1.51 rad ≈ 86°
        let m = Microstrip::wiforce_sensor();
        let phi = m.phase_over(0.9e9, 0.080);
        assert!((phi - 1.509).abs() < 0.01, "{phi}");
    }

    #[test]
    fn conductor_loss_grows_with_sqrt_frequency() {
        let m = Microstrip::wiforce_sensor();
        let a1 = m.alpha_conductor(1e9);
        let a4 = m.alpha_conductor(4e9);
        assert!((a4 / a1 - 2.0).abs() < 1e-9);
        assert_eq!(m.alpha_conductor(0.0), 0.0);
    }

    #[test]
    fn sensor_is_low_loss() {
        // thru loss over 80 mm at 3 GHz should be a fraction of a dB
        // (paper Fig. 10: S12 ≈ 0 dB)
        let m = Microstrip::wiforce_sensor();
        let loss = m.loss_over(3e9, 0.080);
        let loss_db = -20.0 * loss.log10();
        assert!(loss_db < 0.5, "{loss_db} dB");
        assert_eq!(m.alpha_dielectric(3e9), 0.0); // air
    }

    #[test]
    fn gamma_combines_alpha_beta() {
        let m = Microstrip::wiforce_sensor();
        let g = m.gamma(2.4e9);
        assert!((g.im - m.beta(2.4e9)).abs() < 1e-12);
        assert!((g.re - m.alpha_conductor(2.4e9)).abs() < 1e-15);
    }
}

#![warn(missing_docs)]

//! # wiforce-em
//!
//! RF/electromagnetics substrate for the WiForce reproduction.
//!
//! The WiForce sensor is electrically an air-substrate microstrip
//! transmission line (paper §4.1/Appendix): 2.5 mm signal trace suspended
//! 0.63 mm above a 6 mm ground trace, 80 mm long, broadband to 3 GHz. A
//! press shorts the line at the contact-patch edges, and the reflected
//! phase encodes how far the signal travelled before the short. The paper
//! characterizes all of this with a VNA and Ansys HFSS; this crate provides
//! the software equivalents:
//!
//! * [`microstrip`] — impedance (the paper's Appendix formula), effective
//!   permittivity, propagation constant, conductor loss.
//! * [`twoport`] — complex ABCD two-port algebra, cascading, and
//!   S-parameter conversion in a 50 Ω system.
//! * [`materials`] — complex-permittivity dielectrics, including the
//!   gelatin tissue-phantom layers (muscle/fat/skin) of §5.2.
//! * [`sensor_line`] — the sensor as an RF network: per-port reflection
//!   coefficients given a contact patch and the far-end termination.
//! * [`vna`] — a two-port vector-network-analyzer simulator (Fig. 10,
//!   Table 1 wired baselines).
//! * [`calkit`] — one-port error model + Short-Open-Load calibration
//!   (why the wired ground truth can be trusted to sub-degree phase).
//! * [`hfss`] — a parametric solver stand-in for the Appendix's HFSS study
//!   of trace-ratio vs ground-width (Fig. 19).

pub mod antenna;
pub mod calkit;
pub mod hfss;
pub mod materials;
pub mod microstrip;
pub mod sensor_line;
pub mod twoport;
pub mod vna;

pub use materials::Dielectric;
pub use microstrip::Microstrip;
pub use sensor_line::{SensorLine, Termination};
pub use twoport::{Abcd, SParams};

/// Reference system impedance, Ω.
pub const Z_REF: f64 = 50.0;

/// Vacuum permeability, H/m.
pub const MU0: f64 = 1.256_637_062_12e-6;

/// Vacuum permittivity, F/m.
pub const EPS0: f64 = 8.854_187_812_8e-12;

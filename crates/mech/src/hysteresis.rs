//! Viscoelastic hysteresis for press sequences.
//!
//! Ecoflex is viscoelastic: the contact patch for a given force differs
//! between the loading and unloading branches of a press cycle, and the
//! paper's own measurement clouds (Table 1) show the resulting scatter.
//! This module wraps any [`ForceTransducer`] with a *play operator* (the
//! scalar Prandtl–Ishlinskii building block) plus first-order creep, so
//! time-series workloads (ramps, staircases) exercise realistic
//! loading/unloading asymmetry.

use crate::patch::ContactPatch;
use crate::ForceTransducer;

/// Stateful hysteretic wrapper around a memoryless transducer.
///
/// The *effective* force driving the contact model trails the applied
/// force inside a play band of width `play_n` and relaxes toward it with
/// time constant `creep_tau_s`:
///
/// * ramp up: effective ≈ applied − play/2 (patch lags behind);
/// * ramp down: effective ≈ applied + play/2 (patch releases late);
/// * hold: effective creeps toward applied.
#[derive(Debug, Clone)]
pub struct Hysteretic<T> {
    inner: T,
    /// Play-band width, N.
    play_n: f64,
    /// Creep time constant, s.
    creep_tau_s: f64,
    effective_n: f64,
    last_t_s: Option<f64>,
}

impl<T: ForceTransducer> Hysteretic<T> {
    /// Wraps a transducer with Ecoflex-like defaults: 0.4 N play band,
    /// 1.5 s creep.
    pub fn new(inner: T) -> Self {
        Hysteretic {
            inner,
            play_n: 0.4,
            creep_tau_s: 1.5,
            effective_n: 0.0,
            last_t_s: None,
        }
    }

    /// Overrides the play-band width (N).
    pub fn with_play(mut self, play_n: f64) -> Self {
        self.play_n = play_n.max(0.0);
        self
    }

    /// Overrides the creep time constant (s).
    pub fn with_creep_tau(mut self, tau_s: f64) -> Self {
        self.creep_tau_s = tau_s.max(1e-6);
        self
    }

    /// The wrapped transducer.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// Resets the internal state (sensor fully relaxed).
    pub fn reset(&mut self) {
        self.effective_n = 0.0;
        self.last_t_s = None;
    }

    /// Advances the state to time `t_s` with applied force `force_n` and
    /// returns the effective force driving the contact.
    pub fn effective_force(&mut self, t_s: f64, force_n: f64) -> f64 {
        // play operator: effective stays within ±play/2 of applied
        let half = self.play_n / 2.0;
        self.effective_n = self.effective_n.clamp(force_n - half, force_n + half);
        // creep toward the applied force over elapsed time
        if let Some(last) = self.last_t_s {
            let dt = (t_s - last).max(0.0);
            let alpha = 1.0 - (-dt / self.creep_tau_s).exp();
            self.effective_n += alpha * (force_n - self.effective_n);
        }
        self.last_t_s = Some(t_s);
        self.effective_n = self.effective_n.max(0.0);
        self.effective_n
    }

    /// The contact patch at time `t_s` under applied `force_n`, advancing
    /// the hysteresis state.
    pub fn press(&mut self, t_s: f64, force_n: f64, location_m: f64) -> Option<ContactPatch> {
        let eff = self.effective_force(t_s, force_n);
        self.inner.contact_patch(eff, location_m)
    }

    /// Sensor length, m.
    pub fn length_m(&self) -> f64 {
        self.inner.length_m()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contact::SensorMech;
    use crate::{AnalyticContactModel, Indenter};

    fn wrapped() -> Hysteretic<AnalyticContactModel> {
        Hysteretic::new(AnalyticContactModel::new(
            SensorMech::wiforce_prototype(),
            Indenter::actuator_tip(),
        ))
    }

    #[test]
    fn loading_lags_unloading_leads() {
        let mut h = wrapped().with_creep_tau(1e9); // isolate the play band
                                                   // fast ramp up to 4 N
        let mut t = 0.0;
        for k in 0..=40 {
            h.effective_force(t, k as f64 * 0.1);
            t += 0.01;
        }
        let up = h.effective_force(t, 4.0);
        assert!(up < 4.0, "loading branch should lag: {up}");
        // ramp past to 6 N then back down to 4 N
        for k in 0..=20 {
            h.effective_force(t, 4.0 + k as f64 * 0.1);
            t += 0.01;
        }
        for k in 0..=20 {
            h.effective_force(t, 6.0 - k as f64 * 0.1);
            t += 0.01;
        }
        let down = h.effective_force(t, 4.0);
        assert!(down > 4.0, "unloading branch should lead: {down}");
        assert!(
            down - up > 0.2,
            "hysteresis loop should open: {up} vs {down}"
        );
    }

    #[test]
    fn creep_closes_the_gap_on_hold() {
        let mut h = wrapped().with_play(0.4).with_creep_tau(0.5);
        let mut t = 0.0;
        for k in 0..=40 {
            h.effective_force(t, k as f64 * 0.1);
            t += 0.01;
        }
        let fresh = h.effective_force(t, 4.0);
        // hold for many time constants
        let settled = h.effective_force(t + 10.0, 4.0);
        assert!(
            (settled - 4.0).abs() < 0.02,
            "creep should settle: {settled}"
        );
        assert!((fresh - 4.0).abs() > (settled - 4.0).abs());
    }

    #[test]
    fn patch_differs_between_branches() {
        let mut h = wrapped().with_creep_tau(1e9);
        let mut t = 0.0;
        let mut step = |h: &mut Hysteretic<_>, f: f64| {
            let p = h.press(t, f, 0.040);
            t += 0.01;
            p
        };
        for k in 0..=40 {
            step(&mut h, k as f64 * 0.1);
        }
        let up = step(&mut h, 4.0).unwrap();
        for k in 0..=20 {
            step(&mut h, 4.0 + k as f64 * 0.1);
        }
        for k in 0..=20 {
            step(&mut h, 6.0 - k as f64 * 0.1);
        }
        let down = step(&mut h, 4.0).unwrap();
        assert!(
            down.width_m() > up.width_m(),
            "unloading patch should stay wider: {down:?} vs {up:?}"
        );
    }

    #[test]
    fn effective_force_never_negative() {
        let mut h = wrapped();
        h.effective_force(0.0, 1.0);
        let e = h.effective_force(0.1, 0.0);
        assert!(e >= 0.0);
    }

    #[test]
    fn reset_clears_memory() {
        let mut h = wrapped();
        h.effective_force(0.0, 5.0);
        h.reset();
        assert_eq!(h.effective_force(1.0, 0.0), 0.0);
    }
}

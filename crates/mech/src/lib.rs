#![warn(missing_docs)]

//! # wiforce-mech
//!
//! Beam-mechanics substrate for the WiForce reproduction.
//!
//! WiForce's transduction mechanism (paper §3.1) is mechanical: a soft
//! elastomer beam carrying the signal trace is pressed down onto the ground
//! trace. The contact patch — bounded by two *shorting points* — widens as
//! force increases, and does so asymmetrically when pressed off-centre. The
//! paper used a fabricated Ecoflex sensor, an actuated indenter and a load
//! cell; we replace those with:
//!
//! * [`material`] — elastomer and conductor material properties.
//! * [`beam`] — Euler–Bernoulli beam geometry/stiffness.
//! * [`indenter`] — indenter (press) shapes: point, flat punch, fingertip.
//! * [`contact`] — a discretized unilateral-contact solver: the beam
//!   deflects under the spread indenter load, contacts the rigid ground
//!   plane (penalty formulation), and the solver reports the contact patch.
//! * [`patch`] — the [`patch::ContactPatch`] result type (shorting points).
//! * [`analytic`] — a fast closed-form phenomenological model matching the
//!   paper's described behaviour, cross-validated against the full solver
//!   and used for large Monte-Carlo sweeps.
//! * [`profile`] — time-series force profiles (actuator ramps, human
//!   fingertip staircases with tremor) used as workloads.
//! * [`hysteresis`] — viscoelastic play + creep wrapper for time-series
//!   presses (loading/unloading asymmetry).
//!
//! The two models implement the common [`ForceTransducer`] trait consumed by
//! the RF layer: `(force, location) → contact patch`.

pub mod analytic;
pub mod beam;
pub mod contact;
pub mod dynamics;
pub mod hysteresis;
pub mod indenter;
pub mod material;
pub mod patch;
pub mod profile;

pub use analytic::AnalyticContactModel;
pub use beam::BeamGeometry;
pub use contact::{ContactSolver, SensorMech};
pub use indenter::Indenter;
pub use material::Elastomer;
pub use patch::ContactPatch;

/// Maps an applied press `(force_n, location_m)` to the resulting contact
/// patch on the sensor, or `None` when the press is too light to close the
/// gap.
///
/// Implemented by both the full finite-difference contact solver
/// ([`ContactSolver`]) and the fast phenomenological model
/// ([`AnalyticContactModel`]).
pub trait ForceTransducer {
    /// Sensor length in metres (the mechanical/electrical continuum).
    fn length_m(&self) -> f64;

    /// Computes the contact patch for a press of `force_n` newtons at
    /// `location_m` metres from port 1's end. Returns `None` below the
    /// touch threshold.
    fn contact_patch(&self, force_n: f64, location_m: f64) -> Option<ContactPatch>;

    /// Minimum force (N) that produces any contact when pressing at the
    /// given location. Default implementation bisects `contact_patch`.
    fn touch_threshold_n(&self, location_m: f64) -> f64 {
        let (mut lo, mut hi) = (0.0_f64, 1.0_f64);
        // grow hi until contact or give up at 100 N
        while self.contact_patch(hi, location_m).is_none() && hi < 100.0 {
            hi *= 2.0;
        }
        if hi >= 100.0 {
            return f64::INFINITY;
        }
        for _ in 0..40 {
            let mid = 0.5 * (lo + hi);
            if self.contact_patch(mid, location_m).is_some() {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        hi
    }
}

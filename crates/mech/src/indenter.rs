//! Indenter (press) shapes.
//!
//! The paper's evaluation uses an actuated indenter with a load cell for
//! ground truth (§4.2, Fig. 11), and a human fingertip (~10 mm wide, §5.3)
//! for the UI experiments. The indenter shape sets the footprint over which
//! force enters the soft beam before the elastomer spreads it further.

/// Cross-sectional pressure footprint of an indenter pressing the sensor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Indenter {
    /// Idealized knife-edge / point contact (zero footprint).
    Point,
    /// Rigid flat punch of the given width (m) — the paper's actuated
    /// indenter tip.
    Flat {
        /// Footprint width along the sensor axis, m.
        width_m: f64,
    },
    /// Human fingertip: compliant pad approximated by a raised-cosine
    /// pressure footprint of the given width (m), nominally 10 mm.
    Fingertip {
        /// Effective pad width along the sensor axis, m.
        width_m: f64,
    },
}

impl Indenter {
    /// The paper's actuated indenter: 2 mm flat tip.
    pub fn actuator_tip() -> Self {
        Indenter::Flat { width_m: 2e-3 }
    }

    /// Typical human fingertip (paper §5.3: width/thickness ≈ 10 mm).
    pub fn fingertip() -> Self {
        Indenter::Fingertip { width_m: 10e-3 }
    }

    /// Footprint half-width, m.
    pub fn half_width_m(&self) -> f64 {
        match *self {
            Indenter::Point => 0.0,
            Indenter::Flat { width_m } | Indenter::Fingertip { width_m } => width_m / 2.0,
        }
    }

    /// Normalized footprint weight at signed offset `dx` (m) from the press
    /// centre. Integrates to 1 over the footprint (per unit length weights
    /// are handled by the caller's discretization).
    ///
    /// * `Point` — delta function; callers special-case it to a single node.
    /// * `Flat` — uniform over the width.
    /// * `Fingertip` — raised cosine (soft edges).
    pub fn footprint_weight(&self, dx: f64) -> f64 {
        match *self {
            Indenter::Point => {
                if dx == 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Indenter::Flat { width_m } => {
                if dx.abs() <= width_m / 2.0 {
                    1.0 / width_m
                } else {
                    0.0
                }
            }
            Indenter::Fingertip { width_m } => {
                let h = width_m / 2.0;
                if dx.abs() <= h {
                    // raised cosine normalized to unit integral
                    (1.0 + (std::f64::consts::PI * dx / h).cos()) / width_m
                } else {
                    0.0
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn half_widths() {
        assert_eq!(Indenter::Point.half_width_m(), 0.0);
        assert_eq!(Indenter::actuator_tip().half_width_m(), 1e-3);
        assert_eq!(Indenter::fingertip().half_width_m(), 5e-3);
    }

    #[test]
    fn flat_footprint_uniform_and_bounded() {
        let ind = Indenter::Flat { width_m: 4e-3 };
        assert_eq!(ind.footprint_weight(0.0), 250.0);
        assert_eq!(ind.footprint_weight(1.9e-3), 250.0);
        assert_eq!(ind.footprint_weight(2.1e-3), 0.0);
    }

    #[test]
    fn footprints_integrate_to_one() {
        for ind in [Indenter::Flat { width_m: 6e-3 }, Indenter::fingertip()] {
            let n = 20_001;
            let h = ind.half_width_m() * 1.2;
            let dx = 2.0 * h / (n - 1) as f64;
            let integral: f64 = (0..n)
                .map(|i| ind.footprint_weight(-h + i as f64 * dx) * dx)
                .sum();
            assert!((integral - 1.0).abs() < 1e-3, "{ind:?}: {integral}");
        }
    }

    #[test]
    fn fingertip_soft_edges() {
        let ind = Indenter::fingertip();
        // peaked at centre, fading to zero at edges
        assert!(ind.footprint_weight(0.0) > ind.footprint_weight(4e-3));
        assert!(ind.footprint_weight(4.99e-3) < 10.0);
        assert_eq!(ind.footprint_weight(5.01e-3), 0.0);
    }
}

//! Beam dynamics: the time side of the mechanics.
//!
//! Paper §3.3 rests on a timing argument: "wireless sensing occurs at much
//! higher sampling rate (about order of MHz), whereas the mechanical
//! forces are much slower (take about 0.5–1 seconds to stabilize)" — so
//! phases can be assumed constant across one phase group. This module
//! makes that quantitative: the beam's first bending mode (an underdamped
//! second-order transient, tens of Hz for the soft prototype) rides on the
//! slower viscoelastic creep, and the combined step response settles on
//! the paper's quoted timescale while staying essentially constant over
//! one 36 ms group once the initial transient passes.

use crate::beam::BeamGeometry;

/// Modal model of the beam's dominant bending mode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DynamicResponse {
    /// First-mode natural frequency, Hz.
    pub natural_hz: f64,
    /// Damping ratio ζ (elastomers: heavily damped, 0.2–0.6).
    pub damping_ratio: f64,
    /// Slow viscoelastic creep time constant, s.
    pub creep_tau_s: f64,
    /// Fraction of the final deflection carried by creep (the remainder
    /// responds at the modal rate).
    pub creep_fraction: f64,
}

impl DynamicResponse {
    /// Derives the modal model from beam geometry: clamped-clamped first
    /// mode `f₁ = (β₁²/2π)·√(EI/(ρA))/L²` with `β₁ = 4.730`, Ecoflex
    /// density ≈1070 kg/m³, and elastomer-typical damping/creep.
    pub fn from_beam(beam: &BeamGeometry) -> Self {
        const BETA1: f64 = 4.730;
        const DENSITY: f64 = 1070.0; // kg/m³, Ecoflex
        let area = beam.width_m * beam.thickness_m;
        let rho_a = DENSITY * area;
        let ei = beam.flexural_rigidity();
        let natural_hz =
            BETA1 * BETA1 / (std::f64::consts::TAU * beam.length_m.powi(2)) * (ei / rho_a).sqrt();
        DynamicResponse {
            natural_hz,
            damping_ratio: 0.4,
            creep_tau_s: 0.35,
            creep_fraction: 0.35,
        }
    }

    /// Normalized step response at time `t` after a force step (0 → 1 as
    /// t → ∞): damped second-order mode plus first-order creep.
    pub fn step_response(&self, t_s: f64) -> f64 {
        if t_s <= 0.0 {
            return 0.0;
        }
        let wn = std::f64::consts::TAU * self.natural_hz;
        let z = self.damping_ratio.clamp(0.01, 0.99);
        let wd = wn * (1.0 - z * z).sqrt();
        let phase = (1.0 - z * z).sqrt().atan2(z);
        let modal = 1.0 - ((-z * wn * t_s).exp() / (1.0 - z * z).sqrt()) * (wd * t_s + phase).sin();
        let creep = 1.0 - (-t_s / self.creep_tau_s).exp();
        (1.0 - self.creep_fraction) * modal + self.creep_fraction * creep
    }

    /// Time (s) after which the step response stays within `tol` of 1.
    pub fn settling_time_s(&self, tol: f64) -> f64 {
        // scan forward at fine resolution; responses here are smooth
        let dt = 1e-3;
        let mut last_violation = 0.0;
        let mut t = 0.0;
        while t < 20.0 {
            if (self.step_response(t) - 1.0).abs() > tol {
                last_violation = t;
            }
            t += dt;
        }
        last_violation + dt
    }

    /// Largest relative change of the response within any window of
    /// `window_s` seconds starting at or after `after_s` — the quantity the
    /// "constant within a phase group" assumption needs to be small.
    pub fn max_change_in_window(&self, window_s: f64, after_s: f64) -> f64 {
        let dt = 1e-3;
        let mut worst = 0.0_f64;
        let mut t = after_s;
        while t < 10.0 {
            let a = self.step_response(t);
            let b = self.step_response(t + window_s);
            worst = worst.max((b - a).abs());
            t += dt * 10.0;
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn proto() -> DynamicResponse {
        DynamicResponse::from_beam(&BeamGeometry::wiforce_prototype())
    }

    #[test]
    fn natural_frequency_tens_of_hz() {
        // a soft 80 mm Ecoflex beam rings in the tens of Hz
        let d = proto();
        assert!(
            (5.0..100.0).contains(&d.natural_hz),
            "f1 = {} Hz",
            d.natural_hz
        );
    }

    #[test]
    fn step_response_monotonicish_to_one() {
        let d = proto();
        assert_eq!(d.step_response(0.0), 0.0);
        assert!((d.step_response(10.0) - 1.0).abs() < 1e-3);
        // heavily damped: overshoot stays modest
        let peak = (0..2000)
            .map(|i| d.step_response(i as f64 * 1e-3))
            .fold(0.0_f64, f64::max);
        assert!(peak < 1.25, "overshoot {peak}");
    }

    #[test]
    fn settles_on_the_papers_timescale() {
        // paper §3.3: forces "take about 0.5–1 seconds to stabilize";
        // our modal + creep model settles (to 1 %) in that neighbourhood
        let d = proto();
        let ts = d.settling_time_s(0.01);
        assert!((0.2..2.0).contains(&ts), "settling time {ts} s");
    }

    #[test]
    fn constant_within_a_phase_group_once_settled() {
        // once settled (the paper's 0.5–1 s stabilization), the response
        // changes by well under 1 % across any 36 ms phase group — the
        // constancy assumption behind Eq. (2)
        let d = proto();
        let change = d.max_change_in_window(0.036, 0.7);
        assert!(change < 0.01, "in-group change {change}");
    }

    #[test]
    fn early_window_violates_constancy() {
        // during the first transient the assumption does NOT hold — phase
        // groups spanning the press onset are the ones the estimator's
        // touch threshold masks out
        let d = proto();
        let change = d.max_change_in_window(0.036, 0.0);
        assert!(change > 0.2, "onset change {change}");
    }

    #[test]
    fn stiffer_beam_rings_faster() {
        let soft = proto();
        let stiff = DynamicResponse::from_beam(&BeamGeometry {
            elastomer: crate::material::Elastomer::PDMS,
            ..BeamGeometry::wiforce_prototype()
        });
        assert!(stiff.natural_hz > 2.0 * soft.natural_hz);
    }
}

//! The contact patch: the pair of shorting points the RF layer sees.

/// A contact patch `[left_m, right_m]` on the sensor axis (metres from the
/// port-1 end), produced by a press.
///
/// In RF terms these are the two *shorting points* of paper Fig. 1: signals
/// entering from port 1 reflect at `left_m`; signals from port 2 reflect at
/// `right_m`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContactPatch {
    /// Position of the shorting point nearer port 1, m.
    pub left_m: f64,
    /// Position of the shorting point nearer port 2, m.
    pub right_m: f64,
}

impl ContactPatch {
    /// Creates a patch, normalizing the endpoint order.
    pub fn new(a: f64, b: f64) -> Self {
        if a <= b {
            ContactPatch {
                left_m: a,
                right_m: b,
            }
        } else {
            ContactPatch {
                left_m: b,
                right_m: a,
            }
        }
    }

    /// Patch width, m.
    pub fn width_m(&self) -> f64 {
        self.right_m - self.left_m
    }

    /// Patch centre, m.
    pub fn center_m(&self) -> f64 {
        0.5 * (self.left_m + self.right_m)
    }

    /// Electrical length seen from port 1 (distance to the first short), m.
    pub fn port1_length_m(&self) -> f64 {
        self.left_m
    }

    /// Electrical length seen from port 2 on a sensor of length `len_m`, m.
    pub fn port2_length_m(&self, len_m: f64) -> f64 {
        len_m - self.right_m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalizes_order() {
        let p = ContactPatch::new(0.06, 0.02);
        assert_eq!(p.left_m, 0.02);
        assert_eq!(p.right_m, 0.06);
    }

    #[test]
    fn width_center() {
        let p = ContactPatch::new(0.02, 0.06);
        assert!((p.width_m() - 0.04).abs() < 1e-15);
        assert!((p.center_m() - 0.04).abs() < 1e-15);
    }

    #[test]
    fn port_lengths() {
        let p = ContactPatch::new(0.02, 0.06);
        assert!((p.port1_length_m() - 0.02).abs() < 1e-15);
        assert!((p.port2_length_m(0.08) - 0.02).abs() < 1e-15);
    }

    #[test]
    fn degenerate_point_patch() {
        let p = ContactPatch::new(0.03, 0.03);
        assert_eq!(p.width_m(), 0.0);
        assert_eq!(p.center_m(), 0.03);
    }
}

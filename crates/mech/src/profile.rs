//! Force-vs-time press profiles (simulation workloads).
//!
//! The paper drives the sensor two ways: a precision actuator ramping force
//! at fixed locations (§4.2/§5.1) and human fingertips settling onto
//! staircase force levels with visual feedback (§5.3, Fig. 17). Both
//! workloads are modelled here. Mechanical settling is slow relative to the
//! reader's channel-sounding rate (paper §3.3: "mechanical forces ... take
//! about 0.5–1 seconds to stabilize"), so profiles are smooth functions of
//! time that the pipeline samples per phase-group.

use rand_like::Tremor;

/// A deterministic force profile `t → (force_n, location_m)`.
pub trait PressProfile {
    /// Total duration, s.
    fn duration_s(&self) -> f64;
    /// Force (N) at time `t` seconds.
    fn force_at(&self, t: f64) -> f64;
    /// Press location (m); constant for the workloads in the paper.
    fn location_m(&self) -> f64;
}

/// Actuated-indenter trapezoid: ramp up at a fixed rate, dwell, ramp down.
#[derive(Debug, Clone, Copy)]
pub struct ActuatorRamp {
    /// Peak force, N.
    pub peak_n: f64,
    /// Ramp rate, N/s.
    pub rate_n_per_s: f64,
    /// Dwell at peak, s.
    pub dwell_s: f64,
    /// Press location, m.
    pub location_m: f64,
}

impl ActuatorRamp {
    /// The paper's standard sweep: 0 → 8 N at a gentle rate.
    pub fn standard(location_m: f64) -> Self {
        ActuatorRamp {
            peak_n: 8.0,
            rate_n_per_s: 2.0,
            dwell_s: 1.0,
            location_m,
        }
    }
}

impl PressProfile for ActuatorRamp {
    fn duration_s(&self) -> f64 {
        2.0 * self.peak_n / self.rate_n_per_s + self.dwell_s
    }

    fn force_at(&self, t: f64) -> f64 {
        let ramp = self.peak_n / self.rate_n_per_s;
        if t < 0.0 {
            0.0
        } else if t < ramp {
            self.rate_n_per_s * t
        } else if t < ramp + self.dwell_s {
            self.peak_n
        } else if t < 2.0 * ramp + self.dwell_s {
            self.peak_n - self.rate_n_per_s * (t - ramp - self.dwell_s)
        } else {
            0.0
        }
    }

    fn location_m(&self) -> f64 {
        self.location_m
    }
}

/// Human fingertip staircase: a sequence of force levels held for a dwell
/// time each, with first-order settling between levels and physiological
/// tremor on top.
#[derive(Debug, Clone)]
pub struct FingertipStaircase {
    /// Target force levels, N, visited in order.
    pub levels_n: Vec<f64>,
    /// Hold time per level, s.
    pub hold_s: f64,
    /// Settling time constant between levels, s (≈0.2–0.5 for humans
    /// tracking a visual cue).
    pub settle_tau_s: f64,
    /// Tremor amplitude as a fraction of the current level.
    pub tremor_frac: f64,
    /// Press location, m.
    pub location_m: f64,
    /// Seed for the deterministic tremor process.
    pub tremor_seed: u64,
}

impl FingertipStaircase {
    /// The paper's §5.3 user study shape: increasing force levels at the
    /// 60 mm point.
    pub fn user_study() -> Self {
        FingertipStaircase {
            levels_n: vec![1.0, 2.0, 3.5, 5.0, 6.5],
            hold_s: 2.0,
            settle_tau_s: 0.3,
            tremor_frac: 0.03,
            location_m: 0.060,
            tremor_seed: 0xF1A6,
        }
    }
}

impl PressProfile for FingertipStaircase {
    fn duration_s(&self) -> f64 {
        self.levels_n.len() as f64 * self.hold_s
    }

    fn force_at(&self, t: f64) -> f64 {
        if t < 0.0 || self.levels_n.is_empty() {
            return 0.0;
        }
        let idx = ((t / self.hold_s) as usize).min(self.levels_n.len() - 1);
        let target = self.levels_n[idx];
        let prev = if idx == 0 {
            0.0
        } else {
            self.levels_n[idx - 1]
        };
        let t_in = t - idx as f64 * self.hold_s;
        // first-order settle toward the target
        let base = target + (prev - target) * (-t_in / self.settle_tau_s).exp();
        // physiological tremor: deterministic band-limited wobble (~8–12 Hz)
        let tremor = Tremor::new(self.tremor_seed).sample(t) * self.tremor_frac * target;
        (base + tremor).max(0.0)
    }

    fn location_m(&self) -> f64 {
        self.location_m
    }
}

/// Deterministic pseudo-random tremor helper (sum of incommensurate
/// sinusoids seeded by hash) — keeps `wiforce-mech` free of the `rand`
/// dependency while giving realistic-looking wobble.
mod rand_like {
    /// Band-limited wobble in roughly the 8–12 Hz physiological band.
    #[derive(Debug, Clone, Copy)]
    pub struct Tremor {
        phase1: f64,
        phase2: f64,
        phase3: f64,
    }

    impl Tremor {
        /// Builds a tremor process from a seed.
        pub fn new(seed: u64) -> Self {
            // splitmix-style scramble to decorrelate phases
            let mut s = seed.wrapping_add(0x9E3779B97F4A7C15);
            let mut next = || {
                s ^= s >> 30;
                s = s.wrapping_mul(0xBF58476D1CE4E5B9);
                s ^= s >> 27;
                (s % 10_000) as f64 / 10_000.0 * std::f64::consts::TAU
            };
            Tremor {
                phase1: next(),
                phase2: next(),
                phase3: next(),
            }
        }

        /// Zero-mean unit-ish amplitude wobble at time `t` seconds.
        pub fn sample(&self, t: f64) -> f64 {
            use std::f64::consts::TAU;
            0.5 * (TAU * 8.3 * t + self.phase1).sin()
                + 0.35 * (TAU * 10.7 * t + self.phase2).sin()
                + 0.15 * (TAU * 12.1 * t + self.phase3).sin()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ramp_shape() {
        let r = ActuatorRamp {
            peak_n: 8.0,
            rate_n_per_s: 2.0,
            dwell_s: 1.0,
            location_m: 0.04,
        };
        assert_eq!(r.duration_s(), 9.0);
        assert_eq!(r.force_at(-1.0), 0.0);
        assert_eq!(r.force_at(0.0), 0.0);
        assert_eq!(r.force_at(2.0), 4.0);
        assert_eq!(r.force_at(4.0), 8.0); // top of ramp
        assert_eq!(r.force_at(4.5), 8.0); // dwell
        assert_eq!(r.force_at(7.0), 4.0); // ramping down
        assert_eq!(r.force_at(9.5), 0.0);
    }

    #[test]
    fn ramp_is_continuous() {
        let r = ActuatorRamp::standard(0.04);
        let mut prev = r.force_at(0.0);
        for k in 1..=900 {
            let t = k as f64 * 0.01 * r.duration_s() / 9.0;
            let f = r.force_at(t);
            assert!((f - prev).abs() < 0.1, "jump at t={t}");
            prev = f;
        }
    }

    #[test]
    fn staircase_reaches_levels() {
        let s = FingertipStaircase::user_study();
        for (i, &lvl) in s.levels_n.iter().enumerate() {
            // sample late in the hold window when settled
            let t = (i as f64 + 0.9) * s.hold_s;
            let f = s.force_at(t);
            assert!(
                (f - lvl).abs() < 0.15 * lvl + 0.05,
                "level {lvl}: got {f} at t={t}"
            );
        }
    }

    #[test]
    fn staircase_never_negative() {
        let s = FingertipStaircase::user_study();
        for k in 0..1000 {
            let t = k as f64 * s.duration_s() / 1000.0;
            assert!(s.force_at(t) >= 0.0);
        }
    }

    #[test]
    fn tremor_deterministic_and_zero_meanish() {
        let s1 = FingertipStaircase::user_study();
        let s2 = FingertipStaircase::user_study();
        let mut acc = 0.0;
        for k in 0..1000 {
            let t = k as f64 * 0.01;
            assert_eq!(s1.force_at(t), s2.force_at(t));
            acc += s1.force_at(t + s1.hold_s * 0.5) - s1.force_at(t + s1.hold_s * 0.5);
        }
        assert_eq!(acc, 0.0);
    }

    #[test]
    fn profiles_expose_location() {
        assert_eq!(ActuatorRamp::standard(0.055).location_m(), 0.055);
        assert_eq!(FingertipStaircase::user_study().location_m(), 0.060);
    }
}

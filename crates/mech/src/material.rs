//! Material properties for the sensor's mechanical stack.
//!
//! The paper fabricates the sensor from Ecoflex soft silicone ("with bending
//! properties which maximize the phase changes transduced by contact
//! forces", §1). Nominal elastic moduli here follow published
//! characterizations of Smooth-On Ecoflex grades and PDMS; exact values only
//! set the force scale of the simulation, not the qualitative transduction.

/// A hyperelastic polymer approximated as linear-elastic for the small-ish
/// strains of the contact solver, with a strain-stiffening correction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Elastomer {
    /// Small-strain Young's modulus, Pa.
    pub young_modulus_pa: f64,
    /// Poisson ratio (≈0.5 for nearly incompressible silicones).
    pub poisson_ratio: f64,
    /// Compressive strain at which the tangent stiffness has doubled;
    /// models densification of the soft layer as it bottoms out.
    pub stiffening_strain: f64,
}

impl Elastomer {
    /// Smooth-On Ecoflex 00-30 (the paper's sensor beam material).
    pub const ECOFLEX_0030: Elastomer = Elastomer {
        young_modulus_pa: 125e3,
        poisson_ratio: 0.49,
        stiffening_strain: 0.45,
    };

    /// Smooth-On Ecoflex 00-50 (stiffer variant).
    pub const ECOFLEX_0050: Elastomer = Elastomer {
        young_modulus_pa: 250e3,
        poisson_ratio: 0.49,
        stiffening_strain: 0.45,
    };

    /// Sylgard-184 PDMS (much stiffer; a poor choice for the sensor, kept
    /// for ablations).
    pub const PDMS: Elastomer = Elastomer {
        young_modulus_pa: 1.8e6,
        poisson_ratio: 0.49,
        stiffening_strain: 0.5,
    };

    /// Secant compressive stress (Pa) at engineering strain `eps ∈ [0, 1)`,
    /// with smooth densification stiffening:
    /// `σ(ε) = E·ε / (1 − (ε/ε_s)²)` clipped near full densification.
    pub fn stress_pa(&self, eps: f64) -> f64 {
        let eps = eps.clamp(0.0, 0.999);
        let ratio = (eps / self.stiffening_strain.max(1e-6)).min(0.999);
        self.young_modulus_pa * eps / (1.0 - ratio * ratio)
    }

    /// Tangent stiffness dσ/dε at strain `eps` (Pa).
    pub fn tangent_modulus_pa(&self, eps: f64) -> f64 {
        // numeric derivative is fine at this precision
        let d = 1e-6;
        (self.stress_pa(eps + d) - self.stress_pa((eps - d).max(0.0))) / (2.0 * d)
    }
}

/// A conductor used for the traces. Only flexural stiffness matters to the
/// mechanics; conductivity matters to the RF loss model in `wiforce-em`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Conductor {
    /// Young's modulus, Pa.
    pub young_modulus_pa: f64,
    /// Electrical conductivity, S/m.
    pub conductivity_s_per_m: f64,
}

impl Conductor {
    /// Annealed copper.
    pub const COPPER: Conductor = Conductor {
        young_modulus_pa: 110e9,
        conductivity_s_per_m: 5.8e7,
    };

    /// Conductive silver ink/epoxy trace (flexible-PCB future-work variant).
    pub const SILVER_INK: Conductor = Conductor {
        young_modulus_pa: 10e9,
        conductivity_s_per_m: 1.0e6,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ecoflex_much_softer_than_pdms() {
        let (eco, pdms) = (Elastomer::ECOFLEX_0030, Elastomer::PDMS);
        assert!(eco.young_modulus_pa < pdms.young_modulus_pa / 10.0);
    }

    #[test]
    fn stress_linear_at_small_strain() {
        let m = Elastomer::ECOFLEX_0030;
        let eps = 1e-4;
        let sigma = m.stress_pa(eps);
        assert!((sigma / (m.young_modulus_pa * eps) - 1.0).abs() < 1e-3);
    }

    #[test]
    fn stress_stiffens_at_large_strain() {
        let m = Elastomer::ECOFLEX_0030;
        // secant modulus at 40% strain should exceed small-strain modulus
        let secant = m.stress_pa(0.40) / 0.40;
        assert!(secant > 1.5 * m.young_modulus_pa);
    }

    #[test]
    fn stress_monotone_in_strain() {
        let m = Elastomer::ECOFLEX_0050;
        let mut prev = -1.0;
        for k in 0..100 {
            let s = m.stress_pa(k as f64 * 0.004);
            assert!(s > prev);
            prev = s;
        }
    }

    #[test]
    fn tangent_exceeds_secant_when_stiffening() {
        let m = Elastomer::ECOFLEX_0030;
        let eps = 0.3;
        assert!(m.tangent_modulus_pa(eps) > m.stress_pa(eps) / eps);
    }

    #[test]
    fn stress_clamps_at_extremes() {
        let m = Elastomer::ECOFLEX_0030;
        assert_eq!(m.stress_pa(0.0), 0.0);
        assert!(m.stress_pa(2.0).is_finite()); // clamped, not exploding
        assert!(m.stress_pa(-1.0) == 0.0);
    }
}

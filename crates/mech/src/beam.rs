//! Euler–Bernoulli beam geometry and composite stiffness.
//!
//! The bending member in WiForce is a composite: a soft elastomer beam with
//! a thin conductive trace bonded underneath (paper Fig. 1 / §3.1). For
//! bending purposes the elastomer cross-section dominates once it is a few
//! millimetres thick; the copper trace contributes both a small stiffness
//! and the electrical function.

use crate::material::{Conductor, Elastomer};

/// Rectangular-cross-section beam geometry with composite stiffness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BeamGeometry {
    /// Beam span between the mechanical supports (the sensor length), m.
    pub length_m: f64,
    /// Elastomer beam width, m.
    pub width_m: f64,
    /// Elastomer beam thickness, m.
    pub thickness_m: f64,
    /// Conductive trace width, m.
    pub trace_width_m: f64,
    /// Conductive trace thickness, m.
    pub trace_thickness_m: f64,
    /// Elastomer material.
    pub elastomer: Elastomer,
    /// Trace conductor material.
    pub conductor: Conductor,
}

impl BeamGeometry {
    /// The paper's prototype: 80 mm long sensor, 10 mm wide and ~10 mm
    /// thick Ecoflex beam, 2.5 mm wide / 35 µm copper trace.
    pub fn wiforce_prototype() -> Self {
        BeamGeometry {
            length_m: 0.080,
            width_m: 0.010,
            thickness_m: 0.010,
            trace_width_m: 2.5e-3,
            trace_thickness_m: 35e-6,
            elastomer: Elastomer::ECOFLEX_0030,
            conductor: Conductor::COPPER,
        }
    }

    /// A "thin trace" variant with a vestigial elastomer layer — the naive
    /// design of paper Fig. 4a that saturates at a point contact.
    pub fn thin_trace() -> Self {
        BeamGeometry {
            thickness_m: 0.4e-3,
            ..Self::wiforce_prototype()
        }
    }

    /// Second moment of area of the elastomer section, m⁴.
    pub fn elastomer_second_moment(&self) -> f64 {
        self.width_m * self.thickness_m.powi(3) / 12.0
    }

    /// Second moment of area of the trace section about its own centroid, m⁴.
    pub fn trace_second_moment(&self) -> f64 {
        self.trace_width_m * self.trace_thickness_m.powi(3) / 12.0
    }

    /// Composite flexural rigidity `EI`, N·m².
    ///
    /// Sums the elastomer and trace contributions (parallel-axis offset of
    /// the thin trace is negligible relative to the elastomer core at the
    /// strain levels of interest, and silicone–copper bonding is compliant,
    /// so we do not apply the transformed-section boost).
    pub fn flexural_rigidity(&self) -> f64 {
        self.elastomer.young_modulus_pa * self.elastomer_second_moment()
            + self.conductor.young_modulus_pa * self.trace_second_moment()
    }

    /// Deflection at the centre of a simply supported beam under a central
    /// point load `F` (the classic `FL³/48EI`); used to sanity-check the
    /// finite-difference solver.
    pub fn center_point_load_deflection(&self, force_n: f64) -> f64 {
        force_n * self.length_m.powi(3) / (48.0 * self.flexural_rigidity())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prototype_dimensions_match_paper() {
        let b = BeamGeometry::wiforce_prototype();
        assert_eq!(b.length_m, 0.080);
        assert_eq!(b.trace_width_m, 2.5e-3);
    }

    #[test]
    fn second_moment_scales_with_cube_of_thickness() {
        let b = BeamGeometry::wiforce_prototype();
        let mut b2 = b;
        b2.thickness_m *= 2.0;
        let ratio = b2.elastomer_second_moment() / b.elastomer_second_moment();
        assert!((ratio - 8.0).abs() < 1e-12);
    }

    #[test]
    fn soft_beam_dominates_thin_trace_stiffness() {
        let b = BeamGeometry::wiforce_prototype();
        let ei_el = b.elastomer.young_modulus_pa * b.elastomer_second_moment();
        let ei_tr = b.conductor.young_modulus_pa * b.trace_second_moment();
        // the 10 mm ecoflex core out-stiffens the 35 µm copper film
        assert!(ei_el > 10.0 * ei_tr, "{ei_el} vs {ei_tr}");
    }

    #[test]
    fn thin_trace_is_much_floppier() {
        let soft = BeamGeometry::wiforce_prototype().flexural_rigidity();
        let thin = BeamGeometry::thin_trace().flexural_rigidity();
        assert!(thin < soft / 100.0);
    }

    #[test]
    fn center_deflection_formula() {
        let b = BeamGeometry::wiforce_prototype();
        let w = b.center_point_load_deflection(1.0);
        let expect = 0.080f64.powi(3) / (48.0 * b.flexural_rigidity());
        assert!((w - expect).abs() < 1e-15);
        // the soft prototype deflects past the 0.63 mm gap under ~10 mN —
        // touch threshold is tiny, as intended for a tactile sensor
        assert!(b.center_point_load_deflection(0.02) > 0.63e-3);
    }
}

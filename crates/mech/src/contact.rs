//! Discretized unilateral-contact solver for the sensor beam.
//!
//! Model (paper §3.1, Figs. 1/4/5): the composite soft beam spans the sensor
//! length, held at both ends, suspended a gap `g` above the rigid ground
//! trace. A press applies a distributed load — the indenter footprint spread
//! through the elastomer thickness (a thicker, softer layer spreads the load
//! wider, and spreads it *wider still* as the press sinks deeper; this is
//! precisely the mechanism of paper Fig. 4b). The beam deflects by
//! Euler–Bernoulli bending and is stopped by the ground plane, which acts as
//! a unilateral (one-sided) constraint realized here by a stiff penalty.
//! The contiguous contact region's outermost points are the *shorting
//! points* reported as a [`ContactPatch`].
//!
//! Numerics: central finite differences of `EI·w''''` on a uniform grid
//! (pentadiagonal), penalty ground springs on an active set, and damped
//! fixed-point iteration on the active set. The banded solve comes from
//! `wiforce_dsp::linalg::solve_banded`.

use crate::beam::BeamGeometry;
use crate::indenter::Indenter;
use crate::patch::ContactPatch;
use crate::ForceTransducer;
use wiforce_dsp::linalg::solve_banded;

/// How the beam is held at the sensor ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EndCondition {
    /// Pinned: zero deflection, zero moment (resting on supports).
    Pinned,
    /// Clamped: zero deflection, zero slope (soldered/fixtured ends —
    /// the prototype's SMA-connector ends).
    Clamped,
}

/// Full mechanical description of a WiForce sensor for the contact solver.
#[derive(Debug, Clone, Copy)]
pub struct SensorMech {
    /// Beam geometry and materials.
    pub beam: BeamGeometry,
    /// Air gap between signal and ground traces, m (paper: 0.63 mm).
    pub gap_m: f64,
    /// End condition at both supports.
    pub ends: EndCondition,
    /// Geometric load-spreading factor: the load half-width gained per metre
    /// of elastomer thickness (45° spreading ⇒ ≈1.0).
    pub spread_per_thickness: f64,
    /// Additional load-spreading per metre of indenter penetration depth
    /// (densified elastomer pushes outward).
    pub spread_per_depth: f64,
    /// Distributed self-weight of the beam, N/m. The prototype's soft beam
    /// sags close to the gap under its own weight; this is what makes a
    /// *long* unsupported side collapse onto the ground trace when pressed
    /// off-centre (span⁴ sag scaling), the asymmetry of paper Fig. 5.
    pub self_weight_n_per_m: f64,
}

impl SensorMech {
    /// The paper's prototype sensor: 80 mm Ecoflex beam, 0.63 mm air gap.
    pub fn wiforce_prototype() -> Self {
        SensorMech {
            beam: BeamGeometry::wiforce_prototype(),
            gap_m: 0.63e-3,
            ends: EndCondition::Clamped,
            spread_per_thickness: 0.7,
            spread_per_depth: 4.0,
            self_weight_n_per_m: 0.55,
        }
    }

    /// The naive thin-trace sensor of paper Fig. 4a (no soft beam):
    /// negligible spreading, floppy trace.
    pub fn thin_trace() -> Self {
        SensorMech {
            beam: BeamGeometry::thin_trace(),
            gap_m: 0.63e-3,
            ends: EndCondition::Clamped,
            spread_per_thickness: 0.2,
            spread_per_depth: 0.0,
            self_weight_n_per_m: 0.02,
        }
    }

    /// Effective half-width (m) of the load distribution entering the beam
    /// for a press of `force_n` through the given indenter.
    ///
    /// Fixed-point iteration balancing mean contact pressure against the
    /// elastomer's (stiffening) stress-strain law: deeper penetration ⇒
    /// wider spread ⇒ lower pressure.
    pub fn load_half_width_m(&self, indenter: &Indenter, force_n: f64) -> f64 {
        let t = self.beam.thickness_m;
        let base = indenter.half_width_m() + self.spread_per_thickness * t * 0.5;
        if force_n <= 0.0 || self.spread_per_depth == 0.0 {
            return base.max(1e-5);
        }
        let b = self.beam.width_m;
        let mut half = base.max(1e-5);
        for _ in 0..60 {
            let pressure = force_n / (2.0 * half * b);
            let eps = invert_stress(&self.beam.elastomer, pressure);
            let depth = eps * t;
            let new_half = (base + self.spread_per_depth * depth).max(1e-5);
            if (new_half - half).abs() < 1e-9 {
                half = new_half;
                break;
            }
            half = 0.5 * (half + new_half);
        }
        half
    }
}

/// Inverts the elastomer stress law: strain at which `stress_pa(eps) == p`.
fn invert_stress(mat: &crate::material::Elastomer, p: f64) -> f64 {
    if p <= 0.0 {
        return 0.0;
    }
    let (mut lo, mut hi) = (0.0_f64, 0.999_f64);
    if mat.stress_pa(hi) < p {
        return hi;
    }
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if mat.stress_pa(mid) < p {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Finite-difference unilateral-contact solver.
///
/// Construct once per sensor configuration, then query
/// [`ForceTransducer::contact_patch`] for presses. The solver is
/// deterministic and stateless across queries.
#[derive(Debug, Clone)]
pub struct ContactSolver {
    mech: SensorMech,
    indenter: Indenter,
    n: usize,
    penalty: f64,
}

/// Full solution detail for one press (deflection profile + patch).
#[derive(Debug, Clone)]
pub struct ContactSolution {
    /// Node abscissae, m.
    pub x_m: Vec<f64>,
    /// Downward beam deflection at the nodes, m.
    pub deflection_m: Vec<f64>,
    /// Contact patch (None if no node reached the gap).
    pub patch: Option<ContactPatch>,
    /// Applied distributed load at the nodes, N/m.
    pub load_n_per_m: Vec<f64>,
}

impl ContactSolver {
    /// Creates a solver with the default 401-node grid.
    pub fn new(mech: SensorMech, indenter: Indenter) -> Self {
        Self::with_nodes(mech, indenter, 401)
    }

    /// Creates a solver with an explicit node count (≥ 16).
    pub fn with_nodes(mech: SensorMech, indenter: Indenter, n: usize) -> Self {
        assert!(n >= 16, "contact grid too coarse: {n} nodes");
        ContactSolver {
            mech,
            indenter,
            n,
            penalty: 1e13,
        }
    }

    /// The mechanical configuration being solved.
    pub fn mech(&self) -> &SensorMech {
        &self.mech
    }

    /// The indenter pressing the sensor.
    pub fn indenter(&self) -> &Indenter {
        &self.indenter
    }

    /// Builds the applied load vector (N/m) for a press at `x0` of `force_n`.
    fn build_load(&self, force_n: f64, x0: f64) -> Vec<f64> {
        let len = self.mech.beam.length_m;
        let h = len / (self.n - 1) as f64;
        let half = self.mech.load_half_width_m(&self.indenter, force_n);
        let mut p = vec![0.0; self.n];
        // raised-cosine distribution of half-width `half` centred at x0,
        // clipped to the sensor; renormalized so the *applied* force on the
        // beam equals force_n (force landing beyond the ends is carried by
        // the supports, not the beam — but for presses in the calibrated
        // 20–60 mm range the clip is negligible).
        let mut integral = 0.0;
        for (i, pi) in p.iter_mut().enumerate() {
            let x = i as f64 * h;
            let dx = (x - x0) / half;
            if dx.abs() < 1.0 {
                *pi = 1.0 + (std::f64::consts::PI * dx).cos();
                integral += *pi * h;
            }
        }
        if integral > 0.0 {
            let scale = force_n / integral;
            p.iter_mut().for_each(|v| *v *= scale);
        }
        // superpose the beam's own distributed weight
        let q = self.mech.self_weight_n_per_m;
        if q > 0.0 {
            p.iter_mut().for_each(|v| *v += q);
        }
        p
    }

    /// Solves the full contact problem, returning deflection and patch.
    pub fn solve(&self, force_n: f64, location_m: f64) -> ContactSolution {
        let len = self.mech.beam.length_m;
        let n = self.n;
        let h = len / (n - 1) as f64;
        let x_m: Vec<f64> = (0..n).map(|i| i as f64 * h).collect();
        let load = self.build_load(force_n, location_m);

        if force_n <= 0.0 {
            return ContactSolution {
                x_m,
                deflection_m: vec![0.0; n],
                patch: None,
                load_n_per_m: load,
            };
        }

        let ei = self.mech.beam.flexural_rigidity();
        let k4 = ei / h.powi(4);
        let gap = self.mech.gap_m;
        // ghost-node fold-in coefficient at the first interior node:
        // pinned: w[-1] = -w[1] → diagonal 6-1=5; clamped: w[-1] = +w[1] → 7
        let edge_diag = match self.mech.ends {
            EndCondition::Pinned => 5.0,
            EndCondition::Clamped => 7.0,
        };

        // unknowns: interior nodes 1..n-1 (w0 = w_{n-1} = 0)
        let m = n - 2;
        let mut w = vec![0.0_f64; n];
        let mut active = vec![false; n];

        for _iter in 0..200 {
            // assemble & solve with current active set
            let a = |r: usize, c: usize| -> f64 {
                // r, c are interior indices (0..m) ↔ nodes (1..n-1)
                let (i, j) = (r + 1, c + 1);
                let d = i.abs_diff(j);
                let mut v = match d {
                    0 => {
                        let mut diag = 6.0;
                        if i == 1 || i == n - 2 {
                            diag = edge_diag;
                        }
                        diag * k4
                    }
                    1 => -4.0 * k4,
                    2 => k4,
                    _ => 0.0,
                };
                if d == 0 && active[i] {
                    v += self.penalty;
                }
                v
            };
            let b: Vec<f64> = (0..m)
                .map(|r| {
                    let i = r + 1;
                    let mut rhs = load[i];
                    if active[i] {
                        rhs += self.penalty * gap;
                    }
                    rhs
                })
                .collect();
            let sol = solve_banded(m, 2, a, &b).expect("beam operator is nonsingular");
            for (r, &v) in sol.iter().enumerate() {
                w[r + 1] = v;
            }

            // update active set
            let mut changed = false;
            for i in 1..n - 1 {
                let keep = if active[i] {
                    // reaction = penalty·(w − gap): at an active node the
                    // solve leaves w ≈ gap + reaction/penalty, so a tensile
                    // (upward-pulling, unphysical) reaction shows up as
                    // w < gap by a *tiny* margin. Release on tensile
                    // reaction beyond a small tolerance.
                    self.penalty * (w[i] - gap) >= -1e-3
                } else {
                    // engage nodes that penetrate the ground
                    w[i] > gap
                };
                if keep != active[i] {
                    active[i] = keep;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        let patch = extract_patch(&x_m, &w, gap);
        ContactSolution {
            x_m,
            deflection_m: w,
            patch,
            load_n_per_m: load,
        }
    }
}

/// Finds the outermost gap-crossings of the deflection profile with sub-grid
/// linear interpolation.
fn extract_patch(x: &[f64], w: &[f64], gap: f64) -> Option<ContactPatch> {
    let tol = gap * 1e-6;
    let touching: Vec<usize> = (0..w.len()).filter(|&i| w[i] >= gap - tol).collect();
    let (&first, &last) = (touching.first()?, touching.last()?);

    let refine_left = |i: usize| -> f64 {
        if i == 0 {
            return x[0];
        }
        let (w0, w1) = (w[i - 1], w[i]);
        if w1 <= w0 {
            return x[i];
        }
        let t = ((gap - w0) / (w1 - w0)).clamp(0.0, 1.0);
        x[i - 1] + t * (x[i] - x[i - 1])
    };
    let refine_right = |i: usize| -> f64 {
        if i == w.len() - 1 {
            return x[i];
        }
        let (w0, w1) = (w[i], w[i + 1]);
        if w0 <= w1 {
            return x[i];
        }
        let t = ((w0 - gap) / (w0 - w1)).clamp(0.0, 1.0);
        x[i] + t * (x[i + 1] - x[i])
    };
    Some(ContactPatch::new(refine_left(first), refine_right(last)))
}

impl ForceTransducer for ContactSolver {
    fn length_m(&self) -> f64 {
        self.mech.beam.length_m
    }

    fn contact_patch(&self, force_n: f64, location_m: f64) -> Option<ContactPatch> {
        self.solve(force_n, location_m).patch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prototype_solver() -> ContactSolver {
        ContactSolver::with_nodes(
            SensorMech::wiforce_prototype(),
            Indenter::actuator_tip(),
            201,
        )
    }

    #[test]
    fn zero_force_no_contact() {
        let s = prototype_solver();
        assert!(s.contact_patch(0.0, 0.040).is_none());
    }

    #[test]
    fn deflection_without_contact_matches_beam_theory_scale() {
        // tiny force, no contact: midpoint deflection should be within a
        // factor ~2 of the simply supported closed form (we use clamped
        // ends + distributed load, so exact agreement is not expected)
        let mut mech = SensorMech::wiforce_prototype();
        mech.ends = EndCondition::Pinned;
        mech.self_weight_n_per_m = 0.0; // isolate the point load
        let s = ContactSolver::with_nodes(mech, Indenter::Point, 201);
        let f = 0.002; // 2 mN, well below touch
        let sol = s.solve(f, 0.040);
        assert!(sol.patch.is_none(), "unexpected contact");
        let w_mid = sol.deflection_m[sol.deflection_m.len() / 2];
        let closed = mech.beam.center_point_load_deflection(f);
        assert!(
            (w_mid / closed - 1.0).abs() < 0.25,
            "w_mid {w_mid} vs closed-form {closed}"
        );
    }

    #[test]
    fn contact_appears_above_threshold() {
        let s = prototype_solver();
        let thr = s.touch_threshold_n(0.040);
        assert!(thr > 0.0 && thr < 0.5, "threshold {thr} N");
        assert!(s.contact_patch(thr * 2.0, 0.040).is_some());
        assert!(s.contact_patch(thr * 0.5, 0.040).is_none());
    }

    #[test]
    fn patch_width_monotone_in_force() {
        let s = prototype_solver();
        let forces = [1.0, 2.0, 4.0, 8.0];
        let mut prev = 0.0;
        for &f in &forces {
            let p = s.contact_patch(f, 0.040).expect("contact at {f} N");
            let width = p.width_m();
            assert!(width > prev, "width {width} at {f} N not > {prev}");
            prev = width;
        }
    }

    #[test]
    fn center_press_is_symmetric() {
        let s = prototype_solver();
        let p = s.contact_patch(4.0, 0.040).unwrap();
        let len = s.length_m();
        assert!(
            (p.port1_length_m() - p.port2_length_m(len)).abs() < 1e-3,
            "asymmetric centre press: {p:?}"
        );
    }

    #[test]
    fn off_center_press_is_asymmetric() {
        let s = prototype_solver();
        let p = s.contact_patch(4.0, 0.020).unwrap();
        // patch centre should sit near the press, definitely left of centre
        assert!(p.center_m() < 0.035, "patch {p:?}");
        assert!(p.left_m < 0.020);
        assert!(p.right_m > 0.020);
    }

    #[test]
    fn patch_contains_press_location() {
        let s = prototype_solver();
        for &x0 in &[0.020, 0.030, 0.040, 0.050, 0.060] {
            let p = s.contact_patch(3.0, x0).unwrap();
            assert!(p.left_m <= x0 && x0 <= p.right_m, "x0={x0}, {p:?}");
        }
    }

    #[test]
    fn soft_beam_spreads_more_than_thin_trace() {
        // paper Fig. 4: the soft beam's shorting points shift much more
        // over the force range than the naive thin trace's
        let soft = prototype_solver();
        let thin =
            ContactSolver::with_nodes(SensorMech::thin_trace(), Indenter::actuator_tip(), 201);
        let x0 = 0.040;
        let span = |s: &ContactSolver| -> f64 {
            let lo = s.contact_patch(1.0, x0).unwrap();
            let hi = s.contact_patch(8.0, x0).unwrap();
            (lo.left_m - hi.left_m).abs()
        };
        let soft_shift = span(&soft);
        let thin_shift = span(&thin);
        assert!(
            soft_shift > 3.0 * thin_shift,
            "soft shift {soft_shift} should dwarf thin shift {thin_shift}"
        );
        assert!(
            soft_shift > 2e-3,
            "soft shift should be millimetres, got {soft_shift}"
        );
    }

    #[test]
    fn shorting_points_shift_outward_with_force() {
        let s = prototype_solver();
        let p2 = s.contact_patch(2.0, 0.040).unwrap();
        let p8 = s.contact_patch(8.0, 0.040).unwrap();
        assert!(p8.left_m < p2.left_m);
        assert!(p8.right_m > p2.right_m);
    }

    #[test]
    fn load_integrates_to_force() {
        let s = prototype_solver();
        let sol = s.solve(5.0, 0.040);
        let h = sol.x_m[1] - sol.x_m[0];
        let total: f64 = sol.load_n_per_m.iter().map(|p| p * h).sum();
        // applied press + distributed self-weight
        let weight = s.mech().self_weight_n_per_m * s.length_m();
        assert!((total - 5.0 - weight).abs() < 0.05, "total load {total}");
    }

    #[test]
    fn deflection_never_exceeds_gap_materially() {
        let s = prototype_solver();
        let sol = s.solve(8.0, 0.030);
        let gap = s.mech().gap_m;
        let max_pen = sol
            .deflection_m
            .iter()
            .map(|&w| (w - gap).max(0.0))
            .fold(0.0_f64, f64::max);
        assert!(max_pen < gap * 1e-3, "penetration {max_pen} vs gap {gap}");
    }

    #[test]
    fn load_half_width_grows_with_force() {
        let mech = SensorMech::wiforce_prototype();
        let ind = Indenter::actuator_tip();
        let w1 = mech.load_half_width_m(&ind, 1.0);
        let w8 = mech.load_half_width_m(&ind, 8.0);
        assert!(w8 > w1, "{w8} !> {w1}");
        // thin trace: no depth spreading
        let thin = SensorMech::thin_trace();
        let t1 = thin.load_half_width_m(&ind, 1.0);
        let t8 = thin.load_half_width_m(&ind, 8.0);
        assert!((t8 - t1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "too coarse")]
    fn rejects_tiny_grid() {
        ContactSolver::with_nodes(SensorMech::wiforce_prototype(), Indenter::Point, 4);
    }
}

//! Fast phenomenological contact model.
//!
//! A closed-form counterpart to the finite-difference [`crate::ContactSolver`]
//! (`crate::contact`): it reuses the same load-spreading submodel
//! ([`SensorMech::load_half_width_m`]) and approximates the beam response
//! with two saturating maps per side, matching both the FD solver and the
//! paper's described phenomenology (§3.1, Fig. 5a):
//!
//! * **load-driven advance** — each patch edge tracks a fraction of the
//!   spread load half-width, saturating as it nears its support (shorter,
//!   stiffer sides advance less for the same force);
//! * **sag floor** — long unsupported sides start partially collapsed
//!   (span⁴ self-weight sag), so their edge begins far out and then barely
//!   moves: the paper's "the longer length collapses onto the bottom trace,
//!   leading to an almost stationary shorting point".
//!
//! The model runs ~10³× faster than the FD solver, which matters for the
//! Monte-Carlo CDF experiments (Figs. 13/14) that take thousands of presses.
//! Integration tests cross-validate it against the FD solver.

use crate::contact::SensorMech;
use crate::indenter::Indenter;
use crate::patch::ContactPatch;
use crate::ForceTransducer;

/// Closed-form contact model; see module docs.
#[derive(Debug, Clone, Copy)]
pub struct AnalyticContactModel {
    mech: SensorMech,
    indenter: Indenter,
    /// Peel margin: minimum distance an edge keeps from its support, m.
    peel_margin_m: f64,
    /// Fraction of the spread load half-width that turns into contact.
    contact_fraction: f64,
    /// Sag floor slope: metres of pre-collapsed edge distance per metre of
    /// side span beyond [`Self::sag_onset_span_m`].
    sag_slope: f64,
    /// Side span at which self-weight sag starts pre-collapsing the side, m.
    sag_onset_span_m: f64,
    /// Relative growth of the sag floor per newton: the collapsed side's
    /// peel edge creeps outward slowly with load (the FD solver shows
    /// ≈3 %/N), which keeps the far port *weakly* force-sensitive and
    /// breaks the force/location ambiguity an exactly-stationary edge
    /// would create.
    sag_growth_per_n: f64,
}

impl AnalyticContactModel {
    /// Builds the model for a sensor/indenter pair with tuning matched to
    /// the FD solver on the prototype geometry.
    pub fn new(mech: SensorMech, indenter: Indenter) -> Self {
        AnalyticContactModel {
            mech,
            indenter,
            peel_margin_m: 6e-3,
            contact_fraction: 0.65,
            sag_slope: 0.35,
            sag_onset_span_m: 0.040,
            sag_growth_per_n: 0.025,
        }
    }

    /// Overrides the peel margin (distance edges keep from supports).
    pub fn with_peel_margin(mut self, margin_m: f64) -> Self {
        self.peel_margin_m = margin_m;
        self
    }

    /// Overrides the contact fraction tuning constant.
    pub fn with_contact_fraction(mut self, frac: f64) -> Self {
        self.contact_fraction = frac;
        self
    }

    /// The underlying mechanical description.
    pub fn mech(&self) -> &SensorMech {
        &self.mech
    }

    /// Touch threshold from simply-supported point-load stiffness:
    /// `F₀ = 3·EI·L·g / (a²·b²)` with `a`, `b` the distances to the two
    /// supports.
    fn threshold(&self, x0: f64) -> f64 {
        let l = self.mech.beam.length_m;
        let ei = self.mech.beam.flexural_rigidity();
        let a = x0.clamp(1e-4, l - 1e-4);
        let b = l - a;
        3.0 * ei * l * self.mech.gap_m / (a * a * b * b)
    }

    /// Edge distance from the press centre into a side of span `span_m`,
    /// for spread load half-width `load_half` and force `df_n` above the
    /// touch threshold.
    fn edge_distance(&self, span_m: f64, load_half: f64, df_n: f64) -> f64 {
        let avail = (span_m - self.peel_margin_m).max(1e-4);
        // saturating load-driven advance
        let drive = self.contact_fraction * load_half;
        let adv = avail * (1.0 - (-drive / avail).exp());
        // self-weight sag floor for long sides, scaled by how close the
        // beam is to its rest-contact weight, creeping slowly outward with
        // load
        let q_ref = 0.55; // prototype self-weight, N/m
        let sag = self.sag_slope
            * (span_m - self.sag_onset_span_m).max(0.0)
            * (self.mech.self_weight_n_per_m / q_ref).min(2.0)
            * (1.0 + self.sag_growth_per_n * df_n);
        adv.max(sag).min(avail)
    }
}

impl ForceTransducer for AnalyticContactModel {
    fn length_m(&self) -> f64 {
        self.mech.beam.length_m
    }

    fn contact_patch(&self, force_n: f64, location_m: f64) -> Option<ContactPatch> {
        let l = self.mech.beam.length_m;
        let x0 = location_m.clamp(0.0, l);
        let f0 = self.threshold(x0);
        if force_n <= f0 {
            return None;
        }
        let df = force_n - f0;
        let load_half = self.mech.load_half_width_m(&self.indenter, df);
        let d_left = self.edge_distance(x0, load_half, df);
        let d_right = self.edge_distance(l - x0, load_half, df);
        Some(ContactPatch::new(x0 - d_left, x0 + d_right))
    }

    fn touch_threshold_n(&self, location_m: f64) -> f64 {
        self.threshold(location_m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> AnalyticContactModel {
        AnalyticContactModel::new(SensorMech::wiforce_prototype(), Indenter::actuator_tip())
    }

    #[test]
    fn below_threshold_no_patch() {
        let m = model();
        let thr = m.touch_threshold_n(0.040);
        assert!(thr > 0.0);
        assert!(m.contact_patch(thr * 0.9, 0.040).is_none());
        assert!(m.contact_patch(thr * 1.1, 0.040).is_some());
    }

    #[test]
    fn threshold_highest_near_ends() {
        let m = model();
        let t_mid = m.touch_threshold_n(0.040);
        let t_end = m.touch_threshold_n(0.010);
        assert!(t_end > t_mid);
    }

    #[test]
    fn patch_grows_monotonically() {
        let m = model();
        let mut prev = 0.0;
        for f in [1.0, 2.0, 4.0, 6.0, 8.0] {
            let w = m.contact_patch(f, 0.040).unwrap().width_m();
            assert!(w > prev, "{w} at {f} N");
            prev = w;
        }
    }

    #[test]
    fn center_press_symmetric() {
        let m = model();
        let p = m.contact_patch(4.0, 0.040).unwrap();
        assert!((p.port1_length_m() - p.port2_length_m(0.080)).abs() < 1e-4);
    }

    #[test]
    fn long_side_collapses_short_side_keeps_moving() {
        // paper §3.1: pressing at 20 mm, the long (60 mm) side's shorting
        // point is almost stationary over the force range while the short
        // (20 mm) side's keeps shifting.
        let m = model();
        let p1 = m.contact_patch(1.0, 0.020).unwrap();
        let p8 = m.contact_patch(8.0, 0.020).unwrap();
        let near_shift = (p1.left_m - p8.left_m).abs();
        let far_shift = (p1.right_m - p8.right_m).abs();
        // the far edge creeps slightly (sag growth) but the near edge
        // still dominates
        assert!(
            near_shift > 1.5 * far_shift,
            "near shift {near_shift} should dominate far shift {far_shift}"
        );
        assert!(near_shift > 1e-3, "near side should move millimetres");
    }

    #[test]
    fn long_side_starts_pre_collapsed() {
        // the sag floor puts the far edge well beyond the load footprint at
        // first contact
        let m = model();
        let p = m.contact_patch(0.5, 0.020).unwrap();
        assert!(
            p.right_m - 0.020 > 5e-3,
            "far edge should start collapsed, got {:?}",
            p
        );
    }

    #[test]
    fn edges_respect_peel_margins() {
        let m = model();
        let p = m.contact_patch(50.0, 0.040).unwrap();
        assert!(p.left_m >= 6e-3 - 1e-12);
        assert!(p.right_m <= 0.080 - 6e-3 + 1e-12);
    }

    #[test]
    fn patch_contains_press() {
        let m = model();
        for x0 in [0.020, 0.035, 0.055, 0.060] {
            let p = m.contact_patch(4.0, x0).unwrap();
            assert!(p.left_m <= x0 && x0 <= p.right_m, "{x0}: {p:?}");
        }
    }

    #[test]
    fn location_monotone_in_patch_center() {
        // pressing further right moves the patch centre right — needed for
        // localization to be well-posed
        let m = model();
        let mut prev = -1.0;
        for x0 in [0.020, 0.030, 0.040, 0.050, 0.060] {
            let c = m.contact_patch(4.0, x0).unwrap().center_m();
            assert!(c > prev);
            prev = c;
        }
    }
}

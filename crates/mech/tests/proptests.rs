//! Property-based tests on the mechanics substrate.

use proptest::prelude::*;
use wiforce_mech::contact::SensorMech;
use wiforce_mech::{AnalyticContactModel, ForceTransducer, Indenter};

fn model() -> AnalyticContactModel {
    AnalyticContactModel::new(SensorMech::wiforce_prototype(), Indenter::actuator_tip())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Above threshold, patches are inside the sensor, contain the press,
    /// and widen monotonically with force.
    #[test]
    fn patch_invariants(f in 0.6f64..7.5, df in 0.1f64..0.5, x0 in 0.012f64..0.068) {
        let m = model();
        let p = m.contact_patch(f, x0).expect("above threshold");
        prop_assert!(p.left_m >= 0.0 && p.right_m <= m.length_m());
        prop_assert!(p.left_m <= x0 + 1e-12 && x0 <= p.right_m + 1e-12);
        let p2 = m.contact_patch(f + df, x0).expect("still above threshold");
        prop_assert!(p2.width_m() + 1e-12 >= p.width_m());
        prop_assert!(p2.left_m <= p.left_m + 1e-12);
        prop_assert!(p2.right_m + 1e-12 >= p.right_m);
    }

    /// Mirror symmetry: pressing at L−x mirrors the patch of pressing at x.
    #[test]
    fn patch_mirror_symmetry(f in 1.0f64..7.0, x0 in 0.015f64..0.040) {
        let m = model();
        let l = m.length_m();
        let p = m.contact_patch(f, x0).expect("contact");
        let q = m.contact_patch(f, l - x0).expect("contact");
        prop_assert!((p.left_m - (l - q.right_m)).abs() < 1e-9);
        prop_assert!((p.right_m - (l - q.left_m)).abs() < 1e-9);
    }

    /// Touch threshold is finite inside the usable range and the patch
    /// appears right above it.
    #[test]
    fn threshold_consistency(x0 in 0.015f64..0.065) {
        let m = model();
        let thr = m.touch_threshold_n(x0);
        prop_assert!(thr.is_finite() && thr > 0.0 && thr < 2.0, "{thr}");
        prop_assert!(m.contact_patch(thr * 1.05, x0).is_some());
        prop_assert!(m.contact_patch(thr * 0.95, x0).is_none());
    }

    /// A wider fingertip indenter never produces a narrower patch than the
    /// actuator tip at the same press.
    #[test]
    fn wider_indenter_wider_patch(f in 1.0f64..7.0, x0 in 0.020f64..0.060) {
        let tip = model();
        let finger =
            AnalyticContactModel::new(SensorMech::wiforce_prototype(), Indenter::fingertip());
        let pt = tip.contact_patch(f, x0).expect("contact");
        let pf = finger.contact_patch(f, x0).expect("contact");
        prop_assert!(pf.width_m() + 1e-12 >= pt.width_m());
    }
}

//! A persistent worker pool for intra-press snapshot synthesis.
//!
//! The counter-addressed noise scheme (see `wiforce_dsp::rng::CounterRng`
//! and the pipeline's counter synthesis path) makes every snapshot an
//! independent pure function of its simulation coordinates, so a press
//! can be synthesized as a bag of chunks with no ordering constraints.
//! This module supplies the execution side: a process-wide pool of
//! detached threads that [`run_chunks`] hands an indexed job to, with the
//! calling thread participating as a worker. Work is claimed from one
//! atomic counter (dynamic stealing — chunk costs are uneven when groups
//! fuse their spectrum extraction), and the call returns only after every
//! chunk has finished, so the job closure may borrow from the caller's
//! stack.
//!
//! Results never depend on how many workers ran or how chunks were
//! interleaved — workers write disjoint row ranges and draw from
//! counter-addressed streams — so `WIFORCE_SYNTH_WORKERS=1` and `=8`
//! produce bit-identical matrices. The pool therefore needs no
//! determinism machinery of its own; it only promises completion and
//! panic propagation.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Hard ceiling on pool threads, matching the batch engine's cap.
const MAX_WORKERS: usize = 16;

/// Resolves the default synthesis worker count: `WIFORCE_SYNTH_WORKERS`
/// when set (clamped to `1..=16`), otherwise the machine's available
/// parallelism capped at 8. A `Simulation` can override this per
/// instance via its `synth_workers` field.
pub fn default_workers() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        if let Some(v) = std::env::var_os("WIFORCE_SYNTH_WORKERS") {
            if let Ok(n) = v.to_string_lossy().parse::<usize>() {
                return n.clamp(1, MAX_WORKERS);
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get().min(8))
            .unwrap_or(1)
    })
}

/// One published job: an indexed closure plus claim/completion state.
struct Job {
    /// Type-erased `&(dyn Fn(usize) + Sync)` borrowed from the caller's
    /// stack. Valid until [`run_chunks`] returns, which happens only
    /// after every participant has finished (tracked by `active` under
    /// the pool lock).
    f: *const (dyn Fn(usize) + Sync),
    next: AtomicUsize,
    n_chunks: usize,
    panicked: AtomicBool,
    /// Pool workers currently inside [`Job::work`] for *this* job.
    /// Mutated only while holding the pool lock, so the publisher's
    /// drain wait can't race a worker joining.
    active: AtomicUsize,
}

// Safety: the raw closure pointer is only dereferenced while the
// publishing `run_chunks` call is blocked waiting for completion, and
// the closure itself is `Sync`.
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

impl Job {
    /// Claims and runs chunks until the counter runs out. Returns `true`
    /// if the closure panicked (the payload is dropped; the publisher
    /// re-panics with a summary).
    fn work(&self) -> bool {
        // Safety: see the field invariant on `f`.
        let f = unsafe { &*self.f };
        let mut claimed = 0u64;
        let panicked = loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.n_chunks {
                break false;
            }
            claimed += 1;
            let _chunk = wiforce_telemetry::trace::span_arg("synth.chunk", i as u64);
            if catch_unwind(AssertUnwindSafe(|| f(i))).is_err() {
                self.panicked.store(true, Ordering::Release);
                break true;
            }
        };
        // dynamic stealing makes per-worker claim counts the pool's own
        // load-balance signal; the claim counter itself stays untouched
        // when metrics are off
        if claimed > 0 && wiforce_telemetry::metrics::metrics_enabled() {
            let current = std::thread::current();
            let worker = current.name().unwrap_or("caller");
            wiforce_telemetry::metrics::counter_add(
                "synth.chunks_claimed",
                &[("worker", worker)],
                claimed,
            );
        }
        panicked
    }
}

#[derive(Default)]
struct PoolState {
    /// The published job, its generation, and the number of pool workers
    /// still invited to join (`tickets`).
    job: Option<(u64, Arc<Job>, usize)>,
    generation: u64,
    spawned: usize,
}

struct Pool {
    state: Mutex<PoolState>,
    /// Signals workers that a job was published.
    work_ready: Condvar,
    /// Signals the publisher that a worker left the job.
    work_done: Condvar,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        state: Mutex::new(PoolState::default()),
        work_ready: Condvar::new(),
        work_done: Condvar::new(),
    })
}

fn worker_loop() {
    let pool = pool();
    let mut last_gen = 0u64;
    loop {
        let job = {
            let mut state = pool.state.lock().expect("synth pool poisoned");
            loop {
                if let Some((generation, job, tickets)) = &mut state.job {
                    if *generation != last_gen && *tickets > 0 {
                        *tickets -= 1;
                        last_gen = *generation;
                        let job = Arc::clone(job);
                        job.active.fetch_add(1, Ordering::Relaxed);
                        break job;
                    }
                }
                state = pool.work_ready.wait(state).expect("synth pool poisoned");
            }
        };
        job.work();
        let state = pool.state.lock().expect("synth pool poisoned");
        if job.active.fetch_sub(1, Ordering::Relaxed) == 1 {
            pool.work_done.notify_all();
        }
        drop(state);
    }
}

/// Runs `f(0..n_chunks)` across `workers` threads (the caller plus up to
/// `workers − 1` pool threads), returning once every chunk completed.
/// Chunk assignment is dynamic; `f` must be safe to call concurrently
/// from multiple threads on distinct indices. Panics in `f` are
/// propagated to the caller after all workers have stopped.
pub(crate) fn run_chunks(workers: usize, n_chunks: usize, f: &(dyn Fn(usize) + Sync)) {
    if n_chunks == 0 {
        return;
    }
    let _job = wiforce_telemetry::trace::span_arg("synth.job", n_chunks as u64);
    let extra = workers.min(MAX_WORKERS).saturating_sub(1).min(n_chunks - 1);
    if extra == 0 {
        // single worker: run inline, propagating panics directly
        for i in 0..n_chunks {
            let _chunk = wiforce_telemetry::trace::span_arg("synth.chunk", i as u64);
            f(i);
        }
        if wiforce_telemetry::metrics::metrics_enabled() {
            wiforce_telemetry::metrics::counter_add(
                "synth.chunks_claimed",
                &[("worker", "caller")],
                n_chunks as u64,
            );
        }
        return;
    }

    let pool = pool();
    // Safety: erases the closure's borrow lifetime to store it in the
    // 'static Job. The pointer is dereferenced only by workers that
    // joined this job, and this call does not return until the last of
    // them has left (the drain wait below), so the borrow outlives every
    // use.
    let f: *const (dyn Fn(usize) + Sync) =
        unsafe { std::mem::transmute(f as *const (dyn Fn(usize) + Sync + '_)) };
    let job = Arc::new(Job {
        f,
        next: AtomicUsize::new(0),
        n_chunks,
        panicked: AtomicBool::new(false),
        active: AtomicUsize::new(0),
    });
    {
        let mut state = pool.state.lock().expect("synth pool poisoned");
        // wait for the job slot to free up (concurrent run_chunks calls
        // serialize here; workers still draining an older job will pick
        // this one up when they loop back)
        while state.job.is_some() {
            state = pool.work_done.wait(state).expect("synth pool poisoned");
        }
        while state.spawned < extra {
            std::thread::Builder::new()
                .name(format!("wiforce-synth-{}", state.spawned))
                .spawn(worker_loop)
                .expect("spawn synth worker");
            state.spawned += 1;
        }
        state.generation += 1;
        state.job = Some((state.generation, Arc::clone(&job), extra));
        pool.work_ready.notify_all();
    }

    // the caller is a full participant
    let main_panicked = catch_unwind(AssertUnwindSafe(|| job.work()));

    // retire the job: withdraw unclaimed tickets, then wait until every
    // pool worker that joined has left — only then may the borrowed
    // closure go out of scope
    let mut state = pool.state.lock().expect("synth pool poisoned");
    state.job = None;
    while job.active.load(Ordering::Relaxed) > 0 {
        state = pool.work_done.wait(state).expect("synth pool poisoned");
    }
    // wake any publisher queued on the job slot
    pool.work_done.notify_all();
    drop(state);

    match main_panicked {
        Err(payload) => resume_unwind(payload),
        Ok(_) => {
            if job.panicked.load(Ordering::Acquire) {
                panic!("synthesis worker panicked (see worker thread output)");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn default_workers_is_positive_and_capped() {
        let n = default_workers();
        assert!((1..=MAX_WORKERS).contains(&n));
    }

    #[test]
    fn runs_every_chunk_exactly_once() {
        for workers in [1, 2, 4, 8] {
            let hits: Vec<AtomicU64> = (0..97).map(|_| AtomicU64::new(0)).collect();
            run_chunks(workers, hits.len(), &|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            for (i, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::Relaxed), 1, "chunk {i} workers {workers}");
            }
        }
    }

    #[test]
    fn chunked_sums_are_worker_count_invariant() {
        let total = |workers: usize| -> u64 {
            let acc = AtomicU64::new(0);
            run_chunks(workers, 64, &|i| {
                acc.fetch_add((i as u64 + 1) * (i as u64 + 1), Ordering::Relaxed);
            });
            acc.load(Ordering::Relaxed)
        };
        let want = (1..=64u64).map(|i| i * i).sum::<u64>();
        assert_eq!(total(1), want);
        assert_eq!(total(8), want);
    }

    #[test]
    fn sequential_calls_reuse_the_pool() {
        for round in 0..20 {
            let acc = AtomicU64::new(0);
            run_chunks(4, 13, &|i| {
                acc.fetch_add(i as u64, Ordering::Relaxed);
            });
            assert_eq!(acc.load(Ordering::Relaxed), 78, "round {round}");
        }
    }

    #[test]
    fn worker_panics_propagate() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            run_chunks(4, 32, &|i| {
                if i == 17 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err());
        // and the pool still works afterwards
        let acc = AtomicU64::new(0);
        run_chunks(4, 8, &|i| {
            acc.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(acc.load(Ordering::Relaxed), 28);
    }

    #[test]
    fn zero_and_single_chunk_jobs() {
        run_chunks(8, 0, &|_| panic!("must not run"));
        let acc = AtomicU64::new(0);
        run_chunks(8, 1, &|i| {
            acc.fetch_add(i as u64 + 5, Ordering::Relaxed);
        });
        assert_eq!(acc.load(Ordering::Relaxed), 5);
    }
}

//! Gesture recognition on top of the force/location stream.
//!
//! The paper motivates WiForce with richer-than-binary touch interfaces
//! (§1: force-controlled earbuds/smartwatches; §8: RFID touch systems
//! limited to "simple gestures/sliding movements" — WiForce adds the force
//! dimension). This module turns the estimator's reading stream into
//! discrete UI events: taps, holds with force levels, and swipes along the
//! sensor's continuum.

use crate::estimator::ForceReading;

/// A recognized gesture event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Gesture {
    /// A short press-and-release.
    Tap {
        /// Press location, m.
        location_m: f64,
        /// Peak force during the tap, N.
        peak_force_n: f64,
    },
    /// A sustained press; emitted once when the hold is established, with
    /// the quantized force level (1-based).
    Hold {
        /// Press location, m.
        location_m: f64,
        /// Quantized force level, 1..=n_levels.
        level: u8,
        /// Mean force during the settling window, N.
        force_n: f64,
    },
    /// The finger slid along the sensor while touching.
    Swipe {
        /// Starting location, m.
        from_m: f64,
        /// Ending location, m.
        to_m: f64,
    },
}

/// Configuration for the gesture recognizer.
#[derive(Debug, Clone, Copy)]
pub struct GestureConfig {
    /// Readings per second (one per phase group; paper default ≈27.8 Hz).
    pub readings_per_s: f64,
    /// A touch shorter than this is a tap, s.
    pub tap_max_s: f64,
    /// A touch at steady force longer than this is a hold, s.
    pub hold_min_s: f64,
    /// Location travel that distinguishes a swipe from a stationary touch, m.
    pub swipe_min_travel_m: f64,
    /// Force quantization step for hold levels, N.
    pub level_step_n: f64,
    /// Number of hold levels.
    pub n_levels: u8,
}

impl GestureConfig {
    /// Defaults matched to the paper's pipeline cadence (36 ms groups).
    pub fn wiforce() -> Self {
        GestureConfig {
            readings_per_s: 1.0 / 0.036,
            tap_max_s: 0.3,
            hold_min_s: 0.5,
            swipe_min_travel_m: 8e-3,
            level_step_n: 1.5,
            n_levels: 5,
        }
    }
}

/// State machine turning readings into gestures.
#[derive(Debug, Clone)]
pub struct GestureRecognizer {
    cfg: GestureConfig,
    touch: Option<TouchTrack>,
}

#[derive(Debug, Clone)]
struct TouchTrack {
    readings: Vec<(f64, f64)>, // (location, force)
    hold_emitted: bool,
}

impl GestureRecognizer {
    /// Creates a recognizer.
    pub fn new(cfg: GestureConfig) -> Self {
        GestureRecognizer { cfg, touch: None }
    }

    /// Consumes one reading; returns at most one gesture event.
    pub fn push(&mut self, reading: &ForceReading) -> Option<Gesture> {
        if reading.touched {
            let track = self.touch.get_or_insert(TouchTrack {
                readings: Vec::new(),
                hold_emitted: false,
            });
            track.readings.push((reading.location_m, reading.force_n));
            // hold detection fires while still touching
            let held_s = track.readings.len() as f64 / self.cfg.readings_per_s;
            if !track.hold_emitted && held_s >= self.cfg.hold_min_s {
                let travel = travel_m(&track.readings);
                if travel < self.cfg.swipe_min_travel_m {
                    track.hold_emitted = true;
                    let force = mean_force(&track.readings);
                    let level =
                        ((force / self.cfg.level_step_n).ceil() as u8).clamp(1, self.cfg.n_levels);
                    return Some(Gesture::Hold {
                        location_m: mean_location(&track.readings),
                        level,
                        force_n: force,
                    });
                }
            }
            None
        } else {
            let track = self.touch.take()?;
            if track.readings.is_empty() {
                return None;
            }
            let duration_s = track.readings.len() as f64 / self.cfg.readings_per_s;
            let travel = travel_m(&track.readings);
            if travel >= self.cfg.swipe_min_travel_m {
                return Some(Gesture::Swipe {
                    from_m: track.readings.first().expect("nonempty").0,
                    to_m: track.readings.last().expect("nonempty").0,
                });
            }
            if duration_s <= self.cfg.tap_max_s && !track.hold_emitted {
                let peak = track
                    .readings
                    .iter()
                    .map(|&(_, f)| f)
                    .fold(f64::NEG_INFINITY, f64::max);
                return Some(Gesture::Tap {
                    location_m: mean_location(&track.readings),
                    peak_force_n: peak,
                });
            }
            None
        }
    }
}

fn mean_location(readings: &[(f64, f64)]) -> f64 {
    readings.iter().map(|&(l, _)| l).sum::<f64>() / readings.len() as f64
}

fn mean_force(readings: &[(f64, f64)]) -> f64 {
    readings.iter().map(|&(_, f)| f).sum::<f64>() / readings.len() as f64
}

fn travel_m(readings: &[(f64, f64)]) -> f64 {
    match (readings.first(), readings.last()) {
        (Some(&(a, _)), Some(&(b, _))) => (b - a).abs(),
        _ => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reading(touched: bool, loc: f64, force: f64) -> ForceReading {
        ForceReading {
            force_n: force,
            location_m: loc,
            dphi1_rad: 0.0,
            dphi2_rad: 0.0,
            residual_rad: 0.0,
            touched,
        }
    }

    fn cfg() -> GestureConfig {
        GestureConfig::wiforce()
    }

    #[test]
    fn tap_detected() {
        let mut g = GestureRecognizer::new(cfg());
        // 4 readings ≈ 0.14 s touch, then release
        for _ in 0..4 {
            assert_eq!(g.push(&reading(true, 0.040, 2.0)), None);
        }
        let ev = g.push(&reading(false, f64::NAN, 0.0)).expect("tap");
        match ev {
            Gesture::Tap {
                location_m,
                peak_force_n,
            } => {
                assert!((location_m - 0.040).abs() < 1e-9);
                assert!((peak_force_n - 2.0).abs() < 1e-9);
            }
            other => panic!("expected tap, got {other:?}"),
        }
    }

    #[test]
    fn hold_fires_with_level_while_touching() {
        let mut g = GestureRecognizer::new(cfg());
        let mut hold = None;
        for _ in 0..20 {
            if let Some(ev) = g.push(&reading(true, 0.060, 4.4)) {
                hold = Some(ev);
                break;
            }
        }
        match hold.expect("hold should fire") {
            Gesture::Hold {
                location_m,
                level,
                force_n,
            } => {
                assert!((location_m - 0.060).abs() < 1e-9);
                assert_eq!(level, 3); // ceil(4.4 / 1.5) = 3
                assert!((force_n - 4.4).abs() < 1e-9);
            }
            other => panic!("expected hold, got {other:?}"),
        }
        // release after a hold produces nothing more
        assert_eq!(g.push(&reading(false, f64::NAN, 0.0)), None);
    }

    #[test]
    fn swipe_detected_on_release() {
        let mut g = GestureRecognizer::new(cfg());
        for i in 0..8 {
            let loc = 0.020 + i as f64 * 0.005;
            assert_eq!(g.push(&reading(true, loc, 3.0)), None);
        }
        let ev = g.push(&reading(false, f64::NAN, 0.0)).expect("swipe");
        match ev {
            Gesture::Swipe { from_m, to_m } => {
                assert!((from_m - 0.020).abs() < 1e-9);
                assert!((to_m - 0.055).abs() < 1e-9);
                assert!(to_m > from_m, "rightward swipe");
            }
            other => panic!("expected swipe, got {other:?}"),
        }
    }

    #[test]
    fn leftward_swipe_preserves_direction() {
        let mut g = GestureRecognizer::new(cfg());
        for i in 0..8 {
            let loc = 0.060 - i as f64 * 0.004;
            let _ = g.push(&reading(true, loc, 3.0));
        }
        match g.push(&reading(false, f64::NAN, 0.0)).expect("swipe") {
            Gesture::Swipe { from_m, to_m } => assert!(to_m < from_m),
            other => panic!("expected swipe, got {other:?}"),
        }
    }

    #[test]
    fn medium_stationary_touch_is_neither() {
        // longer than a tap, shorter than a hold, no travel
        let mut g = GestureRecognizer::new(cfg());
        for _ in 0..10 {
            assert_eq!(g.push(&reading(true, 0.040, 2.0)), None);
        }
        assert_eq!(g.push(&reading(false, f64::NAN, 0.0)), None);
    }

    #[test]
    fn untouched_stream_is_silent() {
        let mut g = GestureRecognizer::new(cfg());
        for _ in 0..50 {
            assert_eq!(g.push(&reading(false, f64::NAN, 0.0)), None);
        }
    }

    #[test]
    fn hold_levels_clamp() {
        let mut g = GestureRecognizer::new(cfg());
        let mut hold = None;
        for _ in 0..20 {
            if let Some(ev) = g.push(&reading(true, 0.040, 50.0)) {
                hold = Some(ev);
                break;
            }
        }
        match hold.expect("hold") {
            Gesture::Hold { level, .. } => assert_eq!(level, 5),
            other => panic!("{other:?}"),
        }
    }
}

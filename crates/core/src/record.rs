//! Recording and replaying channel-estimate streams.
//!
//! The reader's raw input — per-snapshot, per-subcarrier channel estimates
//! — is the natural capture point for debugging and offline analysis
//! (smoltcp records pcaps; WiForce records snapshot streams). The `.wifs`
//! format is a tiny self-describing binary container:
//!
//! ```text
//! magic "WIFS" | u32 version | f64 snapshot_period_s |
//! u32 n_subcarriers | u32 n_snapshots |
//! n_snapshots × n_subcarriers × (f64 re, f64 im)   (all little-endian)
//! ```
//!
//! A recorded stream replays bit-exactly into [`crate::ForceEstimator`] or
//! [`crate::spectrum`], making field captures reproducible test vectors.

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;
use wiforce_dsp::{Complex, SnapshotMatrix};

const MAGIC: &[u8; 4] = b"WIFS";
const VERSION: u32 = 1;

/// A recorded channel-estimate stream.
#[derive(Debug, Clone, PartialEq)]
pub struct Recording {
    /// Snapshot period, s.
    pub snapshot_period_s: f64,
    /// Channel estimates, one snapshot per row (row `n`, subcarrier `k`).
    /// The flat row-major layout matches the on-disk sample order, so
    /// save/load move contiguous memory.
    pub snapshots: SnapshotMatrix,
}

impl Recording {
    /// Builds a recording from a stream.
    pub fn new(snapshot_period_s: f64, snapshots: SnapshotMatrix) -> Self {
        Recording {
            snapshot_period_s,
            snapshots,
        }
    }

    /// Number of snapshots.
    pub fn len(&self) -> usize {
        self.snapshots.n_rows()
    }

    /// `true` if the recording holds no snapshots.
    pub fn is_empty(&self) -> bool {
        self.snapshots.is_empty()
    }

    /// Subcarriers per snapshot (0 if empty).
    pub fn n_subcarriers(&self) -> usize {
        if self.snapshots.is_empty() {
            0
        } else {
            self.snapshots.n_cols()
        }
    }

    /// Total capture duration, s.
    pub fn duration_s(&self) -> f64 {
        self.len() as f64 * self.snapshot_period_s
    }

    /// Writes to a `.wifs` file.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let k = self.n_subcarriers();
        let mut w = BufWriter::new(File::create(path)?);
        w.write_all(MAGIC)?;
        w.write_all(&VERSION.to_le_bytes())?;
        w.write_all(&self.snapshot_period_s.to_le_bytes())?;
        w.write_all(&(k as u32).to_le_bytes())?;
        w.write_all(&(self.len() as u32).to_le_bytes())?;
        for z in self.snapshots.as_slice() {
            w.write_all(&z.re.to_le_bytes())?;
            w.write_all(&z.im.to_le_bytes())?;
        }
        w.flush()
    }

    /// Reads a `.wifs` file.
    pub fn load(path: &Path) -> io::Result<Self> {
        let mut r = BufReader::new(File::open(path)?);
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not a WIFS recording",
            ));
        }
        let version = read_u32(&mut r)?;
        if version != VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unsupported WIFS version {version}"),
            ));
        }
        let period = read_f64(&mut r)?;
        if !(period.is_finite() && period > 0.0) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "bad snapshot period",
            ));
        }
        let k = read_u32(&mut r)? as usize;
        let n = read_u32(&mut r)? as usize;
        if k.checked_mul(n).is_none_or(|cells| cells > 1 << 28) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "implausible dimensions",
            ));
        }
        let mut data = Vec::with_capacity(n * k);
        for _ in 0..n * k {
            let re = read_f64(&mut r)?;
            let im = read_f64(&mut r)?;
            data.push(Complex::new(re, im));
        }
        let snapshots = SnapshotMatrix::from_flat(k.max(1), data);
        Ok(Recording {
            snapshot_period_s: period,
            snapshots,
        })
    }
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_f64<R: Read>(r: &mut R) -> io::Result<f64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(f64::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("wiforce_record_test");
        let _ = std::fs::create_dir_all(&dir);
        dir.join(name)
    }

    fn sample() -> Recording {
        let rows: Vec<Vec<Complex>> = (0..10)
            .map(|n| {
                (0..4)
                    .map(|k| Complex::new(n as f64, k as f64 * 0.5))
                    .collect()
            })
            .collect();
        Recording::new(57.6e-6, SnapshotMatrix::from_rows(&rows))
    }

    #[test]
    fn round_trip_bit_exact() {
        let path = tmp("roundtrip.wifs");
        let rec = sample();
        rec.save(&path).unwrap();
        let back = Recording::load(&path).unwrap();
        assert_eq!(back, rec);
        assert_eq!(back.n_subcarriers(), 4);
        assert!((back.duration_s() - 10.0 * 57.6e-6).abs() < 1e-12);
    }

    #[test]
    fn rejects_wrong_magic() {
        let path = tmp("bad_magic.wifs");
        std::fs::write(&path, b"NOPE....data").unwrap();
        let err = Recording::load(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn rejects_truncated_file() {
        let path = tmp("truncated.wifs");
        let rec = sample();
        rec.save(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        assert!(Recording::load(&path).is_err());
    }

    #[test]
    fn empty_recording_ok() {
        let path = tmp("empty.wifs");
        let rec = Recording::new(1e-3, SnapshotMatrix::default());
        rec.save(&path).unwrap();
        let back = Recording::load(&path).unwrap();
        assert!(back.is_empty());
        assert_eq!(back.n_subcarriers(), 0);
    }

    #[test]
    fn replays_into_estimator() {
        use crate::estimator::{EstimatorConfig, ForceEstimator};
        use crate::pipeline::{Simulation, TagClock};
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        // record a live run, then replay the file and get identical output
        let sim = Simulation::paper_default(2.4e9);
        let model = sim.vna_calibration().unwrap();
        let mut rng = StdRng::seed_from_u64(0x5EC);
        let mut clock = TagClock::new(&mut rng);
        let mut snaps = sim.run_snapshots(None, 1, &mut clock, &mut rng);
        let contact = sim.contact_for(4.0, 0.040);
        sim.run_snapshots_into(contact.as_ref(), 1, &mut clock, &mut rng, &mut snaps);

        let path = tmp("replay.wifs");
        Recording::new(sim.group.snapshot_period_s, snaps.clone())
            .save(&path)
            .unwrap();
        let rec = Recording::load(&path).unwrap();

        let run = |stream: &SnapshotMatrix| -> Option<crate::ForceReading> {
            let cfg = EstimatorConfig {
                group: sim.group,
                reference_groups: 1,
                ..EstimatorConfig::wiforce(1000.0)
            };
            let mut est = ForceEstimator::new(cfg, model.clone());
            let mut out = None;
            for s in stream.rows() {
                if let Ok(Some(r)) = est.push_snapshot(s) {
                    out = Some(r);
                }
            }
            out
        };
        let live = run(&snaps).expect("live reading");
        let replayed = run(&rec.snapshots).expect("replayed reading");
        assert_eq!(live, replayed, "replay must be bit-exact");
        assert!(replayed.touched);
    }
}
